(* Concrete set-associative LRU cache — the execution model of the
   MPC755 split L1 caches. The WCET analyzer never runs this code; it
   re-derives the same geometry from [config] and over-approximates the
   LRU replacement (capacity persistence + must-cache ageing), which the
   property tests check against this concrete model access by access. *)

type config = {
  cfg_sets : int;
  cfg_assoc : int;
  cfg_line : int;  (* bytes *)
}

(* MPC755 L1: 32 KiB, 8-way, 32-byte lines (128 sets), split I/D. *)
let mpc755_l1 : config = { cfg_sets = 128; cfg_assoc = 8; cfg_line = 32 }

let mpc : config = mpc755_l1

(* Tiny configuration for unit tests: conflicts within a few accesses. *)
let tiny : config = { cfg_sets = 4; cfg_assoc = 2; cfg_line = 16 }

type t = {
  cfg : config;
  sets : int list array;  (* per set: resident line indices, MRU first *)
  mutable hits : int;
  mutable misses : int;
}

let create (cfg : config) : t =
  { cfg; sets = Array.make cfg.cfg_sets []; hits = 0; misses = 0 }

let set_of (c : t) (line : int) : int = line mod c.cfg.cfg_sets

let resident (c : t) (line : int) : bool =
  List.mem line c.sets.(set_of c line)

(* Touch one line: returns true on miss. LRU within the set. *)
let touch (c : t) (line : int) : bool =
  let s = set_of c line in
  let ways = c.sets.(s) in
  if List.mem line ways then begin
    c.hits <- c.hits + 1;
    c.sets.(s) <- line :: List.filter (fun l -> l <> line) ways;
    false
  end
  else begin
    c.misses <- c.misses + 1;
    let ways = line :: ways in
    c.sets.(s) <-
      (if List.length ways > c.cfg.cfg_assoc then
         List.filteri (fun i _ -> i < c.cfg.cfg_assoc) ways
       else ways);
    true
  end

(* Access [size] bytes at [addr]; returns the number of lines missed
   (0, 1 or 2 — scalar accesses touch two lines only when straddling a
   line boundary, which the natural alignment of the layout avoids for
   compiled code). *)
let access (c : t) (addr : int) (size : int) : int =
  let first = addr / c.cfg.cfg_line in
  let last = (addr + size - 1) / c.cfg.cfg_line in
  let n = ref 0 in
  for line = first to last do
    if touch c line then incr n
  done;
  !n
