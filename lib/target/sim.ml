(* Executable simulator for the target machine: concrete registers,
   concrete memory laid out by [Layout], a concrete LRU data cache, and
   the shared [Timing] cost model. It produces the same observable
   trace type as the mini-C reference interpreter ([Minic.Interp])
   plus performance counters, so one differential harness checks
   semantic preservation (traces equal) and one property harness checks
   timing soundness (analyzer WCET >= [rr_stats.cycles]).

   The instruction cache is deliberately NOT simulated: the analyzer
   classifies instruction fetches against a worst-case abstract cache
   and charges the misses it cannot exclude, so leaving concrete
   fetches free keeps the comparison sound (analyzer >= simulator)
   without a fetch model the paper does not need. *)

type stats = {
  mutable cycles : int;
  mutable dcache_reads : int;
  mutable dcache_writes : int;
}

type run_result = {
  rr_result : Minic.Interp.result;
  rr_stats : stats;
}

type machine = {
  src : Minic.Ast.program;
  asm : Asm.program;
  lay : Layout.t;
  world : Minic.Interp.world;
  regs : int32 array;   (* r0..r31; r1 = sp *)
  fregs : float array;  (* f0..f31 *)
  mutable cr_lt : bool;
  mutable cr_gt : bool;
  mutable cr_eq : bool;
  mem : Bytes.t;
  dcache : Cache.t;
  vol_counts : (string, int) Hashtbl.t;
  mutable events_rev : Minic.Interp.event list;
  st : stats;
  mutable fuel : int;
}

let runtime_error msg = raise (Minic.Interp.Runtime_error msg)

(* ---- memory ---- *)

let load32 (m : machine) (a : int) : int32 = Bytes.get_int32_be m.mem a
let store32 (m : machine) (a : int) (v : int32) = Bytes.set_int32_be m.mem a v

let loadf (m : machine) (a : int) : float =
  Int64.float_of_bits (Bytes.get_int64_be m.mem a)

let storef (m : machine) (a : int) (v : float) =
  Bytes.set_int64_be m.mem a (Int64.bits_of_float v)

let ea (m : machine) (a : Asm.address) : int =
  match a with
  | Asm.Aind (b, off) -> Int32.to_int m.regs.(b) + Int32.to_int off
  | Asm.Aindx (b, x) -> Int32.to_int m.regs.(b) + Int32.to_int m.regs.(x)
  | Asm.Aglob (s, off) | Asm.Asda (s, off) ->
    Layout.sym_addr m.lay s + Int32.to_int off

(* Concrete data-cache access: charge the miss penalty, bump the
   matching performance counter. *)
let daccess (m : machine) ~(write : bool) (addr : int) (size : int) : unit =
  if addr < 0 || addr + size > Bytes.length m.mem then
    runtime_error (Printf.sprintf "memory access out of range: 0x%x" addr);
  let misses = Cache.access m.dcache addr size in
  m.st.cycles <- m.st.cycles + (misses * Timing.cache_miss_penalty);
  if write then m.st.dcache_writes <- m.st.dcache_writes + 1
  else m.st.dcache_reads <- m.st.dcache_reads + 1

(* ---- machine construction ---- *)

let init_memory (m : machine) : unit =
  (* Globals are zero already (Bytes.make '\000'); arrays take their
     initializer, converted to the element type exactly like the
     reference interpreter's [initial_state]. *)
  List.iter
    (fun a ->
       let base = Layout.sym_addr m.lay a.Minic.Ast.arr_name in
       let elt = a.Minic.Ast.arr_elt in
       List.iteri
         (fun i f ->
            match elt with
            | Minic.Ast.Tfloat -> storef m (base + (8 * i)) f
            | Minic.Ast.Tint ->
              store32 m (base + (4 * i)) (Minic.Value.int32_of_float_trunc f)
            | Minic.Ast.Tbool ->
              store32 m (base + (4 * i)) (if f > 0.0 then 1l else 0l))
         a.Minic.Ast.arr_init)
    m.src.Minic.Ast.prog_arrays

let create (src : Minic.Ast.program) (asm : Asm.program) (lay : Layout.t)
    (world : Minic.Interp.world) ~(fuel : int) : machine =
  let m =
    { src;
      asm;
      lay;
      world;
      regs = Array.make 32 0l;
      fregs = Array.make 32 0.0;
      cr_lt = false;
      cr_gt = false;
      cr_eq = false;
      mem = Bytes.make lay.Layout.lay_mem_size '\000';
      dcache = Cache.create Cache.mpc755_l1;
      vol_counts = Hashtbl.create 17;
      events_rev = [];
      st = { cycles = 0; dcache_reads = 0; dcache_writes = 0 };
      fuel }
  in
  m.regs.(Asm.sp) <- Int32.of_int lay.Layout.lay_stack_top;
  init_memory m;
  m

(* ---- volatiles ---- *)

let vol_typ (m : machine) (x : string) : Minic.Ast.typ =
  match Minic.Ast.find_volatile m.src x with
  | Some (t, _) -> t
  | None -> runtime_error ("unbound volatile " ^ x)

let acquire (m : machine) (x : string) : Minic.Value.t =
  let t = vol_typ m x in
  let k = Option.value ~default:0 (Hashtbl.find_opt m.vol_counts x) in
  Hashtbl.replace m.vol_counts x (k + 1);
  let v = Minic.Interp.world_value m.world t x k in
  m.events_rev <- Minic.Interp.Ev_vol_read (x, v) :: m.events_rev;
  v

(* ---- condition register ---- *)

let set_cr_int (m : machine) (a : int32) (b : int32) : unit =
  let c = Int32.compare a b in
  m.cr_lt <- c < 0;
  m.cr_gt <- c > 0;
  m.cr_eq <- c = 0

let set_cr_float (m : machine) (a : float) (b : float) : unit =
  (* fcmpu: unordered (NaN) sets no ordering bit *)
  m.cr_lt <- a < b;
  m.cr_gt <- a > b;
  m.cr_eq <- a = b

let eval_cond (m : machine) (c : Asm.branch_cond) : bool =
  let bit b =
    match b with
    | Asm.CRlt -> m.cr_lt
    | Asm.CRgt -> m.cr_gt
    | Asm.CReq -> m.cr_eq
  in
  match c with Asm.BT b -> bit b | Asm.BF b -> not (bit b)

(* ---- annotation arguments ---- *)

let annot_value (m : machine) (a : Asm.annot_arg) : Minic.Value.t =
  let sp = Int32.to_int m.regs.(Asm.sp) in
  match a with
  | Asm.AA_ireg r -> Minic.Value.Vint m.regs.(r)
  | Asm.AA_freg f -> Minic.Value.Vfloat m.fregs.(f)
  | Asm.AA_const_int n -> Minic.Value.Vint n
  | Asm.AA_const_float c -> Minic.Value.Vfloat c
  | Asm.AA_stack_int off -> Minic.Value.Vint (load32 m (sp + Int32.to_int off))
  | Asm.AA_stack_float off -> Minic.Value.Vfloat (loadf m (sp + Int32.to_int off))

(* ---- one function activation ---- *)

let exec_func (m : machine) (f : Asm.func) : unit =
  let code = Array.of_list f.Asm.fn_code in
  let labels = Hashtbl.create 31 in
  Array.iteri
    (fun i ins ->
       match ins with
       | Asm.Plabel l -> Hashtbl.replace labels l i
       | _ -> ())
    code;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> runtime_error ("undefined label " ^ string_of_int l)
  in
  let w = Timing.fresh_window () in
  let regs = m.regs and fregs = m.fregs in
  let pc = ref 0 in
  let running = ref true in
  while !running && !pc < Array.length code do
    m.fuel <- m.fuel - 1;
    if m.fuel <= 0 then raise Minic.Interp.Out_of_fuel;
    let i = code.(!pc) in
    m.st.cycles <- m.st.cycles + Timing.step w i;
    let next = ref (!pc + 1) in
    (match i with
     | Asm.Plabel _ -> ()
     | Asm.Pb l ->
       m.st.cycles <- m.st.cycles + Timing.branch_cost ~taken:true;
       next := target l
     | Asm.Pbc (c, l) ->
       let taken = eval_cond m c in
       m.st.cycles <- m.st.cycles + Timing.branch_cost ~taken;
       if taken then next := target l
     | Asm.Pblr ->
       m.st.cycles <- m.st.cycles + Timing.branch_cost ~taken:true;
       running := false
     | Asm.Pannot (text, args) ->
       let vs = List.map (annot_value m) args in
       m.events_rev <- Minic.Interp.Ev_annot (text, vs) :: m.events_rev
     | Asm.Padd (d, a, b) -> regs.(d) <- Int32.add regs.(a) regs.(b)
     | Asm.Psubf (d, a, b) -> regs.(d) <- Int32.sub regs.(b) regs.(a)
     | Asm.Pmullw (d, a, b) -> regs.(d) <- Int32.mul regs.(a) regs.(b)
     | Asm.Pdivw (d, a, b) -> regs.(d) <- Minic.Value.div32 regs.(a) regs.(b)
     | Asm.Pand (d, a, b) -> regs.(d) <- Int32.logand regs.(a) regs.(b)
     | Asm.Por (d, a, b) -> regs.(d) <- Int32.logor regs.(a) regs.(b)
     | Asm.Pxor (d, a, b) -> regs.(d) <- Int32.logxor regs.(a) regs.(b)
     | Asm.Pslw (d, a, b) ->
       regs.(d) <- Int32.shift_left regs.(a) (Minic.Value.shift_amount regs.(b))
     | Asm.Psraw (d, a, b) ->
       regs.(d) <-
         Int32.shift_right regs.(a) (Minic.Value.shift_amount regs.(b))
     | Asm.Pneg (d, a) -> regs.(d) <- Int32.neg regs.(a)
     | Asm.Pmr (d, a) -> regs.(d) <- regs.(a)
     | Asm.Paddi (d, a, n) ->
       regs.(d) <- Int32.add (if a = 0 then 0l else regs.(a)) n
     | Asm.Paddis (d, a, n) ->
       regs.(d) <-
         Int32.add (if a = 0 then 0l else regs.(a)) (Int32.mul n 65536l)
     | Asm.Pori (d, a, n) -> regs.(d) <- Int32.logor regs.(a) n
     | Asm.Pslwi (d, a, n) -> regs.(d) <- Int32.shift_left regs.(a) (n land 31)
     | Asm.Plwz (d, a) ->
       let addr = ea m a in
       daccess m ~write:false addr 4;
       regs.(d) <- load32 m addr
     | Asm.Pstw (s, a) ->
       let addr = ea m a in
       daccess m ~write:true addr 4;
       store32 m addr regs.(s)
     | Asm.Plfd (d, a) ->
       let addr = ea m a in
       daccess m ~write:false addr 8;
       fregs.(d) <- loadf m addr
     | Asm.Pstfd (s, a) ->
       let addr = ea m a in
       daccess m ~write:true addr 8;
       storef m addr fregs.(s)
     | Asm.Plfdc (d, c) ->
       daccess m ~write:false (Layout.const_addr m.lay c) 8;
       fregs.(d) <- c
     | Asm.Pla (d, s) -> regs.(d) <- Int32.of_int (Layout.sym_addr m.lay s)
     | Asm.Pcmpw (a, b) -> set_cr_int m regs.(a) regs.(b)
     | Asm.Pcmpwi (a, n) -> set_cr_int m regs.(a) n
     | Asm.Pfcmpu (a, b) -> set_cr_float m fregs.(a) fregs.(b)
     | Asm.Psetcc (d, c) -> regs.(d) <- (if eval_cond m c then 1l else 0l)
     | Asm.Pmovcc (d, s, c) -> if eval_cond m c then regs.(d) <- regs.(s)
     | Asm.Pfmovcc (d, s, c) -> if eval_cond m c then fregs.(d) <- fregs.(s)
     | Asm.Pfadd (d, a, b) -> fregs.(d) <- fregs.(a) +. fregs.(b)
     | Asm.Pfsub (d, a, b) -> fregs.(d) <- fregs.(a) -. fregs.(b)
     | Asm.Pfmul (d, a, b) -> fregs.(d) <- fregs.(a) *. fregs.(b)
     | Asm.Pfdiv (d, a, b) -> fregs.(d) <- fregs.(a) /. fregs.(b)
     | Asm.Pfmadd (d, a, b, c) ->
       fregs.(d) <- Float.fma fregs.(a) fregs.(b) fregs.(c)
     | Asm.Pfmsub (d, a, b, c) ->
       fregs.(d) <- Float.fma fregs.(a) fregs.(b) (-.fregs.(c))
     | Asm.Pfneg (d, a) -> fregs.(d) <- -.fregs.(a)
     | Asm.Pfabs (d, a) -> fregs.(d) <- Float.abs fregs.(a)
     | Asm.Pfmr (d, a) -> fregs.(d) <- fregs.(a)
     | Asm.Pfcfiw (d, a) -> fregs.(d) <- Int32.to_float regs.(a)
     | Asm.Pfctiwz (d, a) ->
       regs.(d) <- Minic.Value.int32_of_float_trunc fregs.(a)
     | Asm.Pacqi (d, x) ->
       regs.(d) <-
         (match acquire m x with
          | Minic.Value.Vint n -> n
          | Minic.Value.Vbool b -> if b then 1l else 0l
          | Minic.Value.Vfloat _ ->
            runtime_error ("float value on integer acquisition of " ^ x))
     | Asm.Pacqf (d, x) ->
       fregs.(d) <-
         (match acquire m x with
          | Minic.Value.Vfloat f -> f
          | Minic.Value.Vint _ | Minic.Value.Vbool _ ->
            runtime_error ("integer value on float acquisition of " ^ x))
     | Asm.Pouti (x, s) ->
       let v =
         match vol_typ m x with
         | Minic.Ast.Tbool -> Minic.Value.Vbool (regs.(s) <> 0l)
         | Minic.Ast.Tint | Minic.Ast.Tfloat -> Minic.Value.Vint regs.(s)
       in
       m.events_rev <- Minic.Interp.Ev_vol_write (x, v) :: m.events_rev
     | Asm.Poutf (x, s) ->
       m.events_rev <-
         Minic.Interp.Ev_vol_write (x, Minic.Value.Vfloat fregs.(s))
         :: m.events_rev
     | Asm.Pallocframe n ->
       regs.(Asm.sp) <- Int32.sub regs.(Asm.sp) (Int32.of_int n)
     | Asm.Pfreeframe n ->
       regs.(Asm.sp) <- Int32.add regs.(Asm.sp) (Int32.of_int n));
    pc := !next
  done

(* ---- results ---- *)

let read_return (m : machine) (fsrc : Minic.Ast.func) : Minic.Value.t option =
  match fsrc.Minic.Ast.fn_ret with
  | None -> None
  | Some Minic.Ast.Tint -> Some (Minic.Value.Vint m.regs.(3))
  | Some Minic.Ast.Tbool -> Some (Minic.Value.Vbool (m.regs.(3) <> 0l))
  | Some Minic.Ast.Tfloat -> Some (Minic.Value.Vfloat m.fregs.(1))

let read_globals (m : machine) : (string * Minic.Value.t) list =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun (x, t) ->
          let addr = Layout.sym_addr m.lay x in
          let v =
            match t with
            | Minic.Ast.Tint -> Minic.Value.Vint (load32 m addr)
            | Minic.Ast.Tbool -> Minic.Value.Vbool (load32 m addr <> 0l)
            | Minic.Ast.Tfloat -> Minic.Value.Vfloat (loadf m addr)
          in
          (x, v))
       m.src.Minic.Ast.prog_globals)

let place_args (m : machine) (fsrc : Minic.Ast.func)
    (args : Minic.Value.t list) : unit =
  if List.length args <> List.length fsrc.Minic.Ast.fn_params then
    runtime_error ("bad arity for " ^ fsrc.Minic.Ast.fn_name);
  let next_ir = ref 3 and next_fr = ref 1 in
  List.iter2
    (fun (_, t) v ->
       match t with
       | Minic.Ast.Tfloat ->
         m.fregs.(!next_fr) <- Minic.Value.as_float v;
         incr next_fr
       | Minic.Ast.Tint ->
         m.regs.(!next_ir) <- Minic.Value.as_int v;
         incr next_ir
       | Minic.Ast.Tbool ->
         m.regs.(!next_ir) <- (if Minic.Value.as_bool v then 1l else 0l);
         incr next_ir)
    fsrc.Minic.Ast.fn_params args

(* Run the entry point of [asm] (once, or [cycles] consecutive control
   cycles with memory, cache and volatile counters persisting — the
   machine-level mirror of [Minic.Interp.run_cycles]). *)
let run ?cycles ?(fuel = 10_000_000) ~(source : Minic.Ast.program)
    (asm : Asm.program) (lay : Layout.t) (world : Minic.Interp.world)
    (args : Minic.Value.t list) : run_result =
  let fname = asm.Asm.pr_main in
  let fasm =
    match Asm.find_func asm fname with
    | Some f -> f
    | None -> runtime_error ("no compiled function " ^ fname)
  in
  let fsrc =
    match Minic.Ast.find_func source fname with
    | Some f -> f
    | None -> runtime_error ("no source function " ^ fname)
  in
  let m = create source asm lay world ~fuel in
  (match cycles with
   | None ->
     place_args m fsrc args;
     exec_func m fasm
   | Some n ->
     if fsrc.Minic.Ast.fn_params <> [] then
       runtime_error "Sim.run ~cycles: entry point must be nullary";
     for _ = 1 to n do
       exec_func m fasm
     done);
  { rr_result =
      { Minic.Interp.res_return = read_return m fsrc;
        res_events = List.rev m.events_rev;
        res_globals = read_globals m };
    rr_stats = m.st }
