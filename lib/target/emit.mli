(** Assembly printer, one line per instruction. [substitute_annot]
    resolves the %n placeholders of a source annotation against the
    locations the compiler assigned — the printed form carried by the
    paper section 3.4 annotation file. *)

val substitute_annot : string -> Asm.annot_arg list -> string

val instr_str : Asm.instr -> string
(** One line, leading tab (labels flush left). *)

val func_to_string : Asm.func -> string
val program_to_string : Asm.program -> string
