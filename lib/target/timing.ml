(* The MPC755-flavoured timing model (DESIGN section 5), shared verbatim
   by the executable simulator and the WCET analyzer's pipeline phase:
   there is exactly ONE per-instruction cost function, [step], and both
   [Sim] and [Wcet.Pipeline] (via [static_costs]) fold it over the same
   instruction sequences. Overlap windows (dual-issue pairing, FPU
   pipelining, load-to-use forwarding) reset at labels and branches, so
   block costs compose: summing [static_costs] over any executed path
   reproduces the simulator's cycle count exactly. The analyzer's only
   over-approximations are the cache classification and the worst-path
   selection — which is what makes "analyzer WCET >= simulated cycles"
   a checkable invariant rather than a hope. *)

(* ---- constants ---- *)

let cache_miss_penalty = 34  (* per missed line, L1 -> L2/board *)

(* Taken branches flush the fetch window; fall-through costs one slot. *)
let branch_cost ~(taken : bool) : int = if taken then 3 else 1

let cost_mullw = 4
let cost_divw = 19
let cost_fdiv = 31
let cost_fpu = 4       (* fadd/fsub/fmul/fmadd latency *)
let cost_fpu_overlap = 2  (* issue interval with an independent FPU op in flight *)
let cost_load = 2      (* L1 hit *)
let load_use_stall = 2 (* extra when the next instruction consumes the load *)
let cost_acquisition = 3200  (* volatile signal read: slow serial bus *)
let cost_actuator = 1000     (* actuator command write *)

(* ---- the shared stepper ---- *)

type window = {
  mutable pair_ready : bool;       (* prev was an unpaired 1-cycle int op *)
  mutable pair_defs : Asm.reg list;
  mutable fpu_busy : bool;         (* prev was a pipelined FPU arith op *)
  mutable fpu_defs : Asm.reg list;
  mutable load_defs : Asm.reg list; (* defs of prev instr when it was a load *)
}

let fresh_window () : window =
  { pair_ready = false;
    pair_defs = [];
    fpu_busy = false;
    fpu_defs = [];
    load_defs = [] }

let reset (w : window) : unit =
  w.pair_ready <- false;
  w.pair_defs <- [];
  w.fpu_busy <- false;
  w.fpu_defs <- [];
  w.load_defs <- []

let intersects (a : Asm.reg list) (b : Asm.reg list) : bool =
  List.exists (fun x -> List.mem x b) a

(* 1-cycle integer ops eligible for dual-issue pairing. Expanded
   pseudo-instructions (setcc, movcc, la, ...) are excluded: their
   second micro-instruction occupies the pair slot. *)
let pairable (i : Asm.instr) : bool =
  match i with
  | Asm.Padd _ | Asm.Psubf _ | Asm.Pand _ | Asm.Por _ | Asm.Pxor _
  | Asm.Pslw _ | Asm.Psraw _ | Asm.Pneg _ | Asm.Pmr _ | Asm.Paddi _
  | Asm.Paddis _ | Asm.Pori _ | Asm.Pslwi _ | Asm.Pcmpw _ | Asm.Pcmpwi _ ->
    true
  | _ -> false

let is_fpu_arith (i : Asm.instr) : bool =
  match i with
  | Asm.Pfadd _ | Asm.Pfsub _ | Asm.Pfmul _ | Asm.Pfmadd _ | Asm.Pfmsub _ ->
    true
  | _ -> false

let is_load (i : Asm.instr) : bool =
  match i with
  | Asm.Plwz _ | Asm.Plfd _ | Asm.Plfdc _ -> true
  | _ -> false

(* Base cost of an instruction, before pairing/overlap/stall effects.
   Branches cost 0 here: their cost depends on the direction and is
   charged per executed edge ([branch_cost]), by the simulator when it
   jumps and by the analyzer on the corresponding CFG edge. *)
let base_cost (i : Asm.instr) : int =
  match i with
  | Asm.Plabel _ | Asm.Pannot _ | Asm.Pb _ | Asm.Pbc _ | Asm.Pblr -> 0
  | Asm.Pmullw _ -> cost_mullw
  | Asm.Pdivw _ -> cost_divw
  | Asm.Pfdiv _ -> cost_fdiv
  | Asm.Pfadd _ | Asm.Pfsub _ | Asm.Pfmul _ | Asm.Pfmadd _ | Asm.Pfmsub _ ->
    cost_fpu
  | Asm.Pfcfiw _ | Asm.Pfctiwz _ -> 4
  | Asm.Plwz _ | Asm.Plfd _ | Asm.Plfdc _ -> cost_load
  | Asm.Pacqi _ | Asm.Pacqf _ -> cost_acquisition
  | Asm.Pouti _ | Asm.Poutf _ -> cost_actuator
  | _ -> 1  (* int ALU, stores, moves, compares, setcc, frame ops *)

(* Cost of executing [i] in window state [w]; updates the window.
   Cache-miss penalties are NOT included (the simulator adds concrete
   misses, the analyzer adds classified ones). *)
let step (w : window) (i : Asm.instr) : int =
  match i with
  | Asm.Plabel _ | Asm.Pb _ | Asm.Pbc _ | Asm.Pblr ->
    reset w;
    0
  | Asm.Pannot _ -> 0  (* transparent: occupies no issue slot *)
  | _ ->
    let uses = Asm.uses i in
    let defs = Asm.defs i in
    let stall =
      if intersects w.load_defs uses then load_use_stall else 0
    in
    let cost =
      if is_fpu_arith i then begin
        if w.fpu_busy
           && (not (intersects w.fpu_defs uses))
           && not (intersects w.fpu_defs defs)
        then cost_fpu_overlap
        else cost_fpu
      end
      else if pairable i then begin
        if stall = 0 && w.pair_ready
           && (not (intersects w.pair_defs uses))
           && not (intersects w.pair_defs defs)
        then 0
        else base_cost i
      end
      else base_cost i
    in
    let cost = if is_fpu_arith i then cost + stall else cost + stall in
    (* window update *)
    w.pair_ready <- pairable i && cost = 1;
    w.pair_defs <- (if pairable i then defs else []);
    w.fpu_busy <- is_fpu_arith i;
    w.fpu_defs <- (if is_fpu_arith i then defs else []);
    w.load_defs <- (if is_load i then defs else []);
    cost

(* Per-instruction costs of a straight-line sequence (one basic block),
   starting from a fresh window — the analyzer's block-cost input. *)
let static_costs (code : Asm.instr array) : int array =
  let w = fresh_window () in
  Array.map (step w) code
