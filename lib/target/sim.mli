(** Executable simulator: concrete registers, memory laid out by
    {!Layout}, a concrete LRU data cache, and the shared {!Timing} cost
    model. Produces the interpreter's observable-trace type plus
    performance counters, so one harness checks semantic preservation
    (traces equal) and another timing soundness (analyzer WCET >=
    [rr_stats.cycles]). The instruction cache is not simulated: the
    analyzer charges fetch misses it cannot exclude, keeping its bound
    sound without a concrete fetch model. *)

type stats = {
  mutable cycles : int;
  mutable dcache_reads : int;
  mutable dcache_writes : int;
}

type run_result = {
  rr_result : Minic.Interp.result;
  rr_stats : stats;
}

val run :
  ?cycles:int -> ?fuel:int -> source:Minic.Ast.program -> Asm.program ->
  Layout.t -> Minic.Interp.world -> Minic.Value.t list -> run_result
(** Run the entry point of the compiled program: once with the given
    argument values, or — with [?cycles] — that many consecutive
    control cycles of a nullary entry point, with memory, cache and
    volatile read counters persisting (the machine-level mirror of
    [Minic.Interp.run_cycles]).
    @raise Minic.Interp.Runtime_error on undefined names or bad arity;
    @raise Minic.Interp.Out_of_fuel when the step budget runs out. *)
