(** Concrete set-associative LRU cache — the execution model of the
    MPC755 split L1 caches. The WCET analyzer re-derives the same
    geometry from {!config} and over-approximates the replacement;
    property tests compare the two access by access. *)

type config = {
  cfg_sets : int;
  cfg_assoc : int;
  cfg_line : int;  (** bytes *)
}

val mpc755_l1 : config
(** MPC755 L1: 32 KiB, 8-way, 32-byte lines (128 sets), split I/D. *)

val mpc : config
(** Alias for {!mpc755_l1}. *)

val tiny : config
(** Small configuration for unit tests: 4 sets, 2-way, 16-byte lines. *)

type t = {
  cfg : config;
  sets : int list array;  (** per set: resident line indices, MRU first *)
  mutable hits : int;
  mutable misses : int;
}

val create : config -> t

val set_of : t -> int -> int
(** Set index of a line index. *)

val resident : t -> int -> bool
(** Is this line index currently cached? *)

val touch : t -> int -> bool
(** Touch one line; [true] on miss. Updates LRU order and counters. *)

val access : t -> int -> int -> int
(** [access c addr size] touches every line overlapping
    [\[addr, addr+size)]; returns the number of misses. *)
