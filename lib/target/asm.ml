(* The target machine: a PPC755-flavoured instruction set in the style
   of CompCert's PowerPC Asm language — a small subset of real PPC
   augmented with CompCert-like pseudo-instructions (constant-pool
   loads, conditional moves, frame handling, MMIO acquisitions and the
   pro-forma annotation marker of paper section 3.4).

   Everything downstream — both compilers, the simulator, the WCET
   analyzer — speaks this one type. *)

type ireg = int  (* r0..r31; r0 reads as literal 0 in addi/addis bases *)
type freg = int  (* f0..f31 *)
type label = int

(* ---- register conventions (EABI-ish, function-call free) ----

   The generated programs never contain calls (flight-control nodes are
   fully inlined by the ACG), so there is no caller/callee-save split;
   the conventions only fix parameter arrival (r3.., f1..), return
   registers (r3 / f1) and which registers compilers may allocate
   freely versus keep as emission scratch. *)

let sp = 1

let int_scratch = 2    (* remainder expansion *)
let int_scratch1 = 11  (* address formation, spill reloads *)
let int_scratch2 = 12  (* second reload / setcc combination *)
let float_scratch1 = 12
let float_scratch2 = 13

(* Palette of the graph-coloring allocator (vcomp). The COTS compiler
   uses fixed sub-ranges of the same palette (expression stack r3-r10 /
   f1-f11, locals r14-r27 / f14-f28, loop limits r28-r31, hoisted
   constants f29-f31). *)
let allocatable_iregs : int list =
  [ 3; 4; 5; 6; 7; 8; 9; 10 ] @ List.init 18 (fun i -> 14 + i)

let allocatable_fregs : int list =
  List.init 11 (fun i -> 1 + i) @ List.init 15 (fun i -> 14 + i)

(* ---- condition register (CR0) conditions ---- *)

type crbit = CRlt | CRgt | CReq

type branch_cond =
  | BT of crbit  (* branch if bit set *)
  | BF of crbit  (* branch if bit clear *)

let negate_cond (c : branch_cond) : branch_cond =
  match c with BT b -> BF b | BF b -> BT b

(* Condition bit satisfied after [cmpw a, b] when [a cmp b] holds. *)
let cond_of_cmp (c : Minic.Ast.comparison) : branch_cond =
  match c with
  | Minic.Ast.Ceq -> BT CReq
  | Minic.Ast.Cne -> BF CReq
  | Minic.Ast.Clt -> BT CRlt
  | Minic.Ast.Cge -> BF CRlt
  | Minic.Ast.Cgt -> BT CRgt
  | Minic.Ast.Cle -> BF CRgt

(* Float comparisons via [fcmpu]: on unordered operands (NaN) no CR bit
   is set, so the IEEE behaviour — every ordered comparison false, <>
   true — falls out of testing the positive bits only. A disjunction
   (two conditions) encodes <= and >=. *)
let fconds_of_cmp (c : Minic.Ast.comparison) : branch_cond list =
  match c with
  | Minic.Ast.Ceq -> [ BT CReq ]
  | Minic.Ast.Cne -> [ BF CReq ]
  | Minic.Ast.Clt -> [ BT CRlt ]
  | Minic.Ast.Cgt -> [ BT CRgt ]
  | Minic.Ast.Cle -> [ BT CRlt; BT CReq ]
  | Minic.Ast.Cge -> [ BT CRgt; BT CReq ]

(* ---- addressing modes ---- *)

type address =
  | Aind of ireg * int32    (* register + 16-bit displacement *)
  | Aindx of ireg * ireg    (* register + register *)
  | Aglob of string * int32 (* absolute symbol + displacement (pseudo) *)
  | Asda of string * int32  (* small-data-area symbol (r13-relative) *)

(* ---- annotation arguments (paper section 3.4) ---- *)

type annot_arg =
  | AA_ireg of ireg
  | AA_freg of freg
  | AA_const_int of int32
  | AA_const_float of float
  | AA_stack_int of int32   (* sp-relative slot holding an int *)
  | AA_stack_float of int32

(* ---- instructions ---- *)

type instr =
  (* control *)
  | Plabel of label
  | Pb of label
  | Pbc of branch_cond * label
  | Pblr
  | Pannot of string * annot_arg list
  (* integer ALU *)
  | Padd of ireg * ireg * ireg
  | Psubf of ireg * ireg * ireg  (* subtract-from: d := rb - ra *)
  | Pmullw of ireg * ireg * ireg
  | Pdivw of ireg * ireg * ireg  (* total: x/0 = 0, INT_MIN / -1 = 0 *)
  | Pand of ireg * ireg * ireg
  | Por of ireg * ireg * ireg
  | Pxor of ireg * ireg * ireg
  | Pslw of ireg * ireg * ireg   (* shift amount masked to 5 bits *)
  | Psraw of ireg * ireg * ireg
  | Pneg of ireg * ireg
  | Pmr of ireg * ireg
  | Paddi of ireg * ireg * int32  (* base r0 reads as 0 *)
  | Paddis of ireg * ireg * int32
  | Pori of ireg * ireg * int32
  | Pslwi of ireg * ireg * int
  (* memory *)
  | Plwz of ireg * address
  | Pstw of ireg * address
  | Plfd of freg * address
  | Pstfd of freg * address
  | Plfdc of freg * float        (* constant-pool load (pseudo) *)
  | Pla of ireg * string         (* load symbol address (pseudo) *)
  (* compares, set/move on condition *)
  | Pcmpw of ireg * ireg
  | Pcmpwi of ireg * int32
  | Pfcmpu of freg * freg
  | Psetcc of ireg * branch_cond          (* d := cond ? 1 : 0 (pseudo) *)
  | Pmovcc of ireg * ireg * branch_cond   (* if cond then d := s *)
  | Pfmovcc of freg * freg * branch_cond
  (* float arithmetic *)
  | Pfadd of freg * freg * freg
  | Pfsub of freg * freg * freg
  | Pfmul of freg * freg * freg
  | Pfdiv of freg * freg * freg
  | Pfmadd of freg * freg * freg * freg  (* d := a*b + c, single rounding *)
  | Pfmsub of freg * freg * freg * freg  (* d := a*b - c *)
  | Pfneg of freg * freg
  | Pfabs of freg * freg
  | Pfmr of freg * freg
  | Pfcfiw of freg * ireg   (* float of signed int *)
  | Pfctiwz of ireg * freg  (* int of float, truncating, saturating *)
  (* volatile MMIO (observable) *)
  | Pacqi of ireg * string   (* acquire integer/boolean signal *)
  | Pacqf of freg * string
  | Pouti of string * ireg   (* actuator command *)
  | Poutf of string * freg
  (* frame handling *)
  | Pallocframe of int
  | Pfreeframe of int

type func = { fn_name : string; fn_code : instr list }

type program = { pr_funcs : func list; pr_main : string }

(* ---- sizes ----

   Labels and annotations occupy no code bytes; pseudo-instructions
   that expand to two real instructions (immediate-pair constant
   formation, cr-bit extraction, MMIO sequences) take 8 bytes; plain
   instructions take 4. The sizes feed block addresses, hence the
   instruction-cache analysis. *)

let instr_size (i : instr) : int =
  match i with
  | Plabel _ | Pannot _ -> 0
  | Plfdc _ | Pla _ | Psetcc _ | Pmovcc _ | Pfmovcc _
  | Pacqi _ | Pacqf _ | Pouti _ | Poutf _ -> 8
  | _ -> 4

let func_size (f : func) : int =
  List.fold_left (fun acc i -> acc + instr_size i) 0 f.fn_code

let program_size (p : program) : int =
  List.fold_left (fun acc f -> acc + func_size f) 0 p.pr_funcs

let find_func (p : program) (name : string) : func option =
  List.find_opt (fun f -> String.equal f.fn_name name) p.pr_funcs

(* ---- def/use sets (scheduling, loop-bound analysis) ---- *)

type reg = IR of int | FR of int

let addr_uses (a : address) : reg list =
  match a with
  | Aind (b, _) -> [ IR b ]
  | Aindx (b, x) -> [ IR b; IR x ]
  | Aglob _ | Asda _ -> []

let defs (i : instr) : reg list =
  match i with
  | Padd (d, _, _) | Psubf (d, _, _) | Pmullw (d, _, _) | Pdivw (d, _, _)
  | Pand (d, _, _) | Por (d, _, _) | Pxor (d, _, _) | Pslw (d, _, _)
  | Psraw (d, _, _) | Pneg (d, _) | Pmr (d, _) | Paddi (d, _, _)
  | Paddis (d, _, _) | Pori (d, _, _) | Pslwi (d, _, _) | Plwz (d, _)
  | Pla (d, _) | Psetcc (d, _) | Pmovcc (d, _, _) | Pacqi (d, _)
  | Pfctiwz (d, _) -> [ IR d ]
  | Plfd (d, _) | Plfdc (d, _) | Pfadd (d, _, _) | Pfsub (d, _, _)
  | Pfmul (d, _, _) | Pfdiv (d, _, _) | Pfmadd (d, _, _, _)
  | Pfmsub (d, _, _, _) | Pfneg (d, _) | Pfabs (d, _) | Pfmr (d, _)
  | Pfmovcc (d, _, _) | Pacqf (d, _) | Pfcfiw (d, _) -> [ FR d ]
  | Pallocframe _ | Pfreeframe _ -> [ IR sp ]
  | Pstw _ | Pstfd _ | Pouti _ | Poutf _ | Pcmpw _ | Pcmpwi _ | Pfcmpu _
  | Pannot _ | Plabel _ | Pb _ | Pbc _ | Pblr -> []

let uses (i : instr) : reg list =
  match i with
  | Padd (_, a, b) | Psubf (_, a, b) | Pmullw (_, a, b) | Pdivw (_, a, b)
  | Pand (_, a, b) | Por (_, a, b) | Pxor (_, a, b) | Pslw (_, a, b)
  | Psraw (_, a, b) | Pcmpw (a, b) -> [ IR a; IR b ]
  | Pneg (_, a) | Pmr (_, a) | Pori (_, a, _) | Pslwi (_, a, _)
  | Pcmpwi (a, _) | Pfcfiw (_, a) -> [ IR a ]
  | Paddi (_, a, _) | Paddis (_, a, _) -> if a = 0 then [] else [ IR a ]
  | Plwz (_, a) | Plfd (_, a) -> addr_uses a
  | Pstw (s, a) -> IR s :: addr_uses a
  | Pstfd (s, a) -> FR s :: addr_uses a
  | Pmovcc (d, s, _) -> [ IR d; IR s ]  (* d only conditionally written *)
  | Pfmovcc (d, s, _) -> [ FR d; FR s ]
  | Pfadd (_, a, b) | Pfsub (_, a, b) | Pfmul (_, a, b) | Pfdiv (_, a, b)
  | Pfcmpu (a, b) -> [ FR a; FR b ]
  | Pfmadd (_, a, b, c) | Pfmsub (_, a, b, c) -> [ FR a; FR b; FR c ]
  | Pfneg (_, a) | Pfabs (_, a) | Pfmr (_, a) | Pfctiwz (_, a) -> [ FR a ]
  | Pouti (_, r) -> [ IR r ]
  | Poutf (_, f) -> [ FR f ]
  | Pannot (_, args) ->
    List.filter_map
      (fun a ->
         match a with
         | AA_ireg r -> Some (IR r)
         | AA_freg f -> Some (FR f)
         | AA_const_int _ | AA_const_float _ | AA_stack_int _
         | AA_stack_float _ -> None)
      args
  | Pallocframe _ | Pfreeframe _ -> [ IR sp ]
  | Plfdc _ | Pla _ | Psetcc _ | Pacqi _ | Pacqf _ | Plabel _ | Pb _
  | Pbc _ | Pblr -> []
