(** The timing model (DESIGN section 5), shared verbatim by the
    executable simulator and the WCET analyzer's pipeline phase.
    Overlap windows reset at labels and branches, so per-block
    [static_costs] compose exactly with the simulator's per-instruction
    stepping — the analyzer's only over-approximations are cache
    classification and worst-path selection. *)

val cache_miss_penalty : int
(** Extra cycles per missed cache line. *)

val branch_cost : taken:bool -> int
(** Cost of the control transfer itself, charged per executed edge. *)

(** Cost constants, exposed for reporting; prefer {!step} over summing
    these by hand. *)

val cost_mullw : int
val cost_divw : int
val cost_fdiv : int
val cost_fpu : int
val cost_fpu_overlap : int
val cost_load : int
val load_use_stall : int
val cost_acquisition : int
val cost_actuator : int

type window
(** Pipeline overlap state: dual-issue pairing, FPU overlap,
    load-to-use forwarding. *)

val fresh_window : unit -> window
val reset : window -> unit

val step : window -> Asm.instr -> int
(** Cost of executing one instruction in the given window state;
    updates the window. Branch direction costs and cache-miss penalties
    are NOT included. *)

val static_costs : Asm.instr array -> int array
(** Per-instruction costs of one basic block, from a fresh window. *)
