(* Assembly printer. One line per instruction, GNU-as flavoured, with
   pseudo-instructions rendered as comments or their canonical expanded
   mnemonic. [substitute_annot] resolves the %n placeholders of a
   source annotation against the locations the compiler assigned —
   this printed form is what the analyzer-side annotation file (paper
   section 3.4) carries back to the proof environment. *)

let ireg (r : Asm.ireg) : string = "r" ^ string_of_int r
let freg (f : Asm.freg) : string = "f" ^ string_of_int f
let label (l : Asm.label) : string = ".L" ^ string_of_int l

let cond (c : Asm.branch_cond) : string =
  match c with
  | Asm.BT Asm.CRlt -> "lt"
  | Asm.BT Asm.CRgt -> "gt"
  | Asm.BT Asm.CReq -> "eq"
  | Asm.BF Asm.CRlt -> "ge"
  | Asm.BF Asm.CRgt -> "le"
  | Asm.BF Asm.CReq -> "ne"

let address (a : Asm.address) : string =
  match a with
  | Asm.Aind (b, off) -> Printf.sprintf "%ld(%s)" off (ireg b)
  | Asm.Aindx (b, x) -> Printf.sprintf "%s,%s" (ireg b) (ireg x)
  | Asm.Aglob (s, off) ->
    if off = 0l then s else Printf.sprintf "%s+%ld" s off
  | Asm.Asda (s, off) ->
    if off = 0l then s ^ "@sda" else Printf.sprintf "%s+%ld@sda" s off

let annot_arg (a : Asm.annot_arg) : string =
  match a with
  | Asm.AA_ireg r -> ireg r
  | Asm.AA_freg f -> freg f
  | Asm.AA_const_int n -> Int32.to_string n
  | Asm.AA_const_float c -> Printf.sprintf "%g" c
  | Asm.AA_stack_int off | Asm.AA_stack_float off -> "@" ^ Int32.to_string off

(* Replace %1, %2, ... in [text] by the printed form of the matching
   argument. Unmatched placeholders are left in place. *)
let substitute_annot (text : string) (args : Asm.annot_arg list) : string =
  let buf = Buffer.create (String.length text + 16) in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '%' && !i + 1 < n && text.[!i + 1] >= '1'
       && text.[!i + 1] <= '9'
    then begin
      let j = ref (!i + 1) in
      while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do incr j done;
      let idx = int_of_string (String.sub text (!i + 1) (!j - !i - 1)) in
      (match List.nth_opt args (idx - 1) with
       | Some a -> Buffer.add_string buf (annot_arg a)
       | None -> Buffer.add_string buf (String.sub text !i (!j - !i)));
      i := !j
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let r3 = Printf.sprintf

let instr_str (i : Asm.instr) : string =
  match i with
  | Asm.Plabel l -> label l ^ ":"
  | Asm.Pb l -> "\tb " ^ label l
  | Asm.Pbc (c, l) -> r3 "\tb%s %s" (cond c) (label l)
  | Asm.Pblr -> "\tblr"
  | Asm.Pannot (text, args) ->
    "\t# annotation: " ^ substitute_annot text args
  | Asm.Padd (d, a, b) -> r3 "\tadd %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Psubf (d, a, b) -> r3 "\tsubf %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pmullw (d, a, b) ->
    r3 "\tmullw %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pdivw (d, a, b) -> r3 "\tdivw %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pand (d, a, b) -> r3 "\tand %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Por (d, a, b) -> r3 "\tor %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pxor (d, a, b) -> r3 "\txor %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pslw (d, a, b) -> r3 "\tslw %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Psraw (d, a, b) -> r3 "\tsraw %s, %s, %s" (ireg d) (ireg a) (ireg b)
  | Asm.Pneg (d, a) -> r3 "\tneg %s, %s" (ireg d) (ireg a)
  | Asm.Pmr (d, a) -> r3 "\tmr %s, %s" (ireg d) (ireg a)
  | Asm.Paddi (d, a, n) -> r3 "\taddi %s, %s, %ld" (ireg d) (ireg a) n
  | Asm.Paddis (d, a, n) -> r3 "\taddis %s, %s, %ld" (ireg d) (ireg a) n
  | Asm.Pori (d, a, n) -> r3 "\tori %s, %s, %ld" (ireg d) (ireg a) n
  | Asm.Pslwi (d, a, n) -> r3 "\tslwi %s, %s, %d" (ireg d) (ireg a) n
  | Asm.Plwz (d, a) -> r3 "\tlwz %s, %s" (ireg d) (address a)
  | Asm.Pstw (s, a) -> r3 "\tstw %s, %s" (ireg s) (address a)
  | Asm.Plfd (d, a) -> r3 "\tlfd %s, %s" (freg d) (address a)
  | Asm.Pstfd (s, a) -> r3 "\tstfd %s, %s" (freg s) (address a)
  | Asm.Plfdc (d, c) -> r3 "\tlfd %s, .LC[%h]  # %g" (freg d) c c
  | Asm.Pla (d, s) -> r3 "\tla %s, %s" (ireg d) s
  | Asm.Pcmpw (a, b) -> r3 "\tcmpw %s, %s" (ireg a) (ireg b)
  | Asm.Pcmpwi (a, n) -> r3 "\tcmpwi %s, %ld" (ireg a) n
  | Asm.Pfcmpu (a, b) -> r3 "\tfcmpu %s, %s" (freg a) (freg b)
  | Asm.Psetcc (d, c) -> r3 "\tset%s %s" (cond c) (ireg d)
  | Asm.Pmovcc (d, s, c) -> r3 "\tmov%s %s, %s" (cond c) (ireg d) (ireg s)
  | Asm.Pfmovcc (d, s, c) -> r3 "\tfmov%s %s, %s" (cond c) (freg d) (freg s)
  | Asm.Pfadd (d, a, b) -> r3 "\tfadd %s, %s, %s" (freg d) (freg a) (freg b)
  | Asm.Pfsub (d, a, b) -> r3 "\tfsub %s, %s, %s" (freg d) (freg a) (freg b)
  | Asm.Pfmul (d, a, b) -> r3 "\tfmul %s, %s, %s" (freg d) (freg a) (freg b)
  | Asm.Pfdiv (d, a, b) -> r3 "\tfdiv %s, %s, %s" (freg d) (freg a) (freg b)
  | Asm.Pfmadd (d, a, b, c) ->
    r3 "\tfmadd %s, %s, %s, %s" (freg d) (freg a) (freg b) (freg c)
  | Asm.Pfmsub (d, a, b, c) ->
    r3 "\tfmsub %s, %s, %s, %s" (freg d) (freg a) (freg b) (freg c)
  | Asm.Pfneg (d, a) -> r3 "\tfneg %s, %s" (freg d) (freg a)
  | Asm.Pfabs (d, a) -> r3 "\tfabs %s, %s" (freg d) (freg a)
  | Asm.Pfmr (d, a) -> r3 "\tfmr %s, %s" (freg d) (freg a)
  | Asm.Pfcfiw (d, a) -> r3 "\tfcfiw %s, %s" (freg d) (ireg a)
  | Asm.Pfctiwz (d, a) -> r3 "\tfctiwz %s, %s" (ireg d) (freg a)
  | Asm.Pacqi (d, x) -> r3 "\tacqi %s, %s  # volatile read" (ireg d) x
  | Asm.Pacqf (d, x) -> r3 "\tacqf %s, %s  # volatile read" (freg d) x
  | Asm.Pouti (x, s) -> r3 "\touti %s, %s  # volatile write" x (ireg s)
  | Asm.Poutf (x, s) -> r3 "\toutf %s, %s  # volatile write" x (freg s)
  | Asm.Pallocframe n -> r3 "\tstwu r1, %d(r1)  # allocframe" (-n)
  | Asm.Pfreeframe n -> r3 "\taddi r1, r1, %d  # freeframe" n

let func_to_string (f : Asm.func) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (f.Asm.fn_name ^ ":\n");
  List.iter
    (fun i ->
       Buffer.add_string buf (instr_str i);
       Buffer.add_char buf '\n')
    f.Asm.fn_code;
  Buffer.contents buf

let program_to_string (p : Asm.program) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "\t.text\n";
  List.iter
    (fun f ->
       Buffer.add_char buf '\n';
       Buffer.add_string buf (func_to_string f))
    p.Asm.pr_funcs;
  Buffer.contents buf
