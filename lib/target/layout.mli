(** Linker/loader model: concrete addresses for code, globals, arrays
    and the float constant pool. The cache analysis and the simulator
    read addresses from the same layout, so both see the same line/set
    geometry. Scalars are naturally aligned (no line straddling);
    volatiles are MMIO and never laid out. *)

type t = {
  lay_code : (string, int) Hashtbl.t;      (** function -> entry address *)
  lay_sym : (string, int) Hashtbl.t;       (** global/array -> address *)
  lay_sym_size : (string, int) Hashtbl.t;  (** global/array -> bytes *)
  lay_consts : (int64, int) Hashtbl.t;     (** float bits -> pool address *)
  lay_stack_top : int;
  lay_mem_size : int;
}

val build : Minic.Ast.program -> Asm.program -> t

val const_addr : t -> float -> int
(** Pool address of a [Plfdc] constant.
    @raise Invalid_argument when the constant is not in the pool. *)

val sym_addr : t -> string -> int
val func_addr : t -> string -> int
