(* Linker/loader model: assigns concrete addresses to code, globals,
   arrays and the float constant pool. The WCET cache analysis and the
   executable simulator both read addresses from here, so both see the
   same line/set geometry — a prerequisite for the WCET >= cycles
   invariant.

   Address map:
     0x01000   code (functions in program order, 16-aligned)
     0x10000   data (globals then arrays, naturally aligned, 8-aligned)
     ......    float constant pool (8 bytes per distinct constant)
     0x80000   initial stack pointer (stack grows down; 32-aligned so
               sp-relative slot arithmetic matches line arithmetic)

   Scalars are naturally aligned and lines are 32 bytes, so no scalar
   access ever straddles a line. Volatiles are MMIO — looked up by
   name, never laid out. *)

type t = {
  lay_code : (string, int) Hashtbl.t;      (* function -> entry address *)
  lay_sym : (string, int) Hashtbl.t;       (* global/array -> address *)
  lay_sym_size : (string, int) Hashtbl.t;  (* global/array -> size in bytes *)
  lay_consts : (int64, int) Hashtbl.t;     (* float bits -> pool address *)
  lay_stack_top : int;
  lay_mem_size : int;
}

let code_base = 0x1000
let data_base = 0x10000
let stack_top = 0x80000

let align (n : int) (a : int) : int = (n + a - 1) / a * a

let typ_size (ty : Minic.Ast.typ) : int =
  match ty with
  | Minic.Ast.Tint | Minic.Ast.Tbool -> 4
  | Minic.Ast.Tfloat -> 8

(* Distinct float-pool constants, in first-use order. *)
let pool_constants (asm : Asm.program) : float list =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun f ->
       List.iter
         (fun i ->
            match i with
            | Asm.Plfdc (_, c) ->
              let key = Int64.bits_of_float c in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                acc := c :: !acc
              end
            | _ -> ())
         f.Asm.fn_code)
    asm.Asm.pr_funcs;
  List.rev !acc

let build (src : Minic.Ast.program) (asm : Asm.program) : t =
  let lay_code = Hashtbl.create 16 in
  let lay_sym = Hashtbl.create 16 in
  let lay_sym_size = Hashtbl.create 16 in
  let lay_consts = Hashtbl.create 16 in
  (* code *)
  let pc = ref code_base in
  List.iter
    (fun f ->
       Hashtbl.replace lay_code f.Asm.fn_name !pc;
       pc := align (!pc + Asm.func_size f) 16)
    asm.Asm.pr_funcs;
  (* data: scalars, then arrays, naturally aligned *)
  let dp = ref data_base in
  let place name size =
    dp := align !dp (if size >= 8 then 8 else size);
    Hashtbl.replace lay_sym name !dp;
    Hashtbl.replace lay_sym_size name size;
    dp := !dp + size
  in
  List.iter
    (fun (x, ty) -> place x (typ_size ty))
    src.Minic.Ast.prog_globals;
  List.iter
    (fun a ->
       let elt = typ_size a.Minic.Ast.arr_elt in
       place a.Minic.Ast.arr_name (elt * List.length a.Minic.Ast.arr_init))
    src.Minic.Ast.prog_arrays;
  (* float constant pool *)
  dp := align !dp 8;
  List.iter
    (fun c ->
       Hashtbl.replace lay_consts (Int64.bits_of_float c) !dp;
       dp := !dp + 8)
    (pool_constants asm);
  { lay_code;
    lay_sym;
    lay_sym_size;
    lay_consts;
    lay_stack_top = stack_top;
    lay_mem_size = stack_top + 0x10000 }

let const_addr (lay : t) (c : float) : int =
  match Hashtbl.find_opt lay.lay_consts (Int64.bits_of_float c) with
  | Some a -> a
  | None -> invalid_arg "Layout.const_addr: constant not in pool"

let sym_addr (lay : t) (s : string) : int =
  match Hashtbl.find_opt lay.lay_sym s with
  | Some a -> a
  | None -> invalid_arg ("Layout.sym_addr: unknown symbol " ^ s)

let func_addr (lay : t) (f : string) : int =
  match Hashtbl.find_opt lay.lay_code f with
  | Some a -> a
  | None -> invalid_arg ("Layout.func_addr: unknown function " ^ f)
