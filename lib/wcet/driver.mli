(** Analyzer driver: the full aiT-like phase sequence — decode/CFG
    reconstruction, dominators and natural loops, interval value
    analysis, loop bounds (automatic counter analysis + annotations),
    cache analysis (capacity persistence refined by the must-cache
    ageing analysis), pipeline analysis sharing the simulator's timing
    model, and path analysis by the selected engine (structural IPET,
    the OMT engine {!Smt}, or both cross-checked).

    Every entry point takes an optional content-addressed {!Memo.t}
    cache. Caching is observationally invisible: a hit returns exactly
    the report (and annotation fragment) the analysis would recompute,
    with the function name re-stamped (the name is not part of the
    content key — see [lib/wcet/README.md]). Only successful analyses
    are cached; refusals ([Error]) re-run every time. *)

exception Error of string

val analyze :
  ?cache:Memo.t -> ?fuel:Fuel.t -> ?spec:string ->
  ?engine:Report.engine -> ?fname:string ->
  Target.Asm.program -> Target.Layout.t -> Report.t
(** Analyze one entry point. [fuel] budgets every iterative phase
    (default {!Fuel.default}, bit-identical to the unbudgeted
    analyzer); the budgets are part of the cache key, and a refusal —
    fuel exhaustion included — is never cached. [spec] names the
    toolchain pipeline that produced the assembly
    ({!Fcstack.Chain.pipeline_spec}); it widens the cache key so
    different optimization selections never share an entry.

    [engine] (default [Ipet], byte-identical output to the pre-engine
    analyzer) selects the path analysis: [Omt] bounds by the
    {!Smt} optimization-modulo-theory engine; [Both] runs OMT (whose
    base solve is the IPET solve over the identical flow system) and
    refuses unless the differential oracle [omt <= ipet] holds. The
    engine is part of the cache key: engines never share entries.
    @raise Error when no sound bound can be produced (irreducible
    control flow, a loop without derivable bound or annotation, an
    infeasible path program, an exhausted fuel budget — "analysis
    diverged" — or an engine-divergence oracle violation) — the
    analyzer refuses rather than under-estimate. *)

val analyze_full :
  ?cache:Memo.t -> ?fuel:Fuel.t -> ?spec:string ->
  ?engine:Report.engine -> ?fname:string ->
  Target.Asm.program -> Target.Layout.t -> Report.t * Annotfile.entry list
(** [analyze] plus the function's annotation-file fragment, served from
    the cache on a hit without re-scanning the instruction stream. *)

val analyze_program :
  ?cache:Memo.t -> ?fuel:Fuel.t -> ?spec:string ->
  ?engine:Report.engine -> Target.Asm.program ->
  Target.Layout.t -> (string * Report.t) list
(** Per-function analysis (the per-node WCET of the paper's Figure 2).
    Iterates the program's functions directly — one pass, no repeated
    [Asm.find_func] linear scans. *)

val annotations :
  ?cache:Memo.t -> ?fuel:Fuel.t -> ?spec:string ->
  ?engine:Report.engine -> Target.Asm.program ->
  Target.Layout.t -> Annotfile.entry list
(** The whole program's annotation entries, taking each function's
    fragment from the cache when its analysis is already there
    (without disturbing the hit/miss accounting). *)
