(* Analyzer driver: the full aiT-like phase sequence of the paper's
   Figure 1 (Gebhard et al.) applied to one task entry point:

     decode/CFG reconstruction -> loop & value analysis ->
     cache & pipeline analysis -> IPET path analysis.

   [analyze] raises [Error] when the program cannot be soundly bounded
   (irreducible flow, unbounded loop without annotation) — the analyzer
   never silently returns an unsound number.

   All entry points take an optional [?cache] ([Memo.t]): when given,
   an analysis whose content key (code, placement, layout slice — see
   [Memo]) was already computed is served from the cache, with the
   function name re-stamped into the report and annotation entries
   (the name is the one analysis input that only reaches the output).
   Only successful analyses are cached; a refused analysis re-runs its
   phases on every call, which keeps [Error] messages exact. *)

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* The phase sequence proper, on a function already resolved to its
   entry address. Phase-run accounting goes to the cache (if any), so
   hit/miss arithmetic in [Report.analysis_stats] is observable.

   [fuel] budgets every iterative phase (see [Fuel]); exhaustion is
   caught here and converted into a refusal ([Error "analysis
   diverged: ..."]) — the analyzer never hangs and never trades a
   blown budget for an unsound bound. *)
let compute ?cache ?(fuel = Fuel.default) ?(engine = Report.Ipet)
    (fname : string) (f : Target.Asm.func) (base_addr : int)
    (lay : Target.Layout.t) : Report.t * Annotfile.entry list =
  try
  (* 1. decode *)
  Memo.count_phase cache Memo.Pdecode;
  let cfg =
    try Cfg.build fname base_addr f.Target.Asm.fn_code
    with Cfg.Decode_error msg -> fail "decode: %s" msg
  in
  (* 2. dominators, loops *)
  let dom = Dom.compute cfg in
  let loops =
    try Loops.compute cfg dom
    with Loops.Irreducible msg -> fail "irreducible control flow: %s" msg
  in
  (* 3. value analysis *)
  Memo.count_phase cache Memo.Pvalue;
  let va = Valueanalysis.analyze ~fuel:fuel.Fuel.fl_widen cfg in
  (* 4. loop bounds *)
  Memo.count_phase cache Memo.Pbounds;
  let bounds =
    match Boundanalysis.analyze cfg dom loops va with
    | Ok bounds -> bounds
    | Error f' -> fail "%s" f'.Boundanalysis.fail_reason
  in
  (* 5. cache analysis: capacity/persistence classification refined by
     the Ferdinand-style must-cache ageing analysis *)
  Memo.count_phase cache Memo.Pcache;
  let cache_cls = Cacheanalysis.analyze cfg va lay in
  let must = Mustcache.analyze ~fuel:fuel.Fuel.fl_widen cfg va lay in
  let cache_cls = Cacheanalysis.refine cache_cls (Mustcache.block_hits must) in
  (* 6. pipeline analysis *)
  Memo.count_phase cache Memo.Ppipeline;
  let pl = Pipeline.analyze cfg cache_cls in
  (* 7. path analysis, by the selected engine. [Both] runs OMT (whose
     base solve *is* the IPET solve, over the identical flow system)
     and cross-checks the differential oracle omt <= ipet — a
     violation would mean one of the engines is wrong, so it is a
     refusal, never a silently reported number. *)
  let wcet, exact, wcet_ipet, wcet_omt, omt_cuts =
    match engine with
    | Report.Ipet ->
      Memo.count_phase cache Memo.Pipet;
      let res =
        try Ipet.compute ~fuel cfg pl cache_cls loops bounds
        with Ipet.Analysis_failed msg -> fail "path analysis: %s" msg
      in
      (res.Ipet.ipet_wcet, res.Ipet.ipet_exact, None, None, 0)
    | Report.Omt ->
      Memo.count_phase cache Memo.Pomt;
      let res =
        try Smt.compute ~fuel cfg dom pl cache_cls loops bounds
        with Ipet.Analysis_failed msg -> fail "path analysis: %s" msg
      in
      ( res.Smt.smt_wcet, res.Smt.smt_exact, None,
        Some res.Smt.smt_wcet, res.Smt.smt_cuts )
    | Report.Both ->
      Memo.count_phase cache Memo.Pipet;
      Memo.count_phase cache Memo.Pomt;
      let res =
        try Smt.compute ~fuel cfg dom pl cache_cls loops bounds
        with Ipet.Analysis_failed msg -> fail "path analysis: %s" msg
      in
      if res.Smt.smt_wcet > res.Smt.smt_ipet_wcet then
        fail
          "engine divergence on %s: OMT bound %d cycles exceeds IPET \
           bound %d cycles (refusing to bound)"
          fname res.Smt.smt_wcet res.Smt.smt_ipet_wcet;
      ( res.Smt.smt_wcet, res.Smt.smt_exact,
        Some res.Smt.smt_ipet_wcet, Some res.Smt.smt_wcet,
        res.Smt.smt_cuts )
  in
  ( { Report.rp_function = fname;
      rp_wcet = wcet;
      rp_exact_ilp = exact;
      rp_engine = engine;
      rp_wcet_ipet = wcet_ipet;
      rp_wcet_omt = wcet_omt;
      rp_omt_cuts = omt_cuts;
      rp_blocks = Cfg.num_blocks cfg;
      rp_code_bytes = Target.Asm.func_size f;
      rp_loops =
        List.map
          (fun lb ->
             { Report.li_header = lb.Boundanalysis.lb_header;
               li_bound = lb.Boundanalysis.lb_bound;
               li_from_annotation = lb.Boundanalysis.lb_source = Boundanalysis.Bannot })
          bounds;
      rp_cache_first_miss = cache_cls.Cacheanalysis.ca_first_miss;
      rp_cache_imprecise = cache_cls.Cacheanalysis.ca_imprecise;
      rp_code_lines = cache_cls.Cacheanalysis.ca_ilines;
      rp_data_lines = cache_cls.Cacheanalysis.ca_dlines },
    Annotfile.extract_func f )
  with Fuel.Exhausted what ->
    fail "analysis diverged: %s exhausted its fuel budget (refusing to bound)"
      what

(* One function, cache-aware. The cached report/annotations may carry
   the name of whichever structurally identical function was analyzed
   first; re-stamp ours (nothing else in the output depends on it). *)
let analyze_func ?cache ?fuel ?spec ?engine (f : Target.Asm.func)
    (base_addr : int) (lay : Target.Layout.t) :
  Report.t * Annotfile.entry list =
  let fname = f.Target.Asm.fn_name in
  match cache with
  | None -> compute ?fuel ?engine fname f base_addr lay
  | Some c ->
    (* the fuel budgets and the engine are part of the content key: a
       different budget can change the outcome (success vs refusal,
       exact vs relaxation bound) and a different engine bounds the
       same code differently by design, so neither ever shares an
       entry. Refusals ([Error], including fuel exhaustion) are never
       cached at all — only the successful [compute] below reaches
       [Memo.add]. *)
    let key = Memo.key ?fuel ?spec ?engine lay ~base:base_addr f in
    (match Memo.find c key with
     | Some v ->
       ( { v.Memo.cv_report with Report.rp_function = fname },
         List.map
           (fun e -> { e with Annotfile.an_function = fname })
           v.Memo.cv_annots )
     | None ->
       let report, annots =
         compute ~cache:c ?fuel ?engine fname f base_addr lay
       in
       Memo.add c key { Memo.cv_report = report; cv_annots = annots };
       (report, annots))

let resolve (asm : Target.Asm.program) (lay : Target.Layout.t)
    (fname : string) : Target.Asm.func * int =
  let f =
    match Target.Asm.find_func asm fname with
    | Some f -> f
    | None -> fail "no function %s" fname
  in
  match Hashtbl.find_opt lay.Target.Layout.lay_code fname with
  | Some a -> (f, a)
  | None -> fail "function %s not in layout" fname

let analyze_full ?cache ?fuel ?spec ?engine ?fname
    (asm : Target.Asm.program) (lay : Target.Layout.t) :
  Report.t * Annotfile.entry list =
  let fname = Option.value ~default:asm.Target.Asm.pr_main fname in
  let f, base_addr = resolve asm lay fname in
  analyze_func ?cache ?fuel ?spec ?engine f base_addr lay

let analyze ?cache ?fuel ?spec ?engine ?fname (asm : Target.Asm.program)
    (lay : Target.Layout.t) : Report.t =
  fst (analyze_full ?cache ?fuel ?spec ?engine ?fname asm lay)

(* WCET of every function in a program (the per-node analysis of the
   paper's Figure 2). The functions are iterated directly — no repeated
   name lookup: going through [analyze ~fname] re-ran the linear
   [Asm.find_func] scan per function, making whole-program analysis
   quadratic in the function count. Entry addresses still come from the
   layout's constant-time code table. *)
let analyze_program ?cache ?fuel ?spec ?engine (asm : Target.Asm.program)
    (lay : Target.Layout.t) : (string * Report.t) list =
  List.map
    (fun (f : Target.Asm.func) ->
       let base_addr =
         match Hashtbl.find_opt lay.Target.Layout.lay_code f.Target.Asm.fn_name with
         | Some a -> a
         | None -> fail "function %s not in layout" f.Target.Asm.fn_name
       in
       ( f.Target.Asm.fn_name,
         fst (analyze_func ?cache ?fuel ?spec ?engine f base_addr lay) ))
    asm.Target.Asm.pr_funcs

(* The whole program's annotation file, through the cache: a function
   whose analysis already hit contributes its cached fragment without
   re-scanning the instruction stream. *)
let annotations ?cache ?fuel ?spec ?engine (asm : Target.Asm.program)
    (lay : Target.Layout.t) : Annotfile.entry list =
  List.concat_map
    (fun (f : Target.Asm.func) ->
       match cache with
       | None -> Annotfile.extract_func f
       | Some c ->
         (match Hashtbl.find_opt lay.Target.Layout.lay_code f.Target.Asm.fn_name with
          | None -> Annotfile.extract_func f
          | Some base ->
            (match Memo.peek c (Memo.key ?fuel ?spec ?engine lay ~base f) with
             | Some v ->
               List.map
                 (fun e ->
                    { e with Annotfile.an_function = f.Target.Asm.fn_name })
                 v.Memo.cv_annots
             | None -> Annotfile.extract_func f)))
    asm.Target.Asm.pr_funcs
