(* Analysis report: the WCET bound together with the intermediate
   evidence a certification-minded user wants to inspect (loop bounds
   and their provenance, cache footprint and classification quality,
   ILP exactness). *)

(* Which path-analysis engine produced the bound. [Ipet] is the
   original structural ILP; [Omt] is the optimization-modulo-theory
   engine ([Smt]: same flow system plus semantic infeasible-path cuts,
   bound found by binary search over LP feasibility queries); [Both]
   runs the two and cross-checks omt <= ipet per function (the
   differential oracle — a violation is an analysis refusal). *)
type engine = Ipet | Omt | Both

let engine_name (e : engine) : string =
  match e with Ipet -> "ipet" | Omt -> "omt" | Both -> "both"

let engine_of_string (s : string) : (engine, string) Result.t =
  match s with
  | "ipet" -> Ok Ipet
  | "omt" -> Ok Omt
  | "both" -> Ok Both
  | _ -> Error (Printf.sprintf "unknown WCET engine %S (ipet|omt|both)" s)

type loop_info = {
  li_header : int;
  li_bound : int;
  li_from_annotation : bool;
}

type t = {
  rp_function : string;
  rp_wcet : int;               (* cycles; the selected engine's bound *)
  rp_exact_ilp : bool;
  rp_blocks : int;
  rp_code_bytes : int;
  rp_loops : loop_info list;
  rp_cache_first_miss : int;   (* one-time line-fill cycles in the bound *)
  rp_cache_imprecise : bool;
  rp_code_lines : int;
  rp_data_lines : int;
  rp_engine : engine;
  rp_wcet_ipet : int option;   (* IPET bound, when [Both] computed it *)
  rp_wcet_omt : int option;    (* OMT bound, under [Omt] or [Both] *)
  rp_omt_cuts : int;           (* infeasible-path cuts the encoding used *)
}

let pp (ppf : Format.formatter) (r : t) : unit =
  Format.fprintf ppf
    "@[<v>WCET report for %s@,\
    \  WCET bound        : %d cycles%s@,\
    \  blocks / code     : %d blocks, %d bytes@,\
    \  cache             : %d code lines, %d data lines, first-miss budget %d%s@,"
    r.rp_function r.rp_wcet
    (if r.rp_exact_ilp then "" else " (LP relaxation bound)")
    r.rp_blocks r.rp_code_bytes r.rp_code_lines r.rp_data_lines
    r.rp_cache_first_miss
    (if r.rp_cache_imprecise then " [imprecise access: degraded]" else "");
  (* engine evidence: only printed for the non-default engines, so the
     default (IPET) report stays byte-identical to the pre-engine
     analyzer — the cram/CI determinism cmps depend on that *)
  (match r.rp_engine with
   | Ipet -> ()
   | Omt ->
     Format.fprintf ppf "  engine            : omt (%d infeasible-path cuts)@,"
       r.rp_omt_cuts
   | Both ->
     Format.fprintf ppf
       "  engine            : both — ipet %d, omt %d cycles (%d cuts, \
        omt <= ipet holds)@,"
       (Option.value ~default:r.rp_wcet r.rp_wcet_ipet)
       (Option.value ~default:r.rp_wcet r.rp_wcet_omt)
       r.rp_omt_cuts);
  (match r.rp_loops with
   | [] -> Format.fprintf ppf "  loops             : none@,"
   | loops ->
     Format.fprintf ppf "  loops             :@,";
     List.iter
       (fun l ->
          Format.fprintf ppf "    header B%d: bound %d (%s)@," l.li_header
            l.li_bound
            (if l.li_from_annotation then "annotation" else "auto"))
       loops);
  Format.fprintf ppf "@]"

let to_string (r : t) : string = Format.asprintf "%a" pp r

(* Accounting for a batch of analyses (the [Memo] cache snapshot): how
   many bounds were served from cache versus recomputed, and how often
   each phase actually ran — the evidence that a speedup is real, not
   asserted. Phase counts are per *attempted* analysis, so a refused
   analysis (e.g. unbounded loop) shows decode > ipet. *)

type analysis_stats = {
  st_hits : int;        (* served from the in-memory table *)
  st_disk_hits : int;   (* served from the persistent store *)
  st_misses : int;
  st_writes : int;      (* entries persisted to the store *)
  st_entries : int;
  st_decode : int;
  st_value : int;
  st_bounds : int;
  st_cache : int;
  st_pipeline : int;
  st_ipet : int;
  st_omt : int;
}

let hit_rate (st : analysis_stats) : float =
  let hits = st.st_hits + st.st_disk_hits in
  let total = hits + st.st_misses in
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let pp_stats (ppf : Format.formatter) (st : analysis_stats) : unit =
  Format.fprintf ppf
    "@[<v>analysis cache   : %d memory hits, %d disk hits, %d misses \
     (%.1f%% hit rate), %d entries, %d disk writes@,\
     phases run       : decode %d, value %d, bounds %d, cache %d, \
     pipeline %d, IPET %d%s@]"
    st.st_hits st.st_disk_hits st.st_misses (hit_rate st) st.st_entries
    st.st_writes st.st_decode st.st_value st.st_bounds st.st_cache
    st.st_pipeline st.st_ipet
    (* OMT runs only under the non-default engines; keep the default
       stats line byte-identical to the pre-engine analyzer *)
    (if st.st_omt = 0 then "" else Printf.sprintf ", OMT %d" st.st_omt)

let stats_to_string (st : analysis_stats) : string =
  Format.asprintf "%a" pp_stats st

(* Machine-readable cache accounting for the scaling study: one flat
   JSON object (no trailing newline) a bench leg can embed. Phase
   counters stay out — the study tracks cache effectiveness, and the
   phase counts are recoverable from the stderr stats line. *)
let stats_json (st : analysis_stats) : string =
  Printf.sprintf
    "{ \"memory_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
     \"hit_rate_pct\": %.2f, \"entries\": %d, \"disk_writes\": %d }"
    st.st_hits st.st_disk_hits st.st_misses (hit_rate st) st.st_entries
    st.st_writes
