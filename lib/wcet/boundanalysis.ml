(* Loop-bound analysis, combining:

   1. automatic bounds for counter-based loops (the "simple counter
      loops" that MISRA-style rules 13.4/13.6 guarantee: an integer
      counter, stepped by a constant, tested against a loop-invariant
      limit with a statically known interval) — both in registers
      (optimized code) and in stack slots (pattern code);
   2. explicit "loopbound N" annotations transmitted from the source via
      __builtin_annotation, for data-dependent loops the automatic
      analysis cannot bound (paper section 3.4).

   The bound of a loop is the maximal number of back-edge traversals per
   loop entry. Loops with no derivable bound are reported; the WCET
   computation refuses to produce a number for them, exactly like aiT
   asking for an annotation. *)

module Asm = Target.Asm

type bound_source =
  | Bauto       (* derived by the counter analysis *)
  | Bannot      (* taken from a loopbound annotation *)

type loop_bound = {
  lb_header : int;
  lb_bound : int;
  lb_source : bound_source;
}

type failure = {
  fail_header : int;
  fail_reason : string;
}

(* A loop counter: where it lives and its step per iteration. *)
type counter =
  | Creg of Asm.ireg
  | Cslot of int (* sp0-relative slot key *)

let ceil_div (a : int) (b : int) : int =
  if a <= 0 then 0 else (a + b - 1) / b

(* "loopbound N" annotation scan over the loop body. *)
let annotation_bound (cfg : Cfg.t) (l : Loops.loop) : int option =
  List.fold_left
    (fun acc b ->
       Array.fold_left
         (fun acc i ->
            match i with
            | Asm.Pannot (text, _) ->
              (match String.split_on_char ' ' (String.trim text) with
               | [ "loopbound"; n ] ->
                 (match int_of_string_opt n with
                  | Some n when n >= 0 ->
                    (match acc with
                     | Some m -> Some (min m n)
                     | None -> Some n)
                  | _ -> acc)
               | _ -> acc)
            | _ -> acc)
         acc (Cfg.block cfg b).Cfg.b_instrs)
    None l.Loops.l_body

(* Defs of an integer register within the loop body, counted to make
   sure a register counter has a unique increment. *)
let count_reg_defs (cfg : Cfg.t) (l : Loops.loop) (r : Asm.ireg) : int =
  List.fold_left
    (fun acc b ->
       Array.fold_left
         (fun acc i ->
            if List.exists (fun d -> d = Asm.IR r) (Asm.defs i) then acc + 1
            else acc)
         acc (Cfg.block cfg b).Cfg.b_instrs)
    0 l.Loops.l_body

(* Stores that may touch slot [key] within the loop, other than the
   recognized increment store. Conservative: any store without an exact
   different slot key counts. *)
let slot_clobbers (va : Valueanalysis.result) (cfg : Cfg.t) (l : Loops.loop)
    (key : int) ~(skip : int * int) : int =
  List.fold_left
    (fun acc b ->
       let blk = Cfg.block cfg b in
       let n = Array.length blk.Cfg.b_instrs in
       let acc' = ref acc in
       for idx = 0 to n - 1 do
         if (b, idx) <> skip then
           match blk.Cfg.b_instrs.(idx) with
           | Asm.Pstw (_, a) | Asm.Pstfd (_, a) ->
             (match Valueanalysis.state_at va b idx with
              | Some st ->
                (match Valueanalysis.slot_key st a with
                 | Some k when k <> key -> ()
                 | Some _ -> incr acc'
                 | None ->
                   (match Valueanalysis.region_of_address st a with
                    | Valueanalysis.Rsym _ | Valueanalysis.Rpool _ -> ()
                    | Valueanalysis.Rslot _ | Valueanalysis.Rstack _
                    | Valueanalysis.Runknown -> incr acc'))
              | None -> ())
           | _ -> ()
       done;
       !acc')
    0 l.Loops.l_body

(* Find register counters: Paddi (r, r, c) unique def of r in the loop.
   Also records the block holding the increment: a counter only bounds
   the loop if its step runs on EVERY back-edge traversal, which the
   caller checks by domination (a conditionally-incremented register
   looks like a counter but lets the loop spin without progress). *)
let reg_counters (cfg : Cfg.t) (l : Loops.loop) : (Asm.ireg * int * int) list =
  let candidates = ref [] in
  List.iter
    (fun b ->
       Array.iter
         (fun i ->
            match i with
            | Asm.Paddi (d, a, c) when d = a && d <> Asm.sp ->
              candidates := (d, Int32.to_int c, b) :: !candidates
            | _ -> ())
         (Cfg.block cfg b).Cfg.b_instrs)
    l.Loops.l_body;
  List.filter (fun (r, _, _) -> count_reg_defs cfg l r = 1) !candidates

(* Find slot counters: lwz rx, K; addi rx, rx, c; stw rx, K inside one
   block, with no other stores possibly touching K in the loop. *)
let slot_counters (va : Valueanalysis.result) (cfg : Cfg.t) (l : Loops.loop) :
  (int * int * int) list =
  let found = ref [] in
  List.iter
    (fun b ->
       let blk = Cfg.block cfg b in
       let n = Array.length blk.Cfg.b_instrs in
       for idx = 0 to n - 3 do
         match
           (blk.Cfg.b_instrs.(idx), blk.Cfg.b_instrs.(idx + 1),
            blk.Cfg.b_instrs.(idx + 2))
         with
         | Asm.Plwz (r1, a1), Asm.Paddi (r2, r3, c), Asm.Pstw (r4, a2)
           when r1 = r2 && r2 = r3 && r3 = r4 ->
           (match Valueanalysis.state_at va b idx with
            | Some st ->
              (match
                 (Valueanalysis.slot_key st a1, Valueanalysis.slot_key st a2)
               with
               | Some k1, Some k2 when k1 = k2 ->
                 if slot_clobbers va cfg l k1 ~skip:(b, idx + 2) = 0 then
                   found := (k1, Int32.to_int c, b) :: !found
               | _, _ -> ())
            | None -> ())
         | _, _, _ -> ()
       done)
    l.Loops.l_body;
  !found

(* The register compared in an exit block, traced back to a counter if
   possible: either the counter register itself, or a register loaded
   from the counter slot earlier in the same block with no intervening
   redefinition. *)
let trace_to_counter (va : Valueanalysis.result) (cfg : Cfg.t) (b : int)
    (r : Asm.ireg) (regc : (Asm.ireg * int) list) (slotc : (int * int) list) :
  (counter * int) option =
  match List.assoc_opt r regc with
  | Some step -> Some (Creg r, step)
  | None ->
    (* scan the block backwards from the compare for "lwz r, slot" *)
    let blk = Cfg.block cfg b in
    let n = Array.length blk.Cfg.b_instrs in
    let rec scan idx =
      if idx < 0 then None
      else
        match blk.Cfg.b_instrs.(idx) with
        | Asm.Plwz (d, a) when d = r ->
          (match Valueanalysis.state_at va b idx with
           | Some st ->
             (match Valueanalysis.slot_key st a with
              | Some k ->
                (match List.assoc_opt k slotc with
                 | Some step -> Some (Cslot k, step)
                 | None -> None)
              | None -> None)
           | None -> None)
        | i when List.exists (fun d -> d = Asm.IR r) (Asm.defs i) -> None
        | _ -> scan (idx - 1)
    in
    scan (n - 1)

(* Preheader interval of a counter: join of the counter's value along
   all entry edges of the loop. *)
let counter_init (va : Valueanalysis.result) (cfg : Cfg.t) (l : Loops.loop)
    (c : counter) : Interval.t =
  let edge_itvs =
    List.filter_map
      (fun (src, kind) ->
         match va.Valueanalysis.r_entry_states.(src) with
         | None -> None (* unreachable entry edge contributes nothing *)
         | Some st_in ->
           let blk = Cfg.block cfg src in
           let st_out = Valueanalysis.transfer_block blk st_in in
           let st_edge = Valueanalysis.edge_state blk st_out kind in
           Some
             (match c with
              | Creg r ->
                Valueanalysis.as_int_itv (Valueanalysis.get_reg st_edge r)
              | Cslot k ->
                (match
                   Valueanalysis.IMap.find_opt k st_edge.Valueanalysis.slots
                 with
                 | Some v -> Valueanalysis.as_int_itv v
                 | None -> Interval.top)))
      l.Loops.l_entry_edges
  in
  match edge_itvs with
  | [] -> Interval.top
  | first :: rest -> List.fold_left Interval.join first rest

(* Bound from one exiting block, if it is a counter test executed on
   every iteration. *)
let exit_bound (va : Valueanalysis.result) (cfg : Cfg.t) (dom : Dom.t)
    (l : Loops.loop) (regc : (Asm.ireg * int) list)
    (slotc : (int * int) list) (b : int) : int option =
  let blk = Cfg.block cfg b in
  (* must dominate all back-edge sources: executed every iteration *)
  if
    not
      (List.for_all (fun (src, _) -> Dom.dominates dom b src) l.Loops.l_back_edges)
  then None
  else
    match Valueanalysis.block_branch_cond blk, Valueanalysis.block_compare blk with
    | Some cond, Some (left, right) ->
      let taken_in_loop =
        List.exists
          (fun (s, k) -> k = Cfg.Etaken && List.mem s l.Loops.l_body)
          blk.Cfg.b_succs
      in
      let continue_cmp =
        let c = Valueanalysis.comparison_of_cond cond in
        if taken_in_loop then c else Minic.Ast.negate_comparison c
      in
      let counter_left = trace_to_counter va cfg b left regc slotc in
      let counter_info, cmp, limit_operand =
        match counter_left, right with
        | Some ci, _ -> (Some ci, continue_cmp, right)
        | None, Valueanalysis.CmpReg r ->
          (match trace_to_counter va cfg b r regc slotc with
           | Some ci ->
             (Some ci, Minic.Ast.swap_comparison continue_cmp,
              Valueanalysis.CmpReg left)
           | None -> (None, continue_cmp, right))
        | None, Valueanalysis.CmpImm _ -> (None, continue_cmp, right)
      in
      (match counter_info with
       | None -> None
       | Some (counter, step) ->
         (* limit interval at the compare point *)
         let cmp_idx =
           let n = Array.length blk.Cfg.b_instrs in
           let rec find i =
             if i < 0 then None
             else
               match blk.Cfg.b_instrs.(i) with
               | Asm.Pcmpw _ | Asm.Pcmpwi _ -> Some i
               | _ -> find (i - 1)
           in
           find (n - 1)
         in
         (match cmp_idx with
          | None -> None
          | Some ci ->
            let limit_itv =
              match limit_operand, Valueanalysis.state_at va b ci with
              | Valueanalysis.CmpImm imm, _ -> Some (Interval.of_const imm)
              | Valueanalysis.CmpReg r, Some st ->
                let v = Valueanalysis.get_reg st r in
                (match v with
                 | Valueanalysis.Vint itv when not (Interval.is_top itv) ->
                   Some itv
                 | _ -> None)
              | Valueanalysis.CmpReg _, None -> None
            in
            (match limit_itv with
             | None -> None
             | Some limit ->
               let init = counter_init va cfg l counter in
               if Interval.is_top init then None
               else begin
                 (* continue while: counter CMP limit *)
                 match cmp, step > 0, step < 0 with
                 | Minic.Ast.Clt, true, _ ->
                   Some (ceil_div (limit.Interval.hi - init.Interval.lo) step)
                 | Minic.Ast.Cle, true, _ ->
                   Some (ceil_div (limit.Interval.hi - init.Interval.lo + 1) step)
                 | Minic.Ast.Cgt, _, true ->
                   Some (ceil_div (init.Interval.hi - limit.Interval.lo) (-step))
                 | Minic.Ast.Cge, _, true ->
                   Some (ceil_div (init.Interval.hi - limit.Interval.lo + 1) (-step))
                 | Minic.Ast.Cne, true, _ when step = 1 ->
                   Some (max 0 (limit.Interval.hi - init.Interval.lo))
                 | Minic.Ast.Cne, _, true when step = -1 ->
                   Some (max 0 (init.Interval.hi - limit.Interval.lo))
                 | _, _, _ -> None
               end)))
    | _, _ -> None

(* Bound all loops of a function. *)
let analyze (cfg : Cfg.t) (dom : Dom.t) (loops : Loops.t)
    (va : Valueanalysis.result) : (loop_bound list, failure) Result.t =
  let bounds = ref [] in
  let failure = ref None in
  List.iter
    (fun l ->
       match annotation_bound cfg l with
       | Some n ->
         bounds :=
           { lb_header = l.Loops.l_header; lb_bound = n; lb_source = Bannot }
           :: !bounds
       | None ->
         (* A candidate counter's increment must run exactly once per
            back-edge traversal: its block has to dominate every
            back-edge source (else an iteration can skip the step and
            the loop spins without progress — the bound would be
            unsound), and must not sit in a loop nested inside this one
            (else one iteration steps several times and a <> test can
            jump over its limit). *)
         let steps_every_iteration bi =
           List.for_all
             (fun (src, _) -> Dom.dominates dom bi src)
             l.Loops.l_back_edges
           && not
                (List.exists
                   (fun l' ->
                      l'.Loops.l_header <> l.Loops.l_header
                      && List.mem l'.Loops.l_header l.Loops.l_body
                      && List.mem bi l'.Loops.l_body)
                   loops.Loops.loops)
         in
         let regc =
           List.filter_map
             (fun (r, step, bi) ->
                if steps_every_iteration bi then Some (r, step) else None)
             (reg_counters cfg l)
         in
         let slotc =
           List.filter_map
             (fun (k, step, bi) ->
                if steps_every_iteration bi then Some (k, step) else None)
             (slot_counters va cfg l)
         in
         let candidates =
           List.filter_map
             (fun b ->
                let blk = Cfg.block cfg b in
                let exits_loop =
                  List.exists
                    (fun (s, _) -> not (List.mem s l.Loops.l_body))
                    blk.Cfg.b_succs
                in
                if exits_loop then exit_bound va cfg dom l regc slotc b
                else None)
             l.Loops.l_body
         in
         (match candidates with
          | [] ->
            if !failure = None then
              failure :=
                Some
                  { fail_header = l.Loops.l_header;
                    fail_reason =
                      Printf.sprintf
                        "loop at B%d: no derivable bound (counter analysis \
                         failed and no loopbound annotation)"
                        l.Loops.l_header }
          | _ ->
            let b = List.fold_left min max_int candidates in
            bounds :=
              { lb_header = l.Loops.l_header; lb_bound = b; lb_source = Bauto }
              :: !bounds))
    loops.Loops.loops;
  match !failure with
  | Some f -> Error f
  | None -> Ok !bounds
