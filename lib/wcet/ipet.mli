(** Path analysis by implicit path enumeration: maximize cycle flow
    over the CFG under flow conservation and loop bounds, solved as an
    integer linear program (edge-count variables; block costs charged on
    outgoing edges). If branch & bound exhausts its budget, the LP
    relaxation is returned — still a sound upper bound. *)

exception Analysis_failed of string

type result = {
  ipet_wcet : int;        (** cycles, including the first-miss budget *)
  ipet_exact : bool;      (** solved to integrality *)
  ipet_flow_cycles : int; (** objective without the first-miss budget *)
}

val compute :
  ?fuel:Fuel.t -> Cfg.t -> Pipeline.t -> Cacheanalysis.t -> Loops.t ->
  Boundanalysis.loop_bound list -> result
(** [fuel] budgets the solver ([fl_simplex] pivots per phase,
    [fl_bb_nodes] branch & bound nodes; running out of nodes degrades
    to the sound LP relaxation bound).
    @raise Analysis_failed on missing bounds, infeasibility, or
    arithmetic overflow in the exact solver.
    @raise Fuel.Exhausted when the pivot budget runs out. *)
