(** Path analysis by implicit path enumeration: maximize cycle flow
    over the CFG under flow conservation and loop bounds, solved as an
    integer linear program (edge-count variables; block costs charged on
    outgoing edges). If branch & bound exhausts its budget, the LP
    relaxation is returned — still a sound upper bound.

    The flow system is exposed ({!build_system}/{!solve_system}) so the
    OMT engine ({!Smt}) optimizes the {e same} objective over the same
    edge variables, merely under extra infeasible-path cut constraints
    — making [omt <= ipet] a per-cycle-comparable invariant. *)

exception Analysis_failed of string

type edge = {
  e_src : int;
  e_dst : int option;  (** [None]: virtual exit edge *)
  e_kind : Cfg.edge_kind;
}

type system = {
  sys_edges : edge array;       (** LP variable [j] counts edge [j] *)
  sys_objective : Lp.Q.t array; (** cycles charged per edge traversal *)
  sys_constraints : Lp.constr list;
      (** flow conservation + loop bounds *)
}

type result = {
  ipet_wcet : int;        (** cycles, including the first-miss budget *)
  ipet_exact : bool;      (** solved to integrality *)
  ipet_flow_cycles : int; (** objective without the first-miss budget *)
}

val build_system :
  Cfg.t -> Pipeline.t -> Loops.t -> Boundanalysis.loop_bound list -> system
(** The structural ILP over edge-count variables.
    @raise Analysis_failed on a missing loop bound or an edgeless CFG. *)

val solve_system :
  ?fuel:Fuel.t -> ?extra:Lp.constr list -> system -> Lp.int_solution
(** Maximize the system's objective under its constraints plus [extra]
    (the OMT cuts); flow cycles only — the caller adds the cache
    first-miss budget. Fuel/exception behaviour as {!compute}. *)

val compute :
  ?fuel:Fuel.t -> Cfg.t -> Pipeline.t -> Cacheanalysis.t -> Loops.t ->
  Boundanalysis.loop_bound list -> result
(** [fuel] budgets the solver ([fl_simplex] pivots per phase,
    [fl_bb_nodes] branch & bound nodes; running out of nodes degrades
    to the sound LP relaxation bound).
    @raise Analysis_failed on missing bounds, infeasibility, or
    arithmetic overflow in the exact solver.
    @raise Fuel.Exhausted when the pivot budget runs out. *)
