(* Exact rational arithmetic and a two-phase primal simplex, the engine
   under the IPET path analysis (implicit path enumeration solves an
   integer linear program maximizing cycle flow — Li & Malik's method as
   used by aiT).

   Rationals are normalized fractions of native 63-bit integers with
   explicit overflow checks: the IPET programs are small (hundreds of
   variables, coefficients bounded by cycle counts and loop bounds), so
   exact arithmetic is affordable and removes any floating-point
   soundness worry. *)

exception Overflow
exception Infeasible
exception Unbounded

(* ---- rationals ----------------------------------------------------- *)

module Q = struct
  type t = {
    num : int;
    den : int; (* > 0 *)
  }

  let check (x : int) : int =
    if x > 0x3FFFFFFFFFFFFF || x < -0x3FFFFFFFFFFFFF then raise Overflow else x

  let rec gcd (a : int) (b : int) : int = if b = 0 then a else gcd b (a mod b)

  let make (num : int) (den : int) : t =
    if den = 0 then invalid_arg "Q.make: zero denominator";
    let num, den = if den < 0 then (-num, -den) else (num, den) in
    let g = gcd (abs num) den in
    let g = if g = 0 then 1 else g in
    { num = check (num / g); den = den / g }

  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }
  let of_int (n : int) : t = { num = check n; den = 1 }

  let mul_safe (a : int) (b : int) : int =
    if a = 0 || b = 0 then 0
    else begin
      let r = a * b in
      if r / b <> a then raise Overflow else check r
    end

  (* The arithmetic fast paths below return the same normalized value
     as the general [make] path (a zero operand or two unit
     denominators need no gcd); IPET's flow matrices are near totally
     unimodular, so tableau entries are almost always integers and the
     fast paths carry nearly all of the simplex arithmetic. *)

  let add (a : t) (b : t) : t =
    if b.num = 0 then a
    else if a.num = 0 then b
    else if a.den = 1 && b.den = 1 then { num = check (a.num + b.num); den = 1 }
    else
      make (mul_safe a.num b.den + mul_safe b.num a.den) (mul_safe a.den b.den)

  let sub (a : t) (b : t) : t =
    if b.num = 0 then a
    else if a.num = 0 then { b with num = -b.num }
    else if a.den = 1 && b.den = 1 then { num = check (a.num - b.num); den = 1 }
    else
      make (mul_safe a.num b.den - mul_safe b.num a.den) (mul_safe a.den b.den)

  let mul (a : t) (b : t) : t =
    if a.num = 0 || b.num = 0 then zero
    else if a.den = 1 && b.den = 1 then { num = mul_safe a.num b.num; den = 1 }
    else make (mul_safe a.num b.num) (mul_safe a.den b.den)

  let div (a : t) (b : t) : t =
    if b.num = 0 then invalid_arg "Q.div: by zero";
    make (mul_safe a.num b.den) (mul_safe a.den b.num)

  let neg (a : t) : t = { a with num = -a.num }
  let compare (a : t) (b : t) : int =
    if a.den = 1 && b.den = 1 then compare a.num b.num
    else compare (mul_safe a.num b.den) (mul_safe b.num a.den)

  let equal (a : t) (b : t) : bool = compare a b = 0
  let sign (a : t) : int = compare a zero
  let is_zero (a : t) : bool = a.num = 0
  let is_integer (a : t) : bool = a.den = 1
  let floor (a : t) : int =
    if a.num >= 0 then a.num / a.den
    else -(((-a.num) + a.den - 1) / a.den)

  let ceil (a : t) : int = -floor (neg a)
  let to_float (a : t) : float = float_of_int a.num /. float_of_int a.den
  let to_string (a : t) : string =
    if a.den = 1 then string_of_int a.num
    else Printf.sprintf "%d/%d" a.num a.den
end

(* ---- linear programs ----------------------------------------------- *)

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  cs_coeffs : (int * Q.t) list; (* variable index, coefficient *)
  cs_rel : relation;
  cs_rhs : Q.t;
}

type problem = {
  pb_nvars : int;
  pb_objective : Q.t array; (* maximize c.x *)
  pb_constraints : constr list;
}

type solution = {
  sol_objective : Q.t;
  sol_values : Q.t array;
}

(* Two-phase dense-tableau simplex, maximizing, all variables >= 0.
   [fuel] bounds the pivoting iterations of each phase; exhaustion
   raises [Fuel.Exhausted] (Bland's rule guarantees termination in
   theory, but a budget guarantees it against bugs and degenerate
   inputs too — the analyzer turns the exhaustion into a refusal). *)
let solve ?(fuel = Fuel.default.Fuel.fl_simplex) (pb : problem) : solution =
  let n = pb.pb_nvars in
  let constrs =
    (* normalize to rhs >= 0 *)
    List.map
      (fun c ->
         if Q.sign c.cs_rhs < 0 then
           { cs_coeffs = List.map (fun (j, q) -> (j, Q.neg q)) c.cs_coeffs;
             cs_rel = (match c.cs_rel with Le -> Ge | Ge -> Le | Eq -> Eq);
             cs_rhs = Q.neg c.cs_rhs }
         else c)
      pb.pb_constraints
  in
  let m = List.length constrs in
  (* column layout: [0,n) structural; then one slack/surplus per Le/Ge;
     then artificials for Ge/Eq; last column = rhs *)
  let nslack =
    List.length (List.filter (fun c -> c.cs_rel <> Eq) constrs)
  in
  let nart = List.length (List.filter (fun c -> c.cs_rel <> Le) constrs) in
  let total = n + nslack + nart in
  let tab = Array.make_matrix m (total + 1) Q.zero in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let next_slack = ref n in
  let next_art = ref (n + nslack) in
  List.iteri
    (fun i c ->
       List.iter
         (fun (j, q) ->
            if j < 0 || j >= n then invalid_arg "Lp.solve: bad variable index";
            tab.(i).(j) <- Q.add tab.(i).(j) q)
         c.cs_coeffs;
       tab.(i).(total) <- c.cs_rhs;
       (match c.cs_rel with
        | Le ->
          tab.(i).(!next_slack) <- Q.one;
          basis.(i) <- !next_slack;
          incr next_slack
        | Ge ->
          tab.(i).(!next_slack) <- Q.neg Q.one;
          incr next_slack;
          tab.(i).(!next_art) <- Q.one;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          incr next_art
        | Eq ->
          tab.(i).(!next_art) <- Q.one;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          incr next_art))
    constrs;
  let is_art = Array.make total false in
  List.iter (fun j -> is_art.(j) <- true) !art_cols;
  (* objective row: maximize -> store c, we work with reduced costs *)
  (* Zero entries are skipped on both sides of the elimination: the
     flow tableaus are sparse and 0/p and x - f*0 are the stored values
     unchanged, so the dense result is bit-for-bit the same. *)
  let pivot (row : int) (col : int) : unit =
    let p = tab.(row).(col) in
    let prow = tab.(row) in
    for j = 0 to total do
      if not (Q.is_zero prow.(j)) then prow.(j) <- Q.div prow.(j) p
    done;
    for i = 0 to m - 1 do
      if i <> row && not (Q.is_zero tab.(i).(col)) then begin
        let f = tab.(i).(col) in
        let ri = tab.(i) in
        for j = 0 to total do
          let pj = prow.(j) in
          if not (Q.is_zero pj) then ri.(j) <- Q.sub ri.(j) (Q.mul f pj)
        done
      end
    done;
    basis.(row) <- col
  in
  (* generic simplex loop on objective coefficients [obj] (maximize).

     Reduced costs rc_j = c_j - z_j = c_j - sum_i c_B(i) tab(i)(j) are
     computed once at phase start and then maintained across pivots by
     the same elimination as the tableau rows (rc_j -= rc_col * a'_rj):
     every rational is stored normalized, so the maintained entries are
     the very values a from-scratch recomputation would produce and the
     entering-column choice — Dantzig's best positive rc, or Bland's
     first improving one past the anti-cycling threshold — is
     unchanged. This turns the per-iteration column scan from
     O(columns * rows) into O(columns). *)
  let run_phase (obj : Q.t array) ~(allow : int -> bool) : unit =
    let rc = Array.make total Q.zero in
    let cb = Array.map (fun b -> obj.(b)) basis in
    for j = 0 to total - 1 do
      let zj = ref Q.zero in
      for i = 0 to m - 1 do
        if not (Q.is_zero tab.(i).(j)) then
          zj := Q.add !zj (Q.mul cb.(i) tab.(i).(j))
      done;
      rc.(j) <- Q.sub obj.(j) !zj
    done;
    let iterations = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      incr iterations;
      Fuel.tick ();
      if !iterations > fuel then Fuel.exhaust "simplex pivoting";
      (* Dantzig rule normally; Bland's anti-cycling rule after many
         iterations (guarantees termination on degenerate problems). *)
      let bland = !iterations > 500 in
      let best_col = ref (-1) in
      let best_val = ref Q.zero in
      (try
         for j = 0 to total - 1 do
           if allow j then begin
             (* entering column: positive reduced cost (maximization) *)
             if Q.compare rc.(j) !best_val > 0 then begin
               best_col := j;
               best_val := rc.(j);
               if bland then raise Exit (* first improving column *)
             end
           end
         done
       with Exit -> ());
      if !best_col = -1 then continue_ := false
      else begin
        (* ratio test; ties resolved by smallest basis index (Bland) *)
        let col = !best_col in
        let best_row = ref (-1) in
        let best_ratio = ref Q.zero in
        for i = 0 to m - 1 do
          if Q.sign tab.(i).(col) > 0 then begin
            let ratio = Q.div tab.(i).(total) tab.(i).(col) in
            if !best_row = -1 || Q.compare ratio !best_ratio < 0
               || (Q.equal ratio !best_ratio && basis.(i) < basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row = -1 then raise Unbounded;
        pivot !best_row col;
        let f = !best_val in
        let prow = tab.(!best_row) in
        for j = 0 to total - 1 do
          let pj = prow.(j) in
          if not (Q.is_zero pj) then rc.(j) <- Q.sub rc.(j) (Q.mul f pj)
        done
      end
    done
  in
  (* phase 1: minimize sum of artificials = maximize -(sum art) *)
  if nart > 0 then begin
    let obj1 = Array.make total Q.zero in
    Array.iteri (fun j a -> if a then obj1.(j) <- Q.neg Q.one) is_art;
    run_phase obj1 ~allow:(fun _ -> true);
    (* check feasibility: artificial variables must be zero *)
    let infeas = ref Q.zero in
    Array.iteri
      (fun i b -> if is_art.(b) then infeas := Q.add !infeas tab.(i).(total))
      basis;
    if Q.sign !infeas <> 0 then raise Infeasible;
    (* drive remaining artificials out of the basis when possible *)
    Array.iteri
      (fun i b ->
         if is_art.(b) then begin
           let found = ref false in
           for j = 0 to n + nslack - 1 do
             if (not !found) && not (Q.is_zero tab.(i).(j)) then begin
               pivot i j;
               found := true
             end
           done
         end)
      basis
  end;
  (* phase 2 *)
  let obj2 = Array.make total Q.zero in
  Array.blit pb.pb_objective 0 obj2 0 n;
  run_phase obj2 ~allow:(fun j -> not is_art.(j));
  (* extract solution *)
  let values = Array.make n Q.zero in
  Array.iteri
    (fun i b -> if b < n then values.(b) <- tab.(i).(total))
    basis;
  let objective =
    Array.to_list (Array.mapi (fun j v -> Q.mul pb.pb_objective.(j) v)
                     (Array.sub values 0 n))
    |> List.fold_left Q.add Q.zero
  in
  ignore values;
  { sol_objective = objective; sol_values = values }

(* ---- branch & bound for integral solutions ------------------------- *)

(* Maximize over integral solutions. Returns the best integral solution
   found together with a sound upper bound: if the node/depth budget is
   exhausted, the LP relaxation value (rounded up) is returned as the
   bound — still a safe WCET over-approximation. *)
type int_solution = {
  is_objective_bound : int; (* sound upper bound on the integral optimum *)
  is_exact : bool;          (* true when the bound is attained integrally *)
}

let solve_integer ?fuel ?(max_nodes = Fuel.default.Fuel.fl_bb_nodes)
    (pb : problem) : int_solution =
  let nodes = ref 0 in
  let rec go (pb : problem) (depth : int) : int_solution =
    incr nodes;
    match solve ?fuel pb with
    | exception Infeasible -> { is_objective_bound = min_int; is_exact = true }
    | sol ->
      let frac =
        Array.to_list (Array.mapi (fun j v -> (j, v)) sol.sol_values)
        |> List.find_opt (fun (_, v) -> not (Q.is_integer v))
      in
      (match frac with
       | None ->
         { is_objective_bound = Q.floor sol.sol_objective; is_exact = true }
       | Some (j, v) ->
         if !nodes > max_nodes || depth > 40 then
           (* give up on integrality: LP bound is still sound *)
           { is_objective_bound = Q.ceil sol.sol_objective; is_exact = false }
         else begin
           let lo =
             go
               { pb with
                 pb_constraints =
                   { cs_coeffs = [ (j, Q.one) ];
                     cs_rel = Le;
                     cs_rhs = Q.of_int (Q.floor v) }
                   :: pb.pb_constraints }
               (depth + 1)
           in
           let hi =
             go
               { pb with
                 pb_constraints =
                   { cs_coeffs = [ (j, Q.one) ];
                     cs_rel = Ge;
                     cs_rhs = Q.of_int (Q.ceil v) }
                   :: pb.pb_constraints }
               (depth + 1)
           in
           { is_objective_bound =
               max lo.is_objective_bound hi.is_objective_bound;
             is_exact = lo.is_exact && hi.is_exact }
         end)
  in
  go pb 0
