(** Optimization-modulo-theory WCET engine (Henry–Asavoae–Monniaux–
    Maïza style): the IPET flow system of {!Ipet.build_system} plus
    semantic infeasible-path cuts [x_e1 + x_e2 <= 1] over conflicting
    branch edges, optimized by binary search over exact-rational LP
    feasibility queries ({!Lp.solve} — no external solver).

    Cuts are derived from branch conditions whose compare operands
    trace to constants or to provably stable memory locations, with
    both branches (and all traced loads) outside every loop body; the
    full side-conditions are documented in the implementation. Cuts
    only remove flows no real execution produces, so the bound stays
    sound; and the cut system's feasible set is contained in the IPET
    system's, so [smt_wcet <= smt_ipet_wcet] holds by construction —
    the invariant the [Both] engine's differential oracle checks. *)

type result = {
  smt_wcet : int;        (** OMT bound, incl. cache first-miss budget *)
  smt_ipet_wcet : int;   (** base IPET bound (same system, no cuts) *)
  smt_exact : bool;      (** both solves reached integrality *)
  smt_flow_cycles : int; (** OMT bound without the first-miss budget *)
  smt_cuts : int;        (** conflict cuts in the encoding *)
  smt_queries : int;     (** fueled solver calls spent by the search *)
}

val compute :
  ?fuel:Fuel.t -> Cfg.t -> Dom.t -> Pipeline.t -> Cacheanalysis.t ->
  Loops.t -> Boundanalysis.loop_bound list -> result
(** [fuel.fl_omt] budgets the bound search (one unit per solver call);
    running out {e is} a refusal — an unfinished search has proved
    nothing. [fl_simplex]/[fl_bb_nodes] budget the underlying solves
    as in {!Ipet.compute}.
    @raise Ipet.Analysis_failed as {!Ipet.compute} (missing bounds,
    infeasibility, arithmetic overflow).
    @raise Fuel.Exhausted with site ["omt"] when the search budget is
    spent, or the simplex site when a pivot budget runs out. *)
