(** Ferdinand-style must-cache abstract interpretation for the data
    cache: upper bounds on LRU ages per line; bounded age proves
    ALWAYS-HIT. Joins intersect with maximal ages; imprecise accesses
    age every line of the sets they may touch. Refines the capacity
    classification of {!Cacheanalysis} via {!Cacheanalysis.refine}. *)

type acache

val empty : acache
val join : acache -> acache -> acache
val access_line : acache -> int -> acache
val must_hit : acache -> int -> bool

type result

val analyze :
  ?fuel:int -> Cfg.t -> Valueanalysis.result -> Target.Layout.t -> result
(** [fuel] bounds the worklist iterations (default
    [Fuel.default.fl_widen]).
    @raise Fuel.Exhausted when the budget runs out. *)

val block_hits : result -> int -> bool list
(** One boolean per data access of the block, in order: true when the
    access is guaranteed to hit. *)
