(* Ferdinand-style must-cache abstract interpretation.

   The abstract state maps memory lines to an *upper bound on their LRU
   age* within their cache set; a line with bounded age < associativity
   is guaranteed resident, so an access to it is classified ALWAYS-HIT
   at that program point. The join is the classic must-join:
   intersection of the line sets with the maximum of the age bounds.

   This refines the conflict-capacity classification of
   [Cacheanalysis]: in an over-subscribed set, individual accesses can
   still be proven hits (e.g. the reload of a slot stored two
   instructions earlier). The combination used by [Pipeline] charges a
   miss penalty only when an access is neither persistent (capacity
   argument) nor must-hit (ageing argument) — both arguments
   over-approximate the concrete LRU cache of the simulator, which the
   property tests check access by access.

   Imprecise accesses (address ranges, unresolved addresses) contribute
   no hits and age every line of the sets they may touch — the sound
   treatment of "imprecise memory accesses" the WCET literature warns
   about. *)

module Asm = Target.Asm
module LMap = Map.Make (Int)

let line_size = Target.Cache.mpc755_l1.Target.Cache.cfg_line
let nsets = Target.Cache.mpc755_l1.Target.Cache.cfg_sets
let assoc = Target.Cache.mpc755_l1.Target.Cache.cfg_assoc

let set_of (line : int) : int = line mod nsets

(* Abstract must-cache: line -> age upper bound in [0, assoc). Absent
   lines are possibly evicted (age >= assoc). *)
type acache = int LMap.t

let empty : acache = LMap.empty

let equal (a : acache) (b : acache) : bool = LMap.equal Int.equal a b

(* must-join: keep lines present in both, with the larger age bound *)
let join (a : acache) (b : acache) : acache =
  LMap.merge
    (fun _ x y ->
       match x, y with
       | Some x, Some y -> Some (max x y)
       | Some _, None | None, Some _ | None, None -> None)
    a b

(* Precise access to one line: the line becomes most-recently-used;
   other lines of the set younger than its (worst-case) previous age
   grow older by one. If the line was possibly absent, every line of
   the set ages. *)
let access_line (c : acache) (line : int) : acache =
  let s = set_of line in
  let old_age = LMap.find_opt line c in
  let limit = Option.value ~default:assoc old_age in
  let c =
    LMap.filter_map
      (fun l age ->
         if l <> line && set_of l = s && age < limit then
           if age + 1 >= assoc then None else Some (age + 1)
         else Some age)
      c
  in
  LMap.add line 0 c

(* Imprecise access possibly touching any line of [sets]: no line
   becomes young, every line of those sets may age. *)
let blur_sets (c : acache) (sets : int list) : acache =
  LMap.filter_map
    (fun l age ->
       if List.mem (set_of l) sets then
         if age + 1 >= assoc then None else Some (age + 1)
       else Some age)
    c

(* Is an access to [line] guaranteed to hit in state [c]? *)
let must_hit (c : acache) (line : int) : bool =
  match LMap.find_opt line c with
  | Some age -> age < assoc
  | None -> false

(* ---- data-cache analysis over the reconstructed CFG ---- *)

(* Per-instruction data access as seen by the must analysis. *)
type access =
  | Aline of int          (* exactly this line *)
  | Ablur of int list     (* possibly any line of these sets *)
  | Anone

let access_of_instr (lay : Target.Layout.t) (st : Valueanalysis.state)
    (i : Asm.instr) : access =
  match
    (try Cacheanalysis.data_access lay st i
     with Cacheanalysis.Not_resolved -> Some (min_int, min_int))
  with
  | None -> Anone
  | Some (lo, hi) when lo = min_int ->
    ignore hi;
    (* unresolved: may touch anything — blur every set *)
    Ablur (List.init nsets (fun s -> s))
  | Some (lo, hi) ->
    let l1 = lo / line_size and l2 = hi / line_size in
    if l1 = l2 then Aline l1
    else if l2 - l1 < nsets then
      Ablur (List.sort_uniq compare (List.init (l2 - l1 + 1) (fun k -> set_of (l1 + k))))
    else Ablur (List.init nsets (fun s -> s))

let transfer_instr (lay : Target.Layout.t) (st : Valueanalysis.state)
    (c : acache) (i : Asm.instr) : acache =
  match access_of_instr lay st i with
  | Anone -> c
  | Aline l -> access_line c l
  | Ablur sets -> blur_sets c sets

(* Transfer over one block, using the value analysis for addresses. *)
let transfer_block (lay : Target.Layout.t) (va : Valueanalysis.result)
    (b : int) (c : acache) : acache =
  let blk = Cfg.block va.Valueanalysis.r_cfg b in
  let state = ref c in
  Array.iteri
    (fun idx i ->
       match Valueanalysis.state_at va b idx with
       | Some st -> state := transfer_instr lay st !state i
       | None -> ())
    blk.Cfg.b_instrs;
  !state

type result = {
  mc_entry : acache option array; (* per block; None = unreachable *)
  mc_lay : Target.Layout.t;
  mc_va : Valueanalysis.result;
}

(* Fixpoint: entry states per block. The domain has finite height
   (ages only grow under join, lines only disappear), so plain
   iteration terminates — and [fuel] bounds the worklist iterations
   anyway, so a join/transfer bug is a refusal upstream, not a hang. *)
let analyze ?(fuel = Fuel.default.Fuel.fl_widen) (cfg : Cfg.t)
    (va : Valueanalysis.result) (lay : Target.Layout.t) : result =
  let n = Cfg.num_blocks cfg in
  let entry : acache option array = Array.make n None in
  entry.(cfg.Cfg.c_entry) <- Some empty;
  let worklist = Queue.create () in
  let inq = Array.make n false in
  let push b =
    if not inq.(b) then begin
      inq.(b) <- true;
      Queue.add b worklist
    end
  in
  push cfg.Cfg.c_entry;
  let iters = ref 0 in
  while not (Queue.is_empty worklist) do
    incr iters;
    if !iters > fuel then Fuel.exhaust "must-cache ageing fixpoint";
    let b = Queue.pop worklist in
    inq.(b) <- false;
    match entry.(b) with
    | None -> ()
    | Some c ->
      let out = transfer_block lay va b c in
      List.iter
        (fun (s, _) ->
           let updated =
             match entry.(s) with
             | None -> Some out
             | Some old ->
               let j = join old out in
               if equal j old then None else Some j
           in
           match updated with
           | Some st ->
             entry.(s) <- Some st;
             push s
           | None -> ())
        (Cfg.block cfg b).Cfg.b_succs
  done;
  { mc_entry = entry; mc_lay = lay; mc_va = va }

(* Classification of every data access of block [b]: for each
   memory-accessing instruction (in order), true when the access is an
   ALWAYS-HIT at that point. *)
let block_hits (res : result) (b : int) : bool list =
  match res.mc_entry.(b) with
  | None -> []
  | Some c0 ->
    let blk = Cfg.block res.mc_va.Valueanalysis.r_cfg b in
    let hits = ref [] in
    let c = ref c0 in
    Array.iteri
      (fun idx i ->
         match Valueanalysis.state_at res.mc_va b idx with
         | None -> ()
         | Some st ->
           (match access_of_instr res.mc_lay st i with
            | Anone -> ()
            | Aline l ->
              hits := must_hit !c l :: !hits;
              c := access_line !c l
            | Ablur sets ->
              hits := false :: !hits;
              c := blur_sets !c sets))
      blk.Cfg.b_instrs;
    List.rev !hits
