(* Ferdinand-style must-cache abstract interpretation.

   The abstract state maps memory lines to an *upper bound on their LRU
   age* within their cache set; a line with bounded age < associativity
   is guaranteed resident, so an access to it is classified ALWAYS-HIT
   at that program point. The join is the classic must-join:
   intersection of the line sets with the maximum of the age bounds.

   This refines the conflict-capacity classification of
   [Cacheanalysis]: in an over-subscribed set, individual accesses can
   still be proven hits (e.g. the reload of a slot stored two
   instructions earlier). The combination used by [Pipeline] charges a
   miss penalty only when an access is neither persistent (capacity
   argument) nor must-hit (ageing argument) — both arguments
   over-approximate the concrete LRU cache of the simulator, which the
   property tests check access by access.

   Imprecise accesses (address ranges, unresolved addresses) contribute
   no hits and age every line of the sets they may touch — the sound
   treatment of "imprecise memory accesses" the WCET literature warns
   about. *)

module Asm = Target.Asm
module LMap = Map.Make (Int)

let line_size = Target.Cache.mpc755_l1.Target.Cache.cfg_line
let nsets = Target.Cache.mpc755_l1.Target.Cache.cfg_sets
let assoc = Target.Cache.mpc755_l1.Target.Cache.cfg_assoc

let set_of (line : int) : int =
  let s = line mod nsets in
  if s < 0 then s + nsets else s

(* Abstract must-cache: line -> age upper bound in [0, assoc), stored
   per cache set so an access only touches its own set's (at most
   assoc-sized) map instead of filtering every tracked line. Absent
   lines are possibly evicted (age >= assoc). The arrays are never
   mutated in place: every update copies, so states share set maps
   freely (which also lets [equal] short-circuit on physical
   equality — after a copy most sets are the same map). *)
type acache = int LMap.t array

let empty : acache = Array.make nsets LMap.empty

let equal (a : acache) (b : acache) : bool =
  a == b
  || (let ok = ref true in
      for s = 0 to nsets - 1 do
        if !ok && not (a.(s) == b.(s) || LMap.equal Int.equal a.(s) b.(s))
        then ok := false
      done;
      !ok)

(* must-join: keep lines present in both, with the larger age bound *)
let join (a : acache) (b : acache) : acache =
  Array.init nsets (fun s ->
      if a.(s) == b.(s) then a.(s)
      else
        LMap.merge
          (fun _ x y ->
             match x, y with
             | Some x, Some y -> Some (max x y)
             | Some _, None | None, Some _ | None, None -> None)
          a.(s) b.(s))

(* age every line of one set by one, dropping lines reaching assoc *)
let age_set (m : int LMap.t) ~(except : int) ~(limit : int) : int LMap.t =
  LMap.filter_map
    (fun l age ->
       if l <> except && age < limit then
         if age + 1 >= assoc then None else Some (age + 1)
       else Some age)
    m

(* Precise access to one line: the line becomes most-recently-used;
   other lines of the set younger than its (worst-case) previous age
   grow older by one. If the line was possibly absent, every line of
   the set ages. *)
let access_line (c : acache) (line : int) : acache =
  let s = set_of line in
  let m = c.(s) in
  let limit = Option.value ~default:assoc (LMap.find_opt line m) in
  let c' = Array.copy c in
  c'.(s) <- LMap.add line 0 (age_set m ~except:line ~limit);
  c'

(* Imprecise access possibly touching any line of [sets]: no line
   becomes young, every line of those sets may age. *)
let blur_sets (c : acache) (sets : int list) : acache =
  let c' = Array.copy c in
  List.iter
    (fun s -> c'.(s) <- age_set c.(s) ~except:min_int ~limit:assoc)
    sets;
  c'

(* Is an access to [line] guaranteed to hit in state [c]? *)
let must_hit (c : acache) (line : int) : bool =
  match LMap.find_opt line c.(set_of line) with
  | Some age -> age < assoc
  | None -> false

(* ---- data-cache analysis over the reconstructed CFG ---- *)

(* Per-instruction data access as seen by the must analysis. *)
type access =
  | Aline of int          (* exactly this line *)
  | Ablur of int list     (* possibly any line of these sets *)
  | Anone

let access_of_instr (lay : Target.Layout.t) (st : Valueanalysis.state)
    (i : Asm.instr) : access =
  match
    (try Cacheanalysis.data_access lay st i
     with Cacheanalysis.Not_resolved -> Some (min_int, min_int))
  with
  | None -> Anone
  | Some (lo, hi) when lo = min_int ->
    ignore hi;
    (* unresolved: may touch anything — blur every set *)
    Ablur (List.init nsets (fun s -> s))
  | Some (lo, hi) ->
    let l1 = lo / line_size and l2 = hi / line_size in
    if l1 = l2 then Aline l1
    else if l2 - l1 < nsets then
      Ablur (List.sort_uniq compare (List.init (l2 - l1 + 1) (fun k -> set_of (l1 + k))))
    else Ablur (List.init nsets (fun s -> s))

(* The access sequence of a block is fully determined by the value
   analysis, not by the cache state, so it is classified once up front
   (one incremental walk per block — [Valueanalysis.state_at] would
   replay the block prefix per instruction) and the fixpoint below
   iterates transfer over the precomputed sequence. [Anone] accesses
   are dropped: they neither age lines nor classify. *)
let block_accesses (lay : Target.Layout.t) (va : Valueanalysis.result)
    (b : int) : access array =
  match va.Valueanalysis.r_entry_states.(b) with
  | None -> [||]
  | Some st0 ->
    let blk = Cfg.block va.Valueanalysis.r_cfg b in
    let accs = ref [] in
    let st = ref st0 in
    Array.iter
      (fun i ->
         (match access_of_instr lay !st i with
          | Anone -> ()
          | a -> accs := a :: !accs);
         st := Valueanalysis.transfer !st i)
      blk.Cfg.b_instrs;
    Array.of_list (List.rev !accs)

let transfer_access (c : acache) (a : access) : acache =
  match a with
  | Anone -> c
  | Aline l -> access_line c l
  | Ablur sets -> blur_sets c sets

let transfer_block (accs : access array array) (b : int) (c : acache) : acache
  =
  Array.fold_left transfer_access c accs.(b)

type result = {
  mc_entry : acache option array; (* per block; None = unreachable *)
  mc_accs : access array array;   (* per block, in instruction order *)
}

(* Fixpoint: entry states per block. The domain has finite height
   (ages only grow under join, lines only disappear), so plain
   iteration terminates — and [fuel] bounds the worklist iterations
   anyway, so a join/transfer bug is a refusal upstream, not a hang. *)
let analyze ?(fuel = Fuel.default.Fuel.fl_widen) (cfg : Cfg.t)
    (va : Valueanalysis.result) (lay : Target.Layout.t) : result =
  let n = Cfg.num_blocks cfg in
  let accs = Array.init n (block_accesses lay va) in
  let entry : acache option array = Array.make n None in
  entry.(cfg.Cfg.c_entry) <- Some empty;
  let worklist = Queue.create () in
  let inq = Array.make n false in
  let push b =
    if not inq.(b) then begin
      inq.(b) <- true;
      Queue.add b worklist
    end
  in
  push cfg.Cfg.c_entry;
  let iters = ref 0 in
  while not (Queue.is_empty worklist) do
    incr iters;
    Fuel.tick ();
    if !iters > fuel then Fuel.exhaust "must-cache ageing fixpoint";
    let b = Queue.pop worklist in
    inq.(b) <- false;
    match entry.(b) with
    | None -> ()
    | Some c ->
      let out = transfer_block accs b c in
      List.iter
        (fun (s, _) ->
           let updated =
             match entry.(s) with
             | None -> Some out
             | Some old ->
               let j = join old out in
               if equal j old then None else Some j
           in
           match updated with
           | Some st ->
             entry.(s) <- Some st;
             push s
           | None -> ())
        (Cfg.block cfg b).Cfg.b_succs
  done;
  { mc_entry = entry; mc_accs = accs }

(* Classification of every data access of block [b]: for each
   memory-accessing instruction (in order), true when the access is an
   ALWAYS-HIT at that point. *)
let block_hits (res : result) (b : int) : bool list =
  match res.mc_entry.(b) with
  | None -> []
  | Some c0 ->
    let hits = ref [] in
    let c = ref c0 in
    Array.iter
      (fun a ->
         match a with
         | Anone -> ()
         | Aline l ->
           hits := must_hit !c l :: !hits;
           c := access_line !c l
         | Ablur sets ->
           hits := false :: !hits;
           c := blur_sets !c sets)
      res.mc_accs.(b);
    List.rev !hits
