(* Disk-backed half of the analysis cache: one file per entry under
   <dir>/<first-2-hex>/<digest-hex>. See store.mli for the format and
   the crash-safety/corruption contract. Everything here is defensive:
   a cache must trade wall clock, never correctness and never an
   abort, so every filesystem failure degrades to a miss or a skipped
   write. *)

(* Bump on any change to the analysis semantics or to the marshalled
   shapes (Report.t, Annotfile.entry, the Memo key payload). The OCaml
   version is part of the stamp because entries are Marshal images. *)
let toolchain_version = "vericomp-wcet-4 ocaml-" ^ Sys.ocaml_version

let magic = "VCWS1"

type t = {
  st_dir : string;
  st_mutex : Mutex.t;  (* serializes this process's index appends *)
  st_gc_bytes : int option;
}

let dir (t : t) : string = t.st_dir

let locked (m : Mutex.t) (f : unit -> 'a) : 'a =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let mkdir_p (path : string) : unit =
  let rec mk p =
    if not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk path

let create ?gc_mb ~(dir : string) () : t option =
  match
    mkdir_p dir;
    (* prove writability up front so Memo can fall back to memory-only *)
    let probe = Filename.concat dir ".probe" in
    let oc = open_out probe in
    close_out oc;
    Sys.remove probe
  with
  | () ->
    Some
      { st_dir = dir;
        st_mutex = Mutex.create ();
        st_gc_bytes = Option.map (fun mb -> mb * 1024 * 1024) gc_mb }
  | exception _ -> None

(* ---- paths ---- *)

let is_hex_digest (name : string) : bool =
  String.length name = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       name

let subdir_of (t : t) (hex : string) : string =
  Filename.concat t.st_dir (String.sub hex 0 2)

let path_of (t : t) (hex : string) : string =
  Filename.concat (subdir_of t hex) hex

let index_path (t : t) : string = Filename.concat t.st_dir "index"

(* ---- the atime index ---- *)

(* One hex digest per line, appended on every use (disk hit or write):
   the last occurrence of a digest is its recency. A 33-byte O_APPEND
   write is atomic on POSIX, so concurrent processes interleave whole
   lines; a torn or foreign line is simply ignored by readers. *)
let touch (t : t) (hex : string) : unit =
  locked t.st_mutex (fun () ->
      try
        let fd =
          Unix.openfile (index_path t)
            [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
             let line = Bytes.of_string (hex ^ "\n") in
             ignore (Unix.write fd line 0 (Bytes.length line)))
      with _ -> ())

(* Recency map: digest -> sequence number of its last index line. *)
let read_index (t : t) : (string, int) Hashtbl.t =
  let ranks = Hashtbl.create 64 in
  (try
     let ic = open_in_bin (index_path t) in
     Fun.protect
       ~finally:(fun () -> try close_in ic with _ -> ())
       (fun () ->
          let n = ref 0 in
          try
            while true do
              let line = input_line ic in
              if is_hex_digest line then begin
                incr n;
                Hashtbl.replace ranks line !n
              end
            done
          with End_of_file -> ())
   with _ -> ());
  ranks

(* ---- load ---- *)

let read_file (path : string) : string option =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> try close_in ic with _ -> ())
      (fun () ->
         match really_input_string ic (in_channel_length ic) with
         | s -> Some s
         | exception _ -> None)
  | exception _ -> None

let header_len = String.length magic + 16 (* magic + MD5 of the body *)

let load (t : t) ~(digest : string) ~(payload : string) :
  (Report.t * Annotfile.entry list) option =
  try
    let hex = Digest.to_hex digest in
    match read_file (path_of t hex) with
    | None -> None
    | Some raw ->
      if
        String.length raw < header_len
        || not (String.equal (String.sub raw 0 (String.length magic)) magic)
      then None
      else begin
        let sum = String.sub raw (String.length magic) 16 in
        let body =
          String.sub raw header_len (String.length raw - header_len)
        in
        if not (String.equal sum (Digest.string body)) then None
        else begin
          (* the MD5 passed, so [body] is byte-identical to what some
             [save] marshalled; the version stamp (always the first,
             string, component) rejects images of older toolchains
             before anything is interpreted as a Report *)
          let (version, stored_payload, report, annots)
                : string * string * Report.t * Annotfile.entry list =
            Marshal.from_string body 0
          in
          if
            String.equal version toolchain_version
            && String.equal stored_payload payload
          then begin
            touch t hex;
            Some (report, annots)
          end
          else None
        end
      end
  with _ -> None

(* ---- save ---- *)

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd b !pos (len - !pos)
  done

let save (t : t) ~(digest : string) ~(payload : string)
    ((report, annots) : Report.t * Annotfile.entry list) : bool =
  try
    let hex = Digest.to_hex digest in
    let target = path_of t hex in
    if Sys.file_exists target then begin
      (* same digest + same version => same content: just record use *)
      touch t hex;
      false
    end
    else begin
      mkdir_p (subdir_of t hex);
      let body =
        Marshal.to_string (toolchain_version, payload, report, annots) []
      in
      let tmp =
        Filename.concat (subdir_of t hex)
          (Printf.sprintf ".tmp.%s.%d" hex (Unix.getpid ()))
      in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      (try
         write_all fd (magic ^ Digest.string body ^ body);
         Unix.fsync fd;
         Unix.close fd
       with e ->
         (try Unix.close fd with _ -> ());
         (try Sys.remove tmp with _ -> ());
         raise e);
      (* atomic publication: concurrent readers see the old state or
         the whole entry, never a prefix *)
      Sys.rename tmp target;
      touch t hex;
      true
    end
  with _ -> false

(* ---- enumeration and GC ---- *)

let fold_entries (t : t) (f : 'a -> string -> Unix.stats -> 'a) (init : 'a) :
  'a =
  let acc = ref init in
  (try
     Array.iter
       (fun sub ->
          if String.length sub = 2 then begin
            let subpath = Filename.concat t.st_dir sub in
            try
              Array.iter
                (fun name ->
                   if is_hex_digest name then
                     (* a concurrent GC may have removed it: skip *)
                     match Unix.stat (Filename.concat subpath name) with
                     | st -> acc := f !acc name st
                     | exception _ -> ())
                (Sys.readdir subpath)
            with _ -> ()
          end)
       (Sys.readdir t.st_dir)
   with _ -> ());
  !acc

let size_bytes (t : t) : int =
  fold_entries t (fun acc _ st -> acc + st.Unix.st_size) 0

let entries (t : t) : string list =
  fold_entries t (fun acc hex _ -> hex :: acc) []

let gc ?max_bytes (t : t) : unit =
  match (match max_bytes with Some _ -> max_bytes | None -> t.st_gc_bytes) with
  | None -> ()
  | Some budget ->
    (try
       let all =
         fold_entries t
           (fun acc hex st -> (hex, st.Unix.st_size, st.Unix.st_mtime) :: acc)
           []
       in
       let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 all in
       if total > budget then begin
         let ranks = read_index t in
         (* oldest first: unindexed entries (rank 0) by mtime, then
            indexed ones by last-use order *)
         let ordered =
           List.sort
             (fun (h1, _, m1) (h2, _, m2) ->
                let r1 = Option.value ~default:0 (Hashtbl.find_opt ranks h1)
                and r2 = Option.value ~default:0 (Hashtbl.find_opt ranks h2) in
                if r1 <> r2 then compare r1 r2 else compare m1 m2)
             all
         in
         let remaining = ref total in
         let victims = Hashtbl.create 16 in
         List.iter
           (fun (hex, sz, _) ->
              if !remaining > budget then begin
                (try Sys.remove (path_of t hex) with _ -> ());
                Hashtbl.replace victims hex ();
                remaining := !remaining - sz
              end)
           ordered;
         (* compact the index to the survivors, preserving recency
            order, and publish it atomically like an entry *)
         locked t.st_mutex (fun () ->
             try
               let survivors =
                 List.filter
                   (fun (hex, _, _) -> not (Hashtbl.mem victims hex))
                   ordered
               in
               let tmp =
                 Filename.concat t.st_dir
                   (Printf.sprintf ".tmp.index.%d" (Unix.getpid ()))
               in
               let fd =
                 Unix.openfile tmp
                   [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                   0o644
               in
               (try
                  List.iter
                    (fun (hex, _, _) -> write_all fd (hex ^ "\n"))
                    survivors;
                  Unix.fsync fd;
                  Unix.close fd
                with e ->
                  (try Unix.close fd with _ -> ());
                  (try Sys.remove tmp with _ -> ());
                  raise e);
               Sys.rename tmp (index_path t)
             with _ -> ())
       end
     with _ -> ())
