(* Value analysis: interval-based abstract interpretation of the machine
   code, at basic-block granularity with branch refinement and widening
   at join points. Corresponds to aiT's "value analysis" phase: it
   delivers the register and stack-slot contents used by the loop-bound
   analysis and the access addresses used by the data-cache analysis.

   Abstract values distinguish pure integers from symbol- and
   stack-relative addresses, so that every load/store resolves to a
   region (stack slot, global, array, constant pool) or is reported as
   imprecise. *)

module Asm = Target.Asm
module IMap = Map.Make (Int)

type absval =
  | Vint of Interval.t            (* plain 32-bit data *)
  | Vsym of string * Interval.t   (* address of symbol + offset *)
  | Vsp of Interval.t             (* stack pointer + offset (from entry sp) *)
  | Vtop                          (* anything, including unknown addresses *)

let vint_top = Vint Interval.top

let absval_equal (a : absval) (b : absval) : bool =
  match a, b with
  | Vint x, Vint y -> Interval.equal x y
  | Vsym (s1, x), Vsym (s2, y) -> String.equal s1 s2 && Interval.equal x y
  | Vsp x, Vsp y -> Interval.equal x y
  | Vtop, Vtop -> true
  | (Vint _ | Vsym _ | Vsp _ | Vtop), _ -> false

let join_absval (a : absval) (b : absval) : absval =
  match a, b with
  | Vint x, Vint y -> Vint (Interval.join x y)
  | Vsym (s1, x), Vsym (s2, y) when String.equal s1 s2 ->
    Vsym (s1, Interval.join x y)
  | Vsp x, Vsp y -> Vsp (Interval.join x y)
  | _, _ -> Vtop

let widen_absval (old_v : absval) (new_v : absval) : absval =
  match old_v, new_v with
  | Vint x, Vint y -> Vint (Interval.widen x y)
  | Vsym (s1, x), Vsym (s2, y) when String.equal s1 s2 ->
    Vsym (s1, Interval.widen x y)
  | Vsp x, Vsp y -> Vsp (Interval.widen x y)
  | _, _ -> if absval_equal old_v new_v then old_v else Vtop

(* Abstract machine state: integer registers and stack slots (keyed by
   offset from the *entry* value of sp). Float registers carry no
   analysis information (loop guards are integer — MISRA rule 13.4). *)
type state = {
  regs : absval array; (* 32 integer registers *)
  slots : absval IMap.t;
}

let init_state : state =
  let regs = Array.make 32 Vtop in
  regs.(Asm.sp) <- Vsp (Interval.of_int_const 0);
  regs.(0) <- vint_top;
  { regs; slots = IMap.empty }

let state_equal (a : state) (b : state) : bool =
  let rec regs_eq i =
    i >= 32 || (absval_equal a.regs.(i) b.regs.(i) && regs_eq (i + 1))
  in
  regs_eq 0 && IMap.equal absval_equal a.slots b.slots

let join_state (a : state) (b : state) : state =
  { regs = Array.init 32 (fun i -> join_absval a.regs.(i) b.regs.(i));
    slots =
      IMap.merge
        (fun _ x y ->
           match x, y with
           | Some x, Some y -> Some (join_absval x y)
           | Some _, None | None, Some _ | None, None -> Some Vtop)
        a.slots b.slots }

let widen_state (old_s : state) (new_s : state) : state =
  { regs = Array.init 32 (fun i -> widen_absval old_s.regs.(i) new_s.regs.(i));
    slots =
      IMap.merge
        (fun _ x y ->
           match x, y with
           | Some x, Some y -> Some (widen_absval x y)
           | Some _, None | None, Some _ | None, None -> Some Vtop)
        old_s.slots new_s.slots }

let get_reg (st : state) (r : Asm.ireg) : absval = st.regs.(r)

let set_reg (st : state) (r : Asm.ireg) (v : absval) : state =
  let regs = Array.copy st.regs in
  regs.(r) <- v;
  { st with regs }

(* Exact stack-slot key of an address, if statically known. *)
let slot_key (st : state) (a : Asm.address) : int option =
  match a with
  | Asm.Aind (b, off) ->
    (match st.regs.(b) with
     | Vsp itv ->
       (match Interval.is_const itv with
        | Some sp_off -> Some (sp_off + Int32.to_int off)
        | None -> None)
     | Vint _ | Vsym _ | Vtop -> None)
  | Asm.Aindx _ | Asm.Aglob _ | Asm.Asda _ -> None

(* Resolved memory region of an access. *)
type region =
  | Rslot of int                       (* exact stack slot (sp0-relative) *)
  | Rstack of Interval.t               (* imprecise stack range *)
  | Rsym of string * Interval.t        (* symbol + byte-offset interval *)
  | Rpool of float                     (* constant pool entry *)
  | Runknown

let region_of_address (st : state) (a : Asm.address) : region =
  match a with
  | Asm.Aglob (s, off) | Asm.Asda (s, off) ->
    Rsym (s, Interval.of_const off)
  | Asm.Aind (b, off) ->
    (match st.regs.(b) with
     | Vsp itv ->
       let shifted = Interval.add itv (Interval.of_const off) in
       (match Interval.is_const shifted with
        | Some k -> Rslot k
        | None -> Rstack shifted)
     | Vsym (s, itv) -> Rsym (s, Interval.add itv (Interval.of_const off))
     | Vint _ | Vtop -> Runknown)
  | Asm.Aindx (b, x) ->
    (match st.regs.(b), st.regs.(x) with
     | Vsym (s, itv), Vint i -> Rsym (s, Interval.add itv i)
     | Vsym (s, itv), Vtop -> Rsym (s, Interval.add itv Interval.top)
     | Vsp itv, Vint i ->
       let r = Interval.add itv i in
       (match Interval.is_const r with
        | Some k -> Rslot k
        | None -> Rstack r)
     | Vint i, Vsym (s, itv) -> Rsym (s, Interval.add itv i)
     | _, _ -> Runknown)

let eval_addi (base : absval) (imm : int) : absval =
  let itv_imm = Interval.of_int_const imm in
  match base with
  | Vint i -> Vint (Interval.add i itv_imm)
  | Vsym (s, i) -> Vsym (s, Interval.add i itv_imm)
  | Vsp i -> Vsp (Interval.add i itv_imm)
  | Vtop -> Vtop

let eval_add (a : absval) (b : absval) : absval =
  match a, b with
  | Vint x, Vint y -> Vint (Interval.add x y)
  | Vsym (s, x), Vint y | Vint y, Vsym (s, x) -> Vsym (s, Interval.add x y)
  | Vsp x, Vint y | Vint y, Vsp x -> Vsp (Interval.add x y)
  | _, _ -> Vtop

let eval_sub (a : absval) (b : absval) : absval =
  (* a - b *)
  match a, b with
  | Vint x, Vint y -> Vint (Interval.sub x y)
  | Vsym (s, x), Vint y -> Vsym (s, Interval.sub x y)
  | Vsp x, Vint y -> Vsp (Interval.sub x y)
  | Vsym (s1, x), Vsym (s2, y) when String.equal s1 s2 ->
    Vint (Interval.sub x y)
  | Vsp x, Vsp y -> Vint (Interval.sub x y)
  | _, _ -> Vtop

let as_int_itv (v : absval) : Interval.t =
  match v with
  | Vint i -> i
  | Vsym _ | Vsp _ | Vtop -> Interval.top

(* Annotation handling: a value-range annotation constrains the (single)
   argument's location at this program point. Two source forms are
   understood:
     __builtin_annotation("range 0 359", x)
     __builtin_annotation("0 <= %1 <= 359", x)   (paper section 3.4 style)
   The %1 placeholder is substituted by the final location at emission;
   the analyzer works on the pre-substitution text plus the argument. *)
let parse_range_annot (text : string) : (int * int) option =
  let words =
    List.filter
      (fun s -> not (String.equal s ""))
      (String.split_on_char ' ' (String.trim text))
  in
  match words with
  | [ "range"; lo; hi ] | [ lo; "<="; "%1"; "<="; hi ] ->
    (match int_of_string_opt lo, int_of_string_opt hi with
     | Some l, Some h when l <= h -> Some (l, h)
     | _, _ -> None)
  | _ -> None

let apply_annot (st : state) (text : string) (args : Asm.annot_arg list) :
  state =
  match parse_range_annot text, args with
  | Some (lo, hi), [ Asm.AA_ireg r ] ->
    let refined =
      match Interval.meet (as_int_itv (get_reg st r)) (Interval.make lo hi) with
      | Some itv -> Vint itv
      | None -> Vint (Interval.make lo hi) (* contradiction: trust annotation *)
    in
    set_reg st r refined
  | Some (lo, hi), [ Asm.AA_stack_int off ] ->
    (match slot_key st (Asm.Aind (Asm.sp, off)) with
     | Some key -> { st with slots = IMap.add key (Vint (Interval.make lo hi)) st.slots }
     | None -> st)
  | _, _ -> st

(* Transfer function of a single instruction. *)
let transfer (st : state) (i : Asm.instr) : state =
  match i with
  | Asm.Plabel _ | Asm.Pb _ | Asm.Pbc _ | Asm.Pblr -> st
  | Asm.Pannot (text, args) -> apply_annot st text args
  | Asm.Padd (d, a, b) -> set_reg st d (eval_add st.regs.(a) st.regs.(b))
  | Asm.Psubf (d, a, b) -> set_reg st d (eval_sub st.regs.(b) st.regs.(a))
  | Asm.Pmullw (d, a, b) ->
    set_reg st d
      (Vint (Interval.mul (as_int_itv st.regs.(a)) (as_int_itv st.regs.(b))))
  | Asm.Pdivw (d, _, _) -> set_reg st d vint_top
  | Asm.Pand (d, _, _) | Asm.Por (d, _, _) | Asm.Pxor (d, _, _)
  | Asm.Pslw (d, _, _) | Asm.Psraw (d, _, _) -> set_reg st d vint_top
  | Asm.Pneg (d, a) -> set_reg st d (Vint (Interval.neg (as_int_itv st.regs.(a))))
  | Asm.Pmr (d, a) -> set_reg st d st.regs.(a)
  | Asm.Paddi (d, a, imm) ->
    let base = if a = 0 then Vint (Interval.of_int_const 0) else st.regs.(a) in
    set_reg st d (eval_addi base (Int32.to_int imm))
  | Asm.Paddis (d, a, imm) ->
    let base = if a = 0 then Vint (Interval.of_int_const 0) else st.regs.(a) in
    let imm16 = Int32.to_int imm * 65536 in
    (match eval_addi base imm16 with
     | v -> set_reg st d v)
  | Asm.Pori (d, a, imm) ->
    (match st.regs.(a) with
     | Vint itv ->
       (match Interval.is_const itv with
        | Some v ->
          let result = v lor Int32.to_int imm in
          set_reg st d
            (if Interval.in_range result then Vint (Interval.of_int_const result)
             else vint_top)
        | None -> set_reg st d vint_top)
     | _ -> set_reg st d vint_top)
  | Asm.Pslwi (d, a, k) ->
    set_reg st d (Vint (Interval.shift_left_const (as_int_itv st.regs.(a)) k))
  | Asm.Plwz (d, a) ->
    (match slot_key st a with
     | Some key ->
       (match IMap.find_opt key st.slots with
        | Some v -> set_reg st d v
        | None -> set_reg st d vint_top)
     | None -> set_reg st d vint_top)
  | Asm.Pstw (s, a) ->
    (match slot_key st a with
     | Some key -> { st with slots = IMap.add key st.regs.(s) st.slots }
     | None ->
       (match region_of_address st a with
        | Rstack _ | Runknown ->
          (* imprecise store that may hit the stack: kill all slots *)
          { st with slots = IMap.empty }
        | Rslot _ | Rsym _ | Rpool _ -> st))
  | Asm.Plfd _ | Asm.Pfadd _ | Asm.Pfsub _ | Asm.Pfmul _ | Asm.Pfdiv _
  | Asm.Pfneg _ | Asm.Pfabs _ | Asm.Pfmr _ | Asm.Plfdc _ | Asm.Pfcfiw _
  | Asm.Pfmadd _ | Asm.Pfmsub _
  | Asm.Pacqf _ | Asm.Poutf _ -> st
  | Asm.Pstfd (_, a) ->
    (match slot_key st a with
     | Some key ->
       (* a float occupies the slot: integer reads would be malformed *)
       { st with slots = IMap.add key Vtop st.slots }
     | None ->
       (match region_of_address st a with
        | Rstack _ | Runknown -> { st with slots = IMap.empty }
        | Rslot _ | Rsym _ | Rpool _ -> st))
  | Asm.Pcmpw _ | Asm.Pcmpwi _ | Asm.Pfcmpu _ -> st
  | Asm.Psetcc (d, _) -> set_reg st d (Vint (Interval.make 0 1))
  | Asm.Pfctiwz (d, _) -> set_reg st d vint_top
  | Asm.Pacqi (d, _) -> set_reg st d vint_top
  | Asm.Pouti _ -> st
  | Asm.Pla (d, sym) -> set_reg st d (Vsym (sym, Interval.of_int_const 0))
  | Asm.Pmovcc (d, s, _) -> set_reg st d (join_absval st.regs.(d) st.regs.(s))
  | Asm.Pfmovcc _ -> st
  | Asm.Pallocframe sz ->
    (match st.regs.(Asm.sp) with
     | Vsp itv ->
       set_reg st Asm.sp (Vsp (Interval.sub itv (Interval.of_int_const sz)))
     | _ -> set_reg st Asm.sp Vtop)
  | Asm.Pfreeframe sz ->
    (match st.regs.(Asm.sp) with
     | Vsp itv ->
       set_reg st Asm.sp (Vsp (Interval.add itv (Interval.of_int_const sz)))
     | _ -> set_reg st Asm.sp Vtop)

(* The comparison guarding a block's conditional exit: scans backwards
   from the end of the block for the Pcmpw/Pcmpwi feeding the final Pbc.
   Returns (left operand as register, right operand description). *)
type cmp_operand =
  | CmpReg of Asm.ireg
  | CmpImm of int32

let block_compare (blk : Cfg.block) : (Asm.ireg * cmp_operand) option =
  let n = Array.length blk.Cfg.b_instrs in
  let rec scan i =
    if i < 0 then None
    else
      match blk.Cfg.b_instrs.(i) with
      | Asm.Pcmpw (a, b) -> Some (a, CmpReg b)
      | Asm.Pcmpwi (a, imm) -> Some (a, CmpImm imm)
      | Asm.Pfcmpu _ -> None (* float guards are not loop-bound material *)
      | Asm.Pbc _ | Asm.Pannot _ -> scan (i - 1)
      | _ -> None
  in
  scan (n - 1)

(* The branch condition of the block's terminating Pbc, if any. *)
let block_branch_cond (blk : Cfg.block) : Asm.branch_cond option =
  let n = Array.length blk.Cfg.b_instrs in
  if n = 0 then None
  else
    match blk.Cfg.b_instrs.(n - 1) with
    | Asm.Pbc (c, _) -> Some c
    | _ -> None

(* Comparison satisfied on the taken edge of [Pbc cond] after
   cmpw(a, b): cond bit holds. *)
let comparison_of_cond (c : Asm.branch_cond) : Minic.Ast.comparison =
  match c with
  | Asm.BT Asm.CRlt -> Minic.Ast.Clt
  | Asm.BT Asm.CRgt -> Minic.Ast.Cgt
  | Asm.BT Asm.CReq -> Minic.Ast.Ceq
  | Asm.BF Asm.CRlt -> Minic.Ast.Cge
  | Asm.BF Asm.CRgt -> Minic.Ast.Cle
  | Asm.BF Asm.CReq -> Minic.Ast.Cne

(* Refine [st] assuming the block's comparison holds with [cmp]. *)
let refine_state (st : state) (blk : Cfg.block) (cmp : Minic.Ast.comparison) :
  state =
  match block_compare blk with
  | None -> st
  | Some (left, right) ->
    let right_itv =
      match right with
      | CmpReg r -> as_int_itv st.regs.(r)
      | CmpImm imm -> Interval.of_const imm
    in
    let left_itv = as_int_itv st.regs.(left) in
    let st =
      match Interval.refine_cmp cmp left_itv right_itv with
      | Some itv when (match st.regs.(left) with Vint _ | Vtop -> true | _ -> false) ->
        set_reg st left (Vint itv)
      | _ -> st
    in
    (match right with
     | CmpReg r ->
       (match
          Interval.refine_cmp (Minic.Ast.swap_comparison cmp)
            (as_int_itv st.regs.(r)) left_itv
        with
        | Some itv when (match st.regs.(r) with Vint _ | Vtop -> true | _ -> false) ->
          set_reg st r (Vint itv)
        | _ -> st)
     | CmpImm _ -> st)

(* Run the transfer over a whole block. *)
let transfer_block (blk : Cfg.block) (st : state) : state =
  Array.fold_left transfer st blk.Cfg.b_instrs

(* Out-state along a given edge, with branch refinement. *)
let edge_state (blk : Cfg.block) (out_st : state) (kind : Cfg.edge_kind) :
  state =
  match block_branch_cond blk with
  | None -> out_st
  | Some c ->
    let cmp = comparison_of_cond c in
    (match kind with
     | Cfg.Etaken -> refine_state out_st blk cmp
     | Cfg.Efall ->
       refine_state out_st blk (Minic.Ast.negate_comparison cmp))

type result = {
  r_entry_states : state option array; (* per block; None = unreachable *)
  r_cfg : Cfg.t;
}

(* Fixpoint with widening after [widen_after] joins at the same block.
   Widening bounds the chain height in theory; [fuel] bounds the
   worklist iterations unconditionally (one per processed block), so a
   transfer-function bug or a pathological CFG yields a refusal
   upstream, never a hang. *)
let analyze ?(widen_after = 3) ?(fuel = Fuel.default.Fuel.fl_widen)
    (cfg : Cfg.t) : result =
  let n = Cfg.num_blocks cfg in
  let entry_states : state option array = Array.make n None in
  let visits = Array.make n 0 in
  let worklist = Queue.create () in
  let inqueue = Array.make n false in
  let push b =
    if not inqueue.(b) then begin
      inqueue.(b) <- true;
      Queue.add b worklist
    end
  in
  entry_states.(cfg.Cfg.c_entry) <- Some init_state;
  push cfg.Cfg.c_entry;
  let iters = ref 0 in
  while not (Queue.is_empty worklist) do
    incr iters;
    Fuel.tick ();
    if !iters > fuel then Fuel.exhaust "value-analysis widening fixpoint";
    let b = Queue.pop worklist in
    inqueue.(b) <- false;
    match entry_states.(b) with
    | None -> ()
    | Some st_in ->
      let blk = Cfg.block cfg b in
      let st_out = transfer_block blk st_in in
      List.iter
        (fun (s, kind) ->
           let st_edge = edge_state blk st_out kind in
           let updated =
             match entry_states.(s) with
             | None -> Some st_edge
             | Some old ->
               let joined = join_state old st_edge in
               if state_equal joined old then None
               else begin
                 visits.(s) <- visits.(s) + 1;
                 if visits.(s) > widen_after then Some (widen_state old joined)
                 else Some joined
               end
           in
           match updated with
           | Some st' ->
             entry_states.(s) <- Some st';
             push s
           | None -> ())
        blk.Cfg.b_succs
  done;
  { r_entry_states = entry_states; r_cfg = cfg }

(* State just before instruction [idx] of block [b]. *)
let state_at (res : result) (b : int) (idx : int) : state option =
  match res.r_entry_states.(b) with
  | None -> None
  | Some st ->
    let blk = Cfg.block res.r_cfg b in
    let cur = ref st in
    for i = 0 to idx - 1 do
      cur := transfer !cur blk.Cfg.b_instrs.(i)
    done;
    Some !cur
