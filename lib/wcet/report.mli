(** WCET analysis report: the bound together with the evidence a
    certification-minded user inspects. *)

(** The path-analysis engine behind the bound. [Ipet] (the default) is
    the structural ILP of the original analyzer; [Omt] is the
    optimization-modulo-theory engine ({!Smt}: the same flow system
    plus semantic infeasible-path cuts, optimized by binary search over
    LP feasibility queries); [Both] runs the two and refuses unless
    [omt <= ipet] holds — the differential oracle. The engine selection
    is part of the {!Memo} content key. *)
type engine = Ipet | Omt | Both

val engine_name : engine -> string
(** ["ipet"] / ["omt"] / ["both"] — the CLI spelling. *)

val engine_of_string : string -> (engine, string) Result.t
(** Parse the CLI spelling; [Error] carries the usage message. *)

type loop_info = {
  li_header : int;
  li_bound : int;
  li_from_annotation : bool;
}

type t = {
  rp_function : string;
  rp_wcet : int;               (** cycles; the selected engine's bound
                                   (OMT under [Omt] and [Both]) *)
  rp_exact_ilp : bool;         (** false: LP-relaxation bound (still sound) *)
  rp_blocks : int;
  rp_code_bytes : int;
  rp_loops : loop_info list;
  rp_cache_first_miss : int;   (** one-time line-fill cycles in the bound *)
  rp_cache_imprecise : bool;
  rp_code_lines : int;
  rp_data_lines : int;
  rp_engine : engine;
  rp_wcet_ipet : int option;   (** IPET bound, when [Both] computed it *)
  rp_wcet_omt : int option;    (** OMT bound, under [Omt] or [Both] *)
  rp_omt_cuts : int;           (** infeasible-path cuts in the encoding *)
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Accounting for a batch of analyses run against a {!Memo} cache:
    hit/miss/entry counts plus how often each analysis phase actually
    ran (a hit runs none). Snapshots come from [Memo.stats]. *)
type analysis_stats = {
  st_hits : int;       (** served from the in-memory table *)
  st_disk_hits : int;  (** served from the persistent on-disk store *)
  st_misses : int;
  st_writes : int;     (** entries persisted to the store this run *)
  st_entries : int;    (** distinct cached analyses (in memory) *)
  st_decode : int;     (** CFG reconstructions run *)
  st_value : int;
  st_bounds : int;
  st_cache : int;
  st_pipeline : int;
  st_ipet : int;
  st_omt : int;      (** OMT path analyses run ([Omt]/[Both] engines) *)
}

val hit_rate : analysis_stats -> float
(** Percentage of lookups served from cache — memory or disk (0 when
    no lookups). *)

val pp_stats : Format.formatter -> analysis_stats -> unit
val stats_to_string : analysis_stats -> string

val stats_json : analysis_stats -> string
(** Hit/miss/entry accounting as one flat JSON object (no trailing
    newline) — embedded per leg in the scaling study
    ([BENCH_scale.json]). *)
