(** WCET analysis report: the bound together with the evidence a
    certification-minded user inspects. *)

type loop_info = {
  li_header : int;
  li_bound : int;
  li_from_annotation : bool;
}

type t = {
  rp_function : string;
  rp_wcet : int;               (** cycles *)
  rp_exact_ilp : bool;         (** false: LP-relaxation bound (still sound) *)
  rp_blocks : int;
  rp_code_bytes : int;
  rp_loops : loop_info list;
  rp_cache_first_miss : int;   (** one-time line-fill cycles in the bound *)
  rp_cache_imprecise : bool;
  rp_code_lines : int;
  rp_data_lines : int;
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Accounting for a batch of analyses run against a {!Memo} cache:
    hit/miss/entry counts plus how often each analysis phase actually
    ran (a hit runs none). Snapshots come from [Memo.stats]. *)
type analysis_stats = {
  st_hits : int;       (** served from the in-memory table *)
  st_disk_hits : int;  (** served from the persistent on-disk store *)
  st_misses : int;
  st_writes : int;     (** entries persisted to the store this run *)
  st_entries : int;    (** distinct cached analyses (in memory) *)
  st_decode : int;     (** CFG reconstructions run *)
  st_value : int;
  st_bounds : int;
  st_cache : int;
  st_pipeline : int;
  st_ipet : int;
}

val hit_rate : analysis_stats -> float
(** Percentage of lookups served from cache — memory or disk (0 when
    no lookups). *)

val pp_stats : Format.formatter -> analysis_stats -> unit
val stats_to_string : analysis_stats -> string
