(** Disk-backed persistence for the content-addressed analysis cache.

    A {!Store.t} is the on-disk half of {!Memo}: one file per finished
    analysis under [<dir>/<first-2-hex>/<digest-hex>], so analyses
    survive across process runs ([bench]/[aitw]/[fcc] invocations) and
    may be shared by concurrent processes pointing at one directory.

    {b Entry format.} [ "VCWS1" ^ md5(body) ^ body ] where [body] is the
    marshalled quadruple [(toolchain_version, key payload, Report.t,
    Annotfile.entry list)]. A load verifies the magic, the whole-body
    MD5 (catching truncation and bit flips), the version stamp and the
    stored key payload; {e any} mismatch — including an unreadable or
    partially written file — is silently a miss, never an error.

    {b Crash safety.} A save marshals to a [.tmp] file in the same
    subdirectory, [fsync]s it and [rename]s it into place, so a
    [kill -9] mid-write or a concurrent [bench -j] process can never
    publish a torn entry: readers see either the old state or the
    complete new entry.

    {b GC.} Entry use (disk hit or write) appends the digest to a small
    [index] file; {!gc} evicts least-recently-used entries until the
    store fits the configured byte budget. The index is advisory: if it
    is lost or corrupted, eviction order degrades to file mtimes, and
    entries remain valid.

    The store itself holds no analysis logic — {!Memo} decides what to
    look up and what to publish. *)

type t

val toolchain_version : string
(** Version stamp written into every entry and required on load.
    {b Bump this whenever the analysis semantics, [Report.t] or
    [Annotfile.entry] change}: stale entries then miss and are
    recomputed (the stamp is the first, always-[string] component of
    the marshalled body, so the check is safe even across type
    changes). The OCaml compiler version is included because the
    entries are [Marshal] images. *)

val create : ?gc_mb:int -> dir:string -> unit -> t option
(** Open (creating if needed) the store rooted at [dir]. [gc_mb] is the
    size budget {!gc} enforces, in MiB. Returns [None] when the
    directory cannot be created or written — callers degrade to a
    memory-only cache. *)

val dir : t -> string

val load :
  t -> digest:string -> payload:string ->
  (Report.t * Annotfile.entry list) option
(** Look the entry up on disk and verify magic, body MD5, version stamp
    and [payload]. A verified hit records a use in the index. Never
    raises: corruption of any kind is a miss. *)

val save :
  t -> digest:string -> payload:string ->
  Report.t * Annotfile.entry list -> bool
(** Publish an entry (tmp + fsync + rename). Returns [true] iff a new
    file was written; an already-present entry is only touched in the
    index. I/O failure is silent ([false]) — the cache degrades, the
    toolchain does not. *)

val gc : ?max_bytes:int -> t -> unit
(** Evict least-recently-used entries until total entry size is within
    [max_bytes] (default: the budget from [create ?gc_mb]; no-op when
    neither is given). Recency is the index order; entries unknown to
    the index are evicted first, oldest mtime first. Robust against
    concurrent writers: a vanished file is skipped, and the index is
    rewritten atomically. *)

val size_bytes : t -> int
(** Total size of all entry files (for tests and accounting). *)

val entries : t -> string list
(** Hex digests of the entries currently on disk (unordered). *)
