(** Content-addressed, Domain-safe cache of per-function WCET analysis.

    The key digests everything the analysis consumes — the instruction
    stream (with analysis-irrelevant volatile signal names normalized
    away), the entry address, and the layout slice of symbols/constants
    the code touches; see [lib/wcet/README.md] for the exact contract.
    The value is the finished {!Report.t} plus the function's
    annotation-file fragment. The function {e name} is not part of the
    key (it only reaches the output), so structurally identical nodes
    share one entry; {!Driver} re-stamps names on hits.

    The table is sharded by digest with one [Mutex] per shard:
    [Fcstack.Par] workers on different Domains share one [t] without
    serializing. A hit returns the same value a miss would compute, so
    caching never changes results (qcheck-enforced).

    This is the only shared mutable state in the libraries; it exists
    solely as an explicit record threaded through
    [Driver.analyze ?cache] — never a module-level global. *)

type t

type value = {
  cv_report : Report.t;
  cv_annots : Annotfile.entry list;
      (** the function's annotation entries, with final argument
          locations substituted — the exchangeable aiT artifact *)
}

type key

val key : Target.Layout.t -> base:int -> Target.Asm.func -> key
(** Canonical content key of analyzing [func] placed at [base] under
    the given layout. *)

val digest : key -> string
(** The key's MD5 digest (16 raw bytes), for logging/tests. *)

val create : ?shards:int -> unit -> t
(** Fresh empty cache; [shards] mutex-protected shards (default 16). *)

val find : t -> key -> value option
(** Lookup; counts a hit or a miss. A digest collision with a different
    payload is reported as a miss, never as the colliding entry. *)

val peek : t -> key -> value option
(** Like {!find} but leaves the hit/miss counters untouched — for
    secondary consumers (annotation-file assembly). *)

val add : t -> key -> value -> unit

val length : t -> int
(** Number of cached analyses. *)

type phase = Pdecode | Pvalue | Pbounds | Pcache | Ppipeline | Pipet

val count_phase : t option -> phase -> unit
(** Record one run of an analysis phase ([None]: no accounting).
    {!Driver} calls this as phases actually execute, so failed analyses
    show partial phase counts. *)

val stats : t -> Report.analysis_stats
(** Snapshot of hit/miss/entry counts and phase-run counters. *)
