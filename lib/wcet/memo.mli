(** Content-addressed, Domain-safe cache of per-function WCET analysis.

    The key digests everything the analysis consumes — the instruction
    stream (with analysis-irrelevant volatile signal names normalized
    away), the entry address, and the layout slice of symbols/constants
    the code touches; see [lib/wcet/README.md] for the exact contract.
    The value is the finished {!Report.t} plus the function's
    annotation-file fragment. The function {e name} is not part of the
    key (it only reaches the output), so structurally identical nodes
    share one entry; {!Driver} re-stamps names on hits.

    The table is sharded by digest with one [Mutex] per shard:
    [Fcstack.Par] workers on different Domains share one [t] without
    serializing. A hit returns the same value a miss would compute, so
    caching never changes results (qcheck-enforced).

    With [create ?dir] the cache gains a persistent on-disk half
    ({!Store}): memory misses probe the store, finished analyses are
    written through with crash-safe tmp+fsync+rename publication, and
    a corrupted, truncated or version-mismatched entry is silently a
    miss — never an error, never a wrong report.

    This is the only shared mutable state in the libraries; it exists
    solely as an explicit record threaded through
    [Driver.analyze ?cache] — never a module-level global. *)

type t

type value = {
  cv_report : Report.t;
  cv_annots : Annotfile.entry list;
      (** the function's annotation entries, with final argument
          locations substituted — the exchangeable aiT artifact *)
}

type key

val key :
  ?fuel:Fuel.t -> ?spec:string -> ?engine:Report.engine ->
  Target.Layout.t -> base:int -> Target.Asm.func -> key
(** Canonical content key of analyzing [func] placed at [base] under
    the given layout with the given fuel budgets (default
    {!Fuel.default}). The budgets are part of the key: analyses
    under different budgets never share an entry (a budget change can
    flip success into refusal or exact into relaxation bound). [spec]
    (default [""]) is the producing toolchain's canonical pipeline
    spec ({!Fcstack.Chain.pipeline_spec}); it widens the key the same
    way, so two optimization selections never share an entry. So does
    [engine] (default [Ipet]): the engines bound the same code
    differently by design, so their analyses must never share an
    entry either. *)

val digest : key -> string
(** The key's MD5 digest (16 raw bytes), for logging/tests. *)

val create : ?shards:int -> ?dir:string -> ?gc_mb:int -> unit -> t
(** Fresh cache; [shards] mutex-protected shards (default 16).

    [dir] attaches the persistent on-disk half ({!Store}): memory
    misses probe [dir], and finished analyses are written through, so
    analyses survive across process runs and may be shared by
    concurrent processes pointing at one directory. An unusable [dir]
    silently degrades to a memory-only cache. [gc_mb] is the size
    budget {!gc} enforces. *)

val store_dir : t -> string option
(** The attached store's directory, when the cache is persistent. *)

val gc : ?max_bytes:int -> t -> unit
(** Evict least-recently-used store entries until the on-disk size fits
    the budget ([max_bytes], defaulting to [create]'s [gc_mb]); no-op
    for a memory-only cache or when no budget was configured. Callers
    run this once at the end of a process run. *)

val find : t -> key -> value option
(** Lookup; counts a memory hit, a disk hit or a miss. A digest
    collision with a different payload is reported as a miss, never as
    the colliding entry; so is a corrupted or version-mismatched disk
    entry (the store re-verifies both stamps on every load). *)

val peek : t -> key -> value option
(** Like {!find} but leaves the hit/miss counters untouched — for
    secondary consumers (annotation-file assembly). *)

val add : t -> key -> value -> unit

val length : t -> int
(** Number of cached analyses. *)

type phase = Pdecode | Pvalue | Pbounds | Pcache | Ppipeline | Pipet | Pomt

val count_phase : t option -> phase -> unit
(** Record one run of an analysis phase ([None]: no accounting).
    {!Driver} calls this as phases actually execute, so failed analyses
    show partial phase counts. *)

val stats : t -> Report.analysis_stats
(** Snapshot of hit/miss/entry counts and phase-run counters. *)
