(* Path analysis by implicit path enumeration (IPET): maximize the total
   cycle flow over the CFG subject to structural flow conservation and
   the loop bounds, solved as an integer linear program.

   Variables are edge execution counts (plus one virtual exit edge per
   exit block). A block's cost is charged on its outgoing edges (every
   execution leaves the block exactly once), edge costs add the branch
   direction penalty. Loop-bound constraints limit back-edge flow
   relative to loop-entry flow.

   The flow system itself ([build_system]) is shared with the OMT
   engine ([Smt]), which extends it with semantic infeasible-path cut
   constraints: both engines optimize exactly the same objective over
   the same edge variables, so their bounds are comparable cycle for
   cycle (the foundation of the [omt <= ipet] differential oracle). *)

exception Analysis_failed of string

type edge = {
  e_src : int;
  e_dst : int option; (* None: virtual exit edge *)
  e_kind : Cfg.edge_kind;
}

(* The structural ILP: edge variables (index into [sys_edges]), the
   cycle-cost objective, flow conservation and loop-bound constraints. *)
type system = {
  sys_edges : edge array;
  sys_objective : Lp.Q.t array;
  sys_constraints : Lp.constr list;
}

type result = {
  ipet_wcet : int;          (* cycles, including cache first-miss budget *)
  ipet_exact : bool;        (* ILP solved to integrality *)
  ipet_flow_cycles : int;   (* objective without the first-miss budget *)
}

let build_system (cfg : Cfg.t) (pl : Pipeline.t) (loops : Loops.t)
    (bounds : Boundanalysis.loop_bound list) : system =
  let reachable = Cfg.reverse_postorder cfg in
  let in_reach = Array.make (Cfg.num_blocks cfg) false in
  List.iter (fun b -> in_reach.(b) <- true) reachable;
  (* enumerate edges *)
  let edges = ref [] in
  let nedges = ref 0 in
  let edge_index : (int * int option * Cfg.edge_kind, int) Hashtbl.t =
    Hashtbl.create 61
  in
  let add_edge (e : edge) : unit =
    Hashtbl.replace edge_index (e.e_src, e.e_dst, e.e_kind) !nedges;
    edges := e :: !edges;
    incr nedges
  in
  List.iter
    (fun b ->
       let blk = Cfg.block cfg b in
       List.iter
         (fun (s, k) -> add_edge { e_src = b; e_dst = Some s; e_kind = k })
         blk.Cfg.b_succs;
       if blk.Cfg.b_is_exit then
         add_edge { e_src = b; e_dst = None; e_kind = Cfg.Etaken })
    reachable;
  let edges = Array.of_list (List.rev !edges) in
  let n = Array.length edges in
  if n = 0 then
    (* single block, no edges at all: straight-line exit-less code is
       malformed; treat as failure *)
    raise (Analysis_failed "no edges (missing blr?)");
  (* objective: edge coefficient = block cost of source + edge cost *)
  let objective =
    Array.map
      (fun e ->
         let c =
           pl.Pipeline.pl_block_cost.(e.e_src)
           + Pipeline.edge_cost pl e.e_src e.e_kind
         in
         Lp.Q.of_int c)
      edges
  in
  (* flow conservation: for each block b:
       sum(out edges of b) - sum(in edges of b) = (b = entry ? 1 : 0) *)
  let constraints = ref [] in
  List.iter
    (fun b ->
       let coeffs = Hashtbl.create 7 in
       let bump j q =
         Hashtbl.replace coeffs j
           (Lp.Q.add q (Option.value ~default:Lp.Q.zero (Hashtbl.find_opt coeffs j)))
       in
       Array.iteri
         (fun j e ->
            if e.e_src = b then bump j Lp.Q.one;
            match e.e_dst with
            | Some d when d = b -> bump j (Lp.Q.neg Lp.Q.one)
            | _ -> ())
         edges;
       let cs_coeffs =
         Hashtbl.fold (fun j q acc -> (j, q) :: acc) coeffs []
         |> List.filter (fun (_, q) -> not (Lp.Q.is_zero q))
       in
       constraints :=
         { Lp.cs_coeffs;
           cs_rel = Lp.Eq;
           cs_rhs =
             (if b = cfg.Cfg.c_entry then Lp.Q.one else Lp.Q.zero) }
         :: !constraints)
    reachable;
  (* loop bounds: sum(back edges) <= bound * sum(entry edges). When the
     header is the function entry, the virtual entry flow contributes
     the constant 1 to the right-hand side. *)
  List.iter
    (fun l ->
       let header = l.Loops.l_header in
       match
         List.find_opt
           (fun lb -> lb.Boundanalysis.lb_header = header)
           bounds
       with
       | None ->
         raise
           (Analysis_failed
              (Printf.sprintf "loop at B%d has no bound" header))
       | Some lb ->
         let bound = lb.Boundanalysis.lb_bound in
         let coeffs = ref [] in
         List.iter
           (fun (src, kind) ->
              match Hashtbl.find_opt edge_index (src, Some header, kind) with
              | Some j -> coeffs := (j, Lp.Q.one) :: !coeffs
              | None -> ())
           l.Loops.l_back_edges;
         let entry_consts = ref 0 in
         List.iter
           (fun (src, kind) ->
              match Hashtbl.find_opt edge_index (src, Some header, kind) with
              | Some j ->
                coeffs := (j, Lp.Q.of_int (-bound)) :: !coeffs
              | None -> ())
           l.Loops.l_entry_edges;
         if header = cfg.Cfg.c_entry then entry_consts := 1;
         constraints :=
           { Lp.cs_coeffs = !coeffs;
             cs_rel = Lp.Le;
             cs_rhs = Lp.Q.of_int (bound * !entry_consts) }
           :: !constraints)
    loops.Loops.loops;
  { sys_edges = edges;
    sys_objective = objective;
    sys_constraints = !constraints }

(* Maximize the system's objective (optionally under extra constraints,
   e.g. the OMT engine's cuts) with the branch & bound ILP solver.
   Returns the flow-cycle bound; first-miss budgeting is the caller's. *)
let solve_system ?(fuel = Fuel.default) ?(extra = []) (sys : system) :
  Lp.int_solution =
  let pb =
    { Lp.pb_nvars = Array.length sys.sys_edges;
      pb_objective = sys.sys_objective;
      pb_constraints = extra @ sys.sys_constraints }
  in
  match
    Lp.solve_integer ~fuel:fuel.Fuel.fl_simplex
      ~max_nodes:fuel.Fuel.fl_bb_nodes pb
  with
  | exception Lp.Infeasible -> raise (Analysis_failed "IPET infeasible")
  | exception Lp.Unbounded ->
    raise (Analysis_failed "IPET unbounded (missing loop bound?)")
  | exception Lp.Overflow -> raise (Analysis_failed "LP arithmetic overflow")
  | sol ->
    if sol.Lp.is_objective_bound = min_int then
      raise (Analysis_failed "IPET infeasible");
    sol

let compute ?(fuel = Fuel.default) (cfg : Cfg.t) (pl : Pipeline.t)
    (cache : Cacheanalysis.t) (loops : Loops.t)
    (bounds : Boundanalysis.loop_bound list) : result =
  let sys = build_system cfg pl loops bounds in
  let sol = solve_system ~fuel sys in
  { ipet_wcet = sol.Lp.is_objective_bound + cache.Cacheanalysis.ca_first_miss;
    ipet_exact = sol.Lp.is_exact;
    ipet_flow_cycles = sol.Lp.is_objective_bound }
