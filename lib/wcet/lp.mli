(** Exact rational arithmetic and a two-phase primal simplex with
    branch & bound — the engine under the IPET path analysis. Rationals
    are normalized fractions of native 63-bit integers with explicit
    overflow checks; the IPET programs are small, so exact arithmetic
    is affordable and removes floating-point soundness worries. *)

exception Overflow
exception Infeasible
exception Unbounded

module Q : sig
  type t = private {
    num : int;
    den : int; (** > 0, normalized *)
  }

  val make : int -> int -> t
  val zero : t
  val one : t
  val of_int : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val sign : t -> int
  val is_zero : t -> bool
  val is_integer : t -> bool
  val floor : t -> int
  val ceil : t -> int
  val to_float : t -> float
  val to_string : t -> string
end

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  cs_coeffs : (int * Q.t) list; (** variable index, coefficient *)
  cs_rel : relation;
  cs_rhs : Q.t;
}

type problem = {
  pb_nvars : int;
  pb_objective : Q.t array; (** maximize c.x, all variables >= 0 *)
  pb_constraints : constr list;
}

type solution = {
  sol_objective : Q.t;
  sol_values : Q.t array;
}

val solve : ?fuel:int -> problem -> solution
(** Two-phase simplex with Bland's anti-cycling fallback. [fuel]
    bounds the pivots of each phase (default
    [Fuel.default.fl_simplex]).
    @raise Infeasible / @raise Unbounded / @raise Overflow
    @raise Fuel.Exhausted when the pivot budget runs out. *)

type int_solution = {
  is_objective_bound : int;
      (** sound upper bound on the integral optimum; the LP relaxation
          value when the branch & bound budget runs out *)
  is_exact : bool;
}

val solve_integer : ?fuel:int -> ?max_nodes:int -> problem -> int_solution
(** [fuel] is {!solve}'s pivot budget; [max_nodes] bounds the branch &
    bound tree (default [Fuel.default.fl_bb_nodes]) — running out of
    nodes degrades to the (sound) LP relaxation bound, it never
    raises. *)
