(* Fuel budgets for every iterative analysis in this library.

   The analyzer's fixpoints and the IPET solver are all proved (or
   argued) terminating, but a certification pipeline cannot afford
   "argued": a pathological program, a bug in a transfer function or a
   degenerate LP must yield a *refusal* in bounded time, never a hang
   and never an unsound number. Every unbounded iteration site —
   simplex pivoting, branch & bound, the value-analysis widening loop,
   the must-cache ageing fixpoint — therefore counts against an
   explicit budget from this record; exhaustion raises [Exhausted],
   which [Driver] turns into an analysis refusal ([Driver.Error]).

   The defaults reproduce the constants that were previously hard-coded
   at each site, so default-fuel analyses are bit-identical to the
   pre-fuel analyzer. The fuel triple is part of the [Memo] content key:
   changing a budget can turn a success into a refusal (or, for the
   branch & bound budget, an exact bound into a relaxation bound), so
   analyses under different budgets must never share a cache entry. *)

type t = {
  fl_widen : int;
    (* worklist iterations of the value-analysis and must-cache
       fixpoints (each processed block counts one) *)
  fl_simplex : int;
    (* simplex pivoting iterations per [Lp.solve] phase *)
  fl_bb_nodes : int;
    (* branch & bound nodes in [Lp.solve_integer]; exhaustion here is
       NOT a refusal — the LP relaxation bound is still sound and is
       returned with [is_exact = false] *)
  fl_omt : int;
    (* OMT bound-search iterations in [Smt.compute] (each LP
       feasibility query counts one); exhaustion IS a refusal — a
       half-finished binary search has not established any bound *)
}

let default : t =
  { fl_widen = 1_000_000; fl_simplex = 20_000; fl_bb_nodes = 200; fl_omt = 64 }

(* A starved budget: every guarded loop refuses on its first iteration.
   The chaos harness injects this to prove exhaustion is contained. *)
let starved : t = { fl_widen = 0; fl_simplex = 0; fl_bb_nodes = 0; fl_omt = 0 }

exception Exhausted of string
(* [Exhausted what]: the iteration site [what] ran out of budget. *)

let exhaust (what : string) : 'a = raise (Exhausted what)

(* ---- cooperative cancellation ---------------------------------------- *)

(* The same sites that count fuel are the only places an analysis can
   spend unbounded time, so they double as cancellation points: the
   service installs a deadline check here and every fuel-guarded loop
   polls it ([tick]). [Expired] is deliberately NOT [Exhausted] — fuel
   exhaustion means "this analysis diverges" (a property of the
   request, cacheable as a refusal by the driver's handler), while
   expiry means "this caller stopped waiting" (a property of the
   moment, so it must escape the driver's handler, skip the cache, and
   reach the service layer as a Deadline refusal).

   The slot is domain-local: concurrent sessions in one process (tests
   run several) must not see each other's deadlines, and the Par
   worker domains of an in-process batch run inherit nothing — batch
   runs have no deadline by construction. *)

exception Expired

let deadline_slot : (unit -> bool) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_deadline (check : unit -> bool) (f : unit -> 'a) : 'a =
  let slot = Domain.DLS.get deadline_slot in
  let saved = !slot in
  slot := Some check;
  Fun.protect ~finally:(fun () -> slot := saved) f

let tick () : unit =
  match !(Domain.DLS.get deadline_slot) with
  | None -> ()
  | Some check -> if check () then raise Expired
