(* Optimization-modulo-theory WCET engine (after Henry, Asavoae,
   Monniaux & Maïza, "How to compute worst-case execution time by
   optimization modulo theory and a clever encoding of program
   semantics").

   The engine reuses the IPET flow system verbatim ([Ipet.build_system])
   and strengthens it with *semantic* information the structural ILP
   cannot see: linear "conflict cuts" x_e1 + x_e2 <= 1 over pairs of
   branch edges whose guarding conditions cannot both hold in one
   execution. The worst case is then found as an optimization-modulo-
   theory problem: binary search for the largest cycle budget T such
   that the cut system still admits a flow of cost >= T, each
   feasibility query discharged by the exact-rational simplex
   ([Lp.solve] with a zero objective). No external SMT/OMT solver is
   involved; the "theory" part is the cut derivation below.

   Cut derivation — a deliberately small but *sound* theory:

   The branch condition of a [Pbc] is the CR0 outcome of the nearest
   preceding compare ([Pcmpw]/[Pcmpwi]/[Pfcmpu] are the only CR0
   writers), found by scanning backward through unique-predecessor
   chains. Compare operands are traced to symbolic *origins*: a stack
   or global memory location ([Plwz]/[Plfd] from a resolvable address),
   an integer constant ([Paddi r, 0, k] / [Pcmpwi] immediate), or a
   float constant ([Plfdc]); register moves are followed, anything else
   is unknown and blocks the cut. Loads additionally forward through
   the nearest same-location store in the chain (the stream covers
   every instruction executed between that store and the load, so the
   stored value *is* the loaded value) — without this, the -O0 idiom
   of materializing constants through a reused spill slot would hide
   every comparison against a constant.

   Two branch-edge tests conflict when they constrain the *same stable
   value* in incompatible ways:
     - same predicate (equal normalized operand origins), disjoint
       CR-outcome sets — e.g. [x > c] taken and [x > c] not-taken;
     - interval disjointness against constants — e.g. [x < c1] and
       [x > c2] with c1 <= c2 (closed/open endpoints handled exactly;
       float tests whose outcome set admits "unordered" are skipped).

   Soundness side-conditions, checked per cut:
     - both branch blocks and every traced load lie outside all loop
       bodies, so each executes at most once per run (in a reducible
       CFG a block on any cycle belongs to a natural loop);
     - every traced memory location is *stable*: no indirect stores in
       the function, and at most one store overlaps the location — that
       store's block must be outside loops and dominate (or precede
       within) each load, so both tests observe the same value.

   The cuts only ever *exclude* flows no real execution produces, so
   the constrained optimum stays a sound upper bound; and because the
   cut system's feasible set is contained in the IPET system's, the
   bound can only tighten: omt <= ipet by construction (the binary
   search is additionally clamped to the base IPET bound, so the
   invariant survives branch&bound budget asymmetries). *)

module Asm = Target.Asm

type result = {
  smt_wcet : int;        (* OMT bound, incl. cache first-miss budget *)
  smt_ipet_wcet : int;   (* base IPET bound (same system, no cuts) *)
  smt_exact : bool;      (* both solves reached integrality *)
  smt_flow_cycles : int; (* OMT bound without the first-miss budget *)
  smt_cuts : int;        (* conflict cuts in the encoding *)
  smt_queries : int;     (* fueled solver calls spent by the search *)
}

(* ---------------------------------------------------------------- *)
(* Symbolic operand origins                                          *)
(* ---------------------------------------------------------------- *)

type location =
  | Lstack of int32          (* sp-relative slot *)
  | Lglob of string * int32  (* absolute symbol + displacement *)
  | Lsda of string * int32   (* small-data-area symbol + displacement *)

type operand =
  | Oload of location * int * int  (* location, load block, load index *)
  | Oconst of int32
  | Oconstf of float

(* Origin modulo the load site — two loads of one location denote the
   same value once stability is established. *)
type okey = Kload of location | Kint of int32 | Kflt of float

let okey_of (o : operand) : okey =
  match o with
  | Oload (l, _, _) -> Kload l
  | Oconst c -> Kint c
  | Oconstf f -> Kflt f

let loc_of_addr (a : Asm.address) : location option =
  match a with
  | Asm.Aind (b, off) when b = Asm.sp -> Some (Lstack off)
  | Asm.Aind _ | Asm.Aindx _ -> None  (* unresolved indirect access *)
  | Asm.Aglob (s, off) -> Some (Lglob (s, off))
  | Asm.Asda (s, off) -> Some (Lsda (s, off))

(* Byte-interval overlap; Lglob and Lsda ranges of one symbol are
   conservatively treated as aliased. *)
let overlaps (l1 : location) (n1 : int) (l2 : location) (n2 : int) : bool =
  let span o n =
    let o = Int64.of_int32 o in
    (o, Int64.add o (Int64.of_int n))
  in
  let inter (a, b) (c, d) = a < d && c < b in
  match l1, l2 with
  | Lstack o1, Lstack o2 -> inter (span o1 n1) (span o2 n2)
  | (Lglob (s1, o1) | Lsda (s1, o1)), (Lglob (s2, o2) | Lsda (s2, o2)) ->
    s1 = s2 && inter (span o1 n1) (span o2 n2)
  | _ -> false

(* ---------------------------------------------------------------- *)
(* Backward instruction stream                                       *)
(* ---------------------------------------------------------------- *)

(* Blocks from [b] backwards through *unique* predecessors: every
   instruction in the stream executes on each run reaching [b], in
   stream order, immediately before [b]'s terminator. *)
let chain_blocks (preds : int list array) (b : int) : int list =
  let visited = Hashtbl.create 8 in
  let rec go b =
    if Hashtbl.mem visited b then []
    else begin
      Hashtbl.add visited b ();
      b
      ::
      (match List.sort_uniq compare preds.(b) with
       | [ p ] -> go p
       | _ -> [])
    end
  in
  go b

(* Flattened backward stream: element 0 is the last instruction of
   [b], walking towards the function entry. *)
let back_stream (cfg : Cfg.t) (preds : int list array) (b : int) :
  (int * int * Asm.instr) array =
  chain_blocks preds b
  |> List.concat_map (fun blk ->
    let instrs = (Cfg.block cfg blk).Cfg.b_instrs in
    List.init (Array.length instrs) (fun k ->
      let i = Array.length instrs - 1 - k in
      (blk, i, instrs.(i))))
  |> Array.of_list

(* Nearest preceding compare — the CR0 value [Pbc] tests, since the
   three compares are the only CR0 writers. *)
let rec find_compare (stream : (int * int * Asm.instr) array) (pos : int) :
  (int * Asm.instr) option =
  if pos >= Array.length stream then None
  else
    let _, _, i = stream.(pos) in
    match i with
    | Asm.Pcmpw _ | Asm.Pcmpwi _ | Asm.Pfcmpu _ -> Some (pos, i)
    | _ -> find_compare stream (pos + 1)

(* Store-to-load forwarding inside the chain: the nearest store whose
   bytes may touch the loaded location decides the loaded value (all
   instructions between the two are in the stream, so nothing else can
   intervene). [Fexact] = same location, same size: the stored register
   forwards. Any partial or unresolvable overlap blocks forwarding and
   the load keeps its own identity — which the global stability check
   must then justify. Volatile actuator writes count against their
   symbol. *)
type fwd = Fnone | Fblocked | Fexact of int * Asm.reg

let rec nearest_store (stream : (int * int * Asm.instr) array) (pos : int)
    (loc : location) (len : int) : fwd =
  if pos >= Array.length stream then Fnone
  else
    let _, _, i = stream.(pos) in
    let store src a slen =
      match loc_of_addr a with
      | Some sl when sl = loc && slen = len -> Fexact (pos, src)
      | Some sl when overlaps sl slen loc len -> Fblocked
      | Some _ -> nearest_store stream (pos + 1) loc len
      | None -> Fblocked  (* indirect store: may overlap *)
    in
    match i with
    | Asm.Pstw (s, a) -> store (Asm.IR s) a 4
    | Asm.Pstfd (s, a) -> store (Asm.FR s) a 8
    | Asm.Pouti (sym, _) | Asm.Poutf (sym, _) ->
      if overlaps (Lglob (sym, 0l)) 8 loc len then Fblocked
      else nearest_store stream (pos + 1) loc len
    | _ -> nearest_store stream (pos + 1) loc len

(* Trace an integer register backward from stream position [pos] to
   its origin; [None] when the defining instruction is not one we can
   interpret (or the def site is out of the unique-predecessor chain). *)
let rec trace_ireg (stream : (int * int * Asm.instr) array) (pos : int)
    (r : int) : operand option =
  if pos >= Array.length stream then None
  else
    let blk, idx, i = stream.(pos) in
    match i with
    | Asm.Plwz (d, a) when d = r ->
      (match loc_of_addr a with
       | None -> None
       | Some loc ->
         let direct = Some (Oload (loc, blk, idx)) in
         (match nearest_store stream (pos + 1) loc 4 with
          | Fexact (q, Asm.IR s) ->
            (match trace_ireg stream (q + 1) s with
             | Some o -> Some o
             | None -> direct)
          | Fexact _ | Fblocked | Fnone -> direct))
    | Asm.Paddi (d, base, k) when d = r ->
      if base = 0 then Some (Oconst k) else None
    | Asm.Pmr (d, s) when d = r -> trace_ireg stream (pos + 1) s
    | i when List.mem (Asm.IR r) (Asm.defs i) -> None
    | _ -> trace_ireg stream (pos + 1) r

let rec trace_freg (stream : (int * int * Asm.instr) array) (pos : int)
    (r : int) : operand option =
  if pos >= Array.length stream then None
  else
    let blk, idx, i = stream.(pos) in
    match i with
    | Asm.Plfd (d, a) when d = r ->
      (match loc_of_addr a with
       | None -> None
       | Some loc ->
         let direct = Some (Oload (loc, blk, idx)) in
         (match nearest_store stream (pos + 1) loc 8 with
          | Fexact (q, Asm.FR s) ->
            (match trace_freg stream (q + 1) s with
             | Some o -> Some o
             | None -> direct)
          | Fexact _ | Fblocked | Fnone -> direct))
    | Asm.Plfdc (d, c) when d = r ->
      if Float.is_nan c then None else Some (Oconstf c)
    | Asm.Pfmr (d, s) when d = r -> trace_freg stream (pos + 1) s
    | i when List.mem (Asm.FR r) (Asm.defs i) -> None
    | _ -> trace_freg stream (pos + 1) r

(* ---------------------------------------------------------------- *)
(* Branch-edge tests                                                 *)
(* ---------------------------------------------------------------- *)

(* Compare outcome; [Runo] = unordered (NaN operand, floats only). *)
type rel = Rlt | Rgt | Req | Runo

type test = {
  t_edge : int;        (* LP variable index of the branch edge *)
  t_block : int;       (* the branch block *)
  t_left : operand;
  t_right : operand;
  t_float : bool;
  t_rels : rel list;   (* outcomes under which this edge is taken *)
}

let rel_of_bit (b : Asm.crbit) : rel =
  match b with Asm.CRlt -> Rlt | Asm.CRgt -> Rgt | Asm.CReq -> Req

(* Outcomes selecting the taken edge of [Pbc c]. For the fall edge,
   negate the condition. A superset is always sound here — an edge's
   set only ever *excuses* it from cuts. *)
let taken_rels ~(float_ : bool) (c : Asm.branch_cond) : rel list =
  let universe = if float_ then [ Rlt; Rgt; Req; Runo ] else [ Rlt; Rgt; Req ] in
  match c with
  | Asm.BT b -> [ rel_of_bit b ]
  | Asm.BF b -> List.filter (fun r -> r <> rel_of_bit b) universe

let mirror_rels (rels : rel list) : rel list =
  List.map (function Rlt -> Rgt | Rgt -> Rlt | r -> r) rels

(* Tests for the out-edges of branch block [b], provided the block is
   outside all loops, its condition resolves to traced origins, and
   every traced load is itself outside all loops. *)
let tests_of_block (cfg : Cfg.t) (preds : int list array)
    (in_loop : bool array) (b : int) (edge_vars : (Cfg.edge_kind * int) list)
  : test list =
  let instrs = (Cfg.block cfg b).Cfg.b_instrs in
  let len = Array.length instrs in
  if len = 0 || in_loop.(b) then []
  else
    match instrs.(len - 1) with
    | Asm.Pbc (c, _) ->
      let stream = back_stream cfg preds b in
      (* position 0 is the Pbc itself *)
      let resolved =
        match find_compare stream 1 with
        | Some (pos, Asm.Pcmpw (a, b')) ->
          (match trace_ireg stream (pos + 1) a, trace_ireg stream (pos + 1) b' with
           | Some l, Some r -> Some (l, r, false)
           | _ -> None)
        | Some (pos, Asm.Pcmpwi (a, imm)) ->
          (match trace_ireg stream (pos + 1) a with
           | Some l -> Some (l, Oconst imm, false)
           | None -> None)
        | Some (pos, Asm.Pfcmpu (a, b')) ->
          (match trace_freg stream (pos + 1) a, trace_freg stream (pos + 1) b' with
           | Some l, Some r -> Some (l, r, true)
           | _ -> None)
        | _ -> None
      in
      (match resolved with
       | None -> []
       | Some (left, right, float_) ->
         let load_blocks =
           List.filter_map
             (function Oload (_, blk, _) -> Some blk | _ -> None)
             [ left; right ]
         in
         if not (List.for_all (fun blk -> not in_loop.(blk)) load_blocks)
         then []
         else
           List.map
             (fun (kind, j) ->
                let cond =
                  match kind with
                  | Cfg.Etaken -> c
                  | Cfg.Efall -> Asm.negate_cond c
                in
                { t_edge = j;
                  t_block = b;
                  t_left = left;
                  t_right = right;
                  t_float = float_;
                  t_rels = taken_rels ~float_ cond })
             edge_vars)
    | _ -> []

(* ---------------------------------------------------------------- *)
(* Conflict detection                                                *)
(* ---------------------------------------------------------------- *)

(* Operand order normalized (smaller key left; mirroring the outcome
   set swaps lt/gt), so [cmpw a, b] and [cmpw b, a] tests unify. *)
let normalized_pred (t : test) : okey * okey * rel list =
  let kl = okey_of t.t_left and kr = okey_of t.t_right in
  if compare kl kr <= 0 then (kl, kr, List.sort compare t.t_rels)
  else (kr, kl, List.sort compare (mirror_rels t.t_rels))

let disjoint_sets (a : rel list) (b : rel list) : bool =
  not (List.exists (fun x -> List.mem x b) a)

let same_pred_conflict (t1 : test) (t2 : test) : bool =
  t1.t_float = t2.t_float
  &&
  let a1, b1, r1 = normalized_pred t1 and a2, b2, r2 = normalized_pred t2 in
  a1 = a2 && b1 = b2 && disjoint_sets r1 r2

(* Intervals with explicit strictness, so int and float endpoints need
   no +-1 arithmetic (and no overflow cases). *)
type 'a interval = {
  iv_lo : ('a * bool) option;  (* bool: strict *)
  iv_hi : ('a * bool) option;
}

let interval_of_rels (rels : rel list) (c : 'a) : 'a interval option =
  match List.sort compare rels with
  | [ Rlt ] -> Some { iv_lo = None; iv_hi = Some (c, true) }
  | [ Rgt ] -> Some { iv_lo = Some (c, true); iv_hi = None }
  | [ Req ] -> Some { iv_lo = Some (c, false); iv_hi = Some (c, false) }
  | [ Rlt; Req ] -> Some { iv_lo = None; iv_hi = Some (c, false) }
  | [ Rgt; Req ] -> Some { iv_lo = Some (c, false); iv_hi = None }
  | _ -> None

let intervals_disjoint (i1 : 'a interval) (i2 : 'a interval) : bool =
  let separated hi lo =
    match hi, lo with
    | Some (h, hs), Some (l, ls) ->
      compare h l < 0 || (compare h l = 0 && (hs || ls))
    | _ -> false
  in
  separated i1.iv_hi i2.iv_lo || separated i2.iv_hi i1.iv_lo

(* View a test as [location REL constant] (variable on the left). *)
let int_interval (t : test) : (location * int32 interval) option =
  if t.t_float then None
  else
    match t.t_left, t.t_right with
    | Oload (l, _, _), Oconst c ->
      Option.map (fun iv -> (l, iv)) (interval_of_rels t.t_rels c)
    | Oconst c, Oload (l, _, _) ->
      Option.map (fun iv -> (l, iv)) (interval_of_rels (mirror_rels t.t_rels) c)
    | _ -> None

let float_interval (t : test) : (location * float interval) option =
  if (not t.t_float) || List.mem Runo t.t_rels then None
  else
    match t.t_left, t.t_right with
    | Oload (l, _, _), Oconstf c ->
      Option.map (fun iv -> (l, iv)) (interval_of_rels t.t_rels c)
    | Oconstf c, Oload (l, _, _) ->
      Option.map (fun iv -> (l, iv)) (interval_of_rels (mirror_rels t.t_rels) c)
    | _ -> None

let interval_conflict (t1 : test) (t2 : test) : bool =
  (match int_interval t1, int_interval t2 with
   | Some (l1, i1), Some (l2, i2) -> l1 = l2 && intervals_disjoint i1 i2
   | _ -> false)
  ||
  (match float_interval t1, float_interval t2 with
   | Some (l1, i1), Some (l2, i2) -> l1 = l2 && intervals_disjoint i1 i2
   | _ -> false)

(* ---------------------------------------------------------------- *)
(* Location stability                                                *)
(* ---------------------------------------------------------------- *)

type store = {
  s_blk : int;
  s_idx : int;
  s_loc : location option;  (* None: indirect store, wildcard *)
  s_len : int;
}

let collect_stores (cfg : Cfg.t) : store list =
  let acc = ref [] in
  Array.iter
    (fun (blk : Cfg.block) ->
       Array.iteri
         (fun idx i ->
            match i with
            | Asm.Pstw (_, a) ->
              acc :=
                { s_blk = blk.Cfg.b_id; s_idx = idx;
                  s_loc = loc_of_addr a; s_len = 4 }
                :: !acc
            | Asm.Pstfd (_, a) ->
              acc :=
                { s_blk = blk.Cfg.b_id; s_idx = idx;
                  s_loc = loc_of_addr a; s_len = 8 }
                :: !acc
            | _ -> ())
         blk.Cfg.b_instrs)
    cfg.Cfg.c_blocks;
  !acc

(* A location is stable for a set of read sites when every read is
   guaranteed to observe one same value: no wildcard stores anywhere,
   and at most one overlapping store, executing at most once (outside
   loops) and before every read (dominating its block, or preceding it
   within the same block). *)
let stable_for (stores : store list) ~(wild : bool) (dom : Dom.t)
    (in_loop : bool array) (loc : location) (len : int)
    (reads : (int * int) list) : bool =
  (not wild)
  &&
  match
    List.filter
      (fun s ->
         match s.s_loc with
         | Some sl -> overlaps sl s.s_len loc len
         | None -> false)
      stores
  with
  | [] -> true
  | [ s ] ->
    (not in_loop.(s.s_blk))
    && List.for_all
         (fun (rb, ri) ->
            if s.s_blk = rb then s.s_idx < ri
            else Dom.dominates dom s.s_blk rb)
         reads
  | _ -> false

let pair_stable (stores : store list) ~(wild : bool) (dom : Dom.t)
    (in_loop : bool array) (t1 : test) (t2 : test) : bool =
  let loads t =
    let len = if t.t_float then 8 else 4 in
    List.filter_map
      (function Oload (l, b, i) -> Some ((l, len), (b, i)) | _ -> None)
      [ t.t_left; t.t_right ]
  in
  let all = loads t1 @ loads t2 in
  let keys = List.sort_uniq compare (List.map fst all) in
  List.for_all
    (fun (loc, len) ->
       let reads =
         List.filter_map
           (fun (k, r) -> if k = (loc, len) then Some r else None)
           all
       in
       stable_for stores ~wild dom in_loop loc len reads)
    keys

(* ---------------------------------------------------------------- *)
(* Cut derivation                                                    *)
(* ---------------------------------------------------------------- *)

let derive_cuts (cfg : Cfg.t) (dom : Dom.t) (loops : Loops.t)
    (sys : Ipet.system) : Lp.constr list =
  let preds = Cfg.predecessors cfg in
  let nb = Cfg.num_blocks cfg in
  let in_loop = Array.make nb false in
  List.iter
    (fun l -> List.iter (fun b -> in_loop.(b) <- true) l.Loops.l_body)
    loops.Loops.loops;
  let stores = collect_stores cfg in
  let wild = List.exists (fun s -> s.s_loc = None) stores in
  (* real (non-virtual) out-edge variables per block *)
  let edge_vars = Array.make nb [] in
  Array.iteri
    (fun j (e : Ipet.edge) ->
       match e.Ipet.e_dst with
       | Some _ ->
         edge_vars.(e.Ipet.e_src) <-
           (e.Ipet.e_kind, j) :: edge_vars.(e.Ipet.e_src)
       | None -> ())
    sys.Ipet.sys_edges;
  let tests =
    List.init nb (fun b -> tests_of_block cfg preds in_loop b edge_vars.(b))
    |> List.concat |> Array.of_list
  in
  let seen = Hashtbl.create 16 in
  let cuts = ref [] in
  for i = 0 to Array.length tests - 1 do
    for k = i + 1 to Array.length tests - 1 do
      let t1 = tests.(i) and t2 = tests.(k) in
      if
        t1.t_block <> t2.t_block
        && (same_pred_conflict t1 t2 || interval_conflict t1 t2)
        && pair_stable stores ~wild dom in_loop t1 t2
      then begin
        let j1 = min t1.t_edge t2.t_edge and j2 = max t1.t_edge t2.t_edge in
        if not (Hashtbl.mem seen (j1, j2)) then begin
          Hashtbl.add seen (j1, j2) ();
          cuts :=
            { Lp.cs_coeffs = [ (j1, Lp.Q.one); (j2, Lp.Q.one) ];
              cs_rel = Lp.Le;
              cs_rhs = Lp.Q.one }
            :: !cuts
        end
      end
    done
  done;
  !cuts

(* ---------------------------------------------------------------- *)
(* The OMT loop                                                      *)
(* ---------------------------------------------------------------- *)

let compute ?(fuel = Fuel.default) (cfg : Cfg.t) (dom : Dom.t)
    (pl : Pipeline.t) (cache : Cacheanalysis.t) (loops : Loops.t)
    (bounds : Boundanalysis.loop_bound list) : result =
  let sys = Ipet.build_system cfg pl loops bounds in
  (* base bound: identical solve to the pure IPET engine *)
  let base = Ipet.solve_system ~fuel sys in
  let base_flow = base.Lp.is_objective_bound in
  let first_miss = cache.Cacheanalysis.ca_first_miss in
  let cuts = derive_cuts cfg dom loops sys in
  let ncuts = List.length cuts in
  if ncuts = 0 then
    (* no semantic information: OMT degenerates to IPET exactly *)
    { smt_wcet = base_flow + first_miss;
      smt_ipet_wcet = base_flow + first_miss;
      smt_exact = base.Lp.is_exact;
      smt_flow_cycles = base_flow;
      smt_cuts = 0;
      smt_queries = 0 }
  else begin
    let budget = ref fuel.Fuel.fl_omt in
    let queries = ref 0 in
    let charge () =
      Fuel.tick ();
      if !budget <= 0 then Fuel.exhaust "omt";
      decr budget;
      incr queries
    in
    let n = Array.length sys.Ipet.sys_edges in
    let cost_coeffs =
      Array.to_list (Array.mapi (fun j q -> (j, q)) sys.Ipet.sys_objective)
      |> List.filter (fun (_, q) -> not (Lp.Q.is_zero q))
    in
    let zero_obj = Array.make n Lp.Q.zero in
    (* does the cut system admit a flow of cost >= t? (LP relaxation —
       a superset of the integral flows, so "infeasible" is a proof) *)
    let feasible (t : int) : bool =
      charge ();
      let floor_c =
        { Lp.cs_coeffs = cost_coeffs; cs_rel = Lp.Ge; cs_rhs = Lp.Q.of_int t }
      in
      match
        Lp.solve ~fuel:fuel.Fuel.fl_simplex
          { Lp.pb_nvars = n;
            pb_objective = zero_obj;
            pb_constraints = floor_c :: (cuts @ sys.Ipet.sys_constraints) }
      with
      | _ -> true
      | exception Lp.Infeasible -> false
      | exception Lp.Overflow ->
        raise (Ipet.Analysis_failed "LP arithmetic overflow")
    in
    (* binary search for the largest feasible budget in [0, base_flow];
       cost >= 0 is trivially feasible, and clamping to the base bound
       makes omt <= ipet structural *)
    let lo = ref 0 and hi = ref base_flow in
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) + 1) / 2 in
      if feasible mid then lo := mid else hi := mid - 1
    done;
    (* integral sharpening: branch & bound over the cut system can beat
       the relaxation floor; it is one more fueled solver call *)
    charge ();
    let cut_int = Ipet.solve_system ~fuel ~extra:cuts sys in
    let flow = min !lo (min base_flow cut_int.Lp.is_objective_bound) in
    { smt_wcet = flow + first_miss;
      smt_ipet_wcet = base_flow + first_miss;
      smt_exact = base.Lp.is_exact && cut_int.Lp.is_exact;
      smt_flow_cycles = flow;
      smt_cuts = ncuts;
      smt_queries = !queries }
  end
