(* Content-addressed cache of per-function WCET analysis.

   Re-analyzing a function whose machine code and memory placement are
   unchanged is pure waste: every analysis phase ([Cfg.build] through
   [Ipet.compute]) is a function of (instruction stream, entry address,
   addresses/sizes of the data symbols the code touches). [bench
   --compare] and the ablation tables recompute exactly that, thousands
   of times, because flight-program workloads instantiate the same
   handful of SCADE symbol bodies over and over.

   The cache is *content-addressed*: the key is an MD5 digest of a
   canonical serialization of everything the analysis consumes —

     - the instruction list, with analysis-irrelevant identifiers
       normalized away: volatile MMIO signal names (the timing model
       charges a fixed per-kind cost and the value analysis returns
       top regardless of the name) — so structurally identical nodes
       hit each other even though the ACG prefixes their signal names;
     - the function's entry address (block addresses, hence the
       instruction-cache geometry, derive from it);
     - the layout slice actually visible to the analysis: for every
       global/SDA symbol named by the code its (name, address, size),
       for every float-pool constant its (bits, pool address), and the
       stack top.

   The function *name* is deliberately not part of the key: it only
   ever reaches the output ([Report.rp_function], annotation-entry
   function fields), so [Driver] re-stamps it on a hit. Annotation
   *text* stays in the key — loop-bound annotations drive the bound
   analysis.

   Domain safety: the table is sharded by key digest with one [Mutex]
   per shard, so [Fcstack.Par] workers share one cache without
   serializing on a single lock. This is the repository's only shared
   mutable state in a library (the PR-2 audit rule): it is an explicit
   record threaded through [Driver.analyze ?cache] — never a module
   global — and a hit returns the same report a miss would compute, so
   the determinism contract survives by construction (and is
   qcheck-tested).

   A digest collision must not smuggle a wrong bound into a
   certification artifact, however unlikely: each entry stores the full
   key payload and a lookup whose payload differs is treated as a miss
   (the entry is then overwritten by the new analysis). *)

module Asm = Target.Asm

type value = {
  cv_report : Report.t;
  cv_annots : Annotfile.entry list;
}

type key = {
  k_digest : string;   (* MD5 of [k_payload]: shard + table key *)
  k_payload : string;  (* canonical serialization: collision guard *)
}

let digest (k : key) : string = k.k_digest

(* ---- key construction ---- *)

(* Volatile signal names are invisible to the analysis (see above);
   blanking them makes structurally identical nodes share an entry. *)
let normalize_instr (i : Asm.instr) : Asm.instr =
  match i with
  | Asm.Pacqi (r, _) -> Asm.Pacqi (r, "")
  | Asm.Pacqf (f, _) -> Asm.Pacqf (f, "")
  | Asm.Pouti (_, r) -> Asm.Pouti ("", r)
  | Asm.Poutf (_, f) -> Asm.Poutf ("", f)
  | _ -> i

let key ?(fuel = Fuel.default) ?(spec = "") ?(engine = Report.Ipet)
    (lay : Target.Layout.t) ~(base : int) (f : Asm.func) : key =
  (* data symbols and pool constants the code can name, in first-use
     order (deterministic for a given instruction stream) *)
  let syms = ref [] and seen_syms = Hashtbl.create 8 in
  let consts = ref [] and seen_consts = Hashtbl.create 8 in
  let sym (s : string) : unit =
    if not (Hashtbl.mem seen_syms s) then begin
      Hashtbl.add seen_syms s ();
      syms := s :: !syms
    end
  in
  let const (c : float) : unit =
    let bits = Int64.bits_of_float c in
    if not (Hashtbl.mem seen_consts bits) then begin
      Hashtbl.add seen_consts bits ();
      consts := bits :: !consts
    end
  in
  let addr (a : Asm.address) : unit =
    match a with
    | Asm.Aglob (s, _) | Asm.Asda (s, _) -> sym s
    | Asm.Aind _ | Asm.Aindx _ -> ()
  in
  List.iter
    (fun i ->
       match i with
       | Asm.Plwz (_, a) | Asm.Pstw (_, a) | Asm.Plfd (_, a)
       | Asm.Pstfd (_, a) -> addr a
       | Asm.Pla (_, s) -> sym s
       | Asm.Plfdc (_, c) -> const c
       | _ -> ())
    f.Asm.fn_code;
  let slice =
    ( List.rev_map
        (fun s ->
           ( s,
             Hashtbl.find_opt lay.Target.Layout.lay_sym s,
             Hashtbl.find_opt lay.Target.Layout.lay_sym_size s ))
        !syms,
      List.rev_map
        (fun bits -> (bits, Hashtbl.find_opt lay.Target.Layout.lay_consts bits))
        !consts,
      lay.Target.Layout.lay_stack_top )
  in
  (* the fuel budgets widen the key (the ROADMAP blind-spot rule): a
     budget change can flip an analysis between success and refusal or
     between an exact and a relaxation bound, so analyses under
     different budgets must never share an entry. The toolchain
     pipeline [spec] widens it the same way: two optimization
     selections must never share an entry, even on the rare node where
     they happen to emit identical code today. So does the path
     engine: IPET and OMT bounds differ by design, so [--engine ipet]
     and [--engine omt] runs must never serve each other's entries. *)
  let payload =
    Marshal.to_string
      ( List.map normalize_instr f.Asm.fn_code,
        base,
        slice,
        ( fuel.Fuel.fl_widen,
          fuel.Fuel.fl_simplex,
          fuel.Fuel.fl_bb_nodes,
          fuel.Fuel.fl_omt ),
        spec,
        Report.engine_name engine )
      []
  in
  { k_digest = Digest.string payload; k_payload = payload }

(* ---- the sharded table ---- *)

type shard = {
  sh_mutex : Mutex.t;
  sh_table : (string, string * value) Hashtbl.t;  (* digest -> payload, value *)
  mutable sh_hits : int;
  mutable sh_disk_hits : int;
  mutable sh_misses : int;
  mutable sh_writes : int;
}

type t = {
  shards : shard array;
  (* the persistent half ([Store]): probed on memory misses, written
     through on [add]. [None] for a memory-only cache, or when the
     directory turned out not to be writable (silent degradation). *)
  store : Store.t option;
  (* phase-run counters (filled by [Driver] on misses), one mutex: six
     increments per miss are negligible next to the analysis itself *)
  ph_mutex : Mutex.t;
  mutable ph_decode : int;
  mutable ph_value : int;
  mutable ph_bounds : int;
  mutable ph_cache : int;
  mutable ph_pipeline : int;
  mutable ph_ipet : int;
  mutable ph_omt : int;
}

let create ?(shards = 16) ?dir ?gc_mb () : t =
  let shards = max 1 shards in
  { shards =
      Array.init shards (fun _ ->
          { sh_mutex = Mutex.create ();
            sh_table = Hashtbl.create 64;
            sh_hits = 0;
            sh_disk_hits = 0;
            sh_misses = 0;
            sh_writes = 0 });
    store = Option.bind dir (fun dir -> Store.create ?gc_mb ~dir ());
    ph_mutex = Mutex.create ();
    ph_decode = 0;
    ph_value = 0;
    ph_bounds = 0;
    ph_cache = 0;
    ph_pipeline = 0;
    ph_ipet = 0;
    ph_omt = 0 }

let store_dir (t : t) : string option = Option.map Store.dir t.store

let gc ?max_bytes (t : t) : unit =
  Option.iter (Store.gc ?max_bytes) t.store

let shard_of (t : t) (k : key) : shard =
  (* first two digest bytes: uniform for MD5, independent of shard count *)
  let h = Char.code k.k_digest.[0] lor (Char.code k.k_digest.[1] lsl 8) in
  t.shards.(h mod Array.length t.shards)

let locked (m : Mutex.t) (f : unit -> 'a) : 'a =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Probe the persistent store on a memory miss. Runs under the shard
   lock: other shards proceed, and a verified disk entry is promoted
   into the memory table exactly once. A load failure of any kind
   (absent, truncated, bit-flipped, version-mismatched entry) is
   [None] by Store's contract — never an exception. *)
let disk_probe (t : t) (sh : shard) (k : key) : value option =
  match t.store with
  | None -> None
  | Some st ->
    (match Store.load st ~digest:k.k_digest ~payload:k.k_payload with
     | Some (report, annots) ->
       let v = { cv_report = report; cv_annots = annots } in
       Hashtbl.replace sh.sh_table k.k_digest (k.k_payload, v);
       Some v
     | None -> None)

let find (t : t) (k : key) : value option =
  let sh = shard_of t k in
  locked sh.sh_mutex (fun () ->
      match Hashtbl.find_opt sh.sh_table k.k_digest with
      | Some (payload, v) when String.equal payload k.k_payload ->
        sh.sh_hits <- sh.sh_hits + 1;
        Some v
      | Some _ (* digest collision: never serve the other entry *) | None ->
        (match disk_probe t sh k with
         | Some v ->
           sh.sh_disk_hits <- sh.sh_disk_hits + 1;
           Some v
         | None ->
           sh.sh_misses <- sh.sh_misses + 1;
           None))

(* Lookup without touching the hit/miss counters: for secondary
   consumers (annotation-file assembly) whose lookups would otherwise
   distort the analysis accounting. *)
let peek (t : t) (k : key) : value option =
  let sh = shard_of t k in
  locked sh.sh_mutex (fun () ->
      match Hashtbl.find_opt sh.sh_table k.k_digest with
      | Some (payload, v) when String.equal payload k.k_payload -> Some v
      | Some _ | None -> disk_probe t sh k)

let add (t : t) (k : key) (v : value) : unit =
  let sh = shard_of t k in
  locked sh.sh_mutex (fun () ->
      Hashtbl.replace sh.sh_table k.k_digest (k.k_payload, v);
      match t.store with
      | None -> ()
      | Some st ->
        if
          Store.save st ~digest:k.k_digest ~payload:k.k_payload
            (v.cv_report, v.cv_annots)
        then sh.sh_writes <- sh.sh_writes + 1)

let length (t : t) : int =
  Array.fold_left
    (fun acc sh -> acc + locked sh.sh_mutex (fun () -> Hashtbl.length sh.sh_table))
    0 t.shards

(* ---- phase accounting ---- *)

type phase = Pdecode | Pvalue | Pbounds | Pcache | Ppipeline | Pipet | Pomt

let count_phase (t : t option) (p : phase) : unit =
  match t with
  | None -> ()
  | Some t ->
    locked t.ph_mutex (fun () ->
        match p with
        | Pdecode -> t.ph_decode <- t.ph_decode + 1
        | Pvalue -> t.ph_value <- t.ph_value + 1
        | Pbounds -> t.ph_bounds <- t.ph_bounds + 1
        | Pcache -> t.ph_cache <- t.ph_cache + 1
        | Ppipeline -> t.ph_pipeline <- t.ph_pipeline + 1
        | Pipet -> t.ph_ipet <- t.ph_ipet + 1
        | Pomt -> t.ph_omt <- t.ph_omt + 1)

let stats (t : t) : Report.analysis_stats =
  let hits = ref 0 and disk_hits = ref 0 and misses = ref 0 in
  let writes = ref 0 and entries = ref 0 in
  Array.iter
    (fun sh ->
       locked sh.sh_mutex (fun () ->
           hits := !hits + sh.sh_hits;
           disk_hits := !disk_hits + sh.sh_disk_hits;
           misses := !misses + sh.sh_misses;
           writes := !writes + sh.sh_writes;
           entries := !entries + Hashtbl.length sh.sh_table))
    t.shards;
  locked t.ph_mutex (fun () ->
      { Report.st_hits = !hits;
        st_disk_hits = !disk_hits;
        st_misses = !misses;
        st_writes = !writes;
        st_entries = !entries;
        st_decode = t.ph_decode;
        st_value = t.ph_value;
        st_bounds = t.ph_bounds;
        st_cache = t.ph_cache;
        st_pipeline = t.ph_pipeline;
        st_ipet = t.ph_ipet;
        st_omt = t.ph_omt })
