(** Fuel budgets for every iterative analysis in [lib/wcet]: no
    fixpoint or solver loop may run unboundedly. Exhaustion raises
    {!Exhausted}, which {!Driver} converts into an analysis *refusal*
    ([Driver.Error] — "analysis diverged"), never a wrong bound and
    never a hang. Defaults reproduce the previously hard-coded
    constants, so default-fuel analyses are bit-identical to the
    pre-fuel analyzer.

    The triple is part of the {!Memo} content key: a budget change can
    flip success into refusal (or exact into relaxation bound), so
    analyses under different budgets never share a cache entry. *)

type t = {
  fl_widen : int;
      (** worklist iterations of the value-analysis / must-cache
          fixpoints (one per processed block) *)
  fl_simplex : int;  (** simplex pivots per [Lp.solve] phase *)
  fl_bb_nodes : int;
      (** branch & bound nodes in [Lp.solve_integer]; exhaustion here
          is not a refusal — the LP relaxation bound is still sound
          ([is_exact = false]) *)
  fl_omt : int;
      (** OMT bound-search iterations in {!Smt.compute} (one per LP
          feasibility query); exhaustion {e is} a refusal — an
          unfinished search has established no bound *)
}

val default : t
(** [{ fl_widen = 1_000_000; fl_simplex = 20_000; fl_bb_nodes = 200;
       fl_omt = 64 }]. *)

val starved : t
(** All budgets zero: every guarded loop refuses immediately. The chaos
    harness injects this to prove exhaustion is contained. *)

exception Exhausted of string
(** [Exhausted what]: iteration site [what] ran out of budget. *)

val exhaust : string -> 'a
(** [exhaust what] raises [Exhausted what]. *)

(** {1 Cooperative cancellation}

    The fuel-guarded loops double as cancellation points: a caller
    (the compilation service, enforcing a request deadline) installs a
    check with {!with_deadline}, and every guarded loop polls it via
    {!tick}. {!Expired} is deliberately distinct from {!Exhausted}:
    exhaustion is a property of the request ("this analysis diverges",
    a cacheable refusal), expiry is a property of the moment ("this
    caller stopped waiting") — it must escape the driver's exhaustion
    handler, skip every cache, and surface as a deadline refusal. *)

exception Expired
(** The installed deadline check returned [true] at a cancellation
    point. *)

val with_deadline : (unit -> bool) -> (unit -> 'a) -> 'a
(** [with_deadline check f] runs [f] with [check] installed in this
    domain (restoring the previous check on exit, exceptional or not).
    Domain-local: worker domains and concurrent sessions are
    unaffected. *)

val tick : unit -> unit
(** Poll the installed check; raises {!Expired} when it fires. No-op
    (one ref read) when no deadline is installed. *)
