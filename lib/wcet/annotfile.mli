(** The annotation file of paper section 3.4: extracted from the
    annotation comments of a compiled program (function-relative
    program counter + text with substituted locations), rendered to and
    parsed from a small textual format. *)

type entry = {
  an_function : string;
  an_offset : int;   (** bytes from function start *)
  an_text : string;  (** with substituted locations *)
}

val entry_equal : entry -> entry -> bool
val extract_func : Target.Asm.func -> entry list
val extract : Target.Asm.program -> entry list
val render : entry list -> string

exception Parse_error of string

val parse : string -> entry list
(** @raise Parse_error on malformed lines. *)

val write_file : string -> Target.Asm.program -> unit
