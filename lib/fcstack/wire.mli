(** Length-prefixed, versioned wire framing for the compilation
    service ({!Service}). One frame is

    {v fcd1 <kind> <len>\n<len bytes of payload> v}

    — a text header (cram tests author frames with [printf]; captures
    stay human-readable) followed by an exact byte count, so payloads
    carry arbitrary bytes with no in-band escaping at the frame layer.
    A reader that sees any version token but ["fcd1"] refuses the
    stream: protocol divergence is a refusal, never a misparse.

    Structured payloads above the frame layer are single-line
    [k=v ...] records with percent-encoded values ({!enc}/{!dec});
    encoding is deterministic, so encoded equality is value equality
    and the toolchain's byte-identity contracts extend to the wire. *)

val protocol_version : string
(** ["fcd1"]. *)

val max_frame_len : int
(** Frames longer than this are a protocol error ([Bad]), not an
    allocation attempt. *)

val enc : string -> string
(** Percent-encode the k=v metacharacters (space, ['='], ['%'],
    newlines, [','], [':']) and non-printable bytes; deterministic. *)

val dec : string -> string
(** Inverse of {!enc}. Permissive: a ['%'] not followed by two hex
    digits decodes as itself, so decoding never fails. *)

val kv : (string * string) list -> string
(** One-line record; keys are trusted identifiers, values go through
    {!enc}. *)

val parse_kv : string -> (string * string) list
(** Parse a {!kv} line (values decoded). *)

val kv_find : (string * string) list -> string -> (string, string) Result.t
val kv_int : (string * string) list -> string -> (int, string) Result.t

type frame =
  | Frame of string * string  (** kind, payload *)
  | Eof                       (** clean end of stream before a header *)
  | Bad of string             (** protocol error: refuse the stream *)

val write_frame : out_channel -> kind:string -> string -> unit
(** Write one frame (caller flushes). *)

val read_frame : in_channel -> frame
(** Read one frame; blocks until a full frame, [Eof] or an error. *)

(** {1 fd-based reader}

    The channel path above serves [--stdio] and in-process tests; the
    server and client read sockets through this buffered reader, which
    adds what resilience needs: a per-read timeout (a slow-loris peer
    poisons its own stream as [Bad] instead of parking the daemon),
    EINTR-safe read/write/select loops (a signal storm never surfaces
    as a spurious transport failure), and an auxiliary readiness hook
    so the server can shed new connections while blocked mid-read. *)

type fd_reader

val fd_reader : Unix.file_descr -> fd_reader
(** Wrap a blocking stream fd. The reader owns buffering on the fd;
    do not mix with channel reads on the same descriptor. *)

val set_read_timeout : fd_reader -> float option -> unit
(** Seconds each blocking wait may last ([None] = unbounded). The
    budget is per read call, absolute across EINTR retries and aux
    wake-ups. *)

val set_aux : fd_reader -> (Unix.file_descr * (unit -> unit)) option -> unit
(** Auxiliary fd watched alongside the data fd during blocking waits;
    the callback runs whenever it becomes readable (the server passes
    its listen socket and an accept-drain, so overload shedding is
    never blocked behind one slow peer). The callback must leave the
    fd non-readable (drain it) or the wait will spin. *)

val read_frame_fd : ?idle_timeout:bool -> fd_reader -> frame
(** Read one frame. Without [idle_timeout] (default) the wait for the
    first header byte is unbounded — an idle connection is legal; the
    timeout starts once the peer commits to a frame. With
    [idle_timeout:true] (clients) the first wait is bounded too. A
    timeout is [Bad "read timed out"]: stream poison, like any other
    protocol error. *)

val write_frame_fd : Unix.file_descr -> kind:string -> string -> unit
(** Write one frame with a full-write, EINTR-safe loop. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)
