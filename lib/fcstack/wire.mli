(** Length-prefixed, versioned wire framing for the compilation
    service ({!Service}). One frame is

    {v fcd1 <kind> <len>\n<len bytes of payload> v}

    — a text header (cram tests author frames with [printf]; captures
    stay human-readable) followed by an exact byte count, so payloads
    carry arbitrary bytes with no in-band escaping at the frame layer.
    A reader that sees any version token but ["fcd1"] refuses the
    stream: protocol divergence is a refusal, never a misparse.

    Structured payloads above the frame layer are single-line
    [k=v ...] records with percent-encoded values ({!enc}/{!dec});
    encoding is deterministic, so encoded equality is value equality
    and the toolchain's byte-identity contracts extend to the wire. *)

val protocol_version : string
(** ["fcd1"]. *)

val max_frame_len : int
(** Frames longer than this are a protocol error ([Bad]), not an
    allocation attempt. *)

val enc : string -> string
(** Percent-encode the k=v metacharacters (space, ['='], ['%'],
    newlines, [','], [':']) and non-printable bytes; deterministic. *)

val dec : string -> string
(** Inverse of {!enc}. Permissive: a ['%'] not followed by two hex
    digits decodes as itself, so decoding never fails. *)

val kv : (string * string) list -> string
(** One-line record; keys are trusted identifiers, values go through
    {!enc}. *)

val parse_kv : string -> (string * string) list
(** Parse a {!kv} line (values decoded). *)

val kv_find : (string * string) list -> string -> (string, string) Result.t
val kv_int : (string * string) list -> string -> (int, string) Result.t

type frame =
  | Frame of string * string  (** kind, payload *)
  | Eof                       (** clean end of stream before a header *)
  | Bad of string             (** protocol error: refuse the stream *)

val write_frame : out_channel -> kind:string -> string -> unit
(** Write one frame (caller flushes). *)

val read_frame : in_channel -> frame
(** Read one frame; blocks until a full frame, [Eof] or an error. *)
