(** Deterministic chaos harness: seeded fault injection against the
    per-node containment contract.

    The harness runs a fault-free reference, injects a seeded set of
    per-node faults (corrupted source, analyzer refusal, starved
    analysis fuel), re-runs the chain under a matrix of
    (jobs x cache) legs plus a truncated-persistent-store leg, and
    checks that: survivors are byte-identical to the reference, the
    diagnostics name exactly the victims at the expected stages, the
    exit code classifies the run, and store corruption causes zero
    failures. [test/test_chaos.ml] and [bench --chaos] both drive
    {!run}. *)

type fault =
  | Fcorrupt_source  (** undeclared-variable write: fails typecheck *)
  | Frefusal         (** unbounded volatile-driven loop: analyzer refuses *)
  | Ffuel            (** starved analysis fuel: "analysis diverged" *)

val fault_name : fault -> string
val expected_stage : fault -> Diag.stage

type plan = (int * fault) list

val make_plan : seed:int -> nodes:int -> victims:int -> plan
(** Victim indices and faults, a pure function of [seed]. *)

val apply_fault : fault -> Minic.Ast.program -> Minic.Ast.program
(** Source-level injection ({!Ffuel} leaves the source untouched — it
    is injected through the per-node config instead). *)

val render_result : Par.node_result -> string
(** Canonical byte rendering of one node's chain output; the
    containment contract is string equality of these. *)

type report = {
  ch_nodes : int;
  ch_victims : (string * fault) list;
  ch_legs : string list;
  ch_problems : string list;  (** empty = every containment check held *)
}

val run :
  ?seed:int -> ?nodes:int -> ?victims:int -> ?engine:Wcet.Report.engine ->
  ?fcd_exe:string -> unit -> report
(** Run the whole matrix (defaults: seed 20260806, 14 nodes, 3
    victims, engine [Ipet]). Deterministic for a given seed. [engine]
    applies to the reference and to every leg, so containment is
    exercised per engine (survivor byte-identity is well-defined
    within one engine).

    Beyond the (jobs x cache) legs, the matrix always runs two store
    legs: [truncated-store] (read corruption is a silent miss) and
    [enospc-store] (entry WRITE failures are a silent miss — the run
    is byte-identical to an uncached one, zero failures).

    [fcd_exe] adds the server legs against a real fcd child:
    - [fcd-kill-restart]: SIGKILL under two seeded requests
      mid-stream; the in-flight request surfaces as a transport
      failure (never a wrong answer), the retry against a restarted
      daemon on the same socket and disk store succeeds, and every
      final response is byte-identical to a cold in-process batch run;
    - [oversized-frame]: a hostile length prefix is refused before
      allocation and poisons its stream; a torn frame and well-framed
      garbage each cost only themselves;
    - [slow-loris]: a sender that stalls mid-frame is poisoned by the
      daemon's read timeout, never parks it;
    - [sigstop-deadline]: a SIGSTOP'd daemon surfaces as a client
      transport failure (deadline fires); after SIGCONT the retry
      policy succeeds byte-identically;
    - [kill-under-load]: past the pending budget a request is shed
      with a fast busy frame and retried to success once the load
      drains; a SIGKILL mid-stream is retried through a restart.

    In every server leg the daemon must exit 0 at the end: no
    contained connection failure may leak into its exit status. *)

val print_report : Format.formatter -> report -> unit
