(* Reproduction drivers for every quantitative artifact of the paper's
   evaluation (section 3.3): Listings 1/2, Table 1, Figure 2, the
   annotation flow of section 3.4, plus the ablation studies DESIGN.md
   adds. Each driver returns structured data and offers a printer that
   emits the same rows/series the paper reports. *)

type per_compiler = {
  pc_compiler : Chain.compiler;
  pc_wcet : int;
  pc_size : int;
  pc_reads : int;   (* executed data-cache read accesses, one cycle *)
  pc_writes : int;
}

type node_result = {
  nr_name : string;
  nr_per : per_compiler list;
}

type workload_results = {
  wr_nodes : node_result list;   (* successfully measured nodes *)
  wr_diags : Diag.t list;        (* one per failed node, input order *)
  wr_pass_stats : Vcomp.Pass.pass_stats list;
      (* vcomp middle-end stats aggregated over the nodes, with wall
         times zeroed: the counts are deterministic (same passes, same
         sources), so sequential and parallel runs stay comparable by
         structural equality *)
}

let find_pc (nr : node_result) (c : Chain.compiler) : per_compiler =
  List.find (fun pc -> pc.pc_compiler = c) nr.nr_per

(* Per-node containment for the measurement drivers: a failing node
   becomes a diagnostic and is dropped from the tables (the survivors'
   rows are byte-identical to a run without the faulty node); under
   [config.fail_fast] the exception escapes instead and Par aborts the
   run on the smallest-indexed failure. The fallback [stage] is
   overridden by recognizable exceptions ([Diag.of_exn]): an analyzer
   refusal surfaces as Wcet, a simulator fuel/runtime error as Sim. *)
let contain ~(config : Toolchain.config) ~(node : string) (f : unit -> 'a) :
  ('a, Diag.t) Result.t =
  if config.Toolchain.fail_fast then Ok (f ())
  else Diag.capture ~node ~stage:Diag.Compile f

(* The one workload-traversal point of every measurement driver: apply
   [f] to each generated (node, source) pair of the [nodes]-node
   workload, results merged in node order. The batch shape materializes
   the whole program up front and fans out with [Par.map_list]; under
   [config.stream] the workload is instead pulled shard by shard
   through [Par.run_stream] — generation happens inside the producer,
   at most [jobs + lookahead] shards stay resident, and the result list
   is identical element for element, so every table and JSON printed
   from it is byte-identical across the two shapes. *)
let map_workload ~(config : Toolchain.config) ~(nodes : int) ~(seed : int)
    (f : Scade.Symbol.node * Minic.Ast.program -> 'a) : 'a list =
  match config.Toolchain.stream with
  | None ->
    Par.map_list ~jobs:config.Toolchain.jobs f
      (Scade.Workload.flight_program ~nodes ~seed)
  | Some s ->
    let plan =
      Scade.Workload.shard_plan ~shard_size:s.Toolchain.so_shard_size ~nodes
        ~seed ()
    in
    let producer k =
      if k >= Scade.Workload.shard_count plan then None
      else
        Some
          (Array.map
             (fun pair () -> f pair)
             (Scade.Workload.generate_shard plan k))
    in
    List.rev
      (Par.run_stream ~jobs:config.Toolchain.jobs
         ~lookahead:s.Toolchain.so_lookahead ~producer
         ~consumer:(fun acc _ v -> v :: acc)
         ~init:[] ())

(* Same traversal, folding instead of listing — the scaling study uses
   this so its resident set excludes even the result list. *)
let fold_workload ~(config : Toolchain.config) ~(nodes : int) ~(seed : int)
    (f : Scade.Symbol.node * Minic.Ast.program -> 'a)
    (consume : 'acc -> 'a -> 'acc) (init : 'acc) : 'acc =
  match config.Toolchain.stream with
  | None ->
    List.fold_left consume init
      (Par.map_list ~jobs:config.Toolchain.jobs f
         (Scade.Workload.flight_program ~nodes ~seed))
  | Some s ->
    let plan =
      Scade.Workload.shard_plan ~shard_size:s.Toolchain.so_shard_size ~nodes
        ~seed ()
    in
    let producer k =
      if k >= Scade.Workload.shard_count plan then None
      else
        Some
          (Array.map
             (fun pair () -> f pair)
             (Scade.Workload.generate_shard plan k))
    in
    Par.run_stream ~jobs:config.Toolchain.jobs
      ~lookahead:s.Toolchain.so_lookahead ~producer
      ~consumer:(fun acc _ v -> consume acc v)
      ~init ()

(* Build and measure the whole synthetic flight program under every
   compiler configuration. Nodes are independent, so the measurement
   fans out over [config.jobs] domains (merged by node index: results
   are identical to the sequential run regardless of scheduling). The
   config's cache shares WCET analyses across nodes *and*
   configurations — the workload instantiates the same symbol bodies
   many times, so most analyses beyond the first few hundred nodes are
   hits; a persistent cache extends the sharing across process runs.
   The config's [compiler] field is ignored: the whole point here is
   measuring all four. *)
let run_workload ?(nodes = 60) ?(seed = 2026) ?(config = Toolchain.default) () :
  workload_results =
  let outcomes =
    map_workload ~config ~nodes ~seed
      (fun (node, src) ->
         contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
             let pass_stats = ref [] in
             let per =
               List.map
                 (fun c ->
                    let b =
                      Chain.build ~passes:config.Toolchain.passes c src
                    in
                    if b.Chain.b_pass_stats <> [] then
                      pass_stats := b.Chain.b_pass_stats;
                    let report = Chain.wcet ~config b in
                    let sim =
                      Chain.simulate ?fuel:config.Toolchain.sim_fuel b
                        (Minic.Interp.seeded_world ~seed:17 ())
                    in
                    let stats = sim.Target.Sim.rr_stats in
                    { pc_compiler = c;
                      pc_wcet = report.Wcet.Report.rp_wcet;
                      pc_size = Target.Asm.program_size b.Chain.b_asm;
                      pc_reads = stats.Target.Sim.dcache_reads;
                      pc_writes = stats.Target.Sim.dcache_writes })
                 Chain.all_compilers
             in
             ({ nr_name = node.Scade.Symbol.n_name; nr_per = per },
              !pass_stats)))
  in
  let measured = List.filter_map Result.to_option outcomes in
  { wr_nodes = List.map fst measured;
    wr_diags = Diag.errors_of outcomes;
    wr_pass_stats =
      (* zero the wall times (see the type comment): per-pass work
         counts are a function of sources and passes alone *)
      List.map
        (fun st -> { st with Vcomp.Pass.st_ms = 0.0 })
        (Vcomp.Pass.aggregate (List.map snd measured)) }

let total (wr : workload_results) (c : Chain.compiler)
    (f : per_compiler -> int) : int =
  List.fold_left (fun acc nr -> acc + f (find_pc nr c)) 0 wr.wr_nodes

let pct (v : int) (base : int) : float =
  100.0 *. float_of_int v /. float_of_int base

(* ---- Table 1 ------------------------------------------------------- *)

(* Paper Table 1: code size and cache accesses of each optimized
   configuration relative to the non-optimized default compile.
   (The paper reports CompCert at about -26% code size, -76% cache
   reads, -65% cache writes.) *)
let print_table1 (ppf : Format.formatter) (wr : workload_results) : unit =
  let base_size = total wr Chain.Cdefault_o0 (fun p -> p.pc_size) in
  let base_reads = total wr Chain.Cdefault_o0 (fun p -> p.pc_reads) in
  let base_writes = total wr Chain.Cdefault_o0 (fun p -> p.pc_writes) in
  Format.fprintf ppf
    "@[<v>Table 1 — code size and data-cache accesses vs non-optimized default@,\
     (workload: %d nodes; accesses measured over one control cycle)@,@,"
    (List.length wr.wr_nodes);
  Format.fprintf ppf "%-42s %12s %13s %14s@," "configuration" "code size"
    "cache reads" "cache writes";
  List.iter
    (fun c ->
       let size = total wr c (fun p -> p.pc_size) in
       let reads = total wr c (fun p -> p.pc_reads) in
       let writes = total wr c (fun p -> p.pc_writes) in
       Format.fprintf ppf "%-42s %6d %+5.1f%% %6d %+5.1f%% %6d %+6.1f%%@,"
         (Chain.compiler_description c)
         size (pct size base_size -. 100.0)
         reads (pct reads base_reads -. 100.0)
         writes (pct writes base_writes -. 100.0))
    Chain.all_compilers;
  Format.fprintf ppf
    "@,paper (CompCert row): code size ~-26%%, cache reads ~-76%%, cache writes ~-65%%@,@]"

(* ---- Figure 2 ------------------------------------------------------ *)

(* Paper Figure 2: per-node WCET for the four configurations, plus the
   mean WCET variation vs the non-optimized default (paper: -0.5%
   without regalloc, -18.4% fully optimized, -12.0% CompCert). *)
let print_figure2 (ppf : Format.formatter) (wr : workload_results) : unit =
  Format.fprintf ppf
    "@[<v>Figure 2 — WCET per node (cycles), four configurations@,@,";
  Format.fprintf ppf "%-8s %12s %12s %12s %12s@," "node" "default-O0"
    "default-O1" "default-O2" "vcomp";
  List.iter
    (fun nr ->
       let w c = (find_pc nr c).pc_wcet in
       Format.fprintf ppf "%-8s %12d %12d %12d %12d@," nr.nr_name
         (w Chain.Cdefault_o0) (w Chain.Cdefault_o1) (w Chain.Cdefault_o2)
         (w Chain.Cvcomp))
    wr.wr_nodes;
  let base = total wr Chain.Cdefault_o0 (fun p -> p.pc_wcet) in
  Format.fprintf ppf "@,mean WCET variation vs default-O0:@,";
  List.iter
    (fun c ->
       if c <> Chain.Cdefault_o0 then
         Format.fprintf ppf "  %-44s %+6.1f%%@,"
           (Chain.compiler_description c)
           (pct (total wr c (fun p -> p.pc_wcet)) base -. 100.0))
    Chain.all_compilers;
  Format.fprintf ppf
    "paper: -0.5%% (no regalloc), -18.4%% (fully optimized), -12.0%% (CompCert)@,@]"

(* ---- Listings 1 & 2 ------------------------------------------------ *)

(* The float-add symbol compiled by the pattern configuration (Listing
   1: loads from the stack frame, one fadd, store back) and by the
   verified-style compiler (Listing 2: the fadd alone, operands kept in
   registers). *)
let listing_node : Scade.Symbol.node =
  { Scade.Symbol.n_name = "listing";
    n_instances =
      [ { Scade.Symbol.i_wire = Some 1; i_op = Scade.Symbol.Yacq "lst_in0" };
        { Scade.Symbol.i_wire = Some 2; i_op = Scade.Symbol.Yacq "lst_in1" };
        { Scade.Symbol.i_wire = Some 3;
          i_op = Scade.Symbol.Ygain (2.0, Scade.Symbol.Swire 1) };
        { Scade.Symbol.i_wire = Some 4;
          i_op =
            Scade.Symbol.Ysum (Scade.Symbol.Swire 3, Scade.Symbol.Swire 2) };
        { Scade.Symbol.i_wire = None;
          i_op = Scade.Symbol.Yout ("lst_out", Scade.Symbol.Swire 4) } ] }

let print_listings (ppf : Format.formatter) : unit =
  let src = Scade.Acg.generate listing_node in
  let show (title : string) (c : Chain.compiler) : unit =
    let b = Chain.build ~exact:true c src in
    Format.fprintf ppf "@[<v>--- %s ---@,%s@]@." title
      (Target.Emit.program_to_string b.Chain.b_asm)
  in
  Format.fprintf ppf
    "Listings 1 and 2 — the sum symbol under both compilation regimes@.@.";
  Format.fprintf ppf "generated C (ACG output):@.%s@."
    (Minic.Pp.program_to_string src);
  show "Listing 1: default compiler, pattern mode" Chain.Cdefault_o0;
  show "Listing 2 (context): verified-style compiler" Chain.Cvcomp

(* ---- annotation flow (section 3.4) --------------------------------- *)

type annot_demo = {
  ad_wcet_with : int;        (* WCET with the annotation transmitted *)
  ad_annot_comment : string; (* the emitted assembly comment *)
  ad_failure_without : string; (* analyzer message when the bound is absent *)
}

(* A node whose loop bound depends on a configuration global: binary
   analysis cannot bound it; the source annotation (transported through
   compilation as a pro-forma effect, then emitted as a comment)
   provides the bound. We also strip the annotation and show that the
   analyzer then refuses to produce a WCET. *)
let run_annot_demo () : annot_demo =
  let node =
    { Scade.Symbol.n_name = "annotdemo";
      n_instances =
        [ { Scade.Symbol.i_wire = Some 1; i_op = Scade.Symbol.Yacq "ad_in" };
          { Scade.Symbol.i_wire = Some 2;
            i_op = Scade.Symbol.Ymodalsum (8, Scade.Symbol.Swire 1) };
          { Scade.Symbol.i_wire = None;
            i_op = Scade.Symbol.Yout ("ad_out", Scade.Symbol.Swire 2) } ] }
  in
  let src = Scade.Acg.generate node in
  let b = Chain.build Chain.Cvcomp src in
  let report = Chain.wcet b in
  (* find the emitted annotation comment *)
  let comment =
    List.concat_map
      (fun f ->
         List.filter_map
           (fun i ->
              match i with
              | Target.Asm.Pannot (_, _) -> Some (Target.Emit.instr_str i)
              | _ -> None)
           f.Target.Asm.fn_code)
      b.Chain.b_asm.Target.Asm.pr_funcs
    |> function
    | c :: _ -> String.trim c
    | [] -> "(no annotation emitted)"
  in
  (* strip annotations from the source and retry *)
  let rec strip (s : Minic.Ast.stmt) : Minic.Ast.stmt =
    match s with
    | Minic.Ast.Sannot _ -> Minic.Ast.Sskip
    | Minic.Ast.Sseq (a, b) -> Minic.Ast.Sseq (strip a, strip b)
    | Minic.Ast.Sif (c, a, b) -> Minic.Ast.Sif (c, strip a, strip b)
    | Minic.Ast.Swhile (c, a) -> Minic.Ast.Swhile (c, strip a)
    | Minic.Ast.Sfor (i, lo, hi, a) -> Minic.Ast.Sfor (i, lo, hi, strip a)
    | _ -> s
  in
  let src_stripped =
    { src with
      Minic.Ast.prog_funcs =
        List.map
          (fun f -> { f with Minic.Ast.fn_body = strip f.Minic.Ast.fn_body })
          src.Minic.Ast.prog_funcs }
  in
  let failure =
    let b' = Chain.build Chain.Cvcomp src_stripped in
    match Chain.wcet b' with
    | _ -> "(unexpected: analyzer produced a bound without the annotation)"
    | exception Wcet.Driver.Error msg -> msg
  in
  { ad_wcet_with = report.Wcet.Report.rp_wcet;
    ad_annot_comment = comment;
    ad_failure_without = failure }

let print_annot_demo (ppf : Format.formatter) : unit =
  let d = run_annot_demo () in
  Format.fprintf ppf
    "@[<v>Annotation flow (paper section 3.4)@,@,\
     emitted assembly comment : %s@,\
     WCET with annotation     : %d cycles@,\
     without the annotation   : %s@,@]"
    d.ad_annot_comment d.ad_wcet_with d.ad_failure_without

(* ---- ablations ------------------------------------------------------ *)

(* Not in the paper: contribution of each vcomp optimization, measured
   as total-WCET deltas when individually disabled, plus the effect of
   the default-O2 FMA contraction. *)
let print_ablation (ppf : Format.formatter) ?(nodes = 30) ?(seed = 2026)
    ?(config = Toolchain.default) () : unit =
  let diags = ref [] in
  let measured = ref 0 in
  (* a failing node drops out of *this variant's* sum (and is reported
     on stderr); the printed percentages then compare totals over the
     respective survivor sets. Each variant analyzes under its own
     pipeline [spec]: distinct optimization selections never share a
     cache entry (the Wcet.Memo keying contract). *)
  let measure ~(spec : string)
      (compile : Minic.Ast.program -> Target.Asm.program) : int * int =
    let outcomes =
      map_workload ~config ~nodes ~seed
        (fun ((node : Scade.Symbol.node), src) ->
           contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
               let asm = compile src in
               let lay = Target.Layout.build src asm in
               ((Wcet.Driver.analyze ?cache:config.Toolchain.cache
                   ~fuel:config.Toolchain.analysis_fuel ~spec asm lay)
                  .Wcet.Report.rp_wcet,
                Target.Asm.program_size asm)))
    in
    measured := !measured + List.length outcomes;
    diags := !diags @ Diag.errors_of outcomes;
    List.fold_left
      (fun (w, s) (w', s') -> (w + w', s + s'))
      (0, 0)
      (List.filter_map Result.to_option outcomes)
  in
  let vmeasure (options : Vcomp.Driver.options) : int * int =
    measure ~spec:("vcomp:" ^ Vcomp.Pass.spec options)
      (Vcomp.Driver.compile ~options)
  in
  let full, full_size = vmeasure Vcomp.Driver.no_validation in
  let variants =
    [ ("vcomp without constant propagation",
       Vcomp.Driver.{ no_validation with opt_constprop = false });
      ("vcomp without CSE", Vcomp.Driver.{ no_validation with opt_cse = false });
      ("vcomp without GVN-CSE",
       Vcomp.Driver.{ no_validation with opt_gvn = false });
      ("vcomp without LICM",
       Vcomp.Driver.{ no_validation with opt_licm = false });
      ("vcomp without dead-code elimination",
       Vcomp.Driver.{ no_validation with opt_deadcode = false }) ]
  in
  Format.fprintf ppf
    "@[<v>Ablations — totals over %d nodes (vcomp full: %d cycles WCET, %d \
     instrs)@,@,"
    nodes full full_size;
  List.iter
    (fun (name, options) ->
       let v, size = vmeasure options in
       Format.fprintf ppf "  %-42s %9d  (%+.2f%%)  size %6d  (%+.2f%%)@,"
         name v
         (pct v full -. 100.0)
         size
         (pct size full_size -. 100.0))
    variants;
  let o2_exact, _ =
    measure ~spec:"o2"
      (Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:false)
  in
  let o2_fma, _ =
    measure ~spec:"o2+fma" (Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull)
  in
  Format.fprintf ppf
    "  %-42s %9d@,  %-42s %9d  (%+.2f%%)@,@]"
    "default-O2 without FMA contraction" o2_exact
    "default-O2 with FMA contraction" o2_fma (pct o2_fma o2_exact -. 100.0);
  Diag.print_summary ~total:!measured !diags

(* ---- GVN/LICM benchmark (BENCH_gvn_licm.json) ----------------------- *)

(* Machine-readable deltas of the new global passes: total code size
   and total WCET bound of the workload under the paper's local-CSE
   pipeline (-O 1), with GVN-CSE added, and with GVN-CSE + LICM (the
   -O 2 default). Pure JSON on stdout, deterministic for a given
   (nodes, seed) — the published BENCH_gvn_licm.json is this output. *)
let print_gvn_licm_json (ppf : Format.formatter) ?(nodes = 30) ?(seed = 2026)
    ?(config = Toolchain.default) () : unit =
  let measure (options : Vcomp.Driver.options) : int * int =
    let spec = "vcomp:" ^ Vcomp.Pass.spec options in
    let sums =
      map_workload ~config ~nodes ~seed
        (fun ((node : Scade.Symbol.node), src) ->
           contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
               let asm = Vcomp.Driver.compile ~options src in
               let lay = Target.Layout.build src asm in
               ((Wcet.Driver.analyze ?cache:config.Toolchain.cache
                   ~fuel:config.Toolchain.analysis_fuel ~spec asm lay)
                  .Wcet.Report.rp_wcet,
                Target.Asm.program_size asm)))
    in
    List.fold_left
      (fun (w, s) (w', s') -> (w + w', s + s'))
      (0, 0)
      (List.filter_map Result.to_option sums)
  in
  let level1 = { (Vcomp.Pass.level 1) with Vcomp.Pass.opt_validate = false } in
  let base_w, base_s = measure level1 in
  let gvn_w, gvn_s = measure { level1 with Vcomp.Pass.opt_gvn = true } in
  let all_w, all_s =
    measure
      { level1 with Vcomp.Pass.opt_gvn = true; Vcomp.Pass.opt_licm = true }
  in
  let row name (w, s) =
    Printf.sprintf
      "    { \"config\": %S, \"code_size_instrs\": %d, \"wcet_total_cycles\": %d }"
      name s w
  in
  Format.fprintf ppf "%s@."
    (String.concat "\n"
       [ "{";
         "  \"benchmark\": \"gvn_licm\",";
         Printf.sprintf "  \"workload\": { \"nodes\": %d, \"seed\": %d },"
           nodes seed;
         "  \"configurations\": [";
         row "constprop+cse+deadcode" (base_w, base_s) ^ ",";
         row "constprop+cse+gvn+deadcode" (gvn_w, gvn_s) ^ ",";
         row "constprop+cse+gvn+licm+deadcode" (all_w, all_s);
         "  ]";
         "}" ])

(* ---- engine differential study (BENCH_engines.json) ---------------- *)

(* Machine-readable three-way comparison of the path-analysis engines
   over the workload: per compiler configuration, the summed IPET and
   OMT bounds, how many per-node analyses the OMT cuts strictly
   tightened, and the largest per-node saving. Every analysis runs
   under [--engine both], so the differential oracle omt <= ipet is
   checked by the driver on every node — a violation is a refusal and
   lands in the (stderr) diagnostics, never in the JSON. Pure JSON on
   stdout, deterministic for a given (nodes, seed) — the published
   BENCH_engines.json is this output. *)
let print_engines_json (ppf : Format.formatter) ?(nodes = 30) ?(seed = 2026)
    ?(config = Toolchain.default) () : unit =
  let config = Toolchain.with_engine Wcet.Report.Both config in
  let measure (c : Toolchain.compiler) : int * int * int * int * int =
    let outcomes =
      map_workload ~config ~nodes ~seed
        (fun ((node : Scade.Symbol.node), src) ->
           contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
               let b = Chain.build c src in
               let r = Chain.wcet ~config b in
               ( Option.value ~default:r.Wcet.Report.rp_wcet
                   r.Wcet.Report.rp_wcet_ipet,
                 Option.value ~default:r.Wcet.Report.rp_wcet
                   r.Wcet.Report.rp_wcet_omt,
                 r.Wcet.Report.rp_omt_cuts )))
    in
    List.fold_left
      (fun (n, ipet, omt, tighter, best) (i, o, _) ->
         ( n + 1, ipet + i, omt + o,
           (if o < i then tighter + 1 else tighter),
           max best (i - o) ))
      (0, 0, 0, 0, 0)
      (List.filter_map Result.to_option outcomes)
  in
  let row (c : Toolchain.compiler) =
    let n, ipet, omt, tighter, best = measure c in
    Printf.sprintf
      "    { \"config\": %S, \"nodes_measured\": %d, \
       \"wcet_total_ipet\": %d, \"wcet_total_omt\": %d, \
       \"nodes_omt_tighter\": %d, \"max_node_saving_cycles\": %d }"
      (Chain.compiler_name c) n ipet omt tighter best
  in
  let rows = List.map row Chain.all_compilers in
  Format.fprintf ppf "%s@."
    (String.concat "\n"
       [ "{";
         "  \"benchmark\": \"engines\",";
         Printf.sprintf "  \"workload\": { \"nodes\": %d, \"seed\": %d },"
           nodes seed;
         "  \"oracle\": \"omt <= ipet checked per node (both mode)\",";
         "  \"configurations\": [";
         String.concat ",\n" rows;
         "  ]";
         "}" ])

(* ---- WCET overestimation study (not in the paper) ------------------ *)

(* How tight are the bounds? For each node and compiler: bound vs the
   worst cycle count observed over a battery of input worlds. The
   analyzer's pessimism sources are cache classification and worst-path
   selection; acquisition-dominated straight-line nodes are often
   exact. *)
let print_overestimation (ppf : Format.formatter) ?(nodes = 20) ?(seed = 2026)
    ?(config = Toolchain.default) () : unit =
  (* under --engine both each report carries the two bounds; the table
     then grows an omt/ipet ratio column and an engines aggregate *)
  let both = config.Toolchain.engine = Wcet.Report.Both in
  Format.fprintf ppf
    "@[<v>WCET overestimation — bound vs worst of 6 observed runs@,@,";
  Format.fprintf ppf "%-10s" "node";
  List.iter
    (fun c -> Format.fprintf ppf " %12s" (Chain.compiler_name c))
    Chain.all_compilers;
  if both then Format.fprintf ppf " %12s" "omt/ipet";
  Format.fprintf ppf "@,";
  (* measure in parallel (per-node bound + worst observed cycles),
     print sequentially in node order *)
  let outcomes =
    map_workload ~config ~nodes ~seed
      (fun ((node : Scade.Symbol.node), src) ->
         contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
             let per =
               List.map
                 (fun c ->
                    let b = Chain.build c src in
                    let report = Chain.wcet ~config b in
                    let observed =
                      List.fold_left
                        (fun acc s ->
                           let sim =
                             Chain.simulate ?fuel:config.Toolchain.sim_fuel b
                               (Minic.Interp.seeded_world ~seed:s ())
                           in
                           max acc sim.Target.Sim.rr_stats.Target.Sim.cycles)
                        0 [ 1; 2; 3; 4; 5; 6 ]
                    in
                    (c, report, observed))
                 Chain.all_compilers
             in
             (node.Scade.Symbol.n_name, per)))
  in
  let measured = List.filter_map Result.to_option outcomes in
  let sums = Hashtbl.create 5 in
  let ipet_total = ref 0 and omt_total = ref 0 and tighter = ref 0 in
  List.iter
    (fun (name, per) ->
       Format.fprintf ppf "%-10s" name;
       List.iter
         (fun (c, (r : Wcet.Report.t), observed) ->
            let bound = r.Wcet.Report.rp_wcet in
            let over =
              100.0 *. (float_of_int bound /. float_of_int observed -. 1.0)
            in
            let sb, so =
              Option.value ~default:(0, 0) (Hashtbl.find_opt sums c)
            in
            Hashtbl.replace sums c (sb + bound, so + observed);
            (match r.Wcet.Report.rp_wcet_ipet, r.Wcet.Report.rp_wcet_omt with
             | Some i, Some o ->
               ipet_total := !ipet_total + i;
               omt_total := !omt_total + o;
               if o < i then incr tighter
             | _ -> ());
            Format.fprintf ppf " %10.1f%%" over)
         per;
       (if both then
          let node_ipet, node_omt =
            List.fold_left
              (fun (i, o) (_, (r : Wcet.Report.t), _) ->
                 ( i + Option.value ~default:0 r.Wcet.Report.rp_wcet_ipet,
                   o + Option.value ~default:0 r.Wcet.Report.rp_wcet_omt ))
              (0, 0) per
          in
          Format.fprintf ppf " %11.3f"
            (if node_ipet = 0 then 1.0
             else float_of_int node_omt /. float_of_int node_ipet));
       Format.fprintf ppf "@,")
    measured;
  Format.fprintf ppf "@,aggregate overestimation:@,";
  List.iter
    (fun c ->
       let sb, so = Option.value ~default:(0, 1) (Hashtbl.find_opt sums c) in
       Format.fprintf ppf "  %-14s %+6.1f%%@," (Chain.compiler_name c)
         (100.0 *. (float_of_int sb /. float_of_int so -. 1.0)))
    Chain.all_compilers;
  if both then
    Format.fprintf ppf
      "@,engines (differential oracle: omt <= ipet held on every \
       analysis):@,  ipet total %d cycles, omt total %d cycles, omt \
       strictly tighter on %d analyses@,"
      !ipet_total !omt_total !tighter;
  Format.fprintf ppf "@]";
  Diag.print_summary ~total:nodes (Diag.errors_of outcomes)

(* ---- scaling study (BENCH_scale.json) ------------------------------- *)

(* Peak resident set, measured rather than asserted: a watcher Domain
   samples VmRSS from /proc/self/status while the leg runs. VmRSS (not
   VmHWM) because the watcher tracks its own maximum over the leg —
   VmHWM is a process-lifetime high-water mark and could only report
   the largest leg ever run in this process. On a platform without
   procfs the samples read 0 and the leg degrades to wall-clock and
   throughput only. *)

let rss_kb () : int =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          try
            Scanf.sscanf
              (String.sub line 6 (String.length line - 6))
              " %d" (fun v -> v)
          with Scanf.Scan_failure _ | Failure _ -> 0
        else scan ()
    in
    let v = scan () in
    close_in ic;
    v

let with_rss_watcher (f : unit -> 'a) : 'a * int =
  let stop = Atomic.make false in
  let peak = Atomic.make (rss_kb ()) in
  let watcher =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let r = rss_kb () in
          let rec bump () =
            let m = Atomic.get peak in
            if r > m && not (Atomic.compare_and_set peak m r) then bump ()
          in
          bump ();
          Unix.sleepf 0.005
        done)
  in
  let finish () =
    Atomic.set stop true;
    Domain.join watcher
  in
  match f () with
  | v ->
    finish ();
    (v, max (Atomic.get peak) (rss_kb ()))
  | exception e ->
    finish ();
    raise e

type scale_leg = {
  sc_nodes : int;
  sc_failures : int;         (* contained per-node failures *)
  sc_wcet_total : int;       (* determinism witness: equal across legs
                                of one (nodes, seed, compiler) point *)
  sc_wall_s : float;
  sc_peak_rss_kb : int;
  sc_throughput : float;     (* nodes per second *)
  sc_stats : Wcet.Report.analysis_stats option;  (* None: no cache *)
}

(* One leg of the scaling study: compile ([config.compiler], under
   [config.passes]) and analyze every node of the workload, in the
   execution shape the config picks (batch or stream, [config.jobs]
   domains, [config.cache]) — and measure the run itself: wall clock,
   peak RSS, throughput, cache accounting. No simulation or
   differential validation: the study measures pipeline scaling, and
   compile+analyze is the service-shaped hot path. The WCET total is
   carried as a cross-leg determinism witness — every leg of one
   (nodes, seed, compiler) point must agree on it no matter the jobs /
   cache / shape combination. *)
let run_scale_leg ?(nodes = 2500) ?(seed = 2026) ?(config = Toolchain.default)
    () : scale_leg =
  let work ((node : Scade.Symbol.node), src) =
    contain ~config ~node:node.Scade.Symbol.n_name (fun () ->
        let b =
          Chain.build ~passes:config.Toolchain.passes config.Toolchain.compiler
            src
        in
        (Chain.wcet ~config b).Wcet.Report.rp_wcet)
  in
  let consume (total, fails) = function
    | Ok w -> (total + w, fails)
    | Error (_ : Diag.t) -> (total, fails + 1)
  in
  let t0 = Unix.gettimeofday () in
  let (wcet_total, failures), peak =
    with_rss_watcher (fun () ->
        fold_workload ~config ~nodes ~seed work consume (0, 0))
  in
  let wall = Unix.gettimeofday () -. t0 in
  { sc_nodes = nodes;
    sc_failures = failures;
    sc_wcet_total = wcet_total;
    sc_wall_s = wall;
    sc_peak_rss_kb = peak;
    sc_throughput = (if wall > 0.0 then float_of_int nodes /. wall else 0.0);
    sc_stats = Option.map Wcet.Memo.stats config.Toolchain.cache }

(* One leg as one JSON object. [label] names the leg in the study
   ("j1-cold", ...); the jobs/shape fields come from the config that
   ran it. *)
let scale_leg_json ?(label = "") ~(config : Toolchain.config)
    (leg : scale_leg) : string =
  let stream_fields =
    match config.Toolchain.stream with
    | None -> "\"stream\": false"
    | Some s ->
      Printf.sprintf
        "\"stream\": true, \"shard_size\": %d, \"lookahead\": %d"
        s.Toolchain.so_shard_size s.Toolchain.so_lookahead
  in
  Printf.sprintf
    "{ %s\"nodes\": %d, \"jobs\": %d, %s, \"compiler\": %S, \
     \"wall_s\": %.3f, \"peak_rss_kb\": %d, \"nodes_per_s\": %.1f, \
     \"wcet_total_cycles\": %d, \"failures\": %d, \"cache\": %s }"
    (if label = "" then "" else Printf.sprintf "\"leg\": %S, " label)
    leg.sc_nodes config.Toolchain.jobs stream_fields
    (Chain.compiler_name config.Toolchain.compiler)
    leg.sc_wall_s leg.sc_peak_rss_kb leg.sc_throughput leg.sc_wcet_total
    leg.sc_failures
    (match leg.sc_stats with
     | None -> "null"
     | Some st -> Wcet.Report.stats_json st)
