(* Deterministic parallel work queue over OCaml 5 Domains.

   The paper's evaluation compiles and analyzes ~2,500 *independent*
   SCADE nodes; every per-node chain stage (ACG, compilation, layout,
   WCET analysis, differential validation) is a pure function of the
   node, so the workload fans out across Domains freely. Determinism is
   non-negotiable for a verification pipeline: results are merged by
   task index, never by completion order, so the output of a parallel
   run is byte-identical to the sequential one regardless of
   scheduling.

   Domain-safety audit (this PR): every compilation/analysis library
   the workers call ([Cotsc], [Vcomp], [Wcet], [Target], [Scade],
   [Minic]) keeps its mutable state in per-call records — codegen
   contexts ([Cotsc.Codegen.ctx], [Scade.Acg.gen_state]), per-function
   fresh-name counters ([Vcomp.Rtl.f_next_reg]/[f_next_node]),
   per-analysis hashtables ([Wcet.*], [Target.Layout]), per-run machine
   state ([Target.Sim.machine]) and seeded [Random.State] values
   ([Scade.Workload], [Testlib.Gen]). No module-level refs, memo tables
   or shared formatters exist, so workers need no locks; the regression
   test in [test/test_par.ml] runs two compilations concurrently from
   two Domains to keep it that way. *)

let default_jobs () : int = max 1 (Domain.recommended_domain_count ())

(* One task's captured outcome, written race-free by the single domain
   that claimed its index. *)
type 'a slot = ('a, exn * Printexc.raw_backtrace) Result.t option

(* The one index-merge of the whole module: walk an index-ordered slot
   array front to back, handing each result to [f] with its global
   index, and stop at the first captured exception — the
   smallest-indexed one therefore always wins, and no result at or
   beyond it is ever observed. The batch path merges a whole run's
   slots at once; the streaming path merges each retired shard's slots
   as it leaves the window; both inherit exactly this determinism
   rule. *)
let fold_slots ~(base : int) (slots : 'a slot array)
    (f : int -> 'a -> unit) : (exn * Printexc.raw_backtrace) option =
  let n = Array.length slots in
  let rec go i =
    if i >= n then None
    else
      match slots.(i) with
      | Some (Ok v) ->
        f (base + i) v;
        go (i + 1)
      | Some (Error e) -> Some e
      | None -> assert false (* every index was claimed *)
  in
  go 0

(* Unwrap a fully-claimed slot array, re-raising the smallest-indexed
   captured exception (the batch merge). *)
let merge_slots (slots : 'a slot array) : 'a array =
  match fold_slots ~base:0 slots (fun _ _ -> ()) with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.map
      (fun slot ->
         match slot with Some (Ok v) -> v | Some (Error _) | None -> assert false)
      slots

(* Run [tasks.(i) ()] for every [i] on up to [jobs] domains and return
   the results in task order. [jobs <= 1] runs sequentially in the
   calling domain (no Domain is spawned), which is the reference
   behaviour the parallel path must reproduce exactly. A raised
   exception is re-raised in the caller; when several tasks raise, the
   one with the smallest index wins, again for determinism. *)
let run ?(jobs = default_jobs ()) (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map (fun t -> t ()) tasks
  else begin
    let jobs = min jobs n in
    let results : 'a slot array = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* each index is claimed by exactly one domain, so the slot
           write is race-free; Domain.join publishes it to the caller *)
        results.(i) <-
          Some
            (try Ok (tasks.(i) ())
             with e -> Error (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    merge_slots results
  end

(* ---- bounded-buffer streaming --------------------------------------- *)

(* One in-flight shard: its tasks, their slots, a claim cursor and a
   completion count. All fields are guarded by the stream mutex. *)
type 'a shard = {
  sh_base : int;                 (* global index of task 0 *)
  sh_tasks : (unit -> 'a) array;
  sh_slots : 'a slot array;
  mutable sh_next : int;         (* next unclaimed task *)
  mutable sh_done : int;         (* completed tasks *)
}

let default_lookahead = 1

(* Pull shards lazily from [producer] (shard k, [None] = end of
   stream), run every task on up to [jobs] domains, and fold completed
   results into [consumer] in global task order. Memory is bounded: at
   most [jobs + lookahead] shards are resident (produced but not yet
   retired) at any instant, so the resident set is independent of the
   stream length — the flat-RSS contract of the streaming pipeline.

   Determinism: tasks are claimed oldest shard first; a shard is
   retired — its slots folded, in index order, under the stream lock —
   only when complete and when every older shard has been retired, so
   [consumer] observes exactly the sequential order no matter how the
   domains interleave. A raised task exception is re-raised in the
   caller after all domains wind down; the first one in global order
   wins (the stream stops claiming and producing, and no result at or
   beyond the raising index reaches [consumer]). [jobs <= 1] runs
   everything in the calling domain: produce a shard, run it, retire
   it — the reference behaviour the parallel path reproduces.

   [producer] is called from worker domains, one call at a time (never
   concurrently, shards in order), outside the lock: generation
   overlaps compilation, but a producer need not be thread-safe beyond
   being callable from another domain. [consumer] always runs under
   the lock — never concurrently with itself. *)
let run_stream ?(jobs = default_jobs ()) ?(lookahead = default_lookahead)
    ~(producer : int -> (unit -> 'a) array option)
    ~(consumer : 'acc -> int -> 'a -> 'acc) ~(init : 'acc) () : 'acc =
  let lookahead = max 0 lookahead in
  if jobs <= 1 then begin
    (* sequential reference: one shard resident at a time *)
    let acc = ref init in
    let k = ref 0 and base = ref 0 and finished = ref false in
    while not !finished do
      match producer !k with
      | None -> finished := true
      | Some tasks ->
        Array.iteri
          (fun i t -> acc := consumer !acc (!base + i) (t ()))
          tasks;
        base := !base + Array.length tasks;
        incr k
    done;
    !acc
  end
  else begin
    let cap = jobs + lookahead in
    let mutex = Mutex.create () and cond = Condition.create () in
    (* all of the following is guarded by [mutex] *)
    let window : 'a shard Queue.t = Queue.create () in
    let next_shard = ref 0 in       (* next shard index to produce *)
    let produced = ref 0 in         (* global task count produced *)
    let producing = ref false in    (* a domain is inside [producer] *)
    let exhausted = ref false in    (* producer returned None *)
    let failed : (exn * Printexc.raw_backtrace) option ref = ref None in
    let acc = ref init in
    (* retire complete shards from the front of the window; under the
       lock, so consumer folds are serial and in global order. After a
       recorded failure nothing further is consumed or retired. *)
    let retire_front () =
      while
        !failed = None
        && (not (Queue.is_empty window))
        && (let sh = Queue.peek window in
            sh.sh_done = Array.length sh.sh_tasks)
      do
        let sh = Queue.pop window in
        match
          fold_slots ~base:sh.sh_base sh.sh_slots (fun i v ->
              acc := consumer !acc i v)
        with
        | None -> ()
        | Some e -> failed := Some e
      done
    in
    let worker () =
      Mutex.lock mutex;
      let rec loop () =
        if !failed <> None then Mutex.unlock mutex
        else begin
          (* oldest shard with an unclaimed task, if any *)
          let claim = ref None in
          (try
             Queue.iter
               (fun sh ->
                  if sh.sh_next < Array.length sh.sh_tasks then begin
                    claim := Some (sh, sh.sh_next);
                    sh.sh_next <- sh.sh_next + 1;
                    raise Exit
                  end)
               window
           with Exit -> ());
          match !claim with
          | Some (sh, i) ->
            Mutex.unlock mutex;
            let r =
              try Ok (sh.sh_tasks.(i) ())
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock mutex;
            sh.sh_slots.(i) <- Some r;
            sh.sh_done <- sh.sh_done + 1;
            retire_front ();
            Condition.broadcast cond;
            loop ()
          | None ->
            if (not !exhausted) && (not !producing)
            && Queue.length window < cap then begin
              let k = !next_shard in
              incr next_shard;
              producing := true;
              Mutex.unlock mutex;
              (* producer runs outside the lock so generation overlaps
                 the in-flight work; a producer exception fails the
                 whole stream (the prefix consumed before it is
                 whatever had already retired) *)
              let shard =
                try Ok (producer k)
                with e -> Error (e, Printexc.get_raw_backtrace ())
              in
              Mutex.lock mutex;
              producing := false;
              (match shard with
               | Error e ->
                 exhausted := true;
                 if !failed = None then failed := Some e
               | Ok None -> exhausted := true
               | Ok (Some tasks) ->
                 Queue.push
                   { sh_base = !produced;
                     sh_tasks = tasks;
                     sh_slots = Array.make (Array.length tasks) None;
                     sh_next = 0;
                     sh_done = 0 }
                   window;
                 produced := !produced + Array.length tasks;
                 (* an empty shard has no task to complete: retire it
                    here or the window never drains *)
                 retire_front ());
              Condition.broadcast cond;
              loop ()
            end
            else if !exhausted && Queue.is_empty window && not !producing
            then begin
              Condition.broadcast cond;
              Mutex.unlock mutex
            end
            else begin
              Condition.wait cond mutex;
              loop ()
            end
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match !failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> !acc
  end

(* Order-preserving parallel map over a list. *)
let map_list ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (run ?jobs (Array.map (fun x () -> f x) (Array.of_list xs)))

(* ---- the per-node chain as a parallel workload ---------------------- *)

(* What the paper's toolchain produces per node: the compiled assembly,
   its static WCET bound, and the whole-chain differential-validation
   verdict. Plain structural data, so parallel and sequential runs are
   comparable with [=]. *)
type node_result = {
  pn_name : string;
  pn_asm : Target.Asm.program;
  pn_wcet : int;
  pn_validation : (unit, string) Result.t;
}

(* The raw per-node body: every stage failure escapes as its original
   exception. This is the [fail_fast] path — [run] rethrows the
   smallest-indexed exception, aborting the whole run deterministically
   (the pre-diagnostic behaviour). *)
let chain_node_exn ~(config : Toolchain.config) ?exact ?validate ?cycles
    (name : string) (src : Minic.Ast.program) : node_result =
  let b =
    Chain.build ?exact ?validate ~passes:config.Toolchain.passes
      config.Toolchain.compiler src
  in
  { pn_name = name;
    pn_asm = b.Chain.b_asm;
    pn_wcet = (Chain.wcet ~config b).Wcet.Report.rp_wcet;
    pn_validation =
      Chain.validate_chain ?cycles ?worlds:config.Toolchain.worlds
        ?sim_fuel:config.Toolchain.sim_fuel b }

(* The contained per-node body: each stage runs under [Diag.capture],
   so a failure costs exactly this node — the caller's other nodes
   proceed, and the diagnostic records node, stage and message. The
   contained path also typechecks the source first (the CLIs always
   did; a corrupted AST then fails at the Typecheck stage instead of
   crashing somewhere inside a code generator). Exceptions never
   escape this function unless [config.fail_fast] is set. *)
let chain_node ~(config : Toolchain.config) ?exact ?validate ?cycles
    (name : string) (src : Minic.Ast.program) :
  (node_result, Diag.t) Result.t =
  if config.Toolchain.fail_fast then
    Ok (chain_node_exn ~config ?exact ?validate ?cycles name src)
  else
    match Minic.Typecheck.check_program src with
    | Error e ->
      Result.Error
        (Diag.make ~node:name ~stage:Diag.Typecheck
           (Minic.Typecheck.error_to_string e))
    | Ok () ->
      Result.bind
        (Diag.capture ~node:name ~stage:Diag.Compile (fun () ->
             Chain.build ?exact ?validate ~passes:config.Toolchain.passes
               config.Toolchain.compiler src))
        (fun b ->
           Result.bind
             (Diag.capture ~node:name ~stage:Diag.Wcet (fun () ->
                  Chain.wcet ~config b))
             (fun report ->
                Result.map
                  (fun validation ->
                     { pn_name = name;
                       pn_asm = b.Chain.b_asm;
                       pn_wcet = report.Wcet.Report.rp_wcet;
                       pn_validation = validation })
                  (Diag.capture ~node:name ~stage:Diag.Sim (fun () ->
                       Chain.validate_chain ?cycles
                         ?worlds:config.Toolchain.worlds
                         ?sim_fuel:config.Toolchain.sim_fuel b))))

(* Run the full per-node chain — ACG when given a SCADE node, then
   compile under the config's compiler, link ([Layout.build] inside
   [Chain.build]), analyze and validate — for every node of a
   workload, fanned out over [config.jobs] domains. The config's cache
   is the shared WCET-analysis cache: Wcet.Memo is sharded and
   mutex-protected, so one cache may be handed to any number of
   concurrent workers without perturbing results (a hit returns what a
   miss would compute). [exact]/[validate]/[cycles] stay per-call
   knobs: they pick the semantics being checked, not how the toolchain
   runs.

   Failure containment: each node's outcome is a [Result.t] — a
   failing node is recorded as its [Diag.t] and *skipped*; every other
   node completes and merges by index exactly as before, so the
   successful entries of a partially-failed run are byte-identical to
   a fault-free run restricted to those nodes. With
   [config.fail_fast], the first (smallest-indexed) failure aborts the
   whole run with its original exception instead. *)
let run_chain ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : (string * Minic.Ast.program) list) :
  (node_result, Diag.t) Result.t list =
  map_list ~jobs:config.Toolchain.jobs
    (fun (name, src) -> chain_node ~config ?exact ?validate ?cycles name src)
    nodes

(* Same, starting from SCADE nodes (runs the ACG inside the worker; an
   ACG failure is a Compile-stage diagnostic). *)
let run_chain_nodes ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : Scade.Symbol.node list) : (node_result, Diag.t) Result.t list =
  map_list ~jobs:config.Toolchain.jobs
    (fun node ->
       let name = node.Scade.Symbol.n_name in
       if config.Toolchain.fail_fast then
         let src = Scade.Acg.generate node in
         Ok (chain_node_exn ~config ?exact ?validate ?cycles name src)
       else
         Result.bind
           (Diag.capture ~node:name ~stage:Diag.Compile (fun () ->
                Scade.Acg.generate node))
           (fun src -> chain_node ~config ?exact ?validate ?cycles name src))
    nodes

(* The streaming counterpart of [run_chain]: named mini-C programs
   arrive shard by shard from [producer], each node runs [chain_node]
   under the config, and outcomes fold into [consumer] in global input
   order — the per-node results are identical to [run_chain] over the
   concatenated shards, with only [jobs + lookahead] shards resident.
   Lookahead comes from [config.stream] when set. *)
let run_chain_stream ?(config = Toolchain.default) ?exact ?validate ?cycles
    ~(producer : int -> (string * Minic.Ast.program) array option)
    ~(consumer : 'acc -> int -> (node_result, Diag.t) Result.t -> 'acc)
    ~(init : 'acc) () : 'acc =
  let lookahead =
    match config.Toolchain.stream with
    | Some s -> s.Toolchain.so_lookahead
    | None -> default_lookahead
  in
  run_stream ~jobs:config.Toolchain.jobs ~lookahead
    ~producer:(fun k ->
        Option.map
          (Array.map (fun (name, src) () ->
               chain_node ~config ?exact ?validate ?cycles name src))
          (producer k))
    ~consumer ~init ()
