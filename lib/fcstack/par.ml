(* Deterministic parallel work queue over OCaml 5 Domains.

   The paper's evaluation compiles and analyzes ~2,500 *independent*
   SCADE nodes; every per-node chain stage (ACG, compilation, layout,
   WCET analysis, differential validation) is a pure function of the
   node, so the workload fans out across Domains freely. Determinism is
   non-negotiable for a verification pipeline: results are merged by
   task index, never by completion order, so the output of a parallel
   run is byte-identical to the sequential one regardless of
   scheduling.

   Domain-safety audit (this PR): every compilation/analysis library
   the workers call ([Cotsc], [Vcomp], [Wcet], [Target], [Scade],
   [Minic]) keeps its mutable state in per-call records — codegen
   contexts ([Cotsc.Codegen.ctx], [Scade.Acg.gen_state]), per-function
   fresh-name counters ([Vcomp.Rtl.f_next_reg]/[f_next_node]),
   per-analysis hashtables ([Wcet.*], [Target.Layout]), per-run machine
   state ([Target.Sim.machine]) and seeded [Random.State] values
   ([Scade.Workload], [Testlib.Gen]). No module-level refs, memo tables
   or shared formatters exist, so workers need no locks; the regression
   test in [test/test_par.ml] runs two compilations concurrently from
   two Domains to keep it that way. *)

let default_jobs () : int = max 1 (Domain.recommended_domain_count ())

(* Run [tasks.(i) ()] for every [i] on up to [jobs] domains and return
   the results in task order. [jobs <= 1] runs sequentially in the
   calling domain (no Domain is spawned), which is the reference
   behaviour the parallel path must reproduce exactly. A raised
   exception is re-raised in the caller; when several tasks raise, the
   one with the smallest index wins, again for determinism. *)
let run ?(jobs = default_jobs ()) (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map (fun t -> t ()) tasks
  else begin
    let jobs = min jobs n in
    let results : ('a, exn * Printexc.raw_backtrace) Result.t option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* each index is claimed by exactly one domain, so the slot
           write is race-free; Domain.join publishes it to the caller *)
        results.(i) <-
          Some
            (try Ok (tasks.(i) ())
             with e -> Error (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (fun slot ->
         match slot with
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index below [n] was claimed *))
      results
  end

(* Order-preserving parallel map over a list. *)
let map_list ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (run ?jobs (Array.map (fun x () -> f x) (Array.of_list xs)))

(* ---- the per-node chain as a parallel workload ---------------------- *)

(* What the paper's toolchain produces per node: the compiled assembly,
   its static WCET bound, and the whole-chain differential-validation
   verdict. Plain structural data, so parallel and sequential runs are
   comparable with [=]. *)
type node_result = {
  pn_name : string;
  pn_asm : Target.Asm.program;
  pn_wcet : int;
  pn_validation : (unit, string) Result.t;
}

(* Run the full per-node chain — ACG when given a SCADE node, then
   compile under the config's compiler, link ([Layout.build] inside
   [Chain.build]), analyze and validate — for every node of a
   workload, fanned out over [config.jobs] domains. The config's cache
   is the shared WCET-analysis cache: Wcet.Memo is sharded and
   mutex-protected, so one cache may be handed to any number of
   concurrent workers without perturbing results (a hit returns what a
   miss would compute). [exact]/[validate]/[cycles] stay per-call
   knobs: they pick the semantics being checked, not how the toolchain
   runs. *)
let run_chain ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : (string * Minic.Ast.program) list) : node_result list =
  map_list ~jobs:config.Toolchain.jobs
    (fun (name, src) ->
       let b = Chain.build ?exact ?validate config.Toolchain.compiler src in
       { pn_name = name;
         pn_asm = b.Chain.b_asm;
         pn_wcet = (Chain.wcet ~config b).Wcet.Report.rp_wcet;
         pn_validation =
           Chain.validate_chain ?cycles ?worlds:config.Toolchain.worlds b })
    nodes

(* Same, starting from SCADE nodes (runs the ACG inside the worker). *)
let run_chain_nodes ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : Scade.Symbol.node list) : node_result list =
  map_list ~jobs:config.Toolchain.jobs
    (fun node ->
       let src = Scade.Acg.generate node in
       let b = Chain.build ?exact ?validate config.Toolchain.compiler src in
       { pn_name = node.Scade.Symbol.n_name;
         pn_asm = b.Chain.b_asm;
         pn_wcet = (Chain.wcet ~config b).Wcet.Report.rp_wcet;
         pn_validation =
           Chain.validate_chain ?cycles ?worlds:config.Toolchain.worlds b })
    nodes

(* pre-Toolchain.config surface, kept one PR for incremental migration *)
let config_of ?jobs ?cache ?worlds (compiler : Chain.compiler) :
  Toolchain.config =
  { Toolchain.jobs = Option.value ~default:(default_jobs ()) jobs;
    cache;
    worlds;
    compiler }

let run_chain_opts ?jobs ?cache ?exact ?validate ?cycles ?worlds
    (compiler : Chain.compiler) (nodes : (string * Minic.Ast.program) list) :
  node_result list =
  run_chain ~config:(config_of ?jobs ?cache ?worlds compiler) ?exact ?validate
    ?cycles nodes

let run_chain_nodes_opts ?jobs ?cache ?exact ?validate ?cycles ?worlds
    (compiler : Chain.compiler) (nodes : Scade.Symbol.node list) :
  node_result list =
  run_chain_nodes ~config:(config_of ?jobs ?cache ?worlds compiler) ?exact
    ?validate ?cycles nodes
