(* Deterministic parallel work queue over OCaml 5 Domains.

   The paper's evaluation compiles and analyzes ~2,500 *independent*
   SCADE nodes; every per-node chain stage (ACG, compilation, layout,
   WCET analysis, differential validation) is a pure function of the
   node, so the workload fans out across Domains freely. Determinism is
   non-negotiable for a verification pipeline: results are merged by
   task index, never by completion order, so the output of a parallel
   run is byte-identical to the sequential one regardless of
   scheduling.

   Domain-safety audit (this PR): every compilation/analysis library
   the workers call ([Cotsc], [Vcomp], [Wcet], [Target], [Scade],
   [Minic]) keeps its mutable state in per-call records — codegen
   contexts ([Cotsc.Codegen.ctx], [Scade.Acg.gen_state]), per-function
   fresh-name counters ([Vcomp.Rtl.f_next_reg]/[f_next_node]),
   per-analysis hashtables ([Wcet.*], [Target.Layout]), per-run machine
   state ([Target.Sim.machine]) and seeded [Random.State] values
   ([Scade.Workload], [Testlib.Gen]). No module-level refs, memo tables
   or shared formatters exist, so workers need no locks; the regression
   test in [test/test_par.ml] runs two compilations concurrently from
   two Domains to keep it that way. *)

let default_jobs () : int = max 1 (Domain.recommended_domain_count ())

(* Run [tasks.(i) ()] for every [i] on up to [jobs] domains and return
   the results in task order. [jobs <= 1] runs sequentially in the
   calling domain (no Domain is spawned), which is the reference
   behaviour the parallel path must reproduce exactly. A raised
   exception is re-raised in the caller; when several tasks raise, the
   one with the smallest index wins, again for determinism. *)
let run ?(jobs = default_jobs ()) (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map (fun t -> t ()) tasks
  else begin
    let jobs = min jobs n in
    let results : ('a, exn * Printexc.raw_backtrace) Result.t option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* each index is claimed by exactly one domain, so the slot
           write is race-free; Domain.join publishes it to the caller *)
        results.(i) <-
          Some
            (try Ok (tasks.(i) ())
             with e -> Error (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (fun slot ->
         match slot with
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index below [n] was claimed *))
      results
  end

(* Order-preserving parallel map over a list. *)
let map_list ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (run ?jobs (Array.map (fun x () -> f x) (Array.of_list xs)))

(* ---- the per-node chain as a parallel workload ---------------------- *)

(* What the paper's toolchain produces per node: the compiled assembly,
   its static WCET bound, and the whole-chain differential-validation
   verdict. Plain structural data, so parallel and sequential runs are
   comparable with [=]. *)
type node_result = {
  pn_name : string;
  pn_asm : Target.Asm.program;
  pn_wcet : int;
  pn_validation : (unit, string) Result.t;
}

(* The raw per-node body: every stage failure escapes as its original
   exception. This is the [fail_fast] path — [run] rethrows the
   smallest-indexed exception, aborting the whole run deterministically
   (the pre-diagnostic behaviour). *)
let chain_node_exn ~(config : Toolchain.config) ?exact ?validate ?cycles
    (name : string) (src : Minic.Ast.program) : node_result =
  let b =
    Chain.build ?exact ?validate ~passes:config.Toolchain.passes
      config.Toolchain.compiler src
  in
  { pn_name = name;
    pn_asm = b.Chain.b_asm;
    pn_wcet = (Chain.wcet ~config b).Wcet.Report.rp_wcet;
    pn_validation =
      Chain.validate_chain ?cycles ?worlds:config.Toolchain.worlds
        ?sim_fuel:config.Toolchain.sim_fuel b }

(* The contained per-node body: each stage runs under [Diag.capture],
   so a failure costs exactly this node — the caller's other nodes
   proceed, and the diagnostic records node, stage and message. The
   contained path also typechecks the source first (the CLIs always
   did; a corrupted AST then fails at the Typecheck stage instead of
   crashing somewhere inside a code generator). Exceptions never
   escape this function unless [config.fail_fast] is set. *)
let chain_node ~(config : Toolchain.config) ?exact ?validate ?cycles
    (name : string) (src : Minic.Ast.program) :
  (node_result, Diag.t) Result.t =
  if config.Toolchain.fail_fast then
    Ok (chain_node_exn ~config ?exact ?validate ?cycles name src)
  else
    match Minic.Typecheck.check_program src with
    | Error e ->
      Result.Error
        (Diag.make ~node:name ~stage:Diag.Typecheck
           (Minic.Typecheck.error_to_string e))
    | Ok () ->
      Result.bind
        (Diag.capture ~node:name ~stage:Diag.Compile (fun () ->
             Chain.build ?exact ?validate ~passes:config.Toolchain.passes
               config.Toolchain.compiler src))
        (fun b ->
           Result.bind
             (Diag.capture ~node:name ~stage:Diag.Wcet (fun () ->
                  Chain.wcet ~config b))
             (fun report ->
                Result.map
                  (fun validation ->
                     { pn_name = name;
                       pn_asm = b.Chain.b_asm;
                       pn_wcet = report.Wcet.Report.rp_wcet;
                       pn_validation = validation })
                  (Diag.capture ~node:name ~stage:Diag.Sim (fun () ->
                       Chain.validate_chain ?cycles
                         ?worlds:config.Toolchain.worlds
                         ?sim_fuel:config.Toolchain.sim_fuel b))))

(* Run the full per-node chain — ACG when given a SCADE node, then
   compile under the config's compiler, link ([Layout.build] inside
   [Chain.build]), analyze and validate — for every node of a
   workload, fanned out over [config.jobs] domains. The config's cache
   is the shared WCET-analysis cache: Wcet.Memo is sharded and
   mutex-protected, so one cache may be handed to any number of
   concurrent workers without perturbing results (a hit returns what a
   miss would compute). [exact]/[validate]/[cycles] stay per-call
   knobs: they pick the semantics being checked, not how the toolchain
   runs.

   Failure containment: each node's outcome is a [Result.t] — a
   failing node is recorded as its [Diag.t] and *skipped*; every other
   node completes and merges by index exactly as before, so the
   successful entries of a partially-failed run are byte-identical to
   a fault-free run restricted to those nodes. With
   [config.fail_fast], the first (smallest-indexed) failure aborts the
   whole run with its original exception instead. *)
let run_chain ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : (string * Minic.Ast.program) list) :
  (node_result, Diag.t) Result.t list =
  map_list ~jobs:config.Toolchain.jobs
    (fun (name, src) -> chain_node ~config ?exact ?validate ?cycles name src)
    nodes

(* Same, starting from SCADE nodes (runs the ACG inside the worker; an
   ACG failure is a Compile-stage diagnostic). *)
let run_chain_nodes ?(config = Toolchain.default) ?exact ?validate ?cycles
    (nodes : Scade.Symbol.node list) : (node_result, Diag.t) Result.t list =
  map_list ~jobs:config.Toolchain.jobs
    (fun node ->
       let name = node.Scade.Symbol.n_name in
       if config.Toolchain.fail_fast then
         let src = Scade.Acg.generate node in
         Ok (chain_node_exn ~config ?exact ?validate ?cycles name src)
       else
         Result.bind
           (Diag.capture ~node:name ~stage:Diag.Compile (fun () ->
                Scade.Acg.generate node))
           (fun src -> chain_node ~config ?exact ?validate ?cycles name src))
    nodes
