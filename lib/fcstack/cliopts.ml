(* The one shared cache/parallelism flag surface of bench, fcc and
   aitw: before this module each CLI carried its own copy of the cache
   flags (and fcc had none at all), so the surfaces drifted. The three
   tools now splice the same Cmdliner terms and hand the result to
   [Toolchain.config]. *)

open Cmdliner

type cache_opts = {
  co_no_cache : bool;
  co_dir : string option;
  co_gc_mb : int option;
}

let no_cache_arg : bool Term.t =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the shared WCET-analysis cache (memory and disk). \
           Results are byte-identical with and without it; this only \
           trades wall clock for memory.")

let cache_dir_arg : string option Term.t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "FCSTACK_CACHE_DIR")
        ~doc:
          "Persist the WCET-analysis cache under $(docv), shared across \
           runs and across concurrent processes (crash-safe writes; \
           corrupted or stale entries silently re-analyze). Results are \
           byte-identical with and without it.")

let cache_gc_mb_arg : int option Term.t =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-gc-mb" ] ~docv:"MB"
        ~doc:
          "Bound the on-disk cache to $(docv) MiB: least-recently-used \
           entries are evicted at the end of the run. Requires \
           $(b,--cache-dir).")

let cache_term : cache_opts Term.t =
  Term.(
    const (fun co_no_cache co_dir co_gc_mb -> { co_no_cache; co_dir; co_gc_mb })
    $ no_cache_arg $ cache_dir_arg $ cache_gc_mb_arg)

let jobs_term ~(doc : string) : int Term.t =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let fail_fast_term : bool Term.t =
  Arg.(
    value & flag
    & info [ "fail-fast" ]
        ~doc:
          "Abort the whole run on the first failing input with its \
           original error, instead of containing the failure to that \
           input and completing the rest (the default). Successful \
           inputs produce byte-identical output either way.")

(* ---- optimization pipeline selection (-O / --passes) ---- *)

(* [--passes] parses through [Vcomp.Pass.of_spec], so an unknown pass
   name is a Cmdliner parse error (exit 124) before any work runs —
   the CLIs never fall back to a different pipeline silently. *)
let passes_conv : Vcomp.Pass.options Cmdliner.Arg.conv =
  let parse (s : string) =
    match Vcomp.Pass.of_spec s with
    | Ok o -> Ok o
    | Error e -> Error (`Msg e)
  in
  let print fmt (o : Vcomp.Pass.options) =
    Format.pp_print_string fmt (Vcomp.Pass.spec o)
  in
  Arg.conv (parse, print)

let opt_level_arg : int Term.t =
  Arg.(
    value
    & opt int 2
    & info [ "O"; "opt-level" ] ~docv:"N"
        ~doc:
          "vcomp middle-end optimization level: 0 turns every pass \
           off, 1 is the paper's CompCert 1.7 pipeline (constant \
           propagation, local CSE, dead-code elimination), 2 (the \
           default) adds global value numbering and loop-invariant \
           code motion. Each enabled pass runs under translation \
           validation. Only the vcomp configuration consults this.")

let passes_arg : Vcomp.Pass.options option Term.t =
  Arg.(
    value
    & opt (some passes_conv) None
    & info [ "passes" ] ~docv:"LIST"
        ~doc:
          "Exact vcomp pass selection as a comma-separated list drawn \
           from constprop, cse, gvn, licm, deadcode — or $(b,none). \
           Overrides $(b,-O). An optional $(i,#FUEL) suffix bounds the \
           analysis work per pass (exhaustion skips the pass, never \
           miscompiles).")

let passes_term : Vcomp.Pass.options Term.t =
  Term.(
    const (fun level passes ->
        match passes with
        | Some o -> o
        | None -> Vcomp.Pass.level level)
    $ opt_level_arg $ passes_arg)

(* ---- streaming execution shape (--stream / --shard-size) ---- *)

let stream_arg : bool Term.t =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Stream the workload shard by shard through the Domain pool \
           (bounded resident shards, flat memory in the workload size) \
           instead of materializing it up front. Output is \
           byte-identical to the batch path on every jobs/cache/engine \
           combination; this only picks an execution shape.")

let shard_size_arg : int option Term.t =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-size" ] ~docv:"N"
        ~doc:
          "Nodes per streamed shard (default 256). Implies \
           $(b,--stream). Any positive value produces the same output \
           bytes; smaller shards lower peak memory, larger shards \
           amortize scheduling.")

let lookahead_arg : int option Term.t =
  Arg.(
    value
    & opt (some int) None
    & info [ "lookahead" ] ~docv:"K"
        ~doc:
          "Extra shards kept resident beyond the $(b,-j) domains when \
           streaming (default 1). Implies $(b,--stream). Does not \
           change output bytes.")

let stream_term : Toolchain.stream_opts option Term.t =
  Term.(
    const (fun stream shard_size lookahead ->
        if (not stream) && shard_size = None && lookahead = None then None
        else
          let d = Toolchain.default_stream in
          Some
            { Toolchain.so_shard_size =
                max 1
                  (Option.value shard_size ~default:d.Toolchain.so_shard_size);
              so_lookahead =
                max 0
                  (Option.value lookahead ~default:d.Toolchain.so_lookahead) })
    $ stream_arg $ shard_size_arg $ lookahead_arg)

(* ---- WCET path-engine selection (--engine) ---- *)

(* [--engine] parses through [Request.engine_of_string] (the request
   surface's name map), so an unknown engine name is a Cmdliner parse
   error (exit 124) before any work runs — never a silent fallback to
   a different engine. *)
let engine_conv : Wcet.Report.engine Cmdliner.Arg.conv =
  let parse (s : string) =
    match Request.engine_of_string s with
    | Ok e -> Ok e
    | Error e -> Error (`Msg e)
  in
  let print fmt (e : Wcet.Report.engine) =
    Format.pp_print_string fmt (Request.engine_to_string e)
  in
  Arg.conv (parse, print)

let engine_term : Wcet.Report.engine Term.t =
  Arg.(
    value
    & opt engine_conv Wcet.Report.Ipet
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "WCET path-analysis engine: $(b,ipet) (the default \
           structural ILP), $(b,omt) (optimization-modulo-theory: the \
           same flow system plus semantic infeasible-path cuts, never \
           looser than ipet), or $(b,both) (run both and refuse \
           unless omt <= ipet holds on every node — the differential \
           oracle). The engine is part of the analysis-cache key, so \
           engines never share cache entries.")

(* [-c] parses through [Request.compiler_of_string]: an unknown
   configuration name is a Cmdliner parse error (exit 124) before any
   work runs, same contract as --passes and --engine — the CLIs used
   to parse this by hand and exit 2 after argument parsing. *)
let compiler_conv : Toolchain.compiler Cmdliner.Arg.conv =
  let parse (s : string) =
    match Request.compiler_of_string s with
    | Ok c -> Ok c
    | Error e -> Error (`Msg e)
  in
  let print fmt (c : Toolchain.compiler) =
    Format.pp_print_string fmt (Request.compiler_to_string c)
  in
  Arg.conv (parse, print)

let compiler_term : Toolchain.compiler Term.t =
  Arg.(
    value
    & opt compiler_conv Toolchain.Cvcomp
    & info [ "c"; "compiler" ] ~docv:"COMPILER"
        ~doc:"Configuration: $(b,o0), $(b,o1), $(b,o2) or $(b,vcomp).")

let connect_term : string option Term.t =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Send the work to a running $(b,fcd) daemon at $(docv) \
           instead of compiling in-process. Output bytes are identical \
           to the in-process run; the daemon's warm analysis cache \
           only changes wall clock. A transport failure is reported \
           per input file and never mistaken for an answer.")

(* ---- resilience flags (deadline, retry, local fallback) ---- *)

let deadline_ms_term : int option Term.t =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request wall-clock deadline. A request the server (or \
           the in-process session) cannot answer within $(docv) \
           milliseconds is refused with a deadline diagnostic — never \
           a partial or late answer, and never cached. Clients also \
           bound their wait on the daemon accordingly.")

let retries_arg : int Term.t =
  Arg.(
    value
    & opt int Retry.default.Retry.r_attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts per request over $(b,--connect) (default 3). \
           Only transport failures and busy-shed requests are retried \
           — a refusal is the answer and is never re-issued. Safe \
           because requests are pure functions of request + store.")

let retry_base_ms_arg : int Term.t =
  Arg.(
    value
    & opt int Retry.default.Retry.r_base_ms
    & info [ "retry-base-ms" ] ~docv:"MS"
        ~doc:
          "Backoff before the second attempt (default 100); doubles \
           per attempt with seeded jitter, capped.")

let retry_seed_arg : int Term.t =
  Arg.(
    value
    & opt int Retry.default.Retry.r_seed
    & info [ "retry-seed" ] ~docv:"SEED"
        ~doc:
          "Jitter seed for the retry backoff schedule (default 0). \
           The schedule is a pure function of the policy, so a seed \
           pins it exactly.")

let retry_term : Retry.policy Term.t =
  Term.(
    const (fun attempts base seed ->
        { Retry.default with
          Retry.r_attempts = max 1 attempts;
          r_base_ms = max 0 base;
          r_seed = seed })
    $ retries_arg $ retry_base_ms_arg $ retry_seed_arg)

let fallback_local_term : bool Term.t =
  Arg.(
    value & flag
    & info [ "fallback-local" ]
        ~doc:
          "With $(b,--connect): if the daemon is unreachable (connect \
           failure, or a request still failing on transport/busy after \
           its retries), degrade to in-process execution instead of \
           reporting a transport failure. Output bytes are identical \
           to a pure $(b,--connect) or pure in-process run; a stderr \
           note records each degradation.")

(* Cumulative retry accounting, stderr-only (stdout byte-identity is
   non-negotiable): one line at end of run, printed only when a retry
   actually happened so retry-free runs keep a clean stderr. *)
let report_retries ~(tool : string) ~(requests : int)
    ~(extra_attempts : int) : unit =
  if requests > 0 then
    Printf.eprintf "%s: retried %d request(s) (%d extra attempt(s))\n%!" tool
      requests extra_attempts

let memo_of_opts (o : cache_opts) : Wcet.Memo.t option =
  if o.co_no_cache then None
  else Some (Wcet.Memo.create ?dir:o.co_dir ?gc_mb:o.co_gc_mb ())

let session_of_opts ?jobs ?fail_fast ?stream (o : cache_opts) :
  Toolchain.session =
  Toolchain.session ?jobs ?cache:(memo_of_opts o) ?fail_fast ?stream ()

let config_of_opts ?jobs ?worlds ?compiler ?fail_fast ?passes ?engine ?stream
    (o : cache_opts) : Toolchain.config =
  Toolchain.of_session_request
    (session_of_opts ?jobs ?fail_fast ?stream o)
    (Toolchain.request_opts ?compiler ?worlds ?passes ?engine ())

(* End-of-run maintenance: apply the GC budget to a persistent cache.
   Deliberately at the end — the LRU index then reflects this run's
   hits, and a kill -9 before this point only leaves the store
   oversized until the next completed run. *)
let finalize (config : Toolchain.config) : unit =
  Option.iter Wcet.Memo.gc config.Toolchain.cache

(* Cache accounting on stderr. CLIs print it only for persistent
   caches (opting into --cache-dir opts into the stats line); bench
   passes ~always:true to keep its PR-3 behaviour of printing whenever
   any cache is on. stdout never sees any of this. *)
let report_stats ?(always = false) (config : Toolchain.config) : unit =
  match config.Toolchain.cache with
  | Some m when always || Wcet.Memo.store_dir m <> None ->
    Format.eprintf "%a@." Wcet.Report.pp_stats (Wcet.Memo.stats m)
  | Some _ | None -> ()

(* Same contract for a service session (the cache handle is abstract
   there; only the stats snapshot is visible). *)
let report_session_stats ?(always = false) (s : Service.session) : unit =
  match Service.stats s with
  | Some st when always || Service.store_dir s <> None ->
    Format.eprintf "%a@." Wcet.Report.pp_stats st
  | Some _ | None -> ()
