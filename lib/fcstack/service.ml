(* The persistent compilation service: one warm session, many typed
   requests.

   [run_request] is THE entry point of the toolchain — the batch CLIs
   (fcc/aitw) are one-request in-process clients, the daemon (bin/fcd)
   is an accept loop feeding it, and bench's serve study drives it
   over a real socket. A [session] owns exactly the state that may
   outlive a request (the warm [Wcet.Memo], the Domain pool width, the
   failure policy — [Toolchain.session]); everything request-scoped
   arrives inside the [Request.t], so requests cannot contaminate each
   other by construction.

   Containment carries over from the batch chain: every failure inside
   [run_request] becomes a [Diag.t] in a [Srefused] response —
   exceptions never cross the service boundary, divergence is refusal,
   never a wrong answer. A refused response still carries whatever
   bytes the batch CLI would have emitted before failing (e.g. the
   assembly of a chain whose differential validation failed), so
   serve == batch holds byte-for-byte on stdout even for victims.

   The session type is abstract in the .mli and the cache handle never
   appears in any response: the only way cached state can influence an
   answer is through the content-addressed [Wcet.Memo] lookup, whose
   key (code, layout, fuel, spec, engine) is unchanged by this layer —
   a warm server hits the very entries a cold batch run wrote. *)

type session = {
  sv_state : Toolchain.session;
  sv_served : int Atomic.t;  (* requests answered (all transports) *)
}

let create ?(state = Toolchain.default_session) () : session =
  { sv_state = state; sv_served = Atomic.make 0 }

let served (s : session) : int = Atomic.get s.sv_served

let jobs (s : session) : int = s.sv_state.Toolchain.ss_jobs
let fail_fast (s : session) : bool = s.sv_state.Toolchain.ss_fail_fast
let stream (s : session) : Toolchain.stream_opts option =
  s.sv_state.Toolchain.ss_stream

let stats (s : session) : Wcet.Report.analysis_stats option =
  Option.map Wcet.Memo.stats s.sv_state.Toolchain.ss_cache

let store_dir (s : session) : string option =
  Option.bind s.sv_state.Toolchain.ss_cache Wcet.Memo.store_dir

let gc (s : session) : unit =
  Option.iter (fun m -> Wcet.Memo.gc m) s.sv_state.Toolchain.ss_cache

(* ---- the request executor -------------------------------------------- *)

(* Ported verbatim from fcc's per-file body: parse / typecheck /
   compile with per-stage containment, optional RTL dump, optional
   whole-chain differential validation. Byte-compatible with the
   pre-service fcc — including the partial artifacts of a failed
   request (RTL dumped before the failure, assembly of a chain whose
   validation failed). *)
let run_compile (config : Toolchain.config) ~(name : string)
    ~(dump_rtl : bool) ~(validate : bool) ~(exact : bool) (source : string) :
  Response.t =
  let rtl_dump = Buffer.create 64 and notes = Buffer.create 64 in
  let asm = ref "" and stats = ref [] in
  let ( let* ) = Result.bind in
  let outcome : (unit, Diag.t) Result.t =
    let* src =
      Diag.capture ~node:name ~stage:Diag.Parse (fun () ->
          Minic.Parser.parse_program source)
    in
    let* () =
      match Minic.Typecheck.check_program src with
      | Ok () -> Ok ()
      | Error e ->
        Error
          (Diag.make ~node:name ~stage:Diag.Typecheck
             (Minic.Typecheck.error_to_string e))
    in
    let* b =
      Diag.capture ~node:name ~stage:Diag.Compile (fun () ->
          if dump_rtl then begin
            let rtl, _ =
              Vcomp.Driver.compile_with_rtl ~options:config.Toolchain.passes
                src
            in
            List.iter
              (fun f -> Buffer.add_string rtl_dump (Vcomp.Rtl.dump_func f))
              rtl.Vcomp.Rtl.p_funcs
          end;
          Chain.build ~exact
            ~validate:(validate && config.Toolchain.compiler = Toolchain.Cvcomp)
            ~passes:config.Toolchain.passes config.Toolchain.compiler src)
    in
    asm := Target.Emit.program_to_string b.Chain.b_asm;
    stats := b.Chain.b_pass_stats;
    if validate then
      let* verdict =
        Diag.capture ~node:name ~stage:Diag.Sim (fun () ->
            Chain.validate_chain ?worlds:config.Toolchain.worlds
              ?sim_fuel:config.Toolchain.sim_fuel b)
      in
      match verdict with
      | Ok () ->
        Buffer.add_string notes
          "validation: machine code matches source semantics\n";
        Ok ()
      | Error msg ->
        Error
          (Diag.make ~node:name ~stage:Diag.Sim ("validation FAILED: " ^ msg))
    else Ok ()
  in
  { Response.rs_status =
      (match outcome with Ok () -> Response.Sok | Error _ -> Response.Srefused);
    rs_rtl = Buffer.contents rtl_dump;
    rs_output = !asm;
    rs_notes = Buffer.contents notes;
    rs_annot = None;
    rs_pass_stats = !stats;
    rs_diags = (match outcome with Ok () -> [] | Error d -> [ d ]) }

(* Ported verbatim from aitw's per-file body. The annotation file
   comes back as response *content* ([rs_annot]) — the daemon never
   touches the client's filesystem; the quoted path in the report text
   is request data. *)
let run_analyze (config : Toolchain.config) ~(name : string)
    ~(compare_all : bool) ~(simulate : bool) ~(annot : string option)
    (source : string) : Response.t =
  let out = Buffer.create 1024 in
  let annot_content = ref None in
  let ( let* ) = Result.bind in
  let outcome : (unit, Diag.t) Result.t =
    let* src =
      Diag.capture ~node:name ~stage:Diag.Parse (fun () ->
          Minic.Parser.parse_program source)
    in
    let* () =
      match Minic.Typecheck.check_program src with
      | Ok () -> Ok ()
      | Error e ->
        Error
          (Diag.make ~node:name ~stage:Diag.Typecheck
             (Minic.Typecheck.error_to_string e))
    in
    Diag.capture ~node:name ~stage:Diag.Wcet (fun () ->
        let observed_max (b : Chain.built) (seeds : int list) : int =
          List.fold_left
            (fun acc seed ->
               let w = Minic.Interp.seeded_world ~seed () in
               let rr = Chain.simulate ?fuel:config.Toolchain.sim_fuel b w in
               max acc rr.Target.Sim.rr_stats.Target.Sim.cycles)
            0 seeds
        in
        let analyze_one (comp : Toolchain.compiler) : unit =
          let b = Chain.build ~passes:config.Toolchain.passes comp src in
          (match annot with
           | Some path ->
             let entries =
               Wcet.Driver.annotations ?cache:config.Toolchain.cache
                 ~fuel:config.Toolchain.analysis_fuel
                 ~spec:b.Chain.b_spec ~engine:config.Toolchain.engine
                 b.Chain.b_asm b.Chain.b_layout
             in
             annot_content := Some (Wcet.Annotfile.render entries);
             Buffer.add_string out
               (Printf.sprintf "annotation file written to %s\n" path)
           | None -> ());
          let report = Chain.wcet ~config b in
          Buffer.add_string out
            (Printf.sprintf "--- %s ---\n" (Chain.compiler_description comp));
          Buffer.add_string out (Wcet.Report.to_string report);
          if simulate then begin
            let m = observed_max b [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
            Buffer.add_string out
              (Printf.sprintf
                 "  max observed      : %d cycles (8 random worlds)\n" m);
            Buffer.add_string out
              (Printf.sprintf "  overestimation    : %+.1f%%\n"
                 (100.0
                  *. (float_of_int report.Wcet.Report.rp_wcet /. float_of_int m
                      -. 1.0)))
          end;
          Buffer.add_char out '\n'
        in
        if compare_all then List.iter analyze_one Chain.all_compilers
        else analyze_one config.Toolchain.compiler)
  in
  { Response.rs_status =
      (match outcome with Ok () -> Response.Sok | Error _ -> Response.Srefused);
    rs_rtl = "";
    rs_output = Buffer.contents out;
    rs_notes = "";
    rs_annot = !annot_content;
    rs_pass_stats = [];
    rs_diags = (match outcome with Ok () -> [] | Error d -> [ d ]) }

(* The liveness probe's answer. Deliberately tiny and side-effect-free:
   supervisors poll it on a schedule, so it must not consume a request
   budget, perturb the served counter the accounting greps pin, or
   touch the toolchain at all. *)
let ping_output (s : session) : string =
  let cache =
    match s.sv_state.Toolchain.ss_cache with
    | None -> "none"
    | Some m ->
      (match Wcet.Memo.store_dir m with Some _ -> "disk" | None -> "memory")
  in
  Printf.sprintf "pong served=%d jobs=%d cache=%s\n" (served s) (jobs s) cache

let run_request (s : session) (rq : Request.t) : Response.t =
  match rq.rq_action with
  | Request.Ping -> Response.ok (ping_output s)
  | Request.Compile _ | Request.Analyze _ ->
    let config = Toolchain.of_session_request s.sv_state rq.rq_opts in
    let dispatch () : Response.t =
      match rq.rq_action with
      | Request.Compile { ac_dump_rtl } ->
        run_compile config ~name:rq.rq_name ~dump_rtl:ac_dump_rtl
          ~validate:rq.rq_validate ~exact:rq.rq_exact rq.rq_source
      | Request.Analyze { an_compare; an_simulate; an_annot } ->
        run_analyze config ~name:rq.rq_name ~compare_all:an_compare
          ~simulate:an_simulate ~annot:an_annot rq.rq_source
      | Request.Ping -> assert false
    in
    let resp =
      (* Deadline enforcement: the check rides the [Wcet.Fuel.tick]
         cancellation points, so expiry surfaces as [Fuel.Expired] —
         which [Diag.of_exn] renders as a Deadline refusal and which,
         by escaping the analysis BEFORE any memoization completes, is
         never cached (a deadline says when an answer stops being
         useful, not what it is). Compile-only requests have no
         fuel-guarded loops, so for them the deadline is checked on
         arrival — a bounded-latency promise for the analysis path,
         an admission check elsewhere. *)
      match rq.rq_deadline_ms with
      | None -> dispatch ()
      | Some ms when ms <= 0 ->
        Response.refused
          [ Diag.make ~node:rq.rq_name ~stage:Diag.Deadline
              "request deadline expired before work began (refusing to \
               answer late)" ]
      | Some ms ->
        let expiry = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
        Wcet.Fuel.with_deadline
          (fun () -> Unix.gettimeofday () > expiry)
          dispatch
    in
    Atomic.incr s.sv_served;
    resp

(* ---- the serve loops -------------------------------------------------- *)

let ignore_sigpipe () : unit =
  (* a peer that hangs up mid-write must surface as EPIPE (handled),
     not kill the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let action_name (rq : Request.t) : string =
  match rq.rq_action with
  | Request.Compile _ -> "compile"
  | Request.Analyze _ -> "analyze"
  | Request.Ping -> "ping"

(* Per-request accounting on stderr: the memory/disk/miss DELTA of this
   request, so "0 misses" on a repeat request is the warm-cache proof
   the acceptance criteria grep for. stdout never sees any of this. *)
let log_request (s : session) (rq : Request.t) (resp : Response.t)
    (before : Wcet.Report.analysis_stats option) : unit =
  let cache_note =
    match (before, stats s) with
    | Some b, Some a ->
      Printf.sprintf "%d memory hits, %d disk hits, %d misses"
        (a.Wcet.Report.st_hits - b.Wcet.Report.st_hits)
        (a.Wcet.Report.st_disk_hits - b.Wcet.Report.st_disk_hits)
        (a.Wcet.Report.st_misses - b.Wcet.Report.st_misses)
    | _ -> "no cache"
  in
  Printf.eprintf "fcd: req %d %s %s %s | %s\n%!" (served s) (action_name rq)
    rq.rq_name
    (Response.status_to_string resp.Response.rs_status)
    cache_note

type connection_end = Cend_eof | Cend_shutdown | Cend_budget

(* Serve one connection's frames until the peer says bye / hangs up,
   asks for daemon shutdown, or the request budget runs out. A
   malformed *frame* poisons the stream (err frame, hang up); a
   well-framed malformed *request* costs only that request (err frame,
   keep serving) — the service's containment contract at the protocol
   layer. Generic over the transport ([read]/[write]) so the channel
   path (--stdio, in-process tests) and the hardened fd path (the
   daemon's sockets) share one protocol loop — containment rules can't
   drift between transports. *)
let serve_io ?max_requests ?(log = true) (s : session)
    ~(read : unit -> Wire.frame) ~(write : kind:string -> string -> unit) :
  connection_end =
  let budget_left () =
    match max_requests with None -> true | Some m -> served s < m
  in
  let rec loop () : connection_end =
    if not (budget_left ()) then Cend_budget
    else
      match read () with
      | Wire.Eof -> Cend_eof
      | Wire.Bad msg ->
        (try write ~kind:"err" msg
         with Sys_error _ | Unix.Unix_error _ -> ());
        Cend_eof
      | Wire.Frame ("bye", _) -> Cend_eof
      | Wire.Frame ("shutdown", _) -> Cend_shutdown
      | Wire.Frame ("req", payload) ->
        (match Request.of_wire payload with
         | Error e ->
           write ~kind:"err" e;
           loop ()
         | Ok rq ->
           let before = stats s in
           let resp = run_request s rq in
           write ~kind:"resp" (Response.to_wire resp);
           if log then log_request s rq resp before;
           loop ())
      | Wire.Frame (kind, _) ->
        write ~kind:"err" (Printf.sprintf "unknown frame kind %S" kind);
        loop ()
  in
  loop ()

let serve_connection ?max_requests ?(log = true) (s : session)
    (ic : in_channel) (oc : out_channel) : connection_end =
  serve_io ?max_requests ~log s
    ~read:(fun () -> Wire.read_frame ic)
    ~write:(fun ~kind payload ->
        Wire.write_frame oc ~kind payload;
        flush oc)

(* Refuse to take over a socket path another live daemon is accepting
   on: a successful connect proves a peer is behind it, and unlinking
   would silently split the client population between two daemons with
   two caches. Anything else (ECONNREFUSED, ENOENT, ...) means the
   file is a stale leftover of a dead daemon — remove and rebind. *)
let claim_socket_path (path : string) : unit =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf
           "socket %s is in use by a live daemon (refusing to unlink it)"
           path);
    try Sys.remove path with Sys_error _ -> ()
  end

(* The daemon accept loop over a Unix-domain socket. [stop] is polled
   between connections and on EINTR, so a SIGTERM handler that sets a
   flag makes the loop wind down cleanly (close, unlink, cache GC at
   the caller). [max_requests] ends the loop after that many requests
   have been answered across all connections — how cram/CI get a
   deterministic daemon exit without PID gymnastics.

   Hardening (all per-connection, the daemon outlives everything):

   - per-connection isolation: ANY escape from a connection — protocol
     poison, a peer that died mid-write (EPIPE), an asynchronous
     exception landing mid-request — costs that connection only; the
     loop logs and keeps accepting.
   - per-read timeout ([read_timeout_ms]): a slow-loris peer that
     commits to a frame and then stalls is poisoned ([Bad]), it cannot
     park the daemon.
   - bounded pending budget: the listen socket is drained into a queue
     whenever it fires — including (via the reader's aux hook) while
     the daemon is blocked mid-read on another connection — and past
     [pending_budget] waiting connections, new arrivals are shed with
     a fast [busy] frame instead of queueing unboundedly. Shedding is
     load control as data: the client sees [Sbusy] and retries. *)
let serve_unix ?max_requests ?(log = true) ?(stop = fun () -> false)
    ?(pending_budget = 16) ?read_timeout_ms (s : session) (path : string) :
  unit =
  ignore_sigpipe ();
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with e -> (try Unix.close sock with Unix.Unix_error _ -> ()); raise e);
  Unix.listen sock (max 16 pending_budget);
  Unix.set_nonblock sock;
  if log then Printf.eprintf "fcd: listening on %s\n%!" path;
  let budget_left () =
    match max_requests with None -> true | Some m -> served s < m
  in
  let pending : Unix.file_descr Queue.t = Queue.create () in
  let drain_accept () =
    let continue_ = ref true in
    while !continue_ do
      match Unix.accept sock with
      | fd, _ ->
        if Queue.length pending < pending_budget then Queue.add fd pending
        else begin
          (try
             Wire.write_frame_fd fd ~kind:"busy"
               (Printf.sprintf "server saturated (%d pending connections)"
                  pending_budget)
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if log then
            Printf.eprintf "fcd: shed connection (pending budget %d)\n%!"
              pending_budget
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue_ := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let finished = ref false in
  while (not !finished) && (not (stop ())) && budget_left () do
    if Queue.is_empty pending then begin
      match Unix.select [ sock ] [] [] (-1.0) with
      | _ -> drain_accept ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* a signal landed (SIGTERM): re-check [stop] *)
        ()
    end;
    match Queue.take_opt pending with
    | None -> ()
    | Some fd ->
      let rd = Wire.fd_reader fd in
      Wire.set_read_timeout rd
        (Option.map (fun ms -> float_of_int ms /. 1000.0) read_timeout_ms);
      Wire.set_aux rd (Some (sock, drain_accept));
      let ended =
        try
          serve_io ?max_requests ~log s
            ~read:(fun () -> Wire.read_frame_fd rd)
            ~write:(fun ~kind payload -> Wire.write_frame_fd fd ~kind payload)
        with e ->
          (* per-connection isolation: whatever escaped, only this
             connection pays — the daemon keeps serving *)
          if log then
            Printf.eprintf "fcd: connection failed: %s (daemon continues)\n%!"
              (Printexc.to_string e);
          Cend_eof
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match ended with
       | Cend_shutdown | Cend_budget -> finished := true
       | Cend_eof -> ())
  done;
  Queue.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    pending;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ())

(* One connection over stdin/stdout — the shape cram tests drive with
   printf-authored frames, no socket lifecycle involved. *)
let serve_stdio ?max_requests ?(log = true) (s : session) : unit =
  ignore_sigpipe ();
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  ignore (serve_connection ?max_requests ~log s stdin stdout);
  flush stdout

(* ---- the client ------------------------------------------------------- *)

module Client = struct
  type conn = {
    c_fd : Unix.file_descr;
    c_rd : Wire.fd_reader;
  }

  let connect (path : string) : (conn, string) Result.t =
    ignore_sigpipe ();
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd -> Ok { c_fd = fd; c_rd = Wire.fd_reader fd }
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

  (* Every failure mode on the way to an answer — broken socket,
     refused frame, undecodable payload, a daemon that never answers
     within [timeout_s] — becomes an [Stransport] response naming the
     request's node: transport failure is data, never an exception,
     and never mistakable for an answer. A [busy] frame (the server
     shed us) becomes [Sbusy]: equally empty, equally retryable, but
     distinguishable — backoff policy may treat overload differently
     from a dead socket. *)
  let request ?timeout_s (c : conn) (rq : Request.t) : Response.t =
    let node = rq.Request.rq_name in
    Wire.set_read_timeout c.c_rd timeout_s;
    match
      Wire.write_frame_fd c.c_fd ~kind:"req" (Request.to_wire rq);
      Wire.read_frame_fd ~idle_timeout:true c.c_rd
    with
    | Wire.Frame ("resp", payload) ->
      (match Response.of_wire payload with
       | Ok r -> r
       | Error e ->
         Response.transport ~node ("undecodable response: " ^ e))
    | Wire.Frame ("busy", msg) ->
      Response.busy ~node ("daemon shed the connection: " ^ msg)
    | Wire.Frame ("err", msg) ->
      Response.transport ~node ("daemon refused the frame: " ^ msg)
    | Wire.Frame (kind, _) ->
      Response.transport ~node
        (Printf.sprintf "unexpected frame kind %S" kind)
    | Wire.Eof -> Response.transport ~node "connection closed by daemon"
    | Wire.Bad msg -> Response.transport ~node ("protocol error: " ^ msg)
    | exception Sys_error msg -> Response.transport ~node msg
    | exception Unix.Unix_error (e, _, _) ->
      Response.transport ~node (Unix.error_message e)
    | exception End_of_file ->
      Response.transport ~node "connection closed by daemon"

  let close (c : conn) : unit =
    (try Wire.write_frame_fd c.c_fd ~kind:"bye" ""
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()

  let shutdown (c : conn) : unit =
    (try Wire.write_frame_fd c.c_fd ~kind:"shutdown" ""
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
end

(* ---- child-process plumbing ------------------------------------------ *)

(* The one argv-quoting + spawn helper of the stack: bench's scale legs
   and the chaos server leg both build child invocations through these
   instead of hand-rolling quoting per call site. *)

let quote_argv (argv : string list) : string =
  String.concat " " (List.map Filename.quote argv)

(* Spawn [argv], read the single line of stdout the child contracts to
   produce, reap it. *)
let open_process_line (argv : string list) :
  string option * Unix.process_status =
  let ic = Unix.open_process_in (quote_argv argv) in
  let line = try Some (input_line ic) with End_of_file -> None in
  let status = Unix.close_process_in ic in
  (line, status)

let daemon_argv ~(exe : string) ~(socket : string) ?cache_dir ?gc_mb
    ?max_requests ?jobs ?pending_budget ?read_timeout_ms () : string list =
  (exe :: [ "--socket"; socket ])
  @ (match cache_dir with Some d -> [ "--cache-dir"; d ] | None -> [])
  @ (match gc_mb with Some m -> [ "--cache-gc-mb"; string_of_int m ] | None -> [])
  @ (match max_requests with
     | Some n -> [ "--max-requests"; string_of_int n ]
     | None -> [])
  @ (match jobs with Some j -> [ "-j"; string_of_int j ] | None -> [])
  @ (match pending_budget with
     | Some n -> [ "--pending-budget"; string_of_int n ]
     | None -> [])
  @ (match read_timeout_ms with
     | Some n -> [ "--read-timeout-ms"; string_of_int n ]
     | None -> [])

let spawn ?stderr_to (argv : string list) : int =
  let arr = Array.of_list argv in
  let stderr_fd = Option.value stderr_to ~default:Unix.stderr in
  Unix.create_process arr.(0) arr Unix.stdin Unix.stdout stderr_fd

let wait_for_path ?(timeout_s = 10.0) (path : string) : bool =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Sys.file_exists path then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* Locate a sibling binary (e.g. fcd) from inside the dune _build tree:
   test and bench executables live one directory over from bin/. *)
let sibling_exe (name : string) : string option =
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [ Filename.concat dir name;
      Filename.concat dir (Filename.concat ".." (Filename.concat "bin" name))
    ]
  in
  List.find_opt Sys.file_exists candidates
