(** The persistent compilation service: one warm session, many typed
    requests.

    {!run_request} is the single entry point of the toolchain — the
    batch CLIs (fcc/aitw) are one-request in-process clients, the
    daemon ([bin/fcd]) is an accept loop feeding it, and bench's serve
    study drives it over a real socket. A {!session} owns exactly the
    state that may outlive a request ({!Toolchain.session}: the warm
    {!Wcet.Memo}, the Domain pool width, the failure policy);
    everything request-scoped arrives inside the {!Request.t}, so
    requests cannot contaminate each other by construction.

    Containment: every failure inside {!run_request} becomes a
    {!Diag.t} in an [Srefused] response — exceptions never cross the
    service boundary, divergence is refusal, never a wrong answer. A
    refused response still carries the bytes the batch CLI would have
    emitted before failing, so serve == batch holds byte-for-byte on
    stdout even for failing requests.

    The session is abstract and the cache handle never appears in a
    response: the only way warm state can influence an answer is via
    the content-addressed {!Wcet.Memo} lookup, whose key is unchanged
    by this layer — a warm server hits the very entries a cold batch
    run wrote. *)

type session
(** Session-scoped service state; abstract — the {!Wcet.Memo.t} inside
    never escapes, only its {!stats} snapshot does. *)

val create : ?state:Toolchain.session -> unit -> session
(** Fresh session (default {!Toolchain.default_session}: one domain,
    no cache, collect-all failure policy). *)

val served : session -> int
(** Requests answered so far (all transports — in-process and wire). *)

val jobs : session -> int
val fail_fast : session -> bool
val stream : session -> Toolchain.stream_opts option
(** Projections of the session state for batch orchestration. *)

val stats : session -> Wcet.Report.analysis_stats option
(** Cache accounting snapshot ([None] without a cache). *)

val store_dir : session -> string option
(** The persistent store directory, when the session cache has one. *)

val gc : session -> unit
(** Apply the configured size budget to the session's store (no-op
    without a persistent cache); call once at shutdown. *)

val run_request : session -> Request.t -> Response.t
(** Execute one request against the session's warm state. Total: never
    raises; failures come back as [Srefused] with diagnostics. A
    deadline on the request ({!Request.t.rq_deadline_ms}) is enforced
    through the {!Wcet.Fuel.tick} cancellation points: expiry is an
    [Srefused] with a [Deadline] diag — never a partial or unsound
    answer, never cached. [Ping] requests answer with session stats,
    run no toolchain work, and do not count as served (supervisor
    probes must not consume a [max_requests] budget). *)

type connection_end =
  | Cend_eof       (** peer said bye or hung up *)
  | Cend_shutdown  (** peer asked the daemon to stop *)
  | Cend_budget    (** [max_requests] exhausted *)

val serve_connection :
  ?max_requests:int -> ?log:bool -> session -> in_channel -> out_channel ->
  connection_end
(** Serve one connection's frames. A malformed frame poisons the
    stream (err frame, hang up); a well-framed malformed request costs
    only that request (err frame, keep serving). With [log] (default
    true), each request logs one stderr line with its cache-stats
    delta — a warm repeat shows [0 misses]. *)

val serve_unix :
  ?max_requests:int -> ?log:bool -> ?stop:(unit -> bool) ->
  ?pending_budget:int -> ?read_timeout_ms:int -> session -> string -> unit
(** Accept loop on a Unix-domain socket at [path]. [stop] is re-polled
    between connections and when a signal interrupts the wait, so a
    SIGTERM handler that sets a flag shuts the loop down cleanly (the
    socket is closed and unlinked). [max_requests] ends the loop after
    that many requests across all connections — deterministic daemon
    exit for tests.

    Hardening: refuses to start if another live daemon is accepting on
    [path] (raises [Failure]; a stale socket file is removed and
    rebound). Any escape from one connection costs that connection
    only. [read_timeout_ms] bounds each blocking read once a peer has
    committed to a frame (slow-loris = poisoned stream, not a parked
    daemon). Beyond [pending_budget] (default 16) queued connections,
    new arrivals are shed with a fast [busy] frame ([Sbusy] at the
    client: empty, retryable); draining happens even while the daemon
    is blocked mid-read on another connection. *)

val serve_stdio : ?max_requests:int -> ?log:bool -> session -> unit
(** One connection over stdin/stdout ([fcd --stdio]). *)

(** Client side of the wire protocol. *)
module Client : sig
  type conn

  val connect : string -> (conn, string) Result.t
  (** Connect to the daemon socket at [path]. *)

  val request : ?timeout_s:float -> conn -> Request.t -> Response.t
  (** Round-trip one request. Total: every transport failure (broken
      socket, refused frame, undecodable payload, no answer within
      [timeout_s]) becomes an [Stransport] response naming the request
      — retryable data, never an exception, never mistakable for an
      answer. A server [busy] frame becomes [Sbusy] (equally empty and
      retryable, distinguishable for backoff policy). *)

  val close : conn -> unit
  (** Send bye (best effort) and close. *)

  val shutdown : conn -> unit
  (** Ask the daemon to stop, then close. *)
end

(** {2 Child-process plumbing}

    The one argv-quoting + spawn surface of the stack: bench's scale
    legs and the chaos server leg build child invocations through
    these instead of hand-rolling quoting per call site. *)

val quote_argv : string list -> string
(** Shell-quote an argv for [Unix.open_process_in]. *)

val open_process_line : string list -> string option * Unix.process_status
(** Spawn [argv], read the single stdout line the child contracts to
    produce, reap it. *)

val daemon_argv :
  exe:string -> socket:string -> ?cache_dir:string -> ?gc_mb:int ->
  ?max_requests:int -> ?jobs:int -> ?pending_budget:int ->
  ?read_timeout_ms:int -> unit -> string list
(** The canonical [fcd] invocation. *)

val spawn : ?stderr_to:Unix.file_descr -> string list -> int
(** [Unix.create_process] wrapper; returns the pid. *)

val wait_for_path : ?timeout_s:float -> string -> bool
(** Poll until [path] exists (the daemon's socket) or the timeout
    elapses. *)

val sibling_exe : string -> string option
(** Locate a sibling binary (e.g. [fcd.exe]) relative to
    [Sys.executable_name] — same directory, or [../bin/] inside the
    dune build tree. *)
