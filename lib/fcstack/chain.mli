(** The full development chain of the paper's Figure 1: specification
    through compilation to executable simulation and WCET analysis,
    with the verification activities around it. *)

type compiler = Toolchain.compiler =
  | Cdefault_o0  (** COTS baseline, certified pattern configuration *)
  | Cdefault_o1  (** COTS baseline, optimized without register allocation *)
  | Cdefault_o2  (** COTS baseline, fully optimized (FMA contraction on) *)
  | Cvcomp       (** verified-style optimizing compiler *)
(** Re-export of {!Toolchain.compiler} (the type lives there so
    {!Toolchain.config} can carry it). *)

val all_compilers : compiler list
val compiler_name : compiler -> string
val compiler_description : compiler -> string

val compiler_of_string : string -> (compiler, string) Result.t
  [@@ocaml.deprecated
    "use Fcstack.Request.compiler_of_string: the request surface is the \
     single home of the CLI name<->variant maps (round-trip pinned there)."]
(** Parse the CLI spelling ([o0]/[o1]/[o2]/[vcomp], or the long
    [default-O*] names); [Error] carries the usage message.
    @deprecated alias of {!Request.compiler_of_string}. *)

val pipeline_spec :
  ?exact:bool -> ?passes:Vcomp.Pass.options -> compiler -> string
(** Canonical spec of what produces the assembly under a configuration
    (e.g. ["o2+fma"], ["vcomp:constprop,cse,gvn,licm,deadcode"]);
    joined into the WCET analysis-cache content key. *)

val compile :
  ?exact:bool -> ?validate:bool -> ?passes:Vcomp.Pass.options -> compiler ->
  Minic.Ast.program -> Target.Asm.program
(** [exact] disables semantics-relaxing optimizations (default-O2's FMA
    contraction); [passes] selects the vcomp middle-end pipeline
    (default: everything on); [validate] turns on vcomp's per-pass
    validators. *)

type built = {
  b_source : Minic.Ast.program;
  b_asm : Target.Asm.program;
  b_layout : Target.Layout.t;
  b_compiler : compiler;
  b_spec : string;  (** {!pipeline_spec} of the producing configuration *)
  b_pass_stats : Vcomp.Pass.pass_stats list;
      (** per-pass middle-end stats; empty for COTS builds *)
}

val build :
  ?exact:bool -> ?validate:bool -> ?passes:Vcomp.Pass.options -> compiler ->
  Minic.Ast.program -> built

val simulate :
  ?cycles:int -> ?fuel:int -> built -> Minic.Interp.world ->
  Target.Sim.run_result
(** [fuel] bounds the executed machine steps ([Target.Sim]'s default
    otherwise).
    @raise Minic.Interp.Out_of_fuel when it runs out — a diverging
    program never hangs the pipeline. *)

val wcet : ?config:Toolchain.config -> built -> Wcet.Report.t
(** Static WCET of the built node's entry point. Only the config's
    [cache] and [analysis_fuel] fields are consulted (the node is
    already built); the cache shares finished analyses across nodes,
    configurations and — when persistent — process runs (identical
    results, fewer recomputations).
    @raise Wcet.Driver.Error when the analyzer refuses — including
    "analysis diverged" on an exhausted fuel budget (a refusal is
    never cached and never an unsound bound). *)

val validate_chain :
  ?cycles:int -> ?worlds:int -> ?seeds:int list -> ?sim_fuel:int -> built ->
  (unit, string) Result.t
(** Whole-chain differential validation: the machine code must produce
    the same observable behaviour as the source interpreter on every
    listed world. Batched: one compile+layout (the [built]) is checked
    against the whole battery. [~worlds:n] uses seeds 1..n and takes
    precedence over [~seeds]. Expected to fail for [Cdefault_o2] built
    without [~exact:true] — the paper's certification point. *)
