(* Deterministic chaos harness for the fault-isolated pipeline.

   The harness takes a fault-free workload, injects a seeded, exactly
   reproducible set of per-node faults, and re-runs the chain under a
   matrix of configurations (sequential/parallel, cacheless/shared
   cache/corrupted persistent store). It then *proves* the containment
   contract rather than eyeballing it:

     - every non-victim node's result is byte-identical to the
       fault-free reference run;
     - the diagnostics name exactly the victim nodes, each at the
       expected stage;
     - the exit code classifies the run (0 all ok / 1 partial / 2
       total failure);
     - a truncated persistent store causes ZERO failures — store
       corruption is a cache miss, never an error.

   Faults are injected at the mini-C source level (so every chain
   stage downstream is exercised for real) or through the per-node
   config (starved analysis fuel). All randomness flows from one
   [Random.State] seeded by the caller: the same seed always picks the
   same victims with the same faults. *)

type fault =
  | Fcorrupt_source  (* undeclared-variable write: fails typecheck *)
  | Frefusal         (* unbounded volatile-driven loop: analyzer refuses *)
  | Ffuel            (* starved analysis fuel: "analysis diverged" refusal *)

let fault_name = function
  | Fcorrupt_source -> "corrupt-source"
  | Frefusal -> "refusal"
  | Ffuel -> "fuel-exhaustion"

(* The stage at which each fault must surface as a diagnostic. *)
let expected_stage = function
  | Fcorrupt_source -> Diag.Typecheck
  | Frefusal | Ffuel -> Diag.Wcet

type plan = (int * fault) list  (* victim node index -> injected fault *)

(* Pick [victims] distinct node indices and a fault for each, entirely
   determined by [seed]. Victims cycle through all three fault kinds so
   every run exercises every containment path. *)
let make_plan ~(seed : int) ~(nodes : int) ~(victims : int) : plan =
  let rng = Random.State.make [| seed; nodes; victims |] in
  let victims = min victims (max 0 (nodes - 1)) in
  let chosen = Hashtbl.create 8 in
  let rec pick () =
    let i = Random.State.int rng nodes in
    if Hashtbl.mem chosen i then pick () else (Hashtbl.add chosen i (); i)
  in
  List.init victims (fun k ->
      let kinds = [| Fcorrupt_source; Frefusal; Ffuel |] in
      (pick (), kinds.(k mod Array.length kinds)))
  |> List.sort compare

(* ---- source-level fault injectors ----------------------------------- *)

let map_main (src : Minic.Ast.program)
    (f : Minic.Ast.func -> Minic.Ast.func) : Minic.Ast.program =
  { src with
    Minic.Ast.prog_funcs =
      List.map
        (fun fn ->
           if fn.Minic.Ast.fn_name = src.Minic.Ast.prog_main then f fn else fn)
        src.Minic.Ast.prog_funcs }

(* A write to a variable no scope declares: the typechecker rejects the
   program, exercising the earliest containment stage. *)
let corrupt_source (src : Minic.Ast.program) : Minic.Ast.program =
  map_main src (fun fn ->
      { fn with
        Minic.Ast.fn_body =
          Minic.Ast.Sseq
            ( fn.Minic.Ast.fn_body,
              Minic.Ast.Sassign ("__chaos_undeclared", Minic.Ast.Econst_int 0l)
            ) })

(* A loop whose trip count depends on a volatile acquisition: the value
   analysis knows nothing about the signal, so the bound analysis finds
   no loop bound and the analyzer *refuses* — a genuine aiT-style
   analysis failure, not a crash. The program still typechecks. *)
let inject_refusal (src : Minic.Ast.program) : Minic.Ast.program =
  let open Minic.Ast in
  let src =
    { src with
      prog_volatiles = ("__chaos_sig", Tint, Vol_in) :: src.prog_volatiles }
  in
  map_main src (fun fn ->
      let loop =
        Sseq
          ( Sassign ("__chaos_i", Evolatile "__chaos_sig"),
            Swhile
              ( Ebinop (Ocmp Cgt, Evar "__chaos_i", Econst_int 0l),
                Sassign
                  ("__chaos_i", Ebinop (Oadd, Evar "__chaos_i", Econst_int 1l))
              ) )
      in
      { fn with
        fn_locals = ("__chaos_i", Tint) :: fn.fn_locals;
        fn_body = Sseq (loop, fn.fn_body) })

let apply_fault (f : fault) (src : Minic.Ast.program) : Minic.Ast.program =
  match f with
  | Fcorrupt_source -> corrupt_source src
  | Frefusal -> inject_refusal src
  | Ffuel -> src  (* injected through the per-node config, not the source *)

(* ---- result canonicalization ---------------------------------------- *)

(* Canonical byte rendering of one node's full chain output; the
   containment contract is stated as string equality of these. *)
let render_result (r : Par.node_result) : string =
  Printf.sprintf "node %s\nwcet %d\nvalidation %s\n%s" r.Par.pn_name
    r.Par.pn_wcet
    (match r.Par.pn_validation with
     | Ok () -> "ok"
     | Error m -> "FAIL " ^ m)
    (Target.Emit.program_to_string r.Par.pn_asm)

(* ---- the harness ----------------------------------------------------- *)

type leg = {
  leg_name : string;
  leg_jobs : int;
  leg_cache : unit -> Wcet.Memo.t option;  (* fresh cache per leg *)
}

let run_leg ~(plan : plan) ~(base : Toolchain.config)
    (named : (string * Minic.Ast.program) list) (leg : leg) :
  (Par.node_result, Diag.t) Result.t list =
  let config =
    { base with Toolchain.jobs = leg.leg_jobs; cache = leg.leg_cache () }
  in
  Par.map_list ~jobs:config.Toolchain.jobs
    (fun (i, (name, src)) ->
       match List.assoc_opt i plan with
       | None -> Par.chain_node ~config name src
       | Some fault ->
         let config =
           if fault = Ffuel then
             { config with Toolchain.analysis_fuel = Wcet.Fuel.starved }
           else config
         in
         Par.chain_node ~config name (apply_fault fault src))
    (List.mapi (fun i n -> (i, n)) named)

(* The same faulted workload through the bounded-buffer stream: shards
   of [shard_size] nodes pulled lazily, chain outcomes folded back in
   global node order. Containment must be shape-blind — a fault in the
   middle of a shard may not disturb any other node, in its shard or
   out of it. *)
let run_leg_stream ~(plan : plan) ~(base : Toolchain.config)
    ~(shard_size : int) ~(jobs : int) ~(cache : Wcet.Memo.t option)
    (named : (string * Minic.Ast.program) list) :
  (Par.node_result, Diag.t) Result.t list =
  let config = { base with Toolchain.jobs; cache } in
  let arr = Array.of_list (List.mapi (fun i n -> (i, n)) named) in
  let producer k =
    let lo = k * shard_size in
    if lo >= Array.length arr then None
    else
      Some
        (Array.map
           (fun (i, (name, src)) () ->
              match List.assoc_opt i plan with
              | None -> Par.chain_node ~config name src
              | Some fault ->
                let config =
                  if fault = Ffuel then
                    { config with Toolchain.analysis_fuel = Wcet.Fuel.starved }
                  else config
                in
                Par.chain_node ~config name (apply_fault fault src))
           (Array.sub arr lo (min shard_size (Array.length arr - lo))))
  in
  List.rev
    (Par.run_stream ~jobs ~consumer:(fun acc _ r -> r :: acc) ~init:[]
       ~producer ())

let has_sub (s : string) (sub : string) : bool =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Check one leg's outcomes against the reference renderings and the
   plan; returns the violations (empty = contract holds). *)
let check_leg ~(plan : plan) ~(reference : string array)
    (named : (string * Minic.Ast.program) list) (leg_name : string)
    (outcomes : (Par.node_result, Diag.t) Result.t list) : string list =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := (leg_name ^ ": " ^ s) :: !problems) fmt in
  List.iteri
    (fun i outcome ->
       let name = fst (List.nth named i) in
       match List.assoc_opt i plan, outcome with
       | None, Ok r ->
         if render_result r <> reference.(i) then
           bad "survivor %s diverged from the fault-free run" name
       | None, Error d ->
         bad "non-victim %s failed: %s" name (Diag.to_string d)
       | Some fault, Error d ->
         if d.Diag.d_node <> name then
           bad "diagnostic for %s names node %s" name d.Diag.d_node;
         if d.Diag.d_stage <> expected_stage fault then
           bad "%s fault on %s surfaced at stage %s, expected %s"
             (fault_name fault) name
             (Diag.stage_name d.Diag.d_stage)
             (Diag.stage_name (expected_stage fault));
         if fault = Ffuel && not (has_sub d.Diag.d_message "diverged") then
           bad "fuel exhaustion on %s not reported as divergence: %s" name
             d.Diag.d_message
       | Some fault, Ok _ ->
         bad "%s fault on %s went undetected" (fault_name fault) name)
    outcomes;
  let failed = List.length (Diag.errors_of outcomes) in
  let code = Diag.exit_code ~total:(List.length outcomes) ~failed in
  let expected_code = if plan = [] then 0 else 1 in
  if code <> expected_code then
    bad "exit code %d, expected %d (%d/%d failed)" code expected_code failed
      (List.length outcomes);
  List.rev !problems

(* Truncate every entry of a persistent store to half its size —
   simulating a crash mid-write or disk corruption. Recursive: store
   entries may live in subdirectories. *)
let rec truncate_store (dir : string) : unit =
  Array.iter
    (fun f ->
       let path = Filename.concat dir f in
       if Sys.is_directory path then truncate_store path
       else begin
         let ic = open_in_bin path in
         let len = in_channel_length ic in
         let keep = len / 2 in
         let buf = really_input_string ic keep in
         close_in ic;
         let oc = open_out_bin path in
         output_string oc buf;
         close_out oc
       end)
    (Sys.readdir dir)

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else Sys.remove path

(* ---- server leg: SIGKILL the daemon mid-request-stream --------------- *)

(* Drive a real fcd child process through the workload as analyze
   requests and SIGKILL it under two seeded requests. The contract:
   the in-flight request surfaces as a transport failure (never a
   wrong answer), the retry against a restarted daemon — same socket,
   same disk store — succeeds, the store survives the kill
   uncorrupted (the restarted daemon serves from it), every final
   response is byte-identical to a cold in-process batch run, and the
   final daemon still shuts down cleanly. *)
let server_leg ~(seed : int) ~(engine : Wcet.Report.engine)
    ~(fcd_exe : string) (named : (string * Minic.Ast.program) list) :
  string list =
  let problems = ref [] in
  let leg = "fcd-kill-restart" in
  let bad fmt =
    Printf.ksprintf (fun s -> problems := (leg ^ ": " ^ s) :: !problems) fmt
  in
  let opts = Toolchain.request_opts ~engine () in
  let requests =
    List.map
      (fun (name, src) ->
         Request.make ~name
           ~action:
             (Request.Analyze
                { an_compare = false; an_simulate = false; an_annot = None })
           ~opts
           (Minic.Pp.program_to_string src))
      named
  in
  (* the cold batch reference: a fresh cacheless in-process session *)
  let reference =
    let s = Service.create () in
    List.map
      (fun rq -> (Service.run_request s rq).Response.rs_output)
      requests
  in
  let n = List.length requests in
  (* seeded choice of the two requests the daemon dies under *)
  let rng = Random.State.make [| seed; 0xfcd |] in
  let kill_at =
    if n < 2 then []
    else
      let a = Random.State.int rng n in
      let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
      [ a; b ]
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fcchaos-srv-%d-%d" seed (Random.State.bits rng))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  let socket = Filename.concat dir "fcd.sock" in
  let store = Filename.concat dir "store" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid = ref (-1) in
  let start () =
    pid :=
      Service.spawn ~stderr_to:devnull
        (Service.daemon_argv ~exe:fcd_exe ~socket ~cache_dir:store ());
    if not (Service.wait_for_path socket) then
      bad "daemon socket never appeared"
  in
  let kill () =
    if !pid > 0 then begin
      (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] !pid) with Unix.Unix_error _ -> ());
      pid := -1;
      (* SIGKILL never unlinks the socket; remove the stale path so the
         restart's [wait_for_path] waits for the NEW daemon's bind
         instead of racing connect against it *)
      (try Sys.remove socket with Sys_error _ -> ())
    end
  in
  start ();
  let conn = ref (Service.Client.connect socket) in
  let request (rq : Request.t) : Response.t =
    match !conn with
    | Error msg -> Response.transport ~node:rq.Request.rq_name msg
    | Ok c -> Service.Client.request c rq
  in
  let reconnect () =
    (match !conn with Ok c -> Service.Client.close c | Error _ -> ());
    conn := Service.Client.connect socket
  in
  let outputs =
    List.mapi
      (fun i rq ->
         if List.mem i kill_at then begin
           kill ();
           let r = request rq in
           if r.Response.rs_status <> Response.Stransport then
             bad "request %s against a killed daemon returned %s, expected \
                  a transport failure"
               rq.Request.rq_name
               (Response.status_to_string r.Response.rs_status);
           start ();
           reconnect ();
           let r = request rq in
           if r.Response.rs_status <> Response.Sok then
             bad "retry of %s after restart not ok (%s)" rq.Request.rq_name
               (Response.status_to_string r.Response.rs_status);
           r.Response.rs_output
         end
         else begin
           let r = request rq in
           if r.Response.rs_status <> Response.Sok then
             bad "request %s not ok (%s)" rq.Request.rq_name
               (Response.status_to_string r.Response.rs_status);
           r.Response.rs_output
         end)
      requests
  in
  (* clean shutdown of the surviving daemon: shutdown frame, exit 0.
     If the connection was lost, fall back to SIGTERM (also a clean
     path: fcd's handler winds the accept loop down to exit 0), and
     never block forever on the reap — a daemon that ignores both is a
     containment failure to report, not a harness hang. *)
  (match !conn with
   | Ok c -> Service.Client.shutdown c
   | Error _ ->
     bad "connection to the surviving daemon was lost at shutdown time";
     if !pid > 0 then
       (try Unix.kill !pid Sys.sigterm with Unix.Unix_error _ -> ()));
  (if !pid > 0 then
     let deadline = Unix.gettimeofday () +. 10.0 in
     let rec reap () =
       match Unix.waitpid [ Unix.WNOHANG ] !pid with
       | 0, _ ->
         if Unix.gettimeofday () > deadline then begin
           bad "daemon did not exit within 10s of shutdown; killed";
           (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
           ignore (Unix.waitpid [] !pid)
         end
         else begin
           Unix.sleepf 0.02;
           reap ()
         end
       | _, Unix.WEXITED 0 -> ()
       | _, _ -> bad "daemon did not exit cleanly on the shutdown frame"
     in
     try reap () with Unix.Unix_error _ -> ());
  (try Unix.close devnull with Unix.Unix_error _ -> ());
  List.iteri
    (fun i out ->
       if out <> List.nth reference i then
         bad "response for %s diverged from the cold batch reference"
           (fst (List.nth named i)))
    outputs;
  rm_rf dir;
  List.rev !problems

(* ---- hostile-input legs: the service's wire-level fault surface ------ *)

(* Spawn a daemon for one hostile leg, run [f] against it, then shut it
   down cleanly and *check the exit status*: nothing a hostile peer did
   during the leg may leak into the daemon's exit — a daemon that dies
   nonzero from a contained connection failure is itself a containment
   violation. [restart] is for legs that SIGKILL the daemon: it reaps
   the corpse, removes the stale socket and starts a fresh daemon on
   the same path. *)
let with_fcd ~(leg : string) ~(fcd_exe : string) ?pending_budget
    ?read_timeout_ms
    (f :
       bad:(string -> unit) -> socket:string -> pid:int ref ->
       restart:(unit -> unit) -> unit) : string list =
  (* raw hostile writes against a daemon that already hung up must
     surface as EPIPE, not kill the harness *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let problems = ref [] in
  let bad s = problems := (leg ^ ": " ^ s) :: !problems in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fcchaos-%s-%d" leg (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  let socket = Filename.concat dir "fcd.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid = ref (-1) in
  let start () =
    pid :=
      Service.spawn ~stderr_to:devnull
        (Service.daemon_argv ~exe:fcd_exe ~socket ?pending_budget
           ?read_timeout_ms ());
    if not (Service.wait_for_path socket) then
      bad "daemon socket never appeared"
  in
  let restart () =
    (* only legal after the old daemon was killed: reap the corpse so
       the harness leaks no zombies, clear the stale socket so
       [wait_for_path] waits for the NEW daemon's bind *)
    if !pid > 0 then begin
      (try ignore (Unix.waitpid [] !pid) with Unix.Unix_error _ -> ());
      pid := -1
    end;
    (try Sys.remove socket with Sys_error _ -> ());
    start ()
  in
  start ();
  (try f ~bad ~socket ~pid ~restart
   with e -> bad ("leg raised: " ^ Printexc.to_string e));
  (* clean shutdown, and the daemon must exit 0 *)
  (match Service.Client.connect socket with
   | Ok c -> Service.Client.shutdown c
   | Error msg ->
     bad ("cannot connect for shutdown: " ^ msg);
     if !pid > 0 then
       (try Unix.kill !pid Sys.sigterm with Unix.Unix_error _ -> ()));
  (if !pid > 0 then begin
     let deadline = Unix.gettimeofday () +. 10.0 in
     let rec reap () =
       match Unix.waitpid [ Unix.WNOHANG ] !pid with
       | 0, _ ->
         if Unix.gettimeofday () > deadline then begin
           bad "daemon did not exit within 10s of shutdown; killed";
           (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
           ignore (Unix.waitpid [] !pid)
         end
         else begin
           Unix.sleepf 0.02;
           reap ()
         end
       | _, Unix.WEXITED 0 -> ()
       | _, Unix.WEXITED n ->
         bad (Printf.sprintf "daemon exited %d after the leg" n)
       | _, _ -> bad "daemon died on a signal after the leg"
     in
     try reap () with Unix.Unix_error _ -> ()
   end);
  (try Unix.close devnull with Unix.Unix_error _ -> ());
  rm_rf dir;
  List.rev !problems

let raw_connect (socket : string) : Unix.file_descr option =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let raw_send (fd : Unix.file_descr) (s : string) : bool =
  let b = Bytes.of_string s in
  match
    let pos = ref 0 in
    while !pos < Bytes.length b do
      pos := !pos + Unix.write fd b !pos (Bytes.length b - !pos)
    done
  with
  | () -> true
  | exception Unix.Unix_error _ -> false

let raw_reader ?(timeout_s = 10.0) (fd : Unix.file_descr) : Wire.fd_reader =
  let rd = Wire.fd_reader fd in
  Wire.set_read_timeout rd (Some timeout_s);
  rd

let frame_desc : Wire.frame -> string = function
  | Wire.Frame (k, _) -> Printf.sprintf "a %S frame" k
  | Wire.Eof -> "EOF"
  | Wire.Bad m -> Printf.sprintf "protocol error %S" m

let raw_close (fd : Unix.file_descr) : unit =
  try Unix.close fd with Unix.Unix_error _ -> ()

(* One (request, cold-batch expectation) the hostile legs replay to
   prove the daemon still answers correctly after the hostility. *)
type probe = { pr_name : string; pr_rq : Request.t; pr_expect : string }

let client_probe ~(bad : string -> unit) ~(socket : string) ~(note : string)
    (p : probe) : unit =
  match Service.Client.connect socket with
  | Error msg -> bad (Printf.sprintf "%s: connect failed: %s" note msg)
  | Ok c ->
    let r = Service.Client.request ~timeout_s:60.0 c p.pr_rq in
    Service.Client.close c;
    if r.Response.rs_status <> Response.Sok then
      bad
        (Printf.sprintf "%s: request %s not ok (%s)" note p.pr_name
           (Response.status_to_string r.Response.rs_status))
    else if r.Response.rs_output <> p.pr_expect then
      bad
        (Printf.sprintf "%s: response for %s diverged from the cold batch \
                         reference" note p.pr_name)

(* Hostile frames: an oversized length prefix must be refused before
   any allocation and poison the stream; a torn frame (header promises
   more payload than ever arrives) must cost only its own connection;
   well-framed garbage must cost only that request — and after all
   three the same daemon still serves a real request byte-identically. *)
let oversized_frame_leg ~(fcd_exe : string) (p : probe) : string list =
  with_fcd ~leg:"oversized-frame" ~fcd_exe
    (fun ~bad ~socket ~pid:_ ~restart:_ ->
       (* (a) hostile length prefix, far beyond any legal frame *)
       (match raw_connect socket with
        | None -> bad "connect for the oversized prefix failed"
        | Some fd ->
          let rd = raw_reader fd in
          if raw_send fd "fcd1 req 999999999999\n" then begin
            (match Wire.read_frame_fd ~idle_timeout:true rd with
             | Wire.Frame ("err", _) -> ()
             | f ->
               bad
                 (Printf.sprintf
                    "oversized prefix answered with %s, expected an err frame"
                    (frame_desc f)));
            match Wire.read_frame_fd ~idle_timeout:true rd with
            | Wire.Eof -> ()
            | f ->
              bad
                (Printf.sprintf
                   "stream not poisoned after an oversized prefix (%s)"
                   (frame_desc f))
          end
          else bad "could not send the oversized prefix";
          raw_close fd);
       (* (b) torn frame: promise 100 payload bytes, send 10, hang up *)
       (match raw_connect socket with
        | None -> bad "connect for the torn frame failed"
        | Some fd ->
          let rd = raw_reader fd in
          if raw_send fd "fcd1 req 100\n0123456789" then begin
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            match Wire.read_frame_fd ~idle_timeout:true rd with
            | Wire.Frame ("err", msg) ->
              if not (has_sub msg "truncated") then
                bad ("torn frame refused with unexpected message: " ^ msg)
            | f ->
              bad
                (Printf.sprintf
                   "torn frame answered with %s, expected an err frame"
                   (frame_desc f))
          end
          else bad "could not send the torn frame";
          raw_close fd);
       (* (c) well-framed garbage costs the request, not the
          connection: the same connection then serves a real request *)
       (match raw_connect socket with
        | None -> bad "connect for the garbage frame failed"
        | Some fd ->
          let rd = raw_reader ~timeout_s:60.0 fd in
          if raw_send fd "fcd1 req 9\ngarbage!!" then begin
            (match Wire.read_frame_fd ~idle_timeout:true rd with
             | Wire.Frame ("err", _) -> ()
             | f ->
               bad
                 (Printf.sprintf
                    "garbage request answered with %s, expected an err frame"
                    (frame_desc f)));
            match
              Wire.write_frame_fd fd ~kind:"req" (Request.to_wire p.pr_rq)
            with
            | () ->
              (match Wire.read_frame_fd ~idle_timeout:true rd with
               | Wire.Frame ("resp", payload) ->
                 (match Response.of_wire payload with
                  | Ok r ->
                    if r.Response.rs_output <> p.pr_expect then
                      bad "response after garbage diverged from the cold \
                           batch reference"
                  | Error e -> bad ("undecodable response after garbage: " ^ e))
               | f ->
                 bad
                   (Printf.sprintf
                      "connection poisoned by well-framed garbage (%s)"
                      (frame_desc f)))
            | exception Unix.Unix_error _ ->
              bad "connection closed by well-framed garbage"
          end
          else bad "could not send the garbage frame";
          raw_close fd);
       (* (d) a fresh connection still gets the right answer *)
       client_probe ~bad ~socket ~note:"after hostile frames" p)

(* Slow-loris: a peer that commits to a frame and then stalls past the
   daemon's read timeout is poisoned (err frame naming the timeout,
   hang up) — and the daemon immediately serves the next client. *)
let slow_loris_leg ~(fcd_exe : string) (p : probe) : string list =
  with_fcd ~leg:"slow-loris" ~fcd_exe ~read_timeout_ms:250
    (fun ~bad ~socket ~pid:_ ~restart:_ ->
       (match raw_connect socket with
        | None -> bad "connect failed"
        | Some fd ->
          let rd = raw_reader fd in
          (* half a header, then silence: past --read-timeout-ms the
             daemon must poison the stream, not wait us out *)
          if raw_send fd "fcd1 re" then begin
            match Wire.read_frame_fd ~idle_timeout:true rd with
            | Wire.Frame ("err", msg) ->
              if not (has_sub msg "timed out") then
                bad ("stalled sender refused with unexpected message: " ^ msg)
            | f ->
              bad
                (Printf.sprintf
                   "stalled sender answered with %s, expected an err frame"
                   (frame_desc f))
          end
          else bad "could not send the partial header";
          raw_close fd);
       client_probe ~bad ~socket ~note:"after the slow-loris peer" p)

(* SIGSTOP'd daemon: the client's deadline fires (a transport failure,
   never a hang, never a wrong answer); after SIGCONT the retry policy
   reconnects and succeeds byte-identically. *)
let sigstop_deadline_leg ~(fcd_exe : string) (p : probe) : string list =
  with_fcd ~leg:"sigstop-deadline" ~fcd_exe
    (fun ~bad ~socket ~pid ~restart:_ ->
       match Service.Client.connect socket with
       | Error msg -> bad ("connect failed: " ^ msg)
       | Ok c ->
         (try Unix.kill !pid Sys.sigstop with Unix.Unix_error _ -> ());
         let r =
           Service.Client.request ~timeout_s:0.5 c
             { p.pr_rq with Request.rq_deadline_ms = Some 400 }
         in
         if r.Response.rs_status <> Response.Stransport then
           bad
             (Printf.sprintf
                "request against a stopped daemon returned %s, expected a \
                 transport failure"
                (Response.status_to_string r.Response.rs_status));
         Service.Client.close c;
         (try Unix.kill !pid Sys.sigcont with Unix.Unix_error _ -> ());
         (* the retry policy's reconnect-per-attempt path succeeds *)
         let r, attempts =
           Retry.run
             ~policy:{ Retry.default with Retry.r_base_ms = 20; r_seed = 1 }
             (fun ~attempt:_ ->
                match Service.Client.connect socket with
                | Error msg -> Response.transport ~node:p.pr_name msg
                | Ok c ->
                  let r = Service.Client.request ~timeout_s:60.0 c p.pr_rq in
                  Service.Client.close c;
                  r)
         in
         if r.Response.rs_status <> Response.Sok then
           bad
             (Printf.sprintf "retry after SIGCONT not ok (%s, %d attempts)"
                (Response.status_to_string r.Response.rs_status)
                attempts)
         else if r.Response.rs_output <> p.pr_expect then
           bad "retried response diverged from the cold batch reference")

(* ENOSPC-style store write failure, in-process: every 2-hex fanout
   slot of the store directory is pre-created as a regular FILE, so
   every entry write fails (ENOTDIR under the slot) and every load
   misses — injected persistent-store write failure without filling a
   disk. The contract: the run behaves exactly like an uncached one —
   zero failures, reference-identical bytes, silent miss. *)
let enospc_store_leg ~(base : Toolchain.config) ~(reference : string array)
    (named : (string * Minic.Ast.program) list) : string list =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fcchaos-enospc-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  let hex = "0123456789abcdef" in
  String.iter
    (fun a ->
       String.iter
         (fun b ->
            let oc =
              open_out (Filename.concat dir (Printf.sprintf "%c%c" a b))
            in
            close_out oc)
         hex)
    hex;
  let cache = Wcet.Memo.create ~dir () in
  let outcomes =
    Par.map_list ~jobs:2
      (fun (name, src) ->
         Par.chain_node
           ~config:{ base with Toolchain.cache = Some cache }
           name src)
      named
  in
  let ps = check_leg ~plan:[] ~reference named "enospc-store" outcomes in
  rm_rf dir;
  ps

(* Overload + crash: with a pending budget of 1, park one connection in
   service and one in the queue so the next arrival is shed with a fast
   busy frame; the shed request is retried to success once the load
   drains. Then SIGKILL the daemon and retry the next request through a
   restart. Every answered byte matches the cold batch reference. *)
let kill_under_load_leg ~(fcd_exe : string) (work : probe list) : string list =
  with_fcd ~leg:"kill-under-load" ~fcd_exe ~pending_budget:1
    (fun ~bad ~socket ~pid ~restart ->
       match work with
       | [] -> ()
       | p0 :: rest ->
         (* phase 1: saturate. [load_a] is meant to be in service
            (blocked on its first header byte — idle is legal) while
            [load_b] fills the budget-1 pending queue. But if the
            daemon is still mid-startup both loads sit in the listen
            backlog and get drained in ONE accept batch, shedding
            [load_b] itself — a later arrival would then be queued,
            not shed. So saturation is OBSERVED, not assumed: probe
            with raw connections until one reads a busy frame. A probe
            that times out instead was queued, and (closed or not) it
            keeps holding the queue slot until the serve loop reaps
            it, so the next probe is deterministically shed. *)
         let load_a = raw_connect socket in
         Unix.sleepf 0.1;
         let load_b = raw_connect socket in
         Unix.sleepf 0.1;
         if load_a = None || load_b = None then
           bad "load connections failed";
         let drained = ref false in
         let drain_load () =
           if not !drained then begin
             drained := true;
             List.iter (Option.iter raw_close) [ load_a; load_b ]
           end
         in
         let saw_busy = ref false in
         let tries = ref 0 in
         while (not !saw_busy) && !tries < 20 do
           incr tries;
           (match raw_connect socket with
            | None -> Unix.sleepf 0.05
            | Some fd ->
              let rd = raw_reader ~timeout_s:2.0 fd in
              (match Wire.read_frame_fd ~idle_timeout:true rd with
               | Wire.Frame ("busy", _) -> saw_busy := true
               | _ -> ());
              raw_close fd)
         done;
         if not !saw_busy then
           bad "saturated daemon never shed a request with a busy frame";
         let r, attempts =
           Retry.run
             ~policy:
               { Retry.default with Retry.r_attempts = 5; r_base_ms = 20;
                 r_seed = 2 }
             ~on_retry:(fun ~attempt:_ ~backoff_ms:_ (_ : Response.t) ->
                 drain_load ())
             (fun ~attempt:_ ->
                match Service.Client.connect socket with
                | Error msg -> Response.transport ~node:p0.pr_name msg
                | Ok c ->
                  let r = Service.Client.request ~timeout_s:60.0 c p0.pr_rq in
                  Service.Client.close c;
                  r)
         in
         if r.Response.rs_status <> Response.Sok then
           bad
             (Printf.sprintf
                "shed request not retried to success (%s after %d attempts)"
                (Response.status_to_string r.Response.rs_status)
                attempts)
         else if r.Response.rs_output <> p0.pr_expect then
           bad "retried shed response diverged from the cold batch reference";
         drain_load ();
         (* phase 2: SIGKILL mid-stream, retry through a restart *)
         match rest with
         | [] -> ()
         | p1 :: _ ->
           (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
           let restarted = ref false in
           let r, _ =
             Retry.run
               ~policy:
                 { Retry.default with Retry.r_attempts = 5; r_base_ms = 20;
                   r_seed = 3 }
               ~on_retry:(fun ~attempt:_ ~backoff_ms:_ _ ->
                   if not !restarted then begin
                     restarted := true;
                     restart ()
                   end)
               (fun ~attempt:_ ->
                  match Service.Client.connect socket with
                  | Error msg -> Response.transport ~node:p1.pr_name msg
                  | Ok c ->
                    let r = Service.Client.request ~timeout_s:60.0 c p1.pr_rq in
                    Service.Client.close c;
                    r)
           in
           if not !restarted then
             bad "request against the killed daemon unexpectedly succeeded";
           if r.Response.rs_status <> Response.Sok then
             bad
               (Printf.sprintf "retry through the restart not ok (%s)"
                  (Response.status_to_string r.Response.rs_status))
           else if r.Response.rs_output <> p1.pr_expect then
             bad "post-restart response diverged from the cold batch \
                  reference")

type report = {
  ch_nodes : int;
  ch_victims : (string * fault) list;
  ch_legs : string list;
  ch_problems : string list;  (* empty = every containment check held *)
}

(* Run the whole chaos matrix. [victims] faults are injected into a
   [nodes]-node workload; each leg re-runs the faulted workload under a
   different (jobs x cache) configuration and is checked against the
   fault-free reference. The final leg corrupts a warmed persistent
   store and re-runs *fault-free*: corruption must be invisible.

   [engine] applies to the reference and every leg alike, so the
   containment contract (survivors byte-identical to the reference) is
   exercised per engine — including OMT fuel exhaustion surfacing as a
   contained "analysis diverged" refusal under [Ffuel]. *)
let run ?(seed = 20260806) ?(nodes = 14) ?(victims = 3)
    ?(engine = Wcet.Report.Ipet) ?fcd_exe () : report =
  let program = Scade.Workload.flight_program ~nodes ~seed:2026 in
  let named =
    List.map
      (fun ((n : Scade.Symbol.node), src) -> (n.Scade.Symbol.n_name, src))
      program
  in
  let nodes = List.length named in
  let plan = make_plan ~seed ~nodes ~victims in
  let base = Toolchain.with_engine engine Toolchain.default in
  (* fault-free reference: sequential, cacheless *)
  let reference =
    Array.of_list
      (List.map
         (fun (name, src) ->
            match Par.chain_node ~config:base name src with
            | Ok r -> render_result r
            | Error d ->
              failwith ("chaos: fault-free reference failed: "
                        ^ Diag.to_string d))
         named)
  in
  let legs =
    [ { leg_name = "j1/nocache"; leg_jobs = 1; leg_cache = (fun () -> None) };
      { leg_name = "j4/nocache"; leg_jobs = 4; leg_cache = (fun () -> None) };
      { leg_name = "j1/memcache"; leg_jobs = 1;
        leg_cache = (fun () -> Some (Wcet.Memo.create ())) };
      { leg_name = "j4/memcache"; leg_jobs = 4;
        leg_cache = (fun () -> Some (Wcet.Memo.create ())) } ]
  in
  let problems =
    List.concat_map
      (fun leg ->
         check_leg ~plan ~reference named leg.leg_name
           (run_leg ~plan ~base named leg))
      legs
  in
  (* streaming leg: same faulted workload pulled shard by shard through
     the bounded-buffer stream, mid-shard faults and all *)
  let stream_leg_name = "j4/stream/memcache" in
  let stream_problems =
    check_leg ~plan ~reference named stream_leg_name
      (run_leg_stream ~plan ~base ~shard_size:5 ~jobs:4
         ~cache:(Some (Wcet.Memo.create ())) named)
  in
  (* persistent-store corruption leg: warm a store, truncate every
     entry mid-byte, re-run fault-free — corruption is a miss, so the
     run must have zero failures and reference-identical results *)
  let store_problems =
    let rng = Random.State.make [| seed |] in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fcchaos-%d-%d" seed (Random.State.bits rng))
    in
    rm_rf dir;  (* a previous run may have left the deterministic name *)
    Sys.mkdir dir 0o755;
    let warm = Wcet.Memo.create ~dir () in
    let _ =
      Par.map_list ~jobs:2
        (fun (name, src) ->
           Par.chain_node ~config:{ base with Toolchain.cache = Some warm }
             name src)
        named
    in
    truncate_store dir;
    let cold = Wcet.Memo.create ~dir () in
    let outcomes =
      Par.map_list ~jobs:2
        (fun (name, src) ->
           Par.chain_node ~config:{ base with Toolchain.cache = Some cold }
             name src)
        named
    in
    let ps =
      check_leg ~plan:[] ~reference named "truncated-store" outcomes
    in
    rm_rf dir;
    ps
  in
  (* injected persistent-store WRITE failure (the truncated-store leg
     above injects read corruption): always in-process, always runs *)
  let enospc_problems = enospc_store_leg ~base ~reference named in
  (* server legs (need the real daemon binary): kill/restart fcd
     mid-request-stream, plus the hostile-input matrix — oversized and
     torn frames, a stalled sender, a SIGSTOP'd daemon under a client
     deadline, and overload shedding with a SIGKILL under load *)
  let server_legs, server_problems =
    match fcd_exe with
    | None -> ([], [])
    | Some exe ->
      let probes =
        let opts = Toolchain.request_opts ~engine () in
        let s = Service.create () in
        List.filteri (fun i _ -> i < 2) named
        |> List.map (fun (name, src) ->
            let rq =
              Request.make ~name
                ~action:
                  (Request.Analyze
                     { an_compare = false;
                       an_simulate = false;
                       an_annot = None })
                ~opts
                (Minic.Pp.program_to_string src)
            in
            { pr_name = name;
              pr_rq = rq;
              pr_expect = (Service.run_request s rq).Response.rs_output })
      in
      let nth_probe i = List.nth probes (i mod List.length probes) in
      ( [ "fcd-kill-restart"; "oversized-frame"; "slow-loris";
          "sigstop-deadline"; "kill-under-load" ],
        server_leg ~seed ~engine ~fcd_exe:exe named
        @ (if probes = [] then []
           else
             oversized_frame_leg ~fcd_exe:exe (nth_probe 0)
             @ slow_loris_leg ~fcd_exe:exe (nth_probe 0)
             @ sigstop_deadline_leg ~fcd_exe:exe (nth_probe 1)
             @ kill_under_load_leg ~fcd_exe:exe probes) )
  in
  { ch_nodes = nodes;
    ch_victims =
      List.map (fun (i, f) -> (fst (List.nth named i), f)) plan;
    ch_legs =
      List.map (fun l -> l.leg_name) legs
      @ [ stream_leg_name; "truncated-store"; "enospc-store" ]
      @ server_legs;
    ch_problems =
      problems @ stream_problems @ store_problems @ enospc_problems
      @ server_problems }

let print_report (ppf : Format.formatter) (r : report) : unit =
  Format.fprintf ppf "@[<v>chaos: %d nodes, %d faults injected@,"
    r.ch_nodes (List.length r.ch_victims);
  List.iter
    (fun (name, f) ->
       Format.fprintf ppf "  victim %-10s %s@," name (fault_name f))
    r.ch_victims;
  Format.fprintf ppf "  legs: %s@," (String.concat ", " r.ch_legs);
  (match r.ch_problems with
   | [] -> Format.fprintf ppf "chaos: all containment checks held@,"
   | ps ->
     List.iter (fun p -> Format.fprintf ppf "chaos VIOLATION: %s@," p) ps);
  Format.fprintf ppf "@]"
