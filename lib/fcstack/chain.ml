(* The full development chain of the paper's Figure 1:

     SCADE-like spec --ACG--> C code --compiler--> assembly
        --link/load--> {executable simulation, WCET analysis}

   plus the verification activities around it: per-pass translation
   validation inside the verified-style compiler, and whole-chain
   differential validation (source interpreter vs machine simulator)
   for every compiler. *)

(* The configuration type lives in [Toolchain] (so [Toolchain.config]
   can carry one); re-exported here as an equation, so [Chain.Cvcomp]
   and friends keep working. *)
type compiler = Toolchain.compiler =
  | Cdefault_o0   (* COTS baseline, certified pattern configuration *)
  | Cdefault_o1   (* COTS baseline, optimized without register allocation *)
  | Cdefault_o2   (* COTS baseline, fully optimized (incl. FMA contraction) *)
  | Cvcomp        (* verified-style optimizing compiler (CompCert stand-in) *)

let all_compilers = [ Cdefault_o0; Cdefault_o1; Cdefault_o2; Cvcomp ]

let compiler_name (c : compiler) : string =
  match c with
  | Cdefault_o0 -> "default-O0"
  | Cdefault_o1 -> "default-O1"
  | Cdefault_o2 -> "default-O2"
  | Cvcomp -> "vcomp"

(* Deprecated alias (see chain.mli): the name maps live on the request
   surface now. *)
let compiler_of_string : string -> (compiler, string) Result.t =
  Request.compiler_of_string

let compiler_description (c : compiler) : string =
  match c with
  | Cdefault_o0 -> "default compiler, no optimization (patterns)"
  | Cdefault_o1 -> "default compiler, optimized w/o register allocation"
  | Cdefault_o2 -> "default compiler, fully optimized"
  | Cvcomp -> "CompCert-style verified compiler"

(* The canonical pipeline spec of a configuration: what produced the
   assembly. Joined into the WCET analysis-cache content key by [wcet]
   — two pipelines can produce different assembly for the same
   source, and even identical assembly must not share entries across
   toolchain configurations silently. *)
let pipeline_spec ?(exact = false)
    ?(passes = Vcomp.Pass.default_options) (c : compiler) : string =
  match c with
  | Cdefault_o0 -> "o0"
  | Cdefault_o1 -> "o1"
  | Cdefault_o2 -> if exact then "o2" else "o2+fma"
  | Cvcomp -> "vcomp:" ^ Vcomp.Pass.spec passes

(* Compile a mini-C program under a configuration. [exact] forces
   bit-exact source semantics (disables the default-O2 FMA contraction);
   [passes] selects the vcomp middle-end pipeline, whose per-pass
   validators are controlled by [validate]. *)
let compile ?(exact = false) ?(validate = false)
    ?(passes = Vcomp.Pass.default_options) (c : compiler)
    (src : Minic.Ast.program) : Target.Asm.program =
  match c with
  | Cdefault_o0 -> Cotsc.Driver.compile ~level:Cotsc.Driver.Onone src
  | Cdefault_o1 -> Cotsc.Driver.compile ~level:Cotsc.Driver.Onoregalloc src
  | Cdefault_o2 ->
    Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:(not exact) src
  | Cvcomp ->
    Vcomp.Driver.compile ~options:{ passes with opt_validate = validate } src

(* A fully built node: source, assembly, layout, plus the pipeline spec
   that produced it and (for vcomp) the per-pass stats. *)
type built = {
  b_source : Minic.Ast.program;
  b_asm : Target.Asm.program;
  b_layout : Target.Layout.t;
  b_compiler : compiler;
  b_spec : string;
  b_pass_stats : Vcomp.Pass.pass_stats list; (* empty for COTS builds *)
}

let build ?exact ?validate ?(passes = Vcomp.Pass.default_options)
    (c : compiler) (src : Minic.Ast.program) : built =
  let asm, stats =
    match c with
    | Cvcomp ->
      let validate = Option.value ~default:false validate in
      let _, asm, stats =
        Vcomp.Driver.compile_full
          ~options:{ passes with opt_validate = validate } src
      in
      (asm, stats)
    | Cdefault_o0 | Cdefault_o1 | Cdefault_o2 ->
      (compile ?exact ?validate ~passes c src, [])
  in
  { b_source = src;
    b_asm = asm;
    b_layout = Target.Layout.build src asm;
    b_compiler = c;
    b_spec = pipeline_spec ?exact ~passes c;
    b_pass_stats = stats }

(* Run the built node on the simulator. [fuel] bounds the executed
   steps (Target.Sim's default otherwise): a diverging program raises
   Minic.Interp.Out_of_fuel instead of hanging the pipeline. *)
let simulate ?cycles ?fuel (b : built) (w : Minic.Interp.world) :
  Target.Sim.run_result =
  Target.Sim.run ?cycles ?fuel ~source:b.b_source b.b_asm b.b_layout w []

(* Static WCET of the built node's entry point. The config's cache
   shares finished per-function analyses across nodes, compiler
   configurations and — when persistent — process runs
   (content-addressed: hits require identical code, placement, fuel
   budgets and engine, so results never change — see Wcet.Memo). Only
   the [cache], [analysis_fuel] and [engine] fields are consulted: the
   node is already built. *)
let wcet ?(config = Toolchain.default) (b : built) : Wcet.Report.t =
  Wcet.Driver.analyze ?cache:config.Toolchain.cache
    ~fuel:config.Toolchain.analysis_fuel ~spec:b.b_spec
    ~engine:config.Toolchain.engine b.b_asm b.b_layout

(* Whole-chain differential validation: the machine code must produce
   the same observable behaviour as the source interpreter on a battery
   of worlds (several cycles each, to exercise the state-carrying
   symbols). For the fully-optimized default configuration with FMA
   contraction this is expected to FAIL on some inputs — the
   certification point of the paper — so callers choose [exact].

   Validation is batched: one compile+layout ([b], built once by the
   caller) is exercised against the whole battery, so widening the
   battery costs only interpreter/simulator runs. [~worlds:n] is the
   batch form — seeds 1..n — used by the qcheck trace-equivalence
   harness; [~seeds] picks the battery explicitly. *)
let validate_chain ?(cycles = 4) ?worlds ?(seeds = [ 1; 2; 3 ]) ?sim_fuel
    (b : built) : (unit, string) Result.t =
  let seeds =
    match worlds with
    | Some n -> List.init n (fun i -> i + 1)
    | None -> seeds
  in
  let check (seed : int) : (unit, string) Result.t =
    let w () = Minic.Interp.seeded_world ~seed () in
    let ri = Minic.Interp.run_cycles b.b_source (w ()) ~cycles in
    let rs = (simulate ~cycles ?fuel:sim_fuel b (w ())).Target.Sim.rr_result in
    if Minic.Interp.result_equal ri rs then Ok ()
    else
      Error
        (Format.asprintf
           "trace mismatch (%s, seed %d):@.source: %a@.machine: %a"
           (compiler_name b.b_compiler) seed Minic.Interp.pp_result ri
           Minic.Interp.pp_result rs)
  in
  List.fold_left
    (fun acc seed -> match acc with Ok () -> check seed | Error _ -> acc)
    (Ok ()) seeds
