(* The unified toolchain configuration.

   PR 3 left the public surface with ?cache/?jobs/?worlds optionals
   scattered across Chain, Par and Experiments, and every new knob
   multiplied across that surface. [config] consolidates them: one
   record, built once (typically from CLI flags), threaded as a single
   ?config through the chain entry points.

   The compiler *type* lives here rather than in [Chain] so that the
   config can name a configuration without a dependency cycle; [Chain]
   re-exports it as an equation ([type compiler = Toolchain.compiler =
   ...]), so [Chain.Cvcomp] et al. keep working. *)

type compiler =
  | Cdefault_o0   (* COTS baseline, certified pattern configuration *)
  | Cdefault_o1   (* COTS baseline, optimized without register allocation *)
  | Cdefault_o2   (* COTS baseline, fully optimized (incl. FMA contraction) *)
  | Cvcomp        (* verified-style optimizing compiler (CompCert stand-in) *)

(* Streaming execution shape (Par.run_stream): the workload is pulled
   shard by shard instead of materialized up front, bounding resident
   memory at [jobs + so_lookahead] shards of [so_shard_size] nodes.
   Output stays byte-identical to the batch path — the stream option
   picks an execution shape, never a semantics. *)
type stream_opts = {
  so_shard_size : int;  (* nodes per produced shard, >= 1 *)
  so_lookahead : int;   (* resident shards beyond [jobs], >= 0 *)
}

let default_stream : stream_opts =
  { so_shard_size = Scade.Workload.default_shard_size; so_lookahead = 1 }

type config = {
  jobs : int;
  (* WCET-analysis cache, possibly persistent (Wcet.Memo.create ?dir).
     The handle lives here — in an explicit record the caller created —
     never in a module-level global (the PR-2/PR-3 repo rule). *)
  cache : Wcet.Memo.t option;
  (* differential-validation battery size (None: Chain's default seeds) *)
  worlds : int option;
  compiler : compiler;
  (* abort the whole run on the first failing node (the pre-diagnostic
     behaviour: the exception escapes and Par rethrows the
     smallest-indexed one) instead of containing it as a Diag *)
  fail_fast : bool;
  (* simulator step budget per run (None: Target.Sim's default) *)
  sim_fuel : int option;
  (* iteration budgets for every fixpoint/solver loop of the analyzer;
     part of the analysis-cache content key (see Wcet.Fuel) *)
  analysis_fuel : Wcet.Fuel.t;
  (* vcomp middle-end pass selection (-O / --passes); its canonical
     spec string joins the analysis-cache content key, since two
     pipelines can produce different assembly for the same source *)
  passes : Vcomp.Pass.options;
  (* WCET path-analysis engine (--engine): structural IPET (default),
     the OMT engine, or both cross-checked per node; part of the
     analysis-cache content key *)
  engine : Wcet.Report.engine;
  (* streaming execution shape (--stream): pull the workload shard by
     shard through Par.run_stream with bounded resident shards, instead
     of materializing it up front. None = batch. Output is
     byte-identical either way. *)
  stream : stream_opts option;
}

let default : config =
  { jobs = 1;
    cache = None;
    worlds = None;
    compiler = Cvcomp;
    fail_fast = false;
    sim_fuel = None;
    analysis_fuel = Wcet.Fuel.default;
    passes = Vcomp.Pass.default_options;
    engine = Wcet.Report.Ipet;
    stream = None }

let config ?(jobs = 1) ?cache ?worlds ?(compiler = Cvcomp)
    ?(fail_fast = false) ?sim_fuel ?(analysis_fuel = Wcet.Fuel.default)
    ?(passes = Vcomp.Pass.default_options) ?(engine = Wcet.Report.Ipet)
    ?stream () : config =
  { jobs = max 1 jobs;
    cache;
    worlds;
    compiler;
    fail_fast;
    sim_fuel;
    analysis_fuel;
    passes;
    engine;
    stream }

let with_jobs (jobs : int) (c : config) : config = { c with jobs = max 1 jobs }
let with_cache (cache : Wcet.Memo.t option) (c : config) : config =
  { c with cache }
let with_worlds (worlds : int option) (c : config) : config = { c with worlds }
let with_compiler (compiler : compiler) (c : config) : config =
  { c with compiler }
let with_fail_fast (fail_fast : bool) (c : config) : config =
  { c with fail_fast }
let with_sim_fuel (sim_fuel : int option) (c : config) : config =
  { c with sim_fuel }
let with_analysis_fuel (analysis_fuel : Wcet.Fuel.t) (c : config) : config =
  { c with analysis_fuel }
let with_passes (passes : Vcomp.Pass.options) (c : config) : config =
  { c with passes }
let with_engine (engine : Wcet.Report.engine) (c : config) : config =
  { c with engine }
let with_stream (stream : stream_opts option) (c : config) : config =
  { c with stream }
