(* The unified toolchain configuration.

   PR 3 left the public surface with ?cache/?jobs/?worlds optionals
   scattered across Chain, Par and Experiments, and every new knob
   multiplied across that surface. [config] consolidates them: one
   record, built once (typically from CLI flags), threaded as a single
   ?config through the chain entry points.

   The compiler *type* lives here rather than in [Chain] so that the
   config can name a configuration without a dependency cycle; [Chain]
   re-exports it as an equation ([type compiler = Toolchain.compiler =
   ...]), so [Chain.Cvcomp] et al. keep working. *)

type compiler =
  | Cdefault_o0   (* COTS baseline, certified pattern configuration *)
  | Cdefault_o1   (* COTS baseline, optimized without register allocation *)
  | Cdefault_o2   (* COTS baseline, fully optimized (incl. FMA contraction) *)
  | Cvcomp        (* verified-style optimizing compiler (CompCert stand-in) *)

(* Streaming execution shape (Par.run_stream): the workload is pulled
   shard by shard instead of materialized up front, bounding resident
   memory at [jobs + so_lookahead] shards of [so_shard_size] nodes.
   Output stays byte-identical to the batch path — the stream option
   picks an execution shape, never a semantics. *)
type stream_opts = {
  so_shard_size : int;  (* nodes per produced shard, >= 1 *)
  so_lookahead : int;   (* resident shards beyond [jobs], >= 0 *)
}

let default_stream : stream_opts =
  { so_shard_size = Scade.Workload.default_shard_size; so_lookahead = 1 }

type config = {
  jobs : int;
  (* WCET-analysis cache, possibly persistent (Wcet.Memo.create ?dir).
     The handle lives here — in an explicit record the caller created —
     never in a module-level global (the PR-2/PR-3 repo rule). *)
  cache : Wcet.Memo.t option;
  (* differential-validation battery size (None: Chain's default seeds) *)
  worlds : int option;
  compiler : compiler;
  (* abort the whole run on the first failing node (the pre-diagnostic
     behaviour: the exception escapes and Par rethrows the
     smallest-indexed one) instead of containing it as a Diag *)
  fail_fast : bool;
  (* simulator step budget per run (None: Target.Sim's default) *)
  sim_fuel : int option;
  (* iteration budgets for every fixpoint/solver loop of the analyzer;
     part of the analysis-cache content key (see Wcet.Fuel) *)
  analysis_fuel : Wcet.Fuel.t;
  (* vcomp middle-end pass selection (-O / --passes); its canonical
     spec string joins the analysis-cache content key, since two
     pipelines can produce different assembly for the same source *)
  passes : Vcomp.Pass.options;
  (* WCET path-analysis engine (--engine): structural IPET (default),
     the OMT engine, or both cross-checked per node; part of the
     analysis-cache content key *)
  engine : Wcet.Report.engine;
  (* streaming execution shape (--stream): pull the workload shard by
     shard through Par.run_stream with bounded resident shards, instead
     of materializing it up front. None = batch. Output is
     byte-identical either way. *)
  stream : stream_opts option;
}

let default : config =
  { jobs = 1;
    cache = None;
    worlds = None;
    compiler = Cvcomp;
    fail_fast = false;
    sim_fuel = None;
    analysis_fuel = Wcet.Fuel.default;
    passes = Vcomp.Pass.default_options;
    engine = Wcet.Report.Ipet;
    stream = None }

(* ---- the session / request split (PR 9) ---------------------------

   A persistent server holds state that outlives any one request (the
   warm cache, the Domain pool width, the failure policy) and must
   never let one request's options leak into the next (compiler,
   passes, engine, worlds, fuel — everything that changes what a
   single answer means). The two records below make that split a type:
   [Service.run_request] combines one [session] with one
   [request_opts] per request, so per-request state cannot be shared
   by construction. The combined [config] record remains the internal
   currency of [Chain]/[Par]/[Experiments]; [of_session_request] is
   its one remaining constructor. *)

type session = {
  ss_jobs : int;                   (* Domains for per-node fan-out *)
  ss_cache : Wcet.Memo.t option;   (* ONE warm cache for the whole session *)
  ss_fail_fast : bool;             (* batch failure policy *)
  ss_stream : stream_opts option;  (* batch execution shape *)
}

type request_opts = {
  ro_compiler : compiler;
  ro_worlds : int option;          (* validation battery size *)
  ro_sim_fuel : int option;        (* simulator step budget *)
  ro_analysis_fuel : Wcet.Fuel.t;  (* part of the analysis-cache key *)
  ro_passes : Vcomp.Pass.options;  (* part of the analysis-cache key *)
  ro_engine : Wcet.Report.engine;  (* part of the analysis-cache key *)
}

let default_session : session =
  { ss_jobs = 1; ss_cache = None; ss_fail_fast = false; ss_stream = None }

let default_request : request_opts =
  { ro_compiler = Cvcomp;
    ro_worlds = None;
    ro_sim_fuel = None;
    ro_analysis_fuel = Wcet.Fuel.default;
    ro_passes = Vcomp.Pass.default_options;
    ro_engine = Wcet.Report.Ipet }

let session ?(jobs = 1) ?cache ?(fail_fast = false) ?stream () : session =
  { ss_jobs = max 1 jobs; ss_cache = cache; ss_fail_fast = fail_fast;
    ss_stream = stream }

let request_opts ?(compiler = Cvcomp) ?worlds ?sim_fuel
    ?(analysis_fuel = Wcet.Fuel.default)
    ?(passes = Vcomp.Pass.default_options) ?(engine = Wcet.Report.Ipet) () :
  request_opts =
  { ro_compiler = compiler;
    ro_worlds = worlds;
    ro_sim_fuel = sim_fuel;
    ro_analysis_fuel = analysis_fuel;
    ro_passes = passes;
    ro_engine = engine }

let of_session_request (s : session) (r : request_opts) : config =
  { jobs = s.ss_jobs;
    cache = s.ss_cache;
    fail_fast = s.ss_fail_fast;
    stream = s.ss_stream;
    compiler = r.ro_compiler;
    worlds = r.ro_worlds;
    sim_fuel = r.ro_sim_fuel;
    analysis_fuel = r.ro_analysis_fuel;
    passes = r.ro_passes;
    engine = r.ro_engine }

let session_of_config (c : config) : session =
  { ss_jobs = c.jobs; ss_cache = c.cache; ss_fail_fast = c.fail_fast;
    ss_stream = c.stream }

let request_of_config (c : config) : request_opts =
  { ro_compiler = c.compiler;
    ro_worlds = c.worlds;
    ro_sim_fuel = c.sim_fuel;
    ro_analysis_fuel = c.analysis_fuel;
    ro_passes = c.passes;
    ro_engine = c.engine }

let config ?(jobs = 1) ?cache ?worlds ?(compiler = Cvcomp)
    ?(fail_fast = false) ?sim_fuel ?(analysis_fuel = Wcet.Fuel.default)
    ?(passes = Vcomp.Pass.default_options) ?(engine = Wcet.Report.Ipet)
    ?stream () : config =
  of_session_request
    (session ~jobs ?cache ~fail_fast ?stream ())
    (request_opts ~compiler ?worlds ?sim_fuel ~analysis_fuel ~passes ~engine
       ())

let with_jobs (jobs : int) (c : config) : config = { c with jobs = max 1 jobs }
let with_cache (cache : Wcet.Memo.t option) (c : config) : config =
  { c with cache }
let with_worlds (worlds : int option) (c : config) : config = { c with worlds }
let with_compiler (compiler : compiler) (c : config) : config =
  { c with compiler }
let with_fail_fast (fail_fast : bool) (c : config) : config =
  { c with fail_fast }
let with_sim_fuel (sim_fuel : int option) (c : config) : config =
  { c with sim_fuel }
let with_analysis_fuel (analysis_fuel : Wcet.Fuel.t) (c : config) : config =
  { c with analysis_fuel }
let with_passes (passes : Vcomp.Pass.options) (c : config) : config =
  { c with passes }
let with_engine (engine : Wcet.Report.engine) (c : config) : config =
  { c with engine }
let with_stream (stream : stream_opts option) (c : config) : config =
  { c with stream }
