(** Reproduction drivers for the paper's evaluation artifacts (see the
    per-experiment index in DESIGN.md). Printers emit the same
    rows/series the paper reports; `bench/main.exe` drives them. *)

type per_compiler = {
  pc_compiler : Chain.compiler;
  pc_wcet : int;
  pc_size : int;
  pc_reads : int;   (** executed data-cache reads, one control cycle *)
  pc_writes : int;
}

type node_result = {
  nr_name : string;
  nr_per : per_compiler list;
}

type workload_results = {
  wr_nodes : node_result list;   (** successfully measured nodes *)
  wr_diags : Diag.t list;        (** one per failed node, input order *)
  wr_pass_stats : Vcomp.Pass.pass_stats list;
      (** vcomp middle-end stats aggregated over the nodes, wall times
          zeroed so sequential and parallel runs compare equal *)
}

val find_pc : node_result -> Chain.compiler -> per_compiler

(** Build and measure every node under every configuration.
    [config.jobs > 1] fans the per-node work out over that many domains
    ({!Par}); results are merged by node index and identical to the
    sequential run. [config.cache] shares WCET analyses across nodes,
    configurations and (when persistent) process runs ({!Wcet.Memo});
    it changes wall clock, never results. [config.compiler] is ignored:
    the workload measures all four.

    A failing node becomes a {!Diag.t} in [wr_diags] and is dropped
    from [wr_nodes]; the surviving rows are identical to a run without
    the faulty node. With [config.fail_fast] the original exception
    escapes instead. *)
val run_workload :
  ?nodes:int -> ?seed:int -> ?config:Toolchain.config -> unit ->
  workload_results
val total : workload_results -> Chain.compiler -> (per_compiler -> int) -> int

val print_table1 : Format.formatter -> workload_results -> unit
(** Paper Table 1: code size and cache accesses vs non-optimized. *)

val print_figure2 : Format.formatter -> workload_results -> unit
(** Paper Figure 2: per-node WCET + mean variations. *)

val listing_node : Scade.Symbol.node
val print_listings : Format.formatter -> unit
(** Paper Listings 1 and 2. *)

type annot_demo = {
  ad_wcet_with : int;
  ad_annot_comment : string;
  ad_failure_without : string;
}

val run_annot_demo : unit -> annot_demo
val print_annot_demo : Format.formatter -> unit
(** Paper section 3.4 end to end. *)

val print_ablation :
  Format.formatter -> ?nodes:int -> ?seed:int -> ?config:Toolchain.config ->
  unit -> unit
val print_overestimation :
  Format.formatter -> ?nodes:int -> ?seed:int -> ?config:Toolchain.config ->
  unit -> unit
(** Both tables contain per-node failures like {!run_workload}: failed
    nodes drop out of the rows/sums and are summarized on stderr. The
    ablation table includes GVN-CSE and LICM rows with code-size
    columns; every variant analyzes under its own pipeline spec.

    Under [config.engine = Both] the overestimation table additionally
    prints a per-row omt/ipet bound ratio column and an engines
    aggregate (total IPET vs OMT cycles, strictly-tighter count) —
    the driver has cross-checked omt <= ipet on every analysis. *)

val print_gvn_licm_json :
  Format.formatter -> ?nodes:int -> ?seed:int -> ?config:Toolchain.config ->
  unit -> unit
(** Machine-readable GVN/LICM deltas (code size + total WCET bound for
    the local-CSE pipeline, +GVN, +GVN+LICM) as pure JSON — the
    published BENCH_gvn_licm.json. *)

val map_workload :
  config:Toolchain.config -> nodes:int -> seed:int ->
  (Scade.Symbol.node * Minic.Ast.program -> 'a) -> 'a list
(** The one workload traversal behind every measurement driver: [f]
    over each generated node, results in node order. Batch by default
    ([Par.map_list] over the materialized program); under
    [config.stream] the workload is pulled shard by shard through
    [Par.run_stream] with generation inside the producer — identical
    results, bounded resident shards. *)

val print_engines_json :
  Format.formatter -> ?nodes:int -> ?seed:int -> ?config:Toolchain.config ->
  unit -> unit
(** Machine-readable engine comparison: per compiler configuration,
    summed IPET vs OMT bounds over the workload, strictly-tighter node
    count, and the largest per-node saving. Forces [engine = Both], so
    the driver checks the differential oracle omt <= ipet on every
    analysis (a violation is a refusal, summarized on stderr — never
    in the JSON). Pure JSON — the published BENCH_engines.json. *)

(** {1 Scaling study (BENCH_scale.json)} *)

type scale_leg = {
  sc_nodes : int;
  sc_failures : int;      (** contained per-node failures *)
  sc_wcet_total : int;    (** determinism witness: equal across every
                              leg of one (nodes, seed, compiler) point,
                              whatever the jobs/cache/shape *)
  sc_wall_s : float;
  sc_peak_rss_kb : int;   (** sampled VmRSS maximum (0: no procfs) *)
  sc_throughput : float;  (** nodes per second *)
  sc_stats : Wcet.Report.analysis_stats option;  (** [None]: no cache *)
}

val run_scale_leg :
  ?nodes:int -> ?seed:int -> ?config:Toolchain.config -> unit -> scale_leg
(** One leg of the scaling study: compile + analyze the whole workload
    in the execution shape the config picks (batch or [config.stream],
    [config.jobs] domains, [config.cache]), while a watcher Domain
    samples peak RSS from [/proc/self/status]. No simulation or
    validation — this measures the service-shaped hot path. Defaults:
    2500 nodes, seed 2026. *)

val scale_leg_json :
  ?label:string -> config:Toolchain.config -> scale_leg -> string
(** The leg as one JSON object (no trailing newline); [label] names it
    within the study. *)
