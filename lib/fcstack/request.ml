(* The typed request surface of the compilation service.

   One [Request.t] is everything a client may ask for in one shot:
   source text, an action (compile or analyze, with the per-action
   knobs), and the request-scoped options — compiler, passes, engine,
   worlds, fuel ([Toolchain.request_opts]); session state (cache,
   jobs) deliberately cannot be expressed here. This module is also
   the one home of the CLI name<->variant maps for compilers and
   engines: [Chain.compiler_of_string] is deprecated in its favor, and
   [of_string (to_string c) = Ok c] is qcheck-pinned
   (test/test_service.ml). *)

type compiler = Toolchain.compiler =
  | Cdefault_o0
  | Cdefault_o1
  | Cdefault_o2
  | Cvcomp

(* Canonical CLI spelling; [of_string] also accepts the long
   [default-O*] names for compatibility with existing scripts. *)
let compiler_to_string (c : compiler) : string =
  match c with
  | Cdefault_o0 -> "o0"
  | Cdefault_o1 -> "o1"
  | Cdefault_o2 -> "o2"
  | Cvcomp -> "vcomp"

let compiler_of_string (s : string) : (compiler, string) Result.t =
  match s with
  | "o0" | "default-O0" -> Ok Cdefault_o0
  | "o1" | "default-O1" -> Ok Cdefault_o1
  | "o2" | "default-O2" -> Ok Cdefault_o2
  | "vcomp" -> Ok Cvcomp
  | _ -> Error (Printf.sprintf "unknown compiler %S (o0|o1|o2|vcomp)" s)

let engine_to_string : Wcet.Report.engine -> string = Wcet.Report.engine_name

let engine_of_string : string -> (Wcet.Report.engine, string) Result.t =
  Wcet.Report.engine_of_string

type action =
  | Compile of {
      ac_dump_rtl : bool;  (* prepend the optimized RTL dump (vcomp) *)
    }
  | Analyze of {
      an_compare : bool;         (* all four configurations *)
      an_simulate : bool;        (* worst observed cycles next to bound *)
      an_annot : string option;  (* annotation-file path; the path is
                                    quoted in the report text, so it is
                                    part of the request *)
    }
  | Ping  (* liveness probe: answers with session stats, runs no
             toolchain work and consumes no request budget *)

type t = {
  rq_name : string;    (* node/file name diagnostics will carry *)
  rq_source : string;  (* mini-C source text — requests carry text,
                          never paths: the daemon has no business in
                          the client's filesystem *)
  rq_action : action;
  rq_opts : Toolchain.request_opts;
  rq_validate : bool;  (* whole-chain differential validation (fcc) *)
  rq_exact : bool;     (* disable semantics-relaxing optimizations *)
  rq_deadline_ms : int option;
  (* wall-clock budget the server may spend before answering: past it,
     the request is refused with a Deadline diag — refusal, never a
     partial or unsound answer, and never cached. Deliberately NOT in
     [rq_opts]: the deadline is about when an answer stops being
     useful, not what the answer is, so it must stay out of every
     cache key. *)
}

let make ?(name = "<request>") ?(action = Compile { ac_dump_rtl = false })
    ?(opts = Toolchain.default_request) ?(validate = false) ?(exact = false)
    ?deadline_ms (source : string) : t =
  { rq_name = name;
    rq_source = source;
    rq_action = action;
    rq_opts = opts;
    rq_validate = validate;
    rq_exact = exact;
    rq_deadline_ms = deadline_ms }

(* ---- wire codec ------------------------------------------------------ *)

let bool_bit (b : bool) : string = if b then "1" else "0"

let bit_bool (s : string) : (bool, string) Result.t =
  match s with
  | "1" -> Ok true
  | "0" -> Ok false
  | s -> Error (Printf.sprintf "bad boolean %S (0|1)" s)

(* Pass options travel field-by-field (NOT via [Pass.spec], which
   canonicalizes away [opt_validate] and non-default fuel): the decoded
   record must equal the original exactly. *)
let passes_fields (o : Vcomp.Pass.options) : (string * string) list =
  [ ("pcp", bool_bit o.Vcomp.Pass.opt_constprop);
    ("pcse", bool_bit o.Vcomp.Pass.opt_cse);
    ("pgvn", bool_bit o.Vcomp.Pass.opt_gvn);
    ("plicm", bool_bit o.Vcomp.Pass.opt_licm);
    ("pdc", bool_bit o.Vcomp.Pass.opt_deadcode);
    ("pval", bool_bit o.Vcomp.Pass.opt_validate);
    ("pfuel", string_of_int o.Vcomp.Pass.opt_fuel) ]

let passes_of_fields (kvs : (string * string) list) :
  (Vcomp.Pass.options, string) Result.t =
  let ( let* ) = Result.bind in
  let bit k = Result.bind (Wire.kv_find kvs k) bit_bool in
  let* cp = bit "pcp" in
  let* cse = bit "pcse" in
  let* gvn = bit "pgvn" in
  let* licm = bit "plicm" in
  let* dc = bit "pdc" in
  let* v = bit "pval" in
  let* fuel = Wire.kv_int kvs "pfuel" in
  Ok
    { Vcomp.Pass.opt_constprop = cp;
      opt_cse = cse;
      opt_gvn = gvn;
      opt_licm = licm;
      opt_deadcode = dc;
      opt_validate = v;
      opt_fuel = fuel }

let opt_int (v : int option) : string =
  match v with None -> "-" | Some n -> string_of_int n

let int_opt (s : string) : (int option, string) Result.t =
  if s = "-" then Ok None
  else
    match int_of_string_opt s with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "bad optional integer %S" s)

(* Header line (k=v), then the raw source bytes. *)
let to_wire (rq : t) : string =
  let action_fields =
    match rq.rq_action with
    | Compile { ac_dump_rtl } ->
      [ ("action", "compile"); ("dump-rtl", bool_bit ac_dump_rtl) ]
    | Analyze { an_compare; an_simulate; an_annot } ->
      [ ("action", "analyze");
        ("compare", bool_bit an_compare);
        ("simulate", bool_bit an_simulate);
        ("annot", Option.value an_annot ~default:"-") ]
    | Ping -> [ ("action", "ping") ]
  in
  let o = rq.rq_opts in
  let fuel = o.Toolchain.ro_analysis_fuel in
  Wire.kv
    ([ ("v", "1"); ("name", rq.rq_name) ]
     @ action_fields
     @ [ ("compiler", compiler_to_string o.Toolchain.ro_compiler);
         ("engine", engine_to_string o.Toolchain.ro_engine);
         ("worlds", opt_int o.Toolchain.ro_worlds);
         ("sim-fuel", opt_int o.Toolchain.ro_sim_fuel);
         ("fwiden", string_of_int fuel.Wcet.Fuel.fl_widen);
         ("fsimplex", string_of_int fuel.Wcet.Fuel.fl_simplex);
         ("fbb", string_of_int fuel.Wcet.Fuel.fl_bb_nodes);
         ("fomt", string_of_int fuel.Wcet.Fuel.fl_omt);
         ("validate", bool_bit rq.rq_validate);
         ("exact", bool_bit rq.rq_exact);
         ("deadline", opt_int rq.rq_deadline_ms) ]
     @ passes_fields o.Toolchain.ro_passes)
  ^ "\n" ^ rq.rq_source

let of_wire (payload : string) : (t, string) Result.t =
  let header, source =
    match String.index_opt payload '\n' with
    | None -> (payload, "")
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )
  in
  let kvs = Wire.parse_kv header in
  let ( let* ) = Result.bind in
  let* v = Wire.kv_find kvs "v" in
  if v <> "1" then Error (Printf.sprintf "unsupported request version %S" v)
  else
    let* name = Wire.kv_find kvs "name" in
    let* action_name = Wire.kv_find kvs "action" in
    let* action =
      match action_name with
      | "compile" ->
        let* dump = Result.bind (Wire.kv_find kvs "dump-rtl") bit_bool in
        Ok (Compile { ac_dump_rtl = dump })
      | "analyze" ->
        let* compare = Result.bind (Wire.kv_find kvs "compare") bit_bool in
        let* simulate = Result.bind (Wire.kv_find kvs "simulate") bit_bool in
        let* annot = Wire.kv_find kvs "annot" in
        Ok
          (Analyze
             { an_compare = compare;
               an_simulate = simulate;
               an_annot = (if annot = "-" then None else Some annot) })
      | "ping" -> Ok Ping
      | a -> Error (Printf.sprintf "unknown action %S (compile|analyze|ping)" a)
    in
    let* compiler =
      Result.bind (Wire.kv_find kvs "compiler") compiler_of_string
    in
    let* engine = Result.bind (Wire.kv_find kvs "engine") engine_of_string in
    let* worlds = Result.bind (Wire.kv_find kvs "worlds") int_opt in
    let* sim_fuel = Result.bind (Wire.kv_find kvs "sim-fuel") int_opt in
    let* fl_widen = Wire.kv_int kvs "fwiden" in
    let* fl_simplex = Wire.kv_int kvs "fsimplex" in
    let* fl_bb_nodes = Wire.kv_int kvs "fbb" in
    let* fl_omt = Wire.kv_int kvs "fomt" in
    let* validate = Result.bind (Wire.kv_find kvs "validate") bit_bool in
    let* exact = Result.bind (Wire.kv_find kvs "exact") bit_bool in
    (* lenient: a v=1 peer from before deadlines simply omits the
       field, which means "no deadline" — not a protocol error *)
    let* deadline_ms =
      match List.assoc_opt "deadline" kvs with
      | None -> Ok None
      | Some s -> int_opt s
    in
    let* passes = passes_of_fields kvs in
    Ok
      { rq_name = name;
        rq_source = source;
        rq_action = action;
        rq_opts =
          { Toolchain.ro_compiler = compiler;
            ro_worlds = worlds;
            ro_sim_fuel = sim_fuel;
            ro_analysis_fuel =
              { Wcet.Fuel.fl_widen; fl_simplex; fl_bb_nodes; fl_omt };
            ro_passes = passes;
            ro_engine = engine };
        rq_validate = validate;
        rq_exact = exact;
        rq_deadline_ms = deadline_ms }
