(** Shared Cmdliner flag surface for the toolchain CLIs (bench, fcc,
    aitw): the cache trio [--no-cache]/[--cache-dir]/[--cache-gc-mb]
    (with [FCSTACK_CACHE_DIR] as the [--cache-dir] default) and [-j],
    assembled into one {!Toolchain.config}. One definition instead of a
    copy per tool, so the flag surfaces cannot drift again. *)

type cache_opts = {
  co_no_cache : bool;        (** [--no-cache]: no cache at all *)
  co_dir : string option;    (** [--cache-dir]/[FCSTACK_CACHE_DIR] *)
  co_gc_mb : int option;     (** [--cache-gc-mb] size budget *)
}

val cache_term : cache_opts Cmdliner.Term.t
(** The cache flag trio, identical in every CLI. *)

val jobs_term : doc:string -> int Cmdliner.Term.t
(** [-j]/[--jobs N] (default 1); [doc] describes the tool's fan-out. *)

val fail_fast_term : bool Cmdliner.Term.t
(** [--fail-fast]: abort on the first failing input with its original
    error instead of containing per-input failures (the default). *)

val passes_term : Vcomp.Pass.options Cmdliner.Term.t
(** The optimization-selection pair [-O N] (default 2) and
    [--passes LIST]; [--passes] overrides [-O]. A bad pass list is a
    Cmdliner parse error (exit 124) before any work runs. *)

val engine_term : Wcet.Report.engine Cmdliner.Term.t
(** [--engine ipet|omt|both] (default [ipet]): the WCET path-analysis
    engine. [both] runs IPET and OMT and refuses unless [omt <= ipet]
    holds per node. A bad engine name is a Cmdliner parse error
    (exit 124) before any work runs. *)

val stream_term : Toolchain.stream_opts option Cmdliner.Term.t
(** The streaming trio [--stream], [--shard-size N] and
    [--lookahead K]; giving either size flag implies [--stream].
    [None] = batch. Streaming never changes output bytes — it bounds
    resident memory at [jobs + lookahead] shards. *)

val compiler_term : Toolchain.compiler Cmdliner.Term.t
(** [-c]/[--compiler o0|o1|o2|vcomp] (default [vcomp]), parsed through
    {!Request.compiler_of_string}. A bad name is a Cmdliner parse
    error (exit 124) before any work runs — the same contract as
    [--passes] and [--engine]. *)

val connect_term : string option Cmdliner.Term.t
(** [--connect SOCKET]: run as a client of an [fcd] daemon instead of
    in-process. [None] = in-process (the default). *)

val deadline_ms_term : int option Cmdliner.Term.t
(** [--deadline-ms MS]: per-request wall-clock deadline; expiry is a
    refusal with a [Deadline] diag, never a partial or late answer,
    never cached. *)

val retry_term : Retry.policy Cmdliner.Term.t
(** [--retries N], [--retry-base-ms MS] and [--retry-seed SEED],
    assembled into a {!Retry.policy} (defaults {!Retry.default}).
    Attempts are clamped to [>= 1]. *)

val fallback_local_term : bool Cmdliner.Term.t
(** [--fallback-local]: with [--connect], degrade to in-process
    execution when the daemon is unreachable or a request exhausts its
    retries on transport/busy — byte-identical output, stderr note per
    degradation. *)

val report_retries : tool:string -> requests:int -> extra_attempts:int -> unit
(** One stderr line of cumulative retry accounting
    (["<tool>: retried R request(s) (E extra attempt(s))"]); silent
    when [requests = 0]. stdout is never touched. *)

val memo_of_opts : cache_opts -> Wcet.Memo.t option
(** The cache the flags ask for: [None] under [--no-cache], persistent
    when a directory is configured, memory-only otherwise. *)

val session_of_opts :
  ?jobs:int -> ?fail_fast:bool -> ?stream:Toolchain.stream_opts ->
  cache_opts -> Toolchain.session
(** The session-scoped half of the flags ({!memo_of_opts} for the
    cache): what a {!Service.session} is created from. *)

val config_of_opts :
  ?jobs:int -> ?worlds:int -> ?compiler:Toolchain.compiler ->
  ?fail_fast:bool -> ?passes:Vcomp.Pass.options ->
  ?engine:Wcet.Report.engine -> ?stream:Toolchain.stream_opts ->
  cache_opts -> Toolchain.config
(** One config from the parsed flags ({!memo_of_opts} for the cache). *)

val finalize : Toolchain.config -> unit
(** End-of-run maintenance: apply the [--cache-gc-mb] LRU budget to a
    persistent cache (no-op otherwise). Call once before exiting. *)

val report_stats : ?always:bool -> Toolchain.config -> unit
(** Print cache accounting ([Report.pp_stats]) to stderr — for
    persistent caches, or for any cache with [~always:true]. Never
    touches stdout: tables/reports stay byte-identical across cache
    configurations. *)

val report_session_stats : ?always:bool -> Service.session -> unit
(** {!report_stats} for a {!Service.session} (whose cache handle is
    abstract). *)
