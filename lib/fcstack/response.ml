(* The typed response surface of the compilation service.

   A response carries the exact bytes the batch CLIs would have
   produced for the same request — [rs_rtl]/[rs_output] for stdout,
   [rs_notes] for the per-file stderr notes, [rs_annot] for the
   annotation file — so "serve == batch" is a byte-equality statement,
   plus the structured failure data: the per-request [status]
   projection of the batch 0/1/2 exit contract and the [Diag.t] list
   behind it. Divergence is still refusal — a [Srefused] response has
   evidence, never a wrong answer; [Stransport] means the request was
   never answered at all (retryable). *)

type status =
  | Sok         (* answered; payload is the full answer (exit 0) *)
  | Srefused    (* toolchain refused: diagnostics carry why (exit 1/2) *)
  | Sbusy       (* server shed the request unstarted: retry me *)
  | Stransport  (* protocol/socket failure: no answer, retry me *)

let status_to_string (s : status) : string =
  match s with
  | Sok -> "ok"
  | Srefused -> "refused"
  | Sbusy -> "busy"
  | Stransport -> "transport"

let status_of_string (s : string) : (status, string) Result.t =
  match s with
  | "ok" -> Ok Sok
  | "refused" -> Ok Srefused
  | "busy" -> Ok Sbusy
  | "transport" -> Ok Stransport
  | s -> Error (Printf.sprintf "unknown status %S (ok|refused|busy|transport)" s)

type t = {
  rs_status : status;
  rs_rtl : string;           (* --dump-rtl text (stdout prefix) *)
  rs_output : string;        (* assembly / analysis report (stdout) *)
  rs_notes : string;         (* per-file stderr notes (validation line) *)
  rs_annot : string option;  (* annotation-file content, when requested *)
  rs_pass_stats : Vcomp.Pass.pass_stats list;  (* vcomp middle end *)
  rs_diags : Diag.t list;
}

let ok ?(rtl = "") ?(notes = "") ?annot ?(pass_stats = []) (output : string) :
  t =
  { rs_status = Sok;
    rs_rtl = rtl;
    rs_output = output;
    rs_notes = notes;
    rs_annot = annot;
    rs_pass_stats = pass_stats;
    rs_diags = [] }

let refused (diags : Diag.t list) : t =
  { rs_status = Srefused;
    rs_rtl = "";
    rs_output = "";
    rs_notes = "";
    rs_annot = None;
    rs_pass_stats = [];
    rs_diags = diags }

(* A transport failure still names the node the caller asked about, so
   the failure summary of a client run reads like a batch run's. *)
let transport ~(node : string) (message : string) : t =
  { rs_status = Stransport;
    rs_rtl = "";
    rs_output = "";
    rs_notes = "";
    rs_annot = None;
    rs_pass_stats = [];
    rs_diags = [ Diag.make ~node ~stage:Diag.Transport message ] }

(* Shedding is load control, not an answer about the request: like
   [transport], the payload is empty and the status invites a retry —
   the request was never started, so re-issuing it is always sound. *)
let busy ~(node : string) (message : string) : t =
  { rs_status = Sbusy;
    rs_rtl = "";
    rs_output = "";
    rs_notes = "";
    rs_annot = None;
    rs_pass_stats = [];
    rs_diags = [ Diag.make ~node ~stage:Diag.Transport message ] }

(* ---- pass-stats wire codec ------------------------------------------- *)

(* [st_ms] travels as a %h hex float: exact round-trip for every finite
   double, so a relayed stats record equals the measured one. *)
let stats_to_wire (s : Vcomp.Pass.pass_stats) : string =
  Wire.kv
    [ ("pass", s.Vcomp.Pass.st_pass);
      ("on", if s.Vcomp.Pass.st_enabled then "1" else "0");
      ("rw", string_of_int s.Vcomp.Pass.st_rewrites);
      ("rm", string_of_int s.Vcomp.Pass.st_removed);
      ("ho", string_of_int s.Vcomp.Pass.st_hoisted);
      ("ms", Printf.sprintf "%h" s.Vcomp.Pass.st_ms) ]

let stats_of_wire (line : string) :
  (Vcomp.Pass.pass_stats, string) Result.t =
  let kvs = Wire.parse_kv line in
  let ( let* ) = Result.bind in
  let* pass = Wire.kv_find kvs "pass" in
  let* on = Wire.kv_find kvs "on" in
  let* rw = Wire.kv_int kvs "rw" in
  let* rm = Wire.kv_int kvs "rm" in
  let* ho = Wire.kv_int kvs "ho" in
  let* ms_s = Wire.kv_find kvs "ms" in
  match float_of_string_opt ms_s with
  | None -> Error (Printf.sprintf "bad milliseconds field %S" ms_s)
  | Some ms ->
    Ok
      { Vcomp.Pass.st_pass = pass;
        st_enabled = on = "1";
        st_rewrites = rw;
        st_removed = rm;
        st_hoisted = ho;
        st_ms = ms }

(* ---- response wire codec --------------------------------------------- *)

(* Header line with byte lengths and record counts, then one line per
   diagnostic, one per pass-stats record, then the four byte segments
   (rtl, output, notes, annot) concatenated — lengths from the header
   slice them back out, so segments carry arbitrary bytes. *)
let to_wire (r : t) : string =
  let annot = Option.value r.rs_annot ~default:"" in
  let header =
    Wire.kv
      [ ("v", "1");
        ("status", status_to_string r.rs_status);
        ("rtl", string_of_int (String.length r.rs_rtl));
        ("out", string_of_int (String.length r.rs_output));
        ("notes", string_of_int (String.length r.rs_notes));
        ("has-annot", if r.rs_annot = None then "0" else "1");
        ("annot", string_of_int (String.length annot));
        ("diags", string_of_int (List.length r.rs_diags));
        ("stats", string_of_int (List.length r.rs_pass_stats)) ]
  in
  String.concat ""
    ([ header; "\n" ]
     @ List.concat_map (fun d -> [ Diag.to_wire d; "\n" ]) r.rs_diags
     @ List.concat_map (fun s -> [ stats_to_wire s; "\n" ]) r.rs_pass_stats
     @ [ r.rs_rtl; r.rs_output; r.rs_notes; annot ])

let of_wire (payload : string) : (t, string) Result.t =
  let ( let* ) = Result.bind in
  let len = String.length payload in
  (* read one \n-terminated line starting at [pos] *)
  let line (pos : int) : (string * int, string) Result.t =
    match String.index_from_opt payload pos '\n' with
    | Some i -> Ok (String.sub payload pos (i - pos), i + 1)
    | None -> Error "truncated response payload (missing line)"
  in
  let* header, pos = line 0 in
  let kvs = Wire.parse_kv header in
  let* v = Wire.kv_find kvs "v" in
  if v <> "1" then Error (Printf.sprintf "unsupported response version %S" v)
  else
    let* status = Result.bind (Wire.kv_find kvs "status") status_of_string in
    let* rtl_len = Wire.kv_int kvs "rtl" in
    let* out_len = Wire.kv_int kvs "out" in
    let* notes_len = Wire.kv_int kvs "notes" in
    let* has_annot = Wire.kv_find kvs "has-annot" in
    let* annot_len = Wire.kv_int kvs "annot" in
    let* n_diags = Wire.kv_int kvs "diags" in
    let* n_stats = Wire.kv_int kvs "stats" in
    let rec lines (n : int) (pos : int) (acc : string list) :
      (string list * int, string) Result.t =
      if n = 0 then Ok (List.rev acc, pos)
      else
        let* l, pos = line pos in
        lines (n - 1) pos (l :: acc)
    in
    let* diag_lines, pos = lines n_diags pos [] in
    let* stats_lines, pos = lines n_stats pos [] in
    let* diags =
      List.fold_left
        (fun acc l ->
           let* acc = acc in
           let* d = Diag.of_wire l in
           Ok (d :: acc))
        (Ok []) diag_lines
    in
    let* stats =
      List.fold_left
        (fun acc l ->
           let* acc = acc in
           let* s = stats_of_wire l in
           Ok (s :: acc))
        (Ok []) stats_lines
    in
    let segments = rtl_len + out_len + notes_len + annot_len in
    if rtl_len < 0 || out_len < 0 || notes_len < 0 || annot_len < 0
       || pos + segments > len
    then Error "truncated response payload (segments)"
    else
      let rtl = String.sub payload pos rtl_len in
      let pos = pos + rtl_len in
      let output = String.sub payload pos out_len in
      let pos = pos + out_len in
      let notes = String.sub payload pos notes_len in
      let pos = pos + notes_len in
      let annot = String.sub payload pos annot_len in
      Ok
        { rs_status = status;
          rs_rtl = rtl;
          rs_output = output;
          rs_notes = notes;
          rs_annot = (if has_annot = "1" then Some annot else None);
          rs_pass_stats = List.rev stats;
          rs_diags = List.rev diags }
