(** The typed request surface of the compilation service: one value
    carries source text, an action, and the request-scoped options
    ({!Toolchain.request_opts}) — session state (cache, jobs) cannot
    be expressed here by construction.

    Also the one home of the CLI name<->variant maps for compilers and
    engines: {!Chain.compiler_of_string} is deprecated in favor of
    {!compiler_of_string}, and [of_string (to_string c) = Ok c] is
    qcheck-pinned ([test/test_service.ml]). *)

type compiler = Toolchain.compiler =
  | Cdefault_o0
  | Cdefault_o1
  | Cdefault_o2
  | Cvcomp
(** Re-export of {!Toolchain.compiler} (same equation as {!Chain}). *)

val compiler_to_string : compiler -> string
(** Canonical CLI spelling: ["o0"]/["o1"]/["o2"]/["vcomp"]. *)

val compiler_of_string : string -> (compiler, string) Result.t
(** Parse the CLI spelling (also accepts the long [default-O*] names);
    round-trips with {!compiler_to_string}. *)

val engine_to_string : Wcet.Report.engine -> string
val engine_of_string : string -> (Wcet.Report.engine, string) Result.t
(** The engine name maps ({!Wcet.Report}'s, re-exported so the request
    surface is the single parsing entry point for CLIs). *)

type action =
  | Compile of {
      ac_dump_rtl : bool;  (** prepend the optimized RTL dump (vcomp) *)
    }
  | Analyze of {
      an_compare : bool;         (** all four configurations *)
      an_simulate : bool;        (** observed cycles next to the bound *)
      an_annot : string option;  (** annotation-file path (quoted in the
                                     report text, hence request data) *)
    }
  | Ping  (** liveness probe: answers with session stats, runs no
              toolchain work, consumes no request budget *)

type t = {
  rq_name : string;    (** node/file name diagnostics will carry *)
  rq_source : string;  (** mini-C source text (never a path: the daemon
                           stays out of the client's filesystem) *)
  rq_action : action;
  rq_opts : Toolchain.request_opts;
  rq_validate : bool;  (** whole-chain differential validation *)
  rq_exact : bool;     (** disable semantics-relaxing optimizations *)
  rq_deadline_ms : int option;
  (** wall-clock budget the server may spend before answering: past
      it, the request is refused with a [Deadline] diag — never a
      partial or unsound answer, never cached. Not part of
      {!Toolchain.request_opts} by design: a deadline says when an
      answer stops being useful, not what the answer is, so it stays
      out of every cache key. *)
}

val make :
  ?name:string -> ?action:action -> ?opts:Toolchain.request_opts ->
  ?validate:bool -> ?exact:bool -> ?deadline_ms:int -> string -> t
(** [make source]: defaults are a plain compile under
    {!Toolchain.default_request}, no deadline. *)

val to_wire : t -> string
(** Wire payload: one [k=v] header line, then the raw source bytes. *)

val of_wire : string -> (t, string) Result.t
(** Inverse of {!to_wire}: the decoded request equals the original
    (qcheck-pinned). [Error] on version/field/name problems. *)
