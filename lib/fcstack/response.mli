(** The typed response surface of the compilation service: the exact
    bytes the batch CLIs would have produced (so "serve == batch" is a
    byte-equality statement) plus structured failure data. The batch
    0/1/2 exit contract becomes the per-request {!status}: divergence
    is still refusal with {!Diag.t} evidence, never a wrong answer;
    transport failure means no answer at all (retryable). *)

type status =
  | Sok         (** answered; payload is the full answer (exit 0) *)
  | Srefused    (** toolchain refused: {!t.rs_diags} carry why (the
                    per-request face of exit 1/2) *)
  | Sbusy       (** server shed the request before starting it
                    (overload control) — always safe to retry *)
  | Stransport  (** protocol/socket failure: the request was never
                    answered — retry against a (re)started daemon *)

val status_to_string : status -> string
(** ["ok"]/["refused"]/["busy"]/["transport"]. *)

val status_of_string : string -> (status, string) Result.t

type t = {
  rs_status : status;
  rs_rtl : string;           (** [--dump-rtl] text (stdout prefix) *)
  rs_output : string;        (** assembly / analysis report (stdout) *)
  rs_notes : string;         (** per-file stderr notes *)
  rs_annot : string option;  (** annotation-file content, if requested *)
  rs_pass_stats : Vcomp.Pass.pass_stats list;
  rs_diags : Diag.t list;
}

val ok :
  ?rtl:string -> ?notes:string -> ?annot:string ->
  ?pass_stats:Vcomp.Pass.pass_stats list -> string -> t

val refused : Diag.t list -> t

val transport : node:string -> string -> t
(** A transport failure naming the node the caller asked about, so a
    client run's failure summary reads like a batch run's. *)

val busy : node:string -> string -> t
(** A shed request: never started, empty payload, always retryable. *)

val stats_to_wire : Vcomp.Pass.pass_stats -> string
val stats_of_wire : string -> (Vcomp.Pass.pass_stats, string) Result.t
(** Pass-stats line codec; [st_ms] travels as a [%h] hex float, so the
    round-trip is exact for every finite double. *)

val to_wire : t -> string
val of_wire : string -> (t, string) Result.t
(** Payload codec: header with byte lengths, diagnostic and stats
    lines, then the raw byte segments. Decoded value equals the
    original (qcheck-pinned). *)
