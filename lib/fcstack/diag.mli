(** Structured diagnostics: the failure currency of the toolchain.

    Every catchable failure in the per-node chain becomes a [Diag.t]
    instead of an escaping exception — exceptions never cross the
    {!Par} boundary (unless [Toolchain.config.fail_fast] explicitly
    asks for the old abort-on-first-error behaviour). Rendering is
    stable and one-line; diagnostics and summaries go to stderr only,
    so stdout stays byte-identical across failure configurations. *)

type stage =
  | Parse      (** [.mc] text → AST *)
  | Typecheck  (** AST well-formedness *)
  | Compile    (** ACG / codegen / translation validation *)
  | Layout     (** link/load address map *)
  | Sim        (** simulator runs, differential validation *)
  | Wcet       (** static analysis (refusals, diverged fixpoints) *)
  | Cache      (** analysis-store access *)
  | Deadline   (** request deadline expired mid-work: refusal (the
                   answer stopped being useful), never cached, not
                   retryable *)
  | Transport  (** service protocol/socket failure: the request was
                   never answered — retryable, unlike a refusal *)

type severity =
  | Error
  | Warning

type t = {
  d_node : string;  (** node (or file) the failure belongs to *)
  d_stage : stage;
  d_severity : severity;
  d_message : string;
  d_context : (string * string) list;  (** extra key=value detail *)
}

val stage_name : stage -> string
val severity_name : severity -> string

val stage_of_name : string -> (stage, string) Result.t
(** Inverse of {!stage_name} (wire decoding). *)

val severity_of_name : string -> (severity, string) Result.t
(** Inverse of {!severity_name} (wire decoding). *)

val make :
  ?severity:severity -> ?context:(string * string) list -> node:string ->
  stage:stage -> string -> t

val to_string : t -> string
(** Stable one-line rendering:
    ["<node>: <stage> <severity>: <message> [k=v, ...]"] — embedded
    newlines are flattened to ["; "]. *)

val pp : Format.formatter -> t -> unit

val to_wire : t -> string
(** One-line structural encoding for the service protocol: the decoded
    value is equal to the original (so {!to_string} renders identically
    on both sides of the wire). *)

val of_wire : string -> (t, string) Result.t
(** Inverse of {!to_wire}; [Error] on missing fields or unknown
    stage/severity names. *)

val of_exn : node:string -> stage:stage -> exn -> t
(** Convert an escaped exception. [stage] is where the chain was when
    it escaped; recognizable exceptions override it (parse errors,
    analyzer refusals, simulator fuel/runtime errors). *)

val capture : node:string -> stage:stage -> (unit -> 'a) -> ('a, t) Result.t
(** Run [f], turning any exception into a diagnostic via {!of_exn}. *)

val errors_of : ('a, t) Result.t list -> t list
(** The diagnostics of the failed entries, in input order. *)

val exit_code : total:int -> failed:int -> int
(** The whole-run contract: 0 = all nodes ok; 1 = some failed (the run
    completed, survivors intact); 2 = total failure (every node failed
    — including a failing single-node run). *)

val pp_summary : Format.formatter -> total:int -> t list -> unit
(** One line per diagnostic, then ["<k>/<n> nodes failed (<m> ok)"]. *)

val print_summary : total:int -> t list -> unit
(** {!pp_summary} on stderr; prints nothing when [diags] is empty. *)
