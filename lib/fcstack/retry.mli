(** Deterministic retry with exponential backoff for service clients.

    Retries only {!Response.Stransport} (never answered) and
    {!Response.Sbusy} (shed unstarted) — sound because requests are
    pure functions of request + store. {!Response.Srefused} is NEVER
    retried: a refusal is the answer. The backoff schedule is a pure
    function of the policy (seeded jitter, no wall-clock input), so
    retry behaviour is reproducible — determinism extends to failure
    handling. *)

type policy = {
  r_attempts : int;  (** total attempts, including the first (>= 1) *)
  r_base_ms : int;   (** backoff before attempt 2; doubles per attempt *)
  r_max_ms : int;    (** backoff ceiling *)
  r_seed : int;      (** jitter seed *)
}

val default : policy
(** 3 attempts, 100 ms base, 5 s ceiling, seed 0. *)

val backoffs : policy -> int list
(** The full backoff schedule (milliseconds; entry [i] precedes
    attempt [i + 2]): exponential with ceiling plus up to 25% seeded
    jitter. Pure — same policy, same schedule (qcheck-pinned). *)

val should_retry : Response.status -> bool
(** [true] exactly for [Stransport] and [Sbusy]. *)

val run :
  ?policy:policy ->
  ?sleep:(int -> unit) ->
  ?on_retry:(attempt:int -> backoff_ms:int -> Response.t -> unit) ->
  (attempt:int -> Response.t) ->
  Response.t * int
(** [run f] calls [f ~attempt] (numbered from 1) until the response is
    non-retryable or attempts run out; returns the last response and
    the attempts made. [sleep] actuates backoff (injectable for
    tests); [on_retry] observes each retry decision. *)
