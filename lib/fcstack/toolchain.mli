(** The unified toolchain configuration: one record carrying the knobs
    that used to be scattered [?cache]/[?jobs]/[?worlds] optionals
    across {!Chain}, {!Par} and {!Experiments}, plus the compiler
    configuration. Build it once (typically from CLI flags) and thread
    it as a single [?config].

    Invariant for future PRs: anything process-wide a chain entry point
    needs belongs in this record — never a new scattered optional, and
    never a module-level global (the cache handle in particular lives
    only here and in the explicit [Wcet.Memo.t] the caller created). *)

type compiler =
  | Cdefault_o0  (** COTS baseline, certified pattern configuration *)
  | Cdefault_o1  (** COTS baseline, optimized without register allocation *)
  | Cdefault_o2  (** COTS baseline, fully optimized (FMA contraction on) *)
  | Cvcomp       (** verified-style optimizing compiler *)
(** Defined here (not in {!Chain}) so [config] can carry it; {!Chain}
    re-exports the constructors, so [Chain.Cvcomp] remains valid. *)

type stream_opts = {
  so_shard_size : int;  (** nodes per produced shard, >= 1 *)
  so_lookahead : int;   (** resident shards beyond [jobs], >= 0 *)
}
(** Streaming execution shape ({!Par.run_stream}): the workload is
    pulled shard by shard with at most [jobs + so_lookahead] shards
    resident, so memory is flat in the workload size. Picks an
    execution shape only — output is byte-identical to batch. *)

val default_stream : stream_opts
(** [Scade.Workload.default_shard_size] nodes per shard, lookahead 1. *)

type config = {
  jobs : int;                  (** Domains for per-node fan-out (≥ 1) *)
  cache : Wcet.Memo.t option;  (** shared WCET-analysis cache, possibly
                                   persistent ([Wcet.Memo.create ?dir]) *)
  worlds : int option;         (** validation battery size (None: default
                                   seeds of {!Chain.validate_chain}) *)
  compiler : compiler;
  fail_fast : bool;            (** abort the run on the first failing
                                   node (exception escapes; {!Par}
                                   rethrows the smallest-indexed one)
                                   instead of containing it as a
                                   {!Diag.t} *)
  sim_fuel : int option;       (** simulator step budget per run (None:
                                   [Target.Sim]'s default) *)
  analysis_fuel : Wcet.Fuel.t; (** fixpoint/solver iteration budgets;
                                   part of the analysis-cache key *)
  passes : Vcomp.Pass.options; (** vcomp middle-end pass selection
                                   ([-O]/[--passes]); its canonical
                                   spec string joins the analysis-cache
                                   key *)
  engine : Wcet.Report.engine; (** WCET path-analysis engine
                                   ([--engine]): IPET (default), OMT,
                                   or both cross-checked ([Both]
                                   refuses unless omt <= ipet); part
                                   of the analysis-cache key *)
  stream : stream_opts option; (** streaming execution shape
                                   ([--stream]); [None] = batch. Never
                                   changes output bytes. *)
}

val default : config
(** Sequential, memory-only, verified-style, fault-containing
    ([fail_fast = false]), default fuel. *)

(** {2 Session vs request (the service split)}

    A persistent server ({!Service}) holds one [session] for its whole
    lifetime — the warm {!Wcet.Memo}, the Domain pool width, the
    failure policy — and combines it with a fresh [request_opts] per
    request. Everything that changes what a single answer *means*
    (compiler, passes, engine, worlds, fuel budgets — all the
    analysis-cache key material) is request-scoped, so the server
    cannot accidentally share per-request state: the split is a type,
    not a convention. *)

type session = {
  ss_jobs : int;                   (** Domains for per-node fan-out (≥ 1) *)
  ss_cache : Wcet.Memo.t option;   (** ONE warm cache for the session *)
  ss_fail_fast : bool;             (** batch failure policy *)
  ss_stream : stream_opts option;  (** batch execution shape *)
}

type request_opts = {
  ro_compiler : compiler;
  ro_worlds : int option;          (** validation battery size *)
  ro_sim_fuel : int option;        (** simulator step budget *)
  ro_analysis_fuel : Wcet.Fuel.t;  (** part of the analysis-cache key *)
  ro_passes : Vcomp.Pass.options;  (** part of the analysis-cache key *)
  ro_engine : Wcet.Report.engine;  (** part of the analysis-cache key *)
}

val default_session : session
(** Sequential, memory-only cacheless, fault-containing, batch. *)

val default_request : request_opts
(** Verified-style compiler, default fuel/passes, IPET engine. *)

val session :
  ?jobs:int -> ?cache:Wcet.Memo.t -> ?fail_fast:bool ->
  ?stream:stream_opts -> unit -> session
(** Build session-scoped state; omitted fields take
    {!default_session}'s. *)

val request_opts :
  ?compiler:compiler -> ?worlds:int -> ?sim_fuel:int ->
  ?analysis_fuel:Wcet.Fuel.t -> ?passes:Vcomp.Pass.options ->
  ?engine:Wcet.Report.engine -> unit -> request_opts
(** Build request-scoped options; omitted fields take
    {!default_request}'s. *)

val of_session_request : session -> request_opts -> config
(** The one remaining constructor of the combined record: combine
    session state with one request's options. [Chain]/[Par]/
    [Experiments] still consume the combined [config]; the service
    layer builds one per request through this function. *)

val session_of_config : config -> session
(** Project the session-scoped fields out of a combined config. *)

val request_of_config : config -> request_opts
(** Project the request-scoped fields out of a combined config. *)

val config :
  ?jobs:int -> ?cache:Wcet.Memo.t -> ?worlds:int -> ?compiler:compiler ->
  ?fail_fast:bool -> ?sim_fuel:int -> ?analysis_fuel:Wcet.Fuel.t ->
  ?passes:Vcomp.Pass.options -> ?engine:Wcet.Report.engine ->
  ?stream:stream_opts -> unit -> config
  [@@ocaml.deprecated
    "combine Toolchain.session with Toolchain.request_opts via \
     of_session_request instead; the variadic builder conflates \
     session- and request-scoped state and is removed next PR."]
(** Build a config in one call; omitted fields take {!default}s.
    @deprecated use {!of_session_request} — the flat builder conflates
    session- and request-scoped state. *)

val with_jobs : int -> config -> config
val with_cache : Wcet.Memo.t option -> config -> config
val with_worlds : int option -> config -> config
val with_compiler : compiler -> config -> config
val with_fail_fast : bool -> config -> config
val with_sim_fuel : int option -> config -> config
val with_analysis_fuel : Wcet.Fuel.t -> config -> config
val with_passes : Vcomp.Pass.options -> config -> config
val with_engine : Wcet.Report.engine -> config -> config
val with_stream : stream_opts option -> config -> config
