(* Structured diagnostics: the failure currency of the toolchain.

   A certification pipeline over thousands of independent nodes must
   contain failure, not propagate it: one malformed node, one analyzer
   refusal or one diverging fixpoint must cost exactly that node, with
   a record of which node died, at which stage, and why — while the
   rest of the workload completes and stays byte-identical to a run
   without the faulty node. Every catchable failure in the per-node
   chain therefore becomes a [Diag.t] instead of an escaping exception;
   exceptions never cross the [Par] boundary (unless the caller
   explicitly asks for the old abort-on-first-error behaviour with
   [Toolchain.config.fail_fast]).

   Rendering is deliberately stable and one-line (newlines inside
   messages are flattened), so diagnostics are greppable in CI logs and
   comparable across runs. Diagnostics go to stderr only: stdout stays
   byte-identical across failure configurations. *)

type stage =
  | Parse      (* .mc text -> AST *)
  | Typecheck  (* AST well-formedness *)
  | Compile    (* ACG / codegen / translation validation *)
  | Layout     (* link/load address map *)
  | Sim        (* simulator runs, differential validation *)
  | Wcet       (* static analysis (refusals, diverging fixpoints) *)
  | Cache      (* analysis-store access *)
  | Deadline   (* request deadline expired mid-work: refusal, the
                  answer stopped being useful — NOT retryable (a
                  retry would just expire again) and never cached *)
  | Transport  (* service protocol/socket failure: retryable, no answer *)

type severity =
  | Error
  | Warning

type t = {
  d_node : string;       (* node (or file) the failure belongs to *)
  d_stage : stage;
  d_severity : severity;
  d_message : string;
  d_context : (string * string) list;  (* extra key=value detail *)
}

let stage_name (s : stage) : string =
  match s with
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Compile -> "compile"
  | Layout -> "layout"
  | Sim -> "sim"
  | Wcet -> "wcet"
  | Cache -> "cache"
  | Deadline -> "deadline"
  | Transport -> "transport"

let stage_of_name (s : string) : (stage, string) Result.t =
  match s with
  | "parse" -> Ok Parse
  | "typecheck" -> Ok Typecheck
  | "compile" -> Ok Compile
  | "layout" -> Ok Layout
  | "sim" -> Ok Sim
  | "wcet" -> Ok Wcet
  | "cache" -> Ok Cache
  | "deadline" -> Ok Deadline
  | "transport" -> Ok Transport
  | s -> Error (Printf.sprintf "unknown diagnostic stage %S" s)

let severity_name (s : severity) : string =
  match s with Error -> "error" | Warning -> "warning"

let severity_of_name (s : string) : (severity, string) Result.t =
  match s with
  | "error" -> Ok Error
  | "warning" -> Ok Warning
  | s -> Error (Printf.sprintf "unknown diagnostic severity %S" s)

let make ?(severity = Error) ?(context = []) ~(node : string)
    ~(stage : stage) (message : string) : t =
  { d_node = node;
    d_stage = stage;
    d_severity = severity;
    d_message = message;
    d_context = context }

(* One line, always: embedded newlines become "; " so a multi-line
   validation trace still renders as a single greppable record. *)
let flatten (s : string) : string =
  String.concat "; "
    (List.filter
       (fun l -> l <> "")
       (List.map String.trim (String.split_on_char '\n' s)))

let to_string (d : t) : string =
  let ctx =
    match d.d_context with
    | [] -> ""
    | kvs ->
      Printf.sprintf " [%s]"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  Printf.sprintf "%s: %s %s: %s%s" d.d_node (stage_name d.d_stage)
    (severity_name d.d_severity) (flatten d.d_message) ctx

let pp (ppf : Format.formatter) (d : t) : unit =
  Format.pp_print_string ppf (to_string d)

(* ---- wire codec (service protocol) ---- *)

(* Structural, not textual: a diagnostic crossing the service boundary
   must reconstruct to the same value, so [to_string] renders
   identically on both sides — the context list travels as
   comma-separated k:v pairs with both halves percent-encoded. *)
let to_wire (d : t) : string =
  Wire.kv
    [ ("node", d.d_node);
      ("stage", stage_name d.d_stage);
      ("sev", severity_name d.d_severity);
      ("msg", d.d_message);
      ( "ctx",
        String.concat ","
          (List.map
             (fun (k, v) -> Wire.enc k ^ ":" ^ Wire.enc v)
             d.d_context) ) ]

let of_wire (line : string) : (t, string) Result.t =
  let kvs = Wire.parse_kv line in
  let ( let* ) = Result.bind in
  let* node = Wire.kv_find kvs "node" in
  let* stage = Result.bind (Wire.kv_find kvs "stage") stage_of_name in
  let* sev = Result.bind (Wire.kv_find kvs "sev") severity_of_name in
  let* msg = Wire.kv_find kvs "msg" in
  let* ctx_raw = Wire.kv_find kvs "ctx" in
  let ctx =
    if ctx_raw = "" then []
    else
      List.map
        (fun pair ->
           match String.index_opt pair ':' with
           | Some i ->
             ( Wire.dec (String.sub pair 0 i),
               Wire.dec (String.sub pair (i + 1) (String.length pair - i - 1))
             )
           | None -> (Wire.dec pair, ""))
        (String.split_on_char ',' ctx_raw)
  in
  Ok (make ~severity:sev ~context:ctx ~node ~stage msg)

(* Exception -> diagnostic. [stage] is where the chain was when the
   exception escaped; recognizable exceptions override it (a parse
   error is a parse error wherever it was caught). *)
let of_exn ~(node : string) ~(stage : stage) (e : exn) : t =
  match e with
  | Minic.Parser.Parse_error msg -> make ~node ~stage:Parse msg
  | Minic.Lexer.Lex_error (msg, pos) ->
    make ~node ~stage:Parse ~context:[ ("pos", string_of_int pos) ] msg
  | Wcet.Driver.Error msg -> make ~node ~stage:Wcet msg
  | Wcet.Fuel.Expired ->
    make ~node ~stage:Deadline
      "request deadline expired before the analysis finished (refusing to \
       answer late)"
  | Minic.Interp.Out_of_fuel ->
    make ~node ~stage:Sim "simulation step budget exhausted"
  | Minic.Interp.Runtime_error msg -> make ~node ~stage:Sim msg
  | Invalid_argument msg -> make ~node ~stage msg
  | Failure msg -> make ~node ~stage msg
  | e -> make ~node ~stage (Printexc.to_string e)

let capture ~(node : string) ~(stage : stage) (f : unit -> 'a) :
  ('a, t) Result.t =
  match f () with
  | v -> Ok v
  | exception e -> Result.Error (of_exn ~node ~stage e)

(* ---- aggregation over a per-node run ---- *)

let errors_of (results : ('a, t) Result.t list) : t list =
  List.filter_map (function Ok _ -> None | Result.Error d -> Some d) results

(* The whole-run exit-code contract: 0 = every node ok, 1 = some nodes
   failed (the run completed, survivors' output is intact), 2 = total
   failure (nothing usable came out — including the degenerate
   single-node run whose one node failed). *)
let exit_code ~(total : int) ~(failed : int) : int =
  if failed = 0 then 0 else if failed >= total then 2 else 1

(* Stable stderr summary: one line per diagnostic (input order), then a
   count. Callers print it only when something failed, so fault-free
   runs keep a clean stderr. *)
let pp_summary (ppf : Format.formatter) ~(total : int) (diags : t list) : unit =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) diags;
  let failed = List.length diags in
  if failed > 0 then
    Format.fprintf ppf "%d/%d nodes failed (%d ok)@." failed total
      (total - failed)

let print_summary ~(total : int) (diags : t list) : unit =
  if diags <> [] then Format.eprintf "%a" (fun ppf -> pp_summary ppf ~total) diags
