(** Deterministic parallel work queue over OCaml 5 Domains.

    Nodes of a flight-control workload are independent, so the per-node
    chain (ACG → compile → link → WCET analysis → differential
    validation) fans out across domains. Results are merged by task
    index, never by completion order: a parallel run is observably
    identical to the sequential one regardless of scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates every task on up to [jobs] domains and
    returns results in task order. [jobs <= 1] runs sequentially in the
    calling domain. If tasks raise, the exception of the
    smallest-indexed raising task is re-raised in the caller. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. *)

val default_lookahead : int
(** Extra resident shards beyond [jobs] in {!run_stream} (1). *)

val run_stream :
  ?jobs:int -> ?lookahead:int ->
  producer:(int -> (unit -> 'a) array option) ->
  consumer:('acc -> int -> 'a -> 'acc) -> init:'acc -> unit -> 'acc
(** Bounded-buffer streaming: pull task shards lazily from
    [producer 0, producer 1, ...] ([None] ends the stream), evaluate
    every task on up to [jobs] domains, and fold results into
    [consumer acc global_index result] in global task order. At most
    [jobs + lookahead] shards are resident at any instant, so memory is
    flat in the stream length; the fold observes exactly what the
    sequential run would, byte for byte.

    [producer] is called one shard at a time, in order, from worker
    domains outside the stream lock (generation overlaps evaluation);
    [consumer] always runs under the lock, never concurrently with
    itself. If a task or the producer raises, the stream stops claiming
    work, no result at or beyond the first raising global index reaches
    [consumer], and that exception is re-raised in the caller after all
    domains wind down — the same smallest-index rule as {!run}.
    [jobs <= 1] runs everything in the calling domain, one shard
    resident at a time. *)

type node_result = {
  pn_name : string;
  pn_asm : Target.Asm.program;
  pn_wcet : int;
  pn_validation : (unit, string) Result.t;
}
(** Per-node toolchain output: assembly, WCET bound, whole-chain
    differential-validation verdict. Structural — compare runs with [=]. *)

val chain_node :
  config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  string -> Minic.Ast.program -> (node_result, Diag.t) Result.t
(** One node's chain (typecheck → compile/link → WCET → validation)
    with per-stage failure containment: any failure becomes a
    {!Diag.t} naming the node and the stage; exceptions never escape.
    With [config.fail_fast] the stages run raw instead and exceptions
    propagate. This is the per-node body of {!run_chain}; the chaos
    harness drives it directly with per-node configs. *)

val chain_node_exn :
  config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  string -> Minic.Ast.program -> node_result
(** The raw (uncontained, untypechecked) body: stage failures escape
    as their original exceptions. *)

val run_chain :
  ?config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  (string * Minic.Ast.program) list -> (node_result, Diag.t) Result.t list
(** Full per-node chain over named mini-C programs under one
    {!Toolchain.config}: compiled with [config.compiler],
    [config.jobs]-parallel, analyses shared through [config.cache]
    (safely: sharded, mutex-per-shard; results are unchanged by hits),
    validation battery from [config.worlds]. [exact]/[validate]/
    [cycles] remain per-call semantic knobs. Default config:
    sequential, memory-only cacheless, vcomp.

    Per-node failure containment: a failing node yields [Error diag]
    and is skipped; all other nodes complete and merge by index, their
    results byte-identical to a fault-free run restricted to them.
    With [config.fail_fast] the first (smallest-indexed) failure
    aborts the run with its original exception — the pre-diagnostic
    behaviour. *)

val run_chain_nodes :
  ?config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  Scade.Symbol.node list -> (node_result, Diag.t) Result.t list
(** Same, from SCADE nodes: the ACG also runs inside the workers (an
    ACG failure is a Compile-stage diagnostic). *)

val run_chain_stream :
  ?config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  producer:(int -> (string * Minic.Ast.program) array option) ->
  consumer:('acc -> int -> (node_result, Diag.t) Result.t -> 'acc) ->
  init:'acc -> unit -> 'acc
(** {!run_chain} in streaming shape: named mini-C programs arrive shard
    by shard from [producer], per-node outcomes fold into [consumer] in
    global input order, and only [jobs + lookahead] shards stay
    resident (lookahead from [config.stream] when set). The outcome for
    every node is identical to {!run_chain} over the concatenated
    shards. *)
