(** Deterministic parallel work queue over OCaml 5 Domains.

    Nodes of a flight-control workload are independent, so the per-node
    chain (ACG → compile → link → WCET analysis → differential
    validation) fans out across domains. Results are merged by task
    index, never by completion order: a parallel run is observably
    identical to the sequential one regardless of scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates every task on up to [jobs] domains and
    returns results in task order. [jobs <= 1] runs sequentially in the
    calling domain. If tasks raise, the exception of the
    smallest-indexed raising task is re-raised in the caller. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. *)

type node_result = {
  pn_name : string;
  pn_asm : Target.Asm.program;
  pn_wcet : int;
  pn_validation : (unit, string) Result.t;
}
(** Per-node toolchain output: assembly, WCET bound, whole-chain
    differential-validation verdict. Structural — compare runs with [=]. *)

val chain_node :
  config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  string -> Minic.Ast.program -> (node_result, Diag.t) Result.t
(** One node's chain (typecheck → compile/link → WCET → validation)
    with per-stage failure containment: any failure becomes a
    {!Diag.t} naming the node and the stage; exceptions never escape.
    With [config.fail_fast] the stages run raw instead and exceptions
    propagate. This is the per-node body of {!run_chain}; the chaos
    harness drives it directly with per-node configs. *)

val chain_node_exn :
  config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  string -> Minic.Ast.program -> node_result
(** The raw (uncontained, untypechecked) body: stage failures escape
    as their original exceptions. *)

val run_chain :
  ?config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  (string * Minic.Ast.program) list -> (node_result, Diag.t) Result.t list
(** Full per-node chain over named mini-C programs under one
    {!Toolchain.config}: compiled with [config.compiler],
    [config.jobs]-parallel, analyses shared through [config.cache]
    (safely: sharded, mutex-per-shard; results are unchanged by hits),
    validation battery from [config.worlds]. [exact]/[validate]/
    [cycles] remain per-call semantic knobs. Default config:
    sequential, memory-only cacheless, vcomp.

    Per-node failure containment: a failing node yields [Error diag]
    and is skipped; all other nodes complete and merge by index, their
    results byte-identical to a fault-free run restricted to them.
    With [config.fail_fast] the first (smallest-indexed) failure
    aborts the run with its original exception — the pre-diagnostic
    behaviour. *)

val run_chain_nodes :
  ?config:Toolchain.config -> ?exact:bool -> ?validate:bool -> ?cycles:int ->
  Scade.Symbol.node list -> (node_result, Diag.t) Result.t list
(** Same, from SCADE nodes: the ACG also runs inside the workers (an
    ACG failure is a Compile-stage diagnostic). *)
