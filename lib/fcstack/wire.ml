(* Length-prefixed, versioned wire framing for the compilation service.

   One frame is

     fcd1 <kind> <len>\n<len bytes of payload>

   — a text header (so cram tests can author frames with printf and a
   human can read a capture) followed by an exact byte count, so
   payloads carry arbitrary bytes (assembly, reports, source text)
   without any in-band escaping at the frame layer. The version token
   leads the header: a reader that sees anything but "fcd1" refuses
   the whole stream rather than guessing at an incompatible peer —
   protocol divergence is a refusal, never a misparse.

   Above the frame layer, structured payloads are single-line
   [k=v ...] records whose values are percent-encoded ([enc]/[dec]):
   the metacharacters (space, '=', '%', newlines, ',' and ':' used by
   the k=v and context syntaxes) travel as %XX, everything else as
   itself. Encoding is deterministic, so encoded equality is value
   equality — the byte-identity contracts extend to the wire. *)

let protocol_version = "fcd1"

(* Frames above this are a protocol error, not an allocation attempt:
   a corrupt length must not make the reader swallow the stream. *)
let max_frame_len = 64 * 1024 * 1024

(* ---- percent-encoding ---------------------------------------------- *)

let needs_escape (c : char) : bool =
  match c with
  | ' ' | '=' | '%' | '\n' | '\r' | ',' | ':' -> true
  | c -> Char.code c < 0x20 || Char.code c > 0x7e

let enc (s : string) : string =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
         else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let hex_val (c : char) : int option =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Permissive: a '%' not followed by two hex digits decodes as itself,
   so [dec] never fails — malformed escapes surface as literal bytes
   (and a round-tripped [enc] never produces them). *)
let dec (s : string) : string =
  match String.index_opt s '%' with
  | None -> s
  | Some _ ->
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then
         match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
         | Some hi, Some lo ->
           Buffer.add_char b (Char.chr ((hi * 16) + lo));
           i := !i + 3
         | _ ->
           Buffer.add_char b s.[!i];
           incr i
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b

(* ---- k=v records ---------------------------------------------------- *)

(* Keys are trusted identifiers (no escaping); values are [enc]-coded. *)
let kv (kvs : (string * string) list) : string =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ enc v) kvs)

let parse_kv (line : string) : (string * string) list =
  String.split_on_char ' ' line
  |> List.filter_map (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok '=' with
        | None -> Some (tok, "")
        | Some i ->
          Some
            ( String.sub tok 0 i,
              dec (String.sub tok (i + 1) (String.length tok - i - 1)) ))

let kv_find (kvs : (string * string) list) (key : string) :
  (string, string) Result.t =
  match List.assoc_opt key kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let kv_int (kvs : (string * string) list) (key : string) :
  (int, string) Result.t =
  match kv_find kvs key with
  | Error _ as e -> e
  | Ok v ->
    (match int_of_string_opt v with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "field %S is not an integer: %S" key v))

(* ---- frames ---------------------------------------------------------- *)

type frame =
  | Frame of string * string  (* kind, payload *)
  | Eof
  | Bad of string             (* protocol error: refuse the stream *)

let write_frame (oc : out_channel) ~(kind : string) (payload : string) : unit =
  output_string oc
    (Printf.sprintf "%s %s %d\n" protocol_version kind (String.length payload));
  output_string oc payload

(* Read the header up to '\n' byte by byte (bounded — a peer that
   never sends a newline must not make us buffer forever). *)
let read_header (ic : in_channel) : (string, frame) Result.t =
  let b = Buffer.create 32 in
  let rec go (n : int) : (string, frame) Result.t =
    if n > 256 then Error (Bad "frame header too long")
    else
      match input_char ic with
      | '\n' -> Ok (Buffer.contents b)
      | c ->
        Buffer.add_char b c;
        go (n + 1)
      | exception End_of_file ->
        if Buffer.length b = 0 then Error Eof
        else Error (Bad "truncated frame header")
  in
  go 0

let read_frame (ic : in_channel) : frame =
  match read_header ic with
  | Error f -> f
  | Ok header ->
    (match String.split_on_char ' ' header with
     | [ version; kind; len ] ->
       if version <> protocol_version then
         Bad
           (Printf.sprintf "protocol version mismatch: peer speaks %S, I speak %S"
              version protocol_version)
       else
         (match int_of_string_opt len with
          | None -> Bad (Printf.sprintf "bad frame length %S" len)
          | Some n when n < 0 || n > max_frame_len ->
            Bad (Printf.sprintf "frame length %d out of range" n)
          | Some n ->
            (match really_input_string ic n with
             | payload -> Frame (kind, payload)
             | exception End_of_file -> Bad "truncated frame payload"))
     | _ -> Bad (Printf.sprintf "malformed frame header %S" header))
