(* Length-prefixed, versioned wire framing for the compilation service.

   One frame is

     fcd1 <kind> <len>\n<len bytes of payload>

   — a text header (so cram tests can author frames with printf and a
   human can read a capture) followed by an exact byte count, so
   payloads carry arbitrary bytes (assembly, reports, source text)
   without any in-band escaping at the frame layer. The version token
   leads the header: a reader that sees anything but "fcd1" refuses
   the whole stream rather than guessing at an incompatible peer —
   protocol divergence is a refusal, never a misparse.

   Above the frame layer, structured payloads are single-line
   [k=v ...] records whose values are percent-encoded ([enc]/[dec]):
   the metacharacters (space, '=', '%', newlines, ',' and ':' used by
   the k=v and context syntaxes) travel as %XX, everything else as
   itself. Encoding is deterministic, so encoded equality is value
   equality — the byte-identity contracts extend to the wire. *)

let protocol_version = "fcd1"

(* Frames above this are a protocol error, not an allocation attempt:
   a corrupt length must not make the reader swallow the stream. *)
let max_frame_len = 64 * 1024 * 1024

(* ---- percent-encoding ---------------------------------------------- *)

let needs_escape (c : char) : bool =
  match c with
  | ' ' | '=' | '%' | '\n' | '\r' | ',' | ':' -> true
  | c -> Char.code c < 0x20 || Char.code c > 0x7e

let enc (s : string) : string =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
         else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let hex_val (c : char) : int option =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Permissive: a '%' not followed by two hex digits decodes as itself,
   so [dec] never fails — malformed escapes surface as literal bytes
   (and a round-tripped [enc] never produces them). *)
let dec (s : string) : string =
  match String.index_opt s '%' with
  | None -> s
  | Some _ ->
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then
         match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
         | Some hi, Some lo ->
           Buffer.add_char b (Char.chr ((hi * 16) + lo));
           i := !i + 3
         | _ ->
           Buffer.add_char b s.[!i];
           incr i
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b

(* ---- k=v records ---------------------------------------------------- *)

(* Keys are trusted identifiers (no escaping); values are [enc]-coded. *)
let kv (kvs : (string * string) list) : string =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ enc v) kvs)

let parse_kv (line : string) : (string * string) list =
  String.split_on_char ' ' line
  |> List.filter_map (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok '=' with
        | None -> Some (tok, "")
        | Some i ->
          Some
            ( String.sub tok 0 i,
              dec (String.sub tok (i + 1) (String.length tok - i - 1)) ))

let kv_find (kvs : (string * string) list) (key : string) :
  (string, string) Result.t =
  match List.assoc_opt key kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let kv_int (kvs : (string * string) list) (key : string) :
  (int, string) Result.t =
  match kv_find kvs key with
  | Error _ as e -> e
  | Ok v ->
    (match int_of_string_opt v with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "field %S is not an integer: %S" key v))

(* ---- frames ---------------------------------------------------------- *)

type frame =
  | Frame of string * string  (* kind, payload *)
  | Eof
  | Bad of string             (* protocol error: refuse the stream *)

let write_frame (oc : out_channel) ~(kind : string) (payload : string) : unit =
  output_string oc
    (Printf.sprintf "%s %s %d\n" protocol_version kind (String.length payload));
  output_string oc payload

(* Read the header up to '\n' byte by byte (bounded — a peer that
   never sends a newline must not make us buffer forever). *)
let read_header (ic : in_channel) : (string, frame) Result.t =
  let b = Buffer.create 32 in
  let rec go (n : int) : (string, frame) Result.t =
    if n > 256 then Error (Bad "frame header too long")
    else
      match input_char ic with
      | '\n' -> Ok (Buffer.contents b)
      | c ->
        Buffer.add_char b c;
        go (n + 1)
      | exception End_of_file ->
        if Buffer.length b = 0 then Error Eof
        else Error (Bad "truncated frame header")
  in
  go 0

(* Header syntax is shared between the channel and fd readers: one
   parser, so a hostile length prefix is rejected identically on both
   paths (bounded BEFORE any payload allocation — [max_frame_len] is a
   protocol error, not an allocation attempt). *)
let parse_header (header : string) : (string * int, frame) Result.t =
  match String.split_on_char ' ' header with
  | [ version; kind; len ] ->
    if version <> protocol_version then
      Error
        (Bad
           (Printf.sprintf "protocol version mismatch: peer speaks %S, I speak %S"
              version protocol_version))
    else
      (match int_of_string_opt len with
       | None -> Error (Bad (Printf.sprintf "bad frame length %S" len))
       | Some n when n < 0 || n > max_frame_len ->
         Error (Bad (Printf.sprintf "frame length %d out of range" n))
       | Some n -> Ok (kind, n))
  | _ -> Error (Bad (Printf.sprintf "malformed frame header %S" header))

let read_frame (ic : in_channel) : frame =
  match read_header ic with
  | Error f -> f
  | Ok header ->
    (match parse_header header with
     | Error f -> f
     | Ok (kind, n) ->
       (match really_input_string ic n with
        | payload -> Frame (kind, payload)
        | exception End_of_file -> Bad "truncated frame payload"))

(* ---- fd-based reader (timeouts, EINTR, shedding hook) ---------------- *)

(* The in_channel path above serves --stdio and in-process tests; the
   server and client read sockets through this reader instead, because
   resilience needs what buffered channels can't give us:

   - a per-read timeout, so a slow-loris peer that dribbles a frame
     one byte a minute poisons its own stream ([Bad]) instead of
     parking the daemon forever;
   - EINTR-safe read/write/select loops, so a signal storm (SIGCHLD
     from a supervisor, SIGUSR1 probes) never surfaces as a spurious
     transport failure;
   - an auxiliary readiness hook: while the server is blocked reading
     connection A it can still watch the listen socket and shed
     connection C with a fast [busy] frame — overload control must not
     itself be blockable by one slow peer. *)

type fd_reader = {
  rd_fd : Unix.file_descr;
  rd_buf : Bytes.t;
  mutable rd_start : int;            (* first unconsumed byte *)
  mutable rd_len : int;              (* unconsumed byte count *)
  mutable rd_timeout : float option; (* seconds per blocking wait *)
  mutable rd_aux : (Unix.file_descr * (unit -> unit)) option;
}

exception Read_timeout

let fd_reader (fd : Unix.file_descr) : fd_reader =
  { rd_fd = fd;
    rd_buf = Bytes.create 65536;
    rd_start = 0;
    rd_len = 0;
    rd_timeout = None;
    rd_aux = None }

let set_read_timeout (rd : fd_reader) (t : float option) : unit =
  rd.rd_timeout <- t

let set_aux (rd : fd_reader) (aux : (Unix.file_descr * (unit -> unit)) option)
  : unit =
  rd.rd_aux <- aux

(* Wait until [rd_fd] is readable, servicing the aux hook whenever its
   fd fires. The deadline is absolute so EINTR retries and aux
   wake-ups never extend a peer's budget. Raises [Read_timeout]. *)
let rec wait_readable (rd : fd_reader) ~(deadline : float option) : unit =
  let span =
    match deadline with
    | None -> -1.0
    | Some d ->
      let s = d -. Unix.gettimeofday () in
      if s <= 0.0 then raise Read_timeout else s
  in
  let aux_fds = match rd.rd_aux with Some (fd, _) -> [ fd ] | None -> [] in
  match Unix.select (rd.rd_fd :: aux_fds) [] [] span with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable rd ~deadline
  | [], _, _ ->
    (match deadline with
     | Some _ -> raise Read_timeout
     | None -> wait_readable rd ~deadline)
  | ready, _, _ ->
    (match rd.rd_aux with
     | Some (fd, service) when List.mem fd ready -> service ()
     | _ -> ());
    if not (List.mem rd.rd_fd ready) then wait_readable rd ~deadline

(* Pull the next chunk into the buffer; [false] on EOF. *)
let refill (rd : fd_reader) ~(timeout : float option) : bool =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  wait_readable rd ~deadline;
  let rec read_once () =
    match Unix.read rd.rd_fd rd.rd_buf 0 (Bytes.length rd.rd_buf) with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once ()
  in
  let n = read_once () in
  if n = 0 then false
  else begin
    rd.rd_start <- 0;
    rd.rd_len <- n;
    true
  end

let next_byte (rd : fd_reader) ~(timeout : float option) : char option =
  if rd.rd_len = 0 && not (refill rd ~timeout) then None
  else begin
    let c = Bytes.get rd.rd_buf rd.rd_start in
    rd.rd_start <- rd.rd_start + 1;
    rd.rd_len <- rd.rd_len - 1;
    Some c
  end

exception Fd_eof

let read_exact (rd : fd_reader) (n : int) ~(timeout : float option) : string =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if rd.rd_len = 0 && not (refill rd ~timeout) then raise Fd_eof;
    let k = min rd.rd_len (n - !filled) in
    Bytes.blit rd.rd_buf rd.rd_start out !filled k;
    rd.rd_start <- rd.rd_start + k;
    rd.rd_len <- rd.rd_len - k;
    filled := !filled + k
  done;
  Bytes.unsafe_to_string out

(* Read one frame. Without [idle_timeout] the wait for the FIRST
   header byte is unbounded — an idle connection is legal; the
   per-read timeout starts once the peer commits to a frame, so only
   a mid-frame staller is poisoned. Clients pass [idle_timeout:true]:
   there the first byte IS the response arriving, and "the daemon
   never answered" must become a transport failure, not a hang. *)
let read_frame_fd ?(idle_timeout = false) (rd : fd_reader) : frame =
  let timeout = rd.rd_timeout in
  let first_timeout = if idle_timeout then timeout else None in
  match
    let b = Buffer.create 32 in
    let rec header (n : int) : (string, frame) Result.t =
      if n > 256 then Error (Bad "frame header too long")
      else
        match next_byte rd ~timeout:(if n = 0 then first_timeout else timeout) with
        | None ->
          if Buffer.length b = 0 then Error Eof
          else Error (Bad "truncated frame header")
        | Some '\n' -> Ok (Buffer.contents b)
        | Some c ->
          Buffer.add_char b c;
          header (n + 1)
    in
    (match header 0 with
     | Error f -> Error f
     | Ok h ->
       (match parse_header h with
        | Error f -> Error f
        | Ok (kind, n) ->
          (match read_exact rd n ~timeout with
           | payload -> Ok (Frame (kind, payload))
           | exception Fd_eof -> Error (Bad "truncated frame payload"))))
  with
  | Ok f | Error f -> f
  | exception Read_timeout -> Bad "read timed out"

(* Full-write loop: [Unix.write] may write short or be interrupted;
   both silently losing bytes and a spurious failure would break the
   byte-identity contract at the weakest possible place. *)
let write_fd (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame_fd (fd : Unix.file_descr) ~(kind : string) (payload : string) :
  unit =
  write_fd fd
    (Printf.sprintf "%s %s %d\n" protocol_version kind (String.length payload));
  write_fd fd payload
