(* Deterministic retry with exponential backoff for service clients.

   Retrying is only sound when re-issuing cannot change the answer,
   and only useful when the failure was about the *channel*, not the
   *request*. Both conditions are decidable from the status:

   - [Stransport]: the request was never answered (socket died,
     protocol poisoned, daemon restarting) — a retry against a
     (re)started daemon answers from the same store, and requests are
     pure functions of request + store, so the retried answer is the
     answer.
   - [Sbusy]: the server shed the request before starting it — by
     construction nothing happened; retry after backing off.
   - [Srefused] is NEVER retried: a refusal is the answer ("this
     request diverges / missed its deadline"), and hammering a daemon
     with requests it just refused is how overload happens.
   - [Sok] needs no retry.

   The schedule is a pure function of the policy (seeded jitter, no
   wall-clock input), so a retry sequence is reproducible in tests and
   across client fleets a seed apart — determinism extends to failure
   handling. *)

type policy = {
  r_attempts : int;  (* total attempts, including the first (>= 1) *)
  r_base_ms : int;   (* backoff before attempt 2; doubles per attempt *)
  r_max_ms : int;    (* backoff ceiling *)
  r_seed : int;      (* jitter seed *)
}

let default : policy =
  { r_attempts = 3; r_base_ms = 100; r_max_ms = 5_000; r_seed = 0 }

(* The full backoff schedule up front: sleep [i] precedes attempt
   [i + 2]. Exponential with a ceiling, plus up to 25% seeded jitter so
   a fleet of clients sharing a policy but not a seed doesn't
   stampede a recovering daemon in lockstep. *)
let backoffs (p : policy) : int list =
  let rng =
    Random.State.make [| p.r_seed; p.r_attempts; p.r_base_ms; 0xBAC0FF |]
  in
  List.init
    (max 0 (p.r_attempts - 1))
    (fun i ->
       let exp =
         min p.r_max_ms
           (p.r_base_ms * (1 lsl min i 20))  (* shift-safe past 2^20 *)
       in
       let jitter =
         if exp <= 0 then 0 else Random.State.int rng (exp / 4 + 1)
       in
       min p.r_max_ms (exp + jitter))

let should_retry (s : Response.status) : bool =
  match s with
  | Response.Stransport | Response.Sbusy -> true
  | Response.Sok | Response.Srefused -> false

(* [run ~policy f] calls [f ~attempt] (attempt numbers from 1) until it
   returns a non-retryable response or attempts run out; returns the
   last response and the number of attempts made. [sleep] is the
   backoff actuator (injectable so tests run at full speed);
   [on_retry] observes each retry decision (clients report cumulative
   counts on stderr from it). *)
let run ?(policy = default) ?(sleep = fun ms -> Unix.sleepf (float ms /. 1e3))
    ?(on_retry = fun ~attempt:_ ~backoff_ms:_ _ -> ())
    (f : attempt:int -> Response.t) : Response.t * int =
  let rec go (attempt : int) (pending : int list) : Response.t * int =
    let r = f ~attempt in
    match pending with
    | backoff_ms :: rest when should_retry r.Response.rs_status ->
      on_retry ~attempt ~backoff_ms r;
      if backoff_ms > 0 then sleep backoff_ms;
      go (attempt + 1) rest
    | _ -> (r, attempt)
  in
  go 1 (backoffs policy)
