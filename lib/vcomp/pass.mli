(** The middle-end pass manager: a declarative pipeline of named
    passes, each enabled by a predicate over {!options}, run under the
    translation validator, and measured. GVN, LICM and the dead-code
    fixpoint run under a fuel budget — exhaustion skips work, it never
    miscompiles. The canonical {!spec} string joins the WCET layer's
    content-addressed cache key, since two pipelines can produce
    different assembly for the same source. *)

type options = {
  opt_constprop : bool;
  opt_cse : bool;  (** local, epoch-aware value numbering (loads) *)
  opt_gvn : bool;  (** global value numbering of pure operations *)
  opt_licm : bool; (** loop-invariant code motion *)
  opt_deadcode : bool;
  opt_validate : bool;
      (** run the per-pass differential validators (raises
          {!Validate.Validation_failed} on any behaviour change) *)
  opt_fuel : int;  (** analysis budget for GVN/LICM/deadcode *)
}

val default_fuel : int
val default_options : options
(** Everything on, including GVN and LICM ([-O 2]). *)

val all_off : options
(** No optimization passes ([-O 0]); validation still on. *)

val level : int -> options
(** [-O] levels: 0 = none, 1 = constprop+cse+deadcode (the classic
    CompCert 1.7 pipeline of the paper), 2 and above = plus GVN-CSE
    and LICM. Validation on in all levels. *)

val spec : options -> string
(** Canonical pipeline spec: enabled pass names comma-separated
    ("none" when empty), with a ["#fuel"] suffix when the fuel budget
    is not the default. Validation is excluded — it never changes the
    generated code. *)

val of_spec : string -> (options, string) result
(** Parse a comma-separated pass list (or ["none"]); unknown names are
    an [Error]. Validation and fuel keep their defaults. *)

type pass = {
  name : string;
  transform : fuel:int -> Rtl.program -> Rtl.program;
  enabled_by : options -> bool;
}

val pipeline : pass list
(** In execution order: constprop, cse, gvn, licm, deadcode. *)

type pass_stats = {
  st_pass : string;
  st_enabled : bool;
  st_rewrites : int; (** instructions changed in place *)
  st_removed : int;  (** instructions that became no-ops *)
  st_hoisted : int;  (** instructions added outside loops by LICM *)
  st_ms : float;
}

val run_pipeline : options -> Rtl.program -> Rtl.program * pass_stats list
(** Run every enabled pass over the selected program, in place;
    returns the program and per-pass stats in pipeline order.
    @raise Validate.Validation_failed if a validator rejects a pass. *)

val aggregate : pass_stats list list -> pass_stats list
(** Sum stats across many compilations, in pipeline order. *)

val pp_stats : Format.formatter -> pass_stats list -> unit
(** One accounting line per pass, for stderr reporting. Deliberately
    omits [st_ms]: the printed form is byte-deterministic (the cram
    suite captures it); wall times are for programmatic consumers. *)
