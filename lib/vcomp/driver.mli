(** Compilation driver of the verified-style compiler ("vcomp",
    standing in for CompCert 1.7 extended with a Monniaux & Six style
    middle-end): selection, the {!Pass} pipeline (constprop, local CSE,
    global GVN-CSE, LICM, deadcode), graph-coloring register
    allocation, linearization, emission. Optimizations run under their
    translation validators unless disabled. *)

type options = Pass.options = {
  opt_constprop : bool;
  opt_cse : bool;
  opt_gvn : bool;
  opt_licm : bool;
  opt_deadcode : bool;
  opt_validate : bool;
      (** run the per-pass differential validators (raises
          {!Validate.Validation_failed} on any behaviour change) *)
  opt_fuel : int;
      (** analysis budget for GVN/LICM/deadcode; exhaustion skips the
          pass, it never miscompiles *)
}

val default_options : options
(** All optimizations and validation on. *)

val no_constprop : options
val no_cse : options
val no_gvn : options
val no_licm : options
val no_validation : options

val compile : ?options:options -> Minic.Ast.program -> Target.Asm.program
(** Type-check and compile.
    @raise Invalid_argument on ill-typed programs;
    @raise Validate.Validation_failed if a validator rejects a pass;
    @raise Asmgen.Error if the register-allocation checker rejects. *)

val compile_with_rtl :
  ?options:options -> Minic.Ast.program -> Rtl.program * Target.Asm.program
(** Also return the optimized RTL, for inspection and tests. *)

val compile_full :
  ?options:options ->
  Minic.Ast.program ->
  Rtl.program * Target.Asm.program * Pass.pass_stats list
(** Also return the per-pass stats, for stderr accounting. *)
