(* Natural-loop detection over RTL from back edges (an edge b -> h
   where h dominates b). The selected IR only contains reducible
   control flow — mini-C has no goto — so natural loops cover all
   cycles; like the analyzer-side [Wcet.Loops], reducibility is
   nevertheless verified, and irreducible flow makes the optimization
   pass skip the function rather than transform it unsoundly. *)

exception Irreducible of string

type loop = {
  l_header : Rtl.node;
  l_body : Rtl.node list; (* nodes in the loop, including the header *)
  l_back_srcs : Rtl.node list; (* sources of back edges into the header *)
  l_entry_preds : Rtl.node list; (* predecessors of the header outside the loop *)
}

type t = { loops : loop list }

let compute (f : Rtl.func) (dom : Dom.t) : t =
  let rpo = Rtl.reverse_postorder f in
  let preds_tbl = Rtl.predecessors f in
  let preds b = Option.value ~default:[] (Hashtbl.find_opt preds_tbl b) in
  (* find back edges *)
  let back = Hashtbl.create 17 in (* header -> back-edge source list *)
  List.iter
    (fun n ->
       List.iter
         (fun s ->
            if Dom.dominates dom s n then begin
              let cur = Option.value ~default:[] (Hashtbl.find_opt back s) in
              Hashtbl.replace back s (n :: cur)
            end)
         (Rtl.successors (Rtl.get_instr f n)))
    rpo;
  (* every retreating edge of a DFS must be a back edge, or the CFG is
     irreducible *)
  let rpo_index = Hashtbl.create 251 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) rpo;
  List.iter
    (fun n ->
       List.iter
         (fun s ->
            match Hashtbl.find_opt rpo_index s with
            | Some si
              when si <= Hashtbl.find rpo_index n
                   && (not (Dom.dominates dom s n))
                   && s <> n ->
              raise
                (Irreducible
                   (Printf.sprintf "%s: edge %d -> %d" f.Rtl.f_name n s))
            | _ -> ())
         (Rtl.successors (Rtl.get_instr f n)))
    rpo;
  (* natural loop of each header: union over its back edges *)
  let loops =
    Hashtbl.fold
      (fun header back_srcs acc ->
         let in_loop = Hashtbl.create 17 in
         Hashtbl.replace in_loop header ();
         let rec pull (b : Rtl.node) : unit =
           if not (Hashtbl.mem in_loop b) then begin
             Hashtbl.replace in_loop b ();
             List.iter pull (preds b)
           end
         in
         List.iter pull back_srcs;
         let body =
           Hashtbl.fold (fun b () acc -> b :: acc) in_loop []
           |> List.sort compare
         in
         let entry_preds =
           List.filter (fun p -> not (Hashtbl.mem in_loop p)) (preds header)
           |> List.sort compare
         in
         { l_header = header;
           l_body = body;
           l_back_srcs = List.sort compare back_srcs;
           l_entry_preds = entry_preds }
         :: acc)
      back []
  in
  (* deterministic order: innermost (smallest body) first, header as
     tie-break, so LICM visits loops in a fixed order *)
  let loops =
    List.sort
      (fun a b ->
         match compare (List.length a.l_body) (List.length b.l_body) with
         | 0 -> compare a.l_header b.l_header
         | c -> c)
      loops
  in
  { loops }
