(** Loop-invariant code motion over RTL (Monniaux & Six style):
    invariant pure operations and — when the loop contains no store —
    invariant loads move to a freshly created preheader. Hoisting
    conditions are speculation-safety arguments re-checked per run by
    {!Validate.check_pass}; irreducible functions, loops headed by the
    function entry, and fuel exhaustion all mean "hoist nothing", never
    an unsound move. *)

val transform_func : fuel:int -> Rtl.func -> unit
(** In place. *)

val transform : ?fuel:int -> Rtl.program -> Rtl.program
(** [fuel] (default 200_000) bounds rounds of re-analysis per
    function at roughly one function-size unit per round. *)
