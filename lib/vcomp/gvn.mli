(** Global CSE by value numbering over the whole RTL CFG (Monniaux &
    Six style): pure operations whose hash-consed symbolic term is
    already held by another register become moves; operations whose
    destination already holds the term become no-ops. Loads are left to
    the local, epoch-aware [Cse]. The fixpoint runs under a fuel
    budget; exhaustion skips the function — the pass never rewrites
    from an unconverged analysis. *)

val transform_func : fuel:int -> Rtl.func -> unit
(** In place. *)

val transform : ?fuel:int -> Rtl.program -> Rtl.program
(** [fuel] (default 200_000) is a per-function worklist-step budget. *)
