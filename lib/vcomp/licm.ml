(* Loop-invariant code motion over RTL, after Monniaux & Six: invariant
   computations move to a freshly created preheader, and the per-run
   translation validator ([Validate.check_pass]) re-checks the result,
   so the safety argument below is a design argument, not a trusted
   proof.

   The preheader executes whenever control *enters* the loop — also on
   a zero-iteration trip — so hoisting is speculation, and every
   condition guards one way speculation could change behaviour under
   the RTL reference interpreter:

   - arguments must be invariant (no definition inside the loop) and
     *available* at the preheader: each is a parameter or has a
     definition outside the loop that dominates the header, so the
     hoisted instruction can never read an undefined register;
   - the destination must have a single definition in the function,
     must not be live into the header (no use-before-def inside the
     loop), and must either be dead at every loop-exit target or be
     defined at a node dominating every exit source — otherwise code
     after the loop could observe the early definition;
   - pure operations cannot fault, so they may always be speculated;
     global-scalar loads cannot fault either (every named global is
     bound) and move when the loop contains no store; array loads can
     fault on an out-of-range index, so they additionally require
     their node to dominate every exit source — no speculation;
   - loops whose header is the function entry are skipped (there is no
     outside edge to redirect), as are functions with irreducible
     control flow.

   Each fixpoint round recomputes dominators, loops, liveness and
   definition sites from scratch, so chains of invariant computations
   hoist over successive rounds; the round count is bounded by the
   fuel budget — exhaustion stops hoisting, it never miscompiles. *)

let is_move (i : Rtl.instruction) : bool =
  match i with Rtl.Iop (Rtl.Omove, _, _, _) -> true | _ -> false

(* Replace successor [from_] with [to_] in the instruction at [n]. *)
let retarget (f : Rtl.func) (n : Rtl.node) ~(from_ : Rtl.node)
    ~(to_ : Rtl.node) : unit =
  let s x = if x = from_ then to_ else x in
  let i =
    match Rtl.get_instr f n with
    | Rtl.Inop k -> Rtl.Inop (s k)
    | Rtl.Iop (op, args, d, k) -> Rtl.Iop (op, args, d, s k)
    | Rtl.Iload (ch, a, args, d, k) -> Rtl.Iload (ch, a, args, d, s k)
    | Rtl.Istore (ch, a, args, src, k) -> Rtl.Istore (ch, a, args, src, s k)
    | Rtl.Icond (c, args, k1, k2) -> Rtl.Icond (c, args, s k1, s k2)
    | Rtl.Iacq (x, d, k) -> Rtl.Iacq (x, d, s k)
    | Rtl.Iout (x, src, k) -> Rtl.Iout (x, src, s k)
    | Rtl.Iannot (t, args, k) -> Rtl.Iannot (t, args, s k)
    | Rtl.Ireturn _ as i -> i
  in
  Rtl.set_instr f n i

(* One round: hoist what is provably invariant in the first loop that
   yields anything, then return for a full recomputation (CFG edits
   invalidate the analyses, so at most one loop is edited per round). *)
let hoist_once (f : Rtl.func) : bool =
  match
    let dom = Dom.compute f in
    (dom, Loops.compute f dom)
  with
  | exception Loops.Irreducible _ -> false
  | dom, loopnest ->
    let lv = Liveness.analyze f in
    let rpo = Rtl.reverse_postorder f in
    let live_in (n : Rtl.node) : Liveness.RegSet.t =
      Liveness.live_before (Rtl.get_instr f n) (Liveness.live_after lv n)
    in
    (* definition sites over reachable nodes *)
    let defs : (Rtl.reg, Rtl.node list) Hashtbl.t = Hashtbl.create 251 in
    List.iter
      (fun n ->
         match Rtl.instr_def (Rtl.get_instr f n) with
         | Some d ->
           let cur = Option.value ~default:[] (Hashtbl.find_opt defs d) in
           Hashtbl.replace defs d (n :: cur)
         | None -> ())
      rpo;
    let defs_of r = Option.value ~default:[] (Hashtbl.find_opt defs r) in
    let is_param r = List.mem_assoc r f.Rtl.f_params in
    let changed = ref false in
    let try_loop (l : Loops.loop) : unit =
      if (not !changed) && l.Loops.l_header <> f.Rtl.f_entry
         && l.Loops.l_entry_preds <> [] then begin
        let body = Hashtbl.create 17 in
        List.iter (fun n -> Hashtbl.replace body n ()) l.Loops.l_body;
        let in_body n = Hashtbl.mem body n in
        let header = l.Loops.l_header in
        let exit_srcs =
          List.filter
            (fun n ->
               List.exists
                 (fun s -> not (in_body s))
                 (Rtl.successors (Rtl.get_instr f n)))
            l.Loops.l_body
        in
        let exit_targets =
          List.concat_map
            (fun n ->
               List.filter (fun s -> not (in_body s))
                 (Rtl.successors (Rtl.get_instr f n)))
            exit_srcs
          |> List.sort_uniq compare
        in
        let has_store =
          List.exists
            (fun n ->
               match Rtl.get_instr f n with Rtl.Istore _ -> true | _ -> false)
            l.Loops.l_body
        in
        let dominates_exits n =
          List.for_all (fun e -> Dom.dominates dom n e) exit_srcs
        in
        let arg_ok r =
          (not (List.exists in_body (defs_of r)))
          && (is_param r
              || List.exists
                   (fun m -> (not (in_body m)) && Dom.dominates dom m header)
                   (defs_of r))
        in
        let dest_ok n d =
          defs_of d = [ n ]
          && (not (Liveness.RegSet.mem d (live_in header)))
          && (dominates_exits n
              || not
                   (List.exists
                      (fun t -> Liveness.RegSet.mem d (live_in t))
                      exit_targets))
        in
        let hoistable n =
          match Rtl.get_instr f n with
          | Rtl.Iop (_, args, d, _) as i when not (is_move i) ->
            List.for_all arg_ok args && dest_ok n d
          | Rtl.Iload (_, Rtl.ADglob _, args, d, _) ->
            (not has_store) && List.for_all arg_ok args && dest_ok n d
          | Rtl.Iload (_, Rtl.ADarr _, args, d, _) ->
            (not has_store) && dominates_exits n
            && List.for_all arg_ok args && dest_ok n d
          | _ -> false
        in
        (* preheader created lazily on the first hoist; [tail] is the
           last node of the preheader chain, whose successor is the
           header *)
        let tail = ref None in
        let append (i : Rtl.instruction) : unit =
          let pre =
            match !tail with
            | Some t -> t
            | None ->
              let pre = Rtl.add_instr f (Rtl.Inop header) in
              List.iter
                (fun p -> retarget f p ~from_:header ~to_:pre)
                l.Loops.l_entry_preds;
              tail := Some pre;
              pre
          in
          let n' = Rtl.add_instr f i in
          retarget f pre ~from_:header ~to_:n';
          tail := Some n'
        in
        List.iter
          (fun n ->
             if in_body n && hoistable n then begin
               let i = Rtl.get_instr f n in
               let s = List.hd (Rtl.successors i) in
               append (match i with
                   | Rtl.Iop (op, args, d, _) ->
                     Rtl.Iop (op, args, d, header)
                   | Rtl.Iload (ch, a, args, d, _) ->
                     Rtl.Iload (ch, a, args, d, header)
                   | _ -> assert false);
               Rtl.set_instr f n (Rtl.Inop s);
               changed := true
             end)
          rpo
      end
    in
    List.iter try_loop loopnest.Loops.loops;
    !changed

let transform_func ~(fuel : int) (f : Rtl.func) : unit =
  (* each round costs roughly one full reanalysis of the function *)
  let rounds = fuel / (Hashtbl.length f.Rtl.f_code + 1) in
  let rec loop (budget : int) : unit =
    if budget > 0 && hoist_once f then loop (budget - 1)
  in
  loop (min 16 rounds)

let transform ?(fuel = 200_000) (p : Rtl.program) : Rtl.program =
  List.iter (transform_func ~fuel) p.Rtl.p_funcs;
  p
