(* Compilation driver of the verified-style compiler ("vcomp", standing
   in for CompCert 1.7 extended with the Monniaux & Six middle-end):
   selection, then the declarative optimization pipeline of [Pass]
   (constant propagation, local CSE, global GVN-CSE, LICM, dead-code
   elimination), then graph-coloring register allocation, linearization
   and assembly emission.

   Every enabled optimization runs under its translation validator
   unless [opt_validate] is turned off (benchmark runs disable it for
   compile-time measurements; correctness tests always keep it on). *)

type options = Pass.options = {
  opt_constprop : bool;
  opt_cse : bool;
  opt_gvn : bool;
  opt_licm : bool;
  opt_deadcode : bool;
  opt_validate : bool;
  opt_fuel : int;
}

let default_options : options = Pass.default_options

(* Ablation configurations used by the design-choice benchmarks. *)
let no_constprop : options = { default_options with opt_constprop = false }
let no_cse : options = { default_options with opt_cse = false }
let no_gvn : options = { default_options with opt_gvn = false }
let no_licm : options = { default_options with opt_licm = false }
let no_validation : options = { default_options with opt_validate = false }

(* Compile a type-checked mini-C program through the pass pipeline,
   returning the final RTL, the assembly and the per-pass stats. *)
let compile_full ?(options = default_options) (src : Minic.Ast.program) :
  Rtl.program * Target.Asm.program * Pass.pass_stats list =
  Minic.Typecheck.check_program_exn src;
  let rtl = Selection.trans_program src in
  let rtl, stats = Pass.run_pipeline options rtl in
  (rtl, Asmgen.translate_program rtl, stats)

let compile ?options (src : Minic.Ast.program) : Target.Asm.program =
  let _, asm, _ = compile_full ?options src in
  asm

let compile_with_rtl ?options (src : Minic.Ast.program) :
  Rtl.program * Target.Asm.program =
  let rtl, asm, _ = compile_full ?options src in
  (rtl, asm)
