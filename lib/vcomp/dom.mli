(** Dominators over RTL control-flow graphs (Cooper–Harvey–Kennedy),
    prerequisite of natural-loop detection for LICM. The IR twin of the
    analyzer-side [Wcet.Dom], which runs on machine-code CFGs. *)

type t = {
  d_idom : int array;
      (** immediate dominator; entry maps to itself; unreachable nodes
          map to -1 *)
  d_rpo_index : int array;
}

val compute : Rtl.func -> t

val dominates : t -> int -> int -> bool
(** [dominates d a b]: does node [a] dominate node [b]? Only valid for
    nodes that existed when [compute] ran. *)

val dominates_naive : Rtl.func -> int -> int -> bool
(** O(n^2) reachability-removal oracle for property tests. *)
