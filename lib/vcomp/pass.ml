(* The middle-end pass manager: the pipeline is a declarative list of
   named passes, each enabled by a predicate over the option record,
   each run under the translation validator (unless validation is off),
   and each measured — instructions rewritten/removed/hoisted and wall
   time — by diffing the snapshot the validator needs anyway.

   Analysis-heavy passes (GVN, LICM, the dead-code fixpoint) take a
   fuel budget in the style of the analyzer's [Wcet.Fuel]: exhaustion
   means the pass skips (identity), never that it miscompiles.

   The canonical [spec] string of an option record names the enabled
   passes and the fuel budget; it is what the CLI `--passes` flag
   parses, and — because two pipelines can produce different assembly
   for the same source — what the WCET layer folds into its
   content-addressed cache key. *)

type options = {
  opt_constprop : bool;
  opt_cse : bool;       (* local, epoch-aware value numbering (loads) *)
  opt_gvn : bool;       (* global value numbering of pure operations *)
  opt_licm : bool;      (* loop-invariant code motion *)
  opt_deadcode : bool;
  opt_validate : bool;
  opt_fuel : int;       (* analysis budget for GVN/LICM/deadcode *)
}

let default_fuel = 200_000

let default_options : options =
  { opt_constprop = true;
    opt_cse = true;
    opt_gvn = true;
    opt_licm = true;
    opt_deadcode = true;
    opt_validate = true;
    opt_fuel = default_fuel }

type pass = {
  name : string;
  transform : fuel:int -> Rtl.program -> Rtl.program;
  enabled_by : options -> bool;
}

let pipeline : pass list =
  [ { name = "constprop";
      transform = (fun ~fuel:_ p -> Constprop.transform p);
      enabled_by = (fun o -> o.opt_constprop) };
    { name = "cse";
      transform = (fun ~fuel:_ p -> Cse.transform p);
      enabled_by = (fun o -> o.opt_cse) };
    { name = "gvn";
      transform = (fun ~fuel p -> Gvn.transform ~fuel p);
      enabled_by = (fun o -> o.opt_gvn) };
    { name = "licm";
      transform = (fun ~fuel p -> Licm.transform ~fuel p);
      enabled_by = (fun o -> o.opt_licm) };
    { name = "deadcode";
      (* fuel is a sweep budget here; cap it, each sweep is a full
         liveness recomputation *)
      transform = (fun ~fuel p -> Deadcode.transform ~fuel:(max 1 (min 64 fuel)) p);
      enabled_by = (fun o -> o.opt_deadcode) } ]

(* -- canonical pipeline spec ---------------------------------------- *)

(* Enabled pass names, comma-separated, plus the fuel budget (which
   also shapes the output: exhaustion skips work). Validation is not
   part of the spec: it never changes the generated code. *)
let spec (o : options) : string =
  let on = List.filter (fun ps -> ps.enabled_by o) pipeline in
  let names =
    match on with
    | [] -> "none"
    | _ -> String.concat "," (List.map (fun ps -> ps.name) on)
  in
  if o.opt_fuel = default_fuel then names
  else Printf.sprintf "%s#%d" names o.opt_fuel

let all_off : options =
  { default_options with
    opt_constprop = false;
    opt_cse = false;
    opt_gvn = false;
    opt_licm = false;
    opt_deadcode = false }

(* -O levels: 0 = no optimization, 1 = the classic local pipeline
   (CompCert 1.7 as the paper describes it), 2 = plus global GVN-CSE
   and LICM (the default). *)
let level (n : int) : options =
  match n with
  | 0 -> all_off
  | 1 -> { default_options with opt_gvn = false; opt_licm = false }
  | _ -> default_options

let of_spec (s : string) : (options, string) result =
  let enable o name =
    match name with
    | "constprop" -> Ok { o with opt_constprop = true }
    | "cse" -> Ok { o with opt_cse = true }
    | "gvn" -> Ok { o with opt_gvn = true }
    | "licm" -> Ok { o with opt_licm = true }
    | "deadcode" -> Ok { o with opt_deadcode = true }
    | _ ->
      Error
        (Printf.sprintf
           "unknown pass %S (expected constprop, cse, gvn, licm, deadcode)"
           name)
  in
  if String.trim s = "none" then Ok all_off
  else
    String.split_on_char ',' s
    |> List.fold_left
      (fun acc name ->
         match acc with
         | Error _ as e -> e
         | Ok o -> enable o (String.trim name))
      (Ok all_off)

(* -- the runner ----------------------------------------------------- *)

type pass_stats = {
  st_pass : string;
  st_enabled : bool;
  st_rewrites : int; (* instructions changed in place (to a different op) *)
  st_removed : int;  (* instructions that became no-ops *)
  st_hoisted : int;  (* instructions added outside loops by LICM *)
  st_ms : float;
}

let is_nop (i : Rtl.instruction) : bool =
  match i with Rtl.Inop _ -> true | _ -> false

(* Diff a snapshot against the transformed program. Comparison uses
   [Stdlib.compare] so NaN float constants compare equal to
   themselves. *)
let diff_stats (name : string) (ms : float) (before : Rtl.program)
    (after : Rtl.program) : pass_stats =
  let rewrites = ref 0 and removed = ref 0 and hoisted = ref 0 in
  List.iter2
    (fun (fb : Rtl.func) (fa : Rtl.func) ->
       Hashtbl.iter
         (fun n ia ->
            match Hashtbl.find_opt fb.Rtl.f_code n with
            | None -> if not (is_nop ia) then incr hoisted
            | Some ib ->
              if Stdlib.compare ib ia <> 0 then
                if is_nop ia then (if not (is_nop ib) then incr removed)
                else incr rewrites)
         fa.Rtl.f_code)
    before.Rtl.p_funcs after.Rtl.p_funcs;
  { st_pass = name;
    st_enabled = true;
    st_rewrites = !rewrites;
    st_removed = !removed;
    st_hoisted = !hoisted;
    st_ms = ms }

let disabled_stats (name : string) : pass_stats =
  { st_pass = name;
    st_enabled = false;
    st_rewrites = 0;
    st_removed = 0;
    st_hoisted = 0;
    st_ms = 0.0 }

(* Run the pipeline over a selected program. Every enabled pass is
   snapshot, run, validated (unless [opt_validate] is off) and
   measured; a validation failure raises [Validate.Validation_failed]
   and aborts the compilation. *)
let run_pipeline (opts : options) (p : Rtl.program) :
  Rtl.program * pass_stats list =
  let stats = ref [] in
  let p =
    List.fold_left
      (fun p pass ->
         if not (pass.enabled_by opts) then begin
           stats := disabled_stats pass.name :: !stats;
           p
         end
         else begin
           let before = Rtl.copy_program p in
           let t0 = Unix.gettimeofday () in
           let after = pass.transform ~fuel:opts.opt_fuel p in
           let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
           if opts.opt_validate then
             Validate.check_pass ~pass:pass.name ~before ~after;
           stats := diff_stats pass.name ms before after :: !stats;
           after
         end)
      p pipeline
  in
  (p, List.rev !stats)

(* -- stats aggregation and printing (stderr accounting) ------------- *)

(* Sum per-pass stats across many compilations, in pipeline order. *)
let aggregate (runs : pass_stats list list) : pass_stats list =
  List.map
    (fun pass ->
       List.fold_left
         (fun acc run ->
            List.fold_left
              (fun acc st ->
                 if st.st_pass = acc.st_pass then
                   { acc with
                     st_enabled = acc.st_enabled || st.st_enabled;
                     st_rewrites = acc.st_rewrites + st.st_rewrites;
                     st_removed = acc.st_removed + st.st_removed;
                     st_hoisted = acc.st_hoisted + st.st_hoisted;
                     st_ms = acc.st_ms +. st.st_ms }
                 else acc)
              acc run)
         (disabled_stats pass.name) runs)
    pipeline

let pp_stats (ppf : Format.formatter) (stats : pass_stats list) : unit =
  List.iter
    (fun st ->
       if not st.st_enabled then
         Format.fprintf ppf "pass %-9s off@." st.st_pass
       else
         (* wall time stays out of the printed line: stderr must be
            byte-deterministic (cram-tested); [st_ms] is for
            programmatic consumers *)
         Format.fprintf ppf
           "pass %-9s %4d rewritten, %4d removed, %4d hoisted@."
           st.st_pass st.st_rewrites st.st_removed st.st_hoisted)
    stats
