(** Dead-code elimination: pure instructions whose destination is dead
    become no-ops; iterates with liveness recomputation so chains of
    dead computations vanish (the pattern left behind by CSE, GVN and
    LICM rewriting to moves). [fuel] (default 50) bounds the number of
    recomputation sweeps. *)

val transform_func : ?fuel:int -> Rtl.func -> unit
val transform : ?fuel:int -> Rtl.program -> Rtl.program
