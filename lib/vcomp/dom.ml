(* Dominator computation over RTL control-flow graphs (Cooper–Harvey–
   Kennedy iterative algorithm), the prerequisite of natural-loop
   detection for loop-invariant code motion. Mirrors the shape of the
   downstream analyzer's [Wcet.Dom], which runs on reconstructed
   machine-code CFGs; this one runs on the compiler's own IR, where
   every node carries a single instruction. *)

type t = {
  d_idom : int array;
      (* immediate dominator; entry maps to itself; nodes unreachable
         from the entry map to -1 *)
  d_rpo_index : int array;
}

let compute (f : Rtl.func) : t =
  let n = f.Rtl.f_next_node in
  let rpo = Rtl.reverse_postorder f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds_tbl = Rtl.predecessors f in
  let preds b = Option.value ~default:[] (Hashtbl.find_opt preds_tbl b) in
  let idom = Array.make n (-1) in
  idom.(f.Rtl.f_entry) <- f.Rtl.f_entry;
  let rec intersect (a : int) (b : int) : int =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         if b <> f.Rtl.f_entry then begin
           let processed = List.filter (fun p -> idom.(p) <> -1) (preds b) in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  { d_idom = idom; d_rpo_index = rpo_index }

(* Does [a] dominate [b]? Both must be nodes that existed when the
   dominator tree was computed. *)
let dominates (d : t) (a : int) (b : int) : bool =
  let rec up (x : int) : bool =
    if x = a then true
    else if x = -1 || d.d_idom.(x) = x then x = a
    else up d.d_idom.(x)
  in
  up b

(* Naive O(n^2) recomputation used by property tests: [a] dominates [b]
   iff removing [a] makes [b] unreachable from the entry. *)
let dominates_naive (f : Rtl.func) (a : int) (b : int) : bool =
  if a = b then true
  else begin
    let visited = Hashtbl.create 251 in
    let rec dfs x =
      if (not (Hashtbl.mem visited x)) && x <> a then begin
        Hashtbl.replace visited x ();
        List.iter dfs (Rtl.successors (Rtl.get_instr f x))
      end
    in
    dfs f.Rtl.f_entry;
    let reachable = Hashtbl.create 251 in
    let rec dfs2 x =
      if not (Hashtbl.mem reachable x) then begin
        Hashtbl.replace reachable x ();
        List.iter dfs2 (Rtl.successors (Rtl.get_instr f x))
      end
    in
    dfs2 f.Rtl.f_entry;
    Hashtbl.mem reachable b && not (Hashtbl.mem visited b)
  end
