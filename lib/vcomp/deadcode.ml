(* Dead-code elimination: pure instructions whose destination is not
   live after them are turned into no-ops. Iterates with liveness
   recomputation until a fixpoint, so chains of dead computations vanish
   (the common pattern left behind by CSE rewriting to moves). *)

let eliminate_once (f : Rtl.func) : bool =
  let lv = Liveness.analyze f in
  let changed = ref false in
  List.iter
    (fun n ->
       let i = Rtl.get_instr f n in
       if not (Rtl.has_effect i) then
         match i, Rtl.instr_def i with
         | (Rtl.Iop (_, _, _, s) | Rtl.Iload (_, _, _, _, s)), Some d ->
           if not (Liveness.RegSet.mem d (Liveness.live_after lv n)) then begin
             Rtl.set_instr f n (Rtl.Inop s);
             changed := true
           end
         | _, _ -> ())
    (Rtl.reverse_postorder f);
  !changed

let transform_func ?(fuel = 50) (f : Rtl.func) : unit =
  let rec loop (budget : int) : unit =
    if budget > 0 && eliminate_once f then loop (budget - 1)
  in
  loop fuel

let transform ?(fuel = 50) (p : Rtl.program) : Rtl.program =
  List.iter (transform_func ~fuel) p.Rtl.p_funcs;
  p
