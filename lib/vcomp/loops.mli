(** Natural loops over RTL from back edges, the IR twin of the
    analyzer-side [Wcet.Loops]. Irreducible control flow raises; the
    LICM pass treats that as "skip the function", never as license to
    transform. *)

exception Irreducible of string

type loop = {
  l_header : Rtl.node;
  l_body : Rtl.node list; (** nodes in the loop, including the header *)
  l_back_srcs : Rtl.node list; (** sources of back edges into the header *)
  l_entry_preds : Rtl.node list;
      (** predecessors of the header outside the loop *)
}

type t = { loops : loop list }

val compute : Rtl.func -> Dom.t -> t
(** Loops sorted innermost (smallest body) first, header as tie-break.
    @raise Irreducible on a retreating edge that is not a back edge. *)
