(* Global CSE by value numbering over the whole RTL CFG, after
   Monniaux & Six ("Simple, Light, Yet Formally Verified, Global CSE
   and Loop-Invariant Code Motion"): a forward dataflow analysis maps
   each pseudo-register to a hash-consed symbolic term; an operation
   whose term is already held by another register of the same class is
   rewritten to a move (or to a no-op when the destination itself
   already holds it). Local value numbering ([Cse]) stays responsible
   for memoizing loads under memory epochs; this pass only numbers
   pure operations, so it needs no alias reasoning, and its soundness
   is re-checked per run by [Validate.check_pass] in the spirit of the
   paper's verified translation validation.

   Term language. [Tinit r] is the entry value of register [r] (the
   parameters). A pure operation over known terms is [Top]. A value the
   analysis cannot symbolize — a load, a volatile acquisition, a use of
   a register with no current binding — is named by the *node* that
   produced it: [Topaque n] for opaque definitions, [Targ (n, i)] for
   the i-th argument of node [n] at its most recent execution. Naming
   by node keeps the fixpoint deterministic (no fresh-name supply), at
   the price of a staleness hazard across loop iterations: a register
   bound to a node-[n] term denotes "the value node [n] produced *last
   time*", which the next execution of [n] silently changes. The
   transfer function therefore *invalidates* — drops — every binding
   mentioning node [n] before it (re)executes [n], so stale terms can
   never witness a false equality.

   The fixpoint runs under a fuel budget: if it has not converged
   within the budget, the pass skips the function (identity), never
   rewrites from an unconverged analysis. *)

module RegMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type opkey =
  | Kop of Rtl.operation (* never [Ofloatconst]: floats are normalized *)
  | Kfconst of int64     (* float constant by bit pattern *)

type tkey =
  | Tinit of Rtl.reg
  | Topaque of Rtl.node
  | Targ of Rtl.node * int
  | Top of opkey * int list (* operation over term ids *)

(* Hash-consing tables: structural term -> id, id -> set of nodes the
   term mentions (for invalidation). *)
type tables = {
  mutable next_id : int;
  ids : (tkey, int) Hashtbl.t;
  deps : (int, IntSet.t) Hashtbl.t;
}

let create_tables () : tables =
  { next_id = 0; ids = Hashtbl.create 251; deps = Hashtbl.create 251 }

let term (tb : tables) (k : tkey) : int =
  match Hashtbl.find_opt tb.ids k with
  | Some id -> id
  | None ->
    let id = tb.next_id in
    tb.next_id <- id + 1;
    Hashtbl.replace tb.ids k id;
    let d =
      match k with
      | Tinit _ -> IntSet.empty
      | Topaque n | Targ (n, _) -> IntSet.singleton n
      | Top (_, args) ->
        List.fold_left
          (fun acc a -> IntSet.union acc (Hashtbl.find tb.deps a))
          IntSet.empty args
    in
    Hashtbl.replace tb.deps id d;
    id

let opkey (op : Rtl.operation) : opkey =
  match op with
  | Rtl.Ofloatconst c -> Kfconst (Int64.bits_of_float c)
  | _ -> Kop op

(* Abstract environment: register -> term id; absent = unknown. *)
type env = int RegMap.t

(* Drop every binding whose term mentions node [n]. *)
let invalidate (tb : tables) (n : Rtl.node) (e : env) : env =
  RegMap.filter (fun _ t -> not (IntSet.mem n (Hashtbl.find tb.deps t))) e

(* Resolve the arguments of node [n]; unmapped arguments are named
   [Targ (n, i)] and the name is recorded for the argument register
   itself, so a later identical operation on untouched registers still
   numbers equal. *)
let resolve_args (tb : tables) (n : Rtl.node) (args : Rtl.reg list) (e : env) :
  env * int list =
  let e, rev =
    List.fold_left
      (fun (e, acc) r ->
         match RegMap.find_opt r e with
         | Some t -> (e, t :: acc)
         | None ->
           let t = term tb (Targ (n, List.length acc)) in
           (RegMap.add r t e, t :: acc))
      (e, []) args
  in
  (e, List.rev rev)

let transfer (tb : tables) (f : Rtl.func) (n : Rtl.node) (e : env) : env =
  match Rtl.get_instr f n with
  | Rtl.Iop (Rtl.Omove, [ src ], d, _) ->
    let e = invalidate tb n e in
    (match RegMap.find_opt src e with
     | Some t -> RegMap.add d t e
     | None ->
       (* source and destination now hold the same (unknown) value *)
       let t = term tb (Targ (n, 0)) in
       RegMap.add src t (RegMap.add d t e))
  | Rtl.Iop (op, args, d, _) ->
    let e = invalidate tb n e in
    let e, ts = resolve_args tb n args e in
    RegMap.add d (term tb (Top (opkey op, ts))) e
  | Rtl.Iload (_, _, _, d, _) | Rtl.Iacq (_, d, _) ->
    let e = invalidate tb n e in
    RegMap.add d (term tb (Topaque n)) e
  | Rtl.Inop _ | Rtl.Istore _ | Rtl.Icond _ | Rtl.Iout _ | Rtl.Iannot _
  | Rtl.Ireturn _ -> e

(* Meet at merge points: keep only bindings on which all predecessors
   agree. Terms are hash-consed, so agreement is id equality. *)
let meet (a : env) (b : env) : env =
  RegMap.merge
    (fun _ x y ->
       match x, y with
       | Some x, Some y when x = y -> Some x
       | _, _ -> None)
    a b

let env_equal (a : env) (b : env) : bool = RegMap.equal Int.equal a b

(* Forward fixpoint of in-environments, mirroring [Constprop.analyze]
   but bounded: each worklist step costs one unit of fuel, and [None]
   is returned on exhaustion. *)
let analyze (tb : tables) (f : Rtl.func) ~(fuel : int) :
  (Rtl.node, env) Hashtbl.t option =
  let preds_tbl = Rtl.predecessors f in
  let preds n = Option.value ~default:[] (Hashtbl.find_opt preds_tbl n) in
  let in_env : (Rtl.node, env) Hashtbl.t = Hashtbl.create 251 in
  let worklist = Queue.create () in
  let workset = Hashtbl.create 251 in
  let push n =
    if not (Hashtbl.mem workset n) then begin
      Hashtbl.replace workset n ();
      Queue.add n worklist
    end
  in
  List.iter push (Rtl.reverse_postorder f);
  let entry_env =
    List.fold_left
      (fun e (r, _) -> RegMap.add r (term tb (Tinit r)) e)
      RegMap.empty f.Rtl.f_params
  in
  Hashtbl.replace in_env f.Rtl.f_entry entry_env;
  let fuel = ref fuel in
  let exhausted = ref false in
  while (not (Queue.is_empty worklist)) && not !exhausted do
    if !fuel <= 0 then exhausted := true
    else begin
      decr fuel;
      let n = Queue.pop worklist in
      Hashtbl.remove workset n;
      let env_in =
        if n = f.Rtl.f_entry then entry_env
        else
          let reached =
            List.filter_map
              (fun p ->
                 Hashtbl.find_opt in_env p
                 |> Option.map (fun e -> transfer tb f p e))
              (preds n)
          in
          match reached with
          | [] -> RegMap.empty (* unreached so far *)
          | e0 :: rest -> List.fold_left meet e0 rest
      in
      let old = Hashtbl.find_opt in_env n in
      let changed =
        match old with None -> true | Some o -> not (env_equal o env_in)
      in
      if changed then begin
        Hashtbl.replace in_env n env_in;
        List.iter push (Rtl.successors (Rtl.get_instr f n))
      end
    end
  done;
  if !exhausted then None else Some in_env

(* Rewriting. At a pure non-move operation whose arguments all have
   terms, look the result term up: if the destination already holds it
   the instruction is redundant (no-op); if another same-class register
   holds it, rewrite to a move from the smallest such register (the
   deterministic representative). Integer constants are left alone —
   rematerializing them is as cheap as a move — but float constants are
   numbered: every duplicate avoided is a constant-pool load. *)
let rewrite_func (tb : tables) (in_env : (Rtl.node, env) Hashtbl.t)
    (f : Rtl.func) : unit =
  let class_of r = Hashtbl.find_opt f.Rtl.f_classes r in
  List.iter
    (fun n ->
       match Rtl.get_instr f n with
       | Rtl.Iop (Rtl.Omove, _, _, _) | Rtl.Iop (Rtl.Ointconst _, _, _, _) -> ()
       | Rtl.Iop (op, args, d, s) ->
         let e =
           Option.value ~default:RegMap.empty (Hashtbl.find_opt in_env n)
         in
         let ts =
           List.fold_right
             (fun r acc ->
                match acc, RegMap.find_opt r e with
                | Some ts, Some t -> Some (t :: ts)
                | _, _ -> None)
             args (Some [])
         in
         (match ts with
          | None -> ()
          | Some ts ->
            (match Hashtbl.find_opt tb.ids (Top (opkey op, ts)) with
             | None -> ()
             | Some t ->
               if RegMap.find_opt d e = Some t then
                 (* destination already holds the value *)
                 Rtl.set_instr f n (Rtl.Inop s)
               else begin
                 let candidate =
                   RegMap.fold
                     (fun r t' best ->
                        if t' = t && r <> d && class_of r = class_of d then
                          match best with
                          | Some b when b <= r -> best
                          | _ -> Some r
                        else best)
                     e None
                 in
                 match candidate with
                 | Some r ->
                   Rtl.set_instr f n (Rtl.Iop (Rtl.Omove, [ r ], d, s))
                 | None -> ()
               end))
       | _ -> ())
    (Rtl.reverse_postorder f)

let transform_func ~(fuel : int) (f : Rtl.func) : unit =
  let tb = create_tables () in
  match analyze tb f ~fuel with
  | None -> () (* fuel exhausted: skip, never rewrite unconverged *)
  | Some in_env -> rewrite_func tb in_env f

let transform ?(fuel = 200_000) (p : Rtl.program) : Rtl.program =
  List.iter (transform_func ~fuel) p.Rtl.p_funcs;
  p
