(** Synthetic flight-control workload generator: seeded, deterministic
    stand-in for the paper's ~2500 proprietary generated files (see
    DESIGN.md section 2). Generation is linear in the node size (array
    wire pools, no per-symbol list scans) and shardable: the workload
    can be produced slice by slice for the streaming pipeline, with
    every shard reproducible in isolation. *)

type profile = {
  pf_symbols : int;       (** generated value symbols *)
  pf_acquisitions : int;  (** volatile inputs, >= 1 *)
  pf_outputs : int;       (** actuator outputs, >= 1 *)
  pf_loopy : bool;        (** allow lookup/movavg/modalsum symbols *)
}

val small_node : profile
val medium_node : profile
val large_node : profile

val io_node : profile
(** Acquisition-dominated: lots of I/O, little computation — the
    paper's nodes "with strong performance bottlenecks" whose WCET
    barely improves under any compiler. *)

val generate_node : ?profile:profile -> seed:int -> string -> Symbol.node
(** Deterministic in the seed; every computed signal is consumed
    (compilers cannot win by deleting dead subgraphs). *)

val node_at : seed:int -> int -> Symbol.node
(** Node [i] of the flight program: the 3 io / 2 small / 4 medium /
    1 large size mix with per-node seed [seed + 7919 * i]. The per-node
    seed depends only on the global index, never on shard boundaries. *)

(** {1 Sharded generation}

    A {!plan} cuts the [nodes]-node workload into fixed-size shards;
    {!generate_shard} produces shard [k] alone — reproducible in
    isolation and byte-identical to the corresponding slice of
    {!flight_program} at every shard size. This is the producer side of
    the streaming pipeline ([Fcstack.Par.run_stream]): resident memory
    is one shard, not the workload. *)

type plan = {
  sp_nodes : int;       (** workload size *)
  sp_seed : int;        (** workload seed *)
  sp_shard_size : int;  (** nodes per shard, >= 1 *)
}

val default_shard_size : int
(** 256 nodes per shard. *)

val shard_plan : ?shard_size:int -> nodes:int -> seed:int -> unit -> plan

val shard_count : plan -> int

val shard_bounds : plan -> int -> int * int
(** [shard_bounds plan k] is the global node-index range [\[lo, hi)] of
    shard [k] (empty once [k >= shard_count plan]). *)

val shard_rng : plan -> int -> Random.State.t
(** The per-shard random state, derived as
    [Random.State.make [| seed; k; 0x5CADE |]] — the anchored
    derivation point for shard-level randomness. Node content draws
    only from per-node states ({!node_at}), which is what keeps
    concatenated shards byte-identical to the monolithic generator. *)

val generate_shard : plan -> int -> (Symbol.node * Minic.Ast.program) array
(** Shard [k]: nodes [lo..hi-1] of the plan with their generated
    mini-C. Pure in [(plan, k)]; concatenating all shards equals
    [flight_program ~nodes ~seed]. *)

val flight_program :
  nodes:int -> seed:int -> (Symbol.node * Minic.Ast.program) list
(** A whole program: [nodes] nodes of mixed profiles with their
    generated mini-C — the eager concatenation of every shard of the
    default plan. *)
