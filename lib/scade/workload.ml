(* Synthetic flight-control workload generator.

   The paper's evaluation runs over ≈2500 automatically generated files
   of Airbus flight control software — proprietary, so per DESIGN.md we
   substitute seeded synthetic nodes with the same structure: a handful
   of signal acquisitions, a long mostly-straight-line mix of library
   symbols (arithmetic, filters, limiters, mode logic), occasional
   lookup tables, moving-average windows and config-bounded modal loops,
   and one or two actuator outputs. Sizes and symbol mix are
   parameterized; generation is deterministic in the seed.

   The generator is the producer of the streaming pipeline (it feeds
   Fcstack.Par.run_stream shard by shard), so it is linear: the wire
   pools are growable arrays with O(1) push/pick and tombstoned O(1)
   removal — never List.nth or a whole-pool filter scan per symbol.
   Every pool operation consumes the random stream exactly as the
   original list-based generator did, so generated nodes are
   byte-identical to the historical output for any seed. *)

type profile = {
  pf_symbols : int;       (* number of generated value symbols *)
  pf_acquisitions : int;  (* volatile inputs, >= 1 *)
  pf_outputs : int;       (* actuator outputs, >= 1 *)
  pf_loopy : bool;        (* allow lookup/movavg/modalsum symbols *)
}

let small_node : profile =
  { pf_symbols = 15; pf_acquisitions = 1; pf_outputs = 1; pf_loopy = false }

let medium_node : profile =
  { pf_symbols = 45; pf_acquisitions = 2; pf_outputs = 2; pf_loopy = true }

let large_node : profile =
  { pf_symbols = 110; pf_acquisitions = 4; pf_outputs = 3; pf_loopy = true }

(* Acquisition-dominated node: lots of I/O, little computation — the
   paper's "strong performance bottleneck" nodes whose WCET barely
   improves under any compiler. *)
let io_node : profile =
  { pf_symbols = 8; pf_acquisitions = 6; pf_outputs = 4; pf_loopy = false }


(* Random helpers over a deterministic state. *)
let pickf (rng : Random.State.t) (lo : float) (hi : float) : float =
  lo +. Random.State.float rng (hi -. lo)

(* ---- wire pools ------------------------------------------------------ *)

(* A growable array of wire identifiers. [push]/[get] are O(1); this
   replaces the [List.nth]-backed pick over a cons list (the historical
   list kept newest first, so list index [j] is array index
   [n - 1 - j]). *)
module Pool = struct
  type t = { mutable arr : int array; mutable n : int }

  let create () : t = { arr = Array.make 64 0; n = 0 }

  let push (p : t) (w : int) : unit =
    if p.n = Array.length p.arr then begin
      let bigger = Array.make (2 * p.n) 0 in
      Array.blit p.arr 0 bigger 0 p.n;
      p.arr <- bigger
    end;
    p.arr.(p.n) <- w;
    p.n <- p.n + 1

  let is_empty (p : t) : bool = p.n = 0

  (* The historical [pick_list rng pool] drew an index into the
     newest-first cons list; drawing the same index and flipping it
     keeps the random stream and the chosen wire identical. *)
  let pick (rng : Random.State.t) (p : t) : int =
    p.arr.(p.n - 1 - Random.State.int rng p.n)
end

(* The not-yet-consumed wires: preferred as sources, so that (like real
   control laws, where unused signals are modelling errors) almost
   every computed signal is live — a compiler cannot win by deleting
   dead subgraphs. Semantically a newest-first list supporting
   pop-newest and remove-by-value; implemented as a stack of wire ids
   plus a tombstone bitmap so removal by value is O(1) (the stale stack
   entry is skipped lazily when it surfaces). Each wire enters a pool
   exactly once, so a tombstone can never resurrect. *)
module Unused = struct
  type t = {
    stack : Pool.t;
    mutable dead : Bytes.t;  (* indexed by wire id; '\001' = removed *)
    mutable live : int;
  }

  let create () : t =
    { stack = Pool.create (); dead = Bytes.make 256 '\000'; live = 0 }

  let ensure (u : t) (w : int) : unit =
    if w >= Bytes.length u.dead then begin
      let bigger = Bytes.make (2 * (w + 1)) '\000' in
      Bytes.blit u.dead 0 bigger 0 (Bytes.length u.dead);
      u.dead <- bigger
    end

  let push (u : t) (w : int) : unit =
    ensure u w;
    Pool.push u.stack w;
    u.live <- u.live + 1

  let is_empty (u : t) : bool = u.live = 0

  (* drop tombstoned entries sitting on top of the stack *)
  let rec settle (u : t) : unit =
    let p = u.stack in
    if p.Pool.n > 0 && Bytes.get u.dead p.Pool.arr.(p.Pool.n - 1) = '\001'
    then begin
      p.Pool.n <- p.Pool.n - 1;
      settle u
    end

  (* the newest live wire (the historical list head); only call when
     non-empty. Flags the wire so a later remove-by-value of it is a
     no-op, exactly like filtering a list it is no longer in. *)
  let pop (u : t) : int =
    settle u;
    let p = u.stack in
    let w = p.Pool.arr.(p.Pool.n - 1) in
    p.Pool.n <- p.Pool.n - 1;
    Bytes.set u.dead w '\001';
    u.live <- u.live - 1;
    w

  (* remove by value if present (the historical whole-list filter) *)
  let remove (u : t) (w : int) : unit =
    ensure u w;
    if Bytes.get u.dead w = '\000' then begin
      Bytes.set u.dead w '\001';
      u.live <- u.live - 1
    end

  (* live wires, newest first (the historical list order: the stack
     grows oldest to newest, so prepending while walking up flips it) *)
  let to_list (u : t) : int list =
    let p = u.stack in
    let rec go i acc =
      if i >= p.Pool.n then acc
      else
        go (i + 1)
          (if Bytes.get u.dead p.Pool.arr.(i) = '\000' then
             p.Pool.arr.(i) :: acc
           else acc)
    in
    go 0 []
end

let generate_node ?(profile = medium_node) ~(seed : int) (name : string) :
  Symbol.node =
  let rng = Random.State.make [| seed; 0x5CADE |] in
  (* wire identifiers are local to the node: generation is a pure
     function of the seed *)
  let wire_counter = ref 0 in
  let fresh_wire () =
    incr wire_counter;
    !wire_counter
  in
  let instances = ref [] in
  let float_wires = Pool.create () in
  let bool_wires = Pool.create () in
  let unused_float = Unused.create () in
  let unused_bool = Unused.create () in
  let add (op : Symbol.op) : unit =
    match Symbol.result_typ op with
    | None -> instances := { Symbol.i_wire = None; i_op = op } :: !instances
    | Some t ->
      let w = fresh_wire () in
      instances := { Symbol.i_wire = Some w; i_op = op } :: !instances;
      (match t with
       | Symbol.Sfloat ->
         Pool.push float_wires w;
         Unused.push unused_float w
       | Symbol.Sbool ->
         Pool.push bool_wires w;
         Unused.push unused_bool w
       | Symbol.Sint -> ())
  in
  let fsrc () : Symbol.source =
    if (not (Unused.is_empty unused_float))
    && Random.State.int rng 100 < 70 then
      Symbol.Swire (Unused.pop unused_float)
    else if Random.State.int rng 20 = 0 || Pool.is_empty float_wires then
      Symbol.Sconstf (pickf rng (-8.0) 8.0)
    else begin
      let w = Pool.pick rng float_wires in
      Unused.remove unused_float w;
      Symbol.Swire w
    end
  in
  let bsrc () : Symbol.source =
    if (not (Unused.is_empty unused_bool))
    && Random.State.int rng 100 < 70 then
      Symbol.Swire (Unused.pop unused_bool)
    else if Pool.is_empty bool_wires then Symbol.Sconstb (Random.State.bool rng)
    else begin
      let w = Pool.pick rng bool_wires in
      Unused.remove unused_bool w;
      Symbol.Swire w
    end
  in
  (* acquisitions *)
  for i = 0 to profile.pf_acquisitions - 1 do
    add (Symbol.Yacq (Printf.sprintf "%s_in%d" name i))
  done;
  (* body *)
  for _ = 1 to profile.pf_symbols do
    let r = Random.State.int rng 100 in
    let op =
      if r < 12 then Symbol.Ysum (fsrc (), fsrc ())
      else if r < 22 then Symbol.Ydiff (fsrc (), fsrc ())
      else if r < 32 then Symbol.Yprod (fsrc (), fsrc ())
      else if r < 36 then Symbol.Ydivsafe (fsrc (), fsrc ())
      else if r < 44 then Symbol.Ygain (pickf rng (-3.0) 3.0, fsrc ())
      else if r < 48 then Symbol.Ybias (pickf rng (-5.0) 5.0, fsrc ())
      else if r < 52 then Symbol.Yabs (fsrc ())
      else if r < 58 then begin
        let lo = pickf rng (-50.0) 0.0 in
        Symbol.Ylimiter (lo, lo +. pickf rng 1.0 80.0, fsrc ())
      end
      else if r < 61 then Symbol.Ydeadband (pickf rng 0.1 2.0, fsrc ())
      else if r < 69 then Symbol.Yfilter (pickf rng 0.02 0.6, fsrc ())
      else if r < 73 then Symbol.Ydelay (fsrc ())
      else if r < 76 then begin
        let lo = pickf rng (-40.0) (-1.0) in
        Symbol.Yintegrator (pickf rng 0.005 0.04, lo, -.lo, fsrc ())
      end
      else if r < 79 then Symbol.Yratelimit (pickf rng 0.2 4.0, fsrc ())
      else if r < 84 then
        Symbol.Ycmp
          ( (let cmps =
               [| Symbol.CMPlt; Symbol.CMPle; Symbol.CMPgt; Symbol.CMPge |]
             in
             (* same draw as the historical pick over the 4-element list *)
             cmps.(Random.State.int rng 4)),
            fsrc (), fsrc () )
      else if r < 87 then Symbol.Yand (bsrc (), bsrc ())
      else if r < 89 then Symbol.Yor (bsrc (), bsrc ())
      else if r < 90 then Symbol.Ynot (bsrc ())
      else if r < 94 then Symbol.Yselect (bsrc (), fsrc (), fsrc ())
      else if r < 95 then begin
        let on = pickf rng 0.5 5.0 in
        Symbol.Yhysteresis (on, on -. pickf rng 0.2 1.0, fsrc ())
      end
      else if profile.pf_loopy && r < 97 then begin
        (* monotone random lookup table, 4..8 points *)
        let k = 4 + Random.State.int rng 5 in
        let start = pickf rng (-20.0) 0.0 in
        let breaks = Array.make k start in
        for i = 1 to k - 1 do
          breaks.(i) <- breaks.(i - 1) +. pickf rng 0.5 6.0
        done;
        let values = Array.init k (fun _ -> pickf rng (-30.0) 30.0) in
        Symbol.Ylookup
          ({ Symbol.tb_breaks = breaks; tb_values = values }, fsrc ())
      end
      else if profile.pf_loopy && r < 98 then
        Symbol.Ymovavg (4 + (2 * Random.State.int rng 5), fsrc ())
      else if profile.pf_loopy && r < 99 then
        Symbol.Ymodalsum (4 + Random.State.int rng 8, fsrc ())
      else Symbol.Ysqrt_approx (fsrc ())
    in
    add op
  done;
  (* consolidation cone: sum together every wire still unconsumed, so
     no computed signal is dead *)
  let rec drain () =
    if unused_float.Unused.live >= 2 then begin
      let a = Unused.pop unused_float in
      let b = Unused.pop unused_float in
      add (Symbol.Ysum (Symbol.Swire a, Symbol.Swire b));
      drain ()
    end
  in
  drain ();
  List.iter
    (fun w -> add (Symbol.Youtb (Printf.sprintf "%s_outb%d" name w, Symbol.Swire w)))
    (Unused.to_list unused_bool);
  List.iter (Unused.remove unused_bool) (Unused.to_list unused_bool);
  (* outputs: drive actuators from late float wires (the "result" of
     the control law) *)
  for i = 0 to profile.pf_outputs - 1 do
    add (Symbol.Yout (Printf.sprintf "%s_out%d" name i, fsrc ()))
  done;
  Schedule.sort { Symbol.n_name = name; n_instances = List.rev !instances }

(* ---- sharded generation --------------------------------------------- *)

(* Node [i] of the flight program: profile from the 3/2/4/1 size mix,
   per-node seed [seed + 7919 * i]. The per-node seed depends only on
   the *global* node index — never on any shard boundary — which is
   what makes a shard's slice byte-identical to the monolithic
   generator's at every shard size. *)
let node_at ~(seed : int) (i : int) : Symbol.node =
  let profile =
    match i mod 10 with
    | 0 | 1 | 2 -> io_node
    | 3 | 4 -> small_node
    | 5 | 6 | 7 | 8 -> medium_node
    | _ -> large_node
  in
  generate_node ~profile ~seed:(seed + (7919 * i)) (Printf.sprintf "n%03d" i)

type plan = {
  sp_nodes : int;
  sp_seed : int;
  sp_shard_size : int;
}

let default_shard_size = 256

let shard_plan ?(shard_size = default_shard_size) ~(nodes : int)
    ~(seed : int) () : plan =
  { sp_nodes = max 0 nodes;
    sp_seed = seed;
    sp_shard_size = max 1 shard_size }

let shard_count (p : plan) : int =
  (p.sp_nodes + p.sp_shard_size - 1) / p.sp_shard_size

let shard_bounds (p : plan) (k : int) : int * int =
  let lo = k * p.sp_shard_size in
  (min lo p.sp_nodes, min ((k + 1) * p.sp_shard_size) p.sp_nodes)

let shard_rng (p : plan) (k : int) : Random.State.t =
  Random.State.make [| p.sp_seed; k; 0x5CADE |]

let generate_shard (p : plan) (k : int) :
  (Symbol.node * Minic.Ast.program) array =
  (* the shard state is the anchored derivation point for shard-level
     randomness (e.g. future profile jitter); node *content* draws only
     from the per-node states of [node_at], so concatenated shards stay
     byte-identical to the monolithic generator at every shard size *)
  let _ = shard_rng p k in
  let lo, hi = shard_bounds p k in
  Array.init (hi - lo) (fun j ->
      let node = node_at ~seed:p.sp_seed (lo + j) in
      (node, Acg.generate node))

(* A whole synthetic flight control program: [n] nodes of mixed sizes.
   Returns (node, its generated mini-C program) pairs. Defined as the
   concatenation of all shards of the default plan — the batch path
   *is* the streaming producer run eagerly. *)
let flight_program ~(nodes : int) ~(seed : int) :
  (Symbol.node * Minic.Ast.program) list =
  let plan = shard_plan ~nodes ~seed () in
  List.concat
    (List.init (shard_count plan) (fun k ->
         Array.to_list (generate_shard plan k)))
