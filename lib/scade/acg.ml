(* The qualified automatic code generator (ACG): SCADE-like nodes to
   mini-C, one fixed pattern per symbol instance (paper section 2.1:
   "the code is basically composed of many instances of a limited set of
   symbols, such as mathematic operations, filters and delays").

   Naming scheme (per instance index [i]):
   - wire [w]   -> local  [w<w>]
   - state      -> global [st<i>] (scalar) / array [sta<i>] + [ptr<i>]
   - lookup     -> arrays [lkb<i>] (breaks), [lkv<i>] (values),
                   [lks<i>] (slopes)
   - modal sum  -> global [cfg<i>] (config), array [msw<i>] (weights);
                   the generated loop bound depends on the config
                   global, which binary-level analysis cannot see — the
                   ACG emits the __builtin_annotation("loopbound K")
                   that the paper's section 3.4 mechanism transports to
                   the WCET analyzer. *)

module A = Minic.Ast

type gen_state = {
  mutable globals : (string * A.typ) list;
  mutable arrays : A.array_def list;
  mutable volatiles : (string * A.typ * A.vol_dir) list;
  mutable locals : (string * A.typ) list;
  mutable stmts : A.stmt list; (* reversed *)
}

let wire_name (w : Symbol.wire) : string = Printf.sprintf "w%d" w

let typ_of_styp (t : Symbol.styp) : A.typ =
  match t with
  | Symbol.Sfloat -> A.Tfloat
  | Symbol.Sbool -> A.Tbool
  | Symbol.Sint -> A.Tint

let expr_of_source (s : Symbol.source) : A.expr =
  match s with
  | Symbol.Swire w -> A.Evar (wire_name w)
  | Symbol.Sconstf f -> A.Econst_float f
  | Symbol.Sconstb b -> A.Econst_bool b
  | Symbol.Sconsti n -> A.Econst_int n

let cmp_of (c : Symbol.comparison) : A.comparison =
  match c with
  | Symbol.CMPlt -> A.Clt
  | Symbol.CMPle -> A.Cle
  | Symbol.CMPgt -> A.Cgt
  | Symbol.CMPge -> A.Cge
  | Symbol.CMPeq -> A.Ceq

let emit (g : gen_state) (s : A.stmt) : unit = g.stmts <- s :: g.stmts

let add_local (g : gen_state) (x : string) (t : A.typ) : unit =
  if not (List.mem_assoc x g.locals) then g.locals <- (x, t) :: g.locals

let add_global (g : gen_state) (x : string) (t : A.typ) : unit =
  g.globals <- (x, t) :: g.globals

let add_array (g : gen_state) (x : string) (t : A.typ) (init : float list) :
  unit =
  g.arrays <- { A.arr_name = x; arr_elt = t; arr_init = init } :: g.arrays

let add_volatile (g : gen_state) (x : string) (t : A.typ) (d : A.vol_dir) :
  unit =
  if not (List.exists (fun (n, _, _) -> String.equal n x) g.volatiles) then
    g.volatiles <- (x, t, d) :: g.volatiles

(* float binop shorthands *)
let ( +: ) a b = A.Ebinop (A.Ofadd, a, b)
let ( -: ) a b = A.Ebinop (A.Ofsub, a, b)
let ( *: ) a b = A.Ebinop (A.Ofmul, a, b)
let ( /: ) a b = A.Ebinop (A.Ofdiv, a, b)
let fconst f = A.Econst_float f
let fcmp c a b = A.Ebinop (A.Ofcmp c, a, b)

let gen_instance (g : gen_state) (idx : int) (inst : Symbol.instance) : unit =
  let dst () =
    match inst.i_wire with
    | Some w -> wire_name w
    | None -> invalid_arg "Acg.gen_instance: value symbol without wire"
  in
  let setw (e : A.expr) : unit = emit g (A.Sassign (dst (), e)) in
  let st_name = Printf.sprintf "st%d" idx in
  match inst.i_op with
  | Symbol.Yacq vol ->
    add_volatile g vol A.Tfloat A.Vol_in;
    setw (A.Evolatile vol)
  | Symbol.Yout (vol, s) ->
    add_volatile g vol A.Tfloat A.Vol_out;
    emit g (A.Svolstore (vol, expr_of_source s))
  | Symbol.Youtb (vol, s) ->
    add_volatile g vol A.Tbool A.Vol_out;
    emit g (A.Svolstore (vol, expr_of_source s))
  | Symbol.Ygain (k, s) -> setw (expr_of_source s *: fconst k)
  | Symbol.Ybias (k, s) -> setw (expr_of_source s +: fconst k)
  | Symbol.Ysum (a, b) -> setw (expr_of_source a +: expr_of_source b)
  | Symbol.Ydiff (a, b) -> setw (expr_of_source a -: expr_of_source b)
  | Symbol.Yprod (a, b) -> setw (expr_of_source a *: expr_of_source b)
  | Symbol.Ydivsafe (a, b) ->
    (* w = |b| < 1e-9 ? 0.0 : a / b *)
    setw
      (A.Econd
         (fcmp A.Clt (A.Eunop (A.Ofabs, expr_of_source b)) (fconst 1e-9),
          fconst 0.0,
          expr_of_source a /: expr_of_source b))
  | Symbol.Yabs s -> setw (A.Eunop (A.Ofabs, expr_of_source s))
  | Symbol.Yneg s -> setw (A.Eunop (A.Ofneg, expr_of_source s))
  | Symbol.Ysqrt_approx s ->
    (* guarded 4-step Newton iteration, straight-line *)
    let x = Printf.sprintf "sq%d_x" idx and gv = Printf.sprintf "sq%d_g" idx in
    add_local g x A.Tfloat;
    add_local g gv A.Tfloat;
    emit g (A.Sassign (x, expr_of_source s));
    emit g
      (A.Sif
         (fcmp A.Cle (A.Evar x) (fconst 0.0),
          A.Sassign (dst (), fconst 0.0),
          (let step =
             A.Sassign
               (gv, fconst 0.5 *: (A.Evar gv +: (A.Evar x /: A.Evar gv)))
           in
           A.Sseq
             ( A.Sassign (gv, fconst 0.5 *: (A.Evar x +: fconst 1.0)),
               A.Sseq (step, A.Sseq (step, A.Sseq (step, A.Sseq (step,
                 A.Sassign (dst (), A.Evar gv)))))))))
  | Symbol.Ylimiter (lo, hi, s) ->
    setw
      (A.Econd
         (fcmp A.Cgt (expr_of_source s) (fconst hi), fconst hi,
          A.Econd
            (fcmp A.Clt (expr_of_source s) (fconst lo), fconst lo,
             expr_of_source s)))
  | Symbol.Ydeadband (d, s) ->
    (* two sequential guarded corrections — [d > 0], so the guards
       exclude each other and the pair is the classic infeasible path:
       a structural path analysis charges both corrections, a semantic
       one knows at most one fires per cycle. NaN input takes neither
       branch, matching the nested-conditional form. *)
    emit g
      (A.Sif
         (fcmp A.Cgt (expr_of_source s) (fconst d),
          A.Sassign (dst (), expr_of_source s -: fconst d),
          A.Sassign (dst (), fconst 0.0)));
    emit g
      (A.Sif
         (fcmp A.Clt (expr_of_source s) (fconst (-.d)),
          A.Sassign (dst (), expr_of_source s +: fconst d), A.Sskip))
  | Symbol.Yfilter (a, s) ->
    add_global g st_name A.Tfloat;
    emit g
      (A.Sassign
         (dst (),
          A.Eglobal st_name +: (fconst a *: (expr_of_source s -: A.Eglobal st_name))));
    emit g (A.Sglobassign (st_name, A.Evar (dst ())))
  | Symbol.Ydelay s ->
    add_global g st_name A.Tfloat;
    emit g (A.Sassign (dst (), A.Eglobal st_name));
    emit g (A.Sglobassign (st_name, expr_of_source s))
  | Symbol.Yintegrator (dt, lo, hi, s) ->
    add_global g st_name A.Tfloat;
    emit g
      (A.Sassign (dst (), A.Eglobal st_name +: (expr_of_source s *: fconst dt)));
    emit g
      (A.Sif
         (fcmp A.Cgt (A.Evar (dst ())) (fconst hi),
          A.Sassign (dst (), fconst hi),
          A.Sif
            (fcmp A.Clt (A.Evar (dst ())) (fconst lo),
             A.Sassign (dst (), fconst lo), A.Sskip)));
    emit g (A.Sglobassign (st_name, A.Evar (dst ())))
  | Symbol.Yratelimit (r, s) ->
    add_global g st_name A.Tfloat;
    let d = Printf.sprintf "rl%d_d" idx in
    add_local g d A.Tfloat;
    emit g (A.Sassign (d, expr_of_source s -: A.Eglobal st_name));
    emit g
      (A.Sif
         (fcmp A.Cgt (A.Evar d) (fconst r),
          A.Sassign (dst (), A.Eglobal st_name +: fconst r),
          A.Sif
            (fcmp A.Clt (A.Evar d) (fconst (-.r)),
             A.Sassign (dst (), A.Eglobal st_name -: fconst r),
             A.Sassign (dst (), expr_of_source s))));
    emit g (A.Sglobassign (st_name, A.Evar (dst ())))
  | Symbol.Ylookup (tb, s) ->
    let n = Array.length tb.Symbol.tb_breaks in
    let bname = Printf.sprintf "lkb%d" idx in
    let vname = Printf.sprintf "lkv%d" idx in
    let sname = Printf.sprintf "lks%d" idx in
    add_array g bname A.Tfloat (Array.to_list tb.Symbol.tb_breaks);
    add_array g vname A.Tfloat (Array.to_list tb.Symbol.tb_values);
    let slopes =
      List.init (n - 1) (fun i ->
          (tb.Symbol.tb_values.(i + 1) -. tb.Symbol.tb_values.(i))
          /. (tb.Symbol.tb_breaks.(i + 1) -. tb.Symbol.tb_breaks.(i)))
    in
    add_array g sname A.Tfloat slopes;
    let x = Printf.sprintf "lk%d_x" idx in
    let j = Printf.sprintf "lk%d_j" idx in
    let k = Printf.sprintf "lk%d_k" idx in
    add_local g x A.Tfloat;
    add_local g j A.Tint;
    add_local g k A.Tint;
    emit g (A.Sassign (x, expr_of_source s));
    emit g
      (A.Sif
         (fcmp A.Cle (A.Evar x) (A.Eindex (bname, A.Econst_int 0l)),
          A.Sassign (dst (), A.Eindex (vname, A.Econst_int 0l)),
          A.Sif
            (fcmp A.Cge (A.Evar x)
               (A.Eindex (bname, A.Econst_int (Int32.of_int (n - 1)))),
             A.Sassign
               (dst (), A.Eindex (vname, A.Econst_int (Int32.of_int (n - 1)))),
             A.Sseq
               ( A.Sassign (k, A.Econst_int 0l),
                 A.Sseq
                   ( A.Sfor
                       ( j,
                         A.Econst_int 1l,
                         A.Econst_int (Int32.of_int (n - 1)),
                         A.Sif
                           (fcmp A.Cge (A.Evar x) (A.Eindex (bname, A.Evar j)),
                            A.Sassign (k, A.Evar j), A.Sskip) ),
                     A.Sassign
                       ( dst (),
                         A.Eindex (vname, A.Evar k)
                         +: ((A.Evar x -: A.Eindex (bname, A.Evar k))
                             *: A.Eindex (sname, A.Evar k)) ) ) ))))
  | Symbol.Ymovavg (w, s) ->
    let aname = Printf.sprintf "sta%d" idx in
    let pname = Printf.sprintf "ptr%d" idx in
    add_array g aname A.Tfloat (List.init w (fun _ -> 0.0));
    add_global g pname A.Tint;
    let j = Printf.sprintf "ma%d_j" idx in
    let acc = Printf.sprintf "ma%d_acc" idx in
    add_local g j A.Tint;
    add_local g acc A.Tfloat;
    emit g (A.Sstore (aname, A.Eglobal pname, expr_of_source s));
    emit g
      (A.Sglobassign (pname, A.Ebinop (A.Oadd, A.Eglobal pname, A.Econst_int 1l)));
    emit g
      (A.Sif
         (A.Ebinop (A.Ocmp A.Cge, A.Eglobal pname, A.Econst_int (Int32.of_int w)),
          A.Sglobassign (pname, A.Econst_int 0l), A.Sskip));
    emit g (A.Sassign (acc, fconst 0.0));
    emit g
      (A.Sfor
         ( j, A.Econst_int 0l, A.Econst_int (Int32.of_int w),
           A.Sassign (acc, A.Evar acc +: A.Eindex (aname, A.Evar j)) ));
    setw (A.Evar acc /: fconst (float_of_int w))
  | Symbol.Yselect (c, a, b) ->
    setw (A.Econd (expr_of_source c, expr_of_source a, expr_of_source b))
  | Symbol.Ycmp (c, a, b) ->
    setw (fcmp (cmp_of c) (expr_of_source a) (expr_of_source b))
  | Symbol.Yhysteresis (on, off, s) ->
    add_global g st_name A.Tbool;
    emit g
      (A.Sassign
         (dst (),
          A.Econd
            (A.Eglobal st_name,
             A.Eunop (A.Onot, fcmp A.Clt (expr_of_source s) (fconst off)),
             fcmp A.Cgt (expr_of_source s) (fconst on))));
    emit g (A.Sglobassign (st_name, A.Evar (dst ())))
  | Symbol.Yand (a, b) ->
    setw (A.Ebinop (A.Oband, expr_of_source a, expr_of_source b))
  | Symbol.Yor (a, b) ->
    setw (A.Ebinop (A.Obor, expr_of_source a, expr_of_source b))
  | Symbol.Ynot s -> setw (A.Eunop (A.Onot, expr_of_source s))
  | Symbol.Ycount s ->
    add_global g st_name A.Tint;
    emit g
      (A.Sif
         (expr_of_source s,
          A.Sglobassign
            (st_name, A.Ebinop (A.Oadd, A.Eglobal st_name, A.Econst_int 1l)),
          A.Sskip));
    setw (A.Eglobal st_name)
  | Symbol.Ymodalsum (k, s) ->
    (* configuration-dependent loop, bounded only by the annotation *)
    let cname = Printf.sprintf "cfg%d" idx in
    let wname = Printf.sprintf "msw%d" idx in
    add_global g cname A.Tint;
    add_array g wname A.Tfloat
      (List.init k (fun i -> 1.0 /. float_of_int (i + 1)));
    let j = Printf.sprintf "ms%d_j" idx in
    let acc = Printf.sprintf "ms%d_acc" idx in
    add_local g j A.Tint;
    add_local g acc A.Tfloat;
    emit g (A.Sglobassign (cname, A.Econst_int (Int32.of_int k)));
    emit g (A.Sassign (acc, fconst 0.0));
    emit g
      (A.Sfor
         ( j, A.Econst_int 0l, A.Eglobal cname,
           A.Sseq
             ( A.Sannot (Printf.sprintf "loopbound %d" k, []),
               A.Sassign
                 (acc,
                  A.Evar acc +: (expr_of_source s *: A.Eindex (wname, A.Evar j)))
             ) ));
    setw (A.Evar acc)

(* Generate the mini-C program of one node. The entry function is
   [<node>_main], taking no parameters: a single control cycle. *)
let generate (n : Symbol.node) : A.program =
  let typs = Symbol.check_node n in
  let g =
    { globals = []; arrays = []; volatiles = []; locals = []; stmts = [] }
  in
  (* declare wire locals *)
  Hashtbl.iter
    (fun w t -> add_local g (wire_name w) (typ_of_styp t))
    typs;
  List.iteri (fun idx inst -> gen_instance g idx inst) n.Symbol.n_instances;
  let body =
    List.fold_left
      (fun acc s -> A.Sseq (s, acc))
      A.Sskip g.stmts
  in
  let fname = n.Symbol.n_name ^ "_main" in
  { A.prog_globals = List.rev g.globals;
    prog_arrays = List.rev g.arrays;
    prog_volatiles = List.rev g.volatiles;
    prog_funcs =
      [ { A.fn_name = fname;
          fn_params = [];
          fn_locals = List.rev g.locals;
          fn_ret = None;
          fn_body = body } ];
    prog_main = fname }
