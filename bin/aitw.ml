(* aitw — static WCET analyzer driver (the aiT stand-in).

   Compiles mini-C source files under a chosen configuration, links
   them (memory layout), runs the full analysis chain (CFG
   reconstruction, loop & value analysis, cache & pipeline analysis,
   IPET) and prints the WCET report. With --compare it analyzes all
   four configurations and prints a per-function comparison; with
   --simulate it also runs the simulator over several input worlds and
   reports the worst observed cycle count next to the bound.

   aitw is a thin client of the compilation service: every input file
   becomes one [Fcstack.Request.t] (action Analyze), executed either
   in-process against a private [Fcstack.Service] session — the batch
   default, where -j N fans files out across N domains over ONE shared
   analysis cache — or, with --connect SOCKET, against a running fcd
   daemon whose warm cache persists across whole invocations. Reports
   are byte-identical on every transport: caches and daemons change
   wall clock, never results. The annotation file travels back as
   response content and is written client-side.

   The analysis cache (Wcet.Memo) is shared by all files,
   configurations and domains of a run — and, with --cache-dir (or
   FCSTACK_CACHE_DIR), persists across runs, so a warm invocation
   serves repeated analyses from disk. --no-cache is the escape hatch;
   --cache-gc-mb bounds the store (LRU) at the end of the run. With a
   persistent cache, hit/miss accounting goes to stderr. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One file -> one request -> one response; a file-read failure is a
   refusal right here (Parse stage), never a service round-trip. *)
let analyze_file (do_request : Fcstack.Request.t -> Fcstack.Response.t)
    (opts : Fcstack.Toolchain.request_opts) (compare_all : bool)
    (simulate : bool) (annot_out : string option) ?deadline_ms
    (file : string) : Fcstack.Response.t =
  let open Fcstack in
  match
    Diag.capture ~node:file ~stage:Diag.Parse (fun () -> read_file file)
  with
  | Error d -> Response.refused [ d ]
  | Ok source ->
    do_request
      (Request.make ~name:file
         ~action:
           (Request.Analyze
              { an_compare = compare_all;
                an_simulate = simulate;
                an_annot = annot_out })
         ~opts ?deadline_ms source)

let run (files : string list) (compiler : Fcstack.Toolchain.compiler)
    (compare_all : bool) (simulate : bool) (annot_out : string option)
    (passes : Vcomp.Pass.options) (engine : Wcet.Report.engine) (jobs : int)
    (fail_fast : bool) (connect : string option) (deadline_ms : int option)
    (retry : Fcstack.Retry.policy) (fallback_local : bool)
    (copts : Fcstack.Cliopts.cache_opts) : int =
  let open Fcstack in
  if annot_out <> None && List.length files > 1 then begin
    Printf.eprintf "--annot-out requires a single input file\n";
    2
  end
  else begin
    let opts = Toolchain.request_opts ~compiler ~passes ~engine () in
    let total = List.length files in
    (* Reports print strictly in input order regardless of -j; the
       annotation file is response content, written here (the daemon
       never touches the client's filesystem). *)
    let emit (r : Response.t) : unit =
      (match (annot_out, r.Response.rs_annot) with
       | Some path, Some content ->
         let oc = open_out path in
         output_string oc content;
         close_out oc
       | _ -> ());
      print_string r.Response.rs_output
    in
    (* --fail-fast: the first failing file (input order) aborts the
       run; nothing after it is reported *)
    let rec upto = function
      | [] -> []
      | (r : Response.t) :: rest ->
        if r.Response.rs_status = Response.Sok then r :: upto rest else [ r ]
    in
    let finish (results : Response.t list) : int =
      List.iter emit results;
      let diags =
        List.concat_map (fun (r : Response.t) -> r.Response.rs_diags) results
      in
      (* diagnostics, failure summary and cache accounting are
         stderr-only: stdout reports stay byte-identical across
         fail_fast/cache/jobs configurations *)
      Diag.print_summary ~total diags;
      if fail_fast && diags <> [] then 2
      else Diag.exit_code ~total ~failed:(List.length diags)
    in
    (* one in-process session for the whole run: one cache (possibly
       persistent) for all files and configurations; Wcet.Memo is
       sharded and mutex-protected, so the -j domains share it
       directly. Also the --fallback-local degradation target. *)
    let run_local () : int =
      let session =
        Service.create ~state:(Cliopts.session_of_opts ~jobs ~fail_fast copts)
          ()
      in
      let analyze =
        analyze_file (Service.run_request session) opts compare_all simulate
          annot_out ?deadline_ms
      in
      let results =
        Par.map_list ~jobs:(Service.jobs session) analyze files
      in
      let results = if fail_fast then upto results else results in
      let code = finish results in
      Cliopts.report_session_stats session;
      Service.gc session;
      code
    in
    match connect with
    | Some socket ->
      (* Client of a running daemon: its warm cache serves repeats, its
         stderr carries the accounting. Transport/busy failures retry
         under the policy (reconnecting per attempt); refusals are
         final; with --fallback-local an exhausted request degrades to
         in-process execution with byte-identical output. *)
      let retried = ref 0 and extra = ref 0 in
      let timeout_s =
        Option.map (fun ms -> (float_of_int ms /. 1000.0) +. 2.0) deadline_ms
      in
      let conn : Service.Client.conn option ref = ref None in
      let get_conn () =
        match !conn with
        | Some c -> Ok c
        | None ->
          (match Service.Client.connect socket with
           | Ok c ->
             conn := Some c;
             Ok c
           | Error _ as e -> e)
      in
      let drop_conn () =
        Option.iter Service.Client.close !conn;
        conn := None
      in
      let local_session =
        lazy
          (Service.create
             ~state:(Cliopts.session_of_opts ~jobs ~fail_fast copts)
             ())
      in
      let do_request (rq : Request.t) : Response.t =
        let r, attempts =
          Retry.run ~policy:retry (fun ~attempt:_ ->
              match get_conn () with
              | Error msg -> Response.transport ~node:rq.Request.rq_name msg
              | Ok c ->
                let r = Service.Client.request ?timeout_s c rq in
                if Retry.should_retry r.Response.rs_status then drop_conn ();
                r)
        in
        if attempts > 1 then begin
          incr retried;
          extra := !extra + (attempts - 1)
        end;
        if fallback_local && Retry.should_retry r.Response.rs_status then begin
          Printf.eprintf
            "aitw: daemon unreachable for %s; falling back to local \
             execution\n%!"
            rq.Request.rq_name;
          Service.run_request (Lazy.force local_session) rq
        end
        else r
      in
      (match get_conn () with
       | Error msg when not fallback_local ->
         prerr_endline msg;
         2
       | Error _ | Ok _ ->
         let analyze =
           analyze_file do_request opts compare_all simulate annot_out
             ?deadline_ms
         in
         let results = List.map analyze files in
         let results = if fail_fast then upto results else results in
         drop_conn ();
         let code = finish results in
         Cliopts.report_retries ~tool:"aitw" ~requests:!retried
           ~extra_attempts:!extra;
         code)
    | None -> run_local ()
  end

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mc")

let compare_arg =
  Arg.(value & flag & info [ "compare" ] ~doc:"Analyze all four configurations.")

let simulate_arg =
  Arg.(value & flag
       & info [ "simulate" ]
           ~doc:"Also report the worst cycle count observed on the simulator.")

let annot_out_arg =
  Arg.(value & opt (some string) None
       & info [ "annot-out" ] ~docv:"FILE"
           ~doc:"Write the generated annotation file (paper section 3.4). \
                 Single input file only.")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Analyze input files across $(docv) domains. Reports are printed \
          in input order regardless of $(docv)."

let cmd =
  let doc = "static WCET analysis of compiled flight-control code" in
  Cmd.v
    (Cmd.info "aitw" ~doc)
    Term.(
      const run $ files_arg $ Fcstack.Cliopts.compiler_term $ compare_arg
      $ simulate_arg $ annot_out_arg $ Fcstack.Cliopts.passes_term
      $ Fcstack.Cliopts.engine_term $ jobs_arg
      $ Fcstack.Cliopts.fail_fast_term $ Fcstack.Cliopts.connect_term
      $ Fcstack.Cliopts.deadline_ms_term $ Fcstack.Cliopts.retry_term
      $ Fcstack.Cliopts.fallback_local_term $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
