(* aitw — static WCET analyzer driver (the aiT stand-in).

   Compiles mini-C source files under a chosen configuration, links
   them (memory layout), runs the full analysis chain (CFG
   reconstruction, loop & value analysis, cache & pipeline analysis,
   IPET) and prints the WCET report. With --compare it analyzes all
   four configurations and prints a per-function comparison; with
   --simulate it also runs the simulator over several input worlds and
   reports the worst observed cycle count next to the bound.

   Several files form a multi-node input; -j N analyzes them across N
   domains with deterministic, input-ordered reports.

   All flags fold into one Fcstack.Toolchain.config. The analysis
   cache (Wcet.Memo) is shared by all files, configurations and
   domains of a run — and, with --cache-dir (or FCSTACK_CACHE_DIR),
   persists across runs, so a warm invocation serves repeated analyses
   from disk. Reports are byte-identical either way: the cache changes
   wall clock, never results. --no-cache is the escape hatch;
   --cache-gc-mb bounds the store (LRU) at the end of the run. With a
   persistent cache, hit/miss accounting goes to stderr. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let observed_max (b : Fcstack.Chain.built) (seeds : int list) : int =
  List.fold_left
    (fun acc seed ->
       let w = Minic.Interp.seeded_world ~seed () in
       let rr = Fcstack.Chain.simulate b w in
       max acc rr.Target.Sim.rr_stats.Target.Sim.cycles)
    0 seeds

(* Analyze one file with per-stage containment: any failure becomes a
   [Diag.t] naming the file and the stage and costs exactly this file.
   The report text is accumulated in a buffer so that parallel runs can
   print results strictly in input order. *)
let analyze_file ~(config : Fcstack.Toolchain.config) (compare_all : bool)
    (simulate : bool) (annot_out : string option) (file : string) :
  string * Fcstack.Diag.t option =
  let open Fcstack in
  let out = Buffer.create 1024 in
  let ( let* ) = Result.bind in
  let outcome : (unit, Diag.t) Result.t =
    let* src =
      Diag.capture ~node:file ~stage:Diag.Parse (fun () ->
          Minic.Parser.parse_program (read_file file))
    in
    let* () =
      match Minic.Typecheck.check_program src with
      | Ok () -> Ok ()
      | Error e ->
        Error
          (Diag.make ~node:file ~stage:Diag.Typecheck
             (Minic.Typecheck.error_to_string e))
    in
    (* the remaining chain is analysis-dominated; [Diag.of_exn] routes
       recognizable escapes (refusals, simulator errors) to their own
       stages regardless of this fallback *)
    Diag.capture ~node:file ~stage:Diag.Wcet (fun () ->
        let analyze_one (comp : Fcstack.Chain.compiler) : unit =
          let b =
            Fcstack.Chain.build ~passes:config.Fcstack.Toolchain.passes comp
              src
          in
          (match annot_out with
           | Some path ->
             (* cache-aware assembly: fragments of already-analyzed
                functions come from the cache (same bytes either way) *)
             let entries =
               Wcet.Driver.annotations ?cache:config.Fcstack.Toolchain.cache
                 ~fuel:config.Fcstack.Toolchain.analysis_fuel
                 ~spec:b.Fcstack.Chain.b_spec
                 ~engine:config.Fcstack.Toolchain.engine
                 b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
             in
             let oc = open_out path in
             output_string oc (Wcet.Annotfile.render entries);
             close_out oc;
             Buffer.add_string out
               (Printf.sprintf "annotation file written to %s\n" path)
           | None -> ());
          let report = Fcstack.Chain.wcet ~config b in
          Buffer.add_string out
            (Printf.sprintf "--- %s ---\n"
               (Fcstack.Chain.compiler_description comp));
          Buffer.add_string out (Wcet.Report.to_string report);
          if simulate then begin
            let m = observed_max b [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
            Buffer.add_string out
              (Printf.sprintf
                 "  max observed      : %d cycles (8 random worlds)\n" m);
            Buffer.add_string out
              (Printf.sprintf "  overestimation    : %+.1f%%\n"
                 (100.0
                  *. (float_of_int report.Wcet.Report.rp_wcet /. float_of_int m
                      -. 1.0)))
          end;
          Buffer.add_char out '\n'
        in
        if compare_all then List.iter analyze_one Fcstack.Chain.all_compilers
        else analyze_one config.Fcstack.Toolchain.compiler)
  in
  (Buffer.contents out,
   match outcome with Ok () -> None | Error d -> Some d)

let run (files : string list) (compiler : string) (compare_all : bool)
    (simulate : bool) (annot_out : string option)
    (passes : Vcomp.Pass.options) (engine : Wcet.Report.engine) (jobs : int)
    (fail_fast : bool) (copts : Fcstack.Cliopts.cache_opts) : int =
  match Fcstack.Chain.compiler_of_string compiler with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok comp ->
    if annot_out <> None && List.length files > 1 then begin
      Printf.eprintf "--annot-out requires a single input file\n";
      2
    end
    else begin
      (* one config for the whole run: one cache (possibly persistent)
         for all files and configurations; Wcet.Memo is sharded and
         mutex-protected, so the -j domains share it directly *)
      let config =
        Fcstack.Cliopts.config_of_opts ~jobs ~compiler:comp ~fail_fast
          ~passes ~engine copts
      in
      let total = List.length files in
      let results =
        Fcstack.Par.map_list ~jobs:config.Fcstack.Toolchain.jobs
          (analyze_file ~config compare_all simulate annot_out)
          files
      in
      (* --fail-fast: the first failing file (input order) aborts the
         run; nothing after it is reported *)
      let results =
        if fail_fast then
          let rec upto = function
            | [] -> []
            | ((_, d) as r) :: rest ->
              if d = None then r :: upto rest else [ r ]
          in
          upto results
        else results
      in
      List.iter (fun (out, _) -> print_string out) results;
      let diags = List.filter_map snd results in
      (* diagnostics, failure summary and cache accounting are
         stderr-only: stdout reports stay byte-identical across
         fail_fast/cache/jobs configurations *)
      Fcstack.Diag.print_summary ~total diags;
      Fcstack.Cliopts.report_stats config;
      Fcstack.Cliopts.finalize config;
      if fail_fast && diags <> [] then 2
      else Fcstack.Diag.exit_code ~total ~failed:(List.length diags)
    end

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mc")

let compiler_arg =
  Arg.(value & opt string "vcomp"
       & info [ "c"; "compiler" ] ~docv:"COMPILER" ~doc:"o0, o1, o2 or vcomp.")

let compare_arg =
  Arg.(value & flag & info [ "compare" ] ~doc:"Analyze all four configurations.")

let simulate_arg =
  Arg.(value & flag
       & info [ "simulate" ]
           ~doc:"Also report the worst cycle count observed on the simulator.")

let annot_out_arg =
  Arg.(value & opt (some string) None
       & info [ "annot-out" ] ~docv:"FILE"
           ~doc:"Write the generated annotation file (paper section 3.4). \
                 Single input file only.")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Analyze input files across $(docv) domains. Reports are printed \
          in input order regardless of $(docv)."

let cmd =
  let doc = "static WCET analysis of compiled flight-control code" in
  Cmd.v
    (Cmd.info "aitw" ~doc)
    Term.(
      const run $ files_arg $ compiler_arg $ compare_arg $ simulate_arg
      $ annot_out_arg $ Fcstack.Cliopts.passes_term
      $ Fcstack.Cliopts.engine_term $ jobs_arg
      $ Fcstack.Cliopts.fail_fast_term $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
