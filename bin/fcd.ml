(* fcd — persistent compilation daemon.

   Owns one warm [Fcstack.Service] session — the shared WCET analysis
   cache (memory, plus disk with --cache-dir) and the Domain pool —
   and serves compile/analyze requests over a Unix-domain socket
   (--socket PATH) or a single stdin/stdout connection (--stdio).
   fcc/aitw talk to it with --connect; the wire protocol is
   Fcstack.Wire's length-prefixed fcd1 frames.

   Answers are byte-identical to what a cold batch run would produce:
   the warm cache changes wall clock, never results (request 2+ of a
   repeated analysis shows "0 misses" in the per-request stderr
   accounting). SIGTERM shuts the accept loop down cleanly — the
   socket is unlinked and the store GC budget applied; killing the
   daemon mid-request never corrupts the store (crash-safe writes) and
   never yields a wrong answer (clients see a transport failure and
   retry). --max-requests N exits after N requests, so tests get a
   deterministic daemon lifetime without PID management.

   Resilience posture (see DESIGN.md "Failure model of the service"):
   one hostile or dying connection costs only itself — oversized
   frames are refused before allocation, a slow-loris peer is poisoned
   by --read-timeout-ms, any escape from a connection is logged and
   contained, and past --pending-budget waiting connections new
   arrivals are shed with a fast busy frame. fcd refuses to start on a
   socket another live daemon is accepting on (exit 1), and --ping
   probes a daemon's liveness without consuming its request budget. *)

let ping (path : string) : int =
  let open Fcstack in
  match Service.Client.connect path with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok conn ->
    let r =
      Service.Client.request ~timeout_s:10.0 conn
        (Request.make ~name:"ping" ~action:Request.Ping "")
    in
    Service.Client.close conn;
    (match r.Response.rs_status with
     | Response.Sok ->
       print_string r.Response.rs_output;
       0
     | _ ->
       List.iter
         (fun d -> prerr_endline (Diag.to_string d))
         r.Response.rs_diags;
       1)

let run (socket : string option) (stdio : bool) (ping_path : string option)
    (max_requests : int option) (jobs : int) (pending_budget : int)
    (read_timeout_ms : int) (copts : Fcstack.Cliopts.cache_opts) : int =
  let open Fcstack in
  match ping_path with
  | Some path -> ping path
  | None ->
    let session =
      Service.create ~state:(Cliopts.session_of_opts ~jobs copts) ()
    in
    let finish () =
      Cliopts.report_session_stats session;
      Service.gc session;
      Printf.eprintf "fcd: served %d request(s)\n%!" (Service.served session)
    in
    if stdio then begin
      Service.serve_stdio ?max_requests session;
      finish ();
      0
    end
    else
      (match socket with
       | None ->
         prerr_endline "fcd: either --socket PATH, --stdio or --ping is required";
         2
       | Some path ->
         let stop = ref false in
         (* the handler only flips the flag; the interrupted wait
            returns EINTR and the loop re-checks it — clean shutdown *)
         Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
         (match
            Service.serve_unix ?max_requests ~stop:(fun () -> !stop)
              ~pending_budget
              ?read_timeout_ms:
                (if read_timeout_ms <= 0 then None else Some read_timeout_ms)
              session path
          with
          | () ->
            finish ();
            0
          | exception Failure msg ->
            (* a live daemon already owns the socket: refuse loudly
               instead of fighting it for the path *)
            Printf.eprintf "fcd: %s\n%!" msg;
            1))

open Cmdliner

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) (unlinked on \
                 shutdown). Refuses to start if another live daemon is \
                 accepting on $(docv); a stale socket file left by a \
                 dead daemon is removed and rebound.")

let stdio_arg =
  Arg.(value & flag
       & info [ "stdio" ]
           ~doc:"Serve a single connection over stdin/stdout instead of a \
                 socket (for tests and pipelines).")

let ping_arg =
  Arg.(value & opt (some string) None
       & info [ "ping" ] ~docv:"PATH"
           ~doc:"Probe the daemon at $(docv): print its pong line \
                 (served count, jobs, cache kind) and exit 0 if it \
                 answers, 1 otherwise. Liveness probes run no toolchain \
                 work and do not consume a $(b,--max-requests) budget, \
                 so supervisors can poll freely.")

let max_requests_arg =
  Arg.(value & opt (some int) None
       & info [ "max-requests" ] ~docv:"N"
           ~doc:"Exit after answering $(docv) requests — a deterministic \
                 daemon lifetime for tests.")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Width of the session's Domain pool (reserved for future \
          request-level fan-out; requests on one connection are served \
          in order)."

let pending_budget_arg =
  Arg.(value & opt int 16
       & info [ "pending-budget" ] ~docv:"N"
           ~doc:"Maximum connections queued for service (default 16); \
                 past it, new arrivals are shed with a fast busy frame \
                 the clients retry on — bounded latency instead of an \
                 unbounded queue.")

let read_timeout_ms_arg =
  Arg.(value & opt int 10_000
       & info [ "read-timeout-ms" ] ~docv:"MS"
           ~doc:"Per-read timeout once a peer has committed to a frame \
                 (default 10000; 0 disables). A sender that stalls \
                 mid-frame is refused and disconnected — it cannot park \
                 the daemon. Idle connections are unaffected.")

let cmd =
  let doc = "persistent compile+analyze daemon (warm-cache serve loop)" in
  Cmd.v
    (Cmd.info "fcd" ~doc)
    Term.(
      const run $ socket_arg $ stdio_arg $ ping_arg $ max_requests_arg
      $ jobs_arg $ pending_budget_arg $ read_timeout_ms_arg
      $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
