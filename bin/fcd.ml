(* fcd — persistent compilation daemon.

   Owns one warm [Fcstack.Service] session — the shared WCET analysis
   cache (memory, plus disk with --cache-dir) and the Domain pool —
   and serves compile/analyze requests over a Unix-domain socket
   (--socket PATH) or a single stdin/stdout connection (--stdio).
   fcc/aitw talk to it with --connect; the wire protocol is
   Fcstack.Wire's length-prefixed fcd1 frames.

   Answers are byte-identical to what a cold batch run would produce:
   the warm cache changes wall clock, never results (request 2+ of a
   repeated analysis shows "0 misses" in the per-request stderr
   accounting). SIGTERM shuts the accept loop down cleanly — the
   socket is unlinked and the store GC budget applied; killing the
   daemon mid-request never corrupts the store (crash-safe writes) and
   never yields a wrong answer (clients see a transport failure and
   retry). --max-requests N exits after N requests, so tests get a
   deterministic daemon lifetime without PID management. *)

let run (socket : string option) (stdio : bool) (max_requests : int option)
    (jobs : int) (copts : Fcstack.Cliopts.cache_opts) : int =
  let open Fcstack in
  let session = Service.create ~state:(Cliopts.session_of_opts ~jobs copts) () in
  let finish () =
    Cliopts.report_session_stats session;
    Service.gc session;
    Printf.eprintf "fcd: served %d request(s)\n%!" (Service.served session)
  in
  if stdio then begin
    Service.serve_stdio ?max_requests session;
    finish ();
    0
  end
  else
    match socket with
    | None ->
      prerr_endline "fcd: either --socket PATH or --stdio is required";
      2
    | Some path ->
      let stop = ref false in
      (* the handler only flips the flag; the interrupted accept(2)
         returns EINTR and the loop re-checks it — clean shutdown *)
      Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
      Service.serve_unix ?max_requests ~stop:(fun () -> !stop) session path;
      finish ();
      0

open Cmdliner

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) (unlinked on \
                 shutdown).")

let stdio_arg =
  Arg.(value & flag
       & info [ "stdio" ]
           ~doc:"Serve a single connection over stdin/stdout instead of a \
                 socket (for tests and pipelines).")

let max_requests_arg =
  Arg.(value & opt (some int) None
       & info [ "max-requests" ] ~docv:"N"
           ~doc:"Exit after answering $(docv) requests — a deterministic \
                 daemon lifetime for tests.")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Width of the session's Domain pool (reserved for future \
          request-level fan-out; requests on one connection are served \
          in order)."

let cmd =
  let doc = "persistent compile+analyze daemon (warm-cache serve loop)" in
  Cmd.v
    (Cmd.info "fcd" ~doc)
    Term.(
      const run $ socket_arg $ stdio_arg $ max_requests_arg $ jobs_arg
      $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
