(* fcc — flight-control compiler driver.

   Compiles mini-C source files (.mc) under one of the four
   configurations of the paper's evaluation and prints (or writes) the
   generated assembly. Optionally runs the whole-chain translation
   validation (source interpreter vs machine simulator) and prints the
   RTL dump of the verified-style compiler.

   Several files form a multi-node input (one node per file, like the
   paper's ~2,500 generated files); -j N compiles them across N domains
   with deterministic, input-ordered output.

   All flags fold into one Fcstack.Toolchain.config. fcc accepts the
   same cache trio as aitw/bench (--no-cache/--cache-dir/--cache-gc-mb)
   for a uniform toolchain surface — compilation itself never consults
   the WCET cache, but --cache-gc-mb still applies the size budget to a
   shared cache directory, so fcc can do store maintenance in a
   pipeline that interleaves compiles and analyses. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-file result, rendered strictly in input order so that -j N
   output is byte-identical to -j 1. A failed file carries its
   diagnostic instead of output; successful files are unaffected. *)
type file_result = {
  fr_rtl : string;   (* --dump-rtl text, always on stdout *)
  fr_asm : string;   (* assembly text; stdout, or the -o file *)
  fr_stderr : string;
  fr_stats : Vcomp.Pass.pass_stats list;  (* vcomp per-pass stats *)
  fr_diag : Fcstack.Diag.t option;
}

(* Compile one file with per-stage containment: a failure at any stage
   becomes a [Diag.t] naming the file and the stage, and costs exactly
   this file — exceptions never escape. *)
let compile_file (comp : Fcstack.Chain.compiler) (validate : bool)
    (dump_rtl : bool) (exact : bool) (passes : Vcomp.Pass.options)
    (sim_fuel : int option) (file : string) : file_result =
  let open Fcstack in
  let rtl_dump = Buffer.create 64 and err = Buffer.create 64 in
  let asm = ref "" and stats = ref [] in
  let ( let* ) = Result.bind in
  let outcome : (unit, Diag.t) Result.t =
    let* src =
      Diag.capture ~node:file ~stage:Diag.Parse (fun () ->
          Minic.Parser.parse_program (read_file file))
    in
    let* () =
      match Minic.Typecheck.check_program src with
      | Ok () -> Ok ()
      | Error e ->
        Error
          (Diag.make ~node:file ~stage:Diag.Typecheck
             (Minic.Typecheck.error_to_string e))
    in
    let* b =
      Diag.capture ~node:file ~stage:Diag.Compile (fun () ->
          if dump_rtl then begin
            let rtl, _ = Vcomp.Driver.compile_with_rtl ~options:passes src in
            List.iter
              (fun f -> Buffer.add_string rtl_dump (Vcomp.Rtl.dump_func f))
              rtl.Vcomp.Rtl.p_funcs
          end;
          Fcstack.Chain.build ~exact
            ~validate:(validate && comp = Fcstack.Chain.Cvcomp) ~passes comp
            src)
    in
    asm := Target.Emit.program_to_string b.Fcstack.Chain.b_asm;
    stats := b.Fcstack.Chain.b_pass_stats;
    if validate then
      let* verdict =
        Diag.capture ~node:file ~stage:Diag.Sim (fun () ->
            Fcstack.Chain.validate_chain ?sim_fuel b)
      in
      match verdict with
      | Ok () ->
        Buffer.add_string err
          "validation: machine code matches source semantics\n";
        Ok ()
      | Error msg ->
        Error
          (Diag.make ~node:file ~stage:Diag.Sim ("validation FAILED: " ^ msg))
    else Ok ()
  in
  { fr_rtl = Buffer.contents rtl_dump;
    fr_asm = !asm;
    fr_stderr = Buffer.contents err;
    fr_stats = !stats;
    fr_diag = (match outcome with Ok () -> None | Error d -> Some d) }

let run (files : string list) (compiler : string) (output : string option)
    (validate : bool) (dump_rtl : bool) (exact : bool)
    (passes : Vcomp.Pass.options) (engine : Wcet.Report.engine) (jobs : int)
    (stream : Fcstack.Toolchain.stream_opts option) (fail_fast : bool)
    (copts : Fcstack.Cliopts.cache_opts) : int =
  match Fcstack.Chain.compiler_of_string compiler with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok comp ->
    (* fcc never analyzes, but accepts --engine so the three CLI flag
       surfaces stay uniform (a config built here behaves identically
       wherever it is handed on) *)
    let config =
      Fcstack.Cliopts.config_of_opts ~jobs ~compiler:comp ~fail_fast ~passes
        ~engine ?stream copts
    in
    let total = List.length files in
    let compile =
      compile_file config.Fcstack.Toolchain.compiler validate dump_rtl exact
        config.Fcstack.Toolchain.passes config.Fcstack.Toolchain.sim_fuel
    in
    (* Two execution shapes with byte-identical stdout (and -o file):
       batch compiles everything then merges by input order; --stream
       pulls the file list shard by shard through the bounded buffer
       and emits each file's output the moment its global turn comes,
       never holding more than jobs+lookahead shards of results.
       (Streaming interleaves the per-file stderr with stdout instead
       of emitting it after; each stream's own bytes are identical.)

       --fail-fast: the first failing file (input order) ends emission
       — nothing after it is emitted, its diagnostic is the only one
       reported, and the exit is total failure. *)
    let emit oc (r : file_result) : unit =
      print_string r.fr_rtl;
      (match oc with
       | Some oc -> output_string oc r.fr_asm
       | None -> print_string r.fr_asm);
      prerr_string r.fr_stderr
    in
    let oc = Option.map open_out output in
    let stats_lists, diags =
      match config.Fcstack.Toolchain.stream with
      | None ->
        let results =
          Fcstack.Par.map_list ~jobs:config.Fcstack.Toolchain.jobs compile
            files
        in
        let results =
          if fail_fast then
            let rec upto = function
              | [] -> []
              | r :: rest -> if r.fr_diag = None then r :: upto rest else [ r ]
            in
            upto results
          else results
        in
        List.iter (fun r -> emit oc r) results;
        ( List.filter_map
            (fun r -> if r.fr_stats = [] then None else Some r.fr_stats)
            results,
          List.filter_map (fun r -> r.fr_diag) results )
      | Some so ->
        let arr = Array.of_list files in
        let shard_size = max 1 so.Fcstack.Toolchain.so_shard_size in
        let producer k =
          let lo = k * shard_size in
          if lo >= Array.length arr then None
          else
            Some
              (Array.map
                 (fun f () -> compile f)
                 (Array.sub arr lo (min shard_size (Array.length arr - lo))))
        in
        let consumer (failed, stats, diags) _g r =
          if fail_fast && failed then (failed, stats, diags)
          else begin
            emit oc r;
            ( failed || r.fr_diag <> None,
              (if r.fr_stats = [] then stats else r.fr_stats :: stats),
              match r.fr_diag with Some d -> d :: diags | None -> diags )
          end
        in
        let _, stats, diags =
          Fcstack.Par.run_stream ~jobs:config.Fcstack.Toolchain.jobs
            ~lookahead:so.Fcstack.Toolchain.so_lookahead ~producer ~consumer
            ~init:(false, [], []) ()
        in
        (List.rev stats, List.rev diags)
    in
    Option.iter close_out oc;
    (* per-pass middle-end accounting, aggregated over all files:
       stderr-only, like the cache stats, so stdout/-o output stays
       byte-identical across flag configurations *)
    (match stats_lists with
     | [] -> ()  (* COTS configurations have no middle-end pipeline *)
     | with_stats ->
       Format.eprintf "%a@?" Vcomp.Pass.pp_stats
         (Vcomp.Pass.aggregate with_stats));
    (* diagnostics and the failure summary are stderr-only: stdout is
       byte-identical across fail_fast/cache/jobs configurations *)
    Fcstack.Diag.print_summary ~total diags;
    (* cache maintenance only: fcc never analyzes, so no stats *)
    Fcstack.Cliopts.finalize config;
    if fail_fast && diags <> [] then 2
    else Fcstack.Diag.exit_code ~total ~failed:(List.length diags)

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mc")

let compiler_arg =
  Arg.(value & opt string "vcomp"
       & info [ "c"; "compiler" ] ~docv:"COMPILER"
           ~doc:"Configuration: o0, o1, o2 or vcomp.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE.s" ~doc:"Write assembly here.")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ]
           ~doc:"Run whole-chain translation validation (interpreter vs \
                 simulator) after compiling.")

let dump_rtl_arg =
  Arg.(value & flag & info [ "dump-rtl" ] ~doc:"Dump the optimized RTL (vcomp).")

let exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"Disable semantics-relaxing optimizations (the default-O2 \
                 FMA contraction).")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Compile input files across $(docv) domains. Output is \
          deterministic (input order) regardless of $(docv)."

let cmd =
  let doc = "compile flight-control mini-C under the paper's configurations" in
  Cmd.v
    (Cmd.info "fcc" ~doc)
    Term.(
      const run $ files_arg $ compiler_arg $ output_arg $ validate_arg
      $ dump_rtl_arg $ exact_arg $ Fcstack.Cliopts.passes_term
      $ Fcstack.Cliopts.engine_term $ jobs_arg $ Fcstack.Cliopts.stream_term
      $ Fcstack.Cliopts.fail_fast_term $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
