(* fcc — flight-control compiler driver.

   Compiles mini-C source files (.mc) under one of the four
   configurations of the paper's evaluation and prints (or writes) the
   generated assembly. Optionally runs the whole-chain translation
   validation (source interpreter vs machine simulator) and prints the
   RTL dump of the verified-style compiler.

   fcc is a thin client of the compilation service: every input file
   becomes one [Fcstack.Request.t], executed either in-process against
   a private [Fcstack.Service] session (the batch default — several
   files fan out across -j N domains with deterministic, input-ordered
   output) or, with --connect SOCKET, against a running fcd daemon.
   Both transports produce byte-identical output; a daemon's warm
   analysis cache only changes wall clock, and a transport failure is
   per-file data (never mistakable for an answer).

   fcc accepts the same cache trio as aitw/bench
   (--no-cache/--cache-dir/--cache-gc-mb) for a uniform toolchain
   surface — compilation itself never consults the WCET cache, but
   --cache-gc-mb still applies the size budget to a shared cache
   directory, so fcc can do store maintenance in a pipeline that
   interleaves compiles and analyses. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One file -> one request -> one response, through whichever transport
   [do_request] is. A file-read failure never reaches the service: it
   becomes a refusal right here, naming the file and the Parse stage
   (same containment as always). *)
let compile_file (do_request : Fcstack.Request.t -> Fcstack.Response.t)
    (opts : Fcstack.Toolchain.request_opts) (validate : bool)
    (dump_rtl : bool) (exact : bool) ?deadline_ms (file : string) :
  Fcstack.Response.t =
  let open Fcstack in
  match
    Diag.capture ~node:file ~stage:Diag.Parse (fun () -> read_file file)
  with
  | Error d -> Response.refused [ d ]
  | Ok source ->
    do_request
      (Request.make ~name:file
         ~action:(Request.Compile { ac_dump_rtl = dump_rtl })
         ~opts ~validate ~exact ?deadline_ms source)

let run (files : string list) (compiler : Fcstack.Toolchain.compiler)
    (output : string option) (validate : bool) (dump_rtl : bool)
    (exact : bool) (passes : Vcomp.Pass.options)
    (engine : Wcet.Report.engine) (jobs : int)
    (stream : Fcstack.Toolchain.stream_opts option) (fail_fast : bool)
    (connect : string option) (deadline_ms : int option)
    (retry : Fcstack.Retry.policy) (fallback_local : bool)
    (copts : Fcstack.Cliopts.cache_opts) : int =
  let open Fcstack in
  (* fcc never analyzes, but accepts --engine so the three CLI flag
     surfaces stay uniform (a request built here behaves identically
     wherever it is executed) *)
  let opts = Toolchain.request_opts ~compiler ~passes ~engine () in
  let total = List.length files in
  (* Rendered strictly in input order so that -j N output is
     byte-identical to -j 1. A failed file carries its diagnostics
     plus whatever bytes were produced before the failure (identical
     to the pre-service fcc). *)
  let emit oc (r : Response.t) : unit =
    print_string r.Response.rs_rtl;
    (match oc with
     | Some oc -> output_string oc r.Response.rs_output
     | None -> print_string r.Response.rs_output);
    prerr_string r.Response.rs_notes
  in
  (* --fail-fast: the first failing file (input order) ends emission —
     nothing after it is emitted, its diagnostics are the only ones
     reported, and the exit is total failure. *)
  let rec upto = function
    | [] -> []
    | (r : Response.t) :: rest ->
      if r.Response.rs_status = Response.Sok then r :: upto rest else [ r ]
  in
  let finish oc (stats_lists : Vcomp.Pass.pass_stats list list)
      (diags : Diag.t list) : int =
    Option.iter close_out oc;
    (* per-pass middle-end accounting, aggregated over all files:
       stderr-only, like the cache stats, so stdout/-o output stays
       byte-identical across flag configurations *)
    (match stats_lists with
     | [] -> ()  (* COTS configurations have no middle-end pipeline *)
     | with_stats ->
       Format.eprintf "%a@?" Vcomp.Pass.pp_stats
         (Vcomp.Pass.aggregate with_stats));
    (* diagnostics and the failure summary are stderr-only: stdout is
       byte-identical across fail_fast/cache/jobs configurations *)
    Diag.print_summary ~total diags;
    if fail_fast && diags <> [] then 2
    else Diag.exit_code ~total ~failed:(List.length diags)
  in
  (* in-process service session: batch = one request per file. Also
     the degradation target of --fallback-local, so it must be
     reachable from the client branch — byte-identical output either
     way, since both transports execute the same [run_request]. *)
  let run_local () : int =
    let session =
      Service.create ~state:(Cliopts.session_of_opts ~jobs ~fail_fast ?stream copts) ()
    in
    let compile =
      compile_file (Service.run_request session) opts validate dump_rtl exact
        ?deadline_ms
    in
    let oc = Option.map open_out output in
    (* Two execution shapes with byte-identical stdout (and -o file):
       batch compiles everything then merges by input order; --stream
       pulls the file list shard by shard through the bounded buffer
       and emits each file's output the moment its global turn comes,
       never holding more than jobs+lookahead shards of results.
       (Streaming interleaves the per-file stderr with stdout instead
       of emitting it after; each stream's own bytes are identical.) *)
    let stats_lists, diags =
      match Service.stream session with
      | None ->
        let results =
          Par.map_list ~jobs:(Service.jobs session) compile files
        in
        let results = if fail_fast then upto results else results in
        List.iter (fun r -> emit oc r) results;
        ( List.filter_map
            (fun (r : Response.t) ->
               if r.Response.rs_pass_stats = [] then None
               else Some r.Response.rs_pass_stats)
            results,
          List.concat_map (fun (r : Response.t) -> r.Response.rs_diags)
            results )
      | Some so ->
        let arr = Array.of_list files in
        let shard_size = max 1 so.Toolchain.so_shard_size in
        let producer k =
          let lo = k * shard_size in
          if lo >= Array.length arr then None
          else
            Some
              (Array.map
                 (fun f () -> compile f)
                 (Array.sub arr lo (min shard_size (Array.length arr - lo))))
        in
        let consumer (failed, stats, diags) _g (r : Response.t) =
          if fail_fast && failed then (failed, stats, diags)
          else begin
            emit oc r;
            ( failed || r.Response.rs_status <> Response.Sok,
              (if r.Response.rs_pass_stats = [] then stats
               else r.Response.rs_pass_stats :: stats),
              List.rev_append r.Response.rs_diags diags )
          end
        in
        let _, stats, diags =
          Par.run_stream ~jobs:(Service.jobs session)
            ~lookahead:so.Toolchain.so_lookahead ~producer ~consumer
            ~init:(false, [], []) ()
        in
        (List.rev stats, List.rev diags)
    in
    (* cache maintenance only: fcc never analyzes, so no stats *)
    Service.gc session;
    finish oc stats_lists diags
  in
  match connect with
  | Some socket ->
    (* Client of a running daemon: one connection, requests in input
       order (the protocol is serial per connection). Each request
       runs under the retry policy — transport/busy failures reconnect
       and re-issue (sound: requests are pure functions of request +
       store), refusals are final. With --fallback-local, a request
       that exhausts its retries (or a daemon that can't be reached at
       all) degrades to in-process execution of the SAME requests, so
       stdout stays byte-identical. *)
    let retried = ref 0 and extra = ref 0 in
    (* client-side wait bound: the server enforces the deadline, the
       grace covers transit and the compile path's entry-only check *)
    let timeout_s =
      Option.map (fun ms -> (float_of_int ms /. 1000.0) +. 2.0) deadline_ms
    in
    let conn : Service.Client.conn option ref = ref None in
    let get_conn () =
      match !conn with
      | Some c -> Ok c
      | None ->
        (match Service.Client.connect socket with
         | Ok c ->
           conn := Some c;
           Ok c
         | Error _ as e -> e)
    in
    let drop_conn () =
      Option.iter Service.Client.close !conn;
      conn := None
    in
    let local_session =
      lazy
        (Service.create
           ~state:(Cliopts.session_of_opts ~jobs ~fail_fast ?stream copts)
           ())
    in
    let do_request (rq : Request.t) : Response.t =
      let r, attempts =
        Retry.run ~policy:retry (fun ~attempt:_ ->
            match get_conn () with
            | Error msg -> Response.transport ~node:rq.Request.rq_name msg
            | Ok c ->
              let r = Service.Client.request ?timeout_s c rq in
              (* a poisoned/berserk connection must not leak into the
                 next attempt or the next file *)
              if Retry.should_retry r.Response.rs_status then drop_conn ();
              r)
      in
      if attempts > 1 then begin
        incr retried;
        extra := !extra + (attempts - 1)
      end;
      if fallback_local && Retry.should_retry r.Response.rs_status then begin
        Printf.eprintf
          "fcc: daemon unreachable for %s; falling back to local execution\n%!"
          rq.Request.rq_name;
        Service.run_request (Lazy.force local_session) rq
      end
      else r
    in
    (match get_conn () with
     | Error msg when not fallback_local ->
       prerr_endline msg;
       2
     | Error _ | Ok _ ->
       (* connect failure with --fallback-local just means the first
          request's attempts will fail fast and degrade *)
       let compile =
         compile_file do_request opts validate dump_rtl exact ?deadline_ms
       in
       let results = List.map compile files in
       let results = if fail_fast then upto results else results in
       let oc = Option.map open_out output in
       List.iter (emit oc) results;
       drop_conn ();
       let code =
         finish oc
           (List.filter_map
              (fun (r : Response.t) ->
                 if r.Response.rs_pass_stats = [] then None
                 else Some r.Response.rs_pass_stats)
              results)
           (List.concat_map (fun (r : Response.t) -> r.Response.rs_diags)
              results)
       in
       Cliopts.report_retries ~tool:"fcc" ~requests:!retried
         ~extra_attempts:!extra;
       code)
  | None -> run_local ()

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mc")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE.s" ~doc:"Write assembly here.")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ]
           ~doc:"Run whole-chain translation validation (interpreter vs \
                 simulator) after compiling.")

let dump_rtl_arg =
  Arg.(value & flag & info [ "dump-rtl" ] ~doc:"Dump the optimized RTL (vcomp).")

let exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"Disable semantics-relaxing optimizations (the default-O2 \
                 FMA contraction).")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Compile input files across $(docv) domains. Output is \
          deterministic (input order) regardless of $(docv)."

let cmd =
  let doc = "compile flight-control mini-C under the paper's configurations" in
  Cmd.v
    (Cmd.info "fcc" ~doc)
    Term.(
      const run $ files_arg $ Fcstack.Cliopts.compiler_term $ output_arg
      $ validate_arg $ dump_rtl_arg $ exact_arg $ Fcstack.Cliopts.passes_term
      $ Fcstack.Cliopts.engine_term $ jobs_arg $ Fcstack.Cliopts.stream_term
      $ Fcstack.Cliopts.fail_fast_term $ Fcstack.Cliopts.connect_term
      $ Fcstack.Cliopts.deadline_ms_term $ Fcstack.Cliopts.retry_term
      $ Fcstack.Cliopts.fallback_local_term $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
