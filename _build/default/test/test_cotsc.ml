(* Tests for the COTS baseline compiler in its three configurations. *)

let checkb = Alcotest.check Alcotest.bool

let worlds (seed : int) = Minic.Interp.seeded_world ~seed ()

let chain_equal ?(cycles = 3)
    (compile : Minic.Ast.program -> Target.Asm.program)
    (p : Minic.Ast.program) (seed : int) : bool =
  let asm = compile p in
  let lay = Target.Layout.build p asm in
  let ri = Minic.Interp.run_cycles p (worlds seed) ~cycles in
  let rs =
    (Target.Sim.run ~cycles ~source:p asm lay (worlds seed) []).Target.Sim.rr_result
  in
  Minic.Interp.result_equal ri rs

(* every level, exact mode: bit-exact semantics on random programs *)
let level_prop (name : string) (level : Cotsc.Driver.level) =
  QCheck.Test.make ~count:100
    ~name:(Printf.sprintf "cotsc %s: machine = source on random programs" name)
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       chain_equal (Cotsc.Driver.compile ~level ~contract_fma:false) p seed)

let o0_prop = level_prop "O0" Cotsc.Driver.Onone
let o1_prop = level_prop "O1" Cotsc.Driver.Onoregalloc
let o2_prop = level_prop "O2(exact)" Cotsc.Driver.Ofull

(* chain fusion alone preserves the source semantics *)
let chainfuse_prop =
  QCheck.Test.make ~count:100 ~name:"chainfuse: fused source = source"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let fused = Cotsc.Chainfuse.fuse_program p in
       Minic.Typecheck.check_program_exn fused;
       let r1 = Minic.Interp.run_cycles p (worlds seed) ~cycles:3 in
       let r2 = Minic.Interp.run_cycles fused (worlds seed) ~cycles:3 in
       Minic.Interp.result_equal r1 r2)

(* constant folding preserves the source semantics *)
let fold_prop =
  QCheck.Test.make ~count:100 ~name:"fold: folded source = source"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let folded = Cotsc.Fold.fold_program p in
       Minic.Typecheck.check_program_exn folded;
       let r1 = Minic.Interp.run_cycles p (worlds seed) ~cycles:3 in
       let r2 = Minic.Interp.run_cycles folded (worlds seed) ~cycles:3 in
       Minic.Interp.result_equal r1 r2)

(* O2 with FMA contraction: event structure identical, float values may
   differ only slightly (single vs double rounding) *)
let fma_structure_prop =
  QCheck.Test.make ~count:60
    ~name:"cotsc O2+fma: same event structure, bounded drift"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let asm = Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull p in
       let lay = Target.Layout.build p asm in
       let ri = Minic.Interp.run_cycles p (worlds seed) ~cycles:2 in
       let rs =
         (Target.Sim.run ~cycles:2 ~source:p asm lay (worlds seed) [])
           .Target.Sim.rr_result
       in
       let ei = ri.Minic.Interp.res_events
       and es = rs.Minic.Interp.res_events in
       List.length ei = List.length es
       && List.for_all2
            (fun a b ->
               match (a, b) with
               | Minic.Interp.Ev_annot (t1, _), Minic.Interp.Ev_annot (t2, _) ->
                 String.equal t1 t2
               | Minic.Interp.Ev_vol_read (x1, v1), Minic.Interp.Ev_vol_read (x2, v2)
                 ->
                 (* reads sample the same world: identical *)
                 String.equal x1 x2 && Minic.Value.equal v1 v2
               | Minic.Interp.Ev_vol_write (x1, _), Minic.Interp.Ev_vol_write (x2, _)
                 ->
                 String.equal x1 x2
               | _, _ -> false)
            ei es)

(* the pattern property of Listing 1: in O0 code, every fadd's operands
   were just loaded and its result is immediately stored *)
let test_o0_pattern_shape () =
  let p =
    Minic.Parser.parse_program
      {| double m() { var double a; var double b; var double c;
           a = 1.0; b = 2.0; c = a +. b; return c; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let asm = Cotsc.Driver.compile ~level:Cotsc.Driver.Onone p in
  let code = (List.hd asm.Target.Asm.pr_funcs).Target.Asm.fn_code in
  let rec find_fadd_context = function
    | Target.Asm.Plfd _ :: Target.Asm.Plfd _ :: Target.Asm.Pfadd _
      :: Target.Asm.Pstfd _ :: _ -> true
    | _ :: rest -> find_fadd_context rest
    | [] -> false
  in
  checkb "load-load-fadd-store pattern present" true (find_fadd_context code)

(* O2 emits SDA addressing for globals, O0 does not *)
let test_sda_usage () =
  let p =
    Minic.Parser.parse_program
      {| global double g; double m() { return $g; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let has_sda level =
    let asm = Cotsc.Driver.compile ~level p in
    List.exists
      (fun i ->
         match i with
         | Target.Asm.Plfd (_, Target.Asm.Asda _) -> true
         | _ -> false)
      (List.hd asm.Target.Asm.pr_funcs).Target.Asm.fn_code
  in
  checkb "O0 avoids SDA" false (has_sda Cotsc.Driver.Onone);
  checkb "O2 uses SDA" true (has_sda Cotsc.Driver.Ofull)

(* O2 contracts a multiply-add *)
let test_fma_contraction () =
  let p =
    Minic.Parser.parse_program
      {| double m() { var double a; a = volatile(s); return a *. a +. 1.0; }
         volatile in double s; main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let count_fma contract =
    let asm = Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:contract p in
    List.length
      (List.filter
         (fun i ->
            match i with
            | Target.Asm.Pfmadd _ | Target.Asm.Pfmsub _ -> true
            | _ -> false)
         (List.hd asm.Target.Asm.pr_funcs).Target.Asm.fn_code)
  in
  Alcotest.check Alcotest.int "contraction on" 1 (count_fma true);
  Alcotest.check Alcotest.int "contraction off" 0 (count_fma false)

(* peephole and scheduler never change code behaviour (they are inside
   the O2 pipeline, re-checked here in isolation on compiled programs) *)
let sched_preserves_prop =
  QCheck.Test.make ~count:60 ~name:"scheduler: reordered code = original"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       (* compile without the scheduler by using O1, then schedule *)
       let asm = Cotsc.Driver.compile ~level:Cotsc.Driver.Onoregalloc p in
       let asm' = Cotsc.Sched.run asm in
       let lay = Target.Layout.build p asm in
       let lay' = Target.Layout.build p asm' in
       let r =
         (Target.Sim.run ~cycles:2 ~source:p asm lay (worlds seed) [])
           .Target.Sim.rr_result
       in
       let r' =
         (Target.Sim.run ~cycles:2 ~source:p asm' lay' (worlds seed) [])
           .Target.Sim.rr_result
       in
       Minic.Interp.result_equal r r')

let suite =
  [ QCheck_alcotest.to_alcotest o0_prop;
    QCheck_alcotest.to_alcotest o1_prop;
    QCheck_alcotest.to_alcotest o2_prop;
    QCheck_alcotest.to_alcotest chainfuse_prop;
    QCheck_alcotest.to_alcotest fold_prop;
    QCheck_alcotest.to_alcotest fma_structure_prop;
    ("O0 emits Listing-1 patterns", `Quick, test_o0_pattern_shape);
    ("SDA only at O2", `Quick, test_sda_usage);
    ("FMA contraction toggle", `Quick, test_fma_contraction);
    QCheck_alcotest.to_alcotest sched_preserves_prop ]

(* ---- corner cases: spill paths and pressure ---- *)

let all_compilers_agree (src : string) : unit =
  let p = Minic.Parser.parse_program src in
  Minic.Typecheck.check_program_exn p;
  List.iter
    (fun (name, compile) ->
       List.iter
         (fun seed -> checkb (name ^ " deep") true (chain_equal compile p seed))
         [ 1; 2; 9 ])
    [ ("O0", Cotsc.Driver.compile ~level:Cotsc.Driver.Onone ~contract_fma:false);
      ("O1", Cotsc.Driver.compile ~level:Cotsc.Driver.Onoregalloc ~contract_fma:false);
      ("O2", Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:false);
      ("VC", Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation) ]

(* expression deep enough to exhaust the O2 register stack (depth > 11
   floats): exercises the spill-around-right-operand path of eval2 *)
let test_deep_expression () =
  let rec deep n =
    if n = 0 then "volatile(s)"
    else Printf.sprintf "(%s +. (volatile(s) *. %s))" (deep (n - 1)) (deep (n - 1))
  in
  ignore (deep 0);
  (* a left-leaning chain of depth 14 forces stack-depth overflow *)
  let rec chain n = if n = 0 then "volatile(s)" else
    Printf.sprintf "(%s *. 1.5 +. volatile(s))" (chain (n - 1)) in
  all_compilers_agree
    (Printf.sprintf
       {| volatile in double s; volatile out double o;
          void m() { volatile(o) = %s; } main m; |}
       (chain 14));
  (* and a right-leaning chain, whose depth grows on the right operand *)
  let rec rchain n = if n = 0 then "volatile(s)" else
    Printf.sprintf "(1.5 *. volatile(s) +. %s)" (rchain (n - 1)) in
  all_compilers_agree
    (Printf.sprintf
       {| volatile in double s; volatile out double o;
          void m() { volatile(o) = %s; } main m; |}
       (rchain 14))

(* more simultaneously-live float locals than any register bank:
   exercises vcomp spilling and the O2 linear scan slot fallback *)
let test_register_pressure () =
  let n = 40 in
  let decls = List.init n (fun i -> Printf.sprintf "var double x%d;" i) in
  let defs =
    List.init n (fun i ->
        Printf.sprintf "x%d = volatile(s) *. %d.0;" i (i + 1))
  in
  let uses =
    List.init n (fun i -> Printf.sprintf "acc = acc +. x%d;" i)
  in
  all_compilers_agree
    (Printf.sprintf
       {| volatile in double s; volatile out double o;
          void m() { %s var double acc;
            %s
            acc = 0.0;
            %s
            volatile(o) = acc; } main m; |}
       (String.concat " " decls) (String.concat " " defs)
       (String.concat " " uses))

(* loop nesting deeper than the O2 limit-register pool *)
let test_deep_loop_nesting () =
  let body = ref "$g = $g +. 1.0;" in
  for k = 0 to 5 do
    body := Printf.sprintf "for (i%d = 0; i%d < 2) { %s }" k k !body
  done;
  let decls = String.concat " " (List.init 6 (fun k -> Printf.sprintf "var int i%d;" k)) in
  all_compilers_agree
    (Printf.sprintf
       {| global double g; void m() { %s %s } main m; |}
       decls !body)

(* int- and bool-typed conditional expressions through the movcc path *)
let test_int_movcc () =
  all_compilers_agree
    {| volatile in double s; volatile out double o; global int g;
       void m() { var int a; var bool b; var int c;
         a = (int)volatile(s);
         b = a > 10;
         c = b ? a + 1 : 0 - a;
         $g = a < 0 ? (0 - 1) : (a > 100 ? 100 : a);
         volatile(o) = (double)(c + $g); } main m; |}

let suite =
  suite
  @ [ ("deep expressions (register-stack spill)", `Quick, test_deep_expression);
      ("register pressure (allocator spills)", `Quick, test_register_pressure);
      ("deep loop nesting (limit registers exhausted)", `Quick,
       test_deep_loop_nesting);
      ("integer conditional moves", `Quick, test_int_movcc) ]
