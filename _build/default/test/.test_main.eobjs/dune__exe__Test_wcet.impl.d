test/test_wcet.ml: Alcotest Array Fcstack Int32 List Minic QCheck QCheck_alcotest Random Scade String Target Testlib Wcet
