test/test_scade.ml: Alcotest Fcstack List Minic Printf QCheck QCheck_alcotest Scade
