test/test_minic.ml: Alcotest Float Int32 List Minic QCheck QCheck_alcotest String Testlib
