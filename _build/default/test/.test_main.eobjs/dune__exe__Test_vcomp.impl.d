test/test_vcomp.ml: Alcotest Cotsc Hashtbl List Minic QCheck QCheck_alcotest Target Testlib Vcomp
