test/test_cotsc.ml: Alcotest Cotsc List Minic Printf QCheck QCheck_alcotest String Target Testlib Vcomp
