test/test_fcstack.ml: Alcotest Fcstack Lazy List Minic Printf Scade String Target
