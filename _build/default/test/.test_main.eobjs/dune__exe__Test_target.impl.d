test/test_target.ml: Alcotest Array Float Gen List Minic QCheck QCheck_alcotest Target
