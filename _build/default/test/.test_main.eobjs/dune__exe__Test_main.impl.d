test/test_main.ml: Alcotest Test_cotsc Test_fcstack Test_minic Test_scade Test_target Test_vcomp Test_wcet
