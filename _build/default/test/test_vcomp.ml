(* Tests for the verified-style compiler: selection, optimization
   passes (each under its translation validator), register allocation,
   and full-chain semantic preservation on random programs. *)

let checkb = Alcotest.check Alcotest.bool

let worlds (seed : int) = Minic.Interp.seeded_world ~seed ()

(* full-chain equivalence: interpreter vs simulator *)
let chain_equal ?(cycles = 3)
    (compile : Minic.Ast.program -> Target.Asm.program)
    (p : Minic.Ast.program) (seed : int) : bool =
  let asm = compile p in
  let lay = Target.Layout.build p asm in
  let ri = Minic.Interp.run_cycles p (worlds seed) ~cycles in
  let rs =
    (Target.Sim.run ~cycles ~source:p asm lay (worlds seed) []).Target.Sim.rr_result
  in
  Minic.Interp.result_equal ri rs

(* ---- selection ---- *)

let selection_preserves_prop =
  QCheck.Test.make ~count:100 ~name:"selection: RTL = source semantics"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let ri = Minic.Interp.run_cycle p (worlds seed) in
       let rr = Vcomp.Rtl_interp.run rtl (worlds seed) [] in
       Minic.Interp.result_equal ri rr)

(* ---- optimization passes under their validators ---- *)

let pass_preserves (name : string) (pass : Vcomp.Rtl.program -> Vcomp.Rtl.program) =
  QCheck.Test.make ~count:80 ~name:(name ^ ": validated on random programs")
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let before = Vcomp.Rtl.copy_program rtl in
       let after = pass rtl in
       (* the validator raises on any behaviour change *)
       Vcomp.Validate.check_pass ~pass:name ~before ~after;
       (* and the result still matches the source *)
       let ri = Minic.Interp.run_cycle p (worlds seed) in
       let rr = Vcomp.Rtl_interp.run after (worlds seed) [] in
       Minic.Interp.result_equal ri rr)

let constprop_prop = pass_preserves "constprop" Vcomp.Constprop.transform
let cse_prop = pass_preserves "cse" Vcomp.Cse.transform

let deadcode_prop =
  QCheck.Test.make ~count:80 ~name:"deadcode after cse: validated"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let rtl = Vcomp.Cse.transform rtl in
       let before = Vcomp.Rtl.copy_program rtl in
       let after = Vcomp.Deadcode.transform rtl in
       Vcomp.Validate.check_pass ~pass:"deadcode" ~before ~after;
       true)

(* constprop folds a fully constant computation to a constant *)
let test_constprop_folds () =
  let p =
    Minic.Parser.parse_program
      {| int m() { var int a; var int b; a = 6; b = 7; return a * b; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let rtl = Vcomp.Selection.trans_program p in
  let rtl = Vcomp.Constprop.transform rtl in
  let f = List.hd rtl.Vcomp.Rtl.p_funcs in
  let found_const_42 = ref false in
  List.iter
    (fun n ->
       match Vcomp.Rtl.get_instr f n with
       | Vcomp.Rtl.Iop (Vcomp.Rtl.Ointconst 42l, _, _, _) ->
         found_const_42 := true
       | _ -> ())
    (Vcomp.Rtl.reverse_postorder f);
  checkb "6*7 folded to 42" true !found_const_42

(* cse: the duplicate load disappears after cse+deadcode *)
let test_cse_removes_duplicate_load () =
  let p =
    Minic.Parser.parse_program
      {| global double g; double m() { return $g +. $g; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let count_loads rtl =
    let f = List.hd rtl.Vcomp.Rtl.p_funcs in
    List.length
      (List.filter
         (fun n ->
            match Vcomp.Rtl.get_instr f n with
            | Vcomp.Rtl.Iload _ -> true
            | _ -> false)
         (Vcomp.Rtl.reverse_postorder f))
  in
  let rtl = Vcomp.Selection.trans_program p in
  Alcotest.check Alcotest.int "two loads before" 2 (count_loads rtl);
  let rtl = Vcomp.Deadcode.transform (Vcomp.Cse.transform rtl) in
  Alcotest.check Alcotest.int "one load after" 1 (count_loads rtl)

(* ---- liveness: worklist vs naive fixpoint ---- *)

let liveness_prop =
  QCheck.Test.make ~count:60 ~name:"liveness: worklist = naive fixpoint"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       List.for_all
         (fun f ->
            let fast = Vcomp.Liveness.analyze f in
            let slow = Vcomp.Liveness.analyze_naive f in
            List.for_all
              (fun n ->
                 Vcomp.Liveness.RegSet.equal
                   (Vcomp.Liveness.live_after fast n)
                   (Vcomp.Liveness.live_after slow n))
              (Vcomp.Rtl.reverse_postorder f))
         rtl.Vcomp.Rtl.p_funcs)

(* ---- register allocation ---- *)

let regalloc_valid_prop =
  QCheck.Test.make ~count:80 ~name:"regalloc: validator accepts all allocations"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       List.for_all
         (fun f ->
            let res = Vcomp.Regalloc.allocate f in
            match Vcomp.Regalloc.verify f res with
            | Ok () -> true
            | Error _ -> false)
         rtl.Vcomp.Rtl.p_funcs)

(* mutation testing of the validator: merging an interfering pair must
   be rejected *)
let regalloc_mutation_prop =
  QCheck.Test.make ~count:60 ~name:"regalloc: corrupted allocation rejected"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let f = List.hd rtl.Vcomp.Rtl.p_funcs in
       let res = Vcomp.Regalloc.allocate f in
       (* find an interfering pair with different locations *)
       let victim = ref None in
       Hashtbl.iter
         (fun a neighbors ->
            if !victim = None then
              Vcomp.Regalloc.RegSet.iter
                (fun b ->
                   if !victim = None
                      && Vcomp.Rtl.reg_class f a = Vcomp.Rtl.reg_class f b
                      && not
                           (Vcomp.Regalloc.loc_equal
                              (Vcomp.Regalloc.location res a)
                              (Vcomp.Regalloc.location res b)) then
                     victim := Some (a, b))
                neighbors)
         res.Vcomp.Regalloc.ra_graph.Vcomp.Regalloc.g_adj;
       match !victim with
       | None -> true (* nothing to corrupt in a tiny function *)
       | Some (a, b) ->
         Hashtbl.replace res.Vcomp.Regalloc.ra_alloc a
           (Vcomp.Regalloc.location res b);
         (match Vcomp.Regalloc.verify f res with
          | Ok () -> false (* must be rejected *)
          | Error _ -> true))

(* ---- full chain ---- *)

let full_chain_prop =
  QCheck.Test.make ~count:120 ~name:"vcomp: machine = source on random programs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       chain_equal
         (Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation)
         p seed)

let full_chain_validated_prop =
  QCheck.Test.make ~count:30
    ~name:"vcomp: per-pass validators pass on random programs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       ignore (Vcomp.Driver.compile p); (* validators on: raises on failure *)
       true)

(* NaN behaviour through the whole chain *)
let test_nan_comparisons_compiled () =
  let p =
    Minic.Parser.parse_program
      {| global double g;
         double m() {
           var double n; var double r;
           n = 0x0p+0 /. 0x0p+0;
           if (n <=. 1.0) { r = 1.0; } else { r = 2.0; }
           if (n >=. 1.0) { r = r +. 10.0; } else { r = r +. 20.0; }
           if (n !=. n) { r = r +. 100.0; } else { r = r +. 200.0; }
           return r;
         } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  List.iter
    (fun (name, compile) ->
       checkb name true (chain_equal compile p 1))
    [ ("vcomp NaN", Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation);
      ("cotsc O0 NaN", Cotsc.Driver.compile ~level:Cotsc.Driver.Onone ~contract_fma:false);
      ("cotsc O2 NaN",
       Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:false) ]

(* ablation configurations stay correct *)
let ablation_chain_prop =
  QCheck.Test.make ~count:40 ~name:"vcomp ablations: still semantics-preserving"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun options ->
            chain_equal (Vcomp.Driver.compile ~options) p seed)
         [ Vcomp.Driver.{ no_validation with opt_constprop = false };
           Vcomp.Driver.{ no_validation with opt_cse = false };
           Vcomp.Driver.{ no_validation with opt_deadcode = false } ])

let suite =
  [ QCheck_alcotest.to_alcotest selection_preserves_prop;
    QCheck_alcotest.to_alcotest constprop_prop;
    QCheck_alcotest.to_alcotest cse_prop;
    QCheck_alcotest.to_alcotest deadcode_prop;
    ("constprop folds constants", `Quick, test_constprop_folds);
    ("cse removes duplicate loads", `Quick, test_cse_removes_duplicate_load);
    QCheck_alcotest.to_alcotest liveness_prop;
    QCheck_alcotest.to_alcotest regalloc_valid_prop;
    QCheck_alcotest.to_alcotest regalloc_mutation_prop;
    QCheck_alcotest.to_alcotest full_chain_prop;
    QCheck_alcotest.to_alcotest full_chain_validated_prop;
    ("NaN comparisons through the chain", `Quick, test_nan_comparisons_compiled);
    QCheck_alcotest.to_alcotest ablation_chain_prop ]
