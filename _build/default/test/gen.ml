(* Random well-typed mini-C program generator for the property tests.

   Generated programs are, by construction:
   - type-correct (checked again by the type checker in the tests);
   - terminating (loops are counted [for] loops with small constant
     bounds, or while loops with an explicit counter pattern);
   - memory-safe (array indices are masked to the power-of-two array
     size or taken from in-range loop counters);
   - free of reads of uninitialized locals (an initialized-set is
     threaded through generation).

   They exercise every statement and expression former, volatile
   acquisitions and outputs, annotations, nested control flow — the
   input space over which semantic preservation of all four compilers
   and soundness of the WCET analyzer are tested. *)

module A = Minic.Ast

type genv = {
  rng : Random.State.t;
  globals : (string * A.typ) list;
  arrays : A.array_def list;
  vol_ins : string list;
  vol_outs : (string * A.typ) list;
  mutable locals : (string * A.typ) list;
  mutable initialized : string list;
  mutable protected : string list; (* live loop counters: never assigned *)
  mutable fresh : int;
}

let pick (g : genv) (xs : 'a list) : 'a =
  List.nth xs (Random.State.int g.rng (List.length xs))

let chance (g : genv) (pct : int) : bool = Random.State.int g.rng 100 < pct

let small_int (g : genv) : int32 =
  Int32.of_int (Random.State.int g.rng 200 - 100)

let small_float (g : genv) : float =
  let mantissa = float_of_int (Random.State.int g.rng 4000 - 2000) in
  mantissa /. 16.0

let fresh_local (g : genv) (t : A.typ) : string =
  g.fresh <- g.fresh + 1;
  let name = Printf.sprintf "v%d_%s" g.fresh (A.string_of_typ t) in
  g.locals <- (name, t) :: g.locals;
  name

let initialized_locals (g : genv) (t : A.typ) : string list =
  List.filter_map
    (fun (x, t') ->
       if t = t' && List.mem x g.initialized then Some x else None)
    g.locals

(* assignment targets exclude protected loop counters *)
let assignable_locals (g : genv) (t : A.typ) : string list =
  List.filter
    (fun x -> not (List.mem x g.protected))
    (initialized_locals g t)

(* Typed expression generation. *)
let rec gen_expr (g : genv) (t : A.typ) (depth : int) : A.expr =
  let leaf () : A.expr =
    let candidates =
      (match t with
       | A.Tint -> [ `Const ]
       | A.Tfloat -> [ `Const ]
       | A.Tbool -> [ `Const ])
      @ (if initialized_locals g t <> [] then [ `Var ] else [])
      @ (if List.exists (fun (_, t') -> t = t') g.globals then [ `Glob ] else [])
      @
      (match t with
       | A.Tfloat when g.vol_ins <> [] && chance g 30 -> [ `Vol ]
       | _ -> [])
    in
    match pick g candidates with
    | `Const ->
      (match t with
       | A.Tint -> A.Econst_int (small_int g)
       | A.Tfloat -> A.Econst_float (small_float g)
       | A.Tbool -> A.Econst_bool (Random.State.bool g.rng))
    | `Var -> A.Evar (pick g (initialized_locals g t))
    | `Glob ->
      A.Eglobal
        (fst (pick g (List.filter (fun (_, t') -> t = t') g.globals)))
    | `Vol -> A.Evolatile (pick g g.vol_ins)
  in
  if depth <= 0 || chance g 30 then leaf ()
  else
    match t with
    | A.Tint ->
      (match Random.State.int g.rng 8 with
       | 0 ->
         A.Ebinop
           ( pick g [ A.Oadd; A.Osub; A.Omul; A.Odiv; A.Omod ],
             gen_expr g A.Tint (depth - 1), gen_expr g A.Tint (depth - 1) )
       | 1 ->
         A.Ebinop
           ( pick g [ A.Oand; A.Oor; A.Oxor; A.Oshl; A.Oshr ],
             gen_expr g A.Tint (depth - 1), gen_expr g A.Tint (depth - 1) )
       | 2 -> A.Eunop (A.Oneg, gen_expr g A.Tint (depth - 1))
       | 3 -> A.Eunop (A.Oint_of_float, gen_expr g A.Tfloat (depth - 1))
       | 4 when g.arrays <> [] ->
         let arr = pick g g.arrays in
         if arr.A.arr_elt = A.Tint then
           A.Eindex (arr.A.arr_name, gen_index g arr (depth - 1))
         else A.Ebinop (A.Oadd, gen_expr g A.Tint (depth - 1), leaf ())
       | 5 ->
         A.Econd
           ( gen_expr g A.Tbool (depth - 1),
             gen_expr g A.Tint (depth - 1), gen_expr g A.Tint (depth - 1) )
       | _ ->
         A.Ebinop
           (A.Oadd, gen_expr g A.Tint (depth - 1), gen_expr g A.Tint (depth - 1)))
    | A.Tfloat ->
      (match Random.State.int g.rng 8 with
       | 0 | 1 ->
         A.Ebinop
           ( pick g [ A.Ofadd; A.Ofsub; A.Ofmul; A.Ofdiv ],
             gen_expr g A.Tfloat (depth - 1), gen_expr g A.Tfloat (depth - 1) )
       | 2 ->
         A.Eunop
           (pick g [ A.Ofneg; A.Ofabs ], gen_expr g A.Tfloat (depth - 1))
       | 3 -> A.Eunop (A.Ofloat_of_int, gen_expr g A.Tint (depth - 1))
       | 4 when g.arrays <> [] ->
         let farrays =
           List.filter (fun a -> a.A.arr_elt = A.Tfloat) g.arrays
         in
         if farrays <> [] then begin
           let arr = pick g farrays in
           A.Eindex (arr.A.arr_name, gen_index g arr (depth - 1))
         end
         else A.Eunop (A.Ofneg, gen_expr g A.Tfloat (depth - 1))
       | 5 ->
         A.Econd
           ( gen_expr g A.Tbool (depth - 1),
             gen_expr g A.Tfloat (depth - 1), gen_expr g A.Tfloat (depth - 1) )
       | _ ->
         A.Ebinop
           ( A.Ofadd, gen_expr g A.Tfloat (depth - 1),
             gen_expr g A.Tfloat (depth - 1) ))
    | A.Tbool ->
      (match Random.State.int g.rng 6 with
       | 0 ->
         A.Ebinop
           ( A.Ocmp (pick g [ A.Ceq; A.Cne; A.Clt; A.Cle; A.Cgt; A.Cge ]),
             gen_expr g A.Tint (depth - 1), gen_expr g A.Tint (depth - 1) )
       | 1 | 2 ->
         A.Ebinop
           ( A.Ofcmp (pick g [ A.Ceq; A.Cne; A.Clt; A.Cle; A.Cgt; A.Cge ]),
             gen_expr g A.Tfloat (depth - 1), gen_expr g A.Tfloat (depth - 1) )
       | 3 ->
         A.Ebinop
           ( pick g [ A.Oband; A.Obor ],
             gen_expr g A.Tbool (depth - 1), gen_expr g A.Tbool (depth - 1) )
       | 4 -> A.Eunop (A.Onot, gen_expr g A.Tbool (depth - 1))
       | _ ->
         A.Econd
           ( gen_expr g A.Tbool (depth - 1),
             gen_expr g A.Tbool (depth - 1), gen_expr g A.Tbool (depth - 1) ))

(* A provably in-range index for [arr]: masked, constant, or an
   in-range initialized counter variable is too hard to prove here, so
   mask or constant only (array sizes are powers of two). *)
and gen_index (g : genv) (arr : A.array_def) (depth : int) : A.expr =
  let n = List.length arr.A.arr_init in
  if chance g 40 then A.Econst_int (Int32.of_int (Random.State.int g.rng n))
  else
    A.Ebinop
      (A.Oand, gen_expr g A.Tint depth, A.Econst_int (Int32.of_int (n - 1)))

let rec gen_stmt (g : genv) (depth : int) : A.stmt =
  match Random.State.int g.rng 12 with
  | 0 | 1 | 2 ->
    (* assignment to a (possibly fresh) local *)
    let t = pick g [ A.Tint; A.Tfloat; A.Tfloat; A.Tbool ] in
    let x =
      if chance g 50 && assignable_locals g t <> [] then
        pick g (assignable_locals g t)
      else fresh_local g t
    in
    let e = gen_expr g t 3 in
    g.initialized <- x :: g.initialized;
    A.Sassign (x, e)
  | 3 ->
    let x, t = pick g g.globals in
    A.Sglobassign (x, gen_expr g t 3)
  | 4 when g.arrays <> [] ->
    let arr = pick g g.arrays in
    A.Sstore
      (arr.A.arr_name, gen_index g arr 2, gen_expr g arr.A.arr_elt 2)
  | 5 when g.vol_outs <> [] ->
    let x, t = pick g g.vol_outs in
    A.Svolstore (x, gen_expr g t 2)
  | 6 when depth > 0 ->
    A.Sif (gen_expr g A.Tbool 2, gen_block g (depth - 1), gen_block g (depth - 1))
  | 7 when depth > 0 ->
    (* counted for loop, constant bounds; the counter is readable but
       protected against assignment in the body (MISRA 13.6) *)
    let i = fresh_local g A.Tint in
    g.initialized <- i :: g.initialized;
    g.protected <- i :: g.protected;
    let lo = Random.State.int g.rng 3 in
    let hi = lo + Random.State.int g.rng 6 in
    let body = gen_block g (depth - 1) in
    g.protected <- List.filter (fun x -> x <> i) g.protected;
    A.Sfor
      (i, A.Econst_int (Int32.of_int lo), A.Econst_int (Int32.of_int hi), body)
  | 8 when depth > 0 ->
    (* while loop with an explicit counter: exercises the slot/register
       counter detection of the bound analysis *)
    let i = fresh_local g A.Tint in
    g.initialized <- i :: g.initialized;
    g.protected <- i :: g.protected;
    let bound = 1 + Random.State.int g.rng 5 in
    let body = gen_block g 0 in
    g.protected <- List.filter (fun x -> x <> i) g.protected;
    A.Sseq
      ( A.Sassign (i, A.Econst_int 0l),
        A.Swhile
          ( A.Ebinop (A.Ocmp A.Clt, A.Evar i, A.Econst_int (Int32.of_int bound)),
            A.Sseq
              ( body,
                A.Sassign (i, A.Ebinop (A.Oadd, A.Evar i, A.Econst_int 1l)) ) ) )
  | 9 ->
    (* annotation over an int or float value *)
    let args =
      if chance g 50 && initialized_locals g A.Tint <> [] then
        [ A.Evar (pick g (initialized_locals g A.Tint)) ]
      else [ A.Econst_int (small_int g) ]
    in
    A.Sannot ("checkpoint %1", args)
  | _ ->
    let t = pick g [ A.Tfloat; A.Tint ] in
    let x = fresh_local g t in
    let e = gen_expr g t 3 in
    (* mark initialized only after generating the right-hand side *)
    g.initialized <- x :: g.initialized;
    A.Sassign (x, e)

and gen_block (g : genv) (depth : int) : A.stmt =
  let n = 1 + Random.State.int g.rng 4 in
  let saved_init = g.initialized in
  let stmts = ref [] in
  for _ = 1 to n do
    stmts := gen_stmt g depth :: !stmts
  done;
  (* locals initialized inside conditional blocks may not be
     initialized on other paths: restore the initialized set, keeping
     only what was known before (conservative) *)
  g.initialized <- saved_init;
  List.fold_left (fun acc s -> A.Sseq (acc, s)) A.Sskip (List.rev !stmts)

(* Generate a whole program. *)
let gen_program ?(size = 12) (seed : int) : A.program =
  let rng = Random.State.make [| seed; 0xBEEF |] in
  let g =
    { rng;
      globals =
        [ ("g_f1", A.Tfloat); ("g_f2", A.Tfloat); ("g_i1", A.Tint);
          ("g_b1", A.Tbool) ];
      arrays =
        [ { A.arr_name = "t_f"; arr_elt = A.Tfloat;
            arr_init = List.init 8 (fun i -> float_of_int i *. 0.5) };
          { A.arr_name = "t_i"; arr_elt = A.Tint;
            arr_init = List.init 4 (fun i -> float_of_int (i * 3)) } ];
      vol_ins = [ "sens_a"; "sens_b" ];
      vol_outs = [ ("act_a", A.Tfloat); ("act_b", A.Tbool) ];
      locals = [];
      initialized = [];
      protected = [];
      fresh = 0 }
  in
  let stmts = ref [] in
  for _ = 1 to size do
    stmts := gen_stmt g 2 :: !stmts
  done;
  let stmts = List.rev !stmts in
  let body = List.fold_left (fun acc s -> A.Sseq (acc, s)) A.Sskip stmts in
  let ret_t = pick g [ None; Some A.Tfloat; Some A.Tint ] in
  let body =
    match ret_t with
    | None -> body
    | Some t -> A.Sseq (body, A.Sreturn (Some (gen_expr g t 2)))
  in
  { A.prog_globals = g.globals;
    prog_arrays = g.arrays;
    prog_volatiles =
      List.map (fun v -> (v, A.Tfloat, A.Vol_in)) g.vol_ins
      @ List.map (fun (v, t) -> (v, t, A.Vol_out)) g.vol_outs;
    prog_funcs =
      [ { A.fn_name = "prop_main";
          fn_params = [];
          fn_locals = List.rev g.locals;
          fn_ret = ret_t;
          fn_body = body } ];
    prog_main = "prop_main" }
