test/gen.ml: Int32 List Minic Printf Random
