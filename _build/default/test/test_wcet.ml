(* Tests for the WCET analyzer: interval domain, dominators, loops, LP
   solver, loop bounds, cache analysis, and the headline soundness
   property (bound >= every simulated execution). *)

module Asm = Target.Asm

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- interval domain ---- *)

let itv_gen : Wcet.Interval.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun a b -> Wcet.Interval.make (min a b) (max a b))
      (int_range (-1000) 1000) (int_range (-1000) 1000))

let itv_arb = QCheck.make itv_gen ~print:Wcet.Interval.to_string

let member_gen (i : Wcet.Interval.t) (st : Random.State.t) : int =
  i.Wcet.Interval.lo
  + (if i.Wcet.Interval.hi = i.Wcet.Interval.lo then 0
     else Random.State.int st (i.Wcet.Interval.hi - i.Wcet.Interval.lo + 1))

let interval_sound_prop (name : string)
    (abs_op : Wcet.Interval.t -> Wcet.Interval.t -> Wcet.Interval.t)
    (conc_op : int -> int -> int) =
  QCheck.Test.make ~count:300 ~name:("interval " ^ name ^ " sound")
    (QCheck.pair itv_arb itv_arb)
    (fun (a, b) ->
       let st = Random.State.make [| 7 |] in
       let result = abs_op a b in
       List.for_all
         (fun _ ->
            let x = member_gen a st and y = member_gen b st in
            Wcet.Interval.contains result (conc_op x y))
         (List.init 20 (fun i -> i)))

let itv_add_prop = interval_sound_prop "add" Wcet.Interval.add ( + )
let itv_sub_prop = interval_sound_prop "sub" Wcet.Interval.sub ( - )
let itv_mul_prop = interval_sound_prop "mul" Wcet.Interval.mul ( * )

let itv_refine_prop =
  QCheck.Test.make ~count:300 ~name:"interval refine_cmp sound"
    (QCheck.pair itv_arb itv_arb)
    (fun (a, b) ->
       let st = Random.State.make [| 13 |] in
       List.for_all
         (fun cmp ->
            let refined = Wcet.Interval.refine_cmp cmp a b in
            List.for_all
              (fun _ ->
                 let x = member_gen a st and y = member_gen b st in
                 let holds =
                   Minic.Value.eval_comparison cmp (compare x y)
                 in
                 (not holds)
                 ||
                 (match refined with
                  | Some r -> Wcet.Interval.contains r x
                  | None -> false))
              (List.init 15 (fun i -> i)))
         [ Minic.Ast.Ceq; Minic.Ast.Cne; Minic.Ast.Clt; Minic.Ast.Cle;
           Minic.Ast.Cgt; Minic.Ast.Cge ])

(* ---- dominators ---- *)

(* random small CFG as an assembly function *)
let random_cfg_code (seed : int) : Asm.instr list =
  let st = Random.State.make [| seed; 0xD0 |] in
  let nblocks = 3 + Random.State.int st 6 in
  let code = ref [] in
  for b = 0 to nblocks - 1 do
    code := Asm.Plabel b :: !code;
    code := Asm.Paddi (3, 0, Int32.of_int b) :: !code;
    (* branch to a random later-or-equal block to stay reducible-ish;
       irreducibility is fine for the dominator comparison *)
    let t1 = Random.State.int st nblocks in
    code := Asm.Pcmpwi (3, 0l) :: !code;
    code := Asm.Pbc (Asm.BT Asm.CRlt, t1) :: !code
  done;
  code := Asm.Pblr :: !code;
  List.rev !code

let dominators_prop =
  QCheck.Test.make ~count:100 ~name:"dominators: CHK = naive reachability"
    QCheck.small_int
    (fun seed ->
       let cfg = Wcet.Cfg.build "d" 0x1000 (random_cfg_code (seed land 0xFFFF)) in
       let dom = Wcet.Dom.compute cfg in
       let reachable = Wcet.Cfg.reverse_postorder cfg in
       List.for_all
         (fun a ->
            List.for_all
              (fun b ->
                 Wcet.Dom.dominates dom a b = Wcet.Dom.dominates_naive cfg a b)
              reachable)
         reachable)

(* ---- loops ---- *)

let test_loop_detection () =
  (* single counted loop *)
  let code =
    [ Asm.Paddi (4, 0, 0l); Asm.Plabel 1; Asm.Paddi (4, 4, 1l);
      Asm.Pcmpwi (4, 10l); Asm.Pbc (Asm.BT Asm.CRlt, 1); Asm.Pblr ]
  in
  let cfg = Wcet.Cfg.build "l" 0x1000 code in
  let dom = Wcet.Dom.compute cfg in
  let loops = Wcet.Loops.compute cfg dom in
  checki "one loop" 1 (List.length loops.Wcet.Loops.loops)

let test_irreducible_rejected () =
  (* two mutual entry points: jump into the middle of a loop *)
  let code =
    [ Asm.Pcmpwi (3, 0l);
      Asm.Pbc (Asm.BT Asm.CReq, 2); (* entry jumps into loop body *)
      Asm.Plabel 1; Asm.Paddi (4, 4, 1l);
      Asm.Plabel 2; Asm.Paddi (5, 5, 1l); Asm.Pcmpwi (5, 3l);
      Asm.Pbc (Asm.BT Asm.CRlt, 1); Asm.Pblr ]
  in
  let cfg = Wcet.Cfg.build "irr" 0x1000 code in
  let dom = Wcet.Dom.compute cfg in
  try
    ignore (Wcet.Loops.compute cfg dom);
    Alcotest.fail "irreducible flow accepted"
  with Wcet.Loops.Irreducible _ -> ()

(* ---- LP solver ---- *)

let test_simplex_basic () =
  (* max 3x + 2y s.t. x + y <= 4, x <= 2 -> x=2, y=2, obj=10 *)
  let q = Wcet.Lp.Q.of_int in
  let pb =
    { Wcet.Lp.pb_nvars = 2;
      pb_objective = [| q 3; q 2 |];
      pb_constraints =
        [ { Wcet.Lp.cs_coeffs = [ (0, Wcet.Lp.Q.one); (1, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Le; cs_rhs = q 4 };
          { Wcet.Lp.cs_coeffs = [ (0, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Le; cs_rhs = q 2 } ] }
  in
  let sol = Wcet.Lp.solve pb in
  checki "objective 10" 10 (Wcet.Lp.Q.floor sol.Wcet.Lp.sol_objective)

let test_simplex_equality_and_ge () =
  (* max x s.t. x + y = 5, x >= 1, y >= 2 -> x = 3 *)
  let q = Wcet.Lp.Q.of_int in
  let pb =
    { Wcet.Lp.pb_nvars = 2;
      pb_objective = [| q 1; q 0 |];
      pb_constraints =
        [ { Wcet.Lp.cs_coeffs = [ (0, Wcet.Lp.Q.one); (1, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Eq; cs_rhs = q 5 };
          { Wcet.Lp.cs_coeffs = [ (1, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Ge; cs_rhs = q 2 } ] }
  in
  let sol = Wcet.Lp.solve pb in
  checki "objective 3" 3 (Wcet.Lp.Q.floor sol.Wcet.Lp.sol_objective)

let test_simplex_infeasible () =
  let q = Wcet.Lp.Q.of_int in
  let pb =
    { Wcet.Lp.pb_nvars = 1;
      pb_objective = [| q 1 |];
      pb_constraints =
        [ { Wcet.Lp.cs_coeffs = [ (0, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Le; cs_rhs = q 1 };
          { Wcet.Lp.cs_coeffs = [ (0, Wcet.Lp.Q.one) ];
            cs_rel = Wcet.Lp.Ge; cs_rhs = q 3 } ] }
  in
  match Wcet.Lp.solve pb with
  | _ -> Alcotest.fail "infeasible accepted"
  | exception Wcet.Lp.Infeasible -> ()

(* simplex vs brute force on random small integer LPs: every integral
   feasible point's objective is <= the LP optimum *)
let simplex_bound_prop =
  QCheck.Test.make ~count:150 ~name:"simplex upper-bounds brute force"
    QCheck.(triple (int_bound 1000) (int_bound 5) (int_bound 5))
    (fun (seed, _, _) ->
       let st = Random.State.make [| seed; 0x51 |] in
       let nvars = 2 + Random.State.int st 2 in
       let ncons = 1 + Random.State.int st 3 in
       let q = Wcet.Lp.Q.of_int in
       let obj = Array.init nvars (fun _ -> q (Random.State.int st 10)) in
       let cons =
         List.init ncons (fun _ ->
             { Wcet.Lp.cs_coeffs =
                 List.init nvars (fun j -> (j, q (1 + Random.State.int st 4)));
               cs_rel = Wcet.Lp.Le;
               cs_rhs = q (2 + Random.State.int st 20) })
       in
       let pb =
         { Wcet.Lp.pb_nvars = nvars; pb_objective = obj; pb_constraints = cons }
       in
       match Wcet.Lp.solve pb with
       | exception Wcet.Lp.Unbounded -> true (* positive coeffs: shouldn't *)
       | sol ->
         (* brute force over the integer box [0,8]^n *)
         let best = ref 0 in
         let rec enum (point : int list) (j : int) : unit =
           if j = nvars then begin
             let feasible =
               List.for_all
                 (fun c ->
                    let lhs =
                      List.fold_left
                        (fun acc (k, coeff) ->
                           acc + (Wcet.Lp.Q.floor coeff * List.nth point k))
                        0 c.Wcet.Lp.cs_coeffs
                    in
                    lhs <= Wcet.Lp.Q.floor c.Wcet.Lp.cs_rhs)
                 cons
             in
             if feasible then begin
               let v =
                 List.fold_left
                   (fun acc (k, c) -> acc + (Wcet.Lp.Q.floor c * List.nth point k))
                   0
                   (List.mapi (fun k c -> (k, c)) (Array.to_list obj))
               in
               if v > !best then best := v
             end
           end
           else
             for v = 0 to 8 do
               enum (point @ [ v ]) (j + 1)
             done
         in
         enum [] 0;
         Wcet.Lp.Q.compare sol.Wcet.Lp.sol_objective (q !best) >= 0)

(* ---- loop bounds ---- *)

let wcet_of (src : string) (comp : Fcstack.Chain.compiler) : Wcet.Report.t =
  let p = Minic.Parser.parse_program src in
  Minic.Typecheck.check_program_exn p;
  Fcstack.Chain.wcet (Fcstack.Chain.build ~exact:true comp p)

let test_bound_for_loop () =
  let r =
    wcet_of
      {| global double g; void m() { var int i;
           for (i = 0; i < 12) { $g = $g +. 1.0; } } main m; |}
      Fcstack.Chain.Cvcomp
  in
  match r.Wcet.Report.rp_loops with
  | [ l ] -> checki "bound 12" 12 l.Wcet.Report.li_bound
  | _ -> Alcotest.fail "one loop expected"

let test_bound_slot_counter_o0 () =
  let r =
    wcet_of
      {| global double g; void m() { var int i;
           for (i = 2; i < 9) { $g = $g +. 1.0; } } main m; |}
      Fcstack.Chain.Cdefault_o0
  in
  match r.Wcet.Report.rp_loops with
  | [ l ] -> checki "bound 7 via slot counter" 7 l.Wcet.Report.li_bound
  | _ -> Alcotest.fail "one loop expected"

let test_bound_from_annotation () =
  let r =
    wcet_of
      {| global int cfg; global double g;
         void m() { var int i;
           $cfg = 6;
           for (i = 0; i < $cfg) {
             __builtin_annotation("loopbound 6");
             $g = $g +. 1.0; } } main m; |}
      Fcstack.Chain.Cvcomp
  in
  match r.Wcet.Report.rp_loops with
  | [ l ] ->
    checki "bound 6" 6 l.Wcet.Report.li_bound;
    checkb "from annotation" true l.Wcet.Report.li_from_annotation
  | _ -> Alcotest.fail "one loop expected"

let test_unbounded_loop_fails () =
  let p =
    Minic.Parser.parse_program
      {| global int cfg; global double g;
         void m() { var int i;
           $cfg = 6;
           for (i = 0; i < $cfg) { $g = $g +. 1.0; } } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp p in
  match Fcstack.Chain.wcet b with
  | _ -> Alcotest.fail "unbounded loop must fail the analysis"
  | exception Wcet.Driver.Error _ -> ()

let test_range_annotation_bounds_loop () =
  let r =
    wcet_of
      {| volatile in double v; global double g;
         void m() { var int n; var int i;
           n = (int)volatile(v);
           if (n < 0) { n = 0; }
           if (n > 9) { n = 9; }
           __builtin_annotation("range 0 9", n);
           for (i = 0; i < n) { $g = $g +. 1.0; } } main m; |}
      Fcstack.Chain.Cdefault_o0
  in
  match r.Wcet.Report.rp_loops with
  | [ l ] -> checkb "bound <= 9" true (l.Wcet.Report.li_bound <= 9)
  | _ -> Alcotest.fail "one loop expected"

(* ---- headline soundness: WCET >= simulated cycles ---- *)

let wcet_soundness_prop =
  QCheck.Test.make ~count:80
    ~name:"WCET bound >= simulated cycles (all compilers, random programs)"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp p in
            match Fcstack.Chain.wcet b with
            | report ->
              List.for_all
                (fun s ->
                   let sim =
                     Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed:s ())
                   in
                   report.Wcet.Report.rp_wcet
                   >= sim.Target.Sim.rr_stats.Target.Sim.cycles)
                [ 1; 2; 3; 4; 5 ]
            | exception Wcet.Driver.Error _ ->
              (* the analyzer may refuse (e.g. imprecision); refusing is
                 sound, returning a low bound would not be *)
              true)
         Fcstack.Chain.all_compilers)

let wcet_soundness_nodes_prop =
  QCheck.Test.make ~count:25
    ~name:"WCET bound >= simulated cycles (workload nodes)"
    QCheck.small_int
    (fun seed ->
       let node =
         Scade.Workload.generate_node ~profile:Scade.Workload.medium_node
           ~seed:(seed land 0xFFFF) "snd"
       in
       let src = Scade.Acg.generate node in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build comp src in
            let report = Fcstack.Chain.wcet b in
            List.for_all
              (fun s ->
                 let sim =
                   Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed:s ())
                 in
                 report.Wcet.Report.rp_wcet
                 >= sim.Target.Sim.rr_stats.Target.Sim.cycles)
              [ 1; 2; 3 ])
         Fcstack.Chain.all_compilers)

let suite =
  [ QCheck_alcotest.to_alcotest itv_add_prop;
    QCheck_alcotest.to_alcotest itv_sub_prop;
    QCheck_alcotest.to_alcotest itv_mul_prop;
    QCheck_alcotest.to_alcotest itv_refine_prop;
    QCheck_alcotest.to_alcotest dominators_prop;
    ("loop detection", `Quick, test_loop_detection);
    ("irreducible flow rejected", `Quick, test_irreducible_rejected);
    ("simplex: basics", `Quick, test_simplex_basic);
    ("simplex: equalities and >=", `Quick, test_simplex_equality_and_ge);
    ("simplex: infeasible", `Quick, test_simplex_infeasible);
    QCheck_alcotest.to_alcotest simplex_bound_prop;
    ("loop bound: register counter", `Quick, test_bound_for_loop);
    ("loop bound: slot counter (O0)", `Quick, test_bound_slot_counter_o0);
    ("loop bound: annotation", `Quick, test_bound_from_annotation);
    ("unbounded loop refused", `Quick, test_unbounded_loop_fails);
    ("range annotation bounds a loop", `Quick, test_range_annotation_bounds_loop);
    QCheck_alcotest.to_alcotest wcet_soundness_prop;
    QCheck_alcotest.to_alcotest wcet_soundness_nodes_prop ]

(* ---- must-cache ageing analysis ---- *)

let test_mustcache_hits () =
  (* store a slot, then load it back: the load is a guaranteed hit even
     without any capacity argument *)
  let code =
    [ Asm.Pallocframe 32;
      Asm.Paddi (3, 0, 5l);
      Asm.Pstw (3, Asm.Aind (Asm.sp, 8l));
      Asm.Plwz (4, Asm.Aind (Asm.sp, 8l));
      Asm.Pfreeframe 32; Asm.Pblr ]
  in
  let src =
    { Minic.Ast.prog_globals = []; prog_arrays = []; prog_volatiles = [];
      prog_funcs =
        [ { Minic.Ast.fn_name = "f"; fn_params = []; fn_locals = [];
            fn_ret = None; fn_body = Minic.Ast.Sskip } ];
      prog_main = "f" }
  in
  let prog = { Asm.pr_funcs = [ { Asm.fn_name = "f"; fn_code = code } ]; pr_main = "f" } in
  let lay = Target.Layout.build src prog in
  let cfg = Wcet.Cfg.build "f" 0x100000 code in
  let va = Wcet.Valueanalysis.analyze cfg in
  let mc = Wcet.Mustcache.analyze cfg va lay in
  (match Wcet.Mustcache.block_hits mc 0 with
   | [ first; second ] ->
     checkb "first access cannot be proven a hit" false first;
     checkb "reload is a must-hit" true second
   | l -> Alcotest.failf "expected 2 accesses, got %d" (List.length l))

(* must-hit implies concrete hit: replay each block's accesses against
   the concrete LRU cache along simulated executions — here checked at
   whole-WCET level: refinement can only be sound if the WCET bound
   still dominates the simulator, which the soundness properties above
   already assert. This additional check exercises join points: a
   diamond where only one arm touches the line. *)
let test_mustcache_join () =
  let code =
    [ Asm.Pallocframe 32;
      Asm.Pcmpwi (3, 0l);
      Asm.Pbc (Asm.BT Asm.CReq, 1);
      Asm.Pstw (3, Asm.Aind (Asm.sp, 8l)); (* only this arm touches slot *)
      Asm.Plabel 1;
      Asm.Plwz (4, Asm.Aind (Asm.sp, 16l)); (* different slot: not a must hit *)
      Asm.Plwz (5, Asm.Aind (Asm.sp, 8l)); (* join: may be untouched: no hit *)
      Asm.Pfreeframe 32; Asm.Pblr ]
  in
  let src =
    { Minic.Ast.prog_globals = []; prog_arrays = []; prog_volatiles = [];
      prog_funcs =
        [ { Minic.Ast.fn_name = "f"; fn_params = []; fn_locals = [];
            fn_ret = None; fn_body = Minic.Ast.Sskip } ];
      prog_main = "f" }
  in
  ignore src;
  let lay =
    Target.Layout.build src
      { Asm.pr_funcs = [ { Asm.fn_name = "f"; fn_code = code } ]; pr_main = "f" }
  in
  let cfg = Wcet.Cfg.build "f" 0x100000 code in
  let va = Wcet.Valueanalysis.analyze cfg in
  let mc = Wcet.Mustcache.analyze cfg va lay in
  (* find the join block: it contains the two loads *)
  let join_block = ref (-1) in
  for b = 0 to Wcet.Cfg.num_blocks cfg - 1 do
    let blk = Wcet.Cfg.block cfg b in
    let loads =
      Array.to_list blk.Wcet.Cfg.b_instrs
      |> List.filter (fun i -> match i with Asm.Plwz _ -> true | _ -> false)
    in
    if List.length loads = 2 then join_block := b
  done;
  match Wcet.Mustcache.block_hits mc !join_block with
  | [ h1; h2 ] ->
    checkb "untouched slot is not a hit" false h1;
    (* slot 8 was only written on one path: the must-join forgets it...
       unless both slots share a line! slots 8 and 16 are in the same
       32-byte line, so the load at 16 establishes residency of the
       line for the load at 8. The precise expectation: h2 = true
       because the line was touched by h1's access on every path. *)
    checkb "same-line access establishes a must hit" true h2
  | l -> Alcotest.failf "expected 2 accesses in join, got %d" (List.length l)

let () = ignore test_mustcache_join

let suite =
  suite
  @ [ ("must-cache: reload is a hit", `Quick, test_mustcache_hits);
      ("must-cache: join and same-line residency", `Quick, test_mustcache_join) ]

(* ---- annotation file (section 3.4 artifact) ---- *)

let test_annotfile_roundtrip () =
  let node =
    Scade.Workload.generate_node ~profile:Scade.Workload.medium_node ~seed:5
      "af"
  in
  let src = Scade.Acg.generate node in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let entries = Wcet.Annotfile.extract b.Fcstack.Chain.b_asm in
  let text = Wcet.Annotfile.render entries in
  let parsed = Wcet.Annotfile.parse text in
  checkb "round trip preserves all entries" true
    (List.length entries = List.length parsed
     && List.for_all2 Wcet.Annotfile.entry_equal entries parsed)

let test_annotfile_content () =
  let p =
    Minic.Parser.parse_program
      {| void m() { var int n; n = 3; __builtin_annotation("0 <= %1 <= 5", n); } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp p in
  match Wcet.Annotfile.extract b.Fcstack.Chain.b_asm with
  | [ e ] ->
    Alcotest.check Alcotest.string "function" "m" e.Wcet.Annotfile.an_function;
    checkb "substituted location present" true
      (String.length e.Wcet.Annotfile.an_text > 0
       && not (String.equal e.Wcet.Annotfile.an_text "0 <= %1 <= 5"))
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let suite =
  suite
  @ [ ("annotation file round trip", `Quick, test_annotfile_roundtrip);
      ("annotation file content", `Quick, test_annotfile_content) ]

(* ---- exact rationals ---- *)

let test_rationals () =
  let module Q = Wcet.Lp.Q in
  checkb "1/3 + 1/6 = 1/2" true (Q.equal (Q.add (Q.make 1 3) (Q.make 1 6)) (Q.make 1 2));
  checkb "normalization" true (Q.equal (Q.make 2 4) (Q.make 1 2));
  checkb "negative denominator" true (Q.equal (Q.make 1 (-2)) (Q.make (-1) 2));
  checki "floor 7/2" 3 (Q.floor (Q.make 7 2));
  checki "floor -7/2" (-4) (Q.floor (Q.make (-7) 2));
  checki "ceil 7/2" 4 (Q.ceil (Q.make 7 2));
  checki "ceil -7/2" (-3) (Q.ceil (Q.make (-7) 2));
  checkb "is_integer 4/2" true (Q.is_integer (Q.make 4 2));
  checkb "not integer 1/3" false (Q.is_integer (Q.make 1 3));
  checkb "mul" true (Q.equal (Q.mul (Q.make 2 3) (Q.make 3 4)) (Q.make 1 2));
  checkb "div" true (Q.equal (Q.div (Q.make 1 2) (Q.make 1 4)) (Q.of_int 2));
  checki "compare" (-1) (Q.compare (Q.make 1 3) (Q.make 1 2))

let suite = suite @ [ ("exact rationals", `Quick, test_rationals) ]
