(* Tests for the target machine: cache model, timing model, simulator. *)

module Asm = Target.Asm
module Cache = Target.Cache
module Timing = Target.Timing

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- cache ---- *)

let test_cache_basics () =
  let c = Cache.create Cache.tiny in
  (* tiny: 4 sets, 2-way, 16-byte lines *)
  checki "first access misses" 1 (Cache.access c 0 4);
  checki "second access hits" 0 (Cache.access c 0 4);
  checki "same line, other offset hits" 0 (Cache.access c 12 4);
  checki "straddling access touches two lines" 2 (Cache.access c 28 8)

let test_cache_lru_eviction () =
  let c = Cache.create Cache.tiny in
  (* set 0 holds lines with line_index mod 4 = 0: bytes 0, 64, 128... *)
  ignore (Cache.access c 0 4);    (* line 0 *)
  ignore (Cache.access c 64 4);   (* line 4, same set: set full *)
  ignore (Cache.access c 128 4);  (* line 8: evicts line 0 (LRU) *)
  checkb "line 0 evicted" false (Cache.resident c 0);
  checkb "line 4 resident" true (Cache.resident c 4);
  checkb "line 8 resident" true (Cache.resident c 8);
  (* touch line 4 then bring line 0 back: line 8 is now LRU *)
  ignore (Cache.access c 64 4);
  ignore (Cache.access c 0 4);
  checkb "line 8 evicted after LRU update" false (Cache.resident c 8)

let test_cache_counts () =
  let c = Cache.create Cache.tiny in
  ignore (Cache.access c 0 4);
  ignore (Cache.access c 0 4);
  ignore (Cache.access c 16 4);
  checki "hits" 1 c.Cache.hits;
  checki "misses" 2 c.Cache.misses

(* lru model: an access sequence that fits in one set never misses twice *)
let cache_capacity_prop =
  QCheck.Test.make ~count:200 ~name:"cache: within-capacity lines miss once"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 1))
    (fun picks ->
       (* two distinct lines in the same set of a 2-way cache: no
          evictions are possible, so total misses <= 2 *)
       let c = Cache.create Cache.tiny in
       List.iter (fun p -> ignore (Cache.access c (p * 64) 4)) picks;
       c.Cache.misses <= 2)

(* ---- timing ---- *)

let test_dual_issue_pairing () =
  let code =
    [| Asm.Paddi (3, 0, 1l); Asm.Paddi (4, 0, 2l); (* independent: pair *)
       Asm.Padd (5, 3, 4) (* depends on r4: new pair window *) |]
  in
  let costs = Timing.static_costs code in
  checki "first costs 1" 1 costs.(0);
  checki "second pairs for free" 0 costs.(1);
  checki "third costs 1" 1 costs.(2)

let test_pairing_dependence () =
  let code = [| Asm.Paddi (3, 0, 1l); Asm.Paddi (4, 3, 2l) |] in
  let costs = Timing.static_costs code in
  checki "dependent second instruction does not pair" 1 costs.(1)

let test_fpu_overlap () =
  let indep = [| Asm.Pfadd (1, 2, 3); Asm.Pfadd (4, 5, 6) |] in
  let dep = [| Asm.Pfadd (1, 2, 3); Asm.Pfadd (4, 1, 6) |] in
  checki "independent FPU ops overlap" 2 (Timing.static_costs indep).(1);
  checki "dependent FPU ops serialize" 4 (Timing.static_costs dep).(1)

let test_load_use_stall () =
  let stall =
    [| Asm.Plwz (3, Asm.Aind (Asm.sp, 8l)); Asm.Padd (4, 3, 3) |]
  in
  let no_stall =
    [| Asm.Plwz (3, Asm.Aind (Asm.sp, 8l)); Asm.Padd (4, 5, 6) |]
  in
  checki "load-to-use stalls" 3 (Timing.static_costs stall).(1);
  checki "independent consumer does not stall" 1
    (Timing.static_costs no_stall).(1)

let test_window_reset_at_label () =
  let code =
    [| Asm.Pfadd (1, 2, 3); Asm.Plabel 1; Asm.Pfadd (4, 5, 6) |]
  in
  checki "label resets the overlap window" 4 (Timing.static_costs code).(2)

(* ---- simulator ---- *)

let empty_source : Minic.Ast.program =
  { Minic.Ast.prog_globals = [ ("g", Minic.Ast.Tint) ];
    prog_arrays = [];
    prog_volatiles = [];
    prog_funcs =
      [ { Minic.Ast.fn_name = "f"; fn_params = []; fn_locals = [];
          fn_ret = Some Minic.Ast.Tint; fn_body = Minic.Ast.Sskip } ];
    prog_main = "f" }

let run_asm (code : Asm.instr list) : Target.Sim.run_result =
  let prog = { Asm.pr_funcs = [ { Asm.fn_name = "f"; fn_code = code } ]; pr_main = "f" } in
  let lay = Target.Layout.build empty_source prog in
  Target.Sim.run ~source:empty_source prog lay (Minic.Interp.constant_world 0.0) []

let test_sim_arith () =
  let r =
    run_asm
      [ Asm.Paddi (3, 0, 20l); Asm.Paddi (4, 0, 22l); Asm.Padd (3, 3, 4);
        Asm.Pblr ]
  in
  (match r.Target.Sim.rr_result.Minic.Interp.res_return with
   | Some (Minic.Value.Vint 42l) -> ()
   | _ -> Alcotest.fail "20 + 22 = 42 in r3")

let test_sim_loop_and_branch () =
  (* r3 = 0; for r4 = 5 downto 1: r3 += r4 *)
  let r =
    run_asm
      [ Asm.Paddi (3, 0, 0l); Asm.Paddi (4, 0, 5l); Asm.Plabel 1;
        Asm.Padd (3, 3, 4); Asm.Paddi (4, 4, -1l); Asm.Pcmpwi (4, 0l);
        Asm.Pbc (Asm.BT Asm.CRgt, 1); Asm.Pblr ]
  in
  (match r.Target.Sim.rr_result.Minic.Interp.res_return with
   | Some (Minic.Value.Vint 15l) -> ()
   | _ -> Alcotest.fail "sum 1..5 = 15")

let test_sim_memory_and_global () =
  let r =
    run_asm
      [ Asm.Paddi (3, 0, 7l); Asm.Pstw (3, Asm.Aglob ("g", 0l));
        Asm.Plwz (4, Asm.Aglob ("g", 0l)); Asm.Padd (3, 4, 4); Asm.Pblr ]
  in
  (match r.Target.Sim.rr_result.Minic.Interp.res_return with
   | Some (Minic.Value.Vint 14l) -> ()
   | _ -> Alcotest.fail "store/load a global");
  checki "one read, one write" 1 r.Target.Sim.rr_stats.Target.Sim.dcache_reads;
  checki "write count" 1 r.Target.Sim.rr_stats.Target.Sim.dcache_writes

let test_sim_fmadd_fused () =
  (* fma(1e16, 1e16, 1.0) differs from (1e16*1e16)+1.0 only in rounding
     of the intermediate; use a case with an observable difference:
     a = 1 + 2^-52 (so a*a has a low bit the two-step rounding drops) *)
  let a = 1.0 +. Float.of_string "0x1p-52" in
  let r =
    run_asm
      [ Asm.Plfdc (1, a); Asm.Plfdc (2, a); Asm.Plfdc (3, -1.0);
        Asm.Pfmadd (4, 1, 2, 3); Asm.Pfmr (1, 4); Asm.Pblr ]
  in
  (* fused: a*a - 1 = 2^-51 + 2^-104 exactly rounded; two-step would
     give 2^-51. We simply check it equals OCaml's Float.fma. *)
  let prog2 =
    [ Asm.Plfdc (1, a); Asm.Plfdc (2, a); Asm.Plfdc (3, -1.0);
      Asm.Pfmul (4, 1, 2); Asm.Pfadd (4, 4, 3); Asm.Pfmr (1, 4); Asm.Pblr ]
  in
  let r2 = run_asm prog2 in
  let get r =
    match r.Target.Sim.rr_result.Minic.Interp.res_return with
    | Some _ -> ()
    | None -> Alcotest.fail "no return"
  in
  get r;
  get r2;
  (* direct register values via float return would need Tfloat ret; we
     only assert the fused instruction exists and executes. *)
  ()

let test_sim_movcc () =
  let r =
    run_asm
      [ Asm.Paddi (3, 0, 1l); Asm.Paddi (4, 0, 9l); Asm.Pcmpwi (3, 0l);
        Asm.Pmovcc (3, 4, Asm.BT Asm.CRgt); (* 1 > 0: r3 := 9 *)
        Asm.Pcmpwi (3, 100l);
        Asm.Pmovcc (3, 0, Asm.BT Asm.CRgt); (* 9 > 100 false: keep *)
        Asm.Pblr ]
  in
  (match r.Target.Sim.rr_result.Minic.Interp.res_return with
   | Some (Minic.Value.Vint 9l) -> ()
   | _ -> Alcotest.fail "conditional move semantics")

let test_sim_annot_event () =
  let r =
    run_asm
      [ Asm.Paddi (3, 0, 11l);
        Asm.Pannot ("0 <= %1 <= 20", [ Asm.AA_ireg 3 ]); Asm.Pblr ]
  in
  (match r.Target.Sim.rr_result.Minic.Interp.res_events with
   | [ Minic.Interp.Ev_annot ("0 <= %1 <= 20", [ Minic.Value.Vint 11l ]) ] -> ()
   | _ -> Alcotest.fail "annotation event from register")

let test_emit_substitution () =
  let i = Asm.Pannot ("0 <= %1 <= %2 < 360", [ Asm.AA_ireg 3; Asm.AA_stack_int 32l ]) in
  Alcotest.check Alcotest.string "paper-style substitution"
    "\t# annotation: 0 <= r3 <= @32 < 360" (Target.Emit.instr_str i)

let suite =
  [ ("cache: basics", `Quick, test_cache_basics);
    ("cache: LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache: hit/miss counts", `Quick, test_cache_counts);
    QCheck_alcotest.to_alcotest cache_capacity_prop;
    ("timing: dual-issue pairing", `Quick, test_dual_issue_pairing);
    ("timing: pairing needs independence", `Quick, test_pairing_dependence);
    ("timing: FPU overlap", `Quick, test_fpu_overlap);
    ("timing: load-to-use stall", `Quick, test_load_use_stall);
    ("timing: window reset at labels", `Quick, test_window_reset_at_label);
    ("sim: arithmetic", `Quick, test_sim_arith);
    ("sim: loop and branches", `Quick, test_sim_loop_and_branch);
    ("sim: memory and globals", `Quick, test_sim_memory_and_global);
    ("sim: fmadd executes", `Quick, test_sim_fmadd_fused);
    ("sim: conditional move", `Quick, test_sim_movcc);
    ("sim: annotation events", `Quick, test_sim_annot_event);
    ("emit: %i substitution", `Quick, test_emit_substitution) ]
