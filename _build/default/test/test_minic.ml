(* Unit and property tests for the mini-C front end: value semantics,
   type checker, interpreter, lexer/parser round trips. *)

module A = Minic.Ast
module V = Minic.Value

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ---- value semantics ---- *)

let test_div32 () =
  check Alcotest.int32 "7/2" 3l (V.div32 7l 2l);
  check Alcotest.int32 "-7/2" (-3l) (V.div32 (-7l) 2l);
  check Alcotest.int32 "7/-2" (-3l) (V.div32 7l (-2l));
  check Alcotest.int32 "x/0 is 0" 0l (V.div32 42l 0l);
  check Alcotest.int32 "min/-1 is 0" 0l (V.div32 Int32.min_int (-1l));
  check Alcotest.int32 "rem 7 2" 1l (V.rem32 7l 2l);
  check Alcotest.int32 "rem -7 2" (-1l) (V.rem32 (-7l) 2l);
  check Alcotest.int32 "rem x 0 = x (machine-aligned)" 5l (V.rem32 5l 0l);
  check Alcotest.int32 "rem min -1 = min" Int32.min_int (V.rem32 Int32.min_int (-1l))

let test_float_conv () =
  check Alcotest.int32 "trunc 2.9" 2l (V.int32_of_float_trunc 2.9);
  check Alcotest.int32 "trunc -2.9" (-2l) (V.int32_of_float_trunc (-2.9));
  check Alcotest.int32 "trunc nan" 0l (V.int32_of_float_trunc Float.nan);
  check Alcotest.int32 "trunc +inf saturates" Int32.max_int
    (V.int32_of_float_trunc Float.infinity);
  check Alcotest.int32 "trunc -inf saturates" Int32.min_int
    (V.int32_of_float_trunc Float.neg_infinity)

let test_value_equal () =
  checkb "nan = nan (bit equality)" true
    (V.equal (V.Vfloat Float.nan) (V.Vfloat Float.nan));
  checkb "-0.0 <> 0.0 (bit equality)" false
    (V.equal (V.Vfloat (-0.0)) (V.Vfloat 0.0));
  checkb "int/float distinct" false (V.equal (V.Vint 0l) (V.Vfloat 0.0))

let test_fcmp_nan () =
  let nan = Float.nan in
  checkb "nan < 1 is false" false (V.eval_fcomparison A.Clt nan 1.0);
  checkb "nan <= 1 is false" false (V.eval_fcomparison A.Cle nan 1.0);
  checkb "nan == nan is false" false (V.eval_fcomparison A.Ceq nan nan);
  checkb "nan != 1 is true" true (V.eval_fcomparison A.Cne nan 1.0);
  checkb "nan >= 1 is false" false (V.eval_fcomparison A.Cge nan 1.0)

let test_shift_mask () =
  check Alcotest.int32 "shift by 33 wraps to 1" 2l
    (V.as_int (V.eval_binop A.Oshl (V.Vint 1l) (V.Vint 33l)));
  check Alcotest.int32 "shift right arithmetic" (-1l)
    (V.as_int (V.eval_binop A.Oshr (V.Vint (-2l)) (V.Vint 1l)))

(* ---- type checker ---- *)

let tiny_prog (body : A.stmt) : A.program =
  { A.prog_globals = [ ("g", A.Tfloat) ];
    prog_arrays =
      [ { A.arr_name = "t"; arr_elt = A.Tfloat; arr_init = [ 1.0; 2.0 ] } ];
    prog_volatiles = [ ("vin", A.Tfloat, A.Vol_in); ("vout", A.Tfloat, A.Vol_out) ];
    prog_funcs =
      [ { A.fn_name = "m"; fn_params = []; fn_locals = [ ("x", A.Tfloat); ("i", A.Tint) ];
          fn_ret = None; fn_body = body } ];
    prog_main = "m" }

let accepts (s : A.stmt) : bool =
  match Minic.Typecheck.check_program (tiny_prog s) with
  | Ok () -> true
  | Error _ -> false

let test_typecheck_accepts () =
  checkb "assign float" true (accepts (A.Sassign ("x", A.Eglobal "g")));
  checkb "volatile roundtrip" true
    (accepts (A.Svolstore ("vout", A.Evolatile "vin")));
  checkb "for loop" true
    (accepts
       (A.Sfor ("i", A.Econst_int 0l, A.Econst_int 3l,
                A.Sassign ("x", A.Econst_float 1.0))))

let test_typecheck_rejects () =
  checkb "int into float" false
    (accepts (A.Sassign ("x", A.Econst_int 1l)));
  checkb "read volatile output" false
    (accepts (A.Sassign ("x", A.Evolatile "vout")));
  checkb "write volatile input" false
    (accepts (A.Svolstore ("vin", A.Econst_float 1.0)));
  checkb "unbound variable" false
    (accepts (A.Sassign ("nope", A.Econst_float 1.0)));
  checkb "float array int store" false
    (accepts (A.Sstore ("t", A.Econst_int 0l, A.Econst_int 1l)));
  checkb "non-bool guard" false
    (accepts (A.Sif (A.Econst_int 1l, A.Sskip, A.Sskip)));
  checkb "bool annotation argument" false
    (accepts (A.Sannot ("x", [ A.Econst_bool true ])));
  checkb "counter modified in body (MISRA 13.6)" false
    (accepts
       (A.Sfor ("i", A.Econst_int 0l, A.Econst_int 3l,
                A.Sassign ("i", A.Econst_int 0l))))

(* ---- interpreter ---- *)

let parse (s : string) : A.program =
  let p = Minic.Parser.parse_program s in
  Minic.Typecheck.check_program_exn p;
  p

let run_ret (src : string) : V.t option =
  let p = parse src in
  (Minic.Interp.run_cycle p (Minic.Interp.constant_world 1.5)).Minic.Interp.res_return

let test_interp_loop () =
  match
    run_ret
      {| int m() { var int i; var int s; s = 0;
           for (i = 0; i < 5) { s = s + i; } return s; } main m; |}
  with
  | Some (V.Vint 10l) -> ()
  | r ->
    Alcotest.failf "expected 10, got %s"
      (match r with Some v -> V.to_string v | None -> "None")

let test_interp_counter_after_loop () =
  match
    run_ret {| int m() { var int i; for (i = 0; i < 4) { skip; } return i; } main m; |}
  with
  | Some (V.Vint 4l) -> ()
  | _ -> Alcotest.fail "counter should equal the bound after the loop"

let test_interp_empty_loop_counter () =
  match
    run_ret {| int m() { var int i; for (i = 7; i < 3) { skip; } return i; } main m; |}
  with
  | Some (V.Vint 7l) -> ()
  | _ -> Alcotest.fail "counter keeps the start value when the loop is empty"

let test_interp_implicit_return_zero () =
  match run_ret {| double m() { var int i; i = 1; } main m; |} with
  | Some (V.Vfloat 0.0) -> ()
  | _ -> Alcotest.fail "fall-through of a non-void function returns zero"

let test_interp_volatile_order () =
  let p =
    parse
      {| volatile in double a; volatile in double b; volatile out double o;
         void m() { volatile(o) = volatile(a) +. volatile(b);
                    volatile(o) = volatile(a); } main m; |}
  in
  let r = Minic.Interp.run_cycle p (Minic.Interp.seeded_world ~seed:3 ()) in
  let names =
    List.filter_map
      (fun e ->
         match e with
         | Minic.Interp.Ev_vol_read (x, _) -> Some x
         | _ -> None)
      r.Minic.Interp.res_events
  in
  check Alcotest.(list string) "left-to-right, repeat reads re-sample"
    [ "a"; "b"; "a" ] names

let test_interp_annotation_event () =
  let p =
    parse
      {| void m() { var int n; n = 3; __builtin_annotation("range 0 5", n); } main m; |}
  in
  let r = Minic.Interp.run_cycle p (Minic.Interp.constant_world 0.0) in
  match r.Minic.Interp.res_events with
  | [ Minic.Interp.Ev_annot ("range 0 5", [ V.Vint 3l ]) ] -> ()
  | _ -> Alcotest.fail "annotation event carries text and argument values"

let test_interp_multicycle_state () =
  let p =
    parse
      {| global int n; int m() { $n = $n + 1; return $n; } main m; |}
  in
  let r = Minic.Interp.run_cycles p (Minic.Interp.constant_world 0.0) ~cycles:5 in
  match r.Minic.Interp.res_return with
  | Some (V.Vint 5l) -> ()
  | _ -> Alcotest.fail "globals persist across cycles"

let test_interp_array_oob () =
  let p =
    parse
      {| array double t = {1.0, 2.0}; double m() { return $t[7]; } main m; |}
  in
  match Minic.Interp.run_cycle p (Minic.Interp.constant_world 0.0) with
  | _ -> Alcotest.fail "out-of-bounds read must raise"
  | exception Minic.Interp.Runtime_error _ -> ()

(* ---- lexer / parser ---- *)

let test_lexer_negative_literals () =
  (match Minic.Lexer.tokenize "x = -5;" with
   | [ Minic.Lexer.IDENT "x"; Minic.Lexer.ASSIGN; Minic.Lexer.INT (-5l);
       Minic.Lexer.SEMI; Minic.Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "-5 after '=' is a literal");
  (match Minic.Lexer.tokenize "a - 5" with
   | [ Minic.Lexer.IDENT "a"; Minic.Lexer.MINUS; Minic.Lexer.INT 5l;
       Minic.Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "'a - 5' keeps the binary minus")

let test_lexer_hex_floats () =
  match Minic.Lexer.tokenize "0x1.8p+1" with
  | [ Minic.Lexer.FLOAT f; Minic.Lexer.EOF ] when f = 3.0 -> ()
  | _ -> Alcotest.fail "hex float literal"

let test_parser_precedence () =
  let p = parse {| int m() { return 1 + 2 * 3; } main m; |} in
  match (List.hd p.A.prog_funcs).A.fn_body with
  | A.Sreturn (Some (A.Ebinop (A.Oadd, A.Econst_int 1l,
                               A.Ebinop (A.Omul, A.Econst_int 2l, A.Econst_int 3l))))
    -> ()
  | _ -> Alcotest.fail "multiplication binds tighter than addition"

(* round trip: print a random program and parse it back to an equal AST *)
let roundtrip_prop =
  QCheck.Test.make ~count:120 ~name:"pp/parse round trip"
    QCheck.(map (fun i -> i) small_int)
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       Minic.Typecheck.check_program_exn p;
       let text = Minic.Pp.program_to_string p in
       let p' = Minic.Parser.parse_program text in
       (* compare observable structure: re-print and compare strings,
          which is robust to the AST's float representations *)
       String.equal text (Minic.Pp.program_to_string p'))

(* the interpreter is deterministic: two runs over the same world agree *)
let deterministic_prop =
  QCheck.Test.make ~count:60 ~name:"interpreter determinism"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let w () = Minic.Interp.seeded_world ~seed ()
       in
       let r1 = Minic.Interp.run_cycles p (w ()) ~cycles:3 in
       let r2 = Minic.Interp.run_cycles p (w ()) ~cycles:3 in
       Minic.Interp.result_equal r1 r2)

let suite =
  [ ("div32 edge cases", `Quick, test_div32);
    ("float->int conversion", `Quick, test_float_conv);
    ("value bit equality", `Quick, test_value_equal);
    ("float comparisons vs NaN", `Quick, test_fcmp_nan);
    ("shift masking", `Quick, test_shift_mask);
    ("typecheck accepts", `Quick, test_typecheck_accepts);
    ("typecheck rejects", `Quick, test_typecheck_rejects);
    ("interp: counted loop", `Quick, test_interp_loop);
    ("interp: counter after loop", `Quick, test_interp_counter_after_loop);
    ("interp: empty loop counter", `Quick, test_interp_empty_loop_counter);
    ("interp: implicit return is zero", `Quick, test_interp_implicit_return_zero);
    ("interp: volatile order", `Quick, test_interp_volatile_order);
    ("interp: annotation event", `Quick, test_interp_annotation_event);
    ("interp: state across cycles", `Quick, test_interp_multicycle_state);
    ("interp: array bounds", `Quick, test_interp_array_oob);
    ("lexer: negative literals", `Quick, test_lexer_negative_literals);
    ("lexer: hex floats", `Quick, test_lexer_hex_floats);
    ("parser: precedence", `Quick, test_parser_precedence);
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest deterministic_prop ]
