(* The annotation mechanism of paper section 3.4, end to end:

   1. a "loopbound" annotation written in the source survives
      optimizing compilation as a pro-forma effect and reaches the
      analyzer as an assembly comment — without it, the
      configuration-dependent loop cannot be bounded;
   2. a "range %1" annotation carries a value interval whose argument
      location is substituted at emission (the paper's
      "0 <= r3 <= @32 < 360" example) and feeds the value analysis,
      which then bounds a data-dependent loop automatically.

     dune exec examples/annotation_flow.exe *)

(* A hand-written mini-C node: the iteration count comes from a sensor,
   clamped by the software; the annotation tells the analyzer what the
   clamp guarantees. *)
let source = {|
global double accu;
volatile in double burst_len;
volatile out double smoothed;
array double weights = {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125};

void burst_main() {
  var double x;
  var int n;
  var int i;
  var double acc;
  x = volatile(burst_len);
  n = (int)x;
  if (n < 0) { n = 0; }
  if (n > 8) { n = 8; }
  __builtin_annotation("0 <= %1 <= 8", n);
  acc = 0.0;
  for (i = 0; i < n) {
    acc = acc +. $weights[i];
  }
  $accu = acc;
  volatile(smoothed) = acc;
}
main burst_main;
|}

let () =
  let src = Minic.Parser.parse_program source in
  Minic.Typecheck.check_program_exn src;
  print_endline "=== source (with annotation) ===";
  print_endline (Minic.Pp.program_to_string src);
  List.iter
    (fun comp ->
       let b = Fcstack.Chain.build ~exact:true comp src in
       Printf.printf "=== %s ===\n"
         (Fcstack.Chain.compiler_description comp);
       (* show the emitted annotation comment with substituted locations *)
       List.iter
         (fun f ->
            List.iter
              (fun i ->
                 match i with
                 | Target.Asm.Pannot (_, _) ->
                   Printf.printf "emitted: %s\n"
                     (String.trim (Target.Emit.instr_str i))
                 | _ -> ())
              f.Target.Asm.fn_code)
         b.Fcstack.Chain.b_asm.Target.Asm.pr_funcs;
       (match Fcstack.Chain.wcet b with
        | report ->
          Printf.printf "WCET: %d cycles (loops: %s)\n\n"
            report.Wcet.Report.rp_wcet
            (String.concat ", "
               (List.map
                  (fun l ->
                     Printf.sprintf "B%d<=%d" l.Wcet.Report.li_header
                       l.Wcet.Report.li_bound)
                  report.Wcet.Report.rp_loops))
        | exception Wcet.Driver.Error msg ->
          Printf.printf "WCET analysis failed: %s\n\n" msg))
    [ Fcstack.Chain.Cdefault_o0; Fcstack.Chain.Cvcomp ];
  (* now strip the annotation and watch the analysis fail *)
  print_endline "=== without the annotation ===";
  let rec strip (s : Minic.Ast.stmt) : Minic.Ast.stmt =
    match s with
    | Minic.Ast.Sannot _ -> Minic.Ast.Sskip
    | Minic.Ast.Sseq (a, b) -> Minic.Ast.Sseq (strip a, strip b)
    | Minic.Ast.Sif (c, a, b) -> Minic.Ast.Sif (c, strip a, strip b)
    | Minic.Ast.Swhile (c, a) -> Minic.Ast.Swhile (c, strip a)
    | Minic.Ast.Sfor (i, lo, hi, a) -> Minic.Ast.Sfor (i, lo, hi, strip a)
    | _ -> s
  in
  let stripped =
    { src with
      Minic.Ast.prog_funcs =
        List.map
          (fun f -> { f with Minic.Ast.fn_body = strip f.Minic.Ast.fn_body })
          src.Minic.Ast.prog_funcs }
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp stripped in
  (match Fcstack.Chain.wcet b with
   | report ->
     Printf.printf
       "analysis still succeeded (value analysis bounded the clamp): %d cycles\n"
       report.Wcet.Report.rp_wcet
   | exception Wcet.Driver.Error msg ->
     Printf.printf "analysis fails as expected: %s\n" msg)
