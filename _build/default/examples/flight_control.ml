(* A realistic pitch-axis control law, hand-specified from the symbol
   library (the kind of node the paper's intro motivates): stick and
   sensor acquisitions, complementary filtering, a PID-like law with
   gain scheduling from a lookup table, output limiting and rate
   limiting toward the elevator servo, plus discrete protection logic
   ("flight envelope protection" in the paper's terms).

     dune exec examples/flight_control.exe *)

let w = ref 0
let fresh () = incr w; !w

let inst (wire : int option) (op : Scade.Symbol.op) : Scade.Symbol.instance =
  { Scade.Symbol.i_wire = wire; i_op = op }

let pitch_law : Scade.Symbol.node =
  let open Scade.Symbol in
  (* acquisitions *)
  let stick = fresh () in
  let pitch = fresh () in
  let rate = fresh () in
  let speed = fresh () in
  (* filtering *)
  let stick_f = fresh () in
  let rate_f = fresh () in
  (* command shaping *)
  let stick_shaped = fresh () in
  let target = fresh () in
  let error = fresh () in
  (* PID-ish *)
  let kp_sched = fresh () in
  let p_term = fresh () in
  let i_term = fresh () in
  let d_term = fresh () in
  let pi = fresh () in
  let pid = fresh () in
  (* protections *)
  let over_pitch = fresh () in
  let under_pitch = fresh () in
  let protect = fresh () in
  let authority = fresh () in
  let limited = fresh () in
  let cmd = fresh () in
  { n_name = "pitch";
    n_instances =
      [ inst (Some stick) (Yacq "stick_pos");
        inst (Some pitch) (Yacq "pitch_angle");
        inst (Some rate) (Yacq "pitch_rate");
        inst (Some speed) (Yacq "airspeed");
        (* smooth the stick, filter the gyro *)
        inst (Some stick_f) (Yfilter (0.25, Swire stick));
        inst (Some rate_f) (Yfilter (0.4, Swire rate));
        (* stick deadband and shaping *)
        inst (Some stick_shaped) (Ydeadband (0.05, Swire stick_f));
        inst (Some target) (Ygain (12.0, Swire stick_shaped));
        inst (Some error) (Ydiff (Swire target, Swire pitch));
        (* gain scheduling on airspeed *)
        inst (Some kp_sched)
          (Ylookup
             ( { tb_breaks = [| 80.0; 140.0; 220.0; 320.0 |];
                 tb_values = [| 1.8; 1.2; 0.8; 0.55 |] },
               Swire speed ));
        inst (Some p_term) (Yprod (Swire error, Swire kp_sched));
        inst (Some i_term) (Yintegrator (0.02, -6.0, 6.0, Swire error));
        inst (Some d_term) (Ygain (-0.35, Swire rate_f));
        inst (Some pi) (Ysum (Swire p_term, Swire i_term));
        inst (Some pid) (Ysum (Swire pi, Swire d_term));
        (* envelope protection: pull authority when pitch is extreme *)
        inst (Some over_pitch) (Ycmp (CMPgt, Swire pitch, Sconstf 25.0));
        inst (Some under_pitch) (Ycmp (CMPlt, Swire pitch, Sconstf (-12.0)));
        inst (Some protect) (Yor (Swire over_pitch, Swire under_pitch));
        inst (Some authority) (Yselect (Swire protect, Sconstf 4.0, Sconstf 18.0));
        inst (Some limited) (Ylimiter (-18.0, 18.0, Swire pid));
        (* final authority clamp through the scheduled limit and slew *)
        inst (Some cmd)
          (Yratelimit
             ( 2.5,
               Swire limited ));
        inst None (Yout ("elevator_cmd", Swire cmd));
        inst None (Youtb ("protection_active", Swire protect));
        (* authority is telemetry *)
        inst None (Yout ("authority_telemetry", Swire authority)) ] }

let () =
  let node = Scade.Schedule.sort pitch_law in
  let src = Scade.Acg.generate node in
  Printf.printf "pitch law: %d symbol instances, %d lines of generated C\n\n"
    (List.length node.Scade.Symbol.n_instances)
    (List.length
       (String.split_on_char '\n' (Minic.Pp.program_to_string src)));
  (* simulate ten control cycles on the reference semantics and check
     every compiler against them *)
  Printf.printf "%-46s %10s %9s %8s %10s\n" "configuration" "WCET" "observed"
    "bytes" "validation";
  List.iter
    (fun comp ->
       let exact = true in
       let b = Fcstack.Chain.build ~exact comp src in
       let report = Fcstack.Chain.wcet b in
       let sim =
         Fcstack.Chain.simulate ~cycles:10 b
           (Minic.Interp.seeded_world ~seed:99 ())
       in
       let ok =
         match Fcstack.Chain.validate_chain ~cycles:10 b with
         | Ok () -> "bit-exact"
         | Error _ -> "MISMATCH"
       in
       Printf.printf "%-46s %10d %9d %8d %10s\n"
         (Fcstack.Chain.compiler_description comp)
         report.Wcet.Report.rp_wcet
         (sim.Target.Sim.rr_stats.Target.Sim.cycles / 10)
         (Target.Asm.program_size b.Fcstack.Chain.b_asm)
         ok)
    Fcstack.Chain.all_compilers;
  (* a peek at the elevator command over a few cycles *)
  let events =
    Scade.Semantics.run node (Minic.Interp.seeded_world ~seed:99 ()) ~cycles:5
  in
  print_endline "\nelevator command over five cycles (reference semantics):";
  List.iter
    (fun e ->
       match e with
       | Minic.Interp.Ev_vol_write ("elevator_cmd", Minic.Value.Vfloat v) ->
         Printf.printf "  elevator_cmd = %+.4f deg\n" v
       | _ -> ())
    events
