(* The certification argument of the paper, executable.

   Section 3.1/3.5: the current process trusts the non-optimized
   compiler because every symbol yields a reviewable pattern; an
   optimizing COTS compiler cannot be reviewed that way; CompCert's
   semantic-preservation guarantee would allow optimization *with*
   certification credit. Our substrate makes the trade concrete:

   - the verified-style compiler passes whole-chain translation
     validation on every node (the runtime stand-in for the Coq proof);
   - the fully-optimized default compiler, with its -O2 FMA
     contraction enabled (as real embedded compilers ship it), produces
     traces that are NOT bit-exact against the source semantics —
     demonstrated below — which is precisely why its output cannot be
     accepted without the pattern review the optimization destroys.

     dune exec examples/certification_story.exe *)

let () =
  let nodes = Scade.Workload.flight_program ~nodes:16 ~seed:424242 in
  let validated = ref 0 in
  let fma_divergent = ref 0 in
  List.iter
    (fun ((node : Scade.Symbol.node), src) ->
       (* vcomp, with per-pass validators active *)
       let bv = Fcstack.Chain.build ~validate:true Fcstack.Chain.Cvcomp src in
       (match Fcstack.Chain.validate_chain ~cycles:5 bv with
        | Ok () -> incr validated
        | Error msg ->
          Printf.printf "UNEXPECTED vcomp failure on %s:\n%s\n"
            node.Scade.Symbol.n_name msg);
       (* default -O2 as shipped (FMA contraction on) *)
       let bo2 = Fcstack.Chain.build Fcstack.Chain.Cdefault_o2 src in
       (match Fcstack.Chain.validate_chain ~cycles:5 bo2 with
        | Ok () -> ()
        | Error _ -> incr fma_divergent))
    nodes;
  Printf.printf
    "verified-style compiler : %d/%d nodes bit-exact (per-pass validators + \
     whole-chain check)\n"
    !validated (List.length nodes);
  Printf.printf
    "default -O2 (shipped)   : %d/%d nodes diverge from source semantics \
     (FMA contraction)\n"
    !fma_divergent (List.length nodes);
  print_endline
    "\nThe divergent nodes are not miscompiled — the contraction is a legal\n\
     fast-math transformation — but neither a pattern review nor a formal\n\
     semantic-preservation argument can accept them. That is the paper's\n\
     case for a formally verified optimizing compiler.";
  (* the structural half of the validation story: corrupt a register
     allocation and watch the independent checker reject it *)
  let src = snd (List.hd nodes) in
  let rtl = Vcomp.Selection.trans_program src in
  let f = List.hd rtl.Vcomp.Rtl.p_funcs in
  let res = Vcomp.Regalloc.allocate f in
  (match Vcomp.Regalloc.verify f res with
   | Ok () -> print_endline "\nregalloc validator: correct allocation accepted"
   | Error msg -> Printf.printf "\nUNEXPECTED: %s\n" msg);
  (* merge an interfering pair of pseudo-registers: by construction the
     validator must reject the resulting allocation *)
  let corrupt () : bool =
    let g = res.Vcomp.Regalloc.ra_graph in
    let found = ref false in
    Hashtbl.iter
      (fun a neighbors ->
         if not !found then
           Vcomp.Regalloc.RegSet.iter
             (fun b ->
                if (not !found) && Vcomp.Rtl.reg_class f a = Vcomp.Rtl.reg_class f b
                   && not
                        (Vcomp.Regalloc.loc_equal
                           (Vcomp.Regalloc.location res a)
                           (Vcomp.Regalloc.location res b)) then begin
                  Hashtbl.replace res.Vcomp.Regalloc.ra_alloc a
                    (Vcomp.Regalloc.location res b);
                  found := true
                end)
             neighbors)
      g.Vcomp.Regalloc.g_adj;
    !found
  in
  if corrupt () then
    match Vcomp.Regalloc.verify f res with
    | Ok () ->
      print_endline
        "regalloc validator: UNEXPECTED acceptance of a corrupted allocation"
    | Error msg ->
      Printf.printf "regalloc validator: corrupted allocation REJECTED\n  (%s)\n"
        msg
  else print_endline "regalloc validator: no interfering pair to corrupt"
