(* Quickstart: the paper's Listing 1 / Listing 2 contrast in one page.

   A two-symbol control law (gain + sum) goes through the development
   chain of Figure 1: SCADE-like spec -> ACG -> mini-C -> {pattern
   compiler, verified-style compiler} -> assembly -> simulator + WCET.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. the specification: out = 2*in0 + in1 *)
  let node =
    { Scade.Symbol.n_name = "quick";
      n_instances =
        [ { Scade.Symbol.i_wire = Some 1; i_op = Scade.Symbol.Yacq "q_in0" };
          { Scade.Symbol.i_wire = Some 2; i_op = Scade.Symbol.Yacq "q_in1" };
          { Scade.Symbol.i_wire = Some 3;
            i_op = Scade.Symbol.Ygain (2.0, Scade.Symbol.Swire 1) };
          { Scade.Symbol.i_wire = Some 4;
            i_op = Scade.Symbol.Ysum (Scade.Symbol.Swire 3, Scade.Symbol.Swire 2) };
          { Scade.Symbol.i_wire = None;
            i_op = Scade.Symbol.Yout ("q_out", Scade.Symbol.Swire 4) } ] }
  in
  (* 2. qualified code generation *)
  let src = Scade.Acg.generate node in
  print_endline "=== generated mini-C (ACG output) ===";
  print_endline (Minic.Pp.program_to_string src);
  (* 3. both compilation regimes *)
  List.iter
    (fun comp ->
       let b = Fcstack.Chain.build ~exact:true comp src in
       Printf.printf "=== %s ===\n%s\n"
         (Fcstack.Chain.compiler_description comp)
         (Target.Emit.program_to_string b.Fcstack.Chain.b_asm);
       (* 4. whole-chain validation + measurements *)
       (match Fcstack.Chain.validate_chain b with
        | Ok () -> print_endline "validation: machine = source (bit-exact)"
        | Error msg -> print_endline msg);
       let report = Fcstack.Chain.wcet b in
       let sim = Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed:7 ()) in
       Printf.printf "WCET bound: %d cycles | observed: %d cycles | code: %d bytes\n\n"
         report.Wcet.Report.rp_wcet
         sim.Target.Sim.rr_stats.Target.Sim.cycles
         (Target.Asm.program_size b.Fcstack.Chain.b_asm))
    [ Fcstack.Chain.Cdefault_o0; Fcstack.Chain.Cvcomp ]
