(* fcgen — synthetic flight-control program generator.

   Materializes the seeded workload of the evaluation as mini-C source
   files (one per node, like the paper's ~2500 automatically generated
   files), so that the CLI tools and external inspection can work on
   concrete artifacts. *)

let run (nodes : int) (seed : int) (outdir : string) : int =
  if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
  let program = Scade.Workload.flight_program ~nodes ~seed in
  List.iter
    (fun (node, src) ->
       let path =
         Filename.concat outdir (node.Scade.Symbol.n_name ^ ".mc")
       in
       let oc = open_out path in
       output_string oc (Minic.Pp.program_to_string src);
       close_out oc;
       let symbols = List.length node.Scade.Symbol.n_instances in
       Printf.printf "%-10s %3d symbols  -> %s\n" node.Scade.Symbol.n_name
         symbols path)
    program;
  Printf.printf "generated %d nodes (seed %d) in %s\n" nodes seed outdir;
  0

open Cmdliner

let nodes_arg =
  Arg.(value & opt int 20 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Node count.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Seed.")

let outdir_arg =
  Arg.(value & opt string "generated"
       & info [ "d"; "outdir" ] ~docv:"DIR" ~doc:"Output directory.")

let cmd =
  let doc = "generate a synthetic flight-control program (mini-C files)" in
  Cmd.v (Cmd.info "fcgen" ~doc) Term.(const run $ nodes_arg $ seed_arg $ outdir_arg)

let () = exit (Cmd.eval' cmd)
