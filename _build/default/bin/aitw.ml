(* aitw — static WCET analyzer driver (the aiT stand-in).

   Compiles a mini-C source file under a chosen configuration, links it
   (memory layout), runs the full analysis chain (CFG reconstruction,
   loop & value analysis, cache & pipeline analysis, IPET) and prints
   the WCET report. With --compare it analyzes all four configurations
   and prints a per-function comparison; with --simulate it also runs
   the simulator over several input worlds and reports the worst
   observed cycle count next to the bound. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let observed_max (b : Fcstack.Chain.built) (seeds : int list) : int =
  List.fold_left
    (fun acc seed ->
       let w = Minic.Interp.seeded_world ~seed () in
       let rr = Fcstack.Chain.simulate b w in
       max acc rr.Target.Sim.rr_stats.Target.Sim.cycles)
    0 seeds

let run (file : string) (compiler : string) (compare_all : bool)
    (simulate : bool) (annot_out : string option) : int =
  try
    let src = Minic.Parser.parse_program (read_file file) in
    Minic.Typecheck.check_program_exn src;
    let analyze_one (comp : Fcstack.Chain.compiler) : unit =
      let b = Fcstack.Chain.build comp src in
      (match annot_out with
       | Some path ->
         Wcet.Annotfile.write_file path b.Fcstack.Chain.b_asm;
         Printf.printf "annotation file written to %s\n" path
       | None -> ());
      let report = Fcstack.Chain.wcet b in
      Printf.printf "--- %s ---\n" (Fcstack.Chain.compiler_description comp);
      print_string (Wcet.Report.to_string report);
      if simulate then begin
        let m = observed_max b [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        Printf.printf "  max observed      : %d cycles (8 random worlds)\n" m;
        Printf.printf "  overestimation    : %+.1f%%\n"
          (100.0
           *. (float_of_int report.Wcet.Report.rp_wcet /. float_of_int m -. 1.0))
      end;
      print_newline ()
    in
    if compare_all then List.iter analyze_one Fcstack.Chain.all_compilers
    else begin
      match
        (match compiler with
         | "o0" -> Some Fcstack.Chain.Cdefault_o0
         | "o1" -> Some Fcstack.Chain.Cdefault_o1
         | "o2" -> Some Fcstack.Chain.Cdefault_o2
         | "vcomp" -> Some Fcstack.Chain.Cvcomp
         | _ -> None)
      with
      | Some c -> analyze_one c
      | None ->
        Printf.eprintf "unknown compiler %S\n" compiler;
        exit 2
    end;
    0
  with
  | Minic.Parser.Parse_error msg | Minic.Lexer.Lex_error (msg, _) ->
    Printf.eprintf "%s: parse error: %s\n" file msg;
    2
  | Wcet.Driver.Error msg ->
    Printf.eprintf "%s: WCET analysis failed: %s\n" file msg;
    1
  | Invalid_argument msg ->
    Printf.eprintf "%s: %s\n" file msg;
    2

open Cmdliner

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc")

let compiler_arg =
  Arg.(value & opt string "vcomp"
       & info [ "c"; "compiler" ] ~docv:"COMPILER" ~doc:"o0, o1, o2 or vcomp.")

let compare_arg =
  Arg.(value & flag & info [ "compare" ] ~doc:"Analyze all four configurations.")

let simulate_arg =
  Arg.(value & flag
       & info [ "simulate" ]
           ~doc:"Also report the worst cycle count observed on the simulator.")

let annot_out_arg =
  Arg.(value & opt (some string) None
       & info [ "annot-out" ] ~docv:"FILE"
           ~doc:"Write the generated annotation file (paper section 3.4).")

let cmd =
  let doc = "static WCET analysis of compiled flight-control code" in
  Cmd.v
    (Cmd.info "aitw" ~doc)
    Term.(
      const run $ file_arg $ compiler_arg $ compare_arg $ simulate_arg
      $ annot_out_arg)

let () = exit (Cmd.eval' cmd)
