(* fcc — flight-control compiler driver.

   Compiles a mini-C source file (.mc) under one of the four
   configurations of the paper's evaluation and prints (or writes) the
   generated assembly. Optionally runs the whole-chain translation
   validation (source interpreter vs machine simulator) and prints the
   RTL dump of the verified-style compiler. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compiler_of_string (s : string) : (Fcstack.Chain.compiler, string) Result.t =
  match s with
  | "o0" | "default-O0" -> Ok Fcstack.Chain.Cdefault_o0
  | "o1" | "default-O1" -> Ok Fcstack.Chain.Cdefault_o1
  | "o2" | "default-O2" -> Ok Fcstack.Chain.Cdefault_o2
  | "vcomp" -> Ok Fcstack.Chain.Cvcomp
  | _ -> Error (Printf.sprintf "unknown compiler %S (o0|o1|o2|vcomp)" s)

let run (file : string) (compiler : string) (output : string option)
    (validate : bool) (dump_rtl : bool) (exact : bool) : int =
  match compiler_of_string compiler with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok comp ->
    (try
       let src = Minic.Parser.parse_program (read_file file) in
       Minic.Typecheck.check_program_exn src;
       if dump_rtl then begin
         let rtl, _ = Vcomp.Driver.compile_with_rtl src in
         List.iter
           (fun f -> print_string (Vcomp.Rtl.dump_func f))
           rtl.Vcomp.Rtl.p_funcs
       end;
       let b = Fcstack.Chain.build ~exact ~validate:(validate && comp = Fcstack.Chain.Cvcomp) comp src in
       let text = Target.Emit.program_to_string b.Fcstack.Chain.b_asm in
       (match output with
        | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc
        | None -> print_string text);
       if validate then begin
         match Fcstack.Chain.validate_chain b with
         | Ok () ->
           Printf.eprintf "validation: machine code matches source semantics\n";
           0
         | Error msg ->
           Printf.eprintf "validation FAILED:\n%s\n" msg;
           1
       end
       else 0
     with
     | Minic.Parser.Parse_error msg | Minic.Lexer.Lex_error (msg, _) ->
       Printf.eprintf "%s: parse error: %s\n" file msg;
       2
     | Invalid_argument msg ->
       Printf.eprintf "%s: %s\n" file msg;
       2)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc")

let compiler_arg =
  Arg.(value & opt string "vcomp"
       & info [ "c"; "compiler" ] ~docv:"COMPILER"
           ~doc:"Configuration: o0, o1, o2 or vcomp.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE.s" ~doc:"Write assembly here.")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ]
           ~doc:"Run whole-chain translation validation (interpreter vs \
                 simulator) after compiling.")

let dump_rtl_arg =
  Arg.(value & flag & info [ "dump-rtl" ] ~doc:"Dump the optimized RTL (vcomp).")

let exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"Disable semantics-relaxing optimizations (the default-O2 \
                 FMA contraction).")

let cmd =
  let doc = "compile flight-control mini-C under the paper's configurations" in
  Cmd.v
    (Cmd.info "fcc" ~doc)
    Term.(
      const run $ file_arg $ compiler_arg $ output_arg $ validate_arg
      $ dump_rtl_arg $ exact_arg)

let () = exit (Cmd.eval' cmd)
