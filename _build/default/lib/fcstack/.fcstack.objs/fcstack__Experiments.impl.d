lib/fcstack/experiments.ml: Chain Cotsc Format Hashtbl List Minic Option Scade String Target Vcomp Wcet
