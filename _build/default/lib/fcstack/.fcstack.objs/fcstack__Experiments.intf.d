lib/fcstack/experiments.mli: Chain Format Scade
