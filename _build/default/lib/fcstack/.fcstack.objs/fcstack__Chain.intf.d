lib/fcstack/chain.mli: Minic Result Target Wcet
