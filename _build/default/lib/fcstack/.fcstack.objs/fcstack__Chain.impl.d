lib/fcstack/chain.ml: Cotsc Format List Minic Result Target Vcomp Wcet
