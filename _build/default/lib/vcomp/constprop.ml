(* Constant propagation over RTL: forward dataflow analysis on the flat
   lattice of values, followed by code rewriting, as in CompCert's
   Constprop pass.

   Folding reuses [Rtl_interp.eval_operation], i.e. the exact dynamic
   semantics, so a folded operation is correct by construction (same
   IEEE-754 float results, same total division). Conditions on constant
   arguments turn into unconditional jumps; annotation arguments that
   became constants are rewritten to [RA_cint]/[RA_cfloat], which is how
   constants reach the emitted annotation comments of the paper. *)

module RegMap = Map.Make (Int)

(* Flat lattice: Unknown (bottom, unreached) < constants < Top. *)
type approx =
  | Vtop
  | Vcint of int32
  | Vcfloat of float

let approx_equal (a : approx) (b : approx) : bool =
  match a, b with
  | Vtop, Vtop -> true
  | Vcint x, Vcint y -> Int32.equal x y
  | Vcfloat x, Vcfloat y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | (Vtop | Vcint _ | Vcfloat _), _ -> false

(* Abstract environment: registers absent from the map are Top.
   (Registers never written before use are parameters or garbage; Top is
   the sound default.) *)
type aenv = approx RegMap.t

let get (env : aenv) (r : Rtl.reg) : approx =
  Option.value ~default:Vtop (RegMap.find_opt r env)

let join_approx (a : approx) (b : approx) : approx =
  if approx_equal a b then a else Vtop

let join_env (a : aenv) (b : aenv) : aenv =
  RegMap.merge
    (fun _ x y ->
       match x, y with
       | Some x, Some y -> Some (join_approx x y)
       | Some _, None | None, Some _ | None, None -> Some Vtop)
    a b

let env_equal (a : aenv) (b : aenv) : bool = RegMap.equal approx_equal a b

let value_of_approx (a : approx) : Minic.Value.t option =
  match a with
  | Vcint n -> Some (Minic.Value.Vint n)
  | Vcfloat f -> Some (Minic.Value.Vfloat f)
  | Vtop -> None

let approx_of_value (v : Minic.Value.t) : approx =
  match v with
  | Minic.Value.Vint n -> Vcint n
  | Minic.Value.Vfloat f -> Vcfloat f
  | Minic.Value.Vbool b -> Vcint (if b then 1l else 0l)

(* Abstract evaluation of an operation. *)
let eval_op_abstract (op : Rtl.operation) (args : approx list) : approx =
  let concrete_args =
    List.fold_right
      (fun a acc ->
         match acc, value_of_approx a with
         | Some vs, Some v -> Some (v :: vs)
         | _, _ -> None)
      args (Some [])
  in
  match op, concrete_args with
  | Rtl.Ointconst n, _ -> Vcint n
  | Rtl.Ofloatconst f, _ -> Vcfloat f
  | _, Some vs ->
    (try approx_of_value (Rtl_interp.eval_operation op vs)
     with Rtl_interp.Stuck _ -> Vtop)
  | _, None -> Vtop

(* Abstract evaluation of a condition: Some b when statically decided. *)
let eval_cond_abstract (c : Rtl.condition) (args : approx list) : bool option =
  let concrete =
    List.fold_right
      (fun a acc ->
         match acc, value_of_approx a with
         | Some vs, Some v -> Some (v :: vs)
         | _, _ -> None)
      args (Some [])
  in
  match concrete with
  | Some vs ->
    (try Some (Rtl_interp.eval_condition c vs) with Rtl_interp.Stuck _ -> None)
  | None -> None

let transfer (i : Rtl.instruction) (env : aenv) : aenv =
  match i with
  | Rtl.Iop (op, args, d, _) ->
    RegMap.add d (eval_op_abstract op (List.map (fun r -> get env r) args)) env
  | Rtl.Iload (_, _, _, d, _) | Rtl.Iacq (_, d, _) -> RegMap.add d Vtop env
  | Rtl.Inop _ | Rtl.Istore _ | Rtl.Icond _ | Rtl.Iout _ | Rtl.Iannot _
  | Rtl.Ireturn _ -> env

(* Forward fixpoint: in_env(n) for every reachable node. *)
let analyze (f : Rtl.func) : (Rtl.node, aenv) Hashtbl.t =
  let preds = Rtl.predecessors f in
  let in_env : (Rtl.node, aenv) Hashtbl.t = Hashtbl.create 251 in
  let worklist = Queue.create () in
  let workset = Hashtbl.create 251 in
  let push n =
    if not (Hashtbl.mem workset n) then begin
      Hashtbl.replace workset n ();
      Queue.add n worklist
    end
  in
  List.iter push (Rtl.reverse_postorder f);
  Hashtbl.replace in_env f.Rtl.f_entry RegMap.empty;
  while not (Queue.is_empty worklist) do
    let n = Queue.pop worklist in
    Hashtbl.remove workset n;
    let env_in =
      if n = f.Rtl.f_entry then
        Option.value ~default:RegMap.empty (Hashtbl.find_opt in_env n)
      else
        (* join over predecessors that have been reached *)
        let reached =
          List.filter_map
            (fun p -> Hashtbl.find_opt in_env p |> Option.map (fun e -> (p, e)))
            (Option.value ~default:[] (Hashtbl.find_opt preds n))
        in
        match reached with
        | [] -> RegMap.empty (* unreached; keep bottom-ish empty env *)
        | (p0, e0) :: rest ->
          List.fold_left
            (fun acc (p, e) ->
               ignore p;
               join_env acc (transfer (Rtl.get_instr f p) e))
            (transfer (Rtl.get_instr f p0) e0)
            rest
    in
    let old = Hashtbl.find_opt in_env n in
    let changed =
      match old with
      | None -> true
      | Some o -> not (env_equal o env_in)
    in
    if changed || old = None then begin
      Hashtbl.replace in_env n env_in;
      List.iter push (Rtl.successors (Rtl.get_instr f n))
    end
  done;
  in_env

(* Rewrite the function in place using the analysis results. *)
let transform_func (f : Rtl.func) : unit =
  let in_env = analyze f in
  let nodes = Rtl.reverse_postorder f in
  List.iter
    (fun n ->
       let env =
         Option.value ~default:RegMap.empty (Hashtbl.find_opt in_env n)
       in
       let approx_of r = get env r in
       match Rtl.get_instr f n with
       | Rtl.Iop (op, args, d, s) ->
         let result = eval_op_abstract op (List.map approx_of args) in
         (match result, op with
          | Vcint c, (Rtl.Ointconst _ | Rtl.Ofloatconst _) ->
            ignore c (* already a constant; leave as is *)
          | Vcint c, _ ->
            Rtl.set_instr f n (Rtl.Iop (Rtl.Ointconst c, [], d, s))
          | Vcfloat c, Rtl.Ofloatconst _ -> ignore c
          | Vcfloat c, _ ->
            Rtl.set_instr f n (Rtl.Iop (Rtl.Ofloatconst c, [], d, s))
          | Vtop, _ ->
            (* strength reduction: add/sub with one constant arg *)
            (match op, args with
             | Rtl.Oadd, [ a; b ] ->
               (match approx_of a, approx_of b with
                | Vcint c, _ when Int32.abs c < 32000l ->
                  Rtl.set_instr f n (Rtl.Iop (Rtl.Oaddimm c, [ b ], d, s))
                | _, Vcint c when Int32.abs c < 32000l ->
                  Rtl.set_instr f n (Rtl.Iop (Rtl.Oaddimm c, [ a ], d, s))
                | _, _ -> ())
             | Rtl.Osub, [ a; b ] ->
               (match approx_of b with
                | Vcint c when Int32.abs c < 32000l ->
                  Rtl.set_instr f n
                    (Rtl.Iop (Rtl.Oaddimm (Int32.neg c), [ a ], d, s))
                | _ -> ())
             | _, _ -> ()))
       | Rtl.Icond (c, args, s1, s2) ->
         (match eval_cond_abstract c (List.map approx_of args) with
          | Some true -> Rtl.set_instr f n (Rtl.Inop s1)
          | Some false -> Rtl.set_instr f n (Rtl.Inop s2)
          | None -> ())
       | Rtl.Iannot (text, aargs, s) ->
         let aargs' =
           List.map
             (fun a ->
                match a with
                | Rtl.RA_reg r ->
                  (match approx_of r with
                   | Vcint c -> Rtl.RA_cint c
                   | Vcfloat c -> Rtl.RA_cfloat c
                   | Vtop -> a)
                | Rtl.RA_cint _ | Rtl.RA_cfloat _ -> a)
             aargs
         in
         Rtl.set_instr f n (Rtl.Iannot (text, aargs', s))
       | Rtl.Inop _ | Rtl.Iload _ | Rtl.Istore _ | Rtl.Iacq _ | Rtl.Iout _
       | Rtl.Ireturn _ -> ())
    nodes

let transform (p : Rtl.program) : Rtl.program =
  List.iter transform_func p.Rtl.p_funcs;
  p
