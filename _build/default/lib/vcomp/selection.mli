(** Instruction selection: mini-C to RTL control-flow graphs (CompCert
    RTLgen style, backwards construction). Expressions evaluate
    strictly left-to-right (fixing the order of volatile reads);
    conditional expressions compile to branches (lazy), matching the
    reference interpreter. *)

exception Error of string

val trans_func : Minic.Ast.program -> Minic.Ast.func -> Rtl.func
val trans_program : Minic.Ast.program -> Rtl.program
