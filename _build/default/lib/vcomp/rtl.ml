(* RTL: register transfer language, the optimization IR of the
   verified-style compiler, closely following CompCert's RTL.

   A function is a control-flow graph whose nodes each carry one
   instruction and the index of their successor(s). Values live in an
   unbounded supply of typed pseudo-registers; booleans are represented
   as the integers 0/1 (machine view). Optimization passes are CFG
   transformations; register allocation maps pseudo-registers to machine
   registers or stack slots. *)

type reg = int
type node = int

(* Register class: which bank a pseudo-register will be allocated to. *)
type mclass =
  | Cint
  | Cfloat

type operation =
  | Omove
  | Ointconst of int32
  | Ofloatconst of float
  | Oadd
  | Osub
  | Omul
  | Odivs            (* signed division, total per Minic.Value.div32 *)
  | Omods
  | Oand
  | Oor
  | Oxor
  | Oshl
  | Oshr
  | Oshlimm of int   (* shift left by compile-time constant *)
  | Oaddimm of int32
  | Oneg
  | Onotbool         (* 0/1 -> 1/0 *)
  | Ofadd
  | Ofsub
  | Ofmul
  | Ofdiv
  | Ofneg
  | Ofabs
  | Ofloatofint
  | Ointoffloat
  | Ocmp of Minic.Ast.comparison   (* int x int -> 0/1 *)
  | Ofcmp of Minic.Ast.comparison  (* float x float -> 0/1 *)

type condition =
  | Ccomp of Minic.Ast.comparison      (* two int args *)
  | Ccompimm of Minic.Ast.comparison * int32 (* one int arg vs immediate *)
  | Cfcomp of Minic.Ast.comparison     (* two float args *)

type chunk =
  | Mint32
  | Mfloat64

(* Addressing modes for RTL memory accesses. *)
type addressing =
  | ADglob of string           (* global scalar; no register argument *)
  | ADarr of string            (* array base + one byte-offset register *)

(* Annotation argument before location assignment. *)
type annot_arg =
  | RA_reg of reg
  | RA_cint of int32
  | RA_cfloat of float

type instruction =
  | Inop of node
  | Iop of operation * reg list * reg * node
  | Iload of chunk * addressing * reg list * reg * node
  | Istore of chunk * addressing * reg list * reg * node
  | Icond of condition * reg list * node * node  (* if-so, if-not *)
  | Iacq of string * reg * node      (* volatile signal acquisition *)
  | Iout of string * reg * node      (* volatile actuator write *)
  | Iannot of string * annot_arg list * node
  | Ireturn of reg option

type func = {
  f_name : string;
  f_params : (reg * mclass) list;
  f_ret : Minic.Ast.typ option;  (* source return type, for the EABI *)
  f_entry : node;
  f_code : (node, instruction) Hashtbl.t;
  f_classes : (reg, mclass) Hashtbl.t;
  mutable f_next_reg : reg;
  mutable f_next_node : node;
}

let create_func (name : string) (ret : Minic.Ast.typ option) : func =
  { f_name = name;
    f_params = [];
    f_ret = ret;
    f_entry = 0;
    f_code = Hashtbl.create 251;
    f_classes = Hashtbl.create 251;
    f_next_reg = 1;
    f_next_node = 1 }

let fresh_reg (f : func) (c : mclass) : reg =
  let r = f.f_next_reg in
  f.f_next_reg <- r + 1;
  Hashtbl.replace f.f_classes r c;
  r

let reg_class (f : func) (r : reg) : mclass =
  match Hashtbl.find_opt f.f_classes r with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Rtl.reg_class: unknown register %d" r)

let class_of_typ (t : Minic.Ast.typ) : mclass =
  match t with
  | Minic.Ast.Tint | Minic.Ast.Tbool -> Cint
  | Minic.Ast.Tfloat -> Cfloat

(* Add an instruction on a fresh node; returns the node index. *)
let add_instr (f : func) (i : instruction) : node =
  let n = f.f_next_node in
  f.f_next_node <- n + 1;
  Hashtbl.replace f.f_code n i;
  n

let set_instr (f : func) (n : node) (i : instruction) : unit =
  Hashtbl.replace f.f_code n i

let get_instr (f : func) (n : node) : instruction =
  match Hashtbl.find_opt f.f_code n with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Rtl.get_instr: no node %d" n)

let successors (i : instruction) : node list =
  match i with
  | Inop s
  | Iop (_, _, _, s)
  | Iload (_, _, _, _, s)
  | Istore (_, _, _, _, s)
  | Iacq (_, _, s)
  | Iout (_, _, s)
  | Iannot (_, _, s) -> [ s ]
  | Icond (_, _, s1, s2) -> [ s1; s2 ]
  | Ireturn _ -> []

(* Registers used (read) by an instruction. *)
let instr_uses (i : instruction) : reg list =
  match i with
  | Inop _ -> []
  | Iop (_, args, _, _) -> args
  | Iload (_, _, args, _, _) -> args
  | Istore (_, _, args, src, _) -> src :: args
  | Icond (_, args, _, _) -> args
  | Iacq (_, _, _) -> []
  | Iout (_, src, _) -> [ src ]
  | Iannot (_, args, _) ->
    List.filter_map
      (fun a -> match a with RA_reg r -> Some r | RA_cint _ | RA_cfloat _ -> None)
      args
  | Ireturn (Some r) -> [ r ]
  | Ireturn None -> []

(* Register defined (written) by an instruction, if any. *)
let instr_def (i : instruction) : reg option =
  match i with
  | Iop (_, _, d, _) | Iload (_, _, _, d, _) | Iacq (_, d, _) -> Some d
  | Inop _ | Istore _ | Icond _ | Iout _ | Iannot _ | Ireturn _ -> None

(* Does the instruction have an effect beyond defining its destination?
   Such instructions are never removed by dead-code elimination. *)
let has_effect (i : instruction) : bool =
  match i with
  | Istore _ | Iacq _ | Iout _ | Iannot _ | Ireturn _ -> true
  | Inop _ | Iop _ | Iload _ | Icond _ -> false

(* All nodes reachable from the entry, in reverse postorder. *)
let reverse_postorder (f : func) : node list =
  let visited = Hashtbl.create 251 in
  let order = ref [] in
  let rec dfs (n : node) : unit =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter dfs (successors (get_instr f n));
      order := n :: !order
    end
  in
  dfs f.f_entry;
  !order

(* Predecessor map over reachable nodes. *)
let predecessors (f : func) : (node, node list) Hashtbl.t =
  let preds = Hashtbl.create 251 in
  let nodes = reverse_postorder f in
  List.iter (fun n -> Hashtbl.replace preds n []) nodes;
  List.iter
    (fun n ->
       List.iter
         (fun s ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt preds s) in
            Hashtbl.replace preds s (n :: cur))
         (successors (get_instr f n)))
    nodes;
  preds

type program = {
  p_source : Minic.Ast.program; (* globals / arrays / volatiles context *)
  p_funcs : func list;
  p_main : string;
}

(* -- printing, for debug dumps ------------------------------------- *)

let string_of_comparison (c : Minic.Ast.comparison) : string =
  match c with
  | Minic.Ast.Ceq -> "eq"
  | Minic.Ast.Cne -> "ne"
  | Minic.Ast.Clt -> "lt"
  | Minic.Ast.Cle -> "le"
  | Minic.Ast.Cgt -> "gt"
  | Minic.Ast.Cge -> "ge"

let string_of_operation (op : operation) : string =
  match op with
  | Omove -> "move"
  | Ointconst n -> Printf.sprintf "intconst %ld" n
  | Ofloatconst f -> Printf.sprintf "floatconst %h" f
  | Oadd -> "add" | Osub -> "sub" | Omul -> "mul" | Odivs -> "divs"
  | Omods -> "mods" | Oand -> "and" | Oor -> "or" | Oxor -> "xor"
  | Oshl -> "shl" | Oshr -> "shr"
  | Oshlimm k -> Printf.sprintf "shlimm %d" k
  | Oaddimm k -> Printf.sprintf "addimm %ld" k
  | Oneg -> "neg" | Onotbool -> "notbool"
  | Ofadd -> "fadd" | Ofsub -> "fsub" | Ofmul -> "fmul" | Ofdiv -> "fdiv"
  | Ofneg -> "fneg" | Ofabs -> "fabs"
  | Ofloatofint -> "floatofint" | Ointoffloat -> "intoffloat"
  | Ocmp c -> "cmp " ^ string_of_comparison c
  | Ofcmp c -> "fcmp " ^ string_of_comparison c

let string_of_instruction (i : instruction) : string =
  let regs rs = String.concat ", " (List.map (Printf.sprintf "x%d") rs) in
  match i with
  | Inop s -> Printf.sprintf "nop -> %d" s
  | Iop (op, args, d, s) ->
    Printf.sprintf "x%d = %s(%s) -> %d" d (string_of_operation op) (regs args) s
  | Iload (_, ADglob g, _, d, s) -> Printf.sprintf "x%d = load %s -> %d" d g s
  | Iload (_, ADarr g, args, d, s) ->
    Printf.sprintf "x%d = load %s[%s] -> %d" d g (regs args) s
  | Istore (_, ADglob g, _, src, s) ->
    Printf.sprintf "store %s = x%d -> %d" g src s
  | Istore (_, ADarr g, args, src, s) ->
    Printf.sprintf "store %s[%s] = x%d -> %d" g (regs args) src s
  | Icond (_, args, s1, s2) ->
    Printf.sprintf "cond(%s) -> %d | %d" (regs args) s1 s2
  | Iacq (x, d, s) -> Printf.sprintf "x%d = acquire %s -> %d" d x s
  | Iout (x, src, s) -> Printf.sprintf "out %s = x%d -> %d" x src s
  | Iannot (text, _, s) -> Printf.sprintf "annot %S -> %d" text s
  | Ireturn None -> "return"
  | Ireturn (Some r) -> Printf.sprintf "return x%d" r

let dump_func (f : func) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "function %s (entry %d)\n" f.f_name f.f_entry);
  List.iter
    (fun n ->
       Buffer.add_string buf
         (Printf.sprintf "  %4d: %s\n" n (string_of_instruction (get_instr f n))))
    (reverse_postorder f);
  Buffer.contents buf

(* Deep copy of a function's code graph, used by the per-pass validators
   to snapshot the IR before a transformation runs in place. *)
let copy_func (f : func) : func =
  { f with f_code = Hashtbl.copy f.f_code; f_classes = Hashtbl.copy f.f_classes }

let copy_program (p : program) : program =
  { p with p_funcs = List.map copy_func p.p_funcs }
