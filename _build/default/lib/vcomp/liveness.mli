(** Liveness analysis over RTL: backward dataflow computing, per node,
    the pseudo-registers live after the instruction. Used by dead-code
    elimination and the interference graph construction. *)

module RegSet : Set.S with type elt = int

type t = (Rtl.node, RegSet.t) Hashtbl.t

val live_before : Rtl.instruction -> RegSet.t -> RegSet.t
val analyze : Rtl.func -> t
val live_after : t -> Rtl.node -> RegSet.t

val analyze_naive : Rtl.func -> t
(** Global fixpoint without a worklist; property tests compare it with
    {!analyze}. *)
