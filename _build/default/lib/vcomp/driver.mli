(** Compilation driver of the verified-style compiler ("vcomp",
    standing in for CompCert 1.7): selection, constant propagation,
    CSE, dead-code elimination, graph-coloring register allocation,
    linearization, emission. Optimizations run under their translation
    validators unless disabled. *)

type options = {
  opt_constprop : bool;
  opt_cse : bool;
  opt_deadcode : bool;
  opt_validate : bool;
      (** run the per-pass differential validators (raises
          {!Validate.Validation_failed} on any behaviour change) *)
}

val default_options : options
(** All optimizations and validation on. *)

val no_constprop : options
val no_cse : options
val no_validation : options

val compile : ?options:options -> Minic.Ast.program -> Target.Asm.program
(** Type-check and compile.
    @raise Invalid_argument on ill-typed programs;
    @raise Validate.Validation_failed if a validator rejects a pass;
    @raise Asmgen.Error if the register-allocation checker rejects. *)

val compile_with_rtl :
  ?options:options -> Minic.Ast.program -> Rtl.program * Target.Asm.program
(** Also return the optimized RTL, for inspection and tests. *)
