(** Linearization of allocated RTL into target assembly: reverse-
    postorder layout with fall-through edges, spill reloads through
    reserved scratch registers, NaN-correct float-comparison branch
    emission, parallel entry moves, and the register-allocation
    validator run on every function. *)

exception Error of string

val translate_func : Rtl.func -> Target.Asm.func
(** @raise Error when the register-allocation validator rejects. *)

val translate_program : Rtl.program -> Target.Asm.program
