(** Register allocation by graph coloring (Chaitin–Briggs with
    conservative move coalescing) — the optimization the paper singles
    out as CompCert's main gain over the pattern process. Integer and
    float pseudo-registers are colored separately against the EABI
    allocatable banks; uncolorable nodes spill to frame slots. *)

module RegSet = Liveness.RegSet

type loc =
  | Lireg of Target.Asm.ireg
  | Lfreg of Target.Asm.freg
  | Lslot of int  (** index of an 8-byte spill slot in the frame *)

type allocation = (Rtl.reg, loc) Hashtbl.t

val loc_equal : loc -> loc -> bool

type graph = {
  g_adj : (Rtl.reg, RegSet.t) Hashtbl.t;
  g_uses : (Rtl.reg, int) Hashtbl.t;
  g_moves : (Rtl.reg * Rtl.reg) list;
}

val build_graph : Rtl.func -> graph

type result = {
  ra_alloc : allocation;
  ra_nslots : int;
  ra_graph : graph;
}

val allocate : Rtl.func -> result
val location : result -> Rtl.reg -> loc

val verify : Rtl.func -> result -> (unit, string) Result.t
(** Independent structural validator: recomputes liveness and checks
    that no two simultaneously-live pseudo-registers share a location.
    Rejects deliberately corrupted allocations (mutation-tested). *)
