(* Register allocation by graph coloring (Chaitin–Briggs with
   conservative move coalescing), the optimization the paper singles out
   as the main source of CompCert's gains over the pattern-based
   compile: wires between SCADE symbols stay in registers instead of
   making the stack-frame round trip of Listing 1.

   The allocator colors integer and float pseudo-registers separately
   against the EABI allocatable banks of [Target.Asm]. Pseudo-registers
   that cannot be colored are spilled to dedicated stack slots; the
   assembly generator reloads them through reserved scratch registers.

   [verify] is the structural half of the translation validator: it
   rechecks, independently of how the coloring was obtained, that no two
   simultaneously-live pseudo-registers share a location. *)

module RegSet = Liveness.RegSet
module RegMap = Map.Make (Int)

type loc =
  | Lireg of Target.Asm.ireg
  | Lfreg of Target.Asm.freg
  | Lslot of int (* index of an 8-byte spill slot in the frame *)

type allocation = (Rtl.reg, loc) Hashtbl.t

let loc_equal (a : loc) (b : loc) : bool =
  match a, b with
  | Lireg x, Lireg y | Lfreg x, Lfreg y | Lslot x, Lslot y -> x = y
  | (Lireg _ | Lfreg _ | Lslot _), _ -> false

(* ---- interference graph ------------------------------------------ *)

type graph = {
  g_adj : (Rtl.reg, RegSet.t) Hashtbl.t;
  g_uses : (Rtl.reg, int) Hashtbl.t;   (* occurrence count, for spill cost *)
  g_moves : (Rtl.reg * Rtl.reg) list;  (* move-related pairs, same class *)
}

let adj (g : graph) (r : Rtl.reg) : RegSet.t =
  Option.value ~default:RegSet.empty (Hashtbl.find_opt g.g_adj r)

let add_node (g : graph) (r : Rtl.reg) : unit =
  if not (Hashtbl.mem g.g_adj r) then Hashtbl.replace g.g_adj r RegSet.empty

let add_edge (g : graph) (a : Rtl.reg) (b : Rtl.reg) : unit =
  if a <> b then begin
    Hashtbl.replace g.g_adj a (RegSet.add b (adj g a));
    Hashtbl.replace g.g_adj b (RegSet.add a (adj g b))
  end

let count_use (g : graph) (r : Rtl.reg) : unit =
  Hashtbl.replace g.g_uses r
    (1 + Option.value ~default:0 (Hashtbl.find_opt g.g_uses r))

let build_graph (f : Rtl.func) : graph =
  let lv = Liveness.analyze f in
  let g =
    { g_adj = Hashtbl.create 251;
      g_uses = Hashtbl.create 251;
      g_moves = [] }
  in
  let moves = ref [] in
  (* ensure every mentioned register is a node *)
  List.iter (fun (r, _) -> add_node g r) f.Rtl.f_params;
  List.iter
    (fun n ->
       let i = Rtl.get_instr f n in
       List.iter
         (fun r ->
            add_node g r;
            count_use g r)
         (Rtl.instr_uses i);
       (match Rtl.instr_def i with
        | Some d ->
          add_node g d;
          count_use g d;
          let live = Liveness.live_after lv n in
          let exclude =
            match i with
            | Rtl.Iop (Rtl.Omove, [ s ], _, _) ->
              if Rtl.reg_class f s = Rtl.reg_class f d then
                moves := (d, s) :: !moves;
              RegSet.of_list [ d; s ]
            | _ -> RegSet.singleton d
          in
          RegSet.iter
            (fun r ->
               if not (RegSet.mem r exclude)
               && Rtl.reg_class f r = Rtl.reg_class f d then add_edge g d r)
            live
        | None -> ()))
    (Rtl.reverse_postorder f);
  (* parameters interfere with each other (they arrive simultaneously) *)
  let rec pairs = function
    | [] -> ()
    | (a, ca) :: rest ->
      List.iter (fun (b, cb) -> if ca = cb then add_edge g a b) rest;
      pairs rest
  in
  pairs f.Rtl.f_params;
  { g with g_moves = !moves }

(* ---- coalescing ---------------------------------------------------- *)

(* Union-find over registers for coalesced move webs. *)
type uf = (Rtl.reg, Rtl.reg) Hashtbl.t

let rec uf_find (u : uf) (r : Rtl.reg) : Rtl.reg =
  match Hashtbl.find_opt u r with
  | None -> r
  | Some p ->
    let root = uf_find u p in
    Hashtbl.replace u r root;
    root

(* Conservative (Briggs) coalescing: merge the ends of a move if the
   merged node would have fewer than K neighbors of significant degree. *)
let coalesce (g : graph) (f : Rtl.func) (kof : Rtl.mclass -> int) : uf =
  let u : uf = Hashtbl.create 61 in
  let merged_adj = Hashtbl.create 251 in
  let madj r =
    match Hashtbl.find_opt merged_adj r with
    | Some s -> s
    | None -> adj g r
  in
  List.iter
    (fun (d, s) ->
       let rd = uf_find u d and rs = uf_find u s in
       if rd <> rs then begin
         let nd = madj rd and ns = madj rs in
         if not (RegSet.mem rs nd) then begin
           let k = kof (Rtl.reg_class f d) in
           let combined = RegSet.union nd ns in
           let significant =
             RegSet.fold
               (fun n acc ->
                  if RegSet.cardinal (madj n) >= k then acc + 1 else acc)
               combined 0
           in
           if significant < k then begin
             (* merge rs into rd *)
             Hashtbl.replace u rs rd;
             Hashtbl.replace merged_adj rd combined;
             (* update neighbors to see rd instead of rs *)
             RegSet.iter
               (fun n ->
                  let na = madj n in
                  Hashtbl.replace merged_adj n (RegSet.add rd (RegSet.remove rs na)))
               ns
           end
         end
       end)
    g.g_moves;
  u

(* ---- coloring ------------------------------------------------------ *)

let color_class (f : Rtl.func) (g : graph) (u : uf) (cls : Rtl.mclass)
    (palette : int list) (alloc : allocation) (next_slot : int ref) : unit =
  let k = List.length palette in
  (* representative nodes of this class *)
  let nodes =
    Hashtbl.fold
      (fun r _ acc ->
         if Rtl.reg_class f r = cls && uf_find u r = r then RegSet.add r acc
         else acc)
      g.g_adj RegSet.empty
  in
  (* adjacency among representatives *)
  let radj = Hashtbl.create 251 in
  RegSet.iter
    (fun r ->
       Hashtbl.replace radj r RegSet.empty)
    nodes;
  Hashtbl.iter
    (fun r ns ->
       if Rtl.reg_class f r = cls then begin
         let rr = uf_find u r in
         RegSet.iter
           (fun n ->
              if Rtl.reg_class f n = cls then begin
                let rn = uf_find u n in
                if rr <> rn then begin
                  Hashtbl.replace radj rr
                    (RegSet.add rn
                       (Option.value ~default:RegSet.empty
                          (Hashtbl.find_opt radj rr)));
                  Hashtbl.replace radj rn
                    (RegSet.add rr
                       (Option.value ~default:RegSet.empty
                          (Hashtbl.find_opt radj rn)))
                end
              end)
           ns
       end)
    g.g_adj;
  let degree = Hashtbl.create 251 in
  RegSet.iter
    (fun r ->
       Hashtbl.replace degree r
         (RegSet.cardinal
            (Option.value ~default:RegSet.empty (Hashtbl.find_opt radj r))))
    nodes;
  let removed = Hashtbl.create 251 in
  let stack = ref [] in
  let remaining = ref (RegSet.cardinal nodes) in
  let deg r = Option.value ~default:0 (Hashtbl.find_opt degree r) in
  let spill_cost (r : Rtl.reg) : float =
    let uses =
      float_of_int (1 + Option.value ~default:0 (Hashtbl.find_opt g.g_uses r))
    in
    uses /. float_of_int (1 + deg r)
  in
  (* Simplify worklist: nodes of insignificant degree; when it dries up,
     optimistically remove the cheapest potential spill. *)
  let low = Queue.create () in
  RegSet.iter (fun r -> if deg r < k then Queue.add r low) nodes;
  let remove_node (r : Rtl.reg) : unit =
    Hashtbl.replace removed r ();
    stack := r :: !stack;
    decr remaining;
    RegSet.iter
      (fun n ->
         if not (Hashtbl.mem removed n) then begin
           let d = deg n in
           Hashtbl.replace degree n (d - 1);
           if d = k then Queue.add n low
         end)
      (Option.value ~default:RegSet.empty (Hashtbl.find_opt radj r))
  in
  while !remaining > 0 do
    let rec pop_low () : Rtl.reg option =
      if Queue.is_empty low then None
      else
        let r = Queue.pop low in
        if Hashtbl.mem removed r then pop_low () else Some r
    in
    match pop_low () with
    | Some r -> remove_node r
    | None ->
      (* no trivially colorable node: pick the cheapest potential spill *)
      let candidate =
        RegSet.fold
          (fun r acc ->
             if Hashtbl.mem removed r then acc
             else
               match acc with
               | Some best when spill_cost best <= spill_cost r -> acc
               | Some _ | None -> Some r)
          nodes None
      in
      (match candidate with
       | Some r -> remove_node r
       | None -> remaining := 0)
  done;
  (* pop and assign colors *)
  let color = Hashtbl.create 251 in
  List.iter
    (fun r ->
       let neighbor_colors =
         RegSet.fold
           (fun n acc ->
              match Hashtbl.find_opt color n with
              | Some c -> c :: acc
              | None -> acc)
           (Option.value ~default:RegSet.empty (Hashtbl.find_opt radj r))
           []
       in
       match List.find_opt (fun c -> not (List.mem c neighbor_colors)) palette with
       | Some c -> Hashtbl.replace color r c
       | None ->
         (* actual spill: a fresh frame slot *)
         let s = !next_slot in
         incr next_slot;
         Hashtbl.replace color r (-1 - s))
    !stack;
  (* write out locations for all registers of the class *)
  Hashtbl.iter
    (fun r _ ->
       if Rtl.reg_class f r = cls then begin
         let rep = uf_find u r in
         match Hashtbl.find_opt color rep with
         | Some c when c >= 0 ->
           Hashtbl.replace alloc r
             (match cls with
              | Rtl.Cint -> Lireg c
              | Rtl.Cfloat -> Lfreg c)
         | Some c -> Hashtbl.replace alloc r (Lslot (-1 - c))
         | None ->
           (* node never appeared (dead register): any location works *)
           Hashtbl.replace alloc r
             (match cls with
              | Rtl.Cint -> Lireg (List.hd palette)
              | Rtl.Cfloat -> Lfreg (List.hd palette))
       end)
    g.g_adj

type result = {
  ra_alloc : allocation;
  ra_nslots : int;
  ra_graph : graph;
}

let allocate (f : Rtl.func) : result =
  let g = build_graph f in
  let kof (c : Rtl.mclass) : int =
    match c with
    | Rtl.Cint -> List.length Target.Asm.allocatable_iregs
    | Rtl.Cfloat -> List.length Target.Asm.allocatable_fregs
  in
  let u = coalesce g f kof in
  let alloc : allocation = Hashtbl.create 251 in
  let next_slot = ref 0 in
  color_class f g u Rtl.Cint Target.Asm.allocatable_iregs alloc next_slot;
  color_class f g u Rtl.Cfloat Target.Asm.allocatable_fregs alloc next_slot;
  { ra_alloc = alloc; ra_nslots = !next_slot; ra_graph = g }

let location (res : result) (r : Rtl.reg) : loc =
  match Hashtbl.find_opt res.ra_alloc r with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Regalloc.location: x%d unallocated" r)

(* ---- validation ---------------------------------------------------- *)

(* Independent check: rebuild liveness and verify that interfering
   registers (by the same construction rule as [build_graph]) never
   share a location. A deliberately corrupted allocation must be
   rejected — the test suite checks this by mutation. *)
let verify (f : Rtl.func) (res : result) : (unit, string) Result.t =
  let lv = Liveness.analyze f in
  let bad = ref None in
  List.iter
    (fun n ->
       let i = Rtl.get_instr f n in
       match Rtl.instr_def i with
       | Some d ->
         let live = Liveness.live_after lv n in
         let exclude =
           match i with
           | Rtl.Iop (Rtl.Omove, [ s ], _, _) -> RegSet.of_list [ d; s ]
           | _ -> RegSet.singleton d
         in
         RegSet.iter
           (fun r ->
              if (not (RegSet.mem r exclude))
              && Rtl.reg_class f r = Rtl.reg_class f d
              && loc_equal (location res r) (location res d)
              && !bad = None then
                bad :=
                  Some
                    (Printf.sprintf
                       "node %d: x%d and x%d are simultaneously live in the same location"
                       n d r))
           live
       | None -> ())
    (Rtl.reverse_postorder f);
  match !bad with
  | None -> Ok ()
  | Some msg -> Error msg
