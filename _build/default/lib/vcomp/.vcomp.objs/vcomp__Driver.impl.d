lib/vcomp/driver.ml: Asmgen Constprop Cse Deadcode Minic Rtl Selection Target Validate
