lib/vcomp/rtl.ml: Buffer Hashtbl List Minic Option Printf String
