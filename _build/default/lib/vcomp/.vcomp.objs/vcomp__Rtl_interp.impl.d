lib/vcomp/rtl_interp.ml: Array Float Format Hashtbl Int32 List Minic Option Rtl String
