lib/vcomp/asmgen.mli: Rtl Target
