lib/vcomp/constprop.ml: Hashtbl Int Int32 Int64 List Map Minic Option Queue Rtl Rtl_interp
