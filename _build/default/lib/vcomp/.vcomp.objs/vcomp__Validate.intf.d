lib/vcomp/validate.mli: Minic Rtl
