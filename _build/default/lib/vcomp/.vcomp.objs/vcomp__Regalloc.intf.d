lib/vcomp/regalloc.mli: Hashtbl Liveness Result Rtl Target
