lib/vcomp/deadcode.ml: List Liveness Rtl
