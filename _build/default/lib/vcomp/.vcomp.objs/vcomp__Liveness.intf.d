lib/vcomp/liveness.mli: Hashtbl Rtl Set
