lib/vcomp/cse.ml: Hashtbl Int64 List Rtl
