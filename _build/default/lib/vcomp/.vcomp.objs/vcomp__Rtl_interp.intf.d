lib/vcomp/rtl_interp.mli: Minic Rtl
