lib/vcomp/regalloc.ml: Hashtbl Int List Liveness Map Option Printf Queue Result Rtl Target
