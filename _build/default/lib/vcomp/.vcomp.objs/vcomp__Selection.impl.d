lib/vcomp/selection.ml: Format Hashtbl List Minic Rtl String
