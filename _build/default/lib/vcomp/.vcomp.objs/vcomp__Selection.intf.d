lib/vcomp/selection.mli: Minic Rtl
