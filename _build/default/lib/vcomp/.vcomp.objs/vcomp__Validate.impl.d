lib/vcomp/validate.ml: Format List Minic Result Rtl Rtl_interp String
