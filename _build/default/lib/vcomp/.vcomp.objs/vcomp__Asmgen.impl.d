lib/vcomp/asmgen.ml: Array Format Hashtbl Int32 List Minic Regalloc Rtl Target
