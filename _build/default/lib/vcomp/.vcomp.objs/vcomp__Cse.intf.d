lib/vcomp/cse.mli: Rtl
