lib/vcomp/liveness.ml: Hashtbl Int List Option Queue Rtl Set
