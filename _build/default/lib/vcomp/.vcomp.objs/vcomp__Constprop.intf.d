lib/vcomp/constprop.mli: Rtl
