lib/vcomp/deadcode.mli: Rtl
