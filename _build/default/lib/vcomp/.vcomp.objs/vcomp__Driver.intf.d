lib/vcomp/driver.mli: Minic Rtl Target
