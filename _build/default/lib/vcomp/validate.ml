(* Per-pass translation validation.

   CompCert's guarantee is a Coq proof of semantic preservation per
   pass; the practical substitute implemented here (and discussed in the
   paper's section 4 as "verified translation validation") re-checks
   each compilation run:

   - [check_pass]: the RTL before and after a transformation must
     produce identical observable behaviour on a battery of input
     worlds, exercised through the RTL reference interpreter;
   - the register-allocation structural validator lives in
     [Regalloc.verify] and runs inside [Asmgen];
   - whole-chain validation (source interpreter vs machine simulator)
     lives in [Fcstack.Chain] and the test suite.

   A validation failure raises: a miscompilation must abort the build,
   never ship. *)

exception Validation_failed of string

let fail fmt = Format.kasprintf (fun s -> raise (Validation_failed s)) fmt

(* Zero argument values for a function's parameters, used to invoke
   functions uniformly during validation. *)
let zero_args (f : Rtl.func) : Minic.Value.t list =
  List.map
    (fun (_, c) ->
       match c with
       | Rtl.Cint -> Minic.Value.Vint 0l
       | Rtl.Cfloat -> Minic.Value.Vfloat 0.0)
    f.Rtl.f_params

(* Battery of deterministic worlds exercising different input regimes. *)
let worlds () : (string * Minic.Interp.world) list =
  [ ("zero", Minic.Interp.constant_world 0.0);
    ("one", Minic.Interp.constant_world 1.0);
    ("neg", Minic.Interp.constant_world (-3.5));
    ("seed1", Minic.Interp.seeded_world ~seed:1 ());
    ("seed2", Minic.Interp.seeded_world ~seed:2 ()) ]

let run_rtl (p : Rtl.program) (f : Rtl.func) (w : Minic.Interp.world) :
  (Minic.Interp.result, string) Result.t =
  try Ok (Rtl_interp.run ~fuel:400_000 p ~fname:f.Rtl.f_name w (zero_args f))
  with
  | Rtl_interp.Stuck msg -> Error ("stuck: " ^ msg)
  | Minic.Value.Type_error msg -> Error ("type error: " ^ msg)

(* Check that transformation [pass] applied to [prog] preserved the
   observable behaviour of every function. [before] is a deep copy
   snapshot taken before the in-place transformation. *)
let check_pass ~(pass : string) ~(before : Rtl.program) ~(after : Rtl.program) :
  unit =
  List.iter2
    (fun fb fa ->
       List.iter
         (fun (wname, w) ->
            let rb = run_rtl before fb w in
            let ra = run_rtl after fa w in
            match rb, ra with
            | Ok rb, Ok ra ->
              if not (Minic.Interp.result_equal rb ra) then
                fail
                  "pass %s changed the behaviour of %s on world %s:@,\
                   before: %a@,after: %a"
                  pass fb.Rtl.f_name wname Minic.Interp.pp_result rb
                  Minic.Interp.pp_result ra
            | Error e1, Error e2 ->
              if not (String.equal e1 e2) then
                fail "pass %s changed the failure of %s on world %s: %s vs %s"
                  pass fb.Rtl.f_name wname e1 e2
            | Ok _, Error e ->
              fail "pass %s broke %s on world %s: %s" pass fb.Rtl.f_name wname e
            | Error e, Ok _ ->
              fail "pass %s fixed a failure of %s on world %s (%s): suspicious"
                pass fb.Rtl.f_name wname e)
         (worlds ()))
    before.Rtl.p_funcs after.Rtl.p_funcs
