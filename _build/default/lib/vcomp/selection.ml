(* Instruction selection: translation from mini-C abstract syntax to RTL
   control-flow graphs, in the style of CompCert's RTLgen pass.

   The CFG is built backwards: [trans_expr env e dest k] returns the
   entry node of a code fragment that evaluates [e] into pseudo-register
   [dest] and continues at node [k]. Expressions are evaluated strictly
   left-to-right, which fixes the order of volatile reads; conditional
   expressions compile to branches (lazy), matching the reference
   interpreter. *)

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type env = {
  env_prog : Minic.Ast.program;
  env_func : Rtl.func;
  env_vars : (string, Rtl.reg) Hashtbl.t; (* local -> pseudo-register *)
}

let var_reg (env : env) (x : string) : Rtl.reg =
  match Hashtbl.find_opt env.env_vars x with
  | Some r -> r
  | None -> fail "unbound variable %s" x

let global_typ (env : env) (x : string) : Minic.Ast.typ =
  match List.assoc_opt x env.env_prog.Minic.Ast.prog_globals with
  | Some t -> t
  | None -> fail "unbound global %s" x

let array_def (env : env) (x : string) : Minic.Ast.array_def =
  match
    List.find_opt
      (fun a -> String.equal a.Minic.Ast.arr_name x)
      env.env_prog.Minic.Ast.prog_arrays
  with
  | Some a -> a
  | None -> fail "unbound array %s" x

let chunk_of_typ (t : Minic.Ast.typ) : Rtl.chunk =
  match t with
  | Minic.Ast.Tint | Minic.Ast.Tbool -> Rtl.Mint32
  | Minic.Ast.Tfloat -> Rtl.Mfloat64

let shift_of_typ (t : Minic.Ast.typ) : int =
  match t with
  | Minic.Ast.Tint | Minic.Ast.Tbool -> 2
  | Minic.Ast.Tfloat -> 3

(* Machine-view RTL operation of a mini-C binary operator. *)
let op_of_binop (op : Minic.Ast.binop) : Rtl.operation =
  match op with
  | Minic.Ast.Oadd -> Rtl.Oadd
  | Minic.Ast.Osub -> Rtl.Osub
  | Minic.Ast.Omul -> Rtl.Omul
  | Minic.Ast.Odiv -> Rtl.Odivs
  | Minic.Ast.Omod -> Rtl.Omods
  | Minic.Ast.Oand -> Rtl.Oand
  | Minic.Ast.Oor -> Rtl.Oor
  | Minic.Ast.Oxor -> Rtl.Oxor
  | Minic.Ast.Oshl -> Rtl.Oshl
  | Minic.Ast.Oshr -> Rtl.Oshr
  | Minic.Ast.Ofadd -> Rtl.Ofadd
  | Minic.Ast.Ofsub -> Rtl.Ofsub
  | Minic.Ast.Ofmul -> Rtl.Ofmul
  | Minic.Ast.Ofdiv -> Rtl.Ofdiv
  | Minic.Ast.Ocmp c -> Rtl.Ocmp c
  | Minic.Ast.Ofcmp c -> Rtl.Ofcmp c
  | Minic.Ast.Oband -> Rtl.Oand (* booleans are 0/1: strict && is bitwise *)
  | Minic.Ast.Obor -> Rtl.Oor

let op_of_unop (op : Minic.Ast.unop) : Rtl.operation =
  match op with
  | Minic.Ast.Oneg -> Rtl.Oneg
  | Minic.Ast.Onot -> Rtl.Onotbool
  | Minic.Ast.Ofneg -> Rtl.Ofneg
  | Minic.Ast.Ofabs -> Rtl.Ofabs
  | Minic.Ast.Ofloat_of_int -> Rtl.Ofloatofint
  | Minic.Ast.Oint_of_float -> Rtl.Ointoffloat

(* Static type of an expression (programs are type-checked before
   selection, so the partial lookups cannot fail). *)
let rec expr_typ (env : env) (e : Minic.Ast.expr) : Minic.Ast.typ =
  match e with
  | Minic.Ast.Econst_int _ -> Minic.Ast.Tint
  | Minic.Ast.Econst_float _ -> Minic.Ast.Tfloat
  | Minic.Ast.Econst_bool _ -> Minic.Ast.Tbool
  | Minic.Ast.Evar x ->
    let f =
      match
        Minic.Ast.find_func env.env_prog env.env_func.Rtl.f_name
      with
      | Some f -> f
      | None -> fail "no source function %s" env.env_func.Rtl.f_name
    in
    (match
       List.assoc_opt x (f.Minic.Ast.fn_params @ f.Minic.Ast.fn_locals)
     with
     | Some t -> t
     | None -> fail "unbound variable %s" x)
  | Minic.Ast.Eglobal x -> global_typ env x
  | Minic.Ast.Eindex (a, _) -> (array_def env a).Minic.Ast.arr_elt
  | Minic.Ast.Eunop (op, _) ->
    (match op with
     | Minic.Ast.Oneg -> Minic.Ast.Tint
     | Minic.Ast.Onot -> Minic.Ast.Tbool
     | Minic.Ast.Ofneg | Minic.Ast.Ofabs | Minic.Ast.Ofloat_of_int ->
       Minic.Ast.Tfloat
     | Minic.Ast.Oint_of_float -> Minic.Ast.Tint)
  | Minic.Ast.Ebinop (op, _, _) ->
    (match op with
     | Minic.Ast.Oadd | Minic.Ast.Osub | Minic.Ast.Omul | Minic.Ast.Odiv
     | Minic.Ast.Omod | Minic.Ast.Oand | Minic.Ast.Oor | Minic.Ast.Oxor
     | Minic.Ast.Oshl | Minic.Ast.Oshr -> Minic.Ast.Tint
     | Minic.Ast.Ofadd | Minic.Ast.Ofsub | Minic.Ast.Ofmul
     | Minic.Ast.Ofdiv -> Minic.Ast.Tfloat
     | Minic.Ast.Ocmp _ | Minic.Ast.Ofcmp _ | Minic.Ast.Oband
     | Minic.Ast.Obor -> Minic.Ast.Tbool)
  | Minic.Ast.Econd (_, e1, _) -> expr_typ env e1
  | Minic.Ast.Evolatile x ->
    (match Minic.Ast.find_volatile env.env_prog x with
     | Some (t, _) -> t
     | None -> fail "unbound volatile %s" x)

let fresh_for (env : env) (e : Minic.Ast.expr) : Rtl.reg =
  Rtl.fresh_reg env.env_func (Rtl.class_of_typ (expr_typ env e))

(* Translate expression [e] into [dest], continue at [k]; returns the
   fragment entry node. *)
let rec trans_expr (env : env) (e : Minic.Ast.expr) (dest : Rtl.reg)
    (k : Rtl.node) : Rtl.node =
  let f = env.env_func in
  match e with
  | Minic.Ast.Econst_int n -> Rtl.add_instr f (Rtl.Iop (Rtl.Ointconst n, [], dest, k))
  | Minic.Ast.Econst_float c ->
    Rtl.add_instr f (Rtl.Iop (Rtl.Ofloatconst c, [], dest, k))
  | Minic.Ast.Econst_bool b ->
    Rtl.add_instr f
      (Rtl.Iop (Rtl.Ointconst (if b then 1l else 0l), [], dest, k))
  | Minic.Ast.Evar x ->
    Rtl.add_instr f (Rtl.Iop (Rtl.Omove, [ var_reg env x ], dest, k))
  | Minic.Ast.Eglobal x ->
    Rtl.add_instr f
      (Rtl.Iload (chunk_of_typ (global_typ env x), Rtl.ADglob x, [], dest, k))
  | Minic.Ast.Eindex (a, idx) ->
    let arr = array_def env a in
    let ridx = Rtl.fresh_reg f Rtl.Cint in
    let roff = Rtl.fresh_reg f Rtl.Cint in
    let load =
      Rtl.add_instr f
        (Rtl.Iload
           (chunk_of_typ arr.Minic.Ast.arr_elt, Rtl.ADarr a, [ roff ], dest, k))
    in
    let shift =
      Rtl.add_instr f
        (Rtl.Iop (Rtl.Oshlimm (shift_of_typ arr.Minic.Ast.arr_elt),
                  [ ridx ], roff, load))
    in
    trans_expr env idx ridx shift
  | Minic.Ast.Eunop (op, e1) ->
    let r1 = fresh_for env e1 in
    let opn = Rtl.add_instr f (Rtl.Iop (op_of_unop op, [ r1 ], dest, k)) in
    trans_expr env e1 r1 opn
  | Minic.Ast.Ebinop (op, e1, e2) ->
    let r1 = fresh_for env e1 in
    let r2 = fresh_for env e2 in
    let opn = Rtl.add_instr f (Rtl.Iop (op_of_binop op, [ r1; r2 ], dest, k)) in
    let c2 = trans_expr env e2 r2 opn in
    trans_expr env e1 r1 c2
  | Minic.Ast.Econd (c, e1, e2) ->
    let n1 = trans_expr env e1 dest k in
    let n2 = trans_expr env e2 dest k in
    trans_condition env c n1 n2
  | Minic.Ast.Evolatile x -> Rtl.add_instr f (Rtl.Iacq (x, dest, k))

(* Translate a boolean expression as a branch: continue at [ktrue] when
   it evaluates to true, [kfalse] otherwise. Comparisons map directly to
   conditional branches; negation swaps the targets. *)
and trans_condition (env : env) (c : Minic.Ast.expr) (ktrue : Rtl.node)
    (kfalse : Rtl.node) : Rtl.node =
  let f = env.env_func in
  match c with
  | Minic.Ast.Econst_bool true -> Rtl.add_instr f (Rtl.Inop ktrue)
  | Minic.Ast.Econst_bool false -> Rtl.add_instr f (Rtl.Inop kfalse)
  | Minic.Ast.Eunop (Minic.Ast.Onot, c1) -> trans_condition env c1 kfalse ktrue
  | Minic.Ast.Ebinop (Minic.Ast.Ocmp cmp, e1, Minic.Ast.Econst_int n) ->
    let r1 = fresh_for env e1 in
    let br =
      Rtl.add_instr f
        (Rtl.Icond (Rtl.Ccompimm (cmp, n), [ r1 ], ktrue, kfalse))
    in
    trans_expr env e1 r1 br
  | Minic.Ast.Ebinop (Minic.Ast.Ocmp cmp, e1, e2) ->
    let r1 = fresh_for env e1 in
    let r2 = fresh_for env e2 in
    let br =
      Rtl.add_instr f (Rtl.Icond (Rtl.Ccomp cmp, [ r1; r2 ], ktrue, kfalse))
    in
    let c2 = trans_expr env e2 r2 br in
    trans_expr env e1 r1 c2
  | Minic.Ast.Ebinop (Minic.Ast.Ofcmp cmp, e1, e2) ->
    let r1 = fresh_for env e1 in
    let r2 = fresh_for env e2 in
    let br =
      Rtl.add_instr f (Rtl.Icond (Rtl.Cfcomp cmp, [ r1; r2 ], ktrue, kfalse))
    in
    let c2 = trans_expr env e2 r2 br in
    trans_expr env e1 r1 c2
  | Minic.Ast.Econst_int _ | Minic.Ast.Econst_float _ | Minic.Ast.Evar _
  | Minic.Ast.Eglobal _ | Minic.Ast.Eindex _ | Minic.Ast.Eunop _
  | Minic.Ast.Ebinop _ | Minic.Ast.Econd _ | Minic.Ast.Evolatile _ ->
    (* general case: evaluate to a 0/1 register, branch on != 0 *)
    let r = Rtl.fresh_reg f Rtl.Cint in
    let br =
      Rtl.add_instr f
        (Rtl.Icond (Rtl.Ccompimm (Minic.Ast.Cne, 0l), [ r ], ktrue, kfalse))
    in
    trans_expr env c r br

(* Translate statement [s]; continue at [k]. [kret] is the implicit
   return node used when control falls off the end. *)
let rec trans_stmt (env : env) (s : Minic.Ast.stmt) (k : Rtl.node) : Rtl.node =
  let f = env.env_func in
  match s with
  | Minic.Ast.Sskip -> k
  | Minic.Ast.Sassign (x, e) -> trans_expr env e (var_reg env x) k
  | Minic.Ast.Sglobassign (x, e) ->
    let t = global_typ env x in
    let r = Rtl.fresh_reg f (Rtl.class_of_typ t) in
    let store =
      Rtl.add_instr f (Rtl.Istore (chunk_of_typ t, Rtl.ADglob x, [], r, k))
    in
    trans_expr env e r store
  | Minic.Ast.Sstore (a, idx, e) ->
    let arr = array_def env a in
    let telt = arr.Minic.Ast.arr_elt in
    let ridx = Rtl.fresh_reg f Rtl.Cint in
    let roff = Rtl.fresh_reg f Rtl.Cint in
    let rval = Rtl.fresh_reg f (Rtl.class_of_typ telt) in
    let store =
      Rtl.add_instr f
        (Rtl.Istore (chunk_of_typ telt, Rtl.ADarr a, [ roff ], rval, k))
    in
    let ev = trans_expr env e rval store in
    let shift =
      Rtl.add_instr f
        (Rtl.Iop (Rtl.Oshlimm (shift_of_typ telt), [ ridx ], roff, ev))
    in
    trans_expr env idx ridx shift
  | Minic.Ast.Svolstore (x, e) ->
    let t =
      match Minic.Ast.find_volatile env.env_prog x with
      | Some (t, _) -> t
      | None -> fail "unbound volatile %s" x
    in
    let r = Rtl.fresh_reg f (Rtl.class_of_typ t) in
    let out = Rtl.add_instr f (Rtl.Iout (x, r, k)) in
    trans_expr env e r out
  | Minic.Ast.Sseq (a, b) -> trans_stmt env a (trans_stmt env b k)
  | Minic.Ast.Sif (c, a, b) ->
    let na = trans_stmt env a k in
    let nb = trans_stmt env b k in
    trans_condition env c na nb
  | Minic.Ast.Swhile (c, body) ->
    (* allocate the loop header first so the back edge has a target *)
    let header = Rtl.add_instr f (Rtl.Inop 0) in
    let nbody = trans_stmt env body header in
    let ncond = trans_condition env c nbody k in
    Rtl.set_instr f header (Rtl.Inop ncond);
    header
  | Minic.Ast.Sfor (i, lo, hi, body) ->
    (* i = lo; limit = hi; while (i < limit) { body; i = i + 1 } *)
    let ri = var_reg env i in
    let rlimit = Rtl.fresh_reg f Rtl.Cint in
    let header = Rtl.add_instr f (Rtl.Inop 0) in
    let incr =
      Rtl.add_instr f (Rtl.Iop (Rtl.Oaddimm 1l, [ ri ], ri, header))
    in
    let nbody = trans_stmt env body incr in
    let cond =
      Rtl.add_instr f
        (Rtl.Icond (Rtl.Ccomp Minic.Ast.Clt, [ ri; rlimit ], nbody, k))
    in
    Rtl.set_instr f header (Rtl.Inop cond);
    let init_i = trans_expr env lo ri header in
    trans_expr env hi rlimit init_i
  | Minic.Ast.Sreturn None ->
    let zero_ret =
      (* non-void function falling through a bare return: still return a
         zero value, in agreement with the interpreter *)
      match f.Rtl.f_ret with
      | None -> Rtl.add_instr f (Rtl.Ireturn None)
      | Some t ->
        let r = Rtl.fresh_reg f (Rtl.class_of_typ t) in
        let ret = Rtl.add_instr f (Rtl.Ireturn (Some r)) in
        (match t with
         | Minic.Ast.Tfloat ->
           Rtl.add_instr f (Rtl.Iop (Rtl.Ofloatconst 0.0, [], r, ret))
         | Minic.Ast.Tint | Minic.Ast.Tbool ->
           Rtl.add_instr f (Rtl.Iop (Rtl.Ointconst 0l, [], r, ret)))
    in
    zero_ret
  | Minic.Ast.Sreturn (Some e) ->
    let r = fresh_for env e in
    let ret = Rtl.add_instr f (Rtl.Ireturn (Some r)) in
    trans_expr env e r ret
  | Minic.Ast.Sannot (text, args) ->
    (* compute arguments left-to-right into fresh registers, then emit
       the annotation as a pro-forma effect over those registers *)
    let regs = List.map (fun e -> (e, fresh_for env e)) args in
    let annot =
      Rtl.add_instr f
        (Rtl.Iannot (text, List.map (fun (_, r) -> Rtl.RA_reg r) regs, k))
    in
    List.fold_right (fun (e, r) k' -> trans_expr env e r k') regs annot

(* Translate one function. *)
let trans_func (prog : Minic.Ast.program) (fsrc : Minic.Ast.func) : Rtl.func =
  let f = Rtl.create_func fsrc.Minic.Ast.fn_name fsrc.Minic.Ast.fn_ret in
  let env = { env_prog = prog; env_func = f; env_vars = Hashtbl.create 61 } in
  (* allocate pseudo-registers for parameters and locals *)
  let params =
    List.map
      (fun (x, t) ->
         let r = Rtl.fresh_reg f (Rtl.class_of_typ t) in
         Hashtbl.replace env.env_vars x r;
         (r, Rtl.class_of_typ t))
      fsrc.Minic.Ast.fn_params
  in
  List.iter
    (fun (x, t) ->
       let r = Rtl.fresh_reg f (Rtl.class_of_typ t) in
       Hashtbl.replace env.env_vars x r)
    fsrc.Minic.Ast.fn_locals;
  (* implicit return at the end of the body *)
  let implicit = trans_stmt env (Minic.Ast.Sreturn None) 0 in
  let entry = trans_stmt env fsrc.Minic.Ast.fn_body implicit in
  { f with Rtl.f_params = params; Rtl.f_entry = entry }

let trans_program (p : Minic.Ast.program) : Rtl.program =
  { Rtl.p_source = p;
    p_funcs = List.map (trans_func p) p.Minic.Ast.prog_funcs;
    p_main = p.Minic.Ast.prog_main }
