(* Reference interpreter for RTL.

   Produces the same observable [Minic.Interp.result] as the mini-C
   interpreter and the target simulator. The per-pass translation
   validators ([Validate]) run RTL before and after each optimization on
   a battery of input worlds and require identical observables; this is
   the executable stand-in for CompCert's per-pass semantic preservation
   proofs (see DESIGN.md section 2). *)

exception Stuck of string

let fail fmt = Format.kasprintf (fun s -> raise (Stuck s)) fmt

type state = {
  st_prog : Rtl.program;
  st_world : Minic.Interp.world;
  st_globals : (string, Minic.Value.t) Hashtbl.t;
  st_arrays : (string, Minic.Value.t array) Hashtbl.t;
  st_vol_counts : (string, int) Hashtbl.t;
  mutable st_events_rev : Minic.Interp.event list;
  mutable st_fuel : int;
}

(* Machine view of a value: booleans live as 0/1 integers in RTL. *)
let to_machine (v : Minic.Value.t) : Minic.Value.t =
  match v with
  | Minic.Value.Vbool b -> Minic.Value.Vint (if b then 1l else 0l)
  | Minic.Value.Vint _ | Minic.Value.Vfloat _ -> v

let of_machine (t : Minic.Ast.typ) (v : Minic.Value.t) : Minic.Value.t =
  match t, v with
  | Minic.Ast.Tbool, Minic.Value.Vint n ->
    Minic.Value.Vbool (not (Int32.equal n 0l))
  | _, _ -> v

let init_state (p : Rtl.program) (w : Minic.Interp.world) ~(fuel : int) : state =
  let src = p.Rtl.p_source in
  let st_globals = Hashtbl.create 61 in
  List.iter
    (fun (x, t) ->
       Hashtbl.replace st_globals x (to_machine (Minic.Value.zero_of_typ t)))
    src.Minic.Ast.prog_globals;
  let st_arrays = Hashtbl.create 17 in
  List.iter
    (fun a ->
       let conv f =
         match a.Minic.Ast.arr_elt with
         | Minic.Ast.Tfloat -> Minic.Value.Vfloat f
         | Minic.Ast.Tint -> Minic.Value.Vint (Minic.Value.int32_of_float_trunc f)
         | Minic.Ast.Tbool -> Minic.Value.Vint (if f > 0.0 then 1l else 0l)
       in
       Hashtbl.replace st_arrays a.Minic.Ast.arr_name
         (Array.of_list (List.map conv a.Minic.Ast.arr_init)))
    src.Minic.Ast.prog_arrays;
  { st_prog = p;
    st_world = w;
    st_globals;
    st_arrays;
    st_vol_counts = Hashtbl.create 17;
    st_events_rev = [];
    st_fuel = fuel }

let as_int (v : Minic.Value.t) : int32 =
  match v with
  | Minic.Value.Vint n -> n
  | Minic.Value.Vfloat _ | Minic.Value.Vbool _ -> fail "int expected"

let as_float (v : Minic.Value.t) : float =
  match v with
  | Minic.Value.Vfloat f -> f
  | Minic.Value.Vint _ | Minic.Value.Vbool _ -> fail "float expected"

(* Evaluate an RTL operation; shared with [Constprop] for folding, so
   that folding is correct by construction. *)
let eval_operation (op : Rtl.operation) (args : Minic.Value.t list) :
  Minic.Value.t =
  let i = as_int and fl = as_float in
  let b v = Minic.Value.Vint (if v then 1l else 0l) in
  match op, args with
  | Rtl.Omove, [ v ] -> v
  | Rtl.Ointconst n, [] -> Minic.Value.Vint n
  | Rtl.Ofloatconst c, [] -> Minic.Value.Vfloat c
  | Rtl.Oadd, [ a; c ] -> Minic.Value.Vint (Int32.add (i a) (i c))
  | Rtl.Osub, [ a; c ] -> Minic.Value.Vint (Int32.sub (i a) (i c))
  | Rtl.Omul, [ a; c ] -> Minic.Value.Vint (Int32.mul (i a) (i c))
  | Rtl.Odivs, [ a; c ] -> Minic.Value.Vint (Minic.Value.div32 (i a) (i c))
  | Rtl.Omods, [ a; c ] -> Minic.Value.Vint (Minic.Value.rem32 (i a) (i c))
  | Rtl.Oand, [ a; c ] -> Minic.Value.Vint (Int32.logand (i a) (i c))
  | Rtl.Oor, [ a; c ] -> Minic.Value.Vint (Int32.logor (i a) (i c))
  | Rtl.Oxor, [ a; c ] -> Minic.Value.Vint (Int32.logxor (i a) (i c))
  | Rtl.Oshl, [ a; c ] ->
    Minic.Value.Vint
      (Int32.shift_left (i a) (Minic.Value.shift_amount (i c)))
  | Rtl.Oshr, [ a; c ] ->
    Minic.Value.Vint
      (Int32.shift_right (i a) (Minic.Value.shift_amount (i c)))
  | Rtl.Oshlimm k, [ a ] -> Minic.Value.Vint (Int32.shift_left (i a) k)
  | Rtl.Oaddimm k, [ a ] -> Minic.Value.Vint (Int32.add (i a) k)
  | Rtl.Oneg, [ a ] -> Minic.Value.Vint (Int32.neg (i a))
  | Rtl.Onotbool, [ a ] ->
    Minic.Value.Vint (if Int32.equal (i a) 0l then 1l else 0l)
  | Rtl.Ofadd, [ a; c ] -> Minic.Value.Vfloat (fl a +. fl c)
  | Rtl.Ofsub, [ a; c ] -> Minic.Value.Vfloat (fl a -. fl c)
  | Rtl.Ofmul, [ a; c ] -> Minic.Value.Vfloat (fl a *. fl c)
  | Rtl.Ofdiv, [ a; c ] -> Minic.Value.Vfloat (fl a /. fl c)
  | Rtl.Ofneg, [ a ] -> Minic.Value.Vfloat (Float.neg (fl a))
  | Rtl.Ofabs, [ a ] -> Minic.Value.Vfloat (Float.abs (fl a))
  | Rtl.Ofloatofint, [ a ] -> Minic.Value.Vfloat (Int32.to_float (i a))
  | Rtl.Ointoffloat, [ a ] ->
    Minic.Value.Vint (Minic.Value.int32_of_float_trunc (fl a))
  | Rtl.Ocmp c, [ a; d ] ->
    b (Minic.Value.eval_comparison c (Int32.compare (i a) (i d)))
  | Rtl.Ofcmp c, [ a; d ] -> b (Minic.Value.eval_fcomparison c (fl a) (fl d))
  | _, _ -> fail "bad operation arity"

let eval_condition (c : Rtl.condition) (args : Minic.Value.t list) : bool =
  match c, args with
  | Rtl.Ccomp cmp, [ a; b ] ->
    Minic.Value.eval_comparison cmp (Int32.compare (as_int a) (as_int b))
  | Rtl.Ccompimm (cmp, n), [ a ] ->
    Minic.Value.eval_comparison cmp (Int32.compare (as_int a) n)
  | Rtl.Cfcomp cmp, [ a; b ] ->
    Minic.Value.eval_fcomparison cmp (as_float a) (as_float b)
  | (Rtl.Ccomp _ | Rtl.Ccompimm _ | Rtl.Cfcomp _), _ -> fail "bad condition arity"

let run_func (st : state) (f : Rtl.func) (args : Minic.Value.t list) :
  Minic.Value.t option =
  let regs : (Rtl.reg, Minic.Value.t) Hashtbl.t = Hashtbl.create 251 in
  let getr (r : Rtl.reg) : Minic.Value.t =
    match Hashtbl.find_opt regs r with
    | Some v -> v
    | None -> fail "read of undefined register x%d" r
  in
  if List.length args <> List.length f.Rtl.f_params then fail "bad arity";
  List.iter2
    (fun (r, _) v -> Hashtbl.replace regs r (to_machine v))
    f.Rtl.f_params args;
  let src = st.st_prog.Rtl.p_source in
  let rec step (n : Rtl.node) : Minic.Value.t option =
    st.st_fuel <- st.st_fuel - 1;
    if st.st_fuel <= 0 then fail "out of fuel";
    match Rtl.get_instr f n with
    | Rtl.Inop s -> step s
    | Rtl.Iop (op, rargs, d, s) ->
      Hashtbl.replace regs d (eval_operation op (List.map getr rargs));
      step s
    | Rtl.Iload (_, Rtl.ADglob g, _, d, s) ->
      (match Hashtbl.find_opt st.st_globals g with
       | Some v -> Hashtbl.replace regs d v
       | None -> fail "unbound global %s" g);
      step s
    | Rtl.Iload (_, Rtl.ADarr a, [ roff ], d, s) ->
      let arr =
        match Hashtbl.find_opt st.st_arrays a with
        | Some arr -> arr
        | None -> fail "unbound array %s" a
      in
      let adef =
        List.find
          (fun x -> String.equal x.Minic.Ast.arr_name a)
          src.Minic.Ast.prog_arrays
      in
      let esz =
        match adef.Minic.Ast.arr_elt with
        | Minic.Ast.Tfloat -> 8
        | Minic.Ast.Tint | Minic.Ast.Tbool -> 4
      in
      let off = Int32.to_int (as_int (getr roff)) in
      let idx = off / esz in
      if idx < 0 || idx >= Array.length arr then
        fail "array %s index %d out of bounds" a idx;
      Hashtbl.replace regs d arr.(idx);
      step s
    | Rtl.Iload (_, Rtl.ADarr _, _, _, _) -> fail "bad ADarr arity"
    | Rtl.Istore (_, Rtl.ADglob g, _, srcreg, s) ->
      if not (Hashtbl.mem st.st_globals g) then fail "unbound global %s" g;
      Hashtbl.replace st.st_globals g (getr srcreg);
      step s
    | Rtl.Istore (_, Rtl.ADarr a, [ roff ], srcreg, s) ->
      let arr =
        match Hashtbl.find_opt st.st_arrays a with
        | Some arr -> arr
        | None -> fail "unbound array %s" a
      in
      let adef =
        List.find
          (fun x -> String.equal x.Minic.Ast.arr_name a)
          src.Minic.Ast.prog_arrays
      in
      let esz =
        match adef.Minic.Ast.arr_elt with
        | Minic.Ast.Tfloat -> 8
        | Minic.Ast.Tint | Minic.Ast.Tbool -> 4
      in
      let off = Int32.to_int (as_int (getr roff)) in
      let idx = off / esz in
      if idx < 0 || idx >= Array.length arr then
        fail "array %s index %d out of bounds" a idx;
      arr.(idx) <- getr srcreg;
      step s
    | Rtl.Istore (_, Rtl.ADarr _, _, _, _) -> fail "bad ADarr arity"
    | Rtl.Icond (c, rargs, s1, s2) ->
      if eval_condition c (List.map getr rargs) then step s1 else step s2
    | Rtl.Iacq (x, d, s) ->
      let t, _ =
        match Minic.Ast.find_volatile src x with
        | Some td -> td
        | None -> fail "unbound volatile %s" x
      in
      let k = Option.value ~default:0 (Hashtbl.find_opt st.st_vol_counts x) in
      Hashtbl.replace st.st_vol_counts x (k + 1);
      let v = Minic.Interp.world_value st.st_world t x k in
      st.st_events_rev <- Minic.Interp.Ev_vol_read (x, v) :: st.st_events_rev;
      Hashtbl.replace regs d (to_machine v);
      step s
    | Rtl.Iout (x, srcreg, s) ->
      let t, _ =
        match Minic.Ast.find_volatile src x with
        | Some td -> td
        | None -> fail "unbound volatile %s" x
      in
      let v = of_machine t (getr srcreg) in
      st.st_events_rev <- Minic.Interp.Ev_vol_write (x, v) :: st.st_events_rev;
      step s
    | Rtl.Iannot (text, aargs, s) ->
      let vs =
        List.map
          (fun a ->
             match a with
             | Rtl.RA_reg r -> getr r
             | Rtl.RA_cint n -> Minic.Value.Vint n
             | Rtl.RA_cfloat c -> Minic.Value.Vfloat c)
          aargs
      in
      st.st_events_rev <- Minic.Interp.Ev_annot (text, vs) :: st.st_events_rev;
      step s
    | Rtl.Ireturn None -> None
    | Rtl.Ireturn (Some r) ->
      (match f.Rtl.f_ret with
       | None -> fail "value returned from void function"
       | Some t -> Some (of_machine t (getr r)))
  in
  step f.Rtl.f_entry

let run ?(fuel = 2_000_000) (p : Rtl.program) ?fname (w : Minic.Interp.world)
    (args : Minic.Value.t list) : Minic.Interp.result =
  let fname = Option.value ~default:p.Rtl.p_main fname in
  let f =
    match List.find_opt (fun f -> String.equal f.Rtl.f_name fname) p.Rtl.p_funcs with
    | Some f -> f
    | None -> fail "no function %s" fname
  in
  let st = init_state p w ~fuel in
  let ret = run_func st f args in
  let src = p.Rtl.p_source in
  let globals =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun (x, t) ->
            let v =
              match Hashtbl.find_opt st.st_globals x with
              | Some v -> of_machine t v
              | None -> fail "global %s lost" x
            in
            (x, v))
         src.Minic.Ast.prog_globals)
  in
  { Minic.Interp.res_return = ret;
    res_events = List.rev st.st_events_rev;
    res_globals = globals }
