(** Common subexpression elimination by local value numbering (basic-
    block scope, as in CompCert's CSE restricted to blocks). Loads are
    memoized under a memory epoch advanced by every store; volatile
    acquisitions are never memoized; duplicate float constants are
    value-numbered away. *)

val transform_func : Rtl.func -> unit
val transform : Rtl.program -> Rtl.program
