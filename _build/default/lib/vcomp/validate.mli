(** Per-pass translation validation — the runtime stand-in for
    CompCert's Coq proofs (DESIGN.md section 2): the RTL before and
    after each transformation must produce identical observable
    behaviour on a battery of input worlds. A failure aborts the
    compilation; a miscompilation never ships. *)

exception Validation_failed of string

val worlds : unit -> (string * Minic.Interp.world) list
(** The deterministic validation battery. *)

val check_pass :
  pass:string -> before:Rtl.program -> after:Rtl.program -> unit
(** @raise Validation_failed when any function's observable behaviour
    changed on any world of the battery. *)
