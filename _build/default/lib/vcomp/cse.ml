(* Common subexpression elimination by local value numbering, as in
   CompCert's CSE (restricted to basic blocks rather than extended basic
   blocks, a sound simplification).

   Within a basic block, pure operations with the same value-numbered
   arguments are replaced by moves from the first occurrence's register.
   Loads participate too, keyed by an additional memory epoch that every
   store advances (no alias analysis: any store kills all memoized
   loads). Volatile acquisitions are never memoized — each one is an
   observable event. Repeated float constants are value-numbered as
   nullary operations, which removes duplicate constant-pool loads. *)

type vn = int

type key =
  | Kop of Rtl.operation * vn list
  | Kload of Rtl.chunk * Rtl.addressing * vn list * int (* memory epoch *)

(* Operation keys rely on structural equality of [Rtl.operation]; float
   constants compare by bits to avoid NaN pitfalls. *)
let key_equal (a : key) (b : key) : bool =
  match a, b with
  | Kop (op1, a1), Kop (op2, a2) ->
    (match op1, op2 with
     | Rtl.Ofloatconst f1, Rtl.Ofloatconst f2 ->
       Int64.equal (Int64.bits_of_float f1) (Int64.bits_of_float f2)
       && a1 = a2
     | _, _ -> op1 = op2 && a1 = a2)
  | Kload (c1, ad1, a1, e1), Kload (c2, ad2, a2, e2) ->
    c1 = c2 && ad1 = ad2 && a1 = a2 && e1 = e2
  | (Kop _ | Kload _), _ -> false

type state = {
  mutable next_vn : vn;
  mutable epoch : int;
  mutable table : (key * vn) list;        (* expression -> value number *)
  reg_vn : (Rtl.reg, vn) Hashtbl.t;       (* register -> its current vn *)
  vn_rep : (vn, Rtl.reg) Hashtbl.t;       (* vn -> register holding it *)
}

let create_state () : state =
  { next_vn = 0;
    epoch = 0;
    table = [];
    reg_vn = Hashtbl.create 61;
    vn_rep = Hashtbl.create 61 }

let fresh_vn (st : state) : vn =
  let v = st.next_vn in
  st.next_vn <- v + 1;
  v

(* Value number currently associated with register [r]. *)
let vn_of_reg (st : state) (r : Rtl.reg) : vn =
  match Hashtbl.find_opt st.reg_vn r with
  | Some v -> v
  | None ->
    let v = fresh_vn st in
    Hashtbl.replace st.reg_vn r v;
    Hashtbl.replace st.vn_rep v r;
    v

let lookup (st : state) (k : key) : vn option =
  List.find_map (fun (k', v) -> if key_equal k k' then Some v else None) st.table

(* Register [d] is about to be (re)defined: detach its old value number;
   if [d] was the representative of that vn, find a replacement
   representative or forget the vn's expressions. *)
let kill_reg (st : state) (d : Rtl.reg) : unit =
  match Hashtbl.find_opt st.reg_vn d with
  | None -> ()
  | Some v ->
    Hashtbl.remove st.reg_vn d;
    (match Hashtbl.find_opt st.vn_rep v with
     | Some rep when rep = d ->
       (* look for another register still holding vn v *)
       let replacement =
         Hashtbl.fold
           (fun r v' acc -> if v' = v && r <> d then Some r else acc)
           st.reg_vn None
       in
       (match replacement with
        | Some r -> Hashtbl.replace st.vn_rep v r
        | None ->
          Hashtbl.remove st.vn_rep v;
          st.table <- List.filter (fun (_, v') -> v' <> v) st.table)
     | Some _ | None -> ())

let set_reg (st : state) (d : Rtl.reg) (v : vn) : unit =
  kill_reg st d;
  Hashtbl.replace st.reg_vn d v;
  if not (Hashtbl.mem st.vn_rep v) then Hashtbl.replace st.vn_rep v d

(* Partition the CFG into basic blocks: heads are the entry, join points,
   and both successors of conditional branches. Returns head nodes. *)
let block_heads (f : Rtl.func) : Rtl.node list =
  let preds = Rtl.predecessors f in
  let nodes = Rtl.reverse_postorder f in
  List.filter
    (fun n ->
       if n = f.Rtl.f_entry then true
       else
         match Hashtbl.find_opt preds n with
         | Some [ p ] ->
           (match Rtl.get_instr f p with
            | Rtl.Icond _ -> true
            | _ -> false)
         | Some _ | None -> true)
    nodes

(* Walk one basic block starting at [head], rewriting instructions. *)
let process_block (f : Rtl.func) (preds : (Rtl.node, Rtl.node list) Hashtbl.t)
    (head : Rtl.node) : unit =
  let st = create_state () in
  let rec walk (n : Rtl.node) : unit =
    let i = Rtl.get_instr f n in
    (match i with
     | Rtl.Iop (Rtl.Omove, [ src ], d, _) ->
       let v = vn_of_reg st src in
       set_reg st d v
     | Rtl.Iop (op, args, d, s) ->
       let vargs = List.map (vn_of_reg st) args in
       let k = Kop (op, vargs) in
       (match lookup st k with
        | Some v ->
          (match Hashtbl.find_opt st.vn_rep v with
           | Some rep when rep <> d
                        && Rtl.reg_class f rep = Rtl.reg_class f d ->
             Rtl.set_instr f n (Rtl.Iop (Rtl.Omove, [ rep ], d, s));
             set_reg st d v
           | Some _ | None ->
             let v' = fresh_vn st in
             set_reg st d v';
             st.table <- (k, v') :: st.table)
        | None ->
          let v = fresh_vn st in
          set_reg st d v;
          st.table <- (k, v) :: st.table)
     | Rtl.Iload (chunk, addr, args, d, s) ->
       let vargs = List.map (vn_of_reg st) args in
       let k = Kload (chunk, addr, vargs, st.epoch) in
       (match lookup st k with
        | Some v ->
          (match Hashtbl.find_opt st.vn_rep v with
           | Some rep when rep <> d
                        && Rtl.reg_class f rep = Rtl.reg_class f d ->
             Rtl.set_instr f n (Rtl.Iop (Rtl.Omove, [ rep ], d, s));
             set_reg st d v
           | Some _ | None ->
             let v' = fresh_vn st in
             set_reg st d v';
             st.table <- (k, v') :: st.table)
        | None ->
          let v = fresh_vn st in
          set_reg st d v;
          st.table <- (k, v) :: st.table)
     | Rtl.Istore _ ->
       (* conservatively kill all memoized loads *)
       st.epoch <- st.epoch + 1
     | Rtl.Iacq (_, d, _) ->
       (* volatile read: fresh, never memoized *)
       let v = fresh_vn st in
       set_reg st d v
     | Rtl.Inop _ | Rtl.Icond _ | Rtl.Iout _ | Rtl.Iannot _ | Rtl.Ireturn _ ->
       ());
    (* continue along the block *)
    match Rtl.successors (Rtl.get_instr f n) with
    | [ s ] ->
      let s_is_head =
        s = f.Rtl.f_entry
        ||
        (match Hashtbl.find_opt preds s with
         | Some [ _ ] -> false
         | Some _ | None -> true)
      in
      if not s_is_head then walk s
    | [] | _ :: _ :: _ -> ()
  in
  walk head

let transform_func (f : Rtl.func) : unit =
  let preds = Rtl.predecessors f in
  List.iter (process_block f preds) (block_heads f)

let transform (p : Rtl.program) : Rtl.program =
  List.iter transform_func p.Rtl.p_funcs;
  p
