(* Liveness analysis over RTL: backward dataflow fixpoint computing, for
   every node, the set of pseudo-registers live *after* the instruction
   at that node. Used by dead-code elimination and by the interference
   graph construction of the register allocator. *)

module RegSet = Set.Make (Int)

type t = (Rtl.node, RegSet.t) Hashtbl.t

(* live_before(n) = (live_after(n) \ def(n)) ∪ use(n) *)
let live_before (i : Rtl.instruction) (after : RegSet.t) : RegSet.t =
  let minus_def =
    match Rtl.instr_def i with
    | Some d -> RegSet.remove d after
    | None -> after
  in
  List.fold_left (fun s r -> RegSet.add r s) minus_def (Rtl.instr_uses i)

(* Compute live-after sets for all reachable nodes with a worklist
   iteration seeded in postorder (fast convergence for reducible CFGs). *)
let analyze (f : Rtl.func) : t =
  let preds = Rtl.predecessors f in
  let live_after : t = Hashtbl.create 251 in
  let get (n : Rtl.node) : RegSet.t =
    Option.value ~default:RegSet.empty (Hashtbl.find_opt live_after n)
  in
  let workset = Hashtbl.create 251 in
  let worklist = Queue.create () in
  let push (n : Rtl.node) : unit =
    if not (Hashtbl.mem workset n) then begin
      Hashtbl.replace workset n ();
      Queue.add n worklist
    end
  in
  (* postorder = reverse of reverse-postorder *)
  List.iter push (List.rev (Rtl.reverse_postorder f));
  while not (Queue.is_empty worklist) do
    let n = Queue.pop worklist in
    Hashtbl.remove workset n;
    let i = Rtl.get_instr f n in
    let after = get n in
    let before = live_before i after in
    (* propagate into predecessors' live-after *)
    List.iter
      (fun p ->
         let old = get p in
         let updated = RegSet.union old before in
         if not (RegSet.equal old updated) then begin
           Hashtbl.replace live_after p updated;
           push p
         end)
      (Option.value ~default:[] (Hashtbl.find_opt preds n))
  done;
  live_after

let live_after (lv : t) (n : Rtl.node) : RegSet.t =
  Option.value ~default:RegSet.empty (Hashtbl.find_opt lv n)

(* Naive recomputation used by property tests: iterate the equations
   globally until fixpoint, no worklist. *)
let analyze_naive (f : Rtl.func) : t =
  let nodes = Rtl.reverse_postorder f in
  let live_after : t = Hashtbl.create 251 in
  let get n = Option.value ~default:RegSet.empty (Hashtbl.find_opt live_after n) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
         let i = Rtl.get_instr f n in
         let after =
           List.fold_left
             (fun acc s ->
                RegSet.union acc (live_before (Rtl.get_instr f s) (get s)))
             RegSet.empty (Rtl.successors i)
         in
         if not (RegSet.equal after (get n)) then begin
           Hashtbl.replace live_after n after;
           changed := true
         end)
      nodes
  done;
  live_after
