(** Constant propagation over RTL: forward dataflow on the flat value
    lattice followed by rewriting. Folding reuses the dynamic semantics
    ({!Rtl_interp.eval_operation}), so folded operations are correct by
    construction; constant conditions become jumps; annotation
    arguments that became constants are rewritten, which is how
    constants reach the emitted annotation comments. *)

val transform_func : Rtl.func -> unit
(** In place. *)

val transform : Rtl.program -> Rtl.program
