(** Reference interpreter for RTL, producing observables comparable to
    the mini-C interpreter's: the executable semantics used by the
    per-pass translation validators ({!Validate}). *)

exception Stuck of string

val eval_operation : Rtl.operation -> Minic.Value.t list -> Minic.Value.t
(** Shared with {!Constprop} so constant folding is correct by
    construction.
    @raise Stuck on arity or type mismatches. *)

val eval_condition : Rtl.condition -> Minic.Value.t list -> bool

val run :
  ?fuel:int -> Rtl.program -> ?fname:string -> Minic.Interp.world ->
  Minic.Value.t list -> Minic.Interp.result
