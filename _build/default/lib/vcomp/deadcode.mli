(** Dead-code elimination: pure instructions whose destination is dead
    become no-ops; iterates with liveness recomputation so chains of
    dead computations vanish. *)

val transform_func : Rtl.func -> unit
val transform : Rtl.program -> Rtl.program
