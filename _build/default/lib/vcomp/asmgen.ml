(* Linearization of allocated RTL into target assembly.

   The pass orders reachable nodes in reverse postorder (tunneling Inop
   chains), lays out fall-through edges, and expands each RTL
   instruction into machine instructions using the register allocation:
   pseudo-registers colored to machine registers become direct operands;
   spilled pseudo-registers are reloaded into the reserved scratch
   registers around each use.

   Condition emission is careful about IEEE float comparisons: le/ge
   compile to two condition-bit branches (lt-or-eq / gt-or-eq) so that
   NaN operands fall through to the false branch, matching the source
   semantics exactly. *)

module Asm = Target.Asm

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let slot_offset (s : int) : int32 = Int32.of_int (8 + (8 * s))

let frame_size (nslots : int) : int =
  if nslots = 0 then 0 else (8 + (8 * nslots) + 15) / 16 * 16

type ctx = {
  cx_func : Rtl.func;
  cx_alloc : Regalloc.result;
  cx_buf : Asm.instr list ref; (* reversed *)
}

let emit (cx : ctx) (i : Asm.instr) : unit = cx.cx_buf := i :: !(cx.cx_buf)

let loc_of (cx : ctx) (r : Rtl.reg) : Regalloc.loc =
  Regalloc.location cx.cx_alloc r

(* Read an integer pseudo-register; returns the machine register holding
   it, reloading spilled values into the given scratch. *)
let read_ireg (cx : ctx) ?(scratch = Asm.int_scratch1) (r : Rtl.reg) : Asm.ireg =
  match loc_of cx r with
  | Regalloc.Lireg m -> m
  | Regalloc.Lslot s ->
    emit cx (Asm.Plwz (scratch, Asm.Aind (Asm.sp, slot_offset s)));
    scratch
  | Regalloc.Lfreg _ -> fail "integer register expected for x%d" r

let read_freg (cx : ctx) ?(scratch = Asm.float_scratch1) (r : Rtl.reg) : Asm.freg =
  match loc_of cx r with
  | Regalloc.Lfreg m -> m
  | Regalloc.Lslot s ->
    emit cx (Asm.Plfd (scratch, Asm.Aind (Asm.sp, slot_offset s)));
    scratch
  | Regalloc.Lireg _ -> fail "float register expected for x%d" r

(* Destination handling: returns the machine register to compute into and
   a "finish" continuation that spills it if needed. *)
let dest_ireg (cx : ctx) (r : Rtl.reg) : Asm.ireg * (unit -> unit) =
  match loc_of cx r with
  | Regalloc.Lireg m -> (m, fun () -> ())
  | Regalloc.Lslot s ->
    ( Asm.int_scratch1,
      fun () ->
        emit cx
          (Asm.Pstw (Asm.int_scratch1, Asm.Aind (Asm.sp, slot_offset s))) )
  | Regalloc.Lfreg _ -> fail "integer destination expected for x%d" r

let dest_freg (cx : ctx) (r : Rtl.reg) : Asm.freg * (unit -> unit) =
  match loc_of cx r with
  | Regalloc.Lfreg m -> (m, fun () -> ())
  | Regalloc.Lslot s ->
    ( Asm.float_scratch1,
      fun () ->
        emit cx
          (Asm.Pstfd (Asm.float_scratch1, Asm.Aind (Asm.sp, slot_offset s))) )
  | Regalloc.Lireg _ -> fail "float destination expected for x%d" r

let fits_simm16 (n : int32) : bool =
  Int32.compare n (-32768l) >= 0 && Int32.compare n 32767l <= 0

(* Load a 32-bit constant into an integer register. *)
let emit_intconst (cx : ctx) (d : Asm.ireg) (n : int32) : unit =
  if fits_simm16 n then emit cx (Asm.Paddi (d, 0, n))
  else begin
    let lo = Int32.logand n 0xFFFFl in
    let hi = Int32.logand (Int32.shift_right_logical n 16) 0xFFFFl in
    emit cx (Asm.Paddis (d, 0, hi));
    if not (Int32.equal lo 0l) then emit cx (Asm.Pori (d, d, lo))
  end

let cond_of_cmp = Asm.cond_of_cmp
let fconds_of_cmp = Asm.fconds_of_cmp

let negate_cond = Asm.negate_cond

(* Materialize a CR0 test disjunction into 0/1 in register [d]. *)
let emit_setcc_list (cx : ctx) (d : Asm.ireg) (conds : Asm.branch_cond list) :
  unit =
  match conds with
  | [ c ] -> emit cx (Asm.Psetcc (d, c))
  | [ c1; c2 ] ->
    emit cx (Asm.Psetcc (d, c1));
    emit cx (Asm.Psetcc (Asm.int_scratch2, c2));
    emit cx (Asm.Por (d, d, Asm.int_scratch2))
  | _ -> fail "emit_setcc_list: bad condition list"

(* Expand one Iop. *)
let emit_op (cx : ctx) (op : Rtl.operation) (args : Rtl.reg list)
    (dst : Rtl.reg) : unit =
  let f = cx.cx_func in
  match op, args with
  | Rtl.Omove, [ s ] ->
    (match Rtl.reg_class f dst with
     | Rtl.Cint ->
       let d, fin = dest_ireg cx dst in
       let s = read_ireg cx s ~scratch:d in
       if s <> d then emit cx (Asm.Pmr (d, s));
       fin ()
     | Rtl.Cfloat ->
       let d, fin = dest_freg cx dst in
       let s = read_freg cx s ~scratch:d in
       if s <> d then emit cx (Asm.Pfmr (d, s));
       fin ())
  | Rtl.Ointconst n, [] ->
    let d, fin = dest_ireg cx dst in
    emit_intconst cx d n;
    fin ()
  | Rtl.Ofloatconst c, [] ->
    let d, fin = dest_freg cx dst in
    emit cx (Asm.Plfdc (d, c));
    fin ()
  | (Rtl.Oadd | Rtl.Osub | Rtl.Omul | Rtl.Odivs | Rtl.Oand | Rtl.Oor
    | Rtl.Oxor | Rtl.Oshl | Rtl.Oshr), [ a; b ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let rb = read_ireg cx b ~scratch:Asm.int_scratch2 in
    let d, fin = dest_ireg cx dst in
    (match op with
     | Rtl.Oadd -> emit cx (Asm.Padd (d, ra, rb))
     | Rtl.Osub -> emit cx (Asm.Psubf (d, rb, ra)) (* d = ra - rb *)
     | Rtl.Omul -> emit cx (Asm.Pmullw (d, ra, rb))
     | Rtl.Odivs -> emit cx (Asm.Pdivw (d, ra, rb))
     | Rtl.Oand -> emit cx (Asm.Pand (d, ra, rb))
     | Rtl.Oor -> emit cx (Asm.Por (d, ra, rb))
     | Rtl.Oxor -> emit cx (Asm.Pxor (d, ra, rb))
     | Rtl.Oshl -> emit cx (Asm.Pslw (d, ra, rb))
     | Rtl.Oshr -> emit cx (Asm.Psraw (d, ra, rb))
     | _ -> assert false);
    fin ()
  | Rtl.Omods, [ a; b ] ->
    (* a mod b = a - (a / b) * b, total per Minic.Value.rem32; the
       division result lives in a scratch register. *)
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let rb = read_ireg cx b ~scratch:Asm.int_scratch2 in
    emit cx (Asm.Pdivw (Asm.int_scratch, ra, rb));
    emit cx (Asm.Pmullw (Asm.int_scratch, Asm.int_scratch, rb));
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Psubf (d, Asm.int_scratch, ra));
    fin ()
  | Rtl.Oshlimm k, [ a ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Pslwi (d, ra, k));
    fin ()
  | Rtl.Oaddimm k, [ a ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Paddi (d, ra, k));
    fin ()
  | Rtl.Oneg, [ a ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Pneg (d, ra));
    fin ()
  | Rtl.Onotbool, [ a ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Pcmpwi (ra, 0l));
    emit cx (Asm.Psetcc (d, Asm.BT Asm.CReq));
    fin ()
  | (Rtl.Ofadd | Rtl.Ofsub | Rtl.Ofmul | Rtl.Ofdiv), [ a; b ] ->
    let ra = read_freg cx a ~scratch:Asm.float_scratch1 in
    let rb = read_freg cx b ~scratch:Asm.float_scratch2 in
    let d, fin = dest_freg cx dst in
    (match op with
     | Rtl.Ofadd -> emit cx (Asm.Pfadd (d, ra, rb))
     | Rtl.Ofsub -> emit cx (Asm.Pfsub (d, ra, rb))
     | Rtl.Ofmul -> emit cx (Asm.Pfmul (d, ra, rb))
     | Rtl.Ofdiv -> emit cx (Asm.Pfdiv (d, ra, rb))
     | _ -> assert false);
    fin ()
  | Rtl.Ofneg, [ a ] ->
    let ra = read_freg cx a ~scratch:Asm.float_scratch1 in
    let d, fin = dest_freg cx dst in
    emit cx (Asm.Pfneg (d, ra));
    fin ()
  | Rtl.Ofabs, [ a ] ->
    let ra = read_freg cx a ~scratch:Asm.float_scratch1 in
    let d, fin = dest_freg cx dst in
    emit cx (Asm.Pfabs (d, ra));
    fin ()
  | Rtl.Ofloatofint, [ a ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let d, fin = dest_freg cx dst in
    emit cx (Asm.Pfcfiw (d, ra));
    fin ()
  | Rtl.Ointoffloat, [ a ] ->
    let ra = read_freg cx a ~scratch:Asm.float_scratch1 in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Pfctiwz (d, ra));
    fin ()
  | Rtl.Ocmp c, [ a; b ] ->
    let ra = read_ireg cx a ~scratch:Asm.int_scratch1 in
    let rb = read_ireg cx b ~scratch:Asm.int_scratch2 in
    emit cx (Asm.Pcmpw (ra, rb));
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Psetcc (d, cond_of_cmp c));
    fin ()
  | Rtl.Ofcmp c, [ a; b ] ->
    let ra = read_freg cx a ~scratch:Asm.float_scratch1 in
    let rb = read_freg cx b ~scratch:Asm.float_scratch2 in
    emit cx (Asm.Pfcmpu (ra, rb));
    let d, fin = dest_ireg cx dst in
    emit_setcc_list cx d (fconds_of_cmp c);
    fin ()
  | _, _ -> fail "emit_op: malformed %s" (Rtl.string_of_operation op)

(* Global addressing: the verified-style compiler does not use small
   data areas (as noted in the paper, CompCert's SDA support was not
   used in the evaluation), so scalars go through [Aglob]. *)
let emit_load (cx : ctx) (chunk : Rtl.chunk) (addr : Rtl.addressing)
    (args : Rtl.reg list) (dst : Rtl.reg) : unit =
  let mk_addr () : Asm.address =
    match addr, args with
    | Rtl.ADglob g, [] -> Asm.Aglob (g, 0l)
    | Rtl.ADarr g, [ roff ] ->
      let ro = read_ireg cx roff ~scratch:Asm.int_scratch2 in
      emit cx (Asm.Pla (Asm.int_scratch1, g));
      Asm.Aindx (Asm.int_scratch1, ro)
    | _, _ -> fail "emit_load: malformed addressing"
  in
  match chunk with
  | Rtl.Mint32 ->
    let a = mk_addr () in
    let d, fin = dest_ireg cx dst in
    emit cx (Asm.Plwz (d, a));
    fin ()
  | Rtl.Mfloat64 ->
    let a = mk_addr () in
    let d, fin = dest_freg cx dst in
    emit cx (Asm.Plfd (d, a));
    fin ()

let emit_store (cx : ctx) (chunk : Rtl.chunk) (addr : Rtl.addressing)
    (args : Rtl.reg list) (src : Rtl.reg) : unit =
  match chunk with
  | Rtl.Mint32 ->
    let s = read_ireg cx src ~scratch:Asm.int_scratch2 in
    (match addr, args with
     | Rtl.ADglob g, [] -> emit cx (Asm.Pstw (s, Asm.Aglob (g, 0l)))
     | Rtl.ADarr g, [ roff ] ->
       let ro = read_ireg cx roff ~scratch:Asm.int_scratch in
       emit cx (Asm.Pla (Asm.int_scratch1, g));
       emit cx (Asm.Pstw (s, Asm.Aindx (Asm.int_scratch1, ro)))
     | _, _ -> fail "emit_store: malformed addressing")
  | Rtl.Mfloat64 ->
    let s = read_freg cx src ~scratch:Asm.float_scratch2 in
    (match addr, args with
     | Rtl.ADglob g, [] -> emit cx (Asm.Pstfd (s, Asm.Aglob (g, 0l)))
     | Rtl.ADarr g, [ roff ] ->
       let ro = read_ireg cx roff ~scratch:Asm.int_scratch2 in
       emit cx (Asm.Pla (Asm.int_scratch1, g));
       emit cx (Asm.Pstfd (s, Asm.Aindx (Asm.int_scratch1, ro)))
     | _, _ -> fail "emit_store: malformed addressing")

let annot_arg_of (cx : ctx) (f : Rtl.func) (a : Rtl.annot_arg) : Asm.annot_arg =
  match a with
  | Rtl.RA_cint n -> Asm.AA_const_int n
  | Rtl.RA_cfloat c -> Asm.AA_const_float c
  | Rtl.RA_reg r ->
    (match loc_of cx r with
     | Regalloc.Lireg m -> Asm.AA_ireg m
     | Regalloc.Lfreg m -> Asm.AA_freg m
     | Regalloc.Lslot s ->
       (match Rtl.reg_class f r with
        | Rtl.Cint -> Asm.AA_stack_int (slot_offset s)
        | Rtl.Cfloat -> Asm.AA_stack_float (slot_offset s)))

(* ---- parallel moves at function entry ----------------------------- *)

(* Move each parameter from its EABI arrival register to its allocated
   location without clobbering pending sources. Slot destinations are
   never sources; register destinations may be, so we emit "safe" moves
   first and break cycles through a scratch register. *)
type pmove = {
  pm_src : Regalloc.loc; (* always Lireg/Lfreg: arrival register *)
  pm_dst : Regalloc.loc;
}

let emit_loc_move (cx : ctx) (src : Regalloc.loc) (dst : Regalloc.loc) : unit =
  match src, dst with
  | Regalloc.Lireg s, Regalloc.Lireg d ->
    if s <> d then emit cx (Asm.Pmr (d, s))
  | Regalloc.Lfreg s, Regalloc.Lfreg d ->
    if s <> d then emit cx (Asm.Pfmr (d, s))
  | Regalloc.Lireg s, Regalloc.Lslot sl ->
    emit cx (Asm.Pstw (s, Asm.Aind (Asm.sp, slot_offset sl)))
  | Regalloc.Lfreg s, Regalloc.Lslot sl ->
    emit cx (Asm.Pstfd (s, Asm.Aind (Asm.sp, slot_offset sl)))
  | _, _ -> fail "emit_loc_move: malformed move"

let emit_parallel_moves (cx : ctx) (moves : pmove list) : unit =
  let pending = ref moves in
  let is_source (l : Regalloc.loc) : bool =
    List.exists (fun m -> Regalloc.loc_equal m.pm_src l) !pending
  in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let safe, blocked =
      List.partition
        (fun m ->
           Regalloc.loc_equal m.pm_src m.pm_dst || not (is_source m.pm_dst))
        !pending
    in
    (* [is_source] looks at the full pending list including [safe]; a
       move whose destination is its own source is trivially safe. *)
    let really_safe =
      List.filter
        (fun m ->
           Regalloc.loc_equal m.pm_src m.pm_dst
           || not
                (List.exists
                   (fun m' ->
                      (not (Regalloc.loc_equal m'.pm_src m.pm_src))
                      && Regalloc.loc_equal m'.pm_src m.pm_dst)
                   !pending))
        (safe @ blocked)
    in
    match really_safe with
    | m :: _ ->
      emit_loc_move cx m.pm_src m.pm_dst;
      pending := List.filter (fun m' -> m' != m) !pending;
      progress := true
    | [] ->
      (* cycle: break it by saving one source to scratch *)
      (match !pending with
       | m :: rest ->
         (match m.pm_src with
          | Regalloc.Lireg s ->
            emit cx (Asm.Pmr (Asm.int_scratch1, s));
            pending :=
              { m with pm_src = Regalloc.Lireg Asm.int_scratch1 } :: rest;
            progress := true
          | Regalloc.Lfreg s ->
            emit cx (Asm.Pfmr (Asm.float_scratch1, s));
            pending :=
              { m with pm_src = Regalloc.Lfreg Asm.float_scratch1 } :: rest;
            progress := true
          | Regalloc.Lslot _ -> fail "slot source in parallel move")
       | [] -> ())
  done;
  if !pending <> [] then fail "parallel move did not converge"

(* ---- linearization ------------------------------------------------- *)

(* Skip Inop chains. *)
let resolve (f : Rtl.func) (n : Rtl.node) : Rtl.node =
  let rec go n steps =
    if steps > 100000 then n
    else
      match Rtl.get_instr f n with
      | Rtl.Inop s when s <> n -> go s (steps + 1)
      | _ -> n
  in
  go n 0

let translate_func (f : Rtl.func) : Asm.func =
  let alloc = Regalloc.allocate f in
  (match Regalloc.verify f alloc with
   | Ok () -> ()
   | Error msg -> fail "register allocation validator rejected %s: %s" f.Rtl.f_name msg);
  let fsize = frame_size alloc.Regalloc.ra_nslots in
  let cx = { cx_func = f; cx_alloc = alloc; cx_buf = ref [] } in
  (* layout order: reverse postorder over resolved nodes, skipping nops *)
  let order =
    List.filter
      (fun n ->
         match Rtl.get_instr f n with
         | Rtl.Inop _ -> false
         | _ -> true)
      (Rtl.reverse_postorder f)
  in
  let order =
    (* make sure the entry's resolved target comes first *)
    let entry = resolve f f.Rtl.f_entry in
    entry :: List.filter (fun n -> n <> entry) order
  in
  let order_arr = Array.of_list order in
  let next_of (i : int) : Rtl.node option =
    if i + 1 < Array.length order_arr then Some order_arr.(i + 1) else None
  in
  (* which nodes need labels *)
  let needs_label = Hashtbl.create 61 in
  List.iteri
    (fun i n ->
       let succs = List.map (resolve f) (Rtl.successors (Rtl.get_instr f n)) in
       match Rtl.get_instr f n, succs with
       | Rtl.Icond _, [ s1; s2 ] ->
         (* both targets need labels: two-condition float branches jump
            to the taken target by label even when it is the next block *)
         Hashtbl.replace needs_label s1 ();
         Hashtbl.replace needs_label s2 ()
       | _, [ s ] -> if next_of i <> Some s then Hashtbl.replace needs_label s ()
       | _, _ -> ())
    order;
  (* prologue *)
  if fsize > 0 then emit cx (Asm.Pallocframe fsize);
  let moves =
    let next_i = ref 3 and next_f = ref 1 in
    List.map
      (fun (r, c) ->
         let src =
           match c with
           | Rtl.Cint ->
             let s = !next_i in
             incr next_i;
             Regalloc.Lireg s
           | Rtl.Cfloat ->
             let s = !next_f in
             incr next_f;
             Regalloc.Lfreg s
         in
         { pm_src = src; pm_dst = Regalloc.location alloc r })
      f.Rtl.f_params
  in
  emit_parallel_moves cx moves;
  (* if the entry block is not first... it always is by construction *)
  List.iteri
    (fun i n ->
       if Hashtbl.mem needs_label n then emit cx (Asm.Plabel n);
       let instr = Rtl.get_instr f n in
       (match instr with
        | Rtl.Inop _ -> assert false
        | Rtl.Iop (op, args, d, _) -> emit_op cx op args d
        | Rtl.Iload (chunk, addr, args, d, _) -> emit_load cx chunk addr args d
        | Rtl.Istore (chunk, addr, args, src, _) ->
          emit_store cx chunk addr args src
        | Rtl.Iacq (x, d, _) ->
          (match Rtl.reg_class f d with
           | Rtl.Cfloat ->
             let m, fin = dest_freg cx d in
             emit cx (Asm.Pacqf (m, x));
             fin ()
           | Rtl.Cint ->
             let m, fin = dest_ireg cx d in
             emit cx (Asm.Pacqi (m, x));
             fin ())
        | Rtl.Iout (x, src, _) ->
          (match Rtl.reg_class f src with
           | Rtl.Cfloat ->
             let m = read_freg cx src ~scratch:Asm.float_scratch1 in
             emit cx (Asm.Poutf (x, m))
           | Rtl.Cint ->
             let m = read_ireg cx src ~scratch:Asm.int_scratch1 in
             emit cx (Asm.Pouti (x, m)))
        | Rtl.Iannot (text, aargs, _) ->
          emit cx (Asm.Pannot (text, List.map (annot_arg_of cx f) aargs))
        | Rtl.Icond (c, args, _, _) ->
          let conds =
            match c with
            | Rtl.Ccomp cmp ->
              let ra = read_ireg cx (List.nth args 0) ~scratch:Asm.int_scratch1 in
              let rb = read_ireg cx (List.nth args 1) ~scratch:Asm.int_scratch2 in
              emit cx (Asm.Pcmpw (ra, rb));
              [ cond_of_cmp cmp ]
            | Rtl.Ccompimm (cmp, imm) ->
              let ra = read_ireg cx (List.nth args 0) ~scratch:Asm.int_scratch1 in
              if fits_simm16 imm then emit cx (Asm.Pcmpwi (ra, imm))
              else begin
                emit_intconst cx Asm.int_scratch2 imm;
                emit cx (Asm.Pcmpw (ra, Asm.int_scratch2))
              end;
              [ cond_of_cmp cmp ]
            | Rtl.Cfcomp cmp ->
              let ra = read_freg cx (List.nth args 0) ~scratch:Asm.float_scratch1 in
              let rb = read_freg cx (List.nth args 1) ~scratch:Asm.float_scratch2 in
              emit cx (Asm.Pfcmpu (ra, rb));
              fconds_of_cmp cmp
          in
          let s1 = resolve f (List.nth (Rtl.successors instr) 0) in
          let s2 = resolve f (List.nth (Rtl.successors instr) 1) in
          let next = next_of i in
          (match conds with
           | [ c1 ] ->
             if next = Some s1 then emit cx (Asm.Pbc (negate_cond c1, s2))
             else begin
               emit cx (Asm.Pbc (c1, s1));
               if next <> Some s2 then emit cx (Asm.Pb s2)
             end
           | cs ->
             List.iter (fun cc -> emit cx (Asm.Pbc (cc, s1))) cs;
             if next <> Some s2 then emit cx (Asm.Pb s2))
        | Rtl.Ireturn ret ->
          (match ret, f.Rtl.f_ret with
           | Some r, Some Minic.Ast.Tfloat ->
             let m = read_freg cx r ~scratch:1 in
             if m <> 1 then emit cx (Asm.Pfmr (1, m))
           | Some r, (Some Minic.Ast.Tint | Some Minic.Ast.Tbool) ->
             let m = read_ireg cx r ~scratch:3 in
             if m <> 3 then emit cx (Asm.Pmr (3, m))
           | Some _, None | None, Some _ | None, None -> ());
          if fsize > 0 then emit cx (Asm.Pfreeframe fsize);
          emit cx Asm.Pblr);
       (* fall-through repair for straight-line successors *)
       (match instr with
        | Rtl.Iop (_, _, _, s)
        | Rtl.Iload (_, _, _, _, s)
        | Rtl.Istore (_, _, _, _, s)
        | Rtl.Iacq (_, _, s)
        | Rtl.Iout (_, _, s)
        | Rtl.Iannot (_, _, s) ->
          let s = resolve f s in
          if next_of i <> Some s then emit cx (Asm.Pb s)
        | Rtl.Inop _ | Rtl.Icond _ | Rtl.Ireturn _ -> ()))
    order;
  { Asm.fn_name = f.Rtl.f_name; fn_code = List.rev !(cx.cx_buf) }

let translate_program (p : Rtl.program) : Asm.program =
  { Asm.pr_funcs = List.map translate_func p.Rtl.p_funcs;
    pr_main = p.Rtl.p_main }
