(* Compilation driver of the verified-style compiler ("vcomp", standing
   in for CompCert 1.7): selection, constant propagation, CSE, dead-code
   elimination, graph-coloring register allocation, linearization and
   assembly emission — the pass list the paper attributes to CompCert
   ("constant propagation, common subexpression elimination and register
   allocation by graph coloring, but no loop optimizations").

   Every enabled optimization runs under its translation validator
   unless [validate] is turned off (benchmark runs disable it for
   compile-time measurements; correctness tests always keep it on). *)

type options = {
  opt_constprop : bool;
  opt_cse : bool;
  opt_deadcode : bool;
  opt_validate : bool;
}

let default_options : options =
  { opt_constprop = true; opt_cse = true; opt_deadcode = true; opt_validate = true }

(* Ablation configurations used by the design-choice benchmarks. *)
let no_constprop : options = { default_options with opt_constprop = false }
let no_cse : options = { default_options with opt_cse = false }
let no_validation : options = { default_options with opt_validate = false }

let run_pass (opts : options) (name : string)
    (pass : Rtl.program -> Rtl.program) (p : Rtl.program) : Rtl.program =
  if opts.opt_validate then begin
    let before = Rtl.copy_program p in
    let after = pass p in
    Validate.check_pass ~pass:name ~before ~after;
    after
  end
  else pass p

(* Compile a type-checked mini-C program to target assembly. *)
let compile ?(options = default_options) (src : Minic.Ast.program) :
  Target.Asm.program =
  Minic.Typecheck.check_program_exn src;
  let rtl = Selection.trans_program src in
  let rtl =
    if options.opt_constprop then
      run_pass options "constprop" Constprop.transform rtl
    else rtl
  in
  let rtl =
    if options.opt_cse then run_pass options "cse" Cse.transform rtl else rtl
  in
  let rtl =
    if options.opt_deadcode then
      run_pass options "deadcode" Deadcode.transform rtl
    else rtl
  in
  Asmgen.translate_program rtl

(* Compile and also return the final RTL, for inspection and tests. *)
let compile_with_rtl ?(options = default_options) (src : Minic.Ast.program) :
  Rtl.program * Target.Asm.program =
  Minic.Typecheck.check_program_exn src;
  let rtl = Selection.trans_program src in
  let rtl =
    if options.opt_constprop then
      run_pass options "constprop" Constprop.transform rtl
    else rtl
  in
  let rtl =
    if options.opt_cse then run_pass options "cse" Cse.transform rtl else rtl
  in
  let rtl =
    if options.opt_deadcode then
      run_pass options "deadcode" Deadcode.transform rtl
    else rtl
  in
  (rtl, Asmgen.translate_program rtl)
