(* The symbol library of the SCADE-like specification language.

   Flight control laws are written as dataflow graphs of instances of a
   fixed symbol library (gains, filters, limiters, lookup tables, mode
   logic...). The qualified code generator ([Acg]) emits one fixed
   mini-C pattern per symbol — the structure on which the whole
   pattern-based verification strategy of the paper rests, and the
   structure whose stack-frame round trips CompCert's register
   allocation removes. *)

type wire = int

type styp =
  | Sfloat
  | Sbool
  | Sint

(* A data source: a wire produced by an upstream symbol or a literal. *)
type source =
  | Swire of wire
  | Sconstf of float
  | Sconstb of bool
  | Sconsti of int32

(* 1-D interpolation table (monotonically increasing breakpoints). *)
type table = {
  tb_breaks : float array;
  tb_values : float array; (* same length, >= 2 *)
}

type comparison =
  | CMPlt
  | CMPle
  | CMPgt
  | CMPge
  | CMPeq

(* The symbol library. Stateful symbols (filter, delay, integrator,
   rate limiter, hysteresis, counter, moving average) keep their state
   in globals generated per instance. *)
type op =
  | Yacq of string                       (* float signal acquisition *)
  | Yout of string * source              (* float actuator output; no wire *)
  | Youtb of string * source             (* boolean discrete output *)
  | Ygain of float * source
  | Ybias of float * source
  | Ysum of source * source
  | Ydiff of source * source
  | Yprod of source * source
  | Ydivsafe of source * source          (* 0 when |divisor| < 1e-9 *)
  | Yabs of source
  | Yneg of source
  | Ysqrt_approx of source               (* 4 Newton steps, straight-line *)
  | Ylimiter of float * float * source   (* lo, hi *)
  | Ydeadband of float * source
  | Yfilter of float * source            (* first-order lag, coeff in [0,1) *)
  | Ydelay of source                     (* unit delay *)
  | Yintegrator of float * float * float * source (* dt, lo, hi *)
  | Yratelimit of float * source         (* max |slope| per cycle *)
  | Ylookup of table * source            (* interpolation, search loop *)
  | Ymovavg of int * source              (* moving average, window loop *)
  | Yselect of source * source * source  (* if b then x else y *)
  | Ycmp of comparison * source * source (* bool *)
  | Yhysteresis of float * float * source (* bool, on/off thresholds *)
  | Yand of source * source
  | Yor of source * source
  | Ynot of source
  | Ycount of source                     (* int: counts cycles while b *)
  | Ymodalsum of int * source            (* config-bounded loop: the
                                            annotation showcase of
                                            paper section 3.4 *)

(* An instance: the produced wire (None for outputs) and the operation. *)
type instance = {
  i_wire : wire option;
  i_op : op;
}

type node = {
  n_name : string;
  n_instances : instance list; (* must be in dependency order *)
}

(* Result type of a symbol. *)
let result_typ (op : op) : styp option =
  match op with
  | Yout _ | Youtb _ -> None
  | Ycmp _ | Yhysteresis _ | Yand _ | Yor _ | Ynot _ -> Some Sbool
  | Ycount _ -> Some Sint
  | Yacq _ | Ygain _ | Ybias _ | Ysum _ | Ydiff _ | Yprod _ | Ydivsafe _
  | Yabs _ | Yneg _ | Ysqrt_approx _ | Ylimiter _ | Ydeadband _ | Yfilter _
  | Ydelay _ | Yintegrator _ | Yratelimit _ | Ylookup _ | Ymovavg _
  | Yselect _ | Ymodalsum _ -> Some Sfloat

(* Sources read by a symbol. *)
let sources (op : op) : source list =
  match op with
  | Yacq _ -> []
  | Yout (_, s) | Youtb (_, s) -> [ s ]
  | Ygain (_, s) | Ybias (_, s) | Yabs s | Yneg s | Ysqrt_approx s
  | Ylimiter (_, _, s) | Ydeadband (_, s) | Yfilter (_, s) | Ydelay s
  | Yintegrator (_, _, _, s) | Yratelimit (_, s) | Ylookup (_, s)
  | Ymovavg (_, s) | Ynot s | Ycount s | Ymodalsum (_, s) -> [ s ]
  | Ysum (a, b) | Ydiff (a, b) | Yprod (a, b) | Ydivsafe (a, b)
  | Ycmp (_, a, b) | Yand (a, b) | Yor (a, b) -> [ a; b ]
  | Yselect (c, a, b) -> [ c; a; b ]
  | Yhysteresis (_, _, s) -> [ s ]

let wires_read (op : op) : wire list =
  List.filter_map
    (fun s -> match s with Swire w -> Some w | Sconstf _ | Sconstb _ | Sconsti _ -> None)
    (sources op)

(* Does the symbol carry internal state across cycles? *)
let is_stateful (op : op) : bool =
  match op with
  | Yfilter _ | Ydelay _ | Yintegrator _ | Yratelimit _ | Yhysteresis _
  | Ycount _ | Ymovavg _ -> true
  | Yacq _ | Yout _ | Youtb _ | Ygain _ | Ybias _ | Ysum _ | Ydiff _
  | Yprod _ | Ydivsafe _ | Yabs _ | Yneg _ | Ysqrt_approx _ | Ylimiter _
  | Ydeadband _ | Ylookup _ | Yselect _ | Ycmp _ | Yand _
  | Yor _ | Ynot _ | Ymodalsum _ -> false

(* Expected type of each source position. *)
let source_typs (op : op) : styp list =
  match op with
  | Yacq _ -> []
  | Yout _ -> [ Sfloat ]
  | Youtb _ -> [ Sbool ]
  | Ygain _ | Ybias _ | Yabs _ | Yneg _ | Ysqrt_approx _ | Ylimiter _
  | Ydeadband _ | Yfilter _ | Ydelay _ | Yintegrator _ | Yratelimit _
  | Ylookup _ | Ymovavg _ | Ymodalsum _ -> [ Sfloat ]
  | Ysum _ | Ydiff _ | Yprod _ | Ydivsafe _ | Ycmp _ -> [ Sfloat; Sfloat ]
  | Yand _ | Yor _ -> [ Sbool; Sbool ]
  | Ynot _ | Ycount _ -> [ Sbool ]
  | Yselect _ -> [ Sbool; Sfloat; Sfloat ]
  | Yhysteresis _ -> [ Sfloat ]

let symbol_name (op : op) : string =
  match op with
  | Yacq _ -> "acq" | Yout _ -> "out" | Youtb _ -> "outb"
  | Ygain _ -> "gain" | Ybias _ -> "bias" | Ysum _ -> "sum"
  | Ydiff _ -> "diff" | Yprod _ -> "prod" | Ydivsafe _ -> "divsafe"
  | Yabs _ -> "abs" | Yneg _ -> "neg" | Ysqrt_approx _ -> "sqrt"
  | Ylimiter _ -> "limiter" | Ydeadband _ -> "deadband"
  | Yfilter _ -> "filter" | Ydelay _ -> "delay"
  | Yintegrator _ -> "integrator" | Yratelimit _ -> "ratelimit"
  | Ylookup _ -> "lookup" | Ymovavg _ -> "movavg" | Yselect _ -> "select"
  | Ycmp _ -> "cmp" | Yhysteresis _ -> "hysteresis" | Yand _ -> "and"
  | Yor _ -> "or" | Ynot _ -> "not" | Ycount _ -> "count"
  | Ymodalsum _ -> "modalsum"

exception Ill_formed of string

(* Structural validation: wires defined before use, types consistent,
   tables well-formed. Returns the wire typing. *)
let check_node (n : node) : (wire, styp) Hashtbl.t =
  let typs : (wire, styp) Hashtbl.t = Hashtbl.create 61 in
  let typ_of_source (s : source) : styp =
    match s with
    | Sconstf _ -> Sfloat
    | Sconstb _ -> Sbool
    | Sconsti _ -> Sint
    | Swire w ->
      (match Hashtbl.find_opt typs w with
       | Some t -> t
       | None ->
         raise (Ill_formed (Printf.sprintf "%s: wire %d used before defined"
                              n.n_name w)))
  in
  List.iter
    (fun inst ->
       let expected = source_typs inst.i_op in
       let actual = List.map typ_of_source (sources inst.i_op) in
       if List.length expected <> List.length actual
          || not (List.for_all2 ( = ) expected actual) then
         raise (Ill_formed (Printf.sprintf "%s: type mismatch at symbol %s"
                              n.n_name (symbol_name inst.i_op)));
       (match inst.i_op with
        | Ylookup (tb, _) ->
          let k = Array.length tb.tb_breaks in
          if k < 2 || Array.length tb.tb_values <> k then
            raise (Ill_formed (n.n_name ^ ": malformed lookup table"));
          for i = 0 to k - 2 do
            if tb.tb_breaks.(i) >= tb.tb_breaks.(i + 1) then
              raise (Ill_formed (n.n_name ^ ": non-monotonic breakpoints"))
          done
        | Ymovavg (w, _) ->
          if w < 2 || w > 64 then
            raise (Ill_formed (n.n_name ^ ": moving average window out of range"))
        | Ymodalsum (k, _) ->
          if k < 1 || k > 64 then
            raise (Ill_formed (n.n_name ^ ": modal sum bound out of range"))
        | Yfilter (a, _) ->
          if not (a >= 0.0 && a < 1.0) then
            raise (Ill_formed (n.n_name ^ ": filter coefficient out of range"))
        | _ -> ());
       match inst.i_wire, result_typ inst.i_op with
       | Some w, Some t ->
         if Hashtbl.mem typs w then
           raise (Ill_formed (Printf.sprintf "%s: wire %d defined twice"
                                n.n_name w));
         Hashtbl.replace typs w t
       | None, None -> ()
       | Some _, None ->
         raise (Ill_formed (n.n_name ^ ": output symbol cannot define a wire"))
       | None, Some _ ->
         raise (Ill_formed (n.n_name ^ ": value symbol must define a wire")))
    n.n_instances;
  typs
