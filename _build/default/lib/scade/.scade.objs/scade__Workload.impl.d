lib/scade/workload.ml: Acg Array List Minic Printf Random Schedule Symbol
