lib/scade/symbol.ml: Array Hashtbl List Printf
