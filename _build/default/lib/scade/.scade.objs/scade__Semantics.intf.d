lib/scade/semantics.mli: Minic Symbol
