lib/scade/schedule.mli: Symbol
