lib/scade/schedule.ml: Array Hashtbl List Symbol
