lib/scade/acg.ml: Array Hashtbl Int32 List Minic Printf String Symbol
