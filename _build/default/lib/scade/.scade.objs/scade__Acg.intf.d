lib/scade/acg.mli: Minic Symbol
