lib/scade/semantics.ml: Array Float Hashtbl Int32 List Minic Option Printf Symbol
