lib/scade/workload.mli: Minic Symbol
