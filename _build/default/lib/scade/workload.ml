(* Synthetic flight-control workload generator.

   The paper's evaluation runs over ≈2500 automatically generated files
   of Airbus flight control software — proprietary, so per DESIGN.md we
   substitute seeded synthetic nodes with the same structure: a handful
   of signal acquisitions, a long mostly-straight-line mix of library
   symbols (arithmetic, filters, limiters, mode logic), occasional
   lookup tables, moving-average windows and config-bounded modal loops,
   and one or two actuator outputs. Sizes and symbol mix are
   parameterized; generation is deterministic in the seed. *)

type profile = {
  pf_symbols : int;       (* number of generated value symbols *)
  pf_acquisitions : int;  (* volatile inputs, >= 1 *)
  pf_outputs : int;       (* actuator outputs, >= 1 *)
  pf_loopy : bool;        (* allow lookup/movavg/modalsum symbols *)
}

let small_node : profile =
  { pf_symbols = 15; pf_acquisitions = 1; pf_outputs = 1; pf_loopy = false }

let medium_node : profile =
  { pf_symbols = 45; pf_acquisitions = 2; pf_outputs = 2; pf_loopy = true }

let large_node : profile =
  { pf_symbols = 110; pf_acquisitions = 4; pf_outputs = 3; pf_loopy = true }

(* Acquisition-dominated node: lots of I/O, little computation — the
   paper's "strong performance bottleneck" nodes whose WCET barely
   improves under any compiler. *)
let io_node : profile =
  { pf_symbols = 8; pf_acquisitions = 6; pf_outputs = 4; pf_loopy = false }


(* Random helpers over a deterministic state. *)
let pickf (rng : Random.State.t) (lo : float) (hi : float) : float =
  lo +. Random.State.float rng (hi -. lo)

let pick_list (rng : Random.State.t) (xs : 'a list) : 'a =
  List.nth xs (Random.State.int rng (List.length xs))

let generate_node ?(profile = medium_node) ~(seed : int) (name : string) :
  Symbol.node =
  let rng = Random.State.make [| seed; 0x5CADE |] in
  (* wire identifiers are local to the node: generation is a pure
     function of the seed *)
  let wire_counter = ref 0 in
  let fresh_wire () =
    incr wire_counter;
    !wire_counter
  in
  let instances = ref [] in
  let float_wires = ref [] in
  let bool_wires = ref [] in
  (* wires not yet consumed: preferred as sources, so that (like real
     control laws, where unused signals are modelling errors) almost
     every computed signal is live — a compiler cannot win by deleting
     dead subgraphs *)
  let unused_float = ref [] in
  let unused_bool = ref [] in
  let add (op : Symbol.op) : unit =
    match Symbol.result_typ op with
    | None -> instances := { Symbol.i_wire = None; i_op = op } :: !instances
    | Some t ->
      let w = fresh_wire () in
      instances := { Symbol.i_wire = Some w; i_op = op } :: !instances;
      (match t with
       | Symbol.Sfloat ->
         float_wires := w :: !float_wires;
         unused_float := w :: !unused_float
       | Symbol.Sbool ->
         bool_wires := w :: !bool_wires;
         unused_bool := w :: !unused_bool
       | Symbol.Sint -> ())
  in
  let fsrc () : Symbol.source =
    match !unused_float with
    | w :: rest when Random.State.int rng 100 < 70 ->
      unused_float := rest;
      Symbol.Swire w
    | _ ->
      if Random.State.int rng 20 = 0 || !float_wires = [] then
        Symbol.Sconstf (pickf rng (-8.0) 8.0)
      else begin
        let w = pick_list rng !float_wires in
        unused_float := List.filter (fun x -> x <> w) !unused_float;
        Symbol.Swire w
      end
  in
  let bsrc () : Symbol.source =
    match !unused_bool with
    | w :: rest when Random.State.int rng 100 < 70 ->
      unused_bool := rest;
      Symbol.Swire w
    | _ ->
      if !bool_wires = [] then Symbol.Sconstb (Random.State.bool rng)
      else begin
        let w = pick_list rng !bool_wires in
        unused_bool := List.filter (fun x -> x <> w) !unused_bool;
        Symbol.Swire w
      end
  in
  (* acquisitions *)
  for i = 0 to profile.pf_acquisitions - 1 do
    add (Symbol.Yacq (Printf.sprintf "%s_in%d" name i))
  done;
  (* body *)
  for _ = 1 to profile.pf_symbols do
    let r = Random.State.int rng 100 in
    let op =
      if r < 12 then Symbol.Ysum (fsrc (), fsrc ())
      else if r < 22 then Symbol.Ydiff (fsrc (), fsrc ())
      else if r < 32 then Symbol.Yprod (fsrc (), fsrc ())
      else if r < 36 then Symbol.Ydivsafe (fsrc (), fsrc ())
      else if r < 44 then Symbol.Ygain (pickf rng (-3.0) 3.0, fsrc ())
      else if r < 48 then Symbol.Ybias (pickf rng (-5.0) 5.0, fsrc ())
      else if r < 52 then Symbol.Yabs (fsrc ())
      else if r < 58 then begin
        let lo = pickf rng (-50.0) 0.0 in
        Symbol.Ylimiter (lo, lo +. pickf rng 1.0 80.0, fsrc ())
      end
      else if r < 61 then Symbol.Ydeadband (pickf rng 0.1 2.0, fsrc ())
      else if r < 69 then Symbol.Yfilter (pickf rng 0.02 0.6, fsrc ())
      else if r < 73 then Symbol.Ydelay (fsrc ())
      else if r < 76 then begin
        let lo = pickf rng (-40.0) (-1.0) in
        Symbol.Yintegrator (pickf rng 0.005 0.04, lo, -.lo, fsrc ())
      end
      else if r < 79 then Symbol.Yratelimit (pickf rng 0.2 4.0, fsrc ())
      else if r < 84 then
        Symbol.Ycmp
          ( pick_list rng
              [ Symbol.CMPlt; Symbol.CMPle; Symbol.CMPgt; Symbol.CMPge ],
            fsrc (), fsrc () )
      else if r < 87 then Symbol.Yand (bsrc (), bsrc ())
      else if r < 89 then Symbol.Yor (bsrc (), bsrc ())
      else if r < 90 then Symbol.Ynot (bsrc ())
      else if r < 94 then Symbol.Yselect (bsrc (), fsrc (), fsrc ())
      else if r < 95 then begin
        let on = pickf rng 0.5 5.0 in
        Symbol.Yhysteresis (on, on -. pickf rng 0.2 1.0, fsrc ())
      end
      else if profile.pf_loopy && r < 97 then begin
        (* monotone random lookup table, 4..8 points *)
        let k = 4 + Random.State.int rng 5 in
        let start = pickf rng (-20.0) 0.0 in
        let breaks = Array.make k start in
        for i = 1 to k - 1 do
          breaks.(i) <- breaks.(i - 1) +. pickf rng 0.5 6.0
        done;
        let values = Array.init k (fun _ -> pickf rng (-30.0) 30.0) in
        Symbol.Ylookup
          ({ Symbol.tb_breaks = breaks; tb_values = values }, fsrc ())
      end
      else if profile.pf_loopy && r < 98 then
        Symbol.Ymovavg (4 + (2 * Random.State.int rng 5), fsrc ())
      else if profile.pf_loopy && r < 99 then
        Symbol.Ymodalsum (4 + Random.State.int rng 8, fsrc ())
      else Symbol.Ysqrt_approx (fsrc ())
    in
    add op
  done;
  (* consolidation cone: sum together every wire still unconsumed, so
     no computed signal is dead *)
  let rec drain () =
    match !unused_float with
    | a :: b :: _ ->
      unused_float := List.filteri (fun i _ -> i >= 2) !unused_float;
      add (Symbol.Ysum (Symbol.Swire a, Symbol.Swire b));
      drain ()
    | [ _ ] | [] -> ()
  in
  drain ();
  List.iter
    (fun w -> add (Symbol.Youtb (Printf.sprintf "%s_outb%d" name w, Symbol.Swire w)))
    !unused_bool;
  unused_bool := [];
  (* outputs: drive actuators from late float wires (the "result" of
     the control law) *)
  for i = 0 to profile.pf_outputs - 1 do
    add (Symbol.Yout (Printf.sprintf "%s_out%d" name i, fsrc ()))
  done;
  Schedule.sort { Symbol.n_name = name; n_instances = List.rev !instances }

(* A whole synthetic flight control program: [n] nodes of mixed sizes.
   Returns (node, its generated mini-C program) pairs. *)
let flight_program ~(nodes : int) ~(seed : int) :
  (Symbol.node * Minic.Ast.program) list =
  List.init nodes (fun i ->
      let profile =
        match i mod 10 with
        | 0 | 1 | 2 -> io_node
        | 3 | 4 -> small_node
        | 5 | 6 | 7 | 8 -> medium_node
        | _ -> large_node
      in
      let node =
        generate_node ~profile ~seed:(seed + (7919 * i))
          (Printf.sprintf "n%03d" i)
      in
      (node, Acg.generate node))
