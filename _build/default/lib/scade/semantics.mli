(** Independent reference semantics of SCADE-like nodes: evaluates the
    dataflow graph cycle by cycle, mirroring bit-for-bit the float
    operations (and their order) of the ACG patterns. The test suite
    checks that the generated code — through the interpreter, every
    compiler and the simulator — produces exactly the events this
    evaluator predicts. *)

type state

val init : Symbol.node -> state
(** @raise Symbol.Ill_formed on malformed nodes. *)

val run_cycle : state -> Minic.Interp.world -> unit

val run :
  Symbol.node -> Minic.Interp.world -> cycles:int -> Minic.Interp.event list
(** Run [cycles] cycles from the initial state; the event trace. *)
