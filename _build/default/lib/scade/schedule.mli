(** Scheduling of dataflow nodes: a stable topological sort ordering
    every symbol instance after the producers of the wires it reads.
    Feedback must be cut by a delay *listed after its source* — a
    purely combinational cycle is an error. *)

exception Cycle of string

val sort : Symbol.node -> Symbol.node
(** @raise Cycle on combinational cycles. *)
