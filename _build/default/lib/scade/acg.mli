(** The qualified automatic code generator: SCADE-like nodes to mini-C,
    one fixed pattern per symbol instance (naming scheme in the
    implementation header). The generated entry point [<node>_main]
    takes no parameters: inputs are volatile acquisitions, state lives
    in per-instance globals — one control cycle per call. *)

val generate : Symbol.node -> Minic.Ast.program
(** @raise Symbol.Ill_formed on nodes that fail {!Symbol.check_node}. *)
