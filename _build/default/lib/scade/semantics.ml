(* Independent reference semantics of SCADE-like nodes.

   Evaluates a node cycle-by-cycle directly on the dataflow graph,
   mirroring bit-for-bit the float operations (and their order) that the
   ACG patterns perform. The test suite checks that the ACG output run
   through the mini-C interpreter — and through every compiler and the
   machine simulator — produces exactly the observable events this
   evaluator predicts: the end-to-end "development chain" validation of
   the paper's Figure 1. *)

type value =
  | Fv of float
  | Bv of bool
  | Iv of int32

(* Per-instance persistent state. *)
type inst_state =
  | St_none
  | St_float of float ref
  | St_bool of bool ref
  | St_int of int32 ref
  | St_window of float array * int ref (* moving average: buffer, pointer *)

type state = {
  node : Symbol.node;
  inst_states : inst_state array;
  wire_vals : (Symbol.wire, value) Hashtbl.t;
  vol_counts : (string, int) Hashtbl.t;
  mutable events_rev : Minic.Interp.event list;
}

let init (n : Symbol.node) : state =
  ignore (Symbol.check_node n);
  let inst_states =
    Array.of_list
      (List.map
         (fun inst ->
            match inst.Symbol.i_op with
            | Symbol.Yfilter _ | Symbol.Ydelay _ | Symbol.Yintegrator _
            | Symbol.Yratelimit _ -> St_float (ref 0.0)
            | Symbol.Yhysteresis _ -> St_bool (ref false)
            | Symbol.Ycount _ -> St_int (ref 0l)
            | Symbol.Ymovavg (w, _) -> St_window (Array.make w 0.0, ref 0)
            | _ -> St_none)
         n.Symbol.n_instances)
  in
  { node = n;
    inst_states;
    wire_vals = Hashtbl.create 61;
    vol_counts = Hashtbl.create 17;
    events_rev = [] }

let as_f (v : value) : float =
  match v with Fv f -> f | Bv _ | Iv _ -> invalid_arg "Semantics: float expected"

let as_b (v : value) : bool =
  match v with Bv b -> b | Fv _ | Iv _ -> invalid_arg "Semantics: bool expected"

let source_value (st : state) (s : Symbol.source) : value =
  match s with
  | Symbol.Sconstf f -> Fv f
  | Symbol.Sconstb b -> Bv b
  | Symbol.Sconsti n -> Iv n
  | Symbol.Swire w ->
    (match Hashtbl.find_opt st.wire_vals w with
     | Some v -> v
     | None -> invalid_arg "Semantics: wire read before write")

let emit (st : state) (e : Minic.Interp.event) : unit =
  st.events_rev <- e :: st.events_rev

let read_volatile (st : state) (w : Minic.Interp.world) (x : string) : float =
  let k = Option.value ~default:0 (Hashtbl.find_opt st.vol_counts x) in
  Hashtbl.replace st.vol_counts x (k + 1);
  let v = Minic.Interp.world_value w Minic.Ast.Tfloat x k in
  emit st (Minic.Interp.Ev_vol_read (x, v));
  match v with
  | Minic.Value.Vfloat f -> f
  | Minic.Value.Vint _ | Minic.Value.Vbool _ -> assert false

let eval_cmp (c : Symbol.comparison) (a : float) (b : float) : bool =
  match c with
  | Symbol.CMPlt -> a < b
  | Symbol.CMPle -> a <= b
  | Symbol.CMPgt -> a > b
  | Symbol.CMPge -> a >= b
  | Symbol.CMPeq -> a = b

(* One instance evaluation; mirrors the ACG pattern exactly. *)
let eval_instance (st : state) (w : Minic.Interp.world) (idx : int)
    (inst : Symbol.instance) : unit =
  let sv = source_value st in
  let setw (v : value) : unit =
    match inst.Symbol.i_wire with
    | Some wr -> Hashtbl.replace st.wire_vals wr v
    | None -> invalid_arg "Semantics: value symbol without wire"
  in
  match inst.Symbol.i_op, st.inst_states.(idx) with
  | Symbol.Yacq vol, St_none -> setw (Fv (read_volatile st w vol))
  | Symbol.Yout (vol, s), St_none ->
    emit st (Minic.Interp.Ev_vol_write (vol, Minic.Value.Vfloat (as_f (sv s))))
  | Symbol.Youtb (vol, s), St_none ->
    emit st (Minic.Interp.Ev_vol_write (vol, Minic.Value.Vbool (as_b (sv s))))
  | Symbol.Ygain (k, s), St_none -> setw (Fv (as_f (sv s) *. k))
  | Symbol.Ybias (k, s), St_none -> setw (Fv (as_f (sv s) +. k))
  | Symbol.Ysum (a, b), St_none -> setw (Fv (as_f (sv a) +. as_f (sv b)))
  | Symbol.Ydiff (a, b), St_none -> setw (Fv (as_f (sv a) -. as_f (sv b)))
  | Symbol.Yprod (a, b), St_none -> setw (Fv (as_f (sv a) *. as_f (sv b)))
  | Symbol.Ydivsafe (a, b), St_none ->
    let bf = as_f (sv b) in
    setw (Fv (if Float.abs bf < 1e-9 then 0.0 else as_f (sv a) /. bf))
  | Symbol.Yabs s, St_none -> setw (Fv (Float.abs (as_f (sv s))))
  | Symbol.Yneg s, St_none -> setw (Fv (Float.neg (as_f (sv s))))
  | Symbol.Ysqrt_approx s, St_none ->
    let x = as_f (sv s) in
    if x <= 0.0 then setw (Fv 0.0)
    else begin
      let g = ref (0.5 *. (x +. 1.0)) in
      for _ = 1 to 4 do
        g := 0.5 *. (!g +. (x /. !g))
      done;
      setw (Fv !g)
    end
  | Symbol.Ylimiter (lo, hi, s), St_none ->
    let x = as_f (sv s) in
    setw (Fv (if x > hi then hi else if x < lo then lo else x))
  | Symbol.Ydeadband (d, s), St_none ->
    let x = as_f (sv s) in
    setw (Fv (if x > d then x -. d else if x < -.d then x +. d else 0.0))
  | Symbol.Yfilter (a, s), St_float r ->
    let v = !r +. (a *. (as_f (sv s) -. !r)) in
    r := v;
    setw (Fv v)
  | Symbol.Ydelay s, St_float r ->
    let out = !r in
    r := as_f (sv s);
    setw (Fv out)
  | Symbol.Yintegrator (dt, lo, hi, s), St_float r ->
    let v = !r +. (as_f (sv s) *. dt) in
    let v = if v > hi then hi else if v < lo then lo else v in
    r := v;
    setw (Fv v)
  | Symbol.Yratelimit (rate, s), St_float r ->
    let x = as_f (sv s) in
    let d = x -. !r in
    let v =
      if d > rate then !r +. rate
      else if d < -.rate then !r -. rate
      else x
    in
    r := v;
    setw (Fv v)
  | Symbol.Ylookup (tb, s), St_none ->
    let x = as_f (sv s) in
    let n = Array.length tb.Symbol.tb_breaks in
    let v =
      if x <= tb.Symbol.tb_breaks.(0) then tb.Symbol.tb_values.(0)
      else if x >= tb.Symbol.tb_breaks.(n - 1) then tb.Symbol.tb_values.(n - 1)
      else begin
        let k = ref 0 in
        for j = 1 to n - 2 do
          if x >= tb.Symbol.tb_breaks.(j) then k := j
        done;
        let slope =
          (tb.Symbol.tb_values.(!k + 1) -. tb.Symbol.tb_values.(!k))
          /. (tb.Symbol.tb_breaks.(!k + 1) -. tb.Symbol.tb_breaks.(!k))
        in
        tb.Symbol.tb_values.(!k) +. ((x -. tb.Symbol.tb_breaks.(!k)) *. slope)
      end
    in
    setw (Fv v)
  | Symbol.Ymovavg (w_, s), St_window (buf, ptr) ->
    buf.(!ptr) <- as_f (sv s);
    ptr := !ptr + 1;
    if !ptr >= w_ then ptr := 0;
    let acc = ref 0.0 in
    for j = 0 to w_ - 1 do
      acc := !acc +. buf.(j)
    done;
    setw (Fv (!acc /. float_of_int w_))
  | Symbol.Yselect (c, a, b), St_none ->
    setw (Fv (if as_b (sv c) then as_f (sv a) else as_f (sv b)))
  | Symbol.Ycmp (c, a, b), St_none ->
    setw (Bv (eval_cmp c (as_f (sv a)) (as_f (sv b))))
  | Symbol.Yhysteresis (on, off, s), St_bool r ->
    let x = as_f (sv s) in
    let v = if !r then not (x < off) else x > on in
    r := v;
    setw (Bv v)
  | Symbol.Yand (a, b), St_none -> setw (Bv (as_b (sv a) && as_b (sv b)))
  | Symbol.Yor (a, b), St_none -> setw (Bv (as_b (sv a) || as_b (sv b)))
  | Symbol.Ynot s, St_none -> setw (Bv (not (as_b (sv s))))
  | Symbol.Ycount s, St_int r ->
    if as_b (sv s) then r := Int32.add !r 1l;
    setw (Iv !r)
  | Symbol.Ymodalsum (k, s), St_none ->
    let x = as_f (sv s) in
    let acc = ref 0.0 in
    for j = 0 to k - 1 do
      emit st (Minic.Interp.Ev_annot (Printf.sprintf "loopbound %d" k, []));
      acc := !acc +. (x *. (1.0 /. float_of_int (j + 1)))
    done;
    setw (Fv !acc)
  | _, _ -> invalid_arg "Semantics: instance/state mismatch"

(* Run one cycle; events accumulate in the state. *)
let run_cycle (st : state) (w : Minic.Interp.world) : unit =
  Hashtbl.reset st.wire_vals;
  List.iteri (fun idx inst -> eval_instance st w idx inst) st.node.Symbol.n_instances

(* Run [cycles] cycles from the initial state; returns the event trace. *)
let run (n : Symbol.node) (w : Minic.Interp.world) ~(cycles : int) :
  Minic.Interp.event list =
  let st = init n in
  for _ = 1 to cycles do
    run_cycle st w
  done;
  List.rev st.events_rev
