(** Synthetic flight-control workload generator: seeded, deterministic
    stand-in for the paper's ~2500 proprietary generated files (see
    DESIGN.md section 2). *)

type profile = {
  pf_symbols : int;       (** generated value symbols *)
  pf_acquisitions : int;  (** volatile inputs, >= 1 *)
  pf_outputs : int;       (** actuator outputs, >= 1 *)
  pf_loopy : bool;        (** allow lookup/movavg/modalsum symbols *)
}

val small_node : profile
val medium_node : profile
val large_node : profile

val io_node : profile
(** Acquisition-dominated: lots of I/O, little computation — the
    paper's nodes "with strong performance bottlenecks" whose WCET
    barely improves under any compiler. *)

val generate_node : ?profile:profile -> seed:int -> string -> Symbol.node
(** Deterministic in the seed; every computed signal is consumed
    (compilers cannot win by deleting dead subgraphs). *)

val flight_program :
  nodes:int -> seed:int -> (Symbol.node * Minic.Ast.program) list
(** A whole program: [nodes] nodes of mixed profiles with their
    generated mini-C. *)
