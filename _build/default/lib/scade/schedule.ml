(* Scheduling of a dataflow node: order the symbol instances so that
   every wire is produced before it is read (Kahn topological sort,
   stable with respect to the input order so that generated code is
   deterministic). Output symbols are kept after their producers;
   volatile acquisitions keep their relative order (the acquisition
   order is observable). *)

exception Cycle of string

let sort (n : Symbol.node) : Symbol.node =
  let instances = Array.of_list n.Symbol.n_instances in
  let count = Array.length instances in
  (* producer of each wire *)
  let producer : (Symbol.wire, int) Hashtbl.t = Hashtbl.create 61 in
  Array.iteri
    (fun i inst ->
       match inst.Symbol.i_wire with
       | Some w -> Hashtbl.replace producer w i
       | None -> ())
    instances;
  let deps (i : int) : int list =
    List.filter_map
      (fun w -> Hashtbl.find_opt producer w)
      (Symbol.wires_read instances.(i).Symbol.i_op)
  in
  (* stable Kahn: repeatedly take the first unscheduled instance whose
     dependencies are all scheduled *)
  let scheduled = Array.make count false in
  let order = ref [] in
  let remaining = ref count in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    for i = 0 to count - 1 do
      if (not scheduled.(i))
         && List.for_all (fun d -> scheduled.(d)) (deps i) then begin
        scheduled.(i) <- true;
        order := i :: !order;
        decr remaining;
        progress := true
      end
    done
  done;
  if !remaining > 0 then
    raise (Cycle (n.Symbol.n_name ^ ": dataflow cycle (missing delay?)"));
  { n with Symbol.n_instances = List.rev_map (fun i -> instances.(i)) !order }
