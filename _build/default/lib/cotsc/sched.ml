(* Post-pass list scheduler (full -O configuration only): reorders
   instructions inside basic blocks to break FPU dependence chains and
   hide load-to-use stalls, harvesting the dual-issue/pipelined-FPU
   overlap of the timing model. CompCert 1.7 had no scheduler (the
   paper's future-work section points at Tristan & Leroy's verified
   trace scheduling) — this pass is a differentiator of the COTS -O2.

   Dependence edges:
   - register RAW / WAR / WAW;
   - stores are ordered against every other memory access; loads may
     reorder freely among themselves (the constant pool is read-only);
   - observable operations (volatile acquisitions, actuator writes,
     annotations) keep their program order — the event trace is part of
     the semantics. *)

module Asm = Target.Asm

type mem_class =
  | Mnone
  | Mload
  | Mstore
  | Mobservable

let mem_class (i : Asm.instr) : mem_class =
  match i with
  | Asm.Plwz _ | Asm.Plfd _ | Asm.Plfdc _ -> Mload
  | Asm.Pstw _ | Asm.Pstfd _ -> Mstore
  | Asm.Pacqf _ | Asm.Pacqi _ | Asm.Poutf _ | Asm.Pouti _ | Asm.Pannot _ ->
    Mobservable
  | _ -> Mnone

(* Is the instruction immovable (block boundary)? *)
let boundary (i : Asm.instr) : bool =
  match i with
  | Asm.Plabel _ | Asm.Pb _ | Asm.Pbc _ | Asm.Pblr | Asm.Pallocframe _
  | Asm.Pfreeframe _ -> true
  | _ -> false

(* CR0 is modelled as an extra dependence register so that compares and
   setcc participate in scheduling soundly. Branches are boundaries, so
   a compare can never be moved past the Pbc consuming its result. *)
let cr0 : Asm.reg = Asm.IR (-1)

let sdefs (i : Asm.instr) : Asm.reg list =
  match i with
  | Asm.Pcmpw _ | Asm.Pcmpwi _ | Asm.Pfcmpu _ -> cr0 :: Asm.defs i
  | _ -> Asm.defs i

let suses (i : Asm.instr) : Asm.reg list =
  match i with
  | Asm.Psetcc _ | Asm.Pmovcc _ | Asm.Pfmovcc _ -> cr0 :: Asm.uses i
  | _ -> Asm.uses i

let intersects (a : Asm.reg list) (b : Asm.reg list) : bool =
  List.exists (fun x -> List.exists (fun y -> x = y) b) a

(* Schedule one region (no boundaries inside). *)
let schedule_region (instrs : Asm.instr array) : Asm.instr list =
  let n = Array.length instrs in
  if n <= 2 then Array.to_list instrs
  else begin
    (* dependence predecessors *)
    let preds = Array.make n [] in
    let add_edge i j = if i <> j then preds.(j) <- i :: preds.(j) in
    for j = 0 to n - 1 do
      for i = 0 to j - 1 do
        let di = sdefs instrs.(i) and dj = sdefs instrs.(j) in
        let ui = suses instrs.(i) and uj = suses instrs.(j) in
        let reg_dep =
          intersects di uj (* RAW *)
          || intersects ui dj (* WAR *)
          || intersects di dj (* WAW *)
        in
        let mem_dep =
          match mem_class instrs.(i), mem_class instrs.(j) with
          | Mstore, (Mload | Mstore | Mobservable)
          | (Mload | Mobservable), Mstore -> true
          | Mobservable, Mobservable -> true
          | Mload, Mobservable | Mobservable, Mload -> true
          | Mload, Mload | Mnone, _ | _, Mnone -> false
        in
        if reg_dep || mem_dep then add_edge i j
      done
    done;
    let scheduled = Array.make n false in
    let npreds = Array.map List.length preds in
    let out = ref [] in
    let last_defs = ref [] in
    for _ = 1 to n do
      (* ready instructions *)
      let ready = ref [] in
      for j = n - 1 downto 0 do
        if (not scheduled.(j)) && npreds.(j) = 0 then ready := j :: !ready
      done;
      (* prefer a ready instruction not consuming the last result *)
      let pick =
        match
          List.find_opt
            (fun j -> not (intersects !last_defs (suses instrs.(j))))
            !ready
        with
        | Some j -> j
        | None -> List.hd !ready
      in
      scheduled.(pick) <- true;
      last_defs := sdefs instrs.(pick);
      out := pick :: !out;
      for j = 0 to n - 1 do
        if (not scheduled.(j)) && List.mem pick preds.(j) then
          npreds.(j) <- npreds.(j) - List.length (List.filter (fun p -> p = pick) preds.(j))
      done
    done;
    List.rev_map (fun j -> instrs.(j)) !out
  end

let run_func (f : Asm.func) : Asm.func =
  let rec split (code : Asm.instr list) (region : Asm.instr list)
      (acc : Asm.instr list) : Asm.instr list =
    match code with
    | [] -> List.rev_append (schedule_region (Array.of_list (List.rev region))) acc |> List.rev
    | i :: rest ->
      if boundary i then
        let done_region =
          List.rev_append (schedule_region (Array.of_list (List.rev region))) acc
        in
        split rest [] (i :: done_region)
      else split rest (i :: region) acc
  in
  { f with Asm.fn_code = split f.Asm.fn_code [] [] }

let run (p : Asm.program) : Asm.program =
  { p with Asm.pr_funcs = List.map run_func p.Asm.pr_funcs }
