(** Code generator of the COTS baseline compiler in its three
    certification-relevant configurations (see the implementation
    header and DESIGN.md section 2 for the full pass description). *)

type config = {
  cg_fold : bool;           (** AST constant folding *)
  cg_peephole : bool;
  cg_regstack : bool;       (** register-stack evaluation + fusion *)
  cg_locals_in_regs : bool; (** linear-scan allocation of locals *)
  cg_sda : bool;            (** small-data-area addressing of globals *)
  cg_fmadd : bool;
      (** fused multiply-add contraction: semantics-relaxing (single
          rounding); the trace-equivalence tests disable it, the
          benchmark configuration ships it like a real -O2 *)
}

val o0 : config
(** The certified pattern configuration (paper Listing 1). *)

val o1 : config
(** Optimized without register allocation. *)

val o2 : config
(** Fully optimized. *)

exception Error of string

val gen_func : config -> Minic.Ast.program -> Minic.Ast.func -> Target.Asm.func
val gen_program : config -> Minic.Ast.program -> Target.Asm.program
