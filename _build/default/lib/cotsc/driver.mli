(** Driver of the COTS baseline compiler in the paper's three
    configurations. *)

type level =
  | Onone        (** no optimization: the certified pattern process *)
  | Onoregalloc  (** optimized without register allocation *)
  | Ofull        (** fully optimized *)

val level_name : level -> string
val config_of_level : level -> Codegen.config

val compile :
  ?level:level -> ?contract_fma:bool -> Minic.Ast.program ->
  Target.Asm.program
(** [contract_fma] (default true, as a real -O2 ships) applies only at
    {!Ofull}; disable it to obtain bit-exact source semantics — the
    trace-equivalence tests do, the benchmarks do not, which is the
    paper's certification argument in executable form. *)
