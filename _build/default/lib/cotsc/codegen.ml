(* Code generator of the COTS baseline compiler, in its three
   certification-relevant configurations (paper section 3.3):

   - O0 "pattern" mode ([o0]): every variable and every intermediate
     value lives in a stack slot; each operation loads its operands into
     fixed registers, computes, and stores the result back — exactly the
     reviewable per-symbol patterns of paper Listing 1. Register usage
     is fixed by the pattern library ("the register allocation is done
     manually for the non-optimized code").
   - O1 ([o1]): O0 plus AST constant folding and an assembly peephole;
     still no register allocation, hence the paper's -0.5% WCET.
   - O2 ([o2]): expression evaluation in a register stack, linear-scan
     allocation of locals to callee-class registers, small-data-area
     (SDA) addressing of global scalars — the feature the paper notes
     the default compiler has and CompCert 1.7 lacked — plus the
     peephole. *)

module Asm = Target.Asm

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type config = {
  cg_fold : bool;
  cg_peephole : bool;
  cg_regstack : bool;
  cg_locals_in_regs : bool;
  cg_sda : bool;
  cg_fmadd : bool;
  (* Fused multiply-add contraction: a*b+c in a single rounding. This
     is a semantics-relaxing optimization (the result differs in the
     last bit from the two-rounding source semantics) — precisely the
     kind of transformation a mature -O2 performs and a formally
     verified compiler, or a pattern-based object-code review, must
     refuse. Trace-equivalence tests run with it disabled; the
     benchmark configuration enables it, like the paper's fully
     optimized default compiler. *)
}

let o0 : config =
  { cg_fold = false; cg_peephole = false; cg_regstack = false;
    cg_locals_in_regs = false; cg_sda = false; cg_fmadd = false }

let o1 : config = { o0 with cg_fold = true; cg_peephole = true }

let o2 : config =
  { cg_fold = true; cg_peephole = true; cg_regstack = true;
    cg_locals_in_regs = true; cg_sda = true; cg_fmadd = true }

(* Home of a source variable. *)
type home =
  | Hslot of int   (* byte offset from sp *)
  | Hireg of Asm.ireg
  | Hfreg of Asm.freg

(* Fixed pattern registers (O0/O1): operands and result per class. *)
let pat_int_a : Asm.ireg = 3
let pat_int_b : Asm.ireg = 4
let pat_int_r : Asm.ireg = 5
let pat_flt_a : Asm.freg = 3
let pat_flt_b : Asm.freg = 4
let pat_flt_r : Asm.freg = 5

(* Register stacks for O2 expression evaluation. *)
let istack = [| 3; 4; 5; 6; 7; 8; 9; 10 |]
let fstack = [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 |]

type ctx = {
  cx_cfg : config;
  cx_prog : Minic.Ast.program;
  cx_fsrc : Minic.Ast.func;
  cx_homes : (string, home) Hashtbl.t;
  cx_buf : Asm.instr list ref; (* reversed *)
  mutable cx_temp : int;       (* next free temp byte offset *)
  mutable cx_temp_high : int;  (* high-water mark *)
  mutable cx_label : int;
  mutable cx_loop_depth : int; (* nesting level, for O2 limit registers *)
  cx_constregs : (int64, Asm.freg) Hashtbl.t; (* hoisted float constants *)
}

let emit (cx : ctx) (i : Asm.instr) : unit = cx.cx_buf := i :: !(cx.cx_buf)

let fresh_label (cx : ctx) : Asm.label =
  let l = cx.cx_label in
  cx.cx_label <- l + 1;
  l

let alloc_temp (cx : ctx) : int =
  let off = cx.cx_temp in
  cx.cx_temp <- off + 8;
  if cx.cx_temp > cx.cx_temp_high then cx.cx_temp_high <- cx.cx_temp;
  off

let home_of (cx : ctx) (x : string) : home =
  match Hashtbl.find_opt cx.cx_homes x with
  | Some h -> h
  | None -> fail "unbound variable %s" x

let var_typ (cx : ctx) (x : string) : Minic.Ast.typ =
  match
    List.assoc_opt x
      (cx.cx_fsrc.Minic.Ast.fn_params @ cx.cx_fsrc.Minic.Ast.fn_locals)
  with
  | Some t -> t
  | None -> fail "unbound variable %s" x

let global_typ (cx : ctx) (x : string) : Minic.Ast.typ =
  match List.assoc_opt x cx.cx_prog.Minic.Ast.prog_globals with
  | Some t -> t
  | None -> fail "unbound global %s" x

let array_def (cx : ctx) (x : string) : Minic.Ast.array_def =
  match
    List.find_opt
      (fun a -> String.equal a.Minic.Ast.arr_name x)
      cx.cx_prog.Minic.Ast.prog_arrays
  with
  | Some a -> a
  | None -> fail "unbound array %s" x

let vol_typ (cx : ctx) (x : string) : Minic.Ast.typ =
  match Minic.Ast.find_volatile cx.cx_prog x with
  | Some (t, _) -> t
  | None -> fail "unbound volatile %s" x

(* Static type of an expression (the program is type-checked upstream). *)
let rec expr_typ (cx : ctx) (e : Minic.Ast.expr) : Minic.Ast.typ =
  match e with
  | Minic.Ast.Econst_int _ -> Minic.Ast.Tint
  | Minic.Ast.Econst_float _ -> Minic.Ast.Tfloat
  | Minic.Ast.Econst_bool _ -> Minic.Ast.Tbool
  | Minic.Ast.Evar x -> var_typ cx x
  | Minic.Ast.Eglobal x -> global_typ cx x
  | Minic.Ast.Eindex (a, _) -> (array_def cx a).Minic.Ast.arr_elt
  | Minic.Ast.Eunop (op, _) ->
    (match op with
     | Minic.Ast.Oneg | Minic.Ast.Oint_of_float -> Minic.Ast.Tint
     | Minic.Ast.Onot -> Minic.Ast.Tbool
     | Minic.Ast.Ofneg | Minic.Ast.Ofabs | Minic.Ast.Ofloat_of_int ->
       Minic.Ast.Tfloat)
  | Minic.Ast.Ebinop (op, _, _) ->
    (match op with
     | Minic.Ast.Oadd | Minic.Ast.Osub | Minic.Ast.Omul | Minic.Ast.Odiv
     | Minic.Ast.Omod | Minic.Ast.Oand | Minic.Ast.Oor | Minic.Ast.Oxor
     | Minic.Ast.Oshl | Minic.Ast.Oshr -> Minic.Ast.Tint
     | Minic.Ast.Ofadd | Minic.Ast.Ofsub | Minic.Ast.Ofmul
     | Minic.Ast.Ofdiv -> Minic.Ast.Tfloat
     | Minic.Ast.Ocmp _ | Minic.Ast.Ofcmp _ | Minic.Ast.Oband
     | Minic.Ast.Obor -> Minic.Ast.Tbool)
  | Minic.Ast.Econd (_, e1, _) -> expr_typ cx e1
  | Minic.Ast.Evolatile x -> vol_typ cx x

let is_float (t : Minic.Ast.typ) : bool =
  match t with
  | Minic.Ast.Tfloat -> true
  | Minic.Ast.Tint | Minic.Ast.Tbool -> false

(* Address of a global scalar under the configuration's data model. *)
let global_addr (cx : ctx) (x : string) : Asm.address =
  if cx.cx_cfg.cg_sda then Asm.Asda (x, 0l) else Asm.Aglob (x, 0l)

let fits_simm16 (n : int32) : bool =
  Int32.compare n (-32768l) >= 0 && Int32.compare n 32767l <= 0

let emit_intconst (cx : ctx) (d : Asm.ireg) (n : int32) : unit =
  if fits_simm16 n then emit cx (Asm.Paddi (d, 0, n))
  else begin
    let lo = Int32.logand n 0xFFFFl in
    let hi = Int32.logand (Int32.shift_right_logical n 16) 0xFFFFl in
    emit cx (Asm.Paddis (d, 0, hi));
    if not (Int32.equal lo 0l) then emit cx (Asm.Pori (d, d, lo))
  end

let cond_of_cmp = Asm.cond_of_cmp
let fconds_of_cmp = Asm.fconds_of_cmp

(* ================= O0/O1: slot-machine evaluation ================= *)

(* Evaluate [e] into the pattern result register of its class; returns
   that register (as a generic int; interpret by class). *)
let rec eval_to_reg0 (cx : ctx) (e : Minic.Ast.expr) : int =
  let t = expr_typ cx e in
  match e with
  | Minic.Ast.Econst_int n ->
    emit_intconst cx pat_int_r n;
    pat_int_r
  | Minic.Ast.Econst_bool b ->
    emit_intconst cx pat_int_r (if b then 1l else 0l);
    pat_int_r
  | Minic.Ast.Econst_float c ->
    emit cx (Asm.Plfdc (pat_flt_r, c));
    pat_flt_r
  | Minic.Ast.Evar x ->
    (match home_of cx x, is_float t with
     | Hslot off, false ->
       emit cx (Asm.Plwz (pat_int_r, Asm.Aind (Asm.sp, Int32.of_int off)));
       pat_int_r
     | Hslot off, true ->
       emit cx (Asm.Plfd (pat_flt_r, Asm.Aind (Asm.sp, Int32.of_int off)));
       pat_flt_r
     | Hireg r, false ->
       emit cx (Asm.Pmr (pat_int_r, r));
       pat_int_r
     | Hfreg r, true ->
       emit cx (Asm.Pfmr (pat_flt_r, r));
       pat_flt_r
     | _, _ -> fail "class mismatch for %s" x)
  | Minic.Ast.Eglobal x ->
    if is_float t then begin
      emit cx (Asm.Plfd (pat_flt_r, global_addr cx x));
      pat_flt_r
    end
    else begin
      emit cx (Asm.Plwz (pat_int_r, global_addr cx x));
      pat_int_r
    end
  | Minic.Ast.Eindex (a, idx) ->
    let sidx = eval_to_slot0 cx idx in
    let arr = array_def cx a in
    let sh = if is_float arr.Minic.Ast.arr_elt then 3 else 2 in
    emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int sidx)));
    emit cx (Asm.Pslwi (pat_int_b, pat_int_a, sh));
    emit cx (Asm.Pla (Asm.int_scratch1, a));
    if is_float t then begin
      emit cx (Asm.Plfd (pat_flt_r, Asm.Aindx (Asm.int_scratch1, pat_int_b)));
      pat_flt_r
    end
    else begin
      emit cx (Asm.Plwz (pat_int_r, Asm.Aindx (Asm.int_scratch1, pat_int_b)));
      pat_int_r
    end
  | Minic.Ast.Evolatile x ->
    if is_float t then begin
      emit cx (Asm.Pacqf (pat_flt_r, x));
      pat_flt_r
    end
    else begin
      emit cx (Asm.Pacqi (pat_int_r, x));
      pat_int_r
    end
  | Minic.Ast.Eunop (op, e1) ->
    let t1 = expr_typ cx e1 in
    let s1 = eval_to_slot0 cx e1 in
    let load_int () =
      emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int s1)))
    in
    let load_flt () =
      emit cx (Asm.Plfd (pat_flt_a, Asm.Aind (Asm.sp, Int32.of_int s1)))
    in
    ignore t1;
    (match op with
     | Minic.Ast.Oneg ->
       load_int ();
       emit cx (Asm.Pneg (pat_int_r, pat_int_a));
       pat_int_r
     | Minic.Ast.Onot ->
       load_int ();
       emit cx (Asm.Pcmpwi (pat_int_a, 0l));
       emit cx (Asm.Psetcc (pat_int_r, Asm.BT Asm.CReq));
       pat_int_r
     | Minic.Ast.Ofneg ->
       load_flt ();
       emit cx (Asm.Pfneg (pat_flt_r, pat_flt_a));
       pat_flt_r
     | Minic.Ast.Ofabs ->
       load_flt ();
       emit cx (Asm.Pfabs (pat_flt_r, pat_flt_a));
       pat_flt_r
     | Minic.Ast.Ofloat_of_int ->
       load_int ();
       emit cx (Asm.Pfcfiw (pat_flt_r, pat_int_a));
       pat_flt_r
     | Minic.Ast.Oint_of_float ->
       load_flt ();
       emit cx (Asm.Pfctiwz (pat_int_r, pat_flt_a));
       pat_int_r)
  | Minic.Ast.Ebinop (op, e1, e2) ->
    let s1 = eval_to_slot0 cx e1 in
    let s2 = eval_to_slot0 cx e2 in
    let t1 = expr_typ cx e1 in
    let load2_int () =
      emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int s1)));
      emit cx (Asm.Plwz (pat_int_b, Asm.Aind (Asm.sp, Int32.of_int s2)))
    in
    let load2_flt () =
      emit cx (Asm.Plfd (pat_flt_a, Asm.Aind (Asm.sp, Int32.of_int s1)));
      emit cx (Asm.Plfd (pat_flt_b, Asm.Aind (Asm.sp, Int32.of_int s2)))
    in
    (match op with
     | Minic.Ast.Oadd ->
       load2_int (); emit cx (Asm.Padd (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Osub ->
       load2_int (); emit cx (Asm.Psubf (pat_int_r, pat_int_b, pat_int_a)); pat_int_r
     | Minic.Ast.Omul ->
       load2_int (); emit cx (Asm.Pmullw (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Odiv ->
       load2_int (); emit cx (Asm.Pdivw (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Omod ->
       load2_int ();
       emit cx (Asm.Pdivw (pat_int_r, pat_int_a, pat_int_b));
       emit cx (Asm.Pmullw (pat_int_r, pat_int_r, pat_int_b));
       emit cx (Asm.Psubf (pat_int_r, pat_int_r, pat_int_a));
       pat_int_r
     | Minic.Ast.Oand | Minic.Ast.Oband ->
       load2_int (); emit cx (Asm.Pand (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Oor | Minic.Ast.Obor ->
       load2_int (); emit cx (Asm.Por (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Oxor ->
       load2_int (); emit cx (Asm.Pxor (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Oshl ->
       load2_int (); emit cx (Asm.Pslw (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Oshr ->
       load2_int (); emit cx (Asm.Psraw (pat_int_r, pat_int_a, pat_int_b)); pat_int_r
     | Minic.Ast.Ofadd ->
       load2_flt (); emit cx (Asm.Pfadd (pat_flt_r, pat_flt_a, pat_flt_b)); pat_flt_r
     | Minic.Ast.Ofsub ->
       load2_flt (); emit cx (Asm.Pfsub (pat_flt_r, pat_flt_a, pat_flt_b)); pat_flt_r
     | Minic.Ast.Ofmul ->
       load2_flt (); emit cx (Asm.Pfmul (pat_flt_r, pat_flt_a, pat_flt_b)); pat_flt_r
     | Minic.Ast.Ofdiv ->
       load2_flt (); emit cx (Asm.Pfdiv (pat_flt_r, pat_flt_a, pat_flt_b)); pat_flt_r
     | Minic.Ast.Ocmp c ->
       load2_int ();
       emit cx (Asm.Pcmpw (pat_int_a, pat_int_b));
       emit cx (Asm.Psetcc (pat_int_r, cond_of_cmp c));
       pat_int_r
     | Minic.Ast.Ofcmp c ->
       ignore t1;
       load2_flt ();
       emit cx (Asm.Pfcmpu (pat_flt_a, pat_flt_b));
       (match fconds_of_cmp c with
        | [ c1 ] -> emit cx (Asm.Psetcc (pat_int_r, c1))
        | [ c1; c2 ] ->
          emit cx (Asm.Psetcc (pat_int_r, c1));
          emit cx (Asm.Psetcc (pat_int_a, c2));
          emit cx (Asm.Por (pat_int_r, pat_int_r, pat_int_a))
        | _ -> fail "bad fconds");
       pat_int_r)
  | Minic.Ast.Econd (c, e1, e2) ->
    let ltrue = fresh_label cx in
    let lfalse = fresh_label cx in
    let lend = fresh_label cx in
    eval_cond0 cx c ltrue lfalse;
    emit cx (Asm.Plabel ltrue);
    let r1 = eval_to_reg0 cx e1 in
    emit cx (Asm.Pb lend);
    emit cx (Asm.Plabel lfalse);
    let r2 = eval_to_reg0 cx e2 in
    if r1 <> r2 then fail "conditional arms in different registers";
    emit cx (Asm.Plabel lend);
    r1

(* Evaluate into a stack slot; variables already in slots are returned
   directly (the Listing-1 pattern reads symbol inputs straight from
   their slots). *)
and eval_to_slot0 (cx : ctx) (e : Minic.Ast.expr) : int =
  match e with
  | Minic.Ast.Evar x ->
    (match home_of cx x with
     | Hslot off -> off
     | Hireg _ | Hfreg _ ->
       let r = eval_to_reg0 cx e in
       let off = alloc_temp cx in
       if is_float (expr_typ cx e) then
         emit cx (Asm.Pstfd (r, Asm.Aind (Asm.sp, Int32.of_int off)))
       else emit cx (Asm.Pstw (r, Asm.Aind (Asm.sp, Int32.of_int off)));
       off)
  | _ ->
    let t = expr_typ cx e in
    let r = eval_to_reg0 cx e in
    let off = alloc_temp cx in
    if is_float t then
      emit cx (Asm.Pstfd (r, Asm.Aind (Asm.sp, Int32.of_int off)))
    else emit cx (Asm.Pstw (r, Asm.Aind (Asm.sp, Int32.of_int off)));
    off

(* Branch on condition [c]: to [ltrue] when true, [lfalse] otherwise. *)
and eval_cond0 (cx : ctx) (c : Minic.Ast.expr) (ltrue : Asm.label)
    (lfalse : Asm.label) : unit =
  match c with
  | Minic.Ast.Eunop (Minic.Ast.Onot, c1) -> eval_cond0 cx c1 lfalse ltrue
  | Minic.Ast.Ebinop (Minic.Ast.Ocmp cmp, e1, e2) ->
    let s1 = eval_to_slot0 cx e1 in
    let s2 = eval_to_slot0 cx e2 in
    emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int s1)));
    emit cx (Asm.Plwz (pat_int_b, Asm.Aind (Asm.sp, Int32.of_int s2)));
    emit cx (Asm.Pcmpw (pat_int_a, pat_int_b));
    emit cx (Asm.Pbc (cond_of_cmp cmp, ltrue));
    emit cx (Asm.Pb lfalse)
  | Minic.Ast.Ebinop (Minic.Ast.Ofcmp cmp, e1, e2) ->
    let s1 = eval_to_slot0 cx e1 in
    let s2 = eval_to_slot0 cx e2 in
    emit cx (Asm.Plfd (pat_flt_a, Asm.Aind (Asm.sp, Int32.of_int s1)));
    emit cx (Asm.Plfd (pat_flt_b, Asm.Aind (Asm.sp, Int32.of_int s2)));
    emit cx (Asm.Pfcmpu (pat_flt_a, pat_flt_b));
    List.iter (fun cc -> emit cx (Asm.Pbc (cc, ltrue))) (fconds_of_cmp cmp);
    emit cx (Asm.Pb lfalse)
  | _ ->
    let r = eval_to_reg0 cx c in
    emit cx (Asm.Pcmpwi (r, 0l));
    emit cx (Asm.Pbc (Asm.BF Asm.CReq, ltrue));
    emit cx (Asm.Pb lfalse)

(* ================= O2: register-stack evaluation ================= *)

(* If-conversion predicates. A *then-arm* must be pure, cheap, and
   comparison-free (it is evaluated after the compare whose CR0 result
   the conditional move consumes). An *else-arm* may additionally be a
   nested conditional expression, compiled recursively before the outer
   compare. Volatile reads and array accesses are excluded everywhere:
   the unselected arm is executed too, and must be unobservable and
   unable to trap. Conditions must also be pure (they are evaluated even
   when the source's lazy evaluation would have skipped them). *)
let rec cmp_free_arm (budget : int) (e : Minic.Ast.expr) : int =
  if budget < 0 then budget
  else
    match e with
    | Minic.Ast.Econst_int _ | Minic.Ast.Econst_float _
    | Minic.Ast.Econst_bool _ | Minic.Ast.Evar _ | Minic.Ast.Eglobal _ ->
      budget
    | Minic.Ast.Eindex _ | Minic.Ast.Evolatile _ | Minic.Ast.Econd _ -> -1
    | Minic.Ast.Eunop (op, a) ->
      (match op with
       | Minic.Ast.Onot -> -1 (* emits a compare *)
       | Minic.Ast.Oneg | Minic.Ast.Ofneg | Minic.Ast.Ofabs
       | Minic.Ast.Ofloat_of_int | Minic.Ast.Oint_of_float ->
         cmp_free_arm (budget - 1) a)
    | Minic.Ast.Ebinop (op, a, b) ->
      (match op with
       | Minic.Ast.Ocmp _ | Minic.Ast.Ofcmp _ | Minic.Ast.Oband
       | Minic.Ast.Obor | Minic.Ast.Odiv | Minic.Ast.Omod
       | Minic.Ast.Ofdiv -> -1
       | Minic.Ast.Oadd | Minic.Ast.Osub | Minic.Ast.Omul
       | Minic.Ast.Oand | Minic.Ast.Oor | Minic.Ast.Oxor
       | Minic.Ast.Oshl | Minic.Ast.Oshr | Minic.Ast.Ofadd
       | Minic.Ast.Ofsub | Minic.Ast.Ofmul ->
         cmp_free_arm (cmp_free_arm (budget - 1) a) b)

(* Pure and cheap: allowed as a condition or condition operand. *)
let rec pure_cheap (budget : int) (e : Minic.Ast.expr) : int =
  if budget < 0 then budget
  else
    match e with
    | Minic.Ast.Econst_int _ | Minic.Ast.Econst_float _
    | Minic.Ast.Econst_bool _ | Minic.Ast.Evar _ | Minic.Ast.Eglobal _ ->
      budget
    | Minic.Ast.Eindex _ | Minic.Ast.Evolatile _ | Minic.Ast.Econd _ -> -1
    | Minic.Ast.Eunop (_, a) -> pure_cheap (budget - 1) a
    | Minic.Ast.Ebinop (op, a, b) ->
      (match op with
       | Minic.Ast.Odiv | Minic.Ast.Omod | Minic.Ast.Ofdiv -> -1
       | _ -> pure_cheap (pure_cheap (budget - 1) a) b)

let rec ifconvertible (depth : int) (e : Minic.Ast.expr) : bool =
  if depth > 3 then false
  else
    match e with
    | Minic.Ast.Econd (c, e1, e2) ->
      pure_cheap 4 c >= 0 && cmp_free_arm 3 e1 >= 0
      && ifconvertible (depth + 1) e2
    | _ -> cmp_free_arm 3 e >= 0

(* Evaluate [e] at expression-stack depth [d]; the result is returned in
   a machine register of the expression's class — either the stack
   register of depth [d] (which the evaluation wrote) or the register
   home of a variable (read-only). Depth overflow spills the left
   operand to a temporary slot around the right operand's evaluation. *)
let rec eval2 ?into (cx : ctx) (e : Minic.Ast.expr) (d : int) : int =
  let t = expr_typ cx e in
  let flt = is_float t in
  let ireg k = istack.(k) and freg k = fstack.(k) in
  let dst =
    match into with
    | Some r -> r
    | None -> if flt then freg d else ireg d
  in
  match e with
  | Minic.Ast.Econst_int n -> emit_intconst cx dst n; dst
  | Minic.Ast.Econst_bool b ->
    emit_intconst cx dst (if b then 1l else 0l);
    dst
  | Minic.Ast.Econst_float c ->
    (match Hashtbl.find_opt cx.cx_constregs (Int64.bits_of_float c), into with
     | Some r, None -> r
     | Some r, Some _ ->
       if r <> dst then emit cx (Asm.Pfmr (dst, r));
       dst
     | None, _ -> emit cx (Asm.Plfdc (dst, c)); dst)
  | Minic.Ast.Evar x ->
    (match home_of cx x, into with
     | Hslot off, _ ->
       if flt then emit cx (Asm.Plfd (dst, Asm.Aind (Asm.sp, Int32.of_int off)))
       else emit cx (Asm.Plwz (dst, Asm.Aind (Asm.sp, Int32.of_int off)));
       dst
     | Hireg r, None -> r
     | Hfreg r, None -> r
     | Hireg r, Some _ ->
       if r <> dst then emit cx (Asm.Pmr (dst, r));
       dst
     | Hfreg r, Some _ ->
       if r <> dst then emit cx (Asm.Pfmr (dst, r));
       dst)
  | Minic.Ast.Eglobal x ->
    if flt then emit cx (Asm.Plfd (dst, global_addr cx x))
    else emit cx (Asm.Plwz (dst, global_addr cx x));
    dst
  | Minic.Ast.Eindex (a, idx) ->
    let arr = array_def cx a in
    let sh = if is_float arr.Minic.Ast.arr_elt then 3 else 2 in
    let ri = eval2 cx idx d in
    let roff = ireg d in
    emit cx (Asm.Pslwi (roff, ri, sh));
    emit cx (Asm.Pla (Asm.int_scratch1, a));
    if flt then emit cx (Asm.Plfd (dst, Asm.Aindx (Asm.int_scratch1, roff)))
    else emit cx (Asm.Plwz (dst, Asm.Aindx (Asm.int_scratch1, roff)));
    dst
  | Minic.Ast.Evolatile x ->
    if flt then emit cx (Asm.Pacqf (dst, x)) else emit cx (Asm.Pacqi (dst, x));
    dst
  | Minic.Ast.Eunop (op, e1) ->
    let r1 = eval2 cx e1 d in
    (match op with
     | Minic.Ast.Oneg -> emit cx (Asm.Pneg (dst, r1))
     | Minic.Ast.Onot ->
       emit cx (Asm.Pcmpwi (r1, 0l));
       emit cx (Asm.Psetcc (dst, Asm.BT Asm.CReq))
     | Minic.Ast.Ofneg -> emit cx (Asm.Pfneg (dst, r1))
     | Minic.Ast.Ofabs -> emit cx (Asm.Pfabs (dst, r1))
     | Minic.Ast.Ofloat_of_int -> emit cx (Asm.Pfcfiw (dst, r1))
     | Minic.Ast.Oint_of_float -> emit cx (Asm.Pfctiwz (dst, r1)));
    dst
  | Minic.Ast.Ebinop
      ((Minic.Ast.Ofadd | Minic.Ast.Ofsub) as op, e1, e2)
    when cx.cx_cfg.cg_fmadd
      && d + 2 < Array.length fstack
      && (match op, e1, e2 with
          | _, Minic.Ast.Ebinop (Minic.Ast.Ofmul, _, _), _ -> true
          | Minic.Ast.Ofadd, _, Minic.Ast.Ebinop (Minic.Ast.Ofmul, _, _) ->
            true
          | _, _, _ -> false) ->
    (* fused multiply-add contraction (source evaluation order kept) *)
    (match op, e1, e2 with
     | _, Minic.Ast.Ebinop (Minic.Ast.Ofmul, a, b), c ->
       let ra = eval2 cx a d in
       let rb = eval2 cx b (d + 1) in
       let rc = eval2 cx c (d + 2) in
       (match op with
        | Minic.Ast.Ofadd -> emit cx (Asm.Pfmadd (dst, ra, rb, rc))
        | _ -> emit cx (Asm.Pfmsub (dst, ra, rb, rc)));
       dst
     | Minic.Ast.Ofadd, c, Minic.Ast.Ebinop (Minic.Ast.Ofmul, a, b) ->
       let rc = eval2 cx c d in
       let ra = eval2 cx a (d + 1) in
       let rb = eval2 cx b (d + 2) in
       emit cx (Asm.Pfmadd (dst, ra, rb, rc));
       dst
     | _, _, _ -> assert false)
  | Minic.Ast.Ebinop (op, e1, e2) ->
    let t1 = expr_typ cx e1 in
    let flt1 = is_float t1 in
    let limit = if flt1 then Array.length fstack else Array.length istack in
    let r1, r2 =
      if d + 1 < limit then
        let r1 = eval2 cx e1 d in
        let r2 = eval2 cx e2 (d + 1) in
        (r1, r2)
      else begin
        (* spill the left operand around the right's evaluation *)
        let r1 = eval2 cx e1 d in
        let off = alloc_temp cx in
        if flt1 then
          emit cx (Asm.Pstfd (r1, Asm.Aind (Asm.sp, Int32.of_int off)))
        else emit cx (Asm.Pstw (r1, Asm.Aind (Asm.sp, Int32.of_int off)));
        let r2 = eval2 cx e2 d in
        let scratch =
          if flt1 then Asm.float_scratch1 else Asm.int_scratch1
        in
        if flt1 then
          emit cx (Asm.Plfd (scratch, Asm.Aind (Asm.sp, Int32.of_int off)))
        else emit cx (Asm.Plwz (scratch, Asm.Aind (Asm.sp, Int32.of_int off)));
        (scratch, r2)
      end
    in
    (match op with
     | Minic.Ast.Oadd -> emit cx (Asm.Padd (dst, r1, r2))
     | Minic.Ast.Osub -> emit cx (Asm.Psubf (dst, r2, r1))
     | Minic.Ast.Omul -> emit cx (Asm.Pmullw (dst, r1, r2))
     | Minic.Ast.Odiv -> emit cx (Asm.Pdivw (dst, r1, r2))
     | Minic.Ast.Omod ->
       emit cx (Asm.Pdivw (Asm.int_scratch, r1, r2));
       emit cx (Asm.Pmullw (Asm.int_scratch, Asm.int_scratch, r2));
       emit cx (Asm.Psubf (dst, Asm.int_scratch, r1))
     | Minic.Ast.Oand | Minic.Ast.Oband -> emit cx (Asm.Pand (dst, r1, r2))
     | Minic.Ast.Oor | Minic.Ast.Obor -> emit cx (Asm.Por (dst, r1, r2))
     | Minic.Ast.Oxor -> emit cx (Asm.Pxor (dst, r1, r2))
     | Minic.Ast.Oshl -> emit cx (Asm.Pslw (dst, r1, r2))
     | Minic.Ast.Oshr -> emit cx (Asm.Psraw (dst, r1, r2))
     | Minic.Ast.Ofadd -> emit cx (Asm.Pfadd (dst, r1, r2))
     | Minic.Ast.Ofsub -> emit cx (Asm.Pfsub (dst, r1, r2))
     | Minic.Ast.Ofmul -> emit cx (Asm.Pfmul (dst, r1, r2))
     | Minic.Ast.Ofdiv -> emit cx (Asm.Pfdiv (dst, r1, r2))
     | Minic.Ast.Ocmp c ->
       emit cx (Asm.Pcmpw (r1, r2));
       emit cx (Asm.Psetcc (dst, cond_of_cmp c))
     | Minic.Ast.Ofcmp c ->
       emit cx (Asm.Pfcmpu (r1, r2));
       (match fconds_of_cmp c with
        | [ c1 ] -> emit cx (Asm.Psetcc (dst, c1))
        | [ c1; c2 ] ->
          emit cx (Asm.Psetcc (dst, c1));
          emit cx (Asm.Psetcc (Asm.int_scratch2, c2));
          emit cx (Asm.Por (dst, dst, Asm.int_scratch2))
        | _ -> fail "bad fconds"));
    dst
  | Minic.Ast.Econd (c, e1, e2) ->
    (* if-conversion: when both arms are cheap, pure, comparison-free
       expressions, compute both and select with a conditional move —
       no branches, no pipeline-window resets. This is the optimization
       that keeps the full -O code straight-line where CompCert 1.7
       emits branch diamonds. *)
    if ifconvertible 0 e
       && d + 2 < Array.length istack && d + 2 < Array.length fstack then begin
      (* recursive straight-line compilation: else-arm first (possibly
         itself a conditional), then the compare, then the cmp-free
         then-arm, then the select. The destination is the stack
         register at depth [d]: an [into] home could be read by the
         condition or the then-arm, so it is only moved at the end. *)
      let sd = if flt then freg d else ireg d in
      let rec ifconv (e : Minic.Ast.expr) : unit =
        match e with
        | Minic.Ast.Econd (c, e1, e2) ->
          ifconv e2;
          let conds =
            match c with
            | Minic.Ast.Ebinop (Minic.Ast.Ocmp cmp, a, b) ->
              let r1 = eval2 cx a (d + 1) in
              let r2 = eval2 cx b (d + 2) in
              emit cx (Asm.Pcmpw (r1, r2));
              [ cond_of_cmp cmp ]
            | Minic.Ast.Ebinop (Minic.Ast.Ofcmp cmp, a, b) ->
              let r1 = eval2 cx a (d + 1) in
              let r2 = eval2 cx b (d + 2) in
              emit cx (Asm.Pfcmpu (r1, r2));
              fconds_of_cmp cmp
            | _ ->
              let r = eval2 cx c (d + 1) in
              emit cx (Asm.Pcmpwi (r, 0l));
              [ Asm.BF Asm.CReq ]
          in
          let rthen = eval2 cx e1 (d + 1) in
          List.iter
            (fun cc ->
               if flt then emit cx (Asm.Pfmovcc (sd, rthen, cc))
               else emit cx (Asm.Pmovcc (sd, rthen, cc)))
            conds
        | _ ->
          let r = eval2 cx e d in
          if r <> sd then begin
            if flt then emit cx (Asm.Pfmr (sd, r)) else emit cx (Asm.Pmr (sd, r))
          end
      in
      ifconv e;
      if sd <> dst then begin
        if flt then emit cx (Asm.Pfmr (dst, sd)) else emit cx (Asm.Pmr (dst, sd))
      end;
      dst
    end
    else begin
      let ltrue = fresh_label cx in
      let lfalse = fresh_label cx in
      let lend = fresh_label cx in
      eval_cond2 cx c d ltrue lfalse;
      emit cx (Asm.Plabel ltrue);
      let r1 = eval2 cx e1 d in
      if r1 <> dst then begin
        if flt then emit cx (Asm.Pfmr (dst, r1)) else emit cx (Asm.Pmr (dst, r1))
      end;
      emit cx (Asm.Pb lend);
      emit cx (Asm.Plabel lfalse);
      let r2 = eval2 cx e2 d in
      if r2 <> dst then begin
        if flt then emit cx (Asm.Pfmr (dst, r2)) else emit cx (Asm.Pmr (dst, r2))
      end;
      emit cx (Asm.Plabel lend);
      dst
    end

and eval_cond2 (cx : ctx) (c : Minic.Ast.expr) (d : int) (ltrue : Asm.label)
    (lfalse : Asm.label) : unit =
  match c with
  | Minic.Ast.Eunop (Minic.Ast.Onot, c1) -> eval_cond2 cx c1 d lfalse ltrue
  | Minic.Ast.Ebinop (Minic.Ast.Ocmp cmp, e1, e2) when d + 1 < Array.length istack ->
    let r1 = eval2 cx e1 d in
    let r2 = eval2 cx e2 (d + 1) in
    emit cx (Asm.Pcmpw (r1, r2));
    emit cx (Asm.Pbc (cond_of_cmp cmp, ltrue));
    emit cx (Asm.Pb lfalse)
  | Minic.Ast.Ebinop (Minic.Ast.Ofcmp cmp, e1, e2) when d + 1 < Array.length fstack ->
    let r1 = eval2 cx e1 d in
    let r2 = eval2 cx e2 (d + 1) in
    emit cx (Asm.Pfcmpu (r1, r2));
    List.iter (fun cc -> emit cx (Asm.Pbc (cc, ltrue))) (fconds_of_cmp cmp);
    emit cx (Asm.Pb lfalse)
  | _ ->
    let r = eval2 cx c d in
    emit cx (Asm.Pcmpwi (r, 0l));
    emit cx (Asm.Pbc (Asm.BF Asm.CReq, ltrue));
    emit cx (Asm.Pb lfalse)

(* ================= statements ================= *)

(* Evaluate [e] into a register (dispatching on the configuration). *)
let eval_expr (cx : ctx) (e : Minic.Ast.expr) : int =
  if cx.cx_cfg.cg_regstack then eval2 cx e 0 else eval_to_reg0 cx e

let eval_cond (cx : ctx) (c : Minic.Ast.expr) (ltrue : Asm.label)
    (lfalse : Asm.label) : unit =
  if cx.cx_cfg.cg_regstack then eval_cond2 cx c 0 ltrue lfalse
  else eval_cond0 cx c ltrue lfalse

(* Annotation argument for [e]: constants stay constants; variables use
   their final home; anything else is evaluated to a temporary slot. *)
let annot_arg (cx : ctx) (e : Minic.Ast.expr) : Asm.annot_arg =
  match e with
  | Minic.Ast.Econst_int n -> Asm.AA_const_int n
  | Minic.Ast.Econst_float c -> Asm.AA_const_float c
  | Minic.Ast.Evar x ->
    (match home_of cx x with
     | Hireg r -> Asm.AA_ireg r
     | Hfreg r -> Asm.AA_freg r
     | Hslot off ->
       if is_float (var_typ cx x) then Asm.AA_stack_float (Int32.of_int off)
       else Asm.AA_stack_int (Int32.of_int off))
  | _ ->
    let t = expr_typ cx e in
    let r = eval_expr cx e in
    let off = alloc_temp cx in
    if is_float t then begin
      emit cx (Asm.Pstfd (r, Asm.Aind (Asm.sp, Int32.of_int off)));
      Asm.AA_stack_float (Int32.of_int off)
    end
    else begin
      emit cx (Asm.Pstw (r, Asm.Aind (Asm.sp, Int32.of_int off)));
      Asm.AA_stack_int (Int32.of_int off)
    end

let store_to_home (cx : ctx) (x : string) (r : int) : unit =
  let flt = is_float (var_typ cx x) in
  match home_of cx x with
  | Hslot off ->
    if flt then emit cx (Asm.Pstfd (r, Asm.Aind (Asm.sp, Int32.of_int off)))
    else emit cx (Asm.Pstw (r, Asm.Aind (Asm.sp, Int32.of_int off)))
  | Hireg h -> if h <> r then emit cx (Asm.Pmr (h, r))
  | Hfreg h -> if h <> r then emit cx (Asm.Pfmr (h, r))

let rec gen_stmt (cx : ctx) (epilogue : unit -> unit) (s : Minic.Ast.stmt) :
  unit =
  let saved_temp = cx.cx_temp in
  (match s with
   | Minic.Ast.Sskip -> ()
   | Minic.Ast.Sassign (x, e) ->
     if cx.cx_cfg.cg_regstack then begin
       match home_of cx x with
       | Hireg h | Hfreg h ->
         let r = eval2 ~into:h cx e 0 in
         ignore r
       | Hslot _ ->
         let r = eval2 cx e 0 in
         store_to_home cx x r
     end
     else begin
       let r = eval_expr cx e in
       store_to_home cx x r
     end
   | Minic.Ast.Sglobassign (x, e) ->
     let r = eval_expr cx e in
     if is_float (global_typ cx x) then
       emit cx (Asm.Pstfd (r, global_addr cx x))
     else emit cx (Asm.Pstw (r, global_addr cx x))
   | Minic.Ast.Sstore (a, idx, e) ->
     let arr = array_def cx a in
     let sh = if is_float arr.Minic.Ast.arr_elt then 3 else 2 in
     (* index into a temp slot, value into a register, then combine *)
     let sidx = alloc_temp cx in
     let ri = eval_expr cx idx in
     emit cx (Asm.Pstw (ri, Asm.Aind (Asm.sp, Int32.of_int sidx)));
     let rv = eval_expr cx e in
     emit cx (Asm.Plwz (Asm.int_scratch2, Asm.Aind (Asm.sp, Int32.of_int sidx)));
     emit cx (Asm.Pslwi (Asm.int_scratch2, Asm.int_scratch2, sh));
     emit cx (Asm.Pla (Asm.int_scratch1, a));
     if is_float arr.Minic.Ast.arr_elt then
       emit cx (Asm.Pstfd (rv, Asm.Aindx (Asm.int_scratch1, Asm.int_scratch2)))
     else
       emit cx (Asm.Pstw (rv, Asm.Aindx (Asm.int_scratch1, Asm.int_scratch2)))
   | Minic.Ast.Svolstore (x, e) ->
     let r = eval_expr cx e in
     if is_float (vol_typ cx x) then emit cx (Asm.Poutf (x, r))
     else emit cx (Asm.Pouti (x, r))
   | Minic.Ast.Sseq (a, b) ->
     gen_stmt cx epilogue a;
     gen_stmt cx epilogue b
   | Minic.Ast.Sif (c, a, b) ->
     let ltrue = fresh_label cx in
     let lfalse = fresh_label cx in
     let lend = fresh_label cx in
     eval_cond cx c ltrue lfalse;
     emit cx (Asm.Plabel ltrue);
     gen_stmt cx epilogue a;
     emit cx (Asm.Pb lend);
     emit cx (Asm.Plabel lfalse);
     gen_stmt cx epilogue b;
     emit cx (Asm.Plabel lend)
   | Minic.Ast.Swhile (c, body) ->
     let lhead = fresh_label cx in
     let lbody = fresh_label cx in
     let lend = fresh_label cx in
     emit cx (Asm.Plabel lhead);
     eval_cond cx c lbody lend;
     emit cx (Asm.Plabel lbody);
     gen_stmt cx epilogue body;
     emit cx (Asm.Pb lhead);
     emit cx (Asm.Plabel lend)
   | Minic.Ast.Sfor (i, lo, hi, body) ->
     (* i = lo; limit = hi; while (i < limit) { body; i = i + 1 }.
        At O2 the limit lives in a reserved register (r26+nesting) while
        registers last; the pattern configurations reload it from its
        slot every iteration. *)
     let rlo = eval_expr cx lo in
     store_to_home cx i rlo;
     let limit_reg =
       if cx.cx_cfg.cg_regstack && cx.cx_loop_depth < 4 then
         Some (28 + cx.cx_loop_depth)
       else None
     in
     let slimit =
       match limit_reg with
       | Some r ->
         let _ = eval2 ~into:r cx hi 0 in
         None
       | None ->
         let s = alloc_temp cx in
         let rhi = eval_expr cx hi in
         emit cx (Asm.Pstw (rhi, Asm.Aind (Asm.sp, Int32.of_int s)));
         Some s
     in
     let lhead = fresh_label cx in
     let lbody = fresh_label cx in
     let lend = fresh_label cx in
     emit cx (Asm.Plabel lhead);
     let ri =
       match home_of cx i with
       | Hireg r -> r
       | Hslot off ->
         emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int off)));
         pat_int_a
       | Hfreg _ -> fail "float loop counter"
     in
     let rlimit =
       match limit_reg, slimit with
       | Some r, _ -> r
       | None, Some s ->
         emit cx (Asm.Plwz (Asm.int_scratch2, Asm.Aind (Asm.sp, Int32.of_int s)));
         Asm.int_scratch2
       | None, None -> assert false
     in
     emit cx (Asm.Pcmpw (ri, rlimit));
     emit cx (Asm.Pbc (Asm.BT Asm.CRlt, lbody));
     emit cx (Asm.Pb lend);
     emit cx (Asm.Plabel lbody);
     cx.cx_loop_depth <- cx.cx_loop_depth + 1;
     gen_stmt cx epilogue body;
     cx.cx_loop_depth <- cx.cx_loop_depth - 1;
     (* i = i + 1 *)
     (match home_of cx i with
      | Hireg r -> emit cx (Asm.Paddi (r, r, 1l))
      | Hslot off ->
        emit cx (Asm.Plwz (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int off)));
        emit cx (Asm.Paddi (pat_int_a, pat_int_a, 1l));
        emit cx (Asm.Pstw (pat_int_a, Asm.Aind (Asm.sp, Int32.of_int off)))
      | Hfreg _ -> fail "float loop counter");
     emit cx (Asm.Pb lhead);
     emit cx (Asm.Plabel lend)
   | Minic.Ast.Sreturn None ->
     (match cx.cx_fsrc.Minic.Ast.fn_ret with
      | None -> ()
      | Some Minic.Ast.Tfloat -> emit cx (Asm.Plfdc (1, 0.0))
      | Some (Minic.Ast.Tint | Minic.Ast.Tbool) ->
        emit cx (Asm.Paddi (3, 0, 0l)));
     epilogue ()
   | Minic.Ast.Sreturn (Some e) ->
     let r = eval_expr cx e in
     (match cx.cx_fsrc.Minic.Ast.fn_ret with
      | Some Minic.Ast.Tfloat -> if r <> 1 then emit cx (Asm.Pfmr (1, r))
      | Some (Minic.Ast.Tint | Minic.Ast.Tbool) ->
        if r <> 3 then emit cx (Asm.Pmr (3, r))
      | None -> fail "return value in void function");
     epilogue ()
   | Minic.Ast.Sannot (text, args) ->
     let aargs = List.map (annot_arg cx) args in
     emit cx (Asm.Pannot (text, aargs)));
  cx.cx_temp <- saved_temp

(* ================= function & program translation ================= *)

(* Collect float constants of a function body with occurrence counts. *)
let float_consts (f : Minic.Ast.func) : (float * int) list =
  let counts : (int64, float * int) Hashtbl.t = Hashtbl.create 31 in
  let rec expr e =
    match e with
    | Minic.Ast.Econst_float c ->
      let bits = Int64.bits_of_float c in
      let _, n = Option.value ~default:(c, 0) (Hashtbl.find_opt counts bits) in
      Hashtbl.replace counts bits (c, n + 1)
    | Minic.Ast.Econst_int _ | Minic.Ast.Econst_bool _ | Minic.Ast.Evar _
    | Minic.Ast.Eglobal _ | Minic.Ast.Evolatile _ -> ()
    | Minic.Ast.Eindex (_, i) -> expr i
    | Minic.Ast.Eunop (_, a) -> expr a
    | Minic.Ast.Ebinop (_, a, b) -> expr a; expr b
    | Minic.Ast.Econd (c, a, b) -> expr c; expr a; expr b
  in
  Minic.Ast.iter_stmt
    (fun s ->
       match s with
       | Minic.Ast.Sassign (_, e) | Minic.Ast.Sglobassign (_, e)
       | Minic.Ast.Svolstore (_, e) | Minic.Ast.Sreturn (Some e) -> expr e
       | Minic.Ast.Sstore (_, i, e) -> expr i; expr e
       | Minic.Ast.Sif (c, _, _) | Minic.Ast.Swhile (c, _) -> expr c
       | Minic.Ast.Sfor (_, lo, hi, _) -> expr lo; expr hi
       | Minic.Ast.Sannot (_, args) -> List.iter expr args
       | Minic.Ast.Sskip | Minic.Ast.Sseq _ | Minic.Ast.Sreturn None -> ())
    f.Minic.Ast.fn_body;
  Hashtbl.fold (fun _ cv acc -> cv :: acc) counts []

let gen_func (cfg : config) (prog : Minic.Ast.program) (fsrc : Minic.Ast.func) :
  Asm.func =
  let fsrc = if cfg.cg_fold then Fold.fold_func fsrc else fsrc in
  (* chain fusion exposes new folding opportunities: fold again after *)
  let fsrc =
    if cfg.cg_regstack then Fold.fold_func (Chainfuse.fuse_func fsrc)
    else fsrc
  in
  let cx =
    { cx_cfg = cfg;
      cx_prog = prog;
      cx_fsrc = fsrc;
      cx_homes = Hashtbl.create 61;
      cx_buf = ref [];
      cx_temp = 0;
      cx_temp_high = 0;
      cx_label = 1;
      cx_loop_depth = 0;
      cx_constregs = Hashtbl.create 7 }
  in
  let vars = fsrc.Minic.Ast.fn_params @ fsrc.Minic.Ast.fn_locals in
  (* variable homes. At O2 a linear scan over the live ranges of the
     (mostly single-assignment, short-lived) locals assigns them to the
     callee-class registers r14-r27 / f14-f28, recycling registers as
     ranges expire; the remainder spills to slots. The pattern
     configurations put everything in slots. *)
  let next_var_slot = ref 0 in
  let free_const_regs = ref [] in (* float regs unused by locals *)
  let give_slot (x : string) : unit =
    Hashtbl.replace cx.cx_homes x (Hslot !next_var_slot);
    next_var_slot := !next_var_slot + 8
  in
  if cfg.cg_locals_in_regs then begin
    (* live ranges at top-level statement granularity *)
    let stmts = Array.of_list (Chainfuse.flatten fsrc.Minic.Ast.fn_body []) in
    let first = Hashtbl.create 61 and last = Hashtbl.create 61 in
    List.iter
      (fun (x, _) -> Hashtbl.replace first x (-1))
      fsrc.Minic.Ast.fn_params;
    Array.iteri
      (fun i s ->
         List.iter
           (fun (x, _) ->
              if Chainfuse.stmt_uses x s > 0 || Chainfuse.stmt_assigns x s > 0
              then begin
                if not (Hashtbl.mem first x) then Hashtbl.replace first x i;
                Hashtbl.replace last x i
              end)
           vars)
      stmts;
    let events =
      List.filter_map
        (fun (x, t) ->
           match Hashtbl.find_opt first x with
           | Some fi ->
             Some (x, t, fi, Option.value ~default:fi (Hashtbl.find_opt last x))
           | None -> None)
        vars
      |> List.sort (fun (_, _, a, _) (_, _, b, _) -> compare a b)
    in
    let ipool = ref (List.init 14 (fun i -> 14 + i)) in
    let fpool = ref (List.init 15 (fun i -> 14 + i)) in
    let active = ref [] in (* (last, is_float, reg) *)
    let fregs_ever_used = Hashtbl.create 17 in
    List.iter
      (fun (x, t, fi, la) ->
         (* expire finished ranges *)
         let expired, still =
           List.partition (fun (l, _, _) -> l < fi) !active
         in
         active := still;
         List.iter
           (fun (_, isf, r) ->
              if isf then fpool := r :: !fpool else ipool := r :: !ipool)
           expired;
         let pool = if is_float t then fpool else ipool in
         match !pool with
         | r :: rest ->
           pool := rest;
           active := (la, is_float t, r) :: !active;
           if is_float t then Hashtbl.replace fregs_ever_used r ();
           Hashtbl.replace cx.cx_homes x
             (if is_float t then Hfreg r else Hireg r)
         | [] -> give_slot x)
      events;
    (* float registers the scan never touched are available for
       constant hoisting below *)
    List.iter
      (fun r ->
         if not (Hashtbl.mem fregs_ever_used r) then
           free_const_regs := r :: !free_const_regs)
      (List.init 15 (fun i -> 14 + i));
    (* locals never mentioned still need a home *)
    List.iter
      (fun (x, _) ->
         if not (Hashtbl.mem cx.cx_homes x) then give_slot x)
      vars
  end
  else List.iter (fun (x, _) -> give_slot x) vars;
  (* variable area sits at [8, 8 + vs); temps follow. The generator
     allocates temps from 0 upward; all offsets are shifted at the end.
     To keep the code simple we instead generate with final offsets:
     variables first (known now), temps from the var area end. *)
  Hashtbl.iter
    (fun x h ->
       match h with
       | Hslot off -> Hashtbl.replace cx.cx_homes x (Hslot (8 + off))
       | Hireg _ | Hfreg _ -> ())
    (Hashtbl.copy cx.cx_homes);
  cx.cx_temp <- 8 + !next_var_slot;
  cx.cx_temp_high <- cx.cx_temp;
  (* O2 constant hoisting: the most frequent float constants are loaded
     once in the prologue into f29-f31 plus every callee-class float
     register the locals allocation left untouched *)
  if cfg.cg_regstack then begin
    let consts =
      List.sort (fun (_, a) (_, b) -> compare b a) (float_consts fsrc)
      |> List.filter (fun (_, n) -> n >= 2)
    in
    let available = ref ([ 29; 30; 31 ] @ List.rev !free_const_regs) in
    List.iter
      (fun (c, _) ->
         match !available with
         | r :: rest ->
           available := rest;
           Hashtbl.replace cx.cx_constregs (Int64.bits_of_float c) r;
           emit cx (Asm.Plfdc (r, c))
         | [] -> ())
      consts
  end;
  (* prologue: the frame size is patched after generation *)
  let epilogue () =
    emit cx (Asm.Pfreeframe 0); (* patched below *)
    emit cx Asm.Pblr
  in
  (* move parameters from their EABI arrival registers to their homes *)
  let next_i = ref 3 and next_f = ref 1 in
  List.iter
    (fun (x, t) ->
       let arrival = if is_float t then (let r = !next_f in incr next_f; r)
                     else (let r = !next_i in incr next_i; r) in
       store_to_home cx x arrival)
    fsrc.Minic.Ast.fn_params;
  gen_stmt cx epilogue fsrc.Minic.Ast.fn_body;
  (* implicit return, unless the body already ended with one *)
  (match !(cx.cx_buf) with
   | Asm.Pblr :: _ -> ()
   | _ -> gen_stmt cx epilogue (Minic.Ast.Sreturn None));
  let frame = (cx.cx_temp_high + 15) / 16 * 16 in
  let code =
    List.rev_map
      (fun i ->
         match i with
         | Asm.Pfreeframe 0 -> Asm.Pfreeframe frame
         | _ -> i)
      !(cx.cx_buf)
  in
  let code = Asm.Pallocframe frame :: code in
  { Asm.fn_name = fsrc.Minic.Ast.fn_name; fn_code = code }

let gen_program (cfg : config) (p : Minic.Ast.program) : Asm.program =
  { Asm.pr_funcs = List.map (gen_func cfg p) p.Minic.Ast.prog_funcs;
    pr_main = p.Minic.Ast.prog_main }
