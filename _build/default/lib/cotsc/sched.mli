(** Post-pass list scheduler (full -O only): reorders instructions
    inside basic blocks to harvest the dual-issue / pipelined-FPU
    overlap of the timing model — the scheduling CompCert 1.7 lacked.
    Register (including CR0) and memory dependences are respected;
    observable operations keep their program order. *)

val run_func : Target.Asm.func -> Target.Asm.func
val run : Target.Asm.program -> Target.Asm.program
