(** Full-O front-end pass: fusion of single-use wire chains into
    expression trees. Safety conditions (single assignment, pure
    locals-only right-hand side, no intervening redefinition, use not
    inside a loop) are documented in the implementation header; the
    test suite checks semantic preservation on random programs. *)

val local_pure : Minic.Ast.expr -> bool
val expr_uses : string -> Minic.Ast.expr -> int
val stmt_uses : ?in_loop:bool -> string -> Minic.Ast.stmt -> int
val stmt_assigns : string -> Minic.Ast.stmt -> int
val flatten : Minic.Ast.stmt -> Minic.Ast.stmt list -> Minic.Ast.stmt list
val reseq : Minic.Ast.stmt list -> Minic.Ast.stmt

val fuse_func : Minic.Ast.func -> Minic.Ast.func
val fuse_program : Minic.Ast.program -> Minic.Ast.program
