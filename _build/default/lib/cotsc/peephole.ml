(* Assembly peephole of the COTS baseline (enabled at O1 and O2):

   - store-to-slot immediately followed by a load from the same slot
     becomes the store plus a register move (removes one data-cache
     read);
   - moves to self are deleted;
   - an unconditional branch to the immediately following label is
     deleted.

   The window never crosses labels or branches (basic-block local), so
   the rewrites are trivially sound; the test suite still runs the
   differential validator over peepholed code. *)

module Asm = Target.Asm

let same_addr (a : Asm.address) (b : Asm.address) : bool =
  match a, b with
  | Asm.Aind (r1, o1), Asm.Aind (r2, o2) -> r1 = r2 && Int32.equal o1 o2
  | _, _ -> false

(* [forward_slots] enables the store/load forwarding rewrite: part of
   the full -O2 configuration only; the "-O without register
   allocation" configuration keeps the memory traffic of the patterns
   (which is why the paper measures it at -0.5% WCET). *)
let rec rewrite ~(forward_slots : bool) (code : Asm.instr list) :
  Asm.instr list =
  let rewrite = rewrite ~forward_slots in
  match code with
  (* stw rX, slot; lwz rY, slot  =>  stw rX, slot; mr rY, rX *)
  | (Asm.Pstw (rx, a) as st) :: Asm.Plwz (ry, b) :: rest
    when forward_slots && same_addr a b ->
    if rx = ry then st :: rewrite rest
    else st :: rewrite (Asm.Pmr (ry, rx) :: rest)
  | (Asm.Pstfd (fx, a) as st) :: Asm.Plfd (fy, b) :: rest
    when forward_slots && same_addr a b ->
    if fx = fy then st :: rewrite rest
    else st :: rewrite (Asm.Pfmr (fy, fx) :: rest)
  (* mr r, r / fmr f, f *)
  | Asm.Pmr (d, s) :: rest when d = s -> rewrite rest
  | Asm.Pfmr (d, s) :: rest when d = s -> rewrite rest
  (* b L; L: *)
  | Asm.Pb l1 :: (Asm.Plabel l2 :: _ as rest) when l1 = l2 -> rewrite rest
  (* bc C, L1; b L2; L1:  =>  bc !C, L2; L1:   (branch inversion) *)
  | Asm.Pbc (c, l1) :: Asm.Pb l2 :: (Asm.Plabel l1' :: _ as rest)
    when forward_slots && l1 = l1' ->
    Asm.Pbc (Asm.negate_cond c, l2) :: rewrite rest
  | i :: rest -> i :: rewrite rest
  | [] -> []

let run_func ~(forward_slots : bool) (f : Asm.func) : Asm.func =
  (* iterate to a small fixpoint: rewrites may enable one another *)
  let rec loop code budget =
    let code' = rewrite ~forward_slots code in
    if budget = 0 || List.length code' = List.length code then code'
    else loop code' (budget - 1)
  in
  { f with Asm.fn_code = loop f.Asm.fn_code 4 }

let run ?(forward_slots = true) (p : Asm.program) : Asm.program =
  { p with Asm.pr_funcs = List.map (run_func ~forward_slots) p.Asm.pr_funcs }

(* Branch sanitation only (inversion, jump-to-next): applied at every
   level including the pattern configuration — this is ordinary sane
   emission, not an optimization, and keeps the per-symbol patterns
   deterministic. *)
let rec sanitize_branches (code : Asm.instr list) : Asm.instr list =
  match code with
  | Asm.Pb l1 :: (Asm.Plabel l2 :: _ as rest) when l1 = l2 ->
    sanitize_branches rest
  | Asm.Pbc (c, l1) :: Asm.Pb l2 :: (Asm.Plabel l1' :: _ as rest)
    when l1 = l1' ->
    Asm.Pbc (Asm.negate_cond c, l2) :: sanitize_branches rest
  | i :: rest -> i :: sanitize_branches rest
  | [] -> []

let sanitize (p : Asm.program) : Asm.program =
  { p with
    Asm.pr_funcs =
      List.map
        (fun f ->
           let rec fix code budget =
             let code' = sanitize_branches code in
             if budget = 0 || List.length code' = List.length code then code'
             else fix code' (budget - 1)
           in
           { f with Asm.fn_code = fix f.Asm.fn_code 4 })
        p.Asm.pr_funcs }
