(* Driver of the COTS baseline compiler. The three configurations match
   the paper's evaluation:
   - [Onone]: no optimization, fixed per-symbol code patterns (the
     certified production configuration);
   - [Onoregalloc]: optimized without register allocation;
   - [Ofull]: fully optimized. *)

type level =
  | Onone
  | Onoregalloc
  | Ofull

let level_name (l : level) : string =
  match l with
  | Onone -> "default -O0 (patterns)"
  | Onoregalloc -> "default -O no-regalloc"
  | Ofull -> "default -O full"

let config_of_level (l : level) : Codegen.config =
  match l with
  | Onone -> Codegen.o0
  | Onoregalloc -> Codegen.o1
  | Ofull -> Codegen.o2

(* [contract_fma] (default true, as a real -O2 would) may be disabled
   to obtain bit-exact source semantics from the Ofull configuration —
   the trace-equivalence tests do so; see [Codegen.config]. *)
let compile ?(level = Onone) ?(contract_fma = true) (src : Minic.Ast.program) :
  Target.Asm.program =
  Minic.Typecheck.check_program_exn src;
  let cfg = config_of_level level in
  let cfg = { cfg with Codegen.cg_fmadd = cfg.Codegen.cg_fmadd && contract_fma } in
  let asm = Codegen.gen_program cfg src in
  let asm = Peephole.sanitize asm in
  let asm =
    if cfg.Codegen.cg_peephole then
      (* slot forwarding only with register allocation (full -O) *)
      Peephole.run ~forward_slots:cfg.Codegen.cg_regstack asm
    else asm
  in
  (* block-local list scheduling: full -O only *)
  if cfg.Codegen.cg_regstack then Sched.run asm else asm
