(* AST-level constant folding, the only "optimization" the COTS baseline
   performs below -O2 (and the paper measures it at a mere -0.5% WCET:
   everything still makes the stack-frame round trip).

   Folding uses the exact dynamic semantics of [Minic.Value], so folded
   float operations are bit-identical to run-time evaluation. Volatile
   reads are opaque (never folded); discarding the unselected arm of a
   constant conditional is sound because mini-C conditional expressions
   are lazy. *)

let value_of_const (e : Minic.Ast.expr) : Minic.Value.t option =
  match e with
  | Minic.Ast.Econst_int n -> Some (Minic.Value.Vint n)
  | Minic.Ast.Econst_float f -> Some (Minic.Value.Vfloat f)
  | Minic.Ast.Econst_bool b -> Some (Minic.Value.Vbool b)
  | Minic.Ast.Evar _ | Minic.Ast.Eglobal _ | Minic.Ast.Eindex _
  | Minic.Ast.Eunop _ | Minic.Ast.Ebinop _ | Minic.Ast.Econd _
  | Minic.Ast.Evolatile _ -> None

let const_of_value (v : Minic.Value.t) : Minic.Ast.expr =
  match v with
  | Minic.Value.Vint n -> Minic.Ast.Econst_int n
  | Minic.Value.Vfloat f -> Minic.Ast.Econst_float f
  | Minic.Value.Vbool b -> Minic.Ast.Econst_bool b

let rec fold_expr (e : Minic.Ast.expr) : Minic.Ast.expr =
  match e with
  | Minic.Ast.Econst_int _ | Minic.Ast.Econst_float _
  | Minic.Ast.Econst_bool _ | Minic.Ast.Evar _ | Minic.Ast.Eglobal _
  | Minic.Ast.Evolatile _ -> e
  | Minic.Ast.Eindex (a, i) -> Minic.Ast.Eindex (a, fold_expr i)
  | Minic.Ast.Eunop (op, e1) ->
    let e1 = fold_expr e1 in
    (match value_of_const e1 with
     | Some v ->
       (try const_of_value (Minic.Value.eval_unop op v)
        with Minic.Value.Type_error _ -> Minic.Ast.Eunop (op, e1))
     | None -> Minic.Ast.Eunop (op, e1))
  | Minic.Ast.Ebinop (op, e1, e2) ->
    let e1 = fold_expr e1 and e2 = fold_expr e2 in
    (match value_of_const e1, value_of_const e2 with
     | Some v1, Some v2 ->
       (try const_of_value (Minic.Value.eval_binop op v1 v2)
        with Minic.Value.Type_error _ -> Minic.Ast.Ebinop (op, e1, e2))
     | _, _ -> Minic.Ast.Ebinop (op, e1, e2))
  | Minic.Ast.Econd (c, e1, e2) ->
    let c = fold_expr c in
    (match value_of_const c with
     | Some (Minic.Value.Vbool true) -> fold_expr e1
     | Some (Minic.Value.Vbool false) -> fold_expr e2
     | Some _ | None -> Minic.Ast.Econd (c, fold_expr e1, fold_expr e2))

let rec fold_stmt (s : Minic.Ast.stmt) : Minic.Ast.stmt =
  match s with
  | Minic.Ast.Sskip -> s
  | Minic.Ast.Sassign (x, e) -> Minic.Ast.Sassign (x, fold_expr e)
  | Minic.Ast.Sglobassign (x, e) -> Minic.Ast.Sglobassign (x, fold_expr e)
  | Minic.Ast.Sstore (a, i, e) -> Minic.Ast.Sstore (a, fold_expr i, fold_expr e)
  | Minic.Ast.Svolstore (x, e) -> Minic.Ast.Svolstore (x, fold_expr e)
  | Minic.Ast.Sseq (a, b) -> Minic.Ast.Sseq (fold_stmt a, fold_stmt b)
  | Minic.Ast.Sif (c, a, b) ->
    let c = fold_expr c in
    (match value_of_const c with
     | Some (Minic.Value.Vbool true) -> fold_stmt a
     | Some (Minic.Value.Vbool false) -> fold_stmt b
     | Some _ | None -> Minic.Ast.Sif (c, fold_stmt a, fold_stmt b))
  | Minic.Ast.Swhile (c, body) ->
    let c = fold_expr c in
    (match value_of_const c with
     | Some (Minic.Value.Vbool false) -> Minic.Ast.Sskip
     | Some _ | None -> Minic.Ast.Swhile (c, fold_stmt body))
  | Minic.Ast.Sfor (i, lo, hi, body) ->
    Minic.Ast.Sfor (i, fold_expr lo, fold_expr hi, fold_stmt body)
  | Minic.Ast.Sreturn None -> s
  | Minic.Ast.Sreturn (Some e) -> Minic.Ast.Sreturn (Some (fold_expr e))
  | Minic.Ast.Sannot (text, args) ->
    Minic.Ast.Sannot (text, List.map fold_expr args)

let fold_func (f : Minic.Ast.func) : Minic.Ast.func =
  { f with Minic.Ast.fn_body = fold_stmt f.Minic.Ast.fn_body }

let fold_program (p : Minic.Ast.program) : Minic.Ast.program =
  { p with Minic.Ast.prog_funcs = List.map fold_func p.Minic.Ast.prog_funcs }
