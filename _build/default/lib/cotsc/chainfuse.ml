(* O2 front-end pass: fusion of single-use wire chains into expression
   trees ("tree matching", what an industrial -O2 gets from SSA-based
   selection). The ACG emits one statement per symbol wired through
   single-assignment locals; fusing a definition into its unique
   immediately-following use lets the register-stack evaluator keep the
   whole chain in registers with no local-variable traffic.

   Safety conditions (checked syntactically):
   - the local is assigned exactly once in the function;
   - its right-hand side is pure and reads only locals and constants
     (no globals, arrays or volatiles: those may be written between the
     definition and the use);
   - the unique use occurs in the *next* statement of the sequence, and
     not inside a loop of that statement (a loop body may re-evaluate
     the substituted expression after its free locals changed). *)

module A = Minic.Ast

(* Is [e] pure and reading only locals/constants? *)
let rec local_pure (e : A.expr) : bool =
  match e with
  | A.Econst_int _ | A.Econst_float _ | A.Econst_bool _ | A.Evar _ -> true
  | A.Eglobal _ | A.Eindex _ | A.Evolatile _ -> false
  | A.Eunop (_, a) -> local_pure a
  | A.Ebinop (_, a, b) -> local_pure a && local_pure b
  | A.Econd (c, a, b) -> local_pure c && local_pure a && local_pure b

let rec expr_uses (x : string) (e : A.expr) : int =
  match e with
  | A.Evar y -> if String.equal x y then 1 else 0
  | A.Econst_int _ | A.Econst_float _ | A.Econst_bool _ | A.Eglobal _
  | A.Evolatile _ -> 0
  | A.Eindex (_, i) -> expr_uses x i
  | A.Eunop (_, a) -> expr_uses x a
  | A.Ebinop (_, a, b) -> expr_uses x a + expr_uses x b
  | A.Econd (c, a, b) -> expr_uses x c + expr_uses x a + expr_uses x b

(* Uses of [x] in statement [s]; [in_loop] counts as 2 so that a
   loop-context use disqualifies the single-use test. *)
let rec stmt_uses ?(in_loop = false) (x : string) (s : A.stmt) : int =
  let w n = if in_loop && n > 0 then n + 1 else n in
  match s with
  | A.Sskip -> 0
  | A.Sassign (_, e) | A.Sglobassign (_, e) | A.Svolstore (_, e) ->
    w (expr_uses x e)
  | A.Sstore (_, i, e) -> w (expr_uses x i + expr_uses x e)
  | A.Sseq (a, b) -> stmt_uses ~in_loop x a + stmt_uses ~in_loop x b
  | A.Sif (c, a, b) ->
    w (expr_uses x c) + stmt_uses ~in_loop x a + stmt_uses ~in_loop x b
  | A.Swhile (c, body) ->
    w (expr_uses x c * 2) + stmt_uses ~in_loop:true x body
  | A.Sfor (i, lo, hi, body) ->
    (if String.equal i x then 2 else 0)
    + w (expr_uses x lo + expr_uses x hi)
    + stmt_uses ~in_loop:true x body
  | A.Sreturn None -> 0
  | A.Sreturn (Some e) -> w (expr_uses x e)
  | A.Sannot (_, args) ->
    w (List.fold_left (fun acc e -> acc + expr_uses x e) 0 args)

let rec stmt_assigns (x : string) (s : A.stmt) : int =
  match s with
  | A.Sassign (y, _) -> if String.equal x y then 1 else 0
  | A.Sfor (i, _, _, body) ->
    (if String.equal i x then 1 else 0) + stmt_assigns x body
  | A.Sseq (a, b) -> stmt_assigns x a + stmt_assigns x b
  | A.Sif (_, a, b) -> stmt_assigns x a + stmt_assigns x b
  | A.Swhile (_, body) -> stmt_assigns x body
  | A.Sskip | A.Sglobassign _ | A.Sstore _ | A.Svolstore _ | A.Sreturn _
  | A.Sannot _ -> 0

let rec subst_expr (x : string) (v : A.expr) (e : A.expr) : A.expr =
  match e with
  | A.Evar y when String.equal x y -> v
  | A.Evar _ | A.Econst_int _ | A.Econst_float _ | A.Econst_bool _
  | A.Eglobal _ | A.Evolatile _ -> e
  | A.Eindex (a, i) -> A.Eindex (a, subst_expr x v i)
  | A.Eunop (op, a) -> A.Eunop (op, subst_expr x v a)
  | A.Ebinop (op, a, b) -> A.Ebinop (op, subst_expr x v a, subst_expr x v b)
  | A.Econd (c, a, b) ->
    A.Econd (subst_expr x v c, subst_expr x v a, subst_expr x v b)

(* Substitute in non-loop positions only (callers have checked the use
   is not in a loop). *)
let rec subst_stmt (x : string) (v : A.expr) (s : A.stmt) : A.stmt =
  match s with
  | A.Sskip -> s
  | A.Sassign (y, e) -> A.Sassign (y, subst_expr x v e)
  | A.Sglobassign (y, e) -> A.Sglobassign (y, subst_expr x v e)
  | A.Sstore (a, i, e) -> A.Sstore (a, subst_expr x v i, subst_expr x v e)
  | A.Svolstore (y, e) -> A.Svolstore (y, subst_expr x v e)
  | A.Sseq (a, b) -> A.Sseq (subst_stmt x v a, subst_stmt x v b)
  | A.Sif (c, a, b) ->
    A.Sif (subst_expr x v c, subst_stmt x v a, subst_stmt x v b)
  | A.Swhile _ | A.Sfor _ -> s (* never substituted into, by the use check *)
  | A.Sreturn None -> s
  | A.Sreturn (Some e) -> A.Sreturn (Some (subst_expr x v e))
  | A.Sannot (text, args) -> A.Sannot (text, List.map (subst_expr x v) args)

(* Flatten a Sseq tree into a statement list and back. *)
let rec flatten (s : A.stmt) (acc : A.stmt list) : A.stmt list =
  match s with
  | A.Sseq (a, b) -> flatten a (flatten b acc)
  | A.Sskip -> acc
  | _ -> s :: acc

let rec reseq (ss : A.stmt list) : A.stmt =
  match ss with
  | [] -> A.Sskip
  | [ s ] -> s
  | s :: rest -> A.Sseq (s, reseq rest)

(* Free local variables of an expression. *)
let rec free_locals (e : A.expr) (acc : string list) : string list =
  match e with
  | A.Evar y -> if List.mem y acc then acc else y :: acc
  | A.Econst_int _ | A.Econst_float _ | A.Econst_bool _ | A.Eglobal _
  | A.Evolatile _ -> acc
  | A.Eindex (_, i) -> free_locals i acc
  | A.Eunop (_, a) -> free_locals a acc
  | A.Ebinop (_, a, b) -> free_locals a (free_locals b acc)
  | A.Econd (c, a, b) -> free_locals c (free_locals a (free_locals b acc))

(* Try to fuse [x = e1] into its unique use within the next [lookahead]
   statements. Returns the rewritten tail on success. Intervening
   statements must neither use [x] nor reassign a free local of [e1]
   (they execute unconditionally in sequence, so skipping over them is
   safe for a pure definition). *)
let try_fuse (x : string) (e1 : A.expr) (tail : A.stmt list) :
  A.stmt list option =
  let fv = free_locals e1 [] in
  let rec go (skipped : A.stmt list) (k : int) (ss : A.stmt list) :
    A.stmt list option =
    match ss with
    | [] -> None
    | s :: rest ->
      if stmt_uses x s = 1
         && List.for_all (fun v -> stmt_assigns v s = 0) fv
         && List.for_all (fun s' -> stmt_uses x s' = 0) rest then
        Some (List.rev_append skipped (subst_stmt x e1 s :: rest))
      else if k > 0 && stmt_uses x s = 0
              && List.for_all (fun v -> stmt_assigns v s = 0) fv then
        go (s :: skipped) (k - 1) rest
      else None
  in
  go [] 5 tail

(* One fusion sweep over a statement list. *)
let rec sweep (assign_count : string -> int) (ss : A.stmt list) : A.stmt list =
  match ss with
  | (A.Sassign (x, e1) as def) :: rest
    when local_pure e1 && expr_uses x e1 = 0 && assign_count x = 1 ->
    (match try_fuse x e1 rest with
     | Some rest' -> sweep assign_count rest'
     | None -> def :: sweep assign_count rest)
  | s :: rest ->
    let s =
      (* recurse into structured statements *)
      match s with
      | A.Sif (c, a, b) ->
        A.Sif (c, reseq (sweep assign_count (flatten a [])),
               reseq (sweep assign_count (flatten b [])))
      | _ -> s
    in
    s :: sweep assign_count rest
  | [] -> []

let fuse_func (f : A.func) : A.func =
  let body = flatten f.A.fn_body [] in
  let assign_count x = stmt_assigns x f.A.fn_body in
  (* note: assign counts are computed on the original body; fusion only
     removes assignments, so a count of 1 remains valid *)
  let body = sweep assign_count body in
  { f with A.fn_body = reseq body }

let fuse_program (p : A.program) : A.program =
  { p with A.prog_funcs = List.map fuse_func p.A.prog_funcs }
