(** AST-level constant folding — the only optimization of the baseline
    below full -O (the paper measures its configuration at -0.5 % WCET).
    Folding reuses the exact dynamic semantics of {!Minic.Value}, so
    folded float operations are bit-identical to run-time evaluation;
    volatile reads are never folded. *)

val fold_expr : Minic.Ast.expr -> Minic.Ast.expr
val fold_stmt : Minic.Ast.stmt -> Minic.Ast.stmt
val fold_func : Minic.Ast.func -> Minic.Ast.func
val fold_program : Minic.Ast.program -> Minic.Ast.program
