lib/cotsc/fold.mli: Minic
