lib/cotsc/chainfuse.mli: Minic
