lib/cotsc/peephole.ml: Int32 List Target
