lib/cotsc/driver.ml: Codegen Minic Peephole Sched Target
