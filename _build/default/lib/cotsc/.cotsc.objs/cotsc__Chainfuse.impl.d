lib/cotsc/chainfuse.ml: List Minic String
