lib/cotsc/fold.ml: List Minic
