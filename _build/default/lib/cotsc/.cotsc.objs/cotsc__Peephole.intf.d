lib/cotsc/peephole.mli: Target
