lib/cotsc/sched.ml: Array List Target
