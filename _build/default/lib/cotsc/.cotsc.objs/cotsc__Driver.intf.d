lib/cotsc/driver.mli: Codegen Minic Target
