lib/cotsc/sched.mli: Target
