lib/cotsc/codegen.mli: Minic Target
