lib/cotsc/codegen.ml: Array Chainfuse Fold Format Hashtbl Int32 Int64 List Minic Option String Target
