(** Assembly peephole of the COTS baseline: slot store/load forwarding
    (full -O only), move-to-self and jump-to-next cleanup, and branch
    inversion. All rewrites are basic-block local. *)

val run : ?forward_slots:bool -> Target.Asm.program -> Target.Asm.program

val sanitize : Target.Asm.program -> Target.Asm.program
(** Branch sanitation only (inversion, jump-to-next): sane emission
    applied at every level including the pattern configuration. *)
