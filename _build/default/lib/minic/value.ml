(* Runtime values of mini-C and the arithmetic shared by the reference
   interpreter and the constant-folding passes of both compilers.

   Integer arithmetic is 32-bit two's complement ([Int32]); float
   arithmetic is IEEE-754 double, matching what the PPC-like target
   executes, so that source-level evaluation and machine-level execution
   agree bit-for-bit and trace equivalence is meaningful. *)

type t =
  | Vint of int32
  | Vfloat of float
  | Vbool of bool

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let as_int = function
  | Vint n -> n
  | Vfloat _ | Vbool _ -> type_error "expected an integer value"

let as_float = function
  | Vfloat f -> f
  | Vint _ | Vbool _ -> type_error "expected a float value"

let as_bool = function
  | Vbool b -> b
  | Vint _ | Vfloat _ -> type_error "expected a boolean value"

let typ_of (v : t) : Ast.typ =
  match v with
  | Vint _ -> Ast.Tint
  | Vfloat _ -> Ast.Tfloat
  | Vbool _ -> Ast.Tbool

let zero_of_typ (t : Ast.typ) : t =
  match t with
  | Ast.Tint -> Vint 0l
  | Ast.Tfloat -> Vfloat 0.0
  | Ast.Tbool -> Vbool false

let equal (a : t) (b : t) : bool =
  match a, b with
  | Vint x, Vint y -> Int32.equal x y
  | Vfloat x, Vfloat y ->
    (* Bit equality, so that NaN = NaN and -0.0 <> 0.0: trace comparison
       must be exact, not numerical. *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Vbool x, Vbool y -> Bool.equal x y
  | (Vint _ | Vfloat _ | Vbool _), _ -> false

let pp (ppf : Format.formatter) (v : t) : unit =
  match v with
  | Vint n -> Format.fprintf ppf "%ld" n
  | Vfloat f -> Format.fprintf ppf "%h" f
  | Vbool b -> Format.fprintf ppf "%b" b

let to_string (v : t) : string = Format.asprintf "%a" pp v

(* Conversion float -> int32, truncation toward zero, saturating at the
   int32 range like PowerPC fctiwz does. *)
let int32_of_float_trunc (f : float) : int32 =
  if Float.is_nan f then 0l
  else if f >= 2147483647.0 then Int32.max_int
  else if f <= -2147483648.0 then Int32.min_int
  else Int32.of_float (Float.of_int (int_of_float f))

let eval_comparison (c : Ast.comparison) (order : int) : bool =
  match c with
  | Ast.Ceq -> order = 0
  | Ast.Cne -> order <> 0
  | Ast.Clt -> order < 0
  | Ast.Cle -> order <= 0
  | Ast.Cgt -> order > 0
  | Ast.Cge -> order >= 0

let eval_fcomparison (c : Ast.comparison) (x : float) (y : float) : bool =
  (* IEEE semantics: all ordered comparisons are false on NaN except Cne. *)
  match c with
  | Ast.Ceq -> x = y
  | Ast.Cne -> not (x = y)
  | Ast.Clt -> x < y
  | Ast.Cle -> x <= y
  | Ast.Cgt -> x > y
  | Ast.Cge -> x >= y

let eval_unop (op : Ast.unop) (v : t) : t =
  match op with
  | Ast.Oneg -> Vint (Int32.neg (as_int v))
  | Ast.Onot -> Vbool (not (as_bool v))
  | Ast.Ofneg -> Vfloat (Float.neg (as_float v))
  | Ast.Ofabs -> Vfloat (Float.abs (as_float v))
  | Ast.Ofloat_of_int -> Vfloat (Int32.to_float (as_int v))
  | Ast.Oint_of_float -> Vint (int32_of_float_trunc (as_float v))

(* Integer division and modulus: round toward zero; division by zero and
   INT_MIN / -1 yield 0, like the PPC divw instruction leaves the result
   undefined and our simulator defines it as 0. Keeping source and target
   semantics aligned is what lets semantic preservation hold on all
   inputs. *)
let div32 (x : int32) (y : int32) : int32 =
  if Int32.equal y 0l then 0l
  else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then 0l
  else Int32.div x y

(* Remainder is defined as x - (x / y) * y with the total division
   above, which is exactly what the compiled divw/mullw/subf expansion
   computes: x rem 0 = x, and INT_MIN rem -1 = INT_MIN. *)
let rem32 (x : int32) (y : int32) : int32 =
  Int32.sub x (Int32.mul (div32 x y) y)

let shift_amount (y : int32) : int = Int32.to_int (Int32.logand y 31l)

let eval_binop (op : Ast.binop) (a : t) (b : t) : t =
  match op with
  | Ast.Oadd -> Vint (Int32.add (as_int a) (as_int b))
  | Ast.Osub -> Vint (Int32.sub (as_int a) (as_int b))
  | Ast.Omul -> Vint (Int32.mul (as_int a) (as_int b))
  | Ast.Odiv -> Vint (div32 (as_int a) (as_int b))
  | Ast.Omod -> Vint (rem32 (as_int a) (as_int b))
  | Ast.Oand -> Vint (Int32.logand (as_int a) (as_int b))
  | Ast.Oor -> Vint (Int32.logor (as_int a) (as_int b))
  | Ast.Oxor -> Vint (Int32.logxor (as_int a) (as_int b))
  | Ast.Oshl -> Vint (Int32.shift_left (as_int a) (shift_amount (as_int b)))
  | Ast.Oshr -> Vint (Int32.shift_right (as_int a) (shift_amount (as_int b)))
  | Ast.Ofadd -> Vfloat (as_float a +. as_float b)
  | Ast.Ofsub -> Vfloat (as_float a -. as_float b)
  | Ast.Ofmul -> Vfloat (as_float a *. as_float b)
  | Ast.Ofdiv -> Vfloat (as_float a /. as_float b)
  | Ast.Ocmp c -> Vbool (eval_comparison c (Int32.compare (as_int a) (as_int b)))
  | Ast.Ofcmp c -> Vbool (eval_fcomparison c (as_float a) (as_float b))
  | Ast.Oband -> Vbool (as_bool a && as_bool b)
  | Ast.Obor -> Vbool (as_bool a || as_bool b)
