(** Pretty-printer for mini-C, producing concrete syntax accepted back
    by {!Parser}; the ACG uses it to materialize generated "C" files.
    The round trip [parse (print p)] reproduces the program. *)

val binop_prec : Ast.binop -> int
(** Operator precedence (used by the parser's precedence climbing). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
