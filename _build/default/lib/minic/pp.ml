(* Pretty-printer for mini-C, producing concrete syntax accepted back by
   [Parser]. The ACG uses it to materialize the generated "C" files of the
   development chain (paper Figure 1); the round-trip property
   (parse (print p) = p) is checked by the test suite. *)

let pp_comparison ppf (c : Ast.comparison) =
  Format.pp_print_string ppf
    (match c with
     | Ast.Ceq -> "=="
     | Ast.Cne -> "!="
     | Ast.Clt -> "<"
     | Ast.Cle -> "<="
     | Ast.Cgt -> ">"
     | Ast.Cge -> ">=")

(* Operator precedence, loosely following C. Higher binds tighter. *)
let binop_prec (op : Ast.binop) : int =
  match op with
  | Ast.Omul | Ast.Odiv | Ast.Omod | Ast.Ofmul | Ast.Ofdiv -> 7
  | Ast.Oadd | Ast.Osub | Ast.Ofadd | Ast.Ofsub -> 6
  | Ast.Oshl | Ast.Oshr -> 5
  | Ast.Ocmp _ | Ast.Ofcmp _ -> 4
  | Ast.Oand | Ast.Oor | Ast.Oxor -> 3
  | Ast.Oband -> 2
  | Ast.Obor -> 1

let binop_name (op : Ast.binop) : string =
  match op with
  | Ast.Oadd -> "+"
  | Ast.Osub -> "-"
  | Ast.Omul -> "*"
  | Ast.Odiv -> "/"
  | Ast.Omod -> "%"
  | Ast.Oand -> "&"
  | Ast.Oor -> "|"
  | Ast.Oxor -> "^"
  | Ast.Oshl -> "<<"
  | Ast.Oshr -> ">>"
  | Ast.Ofadd -> "+."
  | Ast.Ofsub -> "-."
  | Ast.Ofmul -> "*."
  | Ast.Ofdiv -> "/."
  | Ast.Ocmp c -> Format.asprintf "%a" pp_comparison c
  | Ast.Ofcmp c -> Format.asprintf "%a." pp_comparison c
  | Ast.Oband -> "&&"
  | Ast.Obor -> "||"

let rec pp_expr_prec (prec : int) ppf (e : Ast.expr) : unit =
  match e with
  | Ast.Econst_int n -> Format.fprintf ppf "%ld" n
  | Ast.Econst_float f -> Format.fprintf ppf "%h" f
  | Ast.Econst_bool true -> Format.pp_print_string ppf "true"
  | Ast.Econst_bool false -> Format.pp_print_string ppf "false"
  | Ast.Evar x -> Format.pp_print_string ppf x
  | Ast.Eglobal x -> Format.fprintf ppf "$%s" x
  | Ast.Eindex (a, i) -> Format.fprintf ppf "$%s[%a]" a (pp_expr_prec 0) i
  | Ast.Evolatile x -> Format.fprintf ppf "volatile(%s)" x
  | Ast.Eunop (op, e1) ->
    let name =
      match op with
      | Ast.Oneg -> "-"
      | Ast.Onot -> "!"
      | Ast.Ofneg -> "-."
      | Ast.Ofabs -> "fabs"
      | Ast.Ofloat_of_int -> "(double)"
      | Ast.Oint_of_float -> "(int)"
    in
    (match op with
     | Ast.Ofabs -> Format.fprintf ppf "fabs(%a)" (pp_expr_prec 0) e1
     | Ast.Oneg | Ast.Onot | Ast.Ofneg | Ast.Ofloat_of_int | Ast.Oint_of_float ->
       Format.fprintf ppf "%s%a" name (pp_expr_prec 8) e1)
  | Ast.Ebinop (op, e1, e2) ->
    let p = binop_prec op in
    let body ppf () =
      Format.fprintf ppf "%a %s %a"
        (pp_expr_prec p) e1 (binop_name op) (pp_expr_prec (p + 1)) e2
    in
    if p < prec then Format.fprintf ppf "(%a)" body ()
    else body ppf ()
  | Ast.Econd (c, e1, e2) ->
    let body ppf () =
      Format.fprintf ppf "%a ? %a : %a"
        (pp_expr_prec 1) c (pp_expr_prec 1) e1 (pp_expr_prec 0) e2
    in
    if prec > 0 then Format.fprintf ppf "(%a)" body () else body ppf ()

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_string_literal ppf (s : string) : unit =
  Format.fprintf ppf "\"%s\"" (String.escaped s)

let rec pp_stmt (indent : int) ppf (s : Ast.stmt) : unit =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Sskip -> Format.fprintf ppf "%sskip;@," pad
  | Ast.Sassign (x, e) -> Format.fprintf ppf "%s%s = %a;@," pad x pp_expr e
  | Ast.Sglobassign (x, e) ->
    Format.fprintf ppf "%s$%s = %a;@," pad x pp_expr e
  | Ast.Sstore (a, i, e) ->
    Format.fprintf ppf "%s$%s[%a] = %a;@," pad a pp_expr i pp_expr e
  | Ast.Svolstore (x, e) ->
    Format.fprintf ppf "%svolatile(%s) = %a;@," pad x pp_expr e
  | Ast.Sseq (a, b) -> pp_stmt indent ppf a; pp_stmt indent ppf b
  | Ast.Sif (c, a, Ast.Sskip) ->
    Format.fprintf ppf "%sif (%a) {@,%a%s}@," pad pp_expr c
      (pp_stmt (indent + 2)) a pad
  | Ast.Sif (c, a, b) ->
    Format.fprintf ppf "%sif (%a) {@,%a%s} else {@,%a%s}@," pad pp_expr c
      (pp_stmt (indent + 2)) a pad (pp_stmt (indent + 2)) b pad
  | Ast.Swhile (c, body) ->
    Format.fprintf ppf "%swhile (%a) {@,%a%s}@," pad pp_expr c
      (pp_stmt (indent + 2)) body pad
  | Ast.Sfor (i, lo, hi, body) ->
    Format.fprintf ppf "%sfor (%s = %a; %s < %a) {@,%a%s}@," pad i pp_expr lo
      i pp_expr hi (pp_stmt (indent + 2)) body pad
  | Ast.Sreturn None -> Format.fprintf ppf "%sreturn;@," pad
  | Ast.Sreturn (Some e) -> Format.fprintf ppf "%sreturn %a;@," pad pp_expr e
  | Ast.Sannot (text, args) ->
    Format.fprintf ppf "%s__builtin_annotation(%a%a);@," pad
      pp_string_literal text
      (Format.pp_print_list ~pp_sep:(fun _ () -> ())
         (fun ppf e -> Format.fprintf ppf ", %a" pp_expr e))
      args

let pp_var_decl ppf ((x, t) : Ast.ident * Ast.typ) : unit =
  Format.fprintf ppf "%s %s" (Ast.string_of_typ t) x

let pp_func ppf (f : Ast.func) : unit =
  let ret = match f.Ast.fn_ret with None -> "void" | Some t -> Ast.string_of_typ t in
  Format.fprintf ppf "@[<v>%s %s(%a) {@," ret f.Ast.fn_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_var_decl)
    f.Ast.fn_params;
  List.iter (fun d -> Format.fprintf ppf "  var %a;@," pp_var_decl d) f.Ast.fn_locals;
  pp_stmt 2 ppf f.Ast.fn_body;
  Format.fprintf ppf "}@,@]"

let pp_program ppf (p : Ast.program) : unit =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (x, t) -> Format.fprintf ppf "global %s %s;@," (Ast.string_of_typ t) x)
    p.Ast.prog_globals;
  List.iter
    (fun a ->
       Format.fprintf ppf "array %s %s = {%a};@,"
         (Ast.string_of_typ a.Ast.arr_elt) a.Ast.arr_name
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
            (fun ppf f -> Format.fprintf ppf "%h" f))
         a.Ast.arr_init)
    p.Ast.prog_arrays;
  List.iter
    (fun (x, t, d) ->
       let dir = match d with Ast.Vol_in -> "in" | Ast.Vol_out -> "out" in
       Format.fprintf ppf "volatile %s %s %s;@," dir (Ast.string_of_typ t) x)
    p.Ast.prog_volatiles;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) p.Ast.prog_funcs;
  Format.fprintf ppf "main %s;@,@]" p.Ast.prog_main

let program_to_string (p : Ast.program) : string =
  Format.asprintf "%a" pp_program p
