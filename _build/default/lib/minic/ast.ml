(* Abstract syntax of mini-C, the source language of the compilers.

   Mini-C is the structured, loop-bounded C subset produced by the
   SCADE-like automatic code generator ([Scade.Acg]) and accepted by both
   the verified-style compiler ([Vcomp]) and the COTS baseline ([Cotsc]).
   It deliberately mirrors the restricted C used for flight control
   software: no pointers, no dynamic allocation, no recursion, globals and
   global arrays only, plus [volatile] hardware registers for signal
   acquisition and actuator output, and the [__builtin_annotation]
   pro-forma effect of the paper (section 3.4). *)

type ident = string

type typ =
  | Tint   (* 32-bit signed integer *)
  | Tfloat (* IEEE-754 double, as used by the flight control laws *)
  | Tbool  (* boolean, materialized as an integer 0/1 at machine level *)

type comparison =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

type unop =
  | Oneg            (* integer negation *)
  | Onot            (* boolean negation *)
  | Ofneg           (* float negation *)
  | Ofabs           (* float absolute value *)
  | Ofloat_of_int   (* int -> float conversion *)
  | Oint_of_float   (* float -> int conversion, truncation toward zero *)

type binop =
  | Oadd
  | Osub
  | Omul
  | Odiv            (* integer division, round toward zero *)
  | Omod
  | Oand            (* bitwise and *)
  | Oor             (* bitwise or *)
  | Oxor
  | Oshl
  | Oshr            (* arithmetic shift right *)
  | Ofadd
  | Ofsub
  | Ofmul
  | Ofdiv
  | Ocmp of comparison   (* integer comparison, yields bool *)
  | Ofcmp of comparison  (* float comparison, yields bool *)
  | Oband                (* boolean and (strict) *)
  | Obor                 (* boolean or (strict) *)

type expr =
  | Econst_int of int32
  | Econst_float of float
  | Econst_bool of bool
  | Evar of ident                  (* local variable or parameter *)
  | Eglobal of ident               (* global scalar *)
  | Eindex of ident * expr         (* global array element *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Econd of expr * expr * expr    (* conditional expression *)
  | Evolatile of ident             (* volatile read: hardware signal acquisition *)

type stmt =
  | Sskip
  | Sassign of ident * expr                 (* local := expr *)
  | Sglobassign of ident * expr             (* global := expr *)
  | Sstore of ident * expr * expr           (* array[idx] := expr *)
  | Svolstore of ident * expr               (* volatile write: actuator command *)
  | Sseq of stmt * stmt
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt                   (* condition must be analyzable or annotated *)
  | Sfor of ident * expr * expr * stmt      (* for (i = lo; i < hi; i++) body *)
  | Sreturn of expr option
  | Sannot of string * expr list            (* __builtin_annotation("...", e1, ...) *)

type func = {
  fn_name : ident;
  fn_params : (ident * typ) list;
  fn_locals : (ident * typ) list;
  fn_ret : typ option;
  fn_body : stmt;
}

(* Initialization of a global array: element type and initial values. *)
type array_def = {
  arr_name : ident;
  arr_elt : typ;
  arr_init : float list; (* stored as floats; truncated for Tint elements *)
}

type vol_dir =
  | Vol_in   (* sensor / acquisition register *)
  | Vol_out  (* actuator register *)

type program = {
  prog_globals : (ident * typ) list;       (* zero-initialized global scalars *)
  prog_arrays : array_def list;             (* constant global arrays (lookup tables) *)
  prog_volatiles : (ident * typ * vol_dir) list;
  prog_funcs : func list;
  prog_main : ident;                        (* entry point analyzed for WCET *)
}

let typ_equal (a : typ) (b : typ) : bool =
  match a, b with
  | Tint, Tint | Tfloat, Tfloat | Tbool, Tbool -> true
  | (Tint | Tfloat | Tbool), _ -> false

let string_of_typ = function
  | Tint -> "int"
  | Tfloat -> "double"
  | Tbool -> "bool"

let negate_comparison = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

let swap_comparison = function
  | Ceq -> Ceq
  | Cne -> Cne
  | Clt -> Cgt
  | Cle -> Cge
  | Cgt -> Clt
  | Cge -> Cle

(* Iterate over all statements of a function body, prefix order. *)
let rec iter_stmt (f : stmt -> unit) (s : stmt) : unit =
  f s;
  match s with
  | Sseq (a, b) -> iter_stmt f a; iter_stmt f b
  | Sif (_, a, b) -> iter_stmt f a; iter_stmt f b
  | Swhile (_, a) -> iter_stmt f a
  | Sfor (_, _, _, a) -> iter_stmt f a
  | Sskip | Sassign _ | Sglobassign _ | Sstore _ | Svolstore _
  | Sreturn _ | Sannot _ -> ()

(* Find a function by name. *)
let find_func (p : program) (name : ident) : func option =
  List.find_opt (fun f -> String.equal f.fn_name name) p.prog_funcs

(* Look up the direction of a volatile, if declared. *)
let find_volatile (p : program) (name : ident) : (typ * vol_dir) option =
  List.find_map
    (fun (n, t, d) -> if String.equal n name then Some (t, d) else None)
    p.prog_volatiles
