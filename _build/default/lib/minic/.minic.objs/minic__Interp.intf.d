lib/minic/interp.mli: Ast Format Value
