lib/minic/interp.ml: Array Ast Format Hashtbl Int32 List Option Printf String Value
