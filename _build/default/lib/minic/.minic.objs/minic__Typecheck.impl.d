lib/minic/typecheck.ml: Ast Format List Printf Result String
