lib/minic/pp.ml: Ast Format List String
