lib/minic/value.ml: Ast Bool Float Format Int32 Int64
