lib/minic/lexer.ml: Buffer Float Int32 List Printf String
