(** Type checker for mini-C programs, run by every compiler front end.

    Beyond typing, it enforces the flight-control coding restrictions
    the paper's process relies on: volatile directions respected,
    annotation arguments of scalar numeric type, and MISRA-C rule 13.6
    (a counted loop's counter is not modified in its body). *)

type error = {
  err_func : string; (** enclosing function, [""] at program level *)
  err_msg : string;
}

val error_to_string : error -> string

val check_program : Ast.program -> (unit, error) result

val check_program_exn : Ast.program -> unit
(** @raise Invalid_argument on the first error. *)
