(* Hand-written lexer for mini-C concrete syntax.

   One subtlety: the pretty-printer emits negative numeric literals
   (e.g. [-5], [-0x1.8p+0], [-infinity]) directly. The lexer folds a
   leading minus into the literal when the previous token cannot end an
   operand, so that printing and re-parsing a constant yields the same
   AST node rather than a unary negation. *)

type token =
  | INT of int32
  | FLOAT of float
  | IDENT of string
  | STRING of string
  (* keywords *)
  | KW_global | KW_array | KW_volatile | KW_in | KW_out
  | KW_int | KW_double | KW_bool | KW_void | KW_var
  | KW_if | KW_else | KW_while | KW_for | KW_return | KW_skip
  | KW_true | KW_false | KW_fabs | KW_annotation | KW_main
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOLLAR | QUESTION | COLON | ASSIGN
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | FPLUS | FMINUS | FSTAR | FSLASH
  | AMP | BAR | CARET | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | FEQ | FNE | FLT | FLE | FGT | FGE
  | ANDAND | BARBAR | BANG
  | CAST_INT | CAST_DOUBLE
  | EOF

exception Lex_error of string * int (* message, position *)

let keyword_table : (string * token) list =
  [ "global", KW_global; "array", KW_array; "volatile", KW_volatile;
    "in", KW_in; "out", KW_out; "int", KW_int; "double", KW_double;
    "bool", KW_bool; "void", KW_void; "var", KW_var; "if", KW_if;
    "else", KW_else; "while", KW_while; "for", KW_for;
    "return", KW_return; "skip", KW_skip; "true", KW_true;
    "false", KW_false; "fabs", KW_fabs;
    "__builtin_annotation", KW_annotation; "main", KW_main ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Characters that may appear inside a numeric literal once it has
   started: digits, hex digits, radix/exponent markers, signs after
   exponent markers are handled separately. *)
let is_num_char c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  || c = 'x' || c = 'X' || c = '.' || c = 'p' || c = 'P'

(* Does a token allow a following '-' to be a binary operator? *)
let ends_operand = function
  | INT _ | FLOAT _ | IDENT _ | RPAREN | RBRACKET | KW_true | KW_false -> true
  | STRING _ | KW_global | KW_array | KW_volatile | KW_in | KW_out
  | KW_int | KW_double | KW_bool | KW_void | KW_var | KW_if | KW_else
  | KW_while | KW_for | KW_return | KW_skip | KW_fabs | KW_annotation
  | KW_main | LPAREN | LBRACE | RBRACE | LBRACKET | SEMI | COMMA | DOLLAR
  | QUESTION | COLON | ASSIGN | PLUS | MINUS | STAR | SLASH | PERCENT
  | FPLUS | FMINUS | FSTAR | FSLASH | AMP | BAR | CARET | SHL | SHR
  | EQ | NE | LT | LE | GT | GE | FEQ | FNE | FLT | FLE | FGT | FGE
  | ANDAND | BARBAR | BANG | CAST_INT | CAST_DOUBLE | EOF -> false

type lexer_state = {
  src : string;
  mutable pos : int;
  mutable last : token;
}

let make (src : string) : lexer_state = { src; pos = 0; last = EOF }

let peek_char (st : lexer_state) (k : int) : char option =
  let i = st.pos + k in
  if i < String.length st.src then Some st.src.[i] else None

let starts_with (st : lexer_state) (s : string) : bool =
  let n = String.length s in
  st.pos + n <= String.length st.src
  && String.equal (String.sub st.src st.pos n) s

let rec skip_ws (st : lexer_state) : unit =
  match peek_char st 0 with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | Some '/' when peek_char st 1 = Some '/' ->
    (* line comment *)
    let rec to_eol () =
      match peek_char st 0 with
      | Some '\n' | None -> ()
      | Some _ -> st.pos <- st.pos + 1; to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some _ | None -> ()

let lex_number (st : lexer_state) ~(negative : bool) : token =
  let start = st.pos in
  (* Special literals produced by %h for non-finite floats. *)
  if starts_with st "infinity" then begin
    st.pos <- st.pos + 8;
    FLOAT (if negative then Float.neg_infinity else Float.infinity)
  end
  else if starts_with st "nan" then begin
    st.pos <- st.pos + 3;
    FLOAT (if negative then Float.neg Float.nan else Float.nan)
  end
  else begin
    let is_float = ref false in
    let rec advance () =
      match peek_char st 0 with
      | Some c when is_num_char c ->
        if c = '.' || c = 'p' || c = 'P' then is_float := true;
        (* exponent sign: p+3 / p-3 / e+5 *)
        (match c, peek_char st 1 with
         | ('p' | 'P'), Some ('+' | '-') -> st.pos <- st.pos + 2
         | ('e' | 'E'), Some ('+' | '-') when not (starts_with st "0x") ->
           is_float := true;
           st.pos <- st.pos + 2
         | _ -> st.pos <- st.pos + 1);
        advance ()
      | Some _ | None -> ()
    in
    advance ();
    let text = String.sub st.src start (st.pos - start) in
    let text = if negative then "-" ^ text else text in
    if !is_float || String.contains text 'e' then
      match float_of_string_opt text with
      | Some f -> FLOAT f
      | None -> raise (Lex_error ("bad float literal " ^ text, start))
    else
      match Int32.of_string_opt text with
      | Some n -> INT n
      | None ->
        (* Fall back to float for decimal literals too big for int32. *)
        (match float_of_string_opt text with
         | Some f -> FLOAT f
         | None -> raise (Lex_error ("bad literal " ^ text, start)))
  end

let lex_string (st : lexer_state) : token =
  (* Opening quote already consumed by caller. *)
  let buf = Buffer.create 32 in
  let rec go () =
    match peek_char st 0 with
    | None -> raise (Lex_error ("unterminated string", st.pos))
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      (match peek_char st 1 with
       | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 2
       | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 2
       | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 2
       | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 2
       | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 2
       | None -> raise (Lex_error ("unterminated escape", st.pos)));
      go ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let raw_next (st : lexer_state) : token =
  skip_ws st;
  match peek_char st 0 with
  | None -> EOF
  | Some c ->
    let adv n tok = st.pos <- st.pos + n; tok in
    (match c with
     | '0' .. '9' -> lex_number st ~negative:false
     | '"' -> st.pos <- st.pos + 1; lex_string st
     | '(' ->
       if starts_with st "(int)" then adv 5 CAST_INT
       else if starts_with st "(double)" then adv 8 CAST_DOUBLE
       else adv 1 LPAREN
     | ')' -> adv 1 RPAREN
     | '{' -> adv 1 LBRACE
     | '}' -> adv 1 RBRACE
     | '[' -> adv 1 LBRACKET
     | ']' -> adv 1 RBRACKET
     | ';' -> adv 1 SEMI
     | ',' -> adv 1 COMMA
     | '$' -> adv 1 DOLLAR
     | '?' -> adv 1 QUESTION
     | ':' -> adv 1 COLON
     | '+' -> if starts_with st "+." then adv 2 FPLUS else adv 1 PLUS
     | '-' ->
       if starts_with st "-." then adv 2 FMINUS
       else begin
         let numeric_follows =
           match peek_char st 1 with
           | Some d when is_digit d -> true
           | Some ('i' | 'n') ->
             st.pos <- st.pos + 1;
             let here = st.pos in
             let r = starts_with st "infinity" || starts_with st "nan" in
             st.pos <- here - 1;
             r
           | Some _ | None -> false
         in
         if numeric_follows && not (ends_operand st.last) then begin
           st.pos <- st.pos + 1;
           lex_number st ~negative:true
         end
         else adv 1 MINUS
       end
     | '*' -> if starts_with st "*." then adv 2 FSTAR else adv 1 STAR
     | '/' -> if starts_with st "/." then adv 2 FSLASH else adv 1 SLASH
     | '%' -> adv 1 PERCENT
     | '&' -> if starts_with st "&&" then adv 2 ANDAND else adv 1 AMP
     | '|' -> if starts_with st "||" then adv 2 BARBAR else adv 1 BAR
     | '^' -> adv 1 CARET
     | '!' ->
       if starts_with st "!=." then adv 3 FNE
       else if starts_with st "!=" then adv 2 NE
       else adv 1 BANG
     | '=' ->
       if starts_with st "==." then adv 3 FEQ
       else if starts_with st "==" then adv 2 EQ
       else adv 1 ASSIGN
     | '<' ->
       if starts_with st "<=." then adv 3 FLE
       else if starts_with st "<=" then adv 2 LE
       else if starts_with st "<<" then adv 2 SHL
       else if starts_with st "<." then adv 2 FLT
       else adv 1 LT
     | '>' ->
       if starts_with st ">=." then adv 3 FGE
       else if starts_with st ">=" then adv 2 GE
       else if starts_with st ">>" then adv 2 SHR
       else if starts_with st ">." then adv 2 FGT
       else adv 1 GT
     | c when is_ident_start c ->
       let start = st.pos in
       let rec advance () =
         match peek_char st 0 with
         | Some c when is_ident_char c -> st.pos <- st.pos + 1; advance ()
         | Some _ | None -> ()
       in
       advance ();
       let text = String.sub st.src start (st.pos - start) in
       (match List.assoc_opt text keyword_table with
        | Some tok -> tok
        | None ->
          if String.equal text "nan" then FLOAT Float.nan
          else if String.equal text "infinity" then FLOAT Float.infinity
          else IDENT text)
     | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, st.pos)))

let next (st : lexer_state) : token =
  let tok = raw_next st in
  st.last <- tok;
  tok

(* Tokenize a whole source string. *)
let tokenize (src : string) : token list =
  let st = make src in
  let rec go acc =
    match next st with
    | EOF -> List.rev (EOF :: acc)
    | tok -> go (tok :: acc)
  in
  go []

let token_to_string (tok : token) : string =
  match tok with
  | INT n -> Printf.sprintf "INT(%ld)" n
  | FLOAT f -> Printf.sprintf "FLOAT(%h)" f
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | KW_global -> "global" | KW_array -> "array" | KW_volatile -> "volatile"
  | KW_in -> "in" | KW_out -> "out" | KW_int -> "int"
  | KW_double -> "double" | KW_bool -> "bool" | KW_void -> "void"
  | KW_var -> "var" | KW_if -> "if" | KW_else -> "else"
  | KW_while -> "while" | KW_for -> "for" | KW_return -> "return"
  | KW_skip -> "skip" | KW_true -> "true" | KW_false -> "false"
  | KW_fabs -> "fabs" | KW_annotation -> "__builtin_annotation"
  | KW_main -> "main"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | DOLLAR -> "$" | QUESTION -> "?" | COLON -> ":" | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | FPLUS -> "+." | FMINUS -> "-." | FSTAR -> "*." | FSLASH -> "/."
  | AMP -> "&" | BAR -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | FEQ -> "==." | FNE -> "!=." | FLT -> "<." | FLE -> "<=." | FGT -> ">."
  | FGE -> ">=." | ANDAND -> "&&" | BARBAR -> "||" | BANG -> "!"
  | CAST_INT -> "(int)" | CAST_DOUBLE -> "(double)" | EOF -> "<eof>"
