(* Reference interpreter for mini-C with observable traces.

   The observable behaviour of a program is the sequence of its
   annotation events (pro-forma effects, paper section 3.4), its volatile
   reads and writes (signal acquisitions and actuator commands), the
   returned value and the final global store. Semantic preservation of a
   compiler means: for every input world, the machine code produces the
   same observable behaviour as this interpreter. The validation library
   checks exactly that against the target simulator. *)

type event =
  | Ev_annot of string * Value.t list
  | Ev_vol_read of Ast.ident * Value.t
  | Ev_vol_write of Ast.ident * Value.t

let event_equal (a : event) (b : event) : bool =
  match a, b with
  | Ev_annot (s1, vs1), Ev_annot (s2, vs2) ->
    String.equal s1 s2
    && List.length vs1 = List.length vs2
    && List.for_all2 Value.equal vs1 vs2
  | Ev_vol_read (x1, v1), Ev_vol_read (x2, v2)
  | Ev_vol_write (x1, v1), Ev_vol_write (x2, v2) ->
    String.equal x1 x2 && Value.equal v1 v2
  | (Ev_annot _ | Ev_vol_read _ | Ev_vol_write _), _ -> false

let pp_event ppf (e : event) : unit =
  match e with
  | Ev_annot (s, vs) ->
    Format.fprintf ppf "annot %S [%a]" s
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Value.pp)
      vs
  | Ev_vol_read (x, v) -> Format.fprintf ppf "vol_read %s = %a" x Value.pp v
  | Ev_vol_write (x, v) -> Format.fprintf ppf "vol_write %s = %a" x Value.pp v

(* The input world: [world_input x k] is the value returned by the [k]-th
   read (0-based) of volatile input [x] during the run. Both interpreter
   and target simulator consume the same world, which makes differential
   testing deterministic. *)
type world = { world_input : Ast.ident -> int -> Value.t }

let constant_world (v : float) : world =
  { world_input = (fun _ _ -> Value.Vfloat v) }

(* A pseudo-random but reproducible world: value depends on the volatile
   name, the read index and the seed only. *)
let seeded_world ?(seed = 0) () : world =
  let hash (x : string) (k : int) : int =
    let h = Hashtbl.hash (seed, x, k) in
    h land 0xFFFFFF
  in
  { world_input =
      (fun x k ->
         (* Produce a small float in [-64, 64) with a fractional part, a
            plausible sensor reading. *)
         let h = hash x k in
         Value.Vfloat (float_of_int (h - 0x800000) /. 131072.0)) }

(* Same world but returning integers; used when the volatile is Tint. *)
let world_value (w : world) (t : Ast.typ) (x : Ast.ident) (k : int) : Value.t =
  let raw = w.world_input x k in
  match t, raw with
  | Ast.Tfloat, Value.Vfloat _ -> raw
  | Ast.Tfloat, Value.Vint n -> Value.Vfloat (Int32.to_float n)
  | Ast.Tfloat, Value.Vbool b -> Value.Vfloat (if b then 1.0 else 0.0)
  | Ast.Tint, Value.Vfloat f -> Value.Vint (Value.int32_of_float_trunc f)
  | Ast.Tint, Value.Vint _ -> raw
  | Ast.Tint, Value.Vbool b -> Value.Vint (if b then 1l else 0l)
  | Ast.Tbool, Value.Vbool _ -> raw
  | Ast.Tbool, Value.Vfloat f -> Value.Vbool (f > 0.0)
  | Ast.Tbool, Value.Vint n -> Value.Vbool (Int32.compare n 0l > 0)

exception Out_of_fuel
exception Runtime_error of string

type state = {
  st_prog : Ast.program;
  st_world : world;
  st_globals : (Ast.ident, Value.t) Hashtbl.t;
  st_arrays : (Ast.ident, Value.t array) Hashtbl.t;
  st_vol_counts : (Ast.ident, int) Hashtbl.t;
  mutable st_events_rev : event list;
  mutable st_fuel : int;
}

let initial_state (p : Ast.program) (w : world) ~(fuel : int) : state =
  let st_globals = Hashtbl.create 61 in
  List.iter
    (fun (x, t) -> Hashtbl.replace st_globals x (Value.zero_of_typ t))
    p.Ast.prog_globals;
  let st_arrays = Hashtbl.create 17 in
  List.iter
    (fun a ->
       let conv f =
         match a.Ast.arr_elt with
         | Ast.Tfloat -> Value.Vfloat f
         | Ast.Tint -> Value.Vint (Value.int32_of_float_trunc f)
         | Ast.Tbool -> Value.Vbool (f > 0.0)
       in
       Hashtbl.replace st_arrays a.Ast.arr_name
         (Array.of_list (List.map conv a.Ast.arr_init)))
    p.Ast.prog_arrays;
  { st_prog = p;
    st_world = w;
    st_globals;
    st_arrays;
    st_vol_counts = Hashtbl.create 17;
    st_events_rev = [];
    st_fuel = fuel }

let emit (st : state) (e : event) : unit =
  st.st_events_rev <- e :: st.st_events_rev

let burn (st : state) : unit =
  st.st_fuel <- st.st_fuel - 1;
  if st.st_fuel <= 0 then raise Out_of_fuel

let read_global (st : state) (x : Ast.ident) : Value.t =
  match Hashtbl.find_opt st.st_globals x with
  | Some v -> v
  | None -> raise (Runtime_error ("unbound global " ^ x))

let read_array (st : state) (x : Ast.ident) (i : int32) : Value.t =
  match Hashtbl.find_opt st.st_arrays x with
  | None -> raise (Runtime_error ("unbound array " ^ x))
  | Some arr ->
    let i = Int32.to_int i in
    if i < 0 || i >= Array.length arr then
      raise (Runtime_error (Printf.sprintf "array %s index %d out of bounds" x i))
    else arr.(i)

let write_array (st : state) (x : Ast.ident) (i : int32) (v : Value.t) : unit =
  match Hashtbl.find_opt st.st_arrays x with
  | None -> raise (Runtime_error ("unbound array " ^ x))
  | Some arr ->
    let i = Int32.to_int i in
    if i < 0 || i >= Array.length arr then
      raise (Runtime_error (Printf.sprintf "array %s index %d out of bounds" x i))
    else arr.(i) <- v

let read_volatile (st : state) (x : Ast.ident) : Value.t =
  match Ast.find_volatile st.st_prog x with
  | None -> raise (Runtime_error ("unbound volatile " ^ x))
  | Some (t, _) ->
    let k = Option.value ~default:0 (Hashtbl.find_opt st.st_vol_counts x) in
    Hashtbl.replace st.st_vol_counts x (k + 1);
    let v = world_value st.st_world t x k in
    emit st (Ev_vol_read (x, v));
    v

type env = (Ast.ident, Value.t) Hashtbl.t

let read_local (env : env) (x : Ast.ident) : Value.t =
  match Hashtbl.find_opt env x with
  | Some v -> v
  | None -> raise (Runtime_error ("uninitialized local " ^ x))

let rec eval_expr (st : state) (env : env) (e : Ast.expr) : Value.t =
  burn st;
  match e with
  | Ast.Econst_int n -> Value.Vint n
  | Ast.Econst_float f -> Value.Vfloat f
  | Ast.Econst_bool b -> Value.Vbool b
  | Ast.Evar x -> read_local env x
  | Ast.Eglobal x -> read_global st x
  | Ast.Eindex (a, idx) ->
    let i = Value.as_int (eval_expr st env idx) in
    read_array st a i
  | Ast.Eunop (op, e1) -> Value.eval_unop op (eval_expr st env e1)
  | Ast.Ebinop (op, e1, e2) ->
    let v1 = eval_expr st env e1 in
    let v2 = eval_expr st env e2 in
    Value.eval_binop op v1 v2
  | Ast.Econd (c, e1, e2) ->
    (* Both compilers may evaluate conditional expressions lazily or
       strictly: mini-C expressions are pure, so the choice is not
       observable. The interpreter is lazy. *)
    if Value.as_bool (eval_expr st env c) then eval_expr st env e1
    else eval_expr st env e2
  | Ast.Evolatile x -> read_volatile st x

type outcome =
  | Normal
  | Returned of Value.t option

let rec exec_stmt (st : state) (env : env) (s : Ast.stmt) : outcome =
  burn st;
  match s with
  | Ast.Sskip -> Normal
  | Ast.Sassign (x, e) ->
    Hashtbl.replace env x (eval_expr st env e);
    Normal
  | Ast.Sglobassign (x, e) ->
    Hashtbl.replace st.st_globals x (eval_expr st env e);
    Normal
  | Ast.Sstore (a, idx, e) ->
    let i = Value.as_int (eval_expr st env idx) in
    let v = eval_expr st env e in
    write_array st a i v;
    Normal
  | Ast.Svolstore (x, e) ->
    let v = eval_expr st env e in
    emit st (Ev_vol_write (x, v));
    Normal
  | Ast.Sseq (a, b) ->
    (match exec_stmt st env a with
     | Normal -> exec_stmt st env b
     | Returned _ as r -> r)
  | Ast.Sif (c, a, b) ->
    if Value.as_bool (eval_expr st env c) then exec_stmt st env a
    else exec_stmt st env b
  | Ast.Swhile (c, body) ->
    if Value.as_bool (eval_expr st env c) then
      (match exec_stmt st env body with
       | Normal -> exec_stmt st env s
       | Returned _ as r -> r)
    else Normal
  | Ast.Sfor (i, lo, hi, body) ->
    let vlo = Value.as_int (eval_expr st env lo) in
    let vhi = Value.as_int (eval_expr st env hi) in
    let rec loop (k : int32) : outcome =
      burn st;
      if Int32.compare k vhi < 0 then begin
        Hashtbl.replace env i (Value.Vint k);
        match exec_stmt st env body with
        | Normal -> loop (Int32.add k 1l)
        | Returned _ as r -> r
      end
      else begin
        Hashtbl.replace env i (Value.Vint k);
        Normal
      end
    in
    loop vlo
  | Ast.Sreturn None -> Returned None
  | Ast.Sreturn (Some e) -> Returned (Some (eval_expr st env e))
  | Ast.Sannot (text, args) ->
    let vs = List.map (eval_expr st env) args in
    emit st (Ev_annot (text, vs));
    Normal

type result = {
  res_return : Value.t option;
  res_events : event list;
  res_globals : (Ast.ident * Value.t) list; (* sorted by name *)
}

let result_equal (a : result) (b : result) : bool =
  let opt_equal x y =
    match x, y with
    | None, None -> true
    | Some v, Some w -> Value.equal v w
    | (None | Some _), _ -> false
  in
  opt_equal a.res_return b.res_return
  && List.length a.res_events = List.length b.res_events
  && List.for_all2 event_equal a.res_events b.res_events
  && List.length a.res_globals = List.length b.res_globals
  && List.for_all2
       (fun (x1, v1) (x2, v2) -> String.equal x1 x2 && Value.equal v1 v2)
       a.res_globals b.res_globals

let pp_result ppf (r : result) : unit =
  Format.fprintf ppf "@[<v>return: %s@,events:@,"
    (match r.res_return with
     | None -> "(void)"
     | Some v -> Value.to_string v);
  List.iter (fun e -> Format.fprintf ppf "  %a@," pp_event e) r.res_events;
  Format.fprintf ppf "globals:@,";
  List.iter
    (fun (x, v) -> Format.fprintf ppf "  %s = %a@," x Value.pp v)
    r.res_globals;
  Format.fprintf ppf "@]"

(* Run function [fname] of [p] with arguments [args] in world [w].
   Raises [Out_of_fuel], [Runtime_error] or [Value.Type_error] on bad
   programs; type-checked, generator-produced programs never do. *)
let run ?(fuel = 2_000_000) (p : Ast.program) ?fname (w : world)
    (args : Value.t list) : result =
  let fname = Option.value ~default:p.Ast.prog_main fname in
  let f =
    match Ast.find_func p fname with
    | Some f -> f
    | None -> raise (Runtime_error ("no function " ^ fname))
  in
  if List.length args <> List.length f.Ast.fn_params then
    raise (Runtime_error ("bad arity for " ^ fname));
  let st = initial_state p w ~fuel in
  let env : env = Hashtbl.create 61 in
  List.iter2
    (fun (x, _) v -> Hashtbl.replace env x v)
    f.Ast.fn_params args;
  let outcome = exec_stmt st env f.Ast.fn_body in
  (* Control falling off the end of a non-void function returns the zero
     value of the return type (mini-C defines this; compilers implement
     it in the implicit-return path). *)
  let ret =
    match outcome with
    | Normal -> Option.map Value.zero_of_typ f.Ast.fn_ret
    | Returned r -> r
  in
  let globals =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun x v acc -> (x, v) :: acc) st.st_globals [])
  in
  { res_return = ret;
    res_events = List.rev st.st_events_rev;
    res_globals = globals }

(* Convenience: run a step cycle of the control program (call main with no
   arguments). ACG-generated entry points take no parameters: inputs come
   from volatiles and state lives in globals, exactly like the paper's
   flight control nodes. *)
let run_cycle ?fuel (p : Ast.program) (w : world) : result =
  run ?fuel p w []

(* Run [cycles] consecutive control cycles of the nullary entry point,
   with globals, arrays and volatile read counters persisting across
   cycles — the periodic execution of a flight control node. *)
let run_cycles ?(fuel = 10_000_000) (p : Ast.program) (w : world)
    ~(cycles : int) : result =
  let fname = p.Ast.prog_main in
  let f =
    match Ast.find_func p fname with
    | Some f -> f
    | None -> raise (Runtime_error ("no function " ^ fname))
  in
  if f.Ast.fn_params <> [] then
    raise (Runtime_error "run_cycles: entry point must be nullary");
  let st = initial_state p w ~fuel in
  let last_ret = ref None in
  for _ = 1 to cycles do
    let env : env = Hashtbl.create 61 in
    let outcome = exec_stmt st env f.Ast.fn_body in
    last_ret :=
      (match outcome with
       | Normal -> Option.map Value.zero_of_typ f.Ast.fn_ret
       | Returned r -> r)
  done;
  let globals =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun x v acc -> (x, v) :: acc) st.st_globals [])
  in
  { res_return = !last_ret;
    res_events = List.rev st.st_events_rev;
    res_globals = globals }
