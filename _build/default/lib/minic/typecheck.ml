(* Type checker for mini-C programs.

   Checking is performed on every program before compilation: both the
   verified-style compiler and the COTS baseline reject ill-typed inputs,
   mirroring the front-end checks of CompCert's Clight. The checker also
   enforces the flight-control coding restrictions the paper relies on
   (DO-178B-style): no recursion, every called function defined, arrays
   only indexed by integer expressions, volatile directions respected. *)

type error = {
  err_func : string;       (* enclosing function, "" for program level *)
  err_msg : string;
}

exception Error of error

let fail func fmt =
  Format.kasprintf (fun msg -> raise (Error { err_func = func; err_msg = msg })) fmt

let error_to_string (e : error) : string =
  if String.equal e.err_func "" then e.err_msg
  else Printf.sprintf "in function %s: %s" e.err_func e.err_msg

type env = {
  env_prog : Ast.program;
  env_fname : string;
  env_vars : (Ast.ident * Ast.typ) list; (* params @ locals *)
}

let lookup_var (env : env) (x : Ast.ident) : Ast.typ =
  match List.assoc_opt x env.env_vars with
  | Some t -> t
  | None -> fail env.env_fname "unbound local variable %s" x

let lookup_global (env : env) (x : Ast.ident) : Ast.typ =
  match List.assoc_opt x env.env_prog.Ast.prog_globals with
  | Some t -> t
  | None -> fail env.env_fname "unbound global variable %s" x

let lookup_array (env : env) (x : Ast.ident) : Ast.array_def =
  match
    List.find_opt
      (fun a -> String.equal a.Ast.arr_name x)
      env.env_prog.Ast.prog_arrays
  with
  | Some a -> a
  | None -> fail env.env_fname "unbound global array %s" x

let lookup_volatile (env : env) (x : Ast.ident) : Ast.typ * Ast.vol_dir =
  match Ast.find_volatile env.env_prog x with
  | Some td -> td
  | None -> fail env.env_fname "unbound volatile %s" x

let type_unop (env : env) (op : Ast.unop) (t : Ast.typ) : Ast.typ =
  match op, t with
  | Ast.Oneg, Ast.Tint -> Ast.Tint
  | Ast.Onot, Ast.Tbool -> Ast.Tbool
  | Ast.Ofneg, Ast.Tfloat | Ast.Ofabs, Ast.Tfloat -> Ast.Tfloat
  | Ast.Ofloat_of_int, Ast.Tint -> Ast.Tfloat
  | Ast.Oint_of_float, Ast.Tfloat -> Ast.Tint
  | (Ast.Oneg | Ast.Onot | Ast.Ofneg | Ast.Ofabs | Ast.Ofloat_of_int
    | Ast.Oint_of_float), _ ->
    fail env.env_fname "unary operator applied to operand of type %s"
      (Ast.string_of_typ t)

let type_binop (env : env) (op : Ast.binop) (ta : Ast.typ) (tb : Ast.typ) :
  Ast.typ =
  let ii_i = (Ast.Tint, Ast.Tint, Ast.Tint) in
  let ff_f = (Ast.Tfloat, Ast.Tfloat, Ast.Tfloat) in
  let ii_b = (Ast.Tint, Ast.Tint, Ast.Tbool) in
  let ff_b = (Ast.Tfloat, Ast.Tfloat, Ast.Tbool) in
  let bb_b = (Ast.Tbool, Ast.Tbool, Ast.Tbool) in
  let expect_a, expect_b, result =
    match op with
    | Ast.Oadd | Ast.Osub | Ast.Omul | Ast.Odiv | Ast.Omod
    | Ast.Oand | Ast.Oor | Ast.Oxor | Ast.Oshl | Ast.Oshr -> ii_i
    | Ast.Ofadd | Ast.Ofsub | Ast.Ofmul | Ast.Ofdiv -> ff_f
    | Ast.Ocmp _ -> ii_b
    | Ast.Ofcmp _ -> ff_b
    | Ast.Oband | Ast.Obor -> bb_b
  in
  if Ast.typ_equal ta expect_a && Ast.typ_equal tb expect_b then result
  else
    fail env.env_fname
      "binary operator expects (%s, %s) but got (%s, %s)"
      (Ast.string_of_typ expect_a) (Ast.string_of_typ expect_b)
      (Ast.string_of_typ ta) (Ast.string_of_typ tb)

let rec type_expr (env : env) (e : Ast.expr) : Ast.typ =
  match e with
  | Ast.Econst_int _ -> Ast.Tint
  | Ast.Econst_float _ -> Ast.Tfloat
  | Ast.Econst_bool _ -> Ast.Tbool
  | Ast.Evar x -> lookup_var env x
  | Ast.Eglobal x -> lookup_global env x
  | Ast.Eindex (a, idx) ->
    let arr = lookup_array env a in
    let ti = type_expr env idx in
    if not (Ast.typ_equal ti Ast.Tint) then
      fail env.env_fname "array %s indexed with non-integer expression" a;
    arr.Ast.arr_elt
  | Ast.Eunop (op, e1) -> type_unop env op (type_expr env e1)
  | Ast.Ebinop (op, e1, e2) ->
    type_binop env op (type_expr env e1) (type_expr env e2)
  | Ast.Econd (c, e1, e2) ->
    let tc = type_expr env c in
    if not (Ast.typ_equal tc Ast.Tbool) then
      fail env.env_fname "conditional guard is not boolean";
    let t1 = type_expr env e1 and t2 = type_expr env e2 in
    if Ast.typ_equal t1 t2 then t1
    else
      fail env.env_fname "conditional branches have types %s and %s"
        (Ast.string_of_typ t1) (Ast.string_of_typ t2)
  | Ast.Evolatile x ->
    let t, dir = lookup_volatile env x in
    (match dir with
     | Ast.Vol_in -> t
     | Ast.Vol_out -> fail env.env_fname "volatile output %s read" x)

let check_assignable (env : env) (what : string) (expected : Ast.typ)
    (got : Ast.typ) : unit =
  if not (Ast.typ_equal expected got) then
    fail env.env_fname "%s expects %s but right-hand side has type %s" what
      (Ast.string_of_typ expected) (Ast.string_of_typ got)

let rec type_stmt (env : env) (ret : Ast.typ option) (s : Ast.stmt) : unit =
  match s with
  | Ast.Sskip -> ()
  | Ast.Sassign (x, e) ->
    check_assignable env ("assignment to " ^ x) (lookup_var env x)
      (type_expr env e)
  | Ast.Sglobassign (x, e) ->
    check_assignable env ("assignment to global " ^ x) (lookup_global env x)
      (type_expr env e)
  | Ast.Sstore (a, idx, e) ->
    let arr = lookup_array env a in
    if not (Ast.typ_equal (type_expr env idx) Ast.Tint) then
      fail env.env_fname "array %s indexed with non-integer expression" a;
    check_assignable env ("store to array " ^ a) arr.Ast.arr_elt
      (type_expr env e)
  | Ast.Svolstore (x, e) ->
    let t, dir = lookup_volatile env x in
    (match dir with
     | Ast.Vol_out -> check_assignable env ("volatile store " ^ x) t (type_expr env e)
     | Ast.Vol_in -> fail env.env_fname "volatile input %s written" x)
  | Ast.Sseq (a, b) -> type_stmt env ret a; type_stmt env ret b
  | Ast.Sif (c, a, b) ->
    if not (Ast.typ_equal (type_expr env c) Ast.Tbool) then
      fail env.env_fname "if guard is not boolean";
    type_stmt env ret a;
    type_stmt env ret b
  | Ast.Swhile (c, body) ->
    if not (Ast.typ_equal (type_expr env c) Ast.Tbool) then
      fail env.env_fname "while guard is not boolean";
    type_stmt env ret body
  | Ast.Sfor (i, lo, hi, body) ->
    if not (Ast.typ_equal (lookup_var env i) Ast.Tint) then
      fail env.env_fname "for counter %s is not an integer" i;
    if not (Ast.typ_equal (type_expr env lo) Ast.Tint)
    || not (Ast.typ_equal (type_expr env hi) Ast.Tint) then
      fail env.env_fname "for bounds are not integers";
    (* MISRA-C rule 13.6: the loop counter shall not be modified in the
       body (compilers rely on it being the unique induction variable) *)
    Ast.iter_stmt
      (fun s ->
         match s with
         | Ast.Sassign (x, _) when String.equal x i ->
           fail env.env_fname "for counter %s modified in the loop body" i
         | Ast.Sfor (x, _, _, _) when String.equal x i ->
           fail env.env_fname "for counter %s reused by a nested loop" i
         | _ -> ())
      body;
    type_stmt env ret body
  | Ast.Sreturn None ->
    (match ret with
     | None -> ()
     | Some t ->
       fail env.env_fname "return without value in function returning %s"
         (Ast.string_of_typ t))
  | Ast.Sreturn (Some e) ->
    (match ret with
     | None -> fail env.env_fname "return with value in void function"
     | Some t -> check_assignable env "return" t (type_expr env e))
  | Ast.Sannot (_, args) ->
    (* Annotation arguments must be int or float: they denote loop bounds
       or value ranges transmitted to the WCET analyzer. *)
    List.iter
      (fun e ->
         match type_expr env e with
         | Ast.Tint | Ast.Tfloat -> ()
         | Ast.Tbool ->
           fail env.env_fname "annotation arguments must be int or float")
      args

let check_no_duplicates (what : string) (names : string list) : unit =
  let sorted = List.sort String.compare names in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then fail "" "duplicate %s %s" what a else check rest
    | [ _ ] | [] -> ()
  in
  check sorted

let check_func (p : Ast.program) (f : Ast.func) : unit =
  check_no_duplicates
    ("variable in " ^ f.Ast.fn_name)
    (List.map fst (f.Ast.fn_params @ f.Ast.fn_locals));
  let env =
    { env_prog = p;
      env_fname = f.Ast.fn_name;
      env_vars = f.Ast.fn_params @ f.Ast.fn_locals }
  in
  type_stmt env f.Ast.fn_ret f.Ast.fn_body

let check_program (p : Ast.program) : (unit, error) result =
  try
    check_no_duplicates "global" (List.map fst p.Ast.prog_globals);
    check_no_duplicates "array" (List.map (fun a -> a.Ast.arr_name) p.Ast.prog_arrays);
    check_no_duplicates "volatile" (List.map (fun (n, _, _) -> n) p.Ast.prog_volatiles);
    check_no_duplicates "function" (List.map (fun f -> f.Ast.fn_name) p.Ast.prog_funcs);
    List.iter
      (fun a ->
         if List.length a.Ast.arr_init = 0 then
           fail "" "array %s has no elements" a.Ast.arr_name)
      p.Ast.prog_arrays;
    (match Ast.find_func p p.Ast.prog_main with
     | Some _ -> ()
     | None -> fail "" "entry point %s is not defined" p.Ast.prog_main);
    List.iter (check_func p) p.Ast.prog_funcs;
    Ok ()
  with Error e -> Result.Error e

let check_program_exn (p : Ast.program) : unit =
  match check_program p with
  | Ok () -> ()
  | Result.Error e -> invalid_arg (error_to_string e)
