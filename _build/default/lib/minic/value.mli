(** Runtime values and the arithmetic shared by the reference
    interpreter, the constant folders of both compilers, and the
    simulator. Integer arithmetic is 32-bit two's complement; float
    arithmetic is IEEE-754 double. *)

type t =
  | Vint of int32
  | Vfloat of float
  | Vbool of bool

exception Type_error of string

val as_int : t -> int32
(** @raise Type_error when the value is not an integer. *)

val as_float : t -> float
val as_bool : t -> bool

val typ_of : t -> Ast.typ
val zero_of_typ : Ast.typ -> t

val equal : t -> t -> bool
(** Bit equality on floats: NaN = NaN, [-0.0 <> 0.0]. Trace comparison
    must be exact, not numerical. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int32_of_float_trunc : float -> int32
(** Truncation toward zero, saturating, NaN to 0 — PowerPC fctiwz. *)

val eval_comparison : Ast.comparison -> int -> bool
(** Interpret a comparison over the result of [compare]. *)

val eval_fcomparison : Ast.comparison -> float -> float -> bool
(** IEEE semantics: ordered comparisons are false on NaN, [Cne] true. *)

val div32 : int32 -> int32 -> int32
(** Total signed division, rounding toward zero; [x/0 = 0] and
    [INT_MIN / -1 = 0], matching the target's divw as defined by the
    simulator. *)

val rem32 : int32 -> int32 -> int32
(** [x - (div32 x y) * y]: exactly what the compiled divw/mullw/subf
    expansion computes ([x rem 0 = x], [INT_MIN rem -1 = INT_MIN]). *)

val shift_amount : int32 -> int
(** Shift amounts are masked to 5 bits, like the target's slw/sraw. *)

val eval_unop : Ast.unop -> t -> t
val eval_binop : Ast.binop -> t -> t -> t
