(** Reference interpreter for mini-C with observable traces.

    The observable behaviour of a program is the sequence of its
    annotation events, volatile reads and writes, its return value and
    final global store. Semantic preservation of a compiler means
    producing the same observable behaviour on the machine simulator
    for every input world. *)

type event =
  | Ev_annot of string * Value.t list
      (** pro-forma annotation effect: raw text + argument values *)
  | Ev_vol_read of Ast.ident * Value.t  (** signal acquisition *)
  | Ev_vol_write of Ast.ident * Value.t (** actuator command *)

val event_equal : event -> event -> bool
val pp_event : Format.formatter -> event -> unit

(** The input world: [world_input x k] is the value of the [k]-th read
    (0-based) of volatile input [x]. Interpreter and simulator consume
    the same world, making differential testing deterministic. *)
type world = { world_input : Ast.ident -> int -> Value.t }

val constant_world : float -> world
val seeded_world : ?seed:int -> unit -> world

val world_value : world -> Ast.typ -> Ast.ident -> int -> Value.t
(** Value of a volatile read coerced to the volatile's declared type. *)

exception Out_of_fuel
exception Runtime_error of string

type result = {
  res_return : Value.t option;
  res_events : event list;
  res_globals : (Ast.ident * Value.t) list; (** sorted by name *)
}

val result_equal : result -> result -> bool
val pp_result : Format.formatter -> result -> unit

val run :
  ?fuel:int -> Ast.program -> ?fname:Ast.ident -> world -> Value.t list ->
  result
(** Run one function with the given arguments.
    @raise Runtime_error on unbound names, uninitialized local reads or
    out-of-bounds array accesses;
    @raise Out_of_fuel when the step budget is exhausted. *)

val run_cycle : ?fuel:int -> Ast.program -> world -> result
(** One control cycle of the nullary entry point. *)

val run_cycles : ?fuel:int -> Ast.program -> world -> cycles:int -> result
(** [cycles] consecutive control cycles with globals, arrays and
    volatile read counters persisting — periodic node execution. *)
