(** Recursive-descent parser for mini-C concrete syntax, the inverse of
    {!Pp}. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** @raise Parse_error and {!Lexer.Lex_error} on malformed input. *)
