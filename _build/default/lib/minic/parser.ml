(* Recursive-descent parser for mini-C concrete syntax, the inverse of
   [Pp]. Precedence climbing follows the table in [Pp.binop_prec]. *)

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type parser_state = {
  lexer : Lexer.lexer_state;
  mutable tok : Lexer.token;
}

let make (src : string) : parser_state =
  let lexer = Lexer.make src in
  let tok = Lexer.next lexer in
  { lexer; tok }

let advance (ps : parser_state) : unit = ps.tok <- Lexer.next ps.lexer

let expect (ps : parser_state) (tok : Lexer.token) : unit =
  if ps.tok = tok then advance ps
  else
    fail "expected %s but found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string ps.tok)

let expect_ident (ps : parser_state) : string =
  match ps.tok with
  | Lexer.IDENT x -> advance ps; x
  | t -> fail "expected identifier but found %s" (Lexer.token_to_string t)

let parse_typ (ps : parser_state) : Ast.typ =
  match ps.tok with
  | Lexer.KW_int -> advance ps; Ast.Tint
  | Lexer.KW_double -> advance ps; Ast.Tfloat
  | Lexer.KW_bool -> advance ps; Ast.Tbool
  | t -> fail "expected a type but found %s" (Lexer.token_to_string t)

(* Binary operator for the current token together with its precedence,
   if the token is a binary operator. *)
let binop_of_token (tok : Lexer.token) : (Ast.binop * int) option =
  let p op = Some (op, Pp.binop_prec op) in
  match tok with
  | Lexer.PLUS -> p Ast.Oadd
  | Lexer.MINUS -> p Ast.Osub
  | Lexer.STAR -> p Ast.Omul
  | Lexer.SLASH -> p Ast.Odiv
  | Lexer.PERCENT -> p Ast.Omod
  | Lexer.FPLUS -> p Ast.Ofadd
  | Lexer.FMINUS -> p Ast.Ofsub
  | Lexer.FSTAR -> p Ast.Ofmul
  | Lexer.FSLASH -> p Ast.Ofdiv
  | Lexer.AMP -> p Ast.Oand
  | Lexer.BAR -> p Ast.Oor
  | Lexer.CARET -> p Ast.Oxor
  | Lexer.SHL -> p Ast.Oshl
  | Lexer.SHR -> p Ast.Oshr
  | Lexer.EQ -> p (Ast.Ocmp Ast.Ceq)
  | Lexer.NE -> p (Ast.Ocmp Ast.Cne)
  | Lexer.LT -> p (Ast.Ocmp Ast.Clt)
  | Lexer.LE -> p (Ast.Ocmp Ast.Cle)
  | Lexer.GT -> p (Ast.Ocmp Ast.Cgt)
  | Lexer.GE -> p (Ast.Ocmp Ast.Cge)
  | Lexer.FEQ -> p (Ast.Ofcmp Ast.Ceq)
  | Lexer.FNE -> p (Ast.Ofcmp Ast.Cne)
  | Lexer.FLT -> p (Ast.Ofcmp Ast.Clt)
  | Lexer.FLE -> p (Ast.Ofcmp Ast.Cle)
  | Lexer.FGT -> p (Ast.Ofcmp Ast.Cgt)
  | Lexer.FGE -> p (Ast.Ofcmp Ast.Cge)
  | Lexer.ANDAND -> p Ast.Oband
  | Lexer.BARBAR -> p Ast.Obor
  | _ -> None

let rec parse_expr (ps : parser_state) : Ast.expr = parse_cond ps

(* cond := binary [ '?' cond ':' cond ] *)
and parse_cond (ps : parser_state) : Ast.expr =
  let e = parse_binary ps 1 in
  match ps.tok with
  | Lexer.QUESTION ->
    advance ps;
    let e1 = parse_cond ps in
    expect ps Lexer.COLON;
    let e2 = parse_cond ps in
    Ast.Econd (e, e1, e2)
  | _ -> e

(* Precedence climbing: parse operators of precedence >= [min_prec],
   left-associative. *)
and parse_binary (ps : parser_state) (min_prec : int) : Ast.expr =
  let lhs = parse_unary ps in
  let rec loop lhs =
    match binop_of_token ps.tok with
    | Some (op, prec) when prec >= min_prec ->
      advance ps;
      let rhs = parse_binary ps (prec + 1) in
      loop (Ast.Ebinop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary (ps : parser_state) : Ast.expr =
  match ps.tok with
  | Lexer.MINUS -> advance ps; Ast.Eunop (Ast.Oneg, parse_unary ps)
  | Lexer.FMINUS -> advance ps; Ast.Eunop (Ast.Ofneg, parse_unary ps)
  | Lexer.BANG -> advance ps; Ast.Eunop (Ast.Onot, parse_unary ps)
  | Lexer.CAST_INT -> advance ps; Ast.Eunop (Ast.Oint_of_float, parse_unary ps)
  | Lexer.CAST_DOUBLE ->
    advance ps;
    Ast.Eunop (Ast.Ofloat_of_int, parse_unary ps)
  | Lexer.KW_fabs ->
    advance ps;
    expect ps Lexer.LPAREN;
    let e = parse_expr ps in
    expect ps Lexer.RPAREN;
    Ast.Eunop (Ast.Ofabs, e)
  | _ -> parse_atom ps

and parse_atom (ps : parser_state) : Ast.expr =
  match ps.tok with
  | Lexer.INT n -> advance ps; Ast.Econst_int n
  | Lexer.FLOAT f -> advance ps; Ast.Econst_float f
  | Lexer.KW_true -> advance ps; Ast.Econst_bool true
  | Lexer.KW_false -> advance ps; Ast.Econst_bool false
  | Lexer.IDENT x -> advance ps; Ast.Evar x
  | Lexer.DOLLAR ->
    advance ps;
    let x = expect_ident ps in
    (match ps.tok with
     | Lexer.LBRACKET ->
       advance ps;
       let idx = parse_expr ps in
       expect ps Lexer.RBRACKET;
       Ast.Eindex (x, idx)
     | _ -> Ast.Eglobal x)
  | Lexer.KW_volatile ->
    advance ps;
    expect ps Lexer.LPAREN;
    let x = expect_ident ps in
    expect ps Lexer.RPAREN;
    Ast.Evolatile x
  | Lexer.LPAREN ->
    advance ps;
    let e = parse_expr ps in
    expect ps Lexer.RPAREN;
    e
  | t -> fail "expected an expression but found %s" (Lexer.token_to_string t)

let rec parse_stmt_seq (ps : parser_state) : Ast.stmt =
  (* Parse statements until '}' or EOF, folding into Sseq. *)
  match ps.tok with
  | Lexer.RBRACE | Lexer.EOF -> Ast.Sskip
  | _ ->
    let s = parse_stmt ps in
    (match ps.tok with
     | Lexer.RBRACE | Lexer.EOF -> s
     | _ -> Ast.Sseq (s, parse_stmt_seq ps))

and parse_block (ps : parser_state) : Ast.stmt =
  expect ps Lexer.LBRACE;
  let s = parse_stmt_seq ps in
  expect ps Lexer.RBRACE;
  s

and parse_stmt (ps : parser_state) : Ast.stmt =
  match ps.tok with
  | Lexer.KW_skip ->
    advance ps;
    expect ps Lexer.SEMI;
    Ast.Sskip
  | Lexer.KW_if ->
    advance ps;
    expect ps Lexer.LPAREN;
    let c = parse_expr ps in
    expect ps Lexer.RPAREN;
    let a = parse_block ps in
    (match ps.tok with
     | Lexer.KW_else ->
       advance ps;
       let b = parse_block ps in
       Ast.Sif (c, a, b)
     | _ -> Ast.Sif (c, a, Ast.Sskip))
  | Lexer.KW_while ->
    advance ps;
    expect ps Lexer.LPAREN;
    let c = parse_expr ps in
    expect ps Lexer.RPAREN;
    let body = parse_block ps in
    Ast.Swhile (c, body)
  | Lexer.KW_for ->
    advance ps;
    expect ps Lexer.LPAREN;
    let i = expect_ident ps in
    expect ps Lexer.ASSIGN;
    let lo = parse_expr ps in
    expect ps Lexer.SEMI;
    let i2 = expect_ident ps in
    if not (String.equal i i2) then
      fail "for loop counter mismatch: %s vs %s" i i2;
    expect ps Lexer.LT;
    let hi = parse_expr ps in
    expect ps Lexer.RPAREN;
    let body = parse_block ps in
    Ast.Sfor (i, lo, hi, body)
  | Lexer.KW_return ->
    advance ps;
    (match ps.tok with
     | Lexer.SEMI -> advance ps; Ast.Sreturn None
     | _ ->
       let e = parse_expr ps in
       expect ps Lexer.SEMI;
       Ast.Sreturn (Some e))
  | Lexer.KW_annotation ->
    advance ps;
    expect ps Lexer.LPAREN;
    let text =
      match ps.tok with
      | Lexer.STRING s -> advance ps; s
      | t -> fail "expected annotation string, found %s" (Lexer.token_to_string t)
    in
    let rec args acc =
      match ps.tok with
      | Lexer.COMMA ->
        advance ps;
        let e = parse_expr ps in
        args (e :: acc)
      | _ -> List.rev acc
    in
    let a = args [] in
    expect ps Lexer.RPAREN;
    expect ps Lexer.SEMI;
    Ast.Sannot (text, a)
  | Lexer.KW_volatile ->
    advance ps;
    expect ps Lexer.LPAREN;
    let x = expect_ident ps in
    expect ps Lexer.RPAREN;
    expect ps Lexer.ASSIGN;
    let e = parse_expr ps in
    expect ps Lexer.SEMI;
    Ast.Svolstore (x, e)
  | Lexer.DOLLAR ->
    advance ps;
    let x = expect_ident ps in
    (match ps.tok with
     | Lexer.LBRACKET ->
       advance ps;
       let idx = parse_expr ps in
       expect ps Lexer.RBRACKET;
       expect ps Lexer.ASSIGN;
       let e = parse_expr ps in
       expect ps Lexer.SEMI;
       Ast.Sstore (x, idx, e)
     | _ ->
       expect ps Lexer.ASSIGN;
       let e = parse_expr ps in
       expect ps Lexer.SEMI;
       Ast.Sglobassign (x, e))
  | Lexer.IDENT x ->
    advance ps;
    expect ps Lexer.ASSIGN;
    let e = parse_expr ps in
    expect ps Lexer.SEMI;
    Ast.Sassign (x, e)
  | t -> fail "expected a statement but found %s" (Lexer.token_to_string t)

let parse_params (ps : parser_state) : (Ast.ident * Ast.typ) list =
  expect ps Lexer.LPAREN;
  match ps.tok with
  | Lexer.RPAREN -> advance ps; []
  | _ ->
    let rec go acc =
      let t = parse_typ ps in
      let x = expect_ident ps in
      match ps.tok with
      | Lexer.COMMA -> advance ps; go ((x, t) :: acc)
      | _ ->
        expect ps Lexer.RPAREN;
        List.rev ((x, t) :: acc)
    in
    go []

let parse_func (ps : parser_state) (ret : Ast.typ option) : Ast.func =
  let name = expect_ident ps in
  let params = parse_params ps in
  expect ps Lexer.LBRACE;
  let rec locals acc =
    match ps.tok with
    | Lexer.KW_var ->
      advance ps;
      let t = parse_typ ps in
      let x = expect_ident ps in
      expect ps Lexer.SEMI;
      locals ((x, t) :: acc)
    | _ -> List.rev acc
  in
  let fn_locals = locals [] in
  let body = parse_stmt_seq ps in
  expect ps Lexer.RBRACE;
  { Ast.fn_name = name;
    fn_params = params;
    fn_locals;
    fn_ret = ret;
    fn_body = body }

let parse_float_list (ps : parser_state) : float list =
  expect ps Lexer.LBRACE;
  let rec go acc =
    let v =
      match ps.tok with
      | Lexer.FLOAT f -> advance ps; f
      | Lexer.INT n -> advance ps; Int32.to_float n
      | t -> fail "expected a number, found %s" (Lexer.token_to_string t)
    in
    match ps.tok with
    | Lexer.COMMA -> advance ps; go (v :: acc)
    | _ ->
      expect ps Lexer.RBRACE;
      List.rev (v :: acc)
  in
  go []

let parse_program (src : string) : Ast.program =
  let ps = make src in
  let globals = ref [] in
  let arrays = ref [] in
  let volatiles = ref [] in
  let funcs = ref [] in
  let main = ref None in
  let rec go () =
    match ps.tok with
    | Lexer.EOF -> ()
    | Lexer.KW_global ->
      advance ps;
      let t = parse_typ ps in
      let x = expect_ident ps in
      expect ps Lexer.SEMI;
      globals := (x, t) :: !globals;
      go ()
    | Lexer.KW_array ->
      advance ps;
      let t = parse_typ ps in
      let x = expect_ident ps in
      expect ps Lexer.ASSIGN;
      let init = parse_float_list ps in
      expect ps Lexer.SEMI;
      arrays := { Ast.arr_name = x; arr_elt = t; arr_init = init } :: !arrays;
      go ()
    | Lexer.KW_volatile ->
      advance ps;
      let dir =
        match ps.tok with
        | Lexer.KW_in -> advance ps; Ast.Vol_in
        | Lexer.KW_out -> advance ps; Ast.Vol_out
        | t -> fail "expected in/out, found %s" (Lexer.token_to_string t)
      in
      let t = parse_typ ps in
      let x = expect_ident ps in
      expect ps Lexer.SEMI;
      volatiles := (x, t, dir) :: !volatiles;
      go ()
    | Lexer.KW_main ->
      advance ps;
      let x = expect_ident ps in
      expect ps Lexer.SEMI;
      main := Some x;
      go ()
    | Lexer.KW_void ->
      advance ps;
      funcs := parse_func ps None :: !funcs;
      go ()
    | Lexer.KW_int ->
      advance ps;
      funcs := parse_func ps (Some Ast.Tint) :: !funcs;
      go ()
    | Lexer.KW_double ->
      advance ps;
      funcs := parse_func ps (Some Ast.Tfloat) :: !funcs;
      go ()
    | Lexer.KW_bool ->
      advance ps;
      funcs := parse_func ps (Some Ast.Tbool) :: !funcs;
      go ()
    | t -> fail "expected a declaration, found %s" (Lexer.token_to_string t)
  in
  go ();
  let funcs = List.rev !funcs in
  let main =
    match !main with
    | Some m -> m
    | None ->
      (match funcs with
       | f :: _ -> f.Ast.fn_name
       | [] -> fail "empty program")
  in
  { Ast.prog_globals = List.rev !globals;
    prog_arrays = List.rev !arrays;
    prog_volatiles = List.rev !volatiles;
    prog_funcs = funcs;
    prog_main = main }
