(* Analyzer driver: the full aiT-like phase sequence of the paper's
   Figure 1 (Gebhard et al.) applied to one task entry point:

     decode/CFG reconstruction -> loop & value analysis ->
     cache & pipeline analysis -> IPET path analysis.

   [analyze] raises [Error] when the program cannot be soundly bounded
   (irreducible flow, unbounded loop without annotation) — the analyzer
   never silently returns an unsound number. *)

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let analyze ?fname (asm : Target.Asm.program) (lay : Target.Layout.t) :
  Report.t =
  let fname = Option.value ~default:asm.Target.Asm.pr_main fname in
  let f =
    match Target.Asm.find_func asm fname with
    | Some f -> f
    | None -> fail "no function %s" fname
  in
  let base_addr =
    match Hashtbl.find_opt lay.Target.Layout.lay_code fname with
    | Some a -> a
    | None -> fail "function %s not in layout" fname
  in
  (* 1. decode *)
  let cfg =
    try Cfg.build fname base_addr f.Target.Asm.fn_code
    with Cfg.Decode_error msg -> fail "decode: %s" msg
  in
  (* 2. dominators, loops *)
  let dom = Dom.compute cfg in
  let loops =
    try Loops.compute cfg dom
    with Loops.Irreducible msg -> fail "irreducible control flow: %s" msg
  in
  (* 3. value analysis *)
  let va = Valueanalysis.analyze cfg in
  (* 4. loop bounds *)
  let bounds =
    match Boundanalysis.analyze cfg dom loops va with
    | Ok bounds -> bounds
    | Error f' -> fail "%s" f'.Boundanalysis.fail_reason
  in
  (* 5. cache analysis: capacity/persistence classification refined by
     the Ferdinand-style must-cache ageing analysis *)
  let cache = Cacheanalysis.analyze cfg va lay in
  let must = Mustcache.analyze cfg va lay in
  let cache = Cacheanalysis.refine cache (Mustcache.block_hits must) in
  (* 6. pipeline analysis *)
  let pl = Pipeline.analyze cfg cache in
  (* 7. path analysis *)
  let res =
    try Ipet.compute cfg pl cache loops bounds
    with Ipet.Analysis_failed msg -> fail "path analysis: %s" msg
  in
  { Report.rp_function = fname;
    rp_wcet = res.Ipet.ipet_wcet;
    rp_exact_ilp = res.Ipet.ipet_exact;
    rp_blocks = Cfg.num_blocks cfg;
    rp_code_bytes = Target.Asm.func_size f;
    rp_loops =
      List.map
        (fun lb ->
           { Report.li_header = lb.Boundanalysis.lb_header;
             li_bound = lb.Boundanalysis.lb_bound;
             li_from_annotation = lb.Boundanalysis.lb_source = Boundanalysis.Bannot })
        bounds;
    rp_cache_first_miss = cache.Cacheanalysis.ca_first_miss;
    rp_cache_imprecise = cache.Cacheanalysis.ca_imprecise;
    rp_code_lines = cache.Cacheanalysis.ca_ilines;
    rp_data_lines = cache.Cacheanalysis.ca_dlines }

(* WCET of every function in a program (the per-node analysis of the
   paper's Figure 2). *)
let analyze_program (asm : Target.Asm.program) (lay : Target.Layout.t) :
  (string * Report.t) list =
  List.map
    (fun f -> (f.Target.Asm.fn_name, analyze ~fname:f.Target.Asm.fn_name asm lay))
    asm.Target.Asm.pr_funcs
