(** Dominator computation (Cooper–Harvey–Kennedy iterative algorithm),
    prerequisite of natural-loop detection. *)

type t = {
  d_idom : int array;      (** immediate dominators; entry maps to itself *)
  d_rpo_index : int array;
}

val compute : Cfg.t -> t
val dominates : t -> int -> int -> bool

val dominates_naive : Cfg.t -> int -> int -> bool
(** O(n^2) recomputation via reachability removal; property tests
    compare it against {!dominates}. *)
