(** Loop-bound analysis: automatic bounds for MISRA-style counter loops
    (register- or stack-slot-resident counters, constant step, loop-
    invariant limit with a known interval) plus explicit "loopbound N"
    annotations for data-dependent loops (paper section 3.4). A loop's
    bound is the maximal number of back-edge traversals per entry. *)

type bound_source =
  | Bauto   (** derived by the counter analysis *)
  | Bannot  (** taken from a loopbound annotation *)

type loop_bound = {
  lb_header : int;
  lb_bound : int;
  lb_source : bound_source;
}

type failure = {
  fail_header : int;
  fail_reason : string;
}

val analyze :
  Cfg.t -> Dom.t -> Loops.t -> Valueanalysis.result ->
  (loop_bound list, failure) result
(** [Error] when some loop has no derivable bound — the analyzer then
    refuses to produce a WCET, like aiT asking for an annotation. *)
