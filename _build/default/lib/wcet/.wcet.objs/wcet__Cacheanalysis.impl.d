lib/wcet/cacheanalysis.ml: Array Cfg Hashtbl Interval List Option Target Valueanalysis
