lib/wcet/boundanalysis.mli: Cfg Dom Loops Valueanalysis
