lib/wcet/driver.mli: Report Target
