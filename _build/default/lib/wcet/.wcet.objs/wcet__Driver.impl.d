lib/wcet/driver.ml: Boundanalysis Cacheanalysis Cfg Dom Format Hashtbl Ipet List Loops Mustcache Option Pipeline Report Target Valueanalysis
