lib/wcet/valueanalysis.ml: Array Cfg Int Int32 Interval List Map Minic Queue String Target
