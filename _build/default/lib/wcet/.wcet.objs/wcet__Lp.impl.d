lib/wcet/lp.ml: Array List Printf
