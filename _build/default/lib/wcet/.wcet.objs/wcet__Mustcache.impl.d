lib/wcet/mustcache.ml: Array Cacheanalysis Cfg Int List Map Option Queue Target Valueanalysis
