lib/wcet/cacheanalysis.mli: Cfg Target Valueanalysis
