lib/wcet/annotfile.mli: Target
