lib/wcet/dom.mli: Cfg
