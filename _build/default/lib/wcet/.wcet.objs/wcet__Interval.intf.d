lib/wcet/interval.mli: Format Minic
