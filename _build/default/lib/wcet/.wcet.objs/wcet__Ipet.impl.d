lib/wcet/ipet.ml: Array Boundanalysis Cacheanalysis Cfg Hashtbl List Loops Lp Option Pipeline Printf
