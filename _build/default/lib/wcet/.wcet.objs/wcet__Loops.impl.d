lib/wcet/loops.ml: Array Cfg Dom Hashtbl List Option Printf
