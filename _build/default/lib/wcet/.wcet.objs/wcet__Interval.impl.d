lib/wcet/interval.ml: Format Int32 List Minic
