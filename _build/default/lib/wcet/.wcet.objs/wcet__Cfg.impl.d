lib/wcet/cfg.ml: Array Format Hashtbl List Printf String Target
