lib/wcet/loops.mli: Cfg Dom
