lib/wcet/lp.mli:
