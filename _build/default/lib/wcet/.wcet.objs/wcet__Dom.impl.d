lib/wcet/dom.ml: Array Cfg List
