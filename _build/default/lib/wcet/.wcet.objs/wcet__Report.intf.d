lib/wcet/report.mli: Format
