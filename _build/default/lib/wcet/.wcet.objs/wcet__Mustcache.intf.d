lib/wcet/mustcache.mli: Cfg Target Valueanalysis
