lib/wcet/annotfile.ml: Buffer List Printf String Target
