lib/wcet/boundanalysis.ml: Array Cfg Dom Int32 Interval List Loops Minic Printf Result String Target Valueanalysis
