lib/wcet/report.ml: Format List
