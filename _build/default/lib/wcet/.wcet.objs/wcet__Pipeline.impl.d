lib/wcet/pipeline.ml: Array Cacheanalysis Cfg Target
