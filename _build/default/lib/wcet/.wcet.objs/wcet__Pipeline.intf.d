lib/wcet/pipeline.mli: Cacheanalysis Cfg
