lib/wcet/cfg.mli: Format Target
