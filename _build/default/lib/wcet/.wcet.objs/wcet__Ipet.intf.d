lib/wcet/ipet.mli: Boundanalysis Cacheanalysis Cfg Loops Pipeline
