(* Cache analysis for the split L1 instruction and data caches.

   The analysis classifies every memory line the function can touch by a
   conflict-capacity argument that exactly matches the concrete LRU
   model of [Target.Cache]:

   - collect the set of distinct lines the function may access
     (instruction fetch ranges per block; data accesses resolved through
     the value analysis: stack slots, globals, arrays with interval
     offsets, the float constant pool);
   - a cache set is "safe" when the number of distinct lines mapping to
     it does not exceed the associativity: LRU can then never evict any
     of them during the run, so each such line misses at most once
     "persistent" in aiT terminology — Ferdinand's persistence
     analysis specialised to a single uninterrupted task run, the
     situation of the paper's flight control nodes);
   - lines in over-subscribed sets (or any statically unresolved access)
     are *not classified*: every access is charged a miss.

   The WCET then adds one miss penalty per persistent line (first
   touch), and the per-execution penalties for NC accesses to the block
   costs. Soundness versus the simulator is checked by the test suite on
   random programs. *)

module Asm = Target.Asm

type t = {
  ca_dextra : int array;    (* per-block per-execution data-miss cycles *)
  ca_iextra : int array;    (* per-block per-execution fetch-miss cycles *)
  ca_first_miss : int;      (* one-time cycles: persistent line fills *)
  ca_imprecise : bool;      (* an unresolved access degraded the analysis *)
  ca_dlines : int;          (* distinct data lines (footprint), for reports *)
  ca_ilines : int;          (* distinct code lines *)
  ca_daccesses : int list list array;
  (* per block, per data access in order: the lines it may touch
     ([] = unresolved); used by the must-cache refinement *)
  ca_dpersistent : int -> bool; (* is this data line persistent? *)
}

let line_size = Target.Cache.mpc755_l1.Target.Cache.cfg_line
let nsets = Target.Cache.mpc755_l1.Target.Cache.cfg_sets
let assoc = Target.Cache.mpc755_l1.Target.Cache.cfg_assoc

let lines_of_range (lo : int) (hi : int) : int list =
  (* inclusive byte range *)
  let first = lo / line_size and last = hi / line_size in
  List.init (last - first + 1) (fun i -> first + i)

(* Data access of one instruction: Some (lo, hi) inclusive byte range(s),
   or None for "no data access", or raises Not_resolved. *)
exception Not_resolved

let access_range (lay : Target.Layout.t) (st : Valueanalysis.state)
    (a : Asm.address) (size : int) : int * int =
  let stack_top = lay.Target.Layout.lay_stack_top in
  match Valueanalysis.region_of_address st a with
  | Valueanalysis.Rslot k -> (stack_top + k, stack_top + k + size - 1)
  | Valueanalysis.Rstack itv ->
    (* clamp to a frame-sized window below the entry stack pointer *)
    let lo = max itv.Interval.lo (-65536) and hi = min itv.Interval.hi 0 in
    if lo > hi then raise Not_resolved
    else (stack_top + lo, stack_top + hi + size - 1)
  | Valueanalysis.Rsym (s, itv) ->
    let base =
      match Hashtbl.find_opt lay.Target.Layout.lay_sym s with
      | Some b -> b
      | None -> raise Not_resolved
    in
    let sym_size =
      Option.value ~default:size
        (Hashtbl.find_opt lay.Target.Layout.lay_sym_size s)
    in
    let lo = max 0 itv.Interval.lo in
    let hi = min (sym_size - size) itv.Interval.hi in
    if lo > hi then (base, base + sym_size - 1) (* degenerate: whole symbol *)
    else (base + lo, base + hi + size - 1)
  | Valueanalysis.Rpool c ->
    let a = Target.Layout.const_addr lay c in
    (a, a + size - 1)
  | Valueanalysis.Runknown -> raise Not_resolved

let data_access (lay : Target.Layout.t) (st : Valueanalysis.state)
    (i : Asm.instr) : (int * int) option =
  match i with
  | Asm.Plwz (_, a) | Asm.Pstw (_, a) -> Some (access_range lay st a 4)
  | Asm.Plfd (_, a) | Asm.Pstfd (_, a) -> Some (access_range lay st a 8)
  | Asm.Plfdc (_, c) ->
    let addr = Target.Layout.const_addr lay c in
    Some (addr, addr + 7)
  | _ -> None

let analyze (cfg : Cfg.t) (va : Valueanalysis.result) (lay : Target.Layout.t) :
  t =
  let nb = Cfg.num_blocks cfg in
  let reachable = Cfg.reverse_postorder cfg in
  let imprecise = ref false in
  (* ---- collect footprints ---- *)
  let dlines : (int, unit) Hashtbl.t = Hashtbl.create 251 in
  let ilines : (int, unit) Hashtbl.t = Hashtbl.create 251 in
  (* per block: data accesses as line lists (computed once) *)
  let block_daccesses : int list list array = Array.make nb [] in
  List.iter
    (fun b ->
       let blk = Cfg.block cfg b in
       (* instruction lines *)
       if blk.Cfg.b_size > 0 then
         List.iter
           (fun l -> Hashtbl.replace ilines l ())
           (lines_of_range blk.Cfg.b_addr (blk.Cfg.b_addr + blk.Cfg.b_size - 1));
       (* data lines *)
       let accs = ref [] in
       Array.iteri
         (fun idx instr ->
            match Valueanalysis.state_at va b idx with
            | None -> ()
            | Some st ->
              (try
                 match data_access lay st instr with
                 | Some (lo, hi) ->
                   let ls = lines_of_range lo hi in
                   List.iter (fun l -> Hashtbl.replace dlines l ()) ls;
                   accs := ls :: !accs
                 | None -> ()
               with Not_resolved ->
                 imprecise := true;
                 accs := [] :: !accs (* marker: unresolved access *)))
         blk.Cfg.b_instrs;
       block_daccesses.(b) <- List.rev !accs)
    reachable;
  (* ---- per-set capacity check ---- *)
  let set_of l = l mod nsets in
  let count_per_set (lines : (int, unit) Hashtbl.t) : int array =
    let counts = Array.make nsets 0 in
    Hashtbl.iter (fun l () -> counts.(set_of l) <- counts.(set_of l) + 1) lines;
    counts
  in
  let dcounts = count_per_set dlines in
  let icounts = count_per_set ilines in
  (* when an access could not be resolved, it may touch any set: degrade
     everything (sound, and loud in the report) *)
  let dset_safe s = (not !imprecise) && dcounts.(s) <= assoc in
  let iset_safe s = icounts.(s) <= assoc in
  let line_persistent_d l = dset_safe (set_of l) in
  let line_persistent_i l = iset_safe (set_of l) in
  (* ---- per-block per-execution penalties ---- *)
  let penalty = Target.Timing.cache_miss_penalty in
  let dextra = Array.make nb 0 in
  let iextra = Array.make nb 0 in
  List.iter
    (fun b ->
       let blk = Cfg.block cfg b in
       (* data: one line per scalar access is the concrete maximum (all
          data is naturally aligned); an unresolved access (empty list
          marker) also touches one line per execution *)
       let d =
         List.fold_left
           (fun acc ls ->
              match ls with
              | [] -> acc + penalty (* unresolved: always miss *)
              | ls ->
                if List.for_all line_persistent_d ls then acc
                else acc + penalty)
           0 block_daccesses.(b)
       in
       dextra.(b) <- d;
       (* instruction fetch: the block spans fixed lines; each
          non-persistent line is re-fetched at worst every execution *)
       let il =
         if blk.Cfg.b_size = 0 then []
         else lines_of_range blk.Cfg.b_addr (blk.Cfg.b_addr + blk.Cfg.b_size - 1)
       in
       iextra.(b) <-
         List.fold_left
           (fun acc l -> if line_persistent_i l then acc else acc + penalty)
           0 il)
    reachable;
  (* ---- one-time first-miss budget ---- *)
  let first_miss =
    let count_pers (lines : (int, unit) Hashtbl.t) (pers : int -> bool) : int =
      Hashtbl.fold (fun l () acc -> if pers l then acc + 1 else acc) lines 0
    in
    penalty
    * (count_pers dlines line_persistent_d + count_pers ilines line_persistent_i)
  in
  { ca_dextra = dextra;
    ca_iextra = iextra;
    ca_first_miss = first_miss;
    ca_imprecise = !imprecise;
    ca_dlines = Hashtbl.length dlines;
    ca_ilines = Hashtbl.length ilines;
    ca_daccesses = block_daccesses;
    ca_dpersistent = line_persistent_d }

(* Refinement by a per-access ALWAYS-HIT classification (from the
   must-cache ageing analysis): an access charged as a miss by the
   capacity argument is dropped when the ageing argument proves it a
   hit. [hits b] lists one boolean per data access of block [b], in
   order. *)
let refine (t : t) (hits : int -> bool list) : t =
  let penalty = Target.Timing.cache_miss_penalty in
  let dextra =
    Array.mapi
      (fun b accs ->
         let hs = hits b in
         let hs =
           if List.length hs = List.length accs then hs
           else List.map (fun _ -> false) accs (* disagreement: no refinement *)
         in
         List.fold_left2
           (fun acc ls hit ->
              match ls with
              | [] -> if hit then acc else acc + penalty
              | ls ->
                if List.for_all t.ca_dpersistent ls || hit then acc
                else acc + penalty)
           0 accs hs)
      t.ca_daccesses
  in
  { t with ca_dextra = dextra }
