(** WCET analysis report: the bound together with the evidence a
    certification-minded user inspects. *)

type loop_info = {
  li_header : int;
  li_bound : int;
  li_from_annotation : bool;
}

type t = {
  rp_function : string;
  rp_wcet : int;               (** cycles *)
  rp_exact_ilp : bool;         (** false: LP-relaxation bound (still sound) *)
  rp_blocks : int;
  rp_code_bytes : int;
  rp_loops : loop_info list;
  rp_cache_first_miss : int;   (** one-time line-fill cycles in the bound *)
  rp_cache_imprecise : bool;
  rp_code_lines : int;
  rp_data_lines : int;
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string
