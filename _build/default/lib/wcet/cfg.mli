(** Control-flow reconstruction from binary-level assembly — the decode
    phase of the aiT-style analyzer. Blocks split at labels and after
    branches; edges carry the branch direction the pipeline analysis
    charges per edge. *)

type edge_kind =
  | Etaken
  | Efall

type block = {
  b_id : int;
  b_instrs : Target.Asm.instr array; (** without the leading label *)
  b_addr : int;
  b_size : int;                      (** bytes *)
  b_succs : (int * edge_kind) list;
  b_is_exit : bool;                  (** ends in blr *)
}

type t = {
  c_blocks : block array;
  c_entry : int;
  c_fname : string;
}

exception Decode_error of string

val build : string -> int -> Target.Asm.instr list -> t
(** [build fname base_addr code].
    @raise Decode_error on undefined labels or empty functions. *)

val block : t -> int -> block
val num_blocks : t -> int
val successors : t -> int -> (int * edge_kind) list
val predecessors : t -> int list array
val reverse_postorder : t -> int list
val exit_blocks : t -> int list
val pp : Format.formatter -> t -> unit
