(* Dominator computation (Cooper–Harvey–Kennedy iterative algorithm) on
   the reconstructed CFG, prerequisite of natural-loop detection. *)

type t = {
  d_idom : int array;    (* immediate dominator; entry maps to itself;
                            unreachable blocks map to -1 *)
  d_rpo_index : int array;
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Cfg.predecessors cfg in
  let idom = Array.make n (-1) in
  idom.(cfg.Cfg.c_entry) <- cfg.Cfg.c_entry;
  let rec intersect (a : int) (b : int) : int =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         if b <> cfg.Cfg.c_entry then begin
           let processed =
             List.filter (fun p -> idom.(p) <> -1) preds.(b)
           in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  { d_idom = idom; d_rpo_index = rpo_index }

(* Does [a] dominate [b]? *)
let dominates (d : t) (a : int) (b : int) : bool =
  let rec up (x : int) : bool =
    if x = a then true
    else if x = -1 || d.d_idom.(x) = x then x = a
    else up d.d_idom.(x)
  in
  up b

(* Naive O(n^2) recomputation used by property tests: dominators via
   reachability removal. *)
let dominates_naive (cfg : Cfg.t) (a : int) (b : int) : bool =
  (* a dominates b iff removing a makes b unreachable from entry
     (with a <> entry special cases handled naturally). *)
  if a = b then true
  else begin
    let n = Cfg.num_blocks cfg in
    let visited = Array.make n false in
    let rec dfs x =
      if (not visited.(x)) && x <> a then begin
        visited.(x) <- true;
        List.iter (fun (s, _) -> dfs s) (Cfg.successors cfg x)
      end
    in
    dfs cfg.Cfg.c_entry;
    (* b unreachable without a => a dominates b (if b reachable at all) *)
    let reachable_at_all = Array.make n false in
    let rec dfs2 x =
      if not reachable_at_all.(x) then begin
        reachable_at_all.(x) <- true;
        List.iter (fun (s, _) -> dfs2 s) (Cfg.successors cfg x)
      end
    in
    dfs2 cfg.Cfg.c_entry;
    reachable_at_all.(b) && not visited.(b)
  end
