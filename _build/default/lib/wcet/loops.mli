(** Natural-loop detection from back edges. The compilers only produce
    reducible flow (mini-C has no goto, per the MISRA discussion in the
    workshop's companion paper); irreducible flow is reported as an
    analysis failure rather than risking an unsound bound. *)

exception Irreducible of string

type loop = {
  l_header : int;
  l_body : int list;  (** blocks in the loop, including the header *)
  l_back_edges : (int * Cfg.edge_kind) list;
  l_entry_edges : (int * Cfg.edge_kind) list;
}

type t = { loops : loop list }

val compute : Cfg.t -> Dom.t -> t
(** @raise Irreducible on retreating non-back edges. *)

val innermost : t -> int -> loop option
val sorted_inner_first : t -> loop list
