(* Natural-loop detection from back edges (an edge b -> h where h
   dominates b). The compilers only produce reducible control flow —
   mini-C has no goto, in line with MISRA rule 14.4 discussed in the
   workshop's companion paper — so natural loops cover all cycles; the
   analyzer nevertheless verifies reducibility and reports irreducible
   flow as an analysis failure rather than returning an unsound bound. *)

exception Irreducible of string

type loop = {
  l_header : int;
  l_body : int list;                    (* blocks in the loop, incl. header *)
  l_back_edges : (int * Cfg.edge_kind) list; (* sources of back edges *)
  l_entry_edges : (int * Cfg.edge_kind) list; (* edges into header from outside *)
}

type t = {
  loops : loop list; (* outermost first is not guaranteed; use nesting *)
}

let compute (cfg : Cfg.t) (dom : Dom.t) : t =
  let preds = Cfg.predecessors cfg in
  ignore preds;
  (* find back edges *)
  let back = Hashtbl.create 17 in (* header -> (src, kind) list *)
  Array.iter
    (fun blk ->
       List.iter
         (fun (s, k) ->
            if Dom.dominates dom s blk.Cfg.b_id then begin
              let cur = Option.value ~default:[] (Hashtbl.find_opt back s) in
              Hashtbl.replace back s ((blk.Cfg.b_id, k) :: cur)
            end)
         blk.Cfg.b_succs)
    cfg.Cfg.c_blocks;
  (* check for cycles not covered by back edges: every retreating edge in
     a DFS must be a back edge in a reducible CFG *)
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make (Cfg.num_blocks cfg) (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  Array.iter
    (fun blk ->
       List.iter
         (fun (s, _) ->
            if rpo_index.(s) >= 0
            && rpo_index.(s) <= rpo_index.(blk.Cfg.b_id)
            && not (Dom.dominates dom s blk.Cfg.b_id)
            && s <> blk.Cfg.b_id then
              (* retreating but not a back edge: irreducible *)
              raise
                (Irreducible
                   (Printf.sprintf "%s: edge B%d -> B%d" cfg.Cfg.c_fname
                      blk.Cfg.b_id s)))
         blk.Cfg.b_succs)
    cfg.Cfg.c_blocks;
  (* natural loop of each header: union over its back edges *)
  let preds = Cfg.predecessors cfg in
  let loops =
    Hashtbl.fold
      (fun header back_srcs acc ->
         let in_loop = Hashtbl.create 17 in
         Hashtbl.replace in_loop header ();
         let rec pull (b : int) : unit =
           if not (Hashtbl.mem in_loop b) then begin
             Hashtbl.replace in_loop b ();
             List.iter pull preds.(b)
           end
         in
         List.iter (fun (src, _) -> pull src) back_srcs;
         let body =
           Hashtbl.fold (fun b () acc -> b :: acc) in_loop []
           |> List.sort compare
         in
         let entry_edges =
           Array.to_list cfg.Cfg.c_blocks
           |> List.concat_map (fun blk ->
               List.filter_map
                 (fun (s, k) ->
                    if s = header && not (Hashtbl.mem in_loop blk.Cfg.b_id)
                    then Some (blk.Cfg.b_id, k)
                    else None)
                 blk.Cfg.b_succs)
         in
         let entry_edges =
           if List.exists (fun b -> b = cfg.Cfg.c_entry) body
           then entry_edges (* entry inside loop: virtual entry handled by IPET *)
           else entry_edges
         in
         { l_header = header;
           l_body = body;
           l_back_edges = back_srcs;
           l_entry_edges = entry_edges }
         :: acc)
      back []
  in
  { loops }

(* Innermost loop containing block [b], by smallest body. *)
let innermost (t : t) (b : int) : loop option =
  List.fold_left
    (fun acc l ->
       if List.mem b l.l_body then
         match acc with
         | Some best when List.length best.l_body <= List.length l.l_body ->
           acc
         | _ -> Some l
       else acc)
    None t.loops

(* Loops listed from innermost to outermost (by increasing body size). *)
let sorted_inner_first (t : t) : loop list =
  List.sort
    (fun a b -> compare (List.length a.l_body) (List.length b.l_body))
    t.loops
